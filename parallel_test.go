package fedcross

import (
	"reflect"
	"testing"
)

// invarianceProfile sizes the determinism runs: small enough that twelve
// full simulations finish in seconds, large enough that every algorithm
// takes real SGD steps on several clients per round.
func invarianceProfile() Profile {
	p := TinyProfile()
	p.Rounds = 3
	p.EvalEvery = 1
	p.NumClients = 8
	p.ClientsPerRound = 4
	p.VisionTrainPerClass = 16
	p.VisionTestPerClass = 6
	return p
}

// TestParallelismInvariance pins the worker pool's determinism contract:
// for every one of the six algorithms, the same seed produces a
// byte-identical History whether the round engine runs on one worker or
// eight. Per-client RNG streams are split before dispatch, so scheduling
// must never leak into results.
func TestParallelismInvariance(t *testing.T) {
	for _, name := range AlgorithmNames() {
		t.Run(name, func(t *testing.T) {
			histories := make([]*History, 2)
			for i, workers := range []int{1, 8} {
				prof := invarianceProfile()
				prof.Parallelism = workers
				env, err := prof.BuildEnv("vision10", "mlp", Heterogeneity{Beta: 0.5}, 1)
				if err != nil {
					t.Fatal(err)
				}
				algo, err := NewAlgorithm(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := prof.Config(1)
				cfg.DropoutRate = 0.2 // exercise the dropped-client paths too
				hist, err := Run(algo, env, cfg)
				if err != nil {
					t.Fatal(err)
				}
				histories[i] = hist
			}
			if !reflect.DeepEqual(histories[0], histories[1]) {
				t.Fatalf("%s: history differs between Parallelism=1 and Parallelism=8:\nserial:   %+v\nparallel: %+v",
					name, histories[0], histories[1])
			}
		})
	}
}

// TestTransportParallelismInvariance extends the determinism contract to
// the simulated wire: with a lossy codec, a jittered network and a round
// deadline, every algorithm must still produce a byte-identical History
// at Parallelism=1 and 8 — straggler selection, codec error and byte
// accounting all live in the serial phases of a round.
func TestTransportParallelismInvariance(t *testing.T) {
	for _, name := range AlgorithmNames() {
		t.Run(name, func(t *testing.T) {
			histories := make([]*History, 2)
			for i, workers := range []int{1, 8} {
				prof := invarianceProfile()
				prof.Parallelism = workers
				env, err := prof.BuildEnv("vision10", "mlp", Heterogeneity{Beta: 0.5}, 1)
				if err != nil {
					t.Fatal(err)
				}
				algo, err := NewAlgorithm(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := prof.Config(1)
				cfg.DropoutRate = 0.2
				cfg.Transport = TransportOptions{Codec: "int8", Network: "lte", DeadlineSec: 2}
				hist, err := Run(algo, env, cfg)
				if err != nil {
					t.Fatal(err)
				}
				histories[i] = hist
			}
			if !reflect.DeepEqual(histories[0], histories[1]) {
				t.Fatalf("%s: lossy-wire history differs between Parallelism=1 and 8:\nserial:   %+v\nparallel: %+v",
					name, histories[0], histories[1])
			}
			if histories[0].TotalBytes() == 0 {
				t.Fatalf("%s: lossy wire moved zero bytes", name)
			}
		})
	}
}

// TestIdentityWireMatchesDefault pins the reference-wire contract: a run
// with explicit codec=identity + net=none is byte-identical to a run with
// the zero-value Transport options (the accounting-only default).
func TestIdentityWireMatchesDefault(t *testing.T) {
	for _, name := range AlgorithmNames() {
		histories := make([]*History, 2)
		for i, explicit := range []bool{false, true} {
			prof := invarianceProfile()
			env, err := prof.BuildEnv("vision10", "mlp", Heterogeneity{Beta: 0.5}, 1)
			if err != nil {
				t.Fatal(err)
			}
			algo, err := NewAlgorithm(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := prof.Config(1)
			if explicit {
				cfg.Transport = TransportOptions{Codec: "identity", Network: "none"}
			}
			hist, err := Run(algo, env, cfg)
			if err != nil {
				t.Fatal(err)
			}
			histories[i] = hist
		}
		if !reflect.DeepEqual(histories[0], histories[1]) {
			t.Fatalf("%s: explicit identity wire differs from the default:\ndefault:  %+v\nexplicit: %+v",
				name, histories[0], histories[1])
		}
		if histories[0].TotalBytes() == 0 {
			t.Fatalf("%s: identity wire reported zero bytes", name)
		}
	}
}

// TestEvaluatePerClientParallelism pins the fairness report's determinism:
// the per-client sweep runs on the pool but must reduce in client order.
func TestEvaluatePerClientParallelism(t *testing.T) {
	prof := invarianceProfile()
	env, err := prof.BuildEnv("vision10", "mlp", Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewFedCross(DefaultFedCrossOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(algo, env, prof.Config(1)); err != nil {
		t.Fatal(err)
	}
	a, err := EvaluatePerClient(env, algo.Global(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluatePerClient(env, algo.Global(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("EvaluatePerClient is not deterministic:\n%+v\n%+v", a, b)
	}
}
