package theory

import (
	"math"
	"testing"
	"testing/quick"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func validAssumptions() Assumptions {
	return Assumptions{L: 1, Mu: 1, G2: 4, Gamma: 0.5, E: 5, Delta1: 2}
}

func TestAssumptionsValidate(t *testing.T) {
	if err := validAssumptions().Validate(); err != nil {
		t.Fatalf("valid assumptions rejected: %v", err)
	}
	bad := []Assumptions{
		{L: 0, Mu: 1, E: 1},
		{L: 1, Mu: 0, E: 1},
		{L: 1, Mu: 2, E: 1}, // mu > L
		{L: 1, Mu: 1, E: 0},
		{L: 1, Mu: 1, E: 1, G2: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, a)
		}
	}
}

func TestBoundFormulaKnownValues(t *testing.T) {
	a := Assumptions{L: 1, Mu: 1, G2: 0, Gamma: 0, E: 1, Delta1: 1}
	// B = 0, lambda = max(10,1)-1 = 9, bound(t) = 1/(2(t+9)) * (0 + 1*10/2*1) = 5/(t+9).
	if got, want := a.B(), 0.0; got != want {
		t.Fatalf("B = %v, want %v", got, want)
	}
	if got, want := a.Lambda(), 9.0; got != want {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
	// bound(1) = 1/(2·(1+9)) · (0 + 1·10/2·1) = 5/20 = 0.25.
	if got, want := a.Bound(1), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Bound(1) = %v, want %v", got, want)
	}
	// E dominating lambda: E=20 -> lambda = 19.
	a2 := Assumptions{L: 1, Mu: 1, G2: 1, Gamma: 1, E: 20, Delta1: 1}
	if got, want := a2.Lambda(), 19.0; got != want {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
	// B = 10*1*1 + 4*19^2*1 = 1454.
	if got, want := a2.B(), 1454.0; got != want {
		t.Fatalf("B = %v, want %v", got, want)
	}
}

func TestBoundMonotoneDecreasing(t *testing.T) {
	a := validAssumptions()
	prev := math.Inf(1)
	for _, tt := range []int{1, 2, 5, 10, 100, 1000, 10000} {
		b := a.Bound(tt)
		if b <= 0 || b >= prev {
			t.Fatalf("bound not strictly decreasing at t=%d: %v >= %v", tt, b, prev)
		}
		prev = b
	}
	// O(1/t): doubling t from a large base roughly halves the bound.
	r := a.Bound(100000) / a.Bound(200000)
	if r < 1.9 || r > 2.1 {
		t.Fatalf("bound should decay like 1/t, ratio = %v", r)
	}
}

func TestLearningRateSchedule(t *testing.T) {
	a := validAssumptions()
	// eta_t = 2/(mu(t+lambda)) is decreasing and satisfies eta_t <= 2*eta_{t+E}.
	for _, tt := range []int{1, 3, 10, 50} {
		if a.LearningRate(tt) <= a.LearningRate(tt+1) {
			t.Fatalf("learning rate must decrease at t=%d", tt)
		}
		if a.LearningRate(tt) > 2*a.LearningRate(tt+a.E) {
			t.Fatalf("eta_t <= 2*eta_(t+E) violated at t=%d", tt)
		}
	}
}

func TestQuadraticFederationBasics(t *testing.T) {
	rng := tensor.NewRNG(1)
	q := NewQuadraticFederation(5, 3, 1.0, rng)
	if len(q.Theta) != 5 || len(q.WStar) != 3 {
		t.Fatalf("federation dims wrong")
	}
	// F is minimised at WStar: random perturbations never do better.
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		p := q.WStar.Clone()
		for i := range p {
			p[i] += r.Normal(0, 0.5)
		}
		return q.GlobalLoss(p) >= q.OptimalLoss()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Gamma = F* for quadratic clients with f_i* = 0.
	if q.Gamma() != q.OptimalLoss() {
		t.Fatal("Gamma must equal F* here")
	}
}

func TestFedCrossConvergesOnQuadratics(t *testing.T) {
	rng := tensor.NewRNG(2)
	q := NewQuadraticFederation(6, 4, 1.0, rng)
	a := Assumptions{L: 1, Mu: 1, E: 5, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	res := q.RunFedCross(200, a.E, 0.9, a)

	first, last := res.Gap[0], res.Gap[len(res.Gap)-1]
	if last >= first/10 {
		t.Fatalf("gap did not shrink by 10x: %v -> %v", first, last)
	}
	if last < 0 {
		t.Fatalf("gap went negative: %v (F* must lower-bound F)", last)
	}
}

func TestTheorem1BoundHoldsEmpirically(t *testing.T) {
	// Run the quadratic federation, plug the empirical G² into the
	// assumptions, and check the measured gap stays below the Theorem-1
	// bound at every evaluated round.
	rng := tensor.NewRNG(3)
	q := NewQuadraticFederation(5, 3, 1.0, rng)
	aProbe := Assumptions{L: 1, Mu: 1, E: 5, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	res := q.RunFedCross(300, aProbe.E, 0.9, aProbe)

	a := aProbe
	a.G2 = res.MaxGradNorm2
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for r, gap := range res.Gap {
		tTotal := (r + 1) * a.E
		if bound := a.Bound(tTotal); gap > bound {
			t.Fatalf("round %d: measured gap %v exceeds Theorem-1 bound %v", r+1, gap, bound)
		}
	}
}

func TestGapDecaysLikeOneOverT(t *testing.T) {
	rng := tensor.NewRNG(4)
	q := NewQuadraticFederation(6, 4, 1.0, rng)
	a := Assumptions{L: 1, Mu: 1, E: 5, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	res := q.RunFedCross(400, a.E, 0.9, a)
	// Compare gap at t and 2t deep into the run: the heterogeneity floor
	// Γ > 0 means decay can be slower than exactly 1/t, but it must not
	// stall: require a meaningful reduction.
	g100, g200, g400 := res.Gap[99], res.Gap[199], res.Gap[399]
	if g200 >= g100 || g400 >= g200 {
		t.Fatalf("gap must keep decreasing: %v, %v, %v", g100, g200, g400)
	}
}

func TestAlphaExtremesOnQuadratics(t *testing.T) {
	// The paper's Table III pathology: with alpha ~ 1 the models barely
	// share knowledge, so the middleware models stay spread apart. The
	// per-model gap must be worse at alpha=0.999 than at alpha=0.9. (The
	// mean-model gap is alpha-invariant here by Equation 2, which
	// TestEquation2AlphaInvariance checks explicitly.)
	rng := tensor.NewRNG(5)
	q := NewQuadraticFederation(6, 4, 1.5, rng)
	a := Assumptions{L: 1, Mu: 1, E: 5, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	rounds := 60
	g9 := q.RunFedCross(rounds, a.E, 0.9, a).ModelGap[rounds-1]
	g999 := q.RunFedCross(rounds, a.E, 0.999, a).ModelGap[rounds-1]
	if g999 <= g9 {
		t.Fatalf("alpha=0.999 should leave middleware models more spread: model gap %v vs %v", g999, g9)
	}
}

func TestEquation2AlphaInvariance(t *testing.T) {
	// With in-order selection and full participation the deployment-model
	// trajectory is exactly alpha-invariant on quadratics: the linear
	// local updates commute with averaging, and cross-aggregation
	// preserves the sum (Equation 2).
	rng := tensor.NewRNG(8)
	q := NewQuadraticFederation(5, 3, 1.0, rng)
	a := Assumptions{L: 1, Mu: 1, E: 3, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	r1 := q.RunFedCross(30, a.E, 0.9, a)
	r2 := q.RunFedCross(30, a.E, 0.999, a)
	for r := range r1.Gap {
		if math.Abs(r1.Gap[r]-r2.Gap[r]) > 1e-9 {
			t.Fatalf("round %d: mean-model gap differs across alpha: %v vs %v", r, r1.Gap[r], r2.Gap[r])
		}
	}
}

func TestRunFedCrossMeanIsGlobal(t *testing.T) {
	// Sanity: the reported gap corresponds to the mean of middleware
	// models, so a 1-round run from the origin with E=1, alpha=1 recovers
	// plain one-step gradient descent toward each theta averaged.
	rng := tensor.NewRNG(6)
	q := NewQuadraticFederation(4, 2, 1.0, rng)
	a := Assumptions{L: 1, Mu: 1, E: 1, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	res := q.RunFedCross(1, 1, 0.9, a)
	eta := a.LearningRate(1)
	// Each model i: w = 0 - eta*(0 - theta_{i}) = eta*theta_{i}; the mean
	// over i is eta*WStar regardless of the in-order pairing (Equation 2).
	expected := q.WStar.Scale(eta)
	wantGap := q.GlobalLoss(expected) - q.OptimalLoss()
	if math.Abs(res.Gap[0]-wantGap) > 1e-9 {
		t.Fatalf("1-round gap %v, want %v", res.Gap[0], wantGap)
	}
}

func TestNewQuadraticFederationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<2")
		}
	}()
	NewQuadraticFederation(1, 2, 1, tensor.NewRNG(1))
}

func TestTraceGradNormRecorded(t *testing.T) {
	rng := tensor.NewRNG(7)
	q := NewQuadraticFederation(4, 3, 1.0, rng)
	a := Assumptions{L: 1, Mu: 1, E: 2, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
	res := q.RunFedCross(5, a.E, 0.9, a)
	if res.MaxGradNorm2 <= 0 {
		t.Fatal("MaxGradNorm2 should be positive")
	}
	_ = nn.ParamVector{} // keep import for clarity of package under test
}
