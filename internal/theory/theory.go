// Package theory implements the paper's convergence analysis (Section
// III-C): the Theorem-1 bound calculator and a quadratic-federation
// simulator that verifies the analysis numerically — Lemma 3.4's
// contraction and the O(1/t) gap decay — on objectives where L, µ, Γ, G
// and F⋆ are known in closed form.
package theory

import (
	"fmt"
	"math"

	"fedcross/internal/core"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Assumptions carries the constants of Assumptions 3.1–3.3 plus the
// schedule parameters that appear in Theorem 1.
type Assumptions struct {
	// L is the smoothness constant (Assumption 3.1).
	L float64
	// Mu is the strong-convexity constant (Assumption 3.2).
	Mu float64
	// G2 bounds E‖∇f(w;ξ)‖² (Assumption 3.3).
	G2 float64
	// Gamma is Γ = F⋆ − (1/N)Σ fᵢ⋆, the heterogeneity gap.
	Gamma float64
	// E is the number of local SGD iterations between cross-aggregations.
	E int
	// Delta1 is ‖w₁ − w⋆‖², the initial squared distance.
	Delta1 float64
}

// Validate reports the first problem with the constants.
func (a Assumptions) Validate() error {
	switch {
	case a.L <= 0:
		return fmt.Errorf("theory: L = %v must be positive", a.L)
	case a.Mu <= 0 || a.Mu > a.L:
		return fmt.Errorf("theory: mu = %v must be in (0, L=%v]", a.Mu, a.L)
	case a.G2 < 0 || a.Gamma < 0 || a.Delta1 < 0:
		return fmt.Errorf("theory: G2/Gamma/Delta1 must be non-negative: %+v", a)
	case a.E <= 0:
		return fmt.Errorf("theory: E = %d must be positive", a.E)
	}
	return nil
}

// B returns B = 10LΓ + 4(E−1)²G² from Theorem 1.
func (a Assumptions) B() float64 {
	e1 := float64(a.E - 1)
	return 10*a.L*a.Gamma + 4*e1*e1*a.G2
}

// Lambda returns λ = max{10L/µ, E} − 1, the schedule shift of Theorem 1.
func (a Assumptions) Lambda() float64 {
	return math.Max(10*a.L/a.Mu, float64(a.E)) - 1
}

// LearningRate returns η_t = 2/(µ(t+λ)), the decaying step size the proof
// requires.
func (a Assumptions) LearningRate(t int) float64 {
	return 2 / (a.Mu * (float64(t) + a.Lambda()))
}

// Bound returns Theorem 1's upper bound on E[F(w_t)] − F⋆ after t total
// SGD iterations:
//
//	L/(2µ(t+λ)) · (4B/µ + µ(λ+1)/2 · Δ₁).
func (a Assumptions) Bound(t int) float64 {
	lam := a.Lambda()
	return a.L / (2 * a.Mu * (float64(t) + lam)) *
		(4*a.B()/a.Mu + a.Mu*(lam+1)/2*a.Delta1)
}

// QuadraticFederation is a federation of strongly convex quadratic
// clients fᵢ(w) = ½‖w − θᵢ‖², for which every constant of the analysis is
// known in closed form: L = µ = 1, fᵢ⋆ = 0, w⋆ = mean(θ), and
// Γ = F(w⋆). It is the test bench for the convergence theory.
type QuadraticFederation struct {
	// Theta holds each client's optimum.
	Theta []nn.ParamVector
	// WStar is the global optimum, the mean of Theta.
	WStar nn.ParamVector
}

// NewQuadraticFederation draws n client optima of dimension dim spread
// with the given radius.
func NewQuadraticFederation(n, dim int, radius float64, rng *tensor.RNG) *QuadraticFederation {
	if n < 2 || dim < 1 {
		panic(fmt.Sprintf("theory: federation needs n>=2, dim>=1; got %d, %d", n, dim))
	}
	q := &QuadraticFederation{Theta: make([]nn.ParamVector, n)}
	for i := range q.Theta {
		v := make(nn.ParamVector, dim)
		for j := range v {
			v[j] = rng.Normal(0, radius)
		}
		q.Theta[i] = v
	}
	q.WStar = nn.MeanVectors(q.Theta)
	return q
}

// GlobalLoss returns F(w) = (1/N)Σ ½‖w−θᵢ‖².
func (q *QuadraticFederation) GlobalLoss(w nn.ParamVector) float64 {
	s := 0.0
	for _, th := range q.Theta {
		s += 0.5 * w.DistanceSq(th)
	}
	return s / float64(len(q.Theta))
}

// OptimalLoss returns F⋆ = F(w⋆).
func (q *QuadraticFederation) OptimalLoss() float64 { return q.GlobalLoss(q.WStar) }

// Gamma returns Γ = F⋆ − mean fᵢ⋆ = F⋆ (each fᵢ⋆ = 0).
func (q *QuadraticFederation) Gamma() float64 { return q.OptimalLoss() }

// TraceResult reports one FedCross run on the quadratic federation.
type TraceResult struct {
	// Gap[r] is F(w̄) − F⋆ after round r+1, the deployment-model gap.
	// Note that with in-order selection and full participation the mean
	// model is invariant under cross-aggregation (Equation 2), so Gap does
	// not depend on alpha here.
	Gap []float64
	// ModelGap[r] is (1/N)Σᵢ F(wᵢ) − F⋆, the average per-middleware-model
	// gap. Unlike Gap it grows with alpha: larger alpha means less mixing
	// and more spread between middleware models — the Table-III pathology.
	ModelGap []float64
	// MaxGradNorm2 is the largest squared gradient norm observed — an
	// empirical stand-in for G².
	MaxGradNorm2 float64
}

// RunFedCross simulates FedCross with full participation and the in-order
// strategy on the quadratic federation: every round each middleware model
// runs E gradient-descent steps on its client (with the Theorem-1 step
// size), then cross-aggregates with weight alpha. The assignment of
// models to clients rotates so every model visits every client, mirroring
// the shuffle dispatch.
func (q *QuadraticFederation) RunFedCross(rounds, e int, alpha float64, a Assumptions) TraceResult {
	n := len(q.Theta)
	dim := len(q.WStar)
	w := make([]nn.ParamVector, n)
	for i := range w {
		w[i] = make(nn.ParamVector, dim) // start at the origin
	}
	res := TraceResult{Gap: make([]float64, rounds), ModelGap: make([]float64, rounds)}
	t := 1
	for r := 0; r < rounds; r++ {
		// Local training: model i trains on client (i+r) mod N.
		for i := range w {
			client := (i + r) % n
			for step := 0; step < e; step++ {
				eta := a.LearningRate(t + step)
				grad := w[i].Sub(q.Theta[client]) // ∇fᵢ(w) = w − θᵢ
				if g2 := grad.Dot(grad); g2 > res.MaxGradNorm2 {
					res.MaxGradNorm2 = g2
				}
				w[i].AXPY(-eta, grad)
			}
		}
		t += e
		// Cross-aggregation (in-order).
		next := make([]nn.ParamVector, n)
		for i := range w {
			co := core.CoModelSel(core.InOrder, i, r, w, nil)
			next[i] = core.CrossAggr(w[i], w[co], alpha)
		}
		w = next
		res.Gap[r] = q.GlobalLoss(nn.MeanVectors(w)) - q.OptimalLoss()
		mg := 0.0
		for i := range w {
			mg += q.GlobalLoss(w[i]) - q.OptimalLoss()
		}
		res.ModelGap[r] = mg / float64(n)
	}
	return res
}
