package data

import (
	"testing"

	"fedcross/internal/tensor"
)

// TestLazyDropCaches pins the cache-shed contract a checkpoint-resume
// cycle relies on: DropCaches evicts exactly the unleased residents,
// leaves every live lease untouched, and the evicted shards re-synthesize
// bit-identically on the next Shard call.
func TestLazyDropCaches(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(9))
	const n = 24
	l := NewLazyStriped(train, AssignIID(train, n, tensor.NewRNG(8)), 32, 4)

	// Populate residency: lease-and-release the first 12 shards, keep
	// live leases on two of them.
	for id := 0; id < 12; id++ {
		l.Shard(id)
		if id != 3 && id != 7 {
			l.Release(id)
		}
	}
	leased3, leased7 := l.Shard(3), l.Shard(7) // second lease on each
	l.Release(3)
	l.Release(7)
	before := l.Resident()
	if before != 12 {
		t.Fatalf("want 12 resident shards, got %d", before)
	}
	if l.Outstanding() != 2 {
		t.Fatalf("want 2 outstanding leases, got %d", l.Outstanding())
	}

	dropped := l.DropCaches()
	if dropped != 10 {
		t.Fatalf("want 10 dropped (12 resident - 2 leased), got %d", dropped)
	}
	if got := l.Resident(); got != 2 {
		t.Fatalf("want 2 resident after drop, got %d", got)
	}
	if l.Outstanding() != 2 {
		t.Fatalf("DropCaches must not touch leases, outstanding %d", l.Outstanding())
	}
	// The leased shards' data is still the same backing store.
	if !sameShard(l.Shard(3), leased3) || !sameShard(l.Shard(7), leased7) {
		t.Fatal("leased shards must survive DropCaches intact")
	}
	l.Release(3)
	l.Release(7)

	// Evicted shards come back bit-identical: pure (seed, id) synthesis.
	eager := AssignIID(train, n, tensor.NewRNG(8)).Materialize(train)
	for id := 0; id < 12; id++ {
		if !sameShard(l.Shard(id), eager[id]) {
			t.Fatalf("shard %d differs after re-synthesis", id)
		}
		l.Release(id)
	}

	// A second drop on an all-unleased cache clears everything.
	l.Release(3)
	l.Release(7)
	if got := l.DropCaches(); got != 12 {
		t.Fatalf("second DropCaches must evict all 12 repopulated residents, got %d", got)
	}
	if l.Resident() != 0 {
		t.Fatalf("want 0 resident after final drop, got %d", l.Resident())
	}
	if l.Outstanding() != 0 {
		t.Fatalf("want 0 outstanding at end, got %d", l.Outstanding())
	}
}
