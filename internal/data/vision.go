package data

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// VisionConfig parameterises the synthetic vision generator that stands in
// for CIFAR-10/100.
type VisionConfig struct {
	// Classes is the label-space size (10 for the CIFAR-10 substitute,
	// 100 for CIFAR-100).
	Classes int
	// Features is the flat sample width; vision models expect
	// models.VisionFeatures (3×8×8 = 192).
	Features int
	// TrainPerClass / TestPerClass are sample counts per class.
	TrainPerClass, TestPerClass int
	// ModesPerClass controls intra-class multi-modality; >1 makes the
	// task non-linearly separable so model capacity matters.
	ModesPerClass int
	// Sep scales class-mean separation; smaller is harder.
	Sep float64
	// Noise is the per-sample Gaussian noise level.
	Noise float64
	// Seed drives all randomness in the generator.
	Seed int64
}

// DefaultVision10 mirrors CIFAR-10's role: a 10-class task with headroom
// between weak and strong models.
func DefaultVision10(seed int64) VisionConfig {
	return VisionConfig{
		Classes: 10, Features: 192,
		TrainPerClass: 100, TestPerClass: 25,
		ModesPerClass: 3, Sep: 1.0, Noise: 0.55, Seed: seed,
	}
}

// DefaultVision100 mirrors CIFAR-100: ten times the classes, fewer samples
// per class, lower attainable accuracy.
func DefaultVision100(seed int64) VisionConfig {
	return VisionConfig{
		Classes: 100, Features: 192,
		TrainPerClass: 12, TestPerClass: 4,
		ModesPerClass: 2, Sep: 1.0, Noise: 0.55, Seed: seed,
	}
}

// GenerateVision builds train and test sets from cfg. Each class is a
// mixture of ModesPerClass Gaussian modes placed around a class mean, and
// every sample passes through a shared fixed non-linear distortion, so the
// Bayes-optimal boundary is not linear.
func GenerateVision(cfg VisionConfig) (train, test *Dataset) {
	if cfg.Classes <= 1 || cfg.Features <= 0 {
		panic(fmt.Sprintf("data: invalid vision config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Frozen class structure: class mean + per-mode offsets.
	means := make([][]float64, cfg.Classes)
	modeOff := make([][][]float64, cfg.Classes)
	for c := range means {
		means[c] = randVec(rng, cfg.Features, cfg.Sep)
		modeOff[c] = make([][]float64, cfg.ModesPerClass)
		for m := range modeOff[c] {
			modeOff[c][m] = randVec(rng, cfg.Features, cfg.Sep*0.8)
		}
	}
	// Shared distortion: x -> x + 0.4·sin(2·shift + x rolled), applied
	// elementwise with a frozen per-feature phase. Cheap, smooth,
	// non-linear.
	phase := randVec(rng, cfg.Features, math.Pi)

	sample := func(rng *tensor.RNG, c int, dst []float64) {
		m := rng.Intn(cfg.ModesPerClass)
		for i := range dst {
			v := means[c][i] + modeOff[c][m][i] + rng.Normal(0, cfg.Noise)
			dst[i] = v + 0.4*math.Sin(2*v+phase[i])
		}
	}

	build := func(rng *tensor.RNG, perClass int) *Dataset {
		n := perClass * cfg.Classes
		x := tensor.Zeros(n, cfg.Features)
		y := make([]int, n)
		row := 0
		for c := 0; c < cfg.Classes; c++ {
			for k := 0; k < perClass; k++ {
				sample(rng, c, x.Data[row*cfg.Features:(row+1)*cfg.Features])
				y[row] = c
				row++
			}
		}
		return &Dataset{X: x, Y: y, Classes: cfg.Classes}
	}

	trainRNG := rng.Split()
	testRNG := rng.Split()
	return build(trainRNG, cfg.TrainPerClass), build(testRNG, cfg.TestPerClass)
}

func randVec(rng *tensor.RNG, n int, scale float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal(0, scale)
	}
	return v
}
