// Package data provides the synthetic datasets and client partitioners for
// the FedCross reproduction. Real CIFAR/LEAF corpora are unavailable in
// this offline pure-Go environment, so each paper dataset is replaced by a
// generator that preserves the property the evaluation depends on:
// class-conditional structure (so Dirichlet partitioning creates genuine
// heterogeneity), natural per-user skew for the LEAF-style tasks, and
// enough difficulty that model and algorithm choices matter. See
// DESIGN.md §2 for the substitution table.
package data

import (
	"fmt"

	"fedcross/internal/tensor"
)

// Dataset is a labelled sample collection with flat feature vectors.
type Dataset struct {
	// X holds one sample per row (N × D).
	X *tensor.Tensor
	// Y holds the integer class label of each row.
	Y []int
	// Classes is the number of distinct labels.
	Classes int
	// TokenVocab, when positive, marks the features as integer token ids
	// in [0, TokenVocab) stored as float64 (the text datasets). Synthetic
	// data injected into such a dataset — FedGen's generator
	// augmentation — must be discretised to valid ids first; 0 means
	// continuous features.
	TokenVocab int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Features returns the flat feature width.
func (d *Dataset) Features() int {
	if d.X.Rank() != 2 {
		panic(fmt.Sprintf("data: Dataset.X must be rank-2, got %v", d.X.Shape))
	}
	return d.X.Shape[1]
}

// Subset returns a new dataset containing the given row indices. The
// feature rows are copied, so the subset is independent of the parent.
func (d *Dataset) Subset(idx []int) *Dataset {
	w := d.Features()
	x := tensor.Zeros(len(idx), w)
	y := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("data: Subset index %d out of range [0,%d)", j, d.Len()))
		}
		copy(x.Data[i*w:(i+1)*w], d.X.Data[j*w:(j+1)*w])
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, Classes: d.Classes, TokenVocab: d.TokenVocab}
}

// Batch copies the rows idx into a (len(idx) × D) tensor plus labels,
// ready for a forward pass.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	x := tensor.Zeros(len(idx), d.Features())
	y := make([]int, len(idx))
	d.BatchInto(x, y, idx)
	return x, y
}

// BatchInto copies the rows idx into caller-owned buffers: x must be
// (len(idx) × D) and y must have len(idx) entries. It is the
// zero-allocation form of Batch for reused batch buffers.
func (d *Dataset) BatchInto(x *tensor.Tensor, y []int, idx []int) {
	w := d.Features()
	if x.Rank() != 2 || x.Shape[0] != len(idx) || x.Shape[1] != w || len(y) != len(idx) {
		panic(fmt.Sprintf("data: BatchInto buffers (%v, %d labels) do not fit %d×%d batch", x.Shape, len(y), len(idx), w))
	}
	for i, j := range idx {
		copy(x.Data[i*w:(i+1)*w], d.X.Data[j*w:(j+1)*w])
		y[i] = d.Y[j]
	}
}

// Batches splits a fresh random permutation of the dataset into mini
// batches of size batchSize (the final batch may be smaller) and calls fn
// for each. It is the training-epoch iterator. The x tensor and y slice
// passed to fn are reused between invocations and are only valid for the
// duration of the callback; copy them if they must outlive it.
func (d *Dataset) Batches(rng *tensor.RNG, batchSize int, fn func(x *tensor.Tensor, y []int)) {
	if batchSize <= 0 {
		panic(fmt.Sprintf("data: batch size %d must be positive", batchSize))
	}
	perm := rng.Perm(d.Len())
	w := d.Features()
	x := tensor.GetScratch(batchSize, w)
	defer tensor.PutScratch(x)
	y := make([]int, batchSize)
	for start := 0; start < len(perm); start += batchSize {
		end := start + batchSize
		if end > len(perm) {
			end = len(perm)
		}
		n := end - start
		bx := tensor.Ensure(x, n, w)
		by := y[:n]
		d.BatchInto(bx, by, perm[start:end])
		fn(bx, by)
	}
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Federated couples per-client training shards with a shared test set.
// Client data lives either in the eager Clients slice (legacy, always
// resident) or behind a virtualizing Source; when Source is non-nil it
// wins and Clients stays nil. All consumers go through the accessor
// methods below, which collapse both layouts onto the lease discipline.
type Federated struct {
	// Name identifies the dataset in reports.
	Name string
	// Clients holds one training shard per client (eager layout). Nil
	// when Source is set.
	Clients []*Dataset
	// Source, when non-nil, produces client shards on demand.
	Source ClientSource
	// Test is the held-out evaluation set shared by all methods.
	Test *Dataset
	// Classes is the label-space size.
	Classes int
}

// NumClients returns the number of client shards.
func (f *Federated) NumClients() int {
	if f.Source != nil {
		return f.Source.NumClients()
	}
	return len(f.Clients)
}

// Size returns client ci's sample count without materializing its shard.
func (f *Federated) Size(ci int) int {
	if f.Source != nil {
		return f.Source.Size(ci)
	}
	return f.Clients[ci].Len()
}

// LeaseShard returns client ci's shard, synthesizing it when the data is
// virtualized. Every call must be paired with ReleaseShard(ci) once the
// shard is no longer used; for the eager layout the lease is a plain
// index and release is a no-op, so legacy behavior is unchanged.
func (f *Federated) LeaseShard(ci int) *Dataset {
	if f.Source != nil {
		return f.Source.Shard(ci)
	}
	return f.Clients[ci]
}

// ReleaseShard returns a lease taken by LeaseShard.
func (f *Federated) ReleaseShard(ci int) {
	if f.Source != nil {
		f.Source.Release(ci)
	}
}

// OutstandingLeases reports the source's live lease count (always zero
// for the eager layout).
func (f *Federated) OutstandingLeases() int {
	if f.Source != nil {
		return f.Source.Outstanding()
	}
	return 0
}

// SourceStats returns the source's cache telemetry when the federation
// is virtualized behind a source that exposes it (the lazy LRU); eager
// federations and plain sources report ok = false.
func (f *Federated) SourceStats() (CacheStats, bool) {
	if s, ok := f.Source.(CacheStatser); ok {
		return s.CacheStats(), true
	}
	return CacheStats{}, false
}

// Trainable reports whether client ci holds at least one sample. Eager
// federations report every client trainable so empty shards still
// surface the legacy "empty shard" training error; virtualized
// federations (where at million-client scale empty shards are expected,
// not exceptional) are filtered out of selection instead.
func (f *Federated) Trainable(ci int) bool {
	return f.Source == nil || f.Source.Size(ci) > 0
}

// TotalTrainSamples returns the number of training samples across all
// clients. It reads metadata sizes only — computing aggregation weights
// never forces shard materialization.
func (f *Federated) TotalTrainSamples() int {
	n := 0
	for ci := 0; ci < f.NumClients(); ci++ {
		n += f.Size(ci)
	}
	return n
}

// DistributionMatrix returns counts[class][client], the Fig-3 heat-map
// data. Shards are leased one at a time, so a virtualized federation
// only ever holds its LRU working set resident.
func (f *Federated) DistributionMatrix() [][]int {
	n := f.NumClients()
	m := make([][]int, f.Classes)
	for c := range m {
		m[c] = make([]int, n)
	}
	for ci := 0; ci < n; ci++ {
		shard := f.LeaseShard(ci)
		for _, y := range shard.Y {
			m[y][ci]++
		}
		f.ReleaseShard(ci)
	}
	return m
}
