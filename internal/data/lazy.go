package data

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Lazy synthesizes shards on demand from an Assignment over a shared
// immutable base dataset, caching them in a bounded lease-aware LRU that
// is sharded by client id: clamp(NumCPU, 8, 64) stripes by default, each
// with its own mutex, LRU clock and capacity slice, so concurrent
// TrainAll workers leasing different clients never contend on one lock.
// Row synthesis (Dataset.Subset) always runs outside every stripe lock —
// the lock guards only map bookkeeping — so even same-stripe leases
// overlap their copies. A leased entry is pinned (never evicted); an
// unleased entry is evicted in least-recently-used order within its
// stripe once the stripe exceeds its capacity share. Cached shards never
// alias base storage and the base stays immutable — the same
// copy-on-lease structure the experiments EnvCache uses for environments.
//
// A Lazy additionally owns a bounded background prefetch pool (see
// Prefetch): the engines hand it the next round's planned cohort so
// shard synthesis overlaps the current round's training. Prefetched
// entries are pinned-soft — counted against capacity and evictable like
// any unleased entry — and prefetch never forces overflow: when every
// resident entry of a stripe is leased, a prefetch insert is dropped
// rather than growing the cache.
type Lazy struct {
	base     *Dataset
	asg      *Assignment
	capacity int

	// geo is the live stripe set. Restripe retires a set (under every
	// stripe lock) and swaps in a fresh one; lockStripe re-loads until it
	// locks a stripe of the live set, so entries can never be stranded in
	// a retired map.
	geo atomic.Pointer[stripeSet]

	outstanding atomic.Int64

	// Cache telemetry (CacheStats). overflow counts leases that grew a
	// fully-pinned stripe past its capacity share — the documented
	// degradation mode when every resident entry is leased at once.
	hits, misses, prefetchHits, evictions, overflow atomic.Int64

	pf prefetchPool
}

type stripeSet struct {
	stripes []*lazyStripe
	// retired is written under ALL stripe locks and read under any one
	// stripe lock, so a goroutine that locked a stale stripe always
	// observes it and retries against the live set.
	retired bool
}

type lazyStripe struct {
	mu       sync.Mutex
	cache    map[int]*lazyShard
	tick     uint64
	capacity int
}

type lazyShard struct {
	ds         *Dataset
	leases     int
	used       uint64
	prefetched bool // inserted by the prefetch pool, not yet leased
}

// DefaultLazyCapacity bounds the shard cache when the caller passes a
// non-positive capacity.
const DefaultLazyCapacity = 256

// DefaultCacheStripes returns the default stripe count,
// clamp(NumCPU, 8, 64): at least 8 so a few workers rarely collide even
// on small boxes, at most 64 so stripe bookkeeping stays negligible.
func DefaultCacheStripes() int {
	return clampStripes(runtime.NumCPU())
}

func clampStripes(n int) int {
	if n < 8 {
		return 8
	}
	if n > 64 {
		return 64
	}
	return n
}

// defaultPrefetchWorkers bounds the background synthesis pool: half the
// cores (training owns the rest), at least one, at most eight.
func defaultPrefetchWorkers() int {
	w := runtime.NumCPU() / 2
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// NewLazy builds a lazy source over base with the given assignment and
// the default stripe count. capacity bounds the number of resident
// shards (≤ 0 selects DefaultLazyCapacity); leased shards can push the
// resident count past the bound, which shrinks back as leases are
// released.
func NewLazy(base *Dataset, asg *Assignment, capacity int) *Lazy {
	return NewLazyStriped(base, asg, capacity, 0)
}

// NewLazyStriped is NewLazy with an explicit stripe count (≤ 0 selects
// DefaultCacheStripes). The count is clamped to [1, capacity] so every
// stripe owns at least one cache slot. Stripe geometry affects only
// which lock a lease takes and where LRU order is tracked — synthesized
// shard bytes, and therefore every training history, are identical at
// every stripe count.
func NewLazyStriped(base *Dataset, asg *Assignment, capacity, stripes int) *Lazy {
	if capacity <= 0 {
		capacity = DefaultLazyCapacity
	}
	l := &Lazy{base: base, asg: asg, capacity: capacity}
	l.geo.Store(newStripeSet(capacity, resolveStripes(stripes, capacity)))
	l.pf.maxWorkers = defaultPrefetchWorkers()
	l.pf.idle = sync.NewCond(&l.pf.mu)
	return l
}

func resolveStripes(stripes, capacity int) int {
	if stripes <= 0 {
		stripes = DefaultCacheStripes()
	}
	if stripes > capacity {
		stripes = capacity
	}
	if stripes < 1 {
		stripes = 1
	}
	return stripes
}

// newStripeSet distributes capacity across stripes: every stripe gets
// capacity/stripes slots and the first capacity%stripes get one extra,
// so the per-stripe shares always sum to the global capacity.
func newStripeSet(capacity, stripes int) *stripeSet {
	set := &stripeSet{stripes: make([]*lazyStripe, stripes)}
	base, extra := capacity/stripes, capacity%stripes
	for i := range set.stripes {
		c := base
		if i < extra {
			c++
		}
		set.stripes[i] = &lazyStripe{cache: map[int]*lazyShard{}, capacity: c}
	}
	return set
}

// lockStripe locks and returns client id's stripe in the live set. If a
// Restripe retired the set between load and lock, the stale lock is
// dropped and the lookup retries — so every caller always mutates the
// live geometry.
func (l *Lazy) lockStripe(id int) *lazyStripe {
	for {
		set := l.geo.Load()
		st := set.stripes[id%len(set.stripes)]
		st.mu.Lock()
		if !set.retired {
			return st
		}
		st.mu.Unlock()
	}
}

// NumClients returns the assignment's client count.
func (l *Lazy) NumClients() int { return l.asg.NumClients() }

// Size returns client id's sample count from assignment metadata alone.
func (l *Lazy) Size(id int) int { return l.asg.Size(id) }

// Shard leases client id's shard. A hit pins the cached entry; a miss
// synthesizes the shard outside the stripe lock (so concurrent misses —
// the steady state of a huge-K round — copy rows fully in parallel) and
// inserts it, evicting unleased LRU entries from the stripe to stay
// within its capacity share.
func (l *Lazy) Shard(id int) *Dataset {
	st := l.lockStripe(id)
	if e, ok := st.cache[id]; ok {
		ds := l.leaseLocked(st, e)
		l.hits.Add(1)
		st.mu.Unlock()
		return ds
	}
	st.mu.Unlock()

	ds := l.base.Subset(l.asg.Rows(id))

	st = l.lockStripe(id)
	defer st.mu.Unlock()
	l.misses.Add(1)
	if e, ok := st.cache[id]; ok {
		// Lost a same-id synthesis race (another lessee or the prefetch
		// pool landed first): lease the resident copy, drop ours.
		return l.leaseLocked(st, e)
	}
	if !l.shrinkLocked(st) {
		// Every resident entry is leased: the lease must still succeed,
		// so the stripe grows past its share — counted, never silent.
		l.overflow.Add(1)
	}
	st.tick++
	st.cache[id] = &lazyShard{ds: ds, leases: 1, used: st.tick}
	l.outstanding.Add(1)
	return ds
}

// leaseLocked pins e and refreshes its LRU position. Caller holds st.mu.
func (l *Lazy) leaseLocked(st *lazyStripe, e *lazyShard) *Dataset {
	st.tick++
	e.leases++
	e.used = st.tick
	if e.prefetched {
		e.prefetched = false
		l.prefetchHits.Add(1)
	}
	l.outstanding.Add(1)
	return e.ds
}

// shrinkLocked evicts unleased LRU entries until the stripe has room for
// one more entry within its capacity share. It reports whether room
// exists (it may not, when every resident entry is leased — the caller
// decides whether to overflow or drop).
func (l *Lazy) shrinkLocked(st *lazyStripe) bool {
	for len(st.cache) >= st.capacity {
		victim, best := -1, uint64(0)
		for id, e := range st.cache {
			if e.leases > 0 {
				continue
			}
			if victim < 0 || e.used < best {
				victim, best = id, e.used
			}
		}
		if victim < 0 {
			return false
		}
		delete(st.cache, victim)
		l.evictions.Add(1)
	}
	return true
}

// DropCaches evicts every unleased resident shard and returns how many
// were dropped. Shards are pure functions of (seed, id), so the cache is
// always reconstructible; a checkpoint-resume cycle or a memory-pressure
// signal can call this to shed residency without touching any lease the
// training loop still holds. Prefetch should be quiesced first — entries
// landing concurrently survive or die by timing, which is fine for a
// best-effort shed but noisy for accounting.
func (l *Lazy) DropCaches() int {
	dropped := 0
	set := l.geo.Load()
	for i := range set.stripes {
		st := l.lockStripe(i)
		for id, e := range st.cache {
			if e.leases > 0 {
				continue
			}
			delete(st.cache, id)
			l.evictions.Add(1)
			dropped++
		}
		st.mu.Unlock()
	}
	return dropped
}

// Release returns a lease taken by Shard.
func (l *Lazy) Release(id int) {
	st := l.lockStripe(id)
	defer st.mu.Unlock()
	e, ok := st.cache[id]
	if !ok || e.leases <= 0 {
		panic(fmt.Sprintf("data: Lazy.Release(%d) without a matching Shard lease", id))
	}
	e.leases--
	l.outstanding.Add(-1)
}

// Outstanding returns the live lease count.
func (l *Lazy) Outstanding() int { return int(l.outstanding.Load()) }

// Resident returns the number of shards currently synthesized — the
// cache-pressure observable the scale tests assert on.
func (l *Lazy) Resident() int {
	set := l.geo.Load()
	n := 0
	for _, st := range set.stripes {
		st.mu.Lock()
		n += len(st.cache)
		st.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of a lazy source's cache
// telemetry. Counters are cumulative over the source's lifetime.
type CacheStats struct {
	// Resident is the number of synthesized shards currently cached;
	// Outstanding is the live lease count; Stripes is the cache geometry.
	Resident, Outstanding, Stripes int
	// Hits / Misses count Shard calls served from cache vs synthesized.
	// PrefetchHits counts hits whose entry was warmed by the prefetch
	// pool before its first lease — the prefetch-overlap win observable.
	Hits, Misses, PrefetchHits int64
	// Evictions counts entries dropped under capacity pressure.
	// Overflow counts leases that grew a fully-pinned stripe past its
	// capacity share — nonzero means the working set exceeded the cache
	// bound and the cache degraded gracefully instead of evicting a
	// pinned lease.
	Evictions, Overflow int64
}

// CacheStatser is implemented by sources that expose cache telemetry.
type CacheStatser interface {
	CacheStats() CacheStats
}

// CacheStats returns the source's current telemetry snapshot.
func (l *Lazy) CacheStats() CacheStats {
	return CacheStats{
		Resident:     l.Resident(),
		Outstanding:  l.Outstanding(),
		Stripes:      len(l.geo.Load().stripes),
		Hits:         l.hits.Load(),
		Misses:       l.misses.Load(),
		PrefetchHits: l.prefetchHits.Load(),
		Evictions:    l.evictions.Load(),
		Overflow:     l.overflow.Load(),
	}
}

// Restriper is implemented by sources whose cache geometry can be
// reconfigured before use (the fl.Config.CacheStripes knob).
type Restriper interface {
	// Restripe rebuilds the cache with the given stripe count and
	// reports whether it took effect.
	Restripe(stripes int) bool
}

// Restripe rebuilds the cache with the given stripe count (≤ 0 selects
// the default, clamped to capacity as in NewLazyStriped). It succeeds
// only while the cache is cold — nothing resident, nothing leased — so
// engines apply it between construction and the first lease; a warm
// cache keeps its geometry and Restripe reports false. Restriping never
// affects shard bytes, only lock placement.
func (l *Lazy) Restripe(stripes int) bool {
	stripes = resolveStripes(stripes, l.capacity)
	set := l.geo.Load()
	if len(set.stripes) == stripes {
		return true
	}
	for _, st := range set.stripes {
		st.mu.Lock()
	}
	resident := 0
	for _, st := range set.stripes {
		resident += len(st.cache)
	}
	ok := resident == 0 && l.outstanding.Load() == 0
	if ok {
		set.retired = true
		l.geo.Store(newStripeSet(l.capacity, stripes))
	}
	for _, st := range set.stripes {
		st.mu.Unlock()
	}
	return ok
}

// Prefetcher is implemented by sources that can warm shards ahead of
// their first lease. Prefetch must never draw from any simulation RNG —
// it only changes whether a later Shard call hits or synthesizes — so
// warming is always invisible to training histories.
type Prefetcher interface {
	// Prefetch enqueues ids for background synthesis and returns
	// immediately.
	Prefetch(ids []int)
	// CancelPrefetch drops work not yet started and waits for in-flight
	// synthesis to finish, so a caller that exits early never leaves
	// background goroutines touching the cache.
	CancelPrefetch()
}

// prefetchPool is the bounded background synthesis pool. Workers exist
// only while queued work does: Prefetch spawns up to maxWorkers, each
// exits when the queue drains, and idle signals the last exit so
// CancelPrefetch/WaitPrefetch can rendezvous without polling.
type prefetchPool struct {
	mu         sync.Mutex
	queue      []int
	workers    int
	maxWorkers int
	idle       *sync.Cond
}

// Prefetch enqueues the given client ids for background synthesis and
// returns immediately; ids are copied, so the caller may reuse or
// mutate the slice as soon as the call returns. Empty and out-of-range
// ids are skipped (a planned cohort may include dropout slots). Shards
// already resident are skipped at processing time; synthesized entries
// enter the cache pinned-soft (evictable, counted against capacity).
func (l *Lazy) Prefetch(ids []int) {
	l.pf.mu.Lock()
	for _, id := range ids {
		if id >= 0 && id < l.asg.NumClients() && l.asg.Size(id) > 0 {
			l.pf.queue = append(l.pf.queue, id)
		}
	}
	spawn := len(l.pf.queue)
	if max := l.pf.maxWorkers - l.pf.workers; spawn > max {
		spawn = max
	}
	l.pf.workers += spawn
	l.pf.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go l.prefetchWorker()
	}
}

func (l *Lazy) prefetchWorker() {
	for {
		l.pf.mu.Lock()
		if len(l.pf.queue) == 0 {
			l.pf.workers--
			if l.pf.workers == 0 {
				l.pf.idle.Broadcast()
			}
			l.pf.mu.Unlock()
			return
		}
		id := l.pf.queue[0]
		l.pf.queue = l.pf.queue[1:]
		l.pf.mu.Unlock()
		l.prefetchOne(id)
	}
}

// prefetchOne synthesizes id into the cache if absent, outside every
// stripe lock, dropping the copy when a lessee raced it in or when the
// stripe is fully pinned (prefetch never forces overflow).
func (l *Lazy) prefetchOne(id int) {
	st := l.lockStripe(id)
	if _, ok := st.cache[id]; ok {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()

	ds := l.base.Subset(l.asg.Rows(id))

	st = l.lockStripe(id)
	defer st.mu.Unlock()
	if _, ok := st.cache[id]; ok {
		return
	}
	if !l.shrinkLocked(st) {
		return
	}
	st.tick++
	st.cache[id] = &lazyShard{ds: ds, used: st.tick, prefetched: true}
}

// CancelPrefetch drops every queued-but-unstarted prefetch and blocks
// until in-flight synthesis finishes. After it returns no pool goroutine
// touches the cache until the next Prefetch call.
func (l *Lazy) CancelPrefetch() {
	l.pf.mu.Lock()
	defer l.pf.mu.Unlock()
	l.pf.queue = nil
	for l.pf.workers > 0 {
		l.pf.idle.Wait()
	}
}

// WaitPrefetch blocks until the prefetch queue has fully drained — every
// enqueued id processed, every worker exited. It is the deterministic
// warm-up used by tests and benchmarks; engines use CancelPrefetch.
func (l *Lazy) WaitPrefetch() {
	l.pf.mu.Lock()
	defer l.pf.mu.Unlock()
	for l.pf.workers > 0 || len(l.pf.queue) > 0 {
		l.pf.idle.Wait()
	}
}
