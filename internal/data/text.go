package data

import (
	"fmt"

	"fedcross/internal/tensor"
)

// ShakespeareConfig parameterises the synthetic Shakespeare substitute: a
// next-character prediction task where each client ("role") speaks from
// its own Markov source, giving the natural per-client distribution skew
// of the real LEAF split.
type ShakespeareConfig struct {
	// Vocab is the character-alphabet size.
	Vocab int
	// SeqLen is the context window T; the label is the character that
	// follows the window.
	SeqLen int
	// Clients is the number of roles.
	Clients int
	// SamplesPerClient is the number of (window, next-char) pairs each
	// role contributes.
	SamplesPerClient int
	// TestSamples is the size of the shared test set (drawn from all
	// roles' sources).
	TestSamples int
	// Mix in [0,1] blends each role's private transition matrix with the
	// shared one; 1 would make all roles identical.
	Mix float64
	// Seed drives the generator.
	Seed int64
}

// DefaultShakespeare gives a CPU-scale stand-in for the paper's
// 128-client Shakespeare task.
func DefaultShakespeare(seed int64) ShakespeareConfig {
	return ShakespeareConfig{
		Vocab: 24, SeqLen: 8, Clients: 32, SamplesPerClient: 40,
		TestSamples: 400, Mix: 0.6, Seed: seed,
	}
}

// GenerateShakespeare builds the federated char-LM task.
func GenerateShakespeare(cfg ShakespeareConfig) *Federated {
	if cfg.Vocab <= 1 || cfg.SeqLen <= 0 || cfg.Clients <= 0 {
		panic(fmt.Sprintf("data: invalid Shakespeare config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)

	shared := markovMatrix(rng, cfg.Vocab, 2.0)
	roleMats := make([][][]float64, cfg.Clients)
	for r := range roleMats {
		private := markovMatrix(rng, cfg.Vocab, 0.3) // peaky private habits
		roleMats[r] = blendMatrices(shared, private, cfg.Mix)
	}

	genSeq := func(rng *tensor.RNG, mat [][]float64, n int) []int {
		seq := make([]int, n)
		seq[0] = rng.Intn(cfg.Vocab)
		for i := 1; i < n; i++ {
			seq[i] = sampleRow(rng, mat[seq[i-1]])
		}
		return seq
	}

	makeSet := func(rng *tensor.RNG, mat [][]float64, samples int) *Dataset {
		x := tensor.Zeros(samples, cfg.SeqLen)
		y := make([]int, samples)
		for i := 0; i < samples; i++ {
			seq := genSeq(rng, mat, cfg.SeqLen+1)
			for t := 0; t < cfg.SeqLen; t++ {
				x.Data[i*cfg.SeqLen+t] = float64(seq[t])
			}
			y[i] = seq[cfg.SeqLen]
		}
		return &Dataset{X: x, Y: y, Classes: cfg.Vocab, TokenVocab: cfg.Vocab}
	}

	clients := make([]*Dataset, cfg.Clients)
	for r := range clients {
		clients[r] = makeSet(rng.Split(), roleMats[r], cfg.SamplesPerClient)
	}
	// Test set: samples drawn from every role's source in turn.
	testRNG := rng.Split()
	xt := tensor.Zeros(cfg.TestSamples, cfg.SeqLen)
	yt := make([]int, cfg.TestSamples)
	for i := 0; i < cfg.TestSamples; i++ {
		mat := roleMats[i%cfg.Clients]
		seq := genSeq(testRNG, mat, cfg.SeqLen+1)
		for t := 0; t < cfg.SeqLen; t++ {
			xt.Data[i*cfg.SeqLen+t] = float64(seq[t])
		}
		yt[i] = seq[cfg.SeqLen]
	}

	return &Federated{
		Name:    "synth-shakespeare",
		Clients: clients,
		Test:    &Dataset{X: xt, Y: yt, Classes: cfg.Vocab, TokenVocab: cfg.Vocab},
		Classes: cfg.Vocab,
	}
}

// Sent140Config parameterises the synthetic Sent140 substitute: binary
// sentiment over token sequences, with per-user topic vocabularies.
type Sent140Config struct {
	// Vocab is the token-space size.
	Vocab int
	// SeqLen is the tweet length in tokens.
	SeqLen int
	// Clients is the number of users.
	Clients int
	// SamplesPerClient is the tweets per user.
	SamplesPerClient int
	// TestSamples is the shared test-set size.
	TestSamples int
	// SentimentTokens is the number of vocabulary entries reserved for
	// each polarity; the rest are topic/noise tokens.
	SentimentTokens int
	// Seed drives the generator.
	Seed int64
}

// DefaultSent140 gives a CPU-scale stand-in for the paper's 803-user
// Sent140 task.
func DefaultSent140(seed int64) Sent140Config {
	return Sent140Config{
		Vocab: 40, SeqLen: 8, Clients: 40, SamplesPerClient: 30,
		TestSamples: 400, SentimentTokens: 6, Seed: seed,
	}
}

// GenerateSent140 builds the federated sentiment task. Tweets mix
// sentiment-bearing tokens (shared across users) with user-specific topic
// tokens, so the label signal is global but the marginals are non-IID.
func GenerateSent140(cfg Sent140Config) *Federated {
	if cfg.Vocab <= 2*cfg.SentimentTokens || cfg.Clients <= 0 {
		panic(fmt.Sprintf("data: invalid Sent140 config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)
	topicLo := 2 * cfg.SentimentTokens // tokens [0,S) positive, [S,2S) negative

	makeTweet := func(rng *tensor.RNG, label int, topicBase int, dst []float64) {
		for t := range dst {
			r := rng.Float64()
			switch {
			case r < 0.4: // sentiment token of the label's polarity
				dst[t] = float64(label*cfg.SentimentTokens + rng.Intn(cfg.SentimentTokens))
			case r < 0.5: // contrarian token (noise)
				dst[t] = float64((1-label)*cfg.SentimentTokens + rng.Intn(cfg.SentimentTokens))
			default: // user-topic token
				span := cfg.Vocab - topicLo
				dst[t] = float64(topicLo + (topicBase+rng.Intn(span/4+1))%span)
			}
		}
	}

	clients := make([]*Dataset, cfg.Clients)
	for u := 0; u < cfg.Clients; u++ {
		crng := rng.Split()
		topicBase := crng.Intn(cfg.Vocab - topicLo)
		// Users have a sentiment bias (label imbalance).
		posRate := 0.25 + 0.5*crng.Float64()
		x := tensor.Zeros(cfg.SamplesPerClient, cfg.SeqLen)
		y := make([]int, cfg.SamplesPerClient)
		for i := 0; i < cfg.SamplesPerClient; i++ {
			label := 0
			if crng.Float64() < posRate {
				label = 1
			}
			y[i] = label
			makeTweet(crng, label, topicBase, x.Data[i*cfg.SeqLen:(i+1)*cfg.SeqLen])
		}
		clients[u] = &Dataset{X: x, Y: y, Classes: 2, TokenVocab: cfg.Vocab}
	}

	testRNG := rng.Split()
	xt := tensor.Zeros(cfg.TestSamples, cfg.SeqLen)
	yt := make([]int, cfg.TestSamples)
	for i := 0; i < cfg.TestSamples; i++ {
		label := i % 2
		yt[i] = label
		makeTweet(testRNG, label, testRNG.Intn(cfg.Vocab-topicLo), xt.Data[i*cfg.SeqLen:(i+1)*cfg.SeqLen])
	}

	return &Federated{
		Name:    "synth-sent140",
		Clients: clients,
		Test:    &Dataset{X: xt, Y: yt, Classes: 2, TokenVocab: cfg.Vocab},
		Classes: 2,
	}
}

// markovMatrix draws a row-stochastic transition matrix whose rows are
// Dir(alpha) samples; small alpha gives peaky (distinctive) dynamics.
func markovMatrix(rng *tensor.RNG, n int, alpha float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = rng.Dirichlet(alpha, n)
	}
	return m
}

// blendMatrices returns mix*shared + (1-mix)*private, rowwise.
func blendMatrices(shared, private [][]float64, mix float64) [][]float64 {
	n := len(shared)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = mix*shared[i][j] + (1-mix)*private[i][j]
		}
	}
	return out
}

// sampleRow draws an index from a probability row.
func sampleRow(rng *tensor.RNG, p []float64) int {
	r := rng.Float64()
	cum := 0.0
	for i, v := range p {
		cum += v
		if r < cum {
			return i
		}
	}
	return len(p) - 1
}
