package data

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// FEMNISTConfig parameterises the synthetic FEMNIST substitute: a
// glyph-classification task that is naturally non-IID because every client
// is a "writer" with a private style transform, and sample counts differ
// per writer — the two heterogeneity axes of the real FEMNIST.
type FEMNISTConfig struct {
	// Classes is the glyph count (real FEMNIST has 62).
	Classes int
	// Features is the flat sample width (defaults target the vision
	// models' 192 input).
	Features int
	// Writers is the number of clients.
	Writers int
	// MinSamples/MaxSamples bound each writer's shard size.
	MinSamples, MaxSamples int
	// TestSamples is the size of the shared held-out set.
	TestSamples int
	// StyleStrength scales the per-writer style transform; 0 makes the
	// task IID.
	StyleStrength float64
	// Seed drives the generator.
	Seed int64
}

// DefaultFEMNIST mirrors the paper's 180-writer setting at CPU scale. The
// task is intentionally easier than the vision tasks (the paper notes even
// FedAvg is near-optimal on FEMNIST).
func DefaultFEMNIST(seed int64) FEMNISTConfig {
	return FEMNISTConfig{
		Classes: 62, Features: 192,
		Writers: 60, MinSamples: 20, MaxSamples: 60,
		TestSamples: 620, StyleStrength: 0.3, Seed: seed,
	}
}

// GenerateFEMNIST builds the federated glyph task. Glyph prototypes are
// well separated (easy task); each writer's samples are the prototype plus
// the writer's style offset plus noise. The test set is style-free, so it
// measures writer-independent generalisation.
func GenerateFEMNIST(cfg FEMNISTConfig) *Federated {
	if cfg.Writers <= 0 || cfg.Classes <= 1 {
		panic(fmt.Sprintf("data: invalid FEMNIST config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)

	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		protos[c] = randVec(rng, cfg.Features, 1.6) // large separation => easy
	}
	const noise = 0.4

	clients := make([]*Dataset, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		style := randVec(rng, cfg.Features, cfg.StyleStrength)
		gain := 1 + cfg.StyleStrength*(rng.Float64()-0.5)
		n := cfg.MinSamples
		if cfg.MaxSamples > cfg.MinSamples {
			n += rng.Intn(cfg.MaxSamples - cfg.MinSamples + 1)
		}
		x := tensor.Zeros(n, cfg.Features)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			// Writers favour a subset of glyphs (class imbalance).
			c := rng.Intn(cfg.Classes)
			if rng.Float64() < 0.5 {
				c = (w*7 + rng.Intn(8)) % cfg.Classes
			}
			y[i] = c
			row := x.Data[i*cfg.Features : (i+1)*cfg.Features]
			for j := range row {
				v := gain*protos[c][j] + style[j] + rng.Normal(0, noise)
				row[j] = math.Tanh(v)
			}
		}
		clients[w] = &Dataset{X: x, Y: y, Classes: cfg.Classes}
	}

	// Style-free test set.
	xt := tensor.Zeros(cfg.TestSamples, cfg.Features)
	yt := make([]int, cfg.TestSamples)
	for i := 0; i < cfg.TestSamples; i++ {
		c := i % cfg.Classes
		yt[i] = c
		row := xt.Data[i*cfg.Features : (i+1)*cfg.Features]
		for j := range row {
			row[j] = math.Tanh(protos[c][j] + rng.Normal(0, noise))
		}
	}

	return &Federated{
		Name:    "synth-femnist",
		Clients: clients,
		Test:    &Dataset{X: xt, Y: yt, Classes: cfg.Classes},
		Classes: cfg.Classes,
	}
}
