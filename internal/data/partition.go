package data

import (
	"fmt"

	"fedcross/internal/tensor"
)

// DirichletPartition splits src across numClients shards using the
// Dir(beta) label-skew scheme of Hsu et al. (the paper's heterogeneity
// control): for every class, a Dirichlet draw decides what fraction of
// that class each client receives. Smaller beta means more skew. Every
// sample is assigned to exactly one client; clients that would end up
// empty are topped up with one sample stolen from the largest shard so
// every client can train.
// Both eager partitioners are thin wrappers over the Assignment metadata
// builders (assignment.go): compute boundaries once, then materialize
// every shard. The split keeps one RNG-consumption order shared with the
// Lazy client source, which is what makes eager and lazy federations
// bit-identical for the same partition seed.
func DirichletPartition(src *Dataset, numClients int, beta float64, rng *tensor.RNG) []*Dataset {
	return AssignDirichlet(src, numClients, beta, rng).Materialize(src)
}

// IIDPartition deals the (shuffled) samples round-robin so each client
// receives an equally sized, class-balanced shard.
func IIDPartition(src *Dataset, numClients int, rng *tensor.RNG) []*Dataset {
	return AssignIID(src, numClients, rng).Materialize(src)
}

// Heterogeneity names a client-data distribution setting, mirroring the
// paper's Table II third column.
type Heterogeneity struct {
	// IID selects the uniform split; when false, Beta drives Dir(β).
	IID bool
	// Beta is the Dirichlet concentration for non-IID splits.
	Beta float64
}

// String renders the setting the way the paper's tables do.
func (h Heterogeneity) String() string {
	if h.IID {
		return "IID"
	}
	return fmt.Sprintf("beta=%.1f", h.Beta)
}

// Partition applies the setting to src.
func (h Heterogeneity) Partition(src *Dataset, numClients int, rng *tensor.RNG) []*Dataset {
	if h.IID {
		return IIDPartition(src, numClients, rng)
	}
	return DirichletPartition(src, numClients, h.Beta, rng)
}
