package data

import (
	"fmt"

	"fedcross/internal/tensor"
)

// DirichletPartition splits src across numClients shards using the
// Dir(beta) label-skew scheme of Hsu et al. (the paper's heterogeneity
// control): for every class, a Dirichlet draw decides what fraction of
// that class each client receives. Smaller beta means more skew. Every
// sample is assigned to exactly one client; clients that would end up
// empty are topped up with one sample stolen from the largest shard so
// every client can train.
func DirichletPartition(src *Dataset, numClients int, beta float64, rng *tensor.RNG) []*Dataset {
	if numClients <= 0 {
		panic(fmt.Sprintf("data: DirichletPartition: numClients %d", numClients))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("data: DirichletPartition: beta %v must be positive", beta))
	}
	assign := make([][]int, numClients)

	// Per-class index pools, shuffled.
	byClass := make([][]int, src.Classes)
	for i, y := range src.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, pool := range byClass {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}

	for _, pool := range byClass {
		if len(pool) == 0 {
			continue
		}
		p := rng.Dirichlet(beta, numClients)
		// Convert proportions to cumulative slot boundaries.
		cum := 0.0
		start := 0
		for ci := 0; ci < numClients; ci++ {
			cum += p[ci]
			end := int(cum*float64(len(pool)) + 0.5)
			if ci == numClients-1 {
				end = len(pool)
			}
			if end > len(pool) {
				end = len(pool)
			}
			if end > start {
				assign[ci] = append(assign[ci], pool[start:end]...)
			}
			start = end
		}
	}

	topUpEmpty(assign, rng)

	out := make([]*Dataset, numClients)
	for ci := range assign {
		out[ci] = src.Subset(assign[ci])
	}
	return out
}

// IIDPartition deals the (shuffled) samples round-robin so each client
// receives an equally sized, class-balanced shard.
func IIDPartition(src *Dataset, numClients int, rng *tensor.RNG) []*Dataset {
	if numClients <= 0 {
		panic(fmt.Sprintf("data: IIDPartition: numClients %d", numClients))
	}
	perm := rng.Perm(src.Len())
	assign := make([][]int, numClients)
	for i, idx := range perm {
		ci := i % numClients
		assign[ci] = append(assign[ci], idx)
	}
	topUpEmpty(assign, rng)
	out := make([]*Dataset, numClients)
	for ci := range assign {
		out[ci] = src.Subset(assign[ci])
	}
	return out
}

// topUpEmpty moves one sample from the largest shard into any empty shard
// so every client can run at least one training step. It preserves the
// exactly-once assignment invariant.
func topUpEmpty(assign [][]int, rng *tensor.RNG) {
	for ci := range assign {
		if len(assign[ci]) > 0 {
			continue
		}
		largest := 0
		for cj := range assign {
			if len(assign[cj]) > len(assign[largest]) {
				largest = cj
			}
		}
		if len(assign[largest]) <= 1 {
			continue // nothing to steal without emptying the donor
		}
		k := rng.Intn(len(assign[largest]))
		assign[ci] = append(assign[ci], assign[largest][k])
		assign[largest] = append(assign[largest][:k], assign[largest][k+1:]...)
	}
}

// Heterogeneity names a client-data distribution setting, mirroring the
// paper's Table II third column.
type Heterogeneity struct {
	// IID selects the uniform split; when false, Beta drives Dir(β).
	IID bool
	// Beta is the Dirichlet concentration for non-IID splits.
	Beta float64
}

// String renders the setting the way the paper's tables do.
func (h Heterogeneity) String() string {
	if h.IID {
		return "IID"
	}
	return fmt.Sprintf("beta=%.1f", h.Beta)
}

// Partition applies the setting to src.
func (h Heterogeneity) Partition(src *Dataset, numClients int, rng *tensor.RNG) []*Dataset {
	if h.IID {
		return IIDPartition(src, numClients, rng)
	}
	return DirichletPartition(src, numClients, h.Beta, rng)
}
