package data

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ClientSource virtualizes per-client training shards: a client is a pure
// function of (partition seed, id) until it is actually leased, so a
// 10^6-client federation holds only the O(clients-in-flight) working set
// resident. Shard leases pair with Release; Outstanding exposes the live
// lease count so engines can assert zero leaks on error paths.
//
// Lease discipline: every Shard(id) must be matched by exactly one
// Release(id). The returned dataset is valid until its release and must
// not be mutated — engines that need a writable copy (label-flip
// poisoning) copy the leased shard first.
type ClientSource interface {
	// NumClients returns the number of clients the source can produce.
	NumClients() int
	// Size returns client id's sample count WITHOUT synthesizing the
	// shard — aggregation weights and trainability checks stay O(1).
	Size(id int) int
	// Shard leases client id's shard, synthesizing it if necessary.
	Shard(id int) *Dataset
	// Release returns a lease taken by Shard.
	Release(id int)
	// Outstanding returns the number of unreleased leases.
	Outstanding() int
}

// Materialized wraps today's eager []*Dataset slices in the ClientSource
// contract: Shard is an O(1) pointer return, bit-identical to indexing
// Federated.Clients directly.
type Materialized struct {
	shards      []*Dataset
	outstanding atomic.Int64
}

// NewMaterialized builds a source over pre-built shards.
func NewMaterialized(shards []*Dataset) *Materialized {
	return &Materialized{shards: shards}
}

// NumClients returns the shard count.
func (m *Materialized) NumClients() int { return len(m.shards) }

// Size returns shard id's sample count.
func (m *Materialized) Size(id int) int { return m.shards[id].Len() }

// Shard leases the pre-built shard.
func (m *Materialized) Shard(id int) *Dataset {
	m.outstanding.Add(1)
	return m.shards[id]
}

// Release returns a lease.
func (m *Materialized) Release(id int) {
	if m.outstanding.Add(-1) < 0 {
		panic(fmt.Sprintf("data: Materialized.Release(%d) without a matching Shard lease", id))
	}
}

// Outstanding returns the live lease count.
func (m *Materialized) Outstanding() int { return int(m.outstanding.Load()) }

// Lazy synthesizes shards on demand from an Assignment over a shared
// immutable base dataset, caching them in a bounded lease-aware LRU: a
// leased entry is pinned (never evicted), an unleased entry is evicted in
// least-recently-used order once the cache exceeds its capacity. Shard
// synthesis copies rows out of the base (Dataset.Subset), so cached
// shards never alias base storage and the base stays immutable — the same
// copy-on-lease structure the experiments EnvCache uses for environments.
type Lazy struct {
	base     *Dataset
	asg      *Assignment
	capacity int

	mu          sync.Mutex
	cache       map[int]*lazyShard
	tick        uint64
	outstanding int64
}

type lazyShard struct {
	ds     *Dataset
	leases int
	used   uint64
}

// DefaultLazyCapacity bounds the shard cache when the caller passes a
// non-positive capacity.
const DefaultLazyCapacity = 256

// NewLazy builds a lazy source over base with the given assignment.
// capacity bounds the number of resident shards (≤ 0 selects
// DefaultLazyCapacity); leased shards can push the resident count past
// the bound, which shrinks back as leases are released.
func NewLazy(base *Dataset, asg *Assignment, capacity int) *Lazy {
	if capacity <= 0 {
		capacity = DefaultLazyCapacity
	}
	return &Lazy{base: base, asg: asg, capacity: capacity, cache: map[int]*lazyShard{}}
}

// NumClients returns the assignment's client count.
func (l *Lazy) NumClients() int { return l.asg.NumClients() }

// Size returns client id's sample count from assignment metadata alone.
func (l *Lazy) Size(id int) int { return l.asg.Size(id) }

// Shard leases client id's shard, synthesizing it into the cache on a
// miss and evicting the least-recently-used unleased entry when over
// capacity.
func (l *Lazy) Shard(id int) *Dataset {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tick++
	if e, ok := l.cache[id]; ok {
		e.leases++
		e.used = l.tick
		l.outstanding++
		return e.ds
	}
	if len(l.cache) >= l.capacity {
		l.evictLocked()
	}
	e := &lazyShard{ds: l.base.Subset(l.asg.Rows(id)), leases: 1, used: l.tick}
	l.cache[id] = e
	l.outstanding++
	return e.ds
}

// evictLocked drops the least-recently-used unleased entry, if any.
func (l *Lazy) evictLocked() {
	victim, best := -1, uint64(0)
	for id, e := range l.cache {
		if e.leases > 0 {
			continue
		}
		if victim < 0 || e.used < best {
			victim, best = id, e.used
		}
	}
	if victim >= 0 {
		delete(l.cache, victim)
	}
}

// Release returns a lease taken by Shard.
func (l *Lazy) Release(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.cache[id]
	if !ok || e.leases <= 0 {
		panic(fmt.Sprintf("data: Lazy.Release(%d) without a matching Shard lease", id))
	}
	e.leases--
	l.outstanding--
}

// Outstanding returns the live lease count.
func (l *Lazy) Outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.outstanding)
}

// Resident returns the number of shards currently synthesized — the
// cache-pressure observable the scale tests assert on.
func (l *Lazy) Resident() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cache)
}
