package data

import (
	"fmt"
	"sync/atomic"
)

// ClientSource virtualizes per-client training shards: a client is a pure
// function of (partition seed, id) until it is actually leased, so a
// 10^6-client federation holds only the O(clients-in-flight) working set
// resident. Shard leases pair with Release; Outstanding exposes the live
// lease count so engines can assert zero leaks on error paths.
//
// Lease discipline: every Shard(id) must be matched by exactly one
// Release(id). The returned dataset is valid until its release and must
// not be mutated — engines that need a writable copy (label-flip
// poisoning) copy the leased shard first.
type ClientSource interface {
	// NumClients returns the number of clients the source can produce.
	NumClients() int
	// Size returns client id's sample count WITHOUT synthesizing the
	// shard — aggregation weights and trainability checks stay O(1).
	Size(id int) int
	// Shard leases client id's shard, synthesizing it if necessary.
	Shard(id int) *Dataset
	// Release returns a lease taken by Shard.
	Release(id int)
	// Outstanding returns the number of unreleased leases.
	Outstanding() int
}

// Materialized wraps today's eager []*Dataset slices in the ClientSource
// contract: Shard is an O(1) pointer return, bit-identical to indexing
// Federated.Clients directly.
type Materialized struct {
	shards      []*Dataset
	outstanding atomic.Int64
}

// NewMaterialized builds a source over pre-built shards.
func NewMaterialized(shards []*Dataset) *Materialized {
	return &Materialized{shards: shards}
}

// NumClients returns the shard count.
func (m *Materialized) NumClients() int { return len(m.shards) }

// Size returns shard id's sample count.
func (m *Materialized) Size(id int) int { return m.shards[id].Len() }

// Shard leases the pre-built shard.
func (m *Materialized) Shard(id int) *Dataset {
	m.outstanding.Add(1)
	return m.shards[id]
}

// Release returns a lease.
func (m *Materialized) Release(id int) {
	if m.outstanding.Add(-1) < 0 {
		panic(fmt.Sprintf("data: Materialized.Release(%d) without a matching Shard lease", id))
	}
}

// Outstanding returns the live lease count.
func (m *Materialized) Outstanding() int { return int(m.outstanding.Load()) }
