package data

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fedcross/internal/tensor"
)

// TestLazyStripedMatchesMaterialized pins the geometry-invariance half of
// the striped-cache contract: every stripe count — including the
// degenerate single-mutex layout — synthesizes byte-identical shards.
func TestLazyStripedMatchesMaterialized(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(7))
	het := Heterogeneity{Beta: 0.5}
	const n = 40
	eager := het.Assign(train, n, tensor.NewRNG(77)).Materialize(train)
	for _, stripes := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("stripes%d", stripes), func(t *testing.T) {
			l := NewLazyStriped(train, het.Assign(train, n, tensor.NewRNG(77)), 16, stripes)
			for ci := 0; ci < n; ci++ {
				if !sameShard(l.Shard(ci), eager[ci]) {
					t.Fatalf("client %d shard differs at %d stripes", ci, stripes)
				}
				l.Release(ci)
			}
			if got := l.CacheStats().Stripes; stripes <= 16 && got != stripes {
				t.Fatalf("geometry %d stripes, want %d", got, stripes)
			}
		})
	}
}

// TestLazyConcurrentLeaseStress hammers Shard/Release from P goroutines
// whose ids deliberately cross stripe boundaries, under a cache small
// enough that evict/re-synthesize races are constant. Run under -race
// (CI has a dedicated lane) this is the data-race witness for the
// striped lease path; functionally it pins lazy≡materialized equality
// under contention and a fully drained lease count afterwards.
func TestLazyConcurrentLeaseStress(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(5))
	het := Heterogeneity{Beta: 0.3}
	const n = 64
	eager := het.Assign(train, n, tensor.NewRNG(55)).Materialize(train)
	l := NewLazyStriped(train, het.Assign(train, n, tensor.NewRNG(55)), 12, 8)

	workers := runtime.NumCPU() * 2
	if workers < 4 {
		workers = 4
	}
	const iters = 200
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Stride by a value coprime to the stripe count so each
				// worker sweeps every stripe, and offset by the worker id
				// so same-id collisions across workers are routine.
				ci := (w + i*13) % n
				shard := l.Shard(ci)
				if !sameShard(shard, eager[ci]) {
					errc <- fmt.Errorf("worker %d: client %d shard differs under contention", w, ci)
					l.Release(ci)
					return
				}
				l.Release(ci)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain, want 0", l.Outstanding())
	}
	stats := l.CacheStats()
	if stats.Hits+stats.Misses != int64(workers*iters) {
		t.Fatalf("hits %d + misses %d != %d leases", stats.Hits, stats.Misses, workers*iters)
	}
	if stats.Resident > 12 {
		t.Fatalf("resident %d exceeds capacity 12 with no leases held", stats.Resident)
	}
}

// TestLazyPrefetch covers the background pool: WaitPrefetch drains fully,
// warmed entries are pin-soft (resident but unleased, evictable), later
// leases count as PrefetchHits, and invalid ids are skipped harmlessly.
func TestLazyPrefetch(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(2))
	asg := AssignIID(train, 20, tensor.NewRNG(3))
	l := NewLazyStriped(train, AssignIID(train, 20, tensor.NewRNG(3)), 16, 4)

	l.Prefetch([]int{0, 1, 2, 3, -1, 99, 2}) // dupes and junk ids welcome
	l.WaitPrefetch()
	if got := l.Resident(); got != 4 {
		t.Fatalf("resident %d after prefetch, want 4", got)
	}
	if l.Outstanding() != 0 {
		t.Fatalf("prefetch took %d leases, want 0", l.Outstanding())
	}
	for ci := 0; ci < 4; ci++ {
		if !sameShard(l.Shard(ci), train.Subset(asg.Rows(ci))) {
			t.Fatalf("client %d prefetched shard differs", ci)
		}
		l.Release(ci)
	}
	stats := l.CacheStats()
	if stats.PrefetchHits != 4 {
		t.Fatalf("prefetch hits %d, want 4", stats.PrefetchHits)
	}
	if stats.Hits != 4 || stats.Misses != 0 {
		t.Fatalf("hits %d misses %d, want 4/0 (all leases warmed)", stats.Hits, stats.Misses)
	}
	// A second lease of a warmed-then-released entry is a plain hit.
	l.Shard(0)
	l.Release(0)
	if got := l.CacheStats().PrefetchHits; got != 4 {
		t.Fatalf("prefetch hits %d after re-lease, want still 4", got)
	}
}

// TestLazyPrefetchNeverOverflows: when every resident entry of a stripe
// is leased, a prefetch insert is dropped — resident count and overflow
// counter both stay put — while a lease of the same id still succeeds by
// growing the stripe (overflow counted).
func TestLazyPrefetchNeverOverflows(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	l := NewLazyStriped(train, AssignIID(train, 10, tensor.NewRNG(2)), 3, 1)

	for ci := 0; ci < 3; ci++ {
		l.Shard(ci) // pin the whole stripe
	}
	l.Prefetch([]int{5})
	l.WaitPrefetch()
	if got := l.Resident(); got != 3 {
		t.Fatalf("resident %d after prefetch into pinned stripe, want 3 (dropped)", got)
	}
	if ov := l.CacheStats().Overflow; ov != 0 {
		t.Fatalf("overflow %d from prefetch, want 0", ov)
	}
	l.Shard(5) // a lease MUST succeed, growing the pinned stripe
	if got := l.Resident(); got != 4 {
		t.Fatalf("resident %d after lease into pinned stripe, want 4", got)
	}
	if ov := l.CacheStats().Overflow; ov != 1 {
		t.Fatalf("overflow %d after pinned-stripe lease, want 1", ov)
	}
	for _, ci := range []int{0, 1, 2, 5} {
		l.Release(ci)
	}
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding %d", l.Outstanding())
	}
}

// TestLazyCancelPrefetch: cancel drops queued work and rendezvouses with
// in-flight synthesis, after which the pool is quiescent and reusable.
func TestLazyCancelPrefetch(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(6))
	l := NewLazy(train, AssignIID(train, 30, tensor.NewRNG(4)), 64)
	ids := make([]int, 30)
	for i := range ids {
		ids[i] = i
	}
	l.Prefetch(ids)
	l.CancelPrefetch() // must not deadlock regardless of progress
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding %d after cancel", l.Outstanding())
	}
	// The pool keeps working after a cancel.
	l.Prefetch([]int{7})
	l.WaitPrefetch()
	if _, hit := l.peek(7); !hit {
		t.Fatal("prefetch after cancel did not warm the cache")
	}
}

// peek reports whether id is resident, without leasing. Test helper only.
func (l *Lazy) peek(id int) (*Dataset, bool) {
	st := l.lockStripe(id)
	defer st.mu.Unlock()
	e, ok := st.cache[id]
	if !ok {
		return nil, false
	}
	return e.ds, true
}

// TestLazyRestripe: cold caches restripe (and re-clamp), warm caches
// refuse, and a same-count restripe is an idempotent success either way.
func TestLazyRestripe(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(3))
	l := NewLazyStriped(train, AssignIID(train, 16, tensor.NewRNG(5)), 16, 4)
	if got := l.CacheStats().Stripes; got != 4 {
		t.Fatalf("stripes %d, want 4", got)
	}
	if !l.Restripe(8) {
		t.Fatal("cold restripe refused")
	}
	if got := l.CacheStats().Stripes; got != 8 {
		t.Fatalf("stripes %d after restripe, want 8", got)
	}
	// Over-capacity requests clamp exactly like the constructor.
	if !l.Restripe(999) {
		t.Fatal("cold restripe(999) refused")
	}
	if got := l.CacheStats().Stripes; got != 16 {
		t.Fatalf("stripes %d after clamped restripe, want capacity 16", got)
	}
	l.Shard(0) // warm the cache
	if l.Restripe(2) {
		t.Fatal("warm restripe succeeded, want refusal")
	}
	if l.Restripe(16) { // same count: no-op success even warm
		// fine
	} else {
		t.Fatal("same-count restripe refused")
	}
	l.Release(0)
	if !sameShard(l.Shard(0), train.Subset(AssignIID(train, 16, tensor.NewRNG(5)).Rows(0))) {
		t.Fatal("shard differs after restripes")
	}
	l.Release(0)
}

// TestLazyCacheStatsSnapshot sanity-checks the counter wiring end to end
// on a deterministic serial sequence.
func TestLazyCacheStatsSnapshot(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(8))
	l := NewLazyStriped(train, AssignIID(train, 6, tensor.NewRNG(6)), 2, 1)

	l.Shard(0) // miss
	l.Release(0)
	l.Shard(0) // hit
	l.Release(0)
	l.Shard(1) // miss (cache now full: {0 unleased, 1 leased})
	l.Shard(2) // miss, evicts 0
	stats := l.CacheStats()
	if stats.Hits != 1 || stats.Misses != 3 {
		t.Fatalf("hits/misses %d/%d, want 1/3", stats.Hits, stats.Misses)
	}
	if stats.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", stats.Evictions)
	}
	if stats.Resident != 2 || stats.Outstanding != 2 {
		t.Fatalf("resident/outstanding %d/%d, want 2/2", stats.Resident, stats.Outstanding)
	}
	if stats.Stripes != 1 || stats.Overflow != 0 || stats.PrefetchHits != 0 {
		t.Fatalf("stripes/overflow/prefetchHits %d/%d/%d, want 1/0/0",
			stats.Stripes, stats.Overflow, stats.PrefetchHits)
	}
	for _, ci := range []int{1, 2} {
		l.Release(ci)
	}
}

// TestLazyConcurrentPrefetchAndLease races the prefetch pool against
// foreground leases of the same ids — the engine's steady state, where
// round r+1's warm-up overlaps round r's training. Every lease must see
// correct bytes whether it won or lost the synthesis race.
func TestLazyConcurrentPrefetchAndLease(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(9))
	het := Heterogeneity{Beta: 0.5}
	const n = 32
	eager := het.Assign(train, n, tensor.NewRNG(99)).Materialize(train)
	l := NewLazyStriped(train, het.Assign(train, n, tensor.NewRNG(99)), 24, 8)

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				l.Prefetch(ids)
				for i := 0; i < n; i++ {
					ci := (w*7 + i) % n
					if !sameShard(l.Shard(ci), eager[ci]) {
						errc <- fmt.Errorf("worker %d round %d: client %d differs", w, round, ci)
						l.Release(ci)
						return
					}
					l.Release(ci)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	l.CancelPrefetch()
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.Outstanding())
	}
}
