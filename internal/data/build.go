package data

import "fedcross/internal/tensor"

// BuildVision generates the synthetic vision corpus and partitions it
// across numClients clients with the given heterogeneity setting. It is
// the one-call constructor the experiments use for the CIFAR substitutes.
func BuildVision(cfg VisionConfig, numClients int, het Heterogeneity, partitionSeed int64) *Federated {
	train, test := GenerateVision(cfg)
	rng := tensor.NewRNG(partitionSeed)
	return &Federated{
		Name:    visionName(cfg) + "/" + het.String(),
		Clients: het.Partition(train, numClients, rng),
		Test:    test,
		Classes: cfg.Classes,
	}
}

// BuildVisionLazy is BuildVision with the client shards virtualized
// behind a Lazy source: partition boundaries are computed once from the
// same seed (so shards are byte-identical to BuildVision's), but shard
// tensors are synthesized only when leased, bounded by capacity resident
// shards (≤ 0 selects data.DefaultLazyCapacity). This is the constructor
// for million-client federations where the eager layout cannot fit.
func BuildVisionLazy(cfg VisionConfig, numClients int, het Heterogeneity, partitionSeed int64, capacity int) *Federated {
	return BuildVisionLazyStriped(cfg, numClients, het, partitionSeed, capacity, 0)
}

// BuildVisionLazyStriped is BuildVisionLazy with an explicit shard-cache
// stripe count (≤ 0 selects data.DefaultCacheStripes; see
// NewLazyStriped). Stripe geometry never changes shard bytes.
func BuildVisionLazyStriped(cfg VisionConfig, numClients int, het Heterogeneity, partitionSeed int64, capacity, stripes int) *Federated {
	train, test := GenerateVision(cfg)
	rng := tensor.NewRNG(partitionSeed)
	return &Federated{
		Name:    visionName(cfg) + "/" + het.String(),
		Source:  NewLazyStriped(train, het.Assign(train, numClients, rng), capacity, stripes),
		Test:    test,
		Classes: cfg.Classes,
	}
}

func visionName(cfg VisionConfig) string {
	name := "synth-vision10"
	if cfg.Classes != 10 {
		name = "synth-vision100"
		if cfg.Classes != 100 {
			name = "synth-vision"
		}
	}
	return name
}
