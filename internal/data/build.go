package data

import "fedcross/internal/tensor"

// BuildVision generates the synthetic vision corpus and partitions it
// across numClients clients with the given heterogeneity setting. It is
// the one-call constructor the experiments use for the CIFAR substitutes.
func BuildVision(cfg VisionConfig, numClients int, het Heterogeneity, partitionSeed int64) *Federated {
	train, test := GenerateVision(cfg)
	rng := tensor.NewRNG(partitionSeed)
	name := "synth-vision10"
	if cfg.Classes != 10 {
		name = "synth-vision100"
		if cfg.Classes != 100 {
			name = "synth-vision"
		}
	}
	return &Federated{
		Name:    name + "/" + het.String(),
		Clients: het.Partition(train, numClients, rng),
		Test:    test,
		Classes: cfg.Classes,
	}
}
