package data

import (
	"math"
	"testing"
	"testing/quick"

	"fedcross/internal/tensor"
)

func smallVisionCfg(seed int64) VisionConfig {
	return VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 30, TestPerClass: 10,
		ModesPerClass: 2, Sep: 1.0, Noise: 0.3, Seed: seed,
	}
}

func TestGenerateVisionShapes(t *testing.T) {
	train, test := GenerateVision(smallVisionCfg(1))
	if train.Len() != 120 || test.Len() != 40 {
		t.Fatalf("sizes train=%d test=%d", train.Len(), test.Len())
	}
	if train.Features() != 12 || train.Classes != 4 {
		t.Fatalf("features=%d classes=%d", train.Features(), train.Classes)
	}
	counts := train.ClassCounts()
	for c, n := range counts {
		if n != 30 {
			t.Fatalf("class %d has %d samples, want 30", c, n)
		}
	}
	if train.X.HasNaN() {
		t.Fatal("NaN in generated data")
	}
}

func TestGenerateVisionDeterministic(t *testing.T) {
	a, _ := GenerateVision(smallVisionCfg(7))
	b, _ := GenerateVision(smallVisionCfg(7))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must reproduce the dataset")
		}
	}
	c, _ := GenerateVision(smallVisionCfg(8))
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestVisionClassesSeparable(t *testing.T) {
	// A nearest-class-mean classifier on train means should beat chance
	// clearly on test data — i.e. the task is learnable.
	cfg := smallVisionCfg(3)
	train, test := GenerateVision(cfg)
	d := train.Features()
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i := range means {
		means[i] = make([]float64, d)
	}
	for i, y := range train.Y {
		counts[y]++
		for j := 0; j < d; j++ {
			means[y][j] += train.X.Data[i*d+j]
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, y := range test.Y {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			dist := 0.0
			for j := 0; j < d; j++ {
				diff := test.X.Data[i*d+j] - means[c][j]
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = c, dist
			}
		}
		if best == y {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %v; task should beat 25%% chance clearly", acc)
	}
}

func TestSubsetAndBatch(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	sub := train.Subset([]int{0, 5, 10})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	// Mutating the subset must not touch the parent.
	sub.X.Data[0] = 12345
	if train.X.Data[0] == 12345 {
		t.Fatal("Subset aliases parent storage")
	}
	x, y := train.Batch([]int{1, 2})
	if x.Shape[0] != 2 || len(y) != 2 {
		t.Fatalf("batch shapes %v %d", x.Shape, len(y))
	}
}

func TestBatchesCoverEpochExactlyOnce(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	rng := tensor.NewRNG(2)
	seen := 0
	var sizes []int
	train.Batches(rng, 32, func(x *tensor.Tensor, y []int) {
		seen += len(y)
		sizes = append(sizes, len(y))
	})
	if seen != train.Len() {
		t.Fatalf("epoch covered %d of %d samples", seen, train.Len())
	}
	for i, s := range sizes[:len(sizes)-1] {
		if s != 32 {
			t.Fatalf("batch %d has size %d, want 32", i, s)
		}
	}
}

func TestDirichletPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		train, _ := GenerateVision(smallVisionCfg(seed))
		numClients := 2 + rng.Intn(8)
		beta := 0.1 + rng.Float64()
		shards := DirichletPartition(train, numClients, beta, rng)
		total := 0
		for _, s := range shards {
			total += s.Len()
			if s.Len() == 0 {
				return false // every client must have data
			}
		}
		return total == train.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletSkewOrdering(t *testing.T) {
	// Smaller beta must produce more label skew, measured by the mean
	// per-client label-distribution distance from uniform.
	cfg := VisionConfig{Classes: 10, Features: 8, TrainPerClass: 100, TestPerClass: 1, ModesPerClass: 1, Sep: 1, Noise: 0.1, Seed: 5}
	train, _ := GenerateVision(cfg)
	skew := func(beta float64) float64 {
		rng := tensor.NewRNG(42)
		shards := DirichletPartition(train, 10, beta, rng)
		tot := 0.0
		for _, s := range shards {
			counts := s.ClassCounts()
			n := float64(s.Len())
			for _, c := range counts {
				p := float64(c) / n
				d := p - 0.1
				tot += d * d
			}
		}
		return tot
	}
	s01, s10 := skew(0.1), skew(10)
	if s01 <= s10 {
		t.Fatalf("beta=0.1 skew %v should exceed beta=10 skew %v", s01, s10)
	}
}

func TestIIDPartitionBalance(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	rng := tensor.NewRNG(1)
	shards := IIDPartition(train, 6, rng)
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() < train.Len()/6 || s.Len() > train.Len()/6+1 {
			t.Fatalf("IID shard size %d not balanced", s.Len())
		}
	}
	if total != train.Len() {
		t.Fatalf("IID covered %d of %d", total, train.Len())
	}
}

func TestHeterogeneityString(t *testing.T) {
	if got := (Heterogeneity{IID: true}).String(); got != "IID" {
		t.Fatalf("String = %q", got)
	}
	if got := (Heterogeneity{Beta: 0.5}).String(); got != "beta=0.5" {
		t.Fatalf("String = %q", got)
	}
}

func TestBuildVision(t *testing.T) {
	fed := BuildVision(smallVisionCfg(1), 5, Heterogeneity{Beta: 0.5}, 9)
	if fed.NumClients() != 5 {
		t.Fatalf("NumClients = %d", fed.NumClients())
	}
	if fed.TotalTrainSamples() != 120 {
		t.Fatalf("TotalTrainSamples = %d", fed.TotalTrainSamples())
	}
	m := fed.DistributionMatrix()
	if len(m) != 4 || len(m[0]) != 5 {
		t.Fatalf("DistributionMatrix dims %dx%d", len(m), len(m[0]))
	}
	sum := 0
	for _, row := range m {
		for _, v := range row {
			sum += v
		}
	}
	if sum != 120 {
		t.Fatalf("matrix total %d", sum)
	}
}

func TestGenerateFEMNIST(t *testing.T) {
	cfg := FEMNISTConfig{Classes: 10, Features: 16, Writers: 8, MinSamples: 5, MaxSamples: 15, TestSamples: 40, StyleStrength: 0.3, Seed: 1}
	fed := GenerateFEMNIST(cfg)
	if fed.NumClients() != 8 {
		t.Fatalf("writers = %d", fed.NumClients())
	}
	for i, c := range fed.Clients {
		if c.Len() < 5 || c.Len() > 15 {
			t.Fatalf("writer %d has %d samples", i, c.Len())
		}
		for _, y := range c.Y {
			if y < 0 || y >= 10 {
				t.Fatalf("label %d out of range", y)
			}
		}
	}
	if fed.Test.Len() != 40 {
		t.Fatalf("test size %d", fed.Test.Len())
	}
	// Natural non-IID: at least one writer's class distribution is skewed.
	skewed := false
	for _, c := range fed.Clients {
		counts := c.ClassCounts()
		maxC := 0
		for _, v := range counts {
			if v > maxC {
				maxC = v
			}
		}
		if float64(maxC) > 2*float64(c.Len())/float64(cfg.Classes) {
			skewed = true
		}
	}
	if !skewed {
		t.Fatal("expected natural class skew across writers")
	}
}

func TestGenerateShakespeare(t *testing.T) {
	cfg := ShakespeareConfig{Vocab: 12, SeqLen: 5, Clients: 6, SamplesPerClient: 20, TestSamples: 30, Mix: 0.5, Seed: 2}
	fed := GenerateShakespeare(cfg)
	if fed.NumClients() != 6 || fed.Classes != 12 {
		t.Fatalf("clients=%d classes=%d", fed.NumClients(), fed.Classes)
	}
	for _, c := range fed.Clients {
		if c.Len() != 20 || c.Features() != 5 {
			t.Fatalf("shard %d x %d", c.Len(), c.Features())
		}
		for _, v := range c.X.Data {
			if v < 0 || v >= 12 || v != math.Trunc(v) {
				t.Fatalf("token %v not a valid id", v)
			}
		}
		for _, y := range c.Y {
			if y < 0 || y >= 12 {
				t.Fatalf("label %d out of vocab", y)
			}
		}
	}
}

func TestGenerateSent140(t *testing.T) {
	cfg := Sent140Config{Vocab: 20, SeqLen: 6, Clients: 5, SamplesPerClient: 30, TestSamples: 40, SentimentTokens: 4, Seed: 3}
	fed := GenerateSent140(cfg)
	if fed.Classes != 2 {
		t.Fatalf("classes = %d", fed.Classes)
	}
	sawPos, sawNeg := false, false
	for _, c := range fed.Clients {
		for _, y := range c.Y {
			switch y {
			case 0:
				sawNeg = true
			case 1:
				sawPos = true
			default:
				t.Fatalf("label %d not binary", y)
			}
		}
		for _, v := range c.X.Data {
			if v < 0 || v >= 20 {
				t.Fatalf("token %v out of vocab", v)
			}
		}
	}
	if !sawPos || !sawNeg {
		t.Fatal("expected both sentiment labels")
	}
	// Test-set labels are balanced by construction.
	counts := fed.Test.ClassCounts()
	if counts[0] != counts[1] {
		t.Fatalf("test labels unbalanced: %v", counts)
	}
}

func TestSent140SentimentSignal(t *testing.T) {
	// Counting polarity tokens should beat chance: the label signal must
	// actually be present in the tokens.
	cfg := DefaultSent140(4)
	fed := GenerateSent140(cfg)
	correct, total := 0, 0
	for i, y := range fed.Test.Y {
		pos, neg := 0, 0
		for t := 0; t < cfg.SeqLen; t++ {
			tok := int(fed.Test.X.Data[i*cfg.SeqLen+t])
			if tok < cfg.SentimentTokens {
				neg++ // label 0 tokens are [0,S)
			} else if tok < 2*cfg.SentimentTokens {
				pos++
			}
		}
		pred := 0
		if pos > neg {
			pred = 1
		}
		if pos != neg {
			total++
			if pred == y {
				correct++
			}
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.7 {
		t.Fatalf("token-count heuristic accuracy %d/%d; sentiment signal too weak", correct, total)
	}
}

func TestDirichletPartitionRejectsBadArgs(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	rng := tensor.NewRNG(1)
	for _, fn := range []func(){
		func() { DirichletPartition(train, 0, 0.5, rng) },
		func() { DirichletPartition(train, 4, 0, rng) },
		func() { IIDPartition(train, -1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid arguments")
				}
			}()
			fn()
		}()
	}
}
