package data

import (
	"fmt"
	"testing"

	"fedcross/internal/tensor"
)

func sameShard(a, b *Dataset) bool {
	if a.Len() != b.Len() || a.Classes != b.Classes {
		return false
	}
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			return false
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}

// TestLazyMatchesMaterialized is the core equivalence property of the
// virtual-client refactor: for every partition scheme, seed and client
// count — including counts far beyond the sample count, which exercise
// empty shards and the top-up donor pass — a Lazy source synthesizes
// byte-identical shards to the eager Materialize layout, and its Size
// metadata agrees without ever touching row data. Leases run through a
// deliberately tiny cache so most hits are re-syntheses after eviction.
func TestLazyMatchesMaterialized(t *testing.T) {
	hets := []Heterogeneity{{IID: true}, {Beta: 0.1}, {Beta: 0.5}, {Beta: 5}}
	for _, het := range hets {
		for _, seed := range []int64{1, 2} {
			for _, n := range []int{5, 13, 200} { // 200 > the 120-sample corpus
				t.Run(fmt.Sprintf("%s/seed%d/n%d", het.String(), seed, n), func(t *testing.T) {
					train, _ := GenerateVision(smallVisionCfg(seed))
					eager := het.Assign(train, n, tensor.NewRNG(seed+100)).Materialize(train)
					lazy := NewLazy(train, het.Assign(train, n, tensor.NewRNG(seed+100)), 7)
					if lazy.NumClients() != n || len(eager) != n {
						t.Fatalf("client counts %d / %d, want %d", lazy.NumClients(), len(eager), n)
					}
					// Two passes in opposite orders: the second re-leases
					// shards the 7-slot LRU has long evicted.
					for pass := 0; pass < 2; pass++ {
						for i := 0; i < n; i++ {
							ci := i
							if pass == 1 {
								ci = n - 1 - i
							}
							if lazy.Size(ci) != eager[ci].Len() {
								t.Fatalf("client %d Size %d, eager %d", ci, lazy.Size(ci), eager[ci].Len())
							}
							shard := lazy.Shard(ci)
							if !sameShard(shard, eager[ci]) {
								t.Fatalf("client %d shard differs from eager materialization", ci)
							}
							lazy.Release(ci)
						}
					}
					if lazy.Outstanding() != 0 {
						t.Fatalf("outstanding leases %d after release", lazy.Outstanding())
					}
				})
			}
		}
	}
}

// TestBuildVisionLazyMatchesBuildVision checks the one-call constructors
// agree end to end: same name, totals, per-class distribution and bytes.
func TestBuildVisionLazyMatchesBuildVision(t *testing.T) {
	cfg := smallVisionCfg(3)
	eager := BuildVision(cfg, 9, Heterogeneity{Beta: 0.5}, 11)
	lazy := BuildVisionLazy(cfg, 9, Heterogeneity{Beta: 0.5}, 11, 4)
	if eager.Name != lazy.Name || eager.NumClients() != lazy.NumClients() {
		t.Fatalf("identity mismatch: %q/%d vs %q/%d", eager.Name, eager.NumClients(), lazy.Name, lazy.NumClients())
	}
	if eager.TotalTrainSamples() != lazy.TotalTrainSamples() {
		t.Fatalf("totals %d vs %d", eager.TotalTrainSamples(), lazy.TotalTrainSamples())
	}
	me, ml := eager.DistributionMatrix(), lazy.DistributionMatrix()
	for c := range me {
		for ci := range me[c] {
			if me[c][ci] != ml[c][ci] {
				t.Fatalf("distribution[%d][%d] %d vs %d", c, ci, me[c][ci], ml[c][ci])
			}
		}
	}
	for ci := 0; ci < eager.NumClients(); ci++ {
		if !sameShard(eager.LeaseShard(ci), lazy.LeaseShard(ci)) {
			t.Fatalf("client %d shards differ", ci)
		}
		eager.ReleaseShard(ci)
		lazy.ReleaseShard(ci)
	}
	if lazy.OutstandingLeases() != 0 {
		t.Fatalf("outstanding %d", lazy.OutstandingLeases())
	}
}

// TestLazyLRUPinningAndBounds: leased shards are pinned past capacity,
// and once leases drain the resident set stops growing — the memory
// bound the million-client runs rely on.
func TestLazyLRUPinningAndBounds(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	asg := AssignIID(train, 10, tensor.NewRNG(2))
	l := NewLazy(train, asg, 3)

	for ci := 0; ci < 3; ci++ {
		l.Shard(ci)
	}
	if l.Resident() != 3 || l.Outstanding() != 3 {
		t.Fatalf("resident %d outstanding %d", l.Resident(), l.Outstanding())
	}
	// Everything is leased: a fourth shard must pin past capacity rather
	// than evict a live lease.
	l.Shard(3)
	if l.Resident() != 4 {
		t.Fatalf("resident %d, want pinning to 4", l.Resident())
	}
	for ci := 0; ci < 4; ci++ {
		l.Release(ci)
	}
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding %d", l.Outstanding())
	}
	// With leases drained, further distinct leases evict instead of grow.
	peak := l.Resident()
	for ci := 4; ci < 10; ci++ {
		l.Shard(ci)
		l.Release(ci)
		if l.Resident() > peak {
			t.Fatalf("resident grew to %d past drained peak %d", l.Resident(), peak)
		}
	}
	// An evicted shard re-synthesizes identically.
	want := train.Subset(asg.Rows(0))
	if got := l.Shard(0); !sameShard(got, want) {
		t.Fatal("re-synthesized shard differs after eviction")
	}
	l.Release(0)
}

func TestSourceReleaseWithoutLeasePanics(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(1))
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on unmatched release", name)
			}
		}()
		fn()
	}
	lazy := NewLazy(train, AssignIID(train, 4, tensor.NewRNG(1)), 2)
	mustPanic("lazy", func() { lazy.Release(0) })
	mat := NewMaterialized(IIDPartition(train, 4, tensor.NewRNG(1)))
	mustPanic("materialized", func() { mat.Release(0) })
}

// TestAssignmentHugePopulation: metadata for a client population far
// beyond the sample count stays compact and consistent — most clients
// are empty, sizes sum to the corpus, and Rows agrees with Size.
func TestAssignmentHugePopulation(t *testing.T) {
	train, _ := GenerateVision(smallVisionCfg(4))
	for _, het := range []Heterogeneity{{IID: true}, {Beta: 0.3}} {
		asg := het.Assign(train, 50000, tensor.NewRNG(9))
		total, nonEmpty := 0, 0
		for ci := 0; ci < asg.NumClients(); ci++ {
			sz := asg.Size(ci)
			total += sz
			if sz > 0 {
				nonEmpty++
				if got := len(asg.Rows(ci)); got != sz {
					t.Fatalf("%s client %d: Rows %d vs Size %d", het.String(), ci, got, sz)
				}
			}
		}
		if total != train.Len() {
			t.Fatalf("%s sizes sum %d, want %d", het.String(), total, train.Len())
		}
		if nonEmpty == 0 || nonEmpty > train.Len() {
			t.Fatalf("%s non-empty clients %d out of range", het.String(), nonEmpty)
		}
	}
}
