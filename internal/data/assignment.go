package data

import (
	"container/heap"
	"fmt"
	"sort"

	"fedcross/internal/tensor"
)

// Assignment is the compact, lazily-evaluable form of a partition: it
// records *which base-dataset rows belong to which client* without
// materializing any per-client tensors. For the Dirichlet scheme the
// metadata is O(samples + classes·clients-with-data): per-class shuffled
// row pools plus the contiguous [start,end) boundary each client owns
// inside every pool. For the IID scheme it is a single permutation with a
// round-robin stride layout. Clients rewritten by the top-up pass (one
// sample stolen from the largest shard into each empty shard) carry an
// explicit row-list overlay.
//
// The construction consumes the partition RNG in exactly the same order
// as the legacy eager partitioners, so Materialize reproduces
// DirichletPartition/IIDPartition output bit-for-bit, and a Lazy source
// backed by the same Assignment synthesizes byte-identical shards on
// demand.
type Assignment struct {
	numClients int
	classes    int

	// Dirichlet layout: pools[c] is class c's shuffled row pool and
	// spans[c] lists, in ascending client order, each client's contiguous
	// slice of that pool (only clients with end > start appear).
	pools [][]int32
	spans [][]clientSpan

	// IID layout: perm is the shuffled row order; client ci owns
	// perm[ci], perm[ci+numClients], perm[ci+2·numClients], …
	perm []int32

	// overlay holds explicit row lists for clients rewritten by topUp.
	// It wins over the virtual layout for the clients it names.
	overlay map[int32][]int32

	// sizes caches the per-client sample count so weight lookups and
	// trainability checks never touch row data.
	sizes []int32
}

// clientSpan marks the contiguous pool slice [start, end) owned by one
// client within a single class pool.
type clientSpan struct {
	client     int32
	start, end int32
}

// AssignDirichlet computes the Dir(beta) label-skew assignment (Hsu et
// al.) as compact boundary metadata. It draws from rng in exactly the
// order DirichletPartition does: every class pool is shuffled first, then
// each non-empty class takes one Dirichlet draw, then the top-up pass
// consumes one Intn per donated sample.
func AssignDirichlet(src *Dataset, numClients int, beta float64, rng *tensor.RNG) *Assignment {
	if numClients <= 0 {
		panic(fmt.Sprintf("data: DirichletPartition: numClients %d", numClients))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("data: DirichletPartition: beta %v must be positive", beta))
	}
	a := &Assignment{
		numClients: numClients,
		classes:    src.Classes,
		pools:      make([][]int32, src.Classes),
		spans:      make([][]clientSpan, src.Classes),
		overlay:    map[int32][]int32{},
		sizes:      make([]int32, numClients),
	}
	for i, y := range src.Y {
		a.pools[y] = append(a.pools[y], int32(i))
	}
	for _, pool := range a.pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	for c, pool := range a.pools {
		if len(pool) == 0 {
			continue
		}
		p := rng.Dirichlet(beta, numClients)
		cum := 0.0
		start := 0
		for ci := 0; ci < numClients; ci++ {
			cum += p[ci]
			end := int(cum*float64(len(pool)) + 0.5)
			if ci == numClients-1 {
				end = len(pool)
			}
			if end > len(pool) {
				end = len(pool)
			}
			if end > start {
				a.spans[c] = append(a.spans[c], clientSpan{int32(ci), int32(start), int32(end)})
				a.sizes[ci] += int32(end - start)
			}
			start = end
		}
	}
	a.topUp(rng)
	return a
}

// AssignIID computes the round-robin deal of a shuffled permutation,
// matching IIDPartition's RNG order (one Perm, then top-up Intn draws).
func AssignIID(src *Dataset, numClients int, rng *tensor.RNG) *Assignment {
	if numClients <= 0 {
		panic(fmt.Sprintf("data: IIDPartition: numClients %d", numClients))
	}
	a := &Assignment{
		numClients: numClients,
		classes:    src.Classes,
		overlay:    map[int32][]int32{},
		sizes:      make([]int32, numClients),
	}
	perm := rng.Perm(src.Len())
	a.perm = make([]int32, len(perm))
	for i, idx := range perm {
		a.perm[i] = int32(idx)
		a.sizes[i%numClients]++
	}
	a.topUp(rng)
	return a
}

// Assign applies the heterogeneity setting as compact metadata, the lazy
// counterpart of Heterogeneity.Partition.
func (h Heterogeneity) Assign(src *Dataset, numClients int, rng *tensor.RNG) *Assignment {
	if h.IID {
		return AssignIID(src, numClients, rng)
	}
	return AssignDirichlet(src, numClients, h.Beta, rng)
}

// NumClients returns the number of clients in the assignment.
func (a *Assignment) NumClients() int { return a.numClients }

// Size returns client ci's sample count without materializing rows.
func (a *Assignment) Size(ci int) int { return int(a.sizes[ci]) }

// Rows materializes client ci's base-dataset row indices in the exact
// order the legacy eager partitioners produce them.
func (a *Assignment) Rows(ci int) []int {
	if ci < 0 || ci >= a.numClients {
		panic(fmt.Sprintf("data: Assignment.Rows client %d out of range [0,%d)", ci, a.numClients))
	}
	if ov, ok := a.overlay[int32(ci)]; ok {
		out := make([]int, len(ov))
		for i, r := range ov {
			out[i] = int(r)
		}
		return out
	}
	out := make([]int, 0, a.sizes[ci])
	if a.perm != nil {
		for i := ci; i < len(a.perm); i += a.numClients {
			out = append(out, int(a.perm[i]))
		}
		return out
	}
	for c := range a.spans {
		spans := a.spans[c]
		k := sort.Search(len(spans), func(i int) bool { return spans[i].client >= int32(ci) })
		if k < len(spans) && spans[k].client == int32(ci) {
			for _, r := range a.pools[c][spans[k].start:spans[k].end] {
				out = append(out, int(r))
			}
		}
	}
	return out
}

// Materialize builds the eager per-client shard slice from the metadata.
// DirichletPartition and IIDPartition are thin wrappers over this.
func (a *Assignment) Materialize(src *Dataset) []*Dataset {
	out := make([]*Dataset, a.numClients)
	for ci := range out {
		out[ci] = src.Subset(a.Rows(ci))
	}
	return out
}

// rowsMut returns a mutable explicit row list for ci, installing an
// overlay materialization on first use.
func (a *Assignment) rowsMut(ci int32) []int32 {
	if ov, ok := a.overlay[ci]; ok {
		return ov
	}
	rows := make([]int32, 0, a.sizes[ci])
	for _, r := range a.Rows(int(ci)) {
		rows = append(rows, int32(r))
	}
	a.overlay[ci] = rows
	return rows
}

// donorHeap is a lazy-deletion max-heap over (size desc, client asc):
// its top is the first client index attaining the maximum shard size,
// exactly the donor topUpEmpty's linear scan picks.
type donorHeap []donorEntry

type donorEntry struct {
	size   int32
	client int32
}

func (h donorHeap) Len() int { return len(h) }
func (h donorHeap) Less(i, j int) bool {
	if h[i].size != h[j].size {
		return h[i].size > h[j].size
	}
	return h[i].client < h[j].client
}
func (h donorHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *donorHeap) Push(x any)      { *h = append(*h, x.(donorEntry)) }
func (h *donorHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h donorHeap) peek() donorEntry { return h[0] }

// topUp replays topUpEmpty's semantics on the metadata: for each empty
// client in id order, steal one sample (at a rng.Intn position,
// order-preserving removal) from the first client holding the strictly
// largest shard, skipping when no shard holds more than one sample. The
// donor scan uses a lazy-deletion heap so a 10^6-client pass is
// O(N + donations·log N) instead of the legacy O(N²), with an identical
// donor sequence and identical RNG consumption.
func (a *Assignment) topUp(rng *tensor.RNG) {
	h := donorHeap{}
	for ci, sz := range a.sizes {
		if sz >= 2 {
			h = append(h, donorEntry{sz, int32(ci)})
		}
	}
	heap.Init(&h)
	for ci := 0; ci < a.numClients; ci++ {
		if a.sizes[ci] != 0 {
			continue
		}
		donor := int32(-1)
		for h.Len() > 0 {
			top := h.peek()
			if top.size != a.sizes[top.client] { // stale: size changed since push
				heap.Pop(&h)
				continue
			}
			donor = top.client
			break
		}
		if donor < 0 {
			// No shard holds ≥2 samples, so every remaining empty client
			// would also find len(largest) ≤ 1 and skip: the legacy loop
			// performs no further RNG draws or mutations.
			break
		}
		rows := a.rowsMut(donor)
		k := rng.Intn(len(rows))
		a.overlay[int32(ci)] = []int32{rows[k]}
		a.overlay[donor] = append(rows[:k], rows[k+1:]...)
		a.sizes[donor]--
		a.sizes[ci] = 1
		if a.sizes[donor] >= 2 {
			heap.Push(&h, donorEntry{a.sizes[donor], donor})
		}
	}
}
