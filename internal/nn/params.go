package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// ParamVector is a model's full parameter set flattened into one vector.
// The FL layer manipulates models exclusively through ParamVectors:
// aggregation, similarity, and dispatch are all vector operations, which
// keeps every algorithm model-architecture-agnostic.
type ParamVector []float64

// FlattenParams copies the given parameter tensors into a single vector.
func FlattenParams(params []*tensor.Tensor) ParamVector {
	n := 0
	for _, p := range params {
		n += p.Len()
	}
	v := make(ParamVector, 0, n)
	for _, p := range params {
		v = append(v, p.Data...)
	}
	return v
}

// LoadParams copies vec back into the parameter tensors. It returns an
// error when the total element counts disagree.
func LoadParams(params []*tensor.Tensor, vec ParamVector) error {
	n := 0
	for _, p := range params {
		n += p.Len()
	}
	if n != len(vec) {
		return fmt.Errorf("nn: LoadParams: vector has %d elements, model wants %d", len(vec), n)
	}
	off := 0
	for _, p := range params {
		copy(p.Data, vec[off:off+p.Len()])
		off += p.Len()
	}
	return nil
}

// Clone returns a deep copy of v.
func (v ParamVector) Clone() ParamVector {
	out := make(ParamVector, len(v))
	copy(out, v)
	return out
}

// Lerp returns alpha*v + (1-alpha)*w, the cross-aggregation primitive.
func (v ParamVector) Lerp(w ParamVector, alpha float64) ParamVector {
	out := make(ParamVector, len(v))
	LerpVectorsTo(out, v, w, alpha)
	return out
}

// LerpVectorsTo computes dst = alpha*v + (1-alpha)*w without allocating.
// dst may alias v or w.
func LerpVectorsTo(dst, v, w ParamVector, alpha float64) {
	if len(v) != len(w) || len(dst) != len(v) {
		panic(fmt.Sprintf("nn: LerpVectorsTo length mismatch dst %d, v %d, w %d", len(dst), len(v), len(w)))
	}
	beta := 1 - alpha
	for i := range dst {
		dst[i] = alpha*v[i] + beta*w[i]
	}
}

// Add returns v + w.
func (v ParamVector) Add(w ParamVector) ParamVector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v ParamVector) Sub(w ParamVector) ParamVector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v.
func (v ParamVector) Scale(s float64) ParamVector {
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AXPY adds alpha*w to v in place.
func (v ParamVector) AXPY(alpha float64, w ParamVector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.AXPY length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Dot returns the inner product of v and w.
func (v ParamVector) Dot(w ParamVector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func (v ParamVector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// DistanceSq returns ‖v-w‖², the quantity Lemma 3.4's contraction bounds.
func (v ParamVector) DistanceSq(w ParamVector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.DistanceSq length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// MeanVectors averages a non-empty set of equal-length vectors — the
// GlobalModelGen / FedAvg primitive.
func MeanVectors(vs []ParamVector) ParamVector {
	if len(vs) == 0 {
		panic("nn: MeanVectors of empty set")
	}
	out := make(ParamVector, len(vs[0]))
	MeanVectorsTo(out, vs)
	return out
}

// MeanVectorsTo computes the mean of vs into dst without allocating. dst
// may be vs[0] itself but must not alias any later vector, because dst is
// seeded from vs[0] before the rest accumulate.
func MeanVectorsTo(dst ParamVector, vs []ParamVector) {
	if len(vs) == 0 {
		panic("nn: MeanVectorsTo of empty set")
	}
	if len(dst) != len(vs[0]) {
		panic(fmt.Sprintf("nn: MeanVectorsTo destination length %d, want %d", len(dst), len(vs[0])))
	}
	copy(dst, vs[0])
	for _, v := range vs[1:] {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("nn: MeanVectorsTo length mismatch %d vs %d", len(v), len(dst)))
		}
		for i := range v {
			dst[i] += v[i]
		}
	}
	inv := 1 / float64(len(vs))
	for i := range dst {
		dst[i] *= inv
	}
}

// WeightedMeanVectors averages vectors with the given non-negative weights
// (normalised internally). Used for sample-size-weighted FedAvg.
func WeightedMeanVectors(vs []ParamVector, weights []float64) ParamVector {
	if len(vs) == 0 || len(vs) != len(weights) {
		panic(fmt.Sprintf("nn: WeightedMeanVectors: %d vectors, %d weights", len(vs), len(weights)))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("nn: WeightedMeanVectors: negative weight")
		}
		total += w
	}
	if total == 0 {
		return MeanVectors(vs)
	}
	out := make(ParamVector, len(vs[0]))
	for k, v := range vs {
		w := weights[k] / total
		for i := range v {
			out[i] += w * v[i]
		}
	}
	return out
}
