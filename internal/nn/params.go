package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// ParamVector is a model's full parameter set flattened into one vector.
// The FL layer manipulates models exclusively through ParamVectors:
// aggregation, similarity, and dispatch are all vector operations, which
// keeps every algorithm model-architecture-agnostic.
type ParamVector []float64

// FlattenParams copies the given parameter tensors into a single vector.
func FlattenParams(params []*tensor.Tensor) ParamVector {
	n := 0
	for _, p := range params {
		n += p.Len()
	}
	return FlattenParamsInto(make(ParamVector, n), params)
}

// FlattenParamsInto copies the parameter tensors into dst, whose length
// must equal the total element count, and returns dst. It is the
// zero-allocation form of FlattenParams for recycled upload buffers.
func FlattenParamsInto(dst ParamVector, params []*tensor.Tensor) ParamVector {
	off := 0
	for _, p := range params {
		n := p.Len()
		if off+n > len(dst) {
			panic(fmt.Sprintf("nn: FlattenParamsInto: destination length %d too short", len(dst)))
		}
		copy(dst[off:off+n], p.Data)
		off += n
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: FlattenParamsInto: destination length %d, model has %d", len(dst), off))
	}
	return dst
}

// LoadParams copies vec back into the parameter tensors. It returns an
// error when the total element counts disagree.
func LoadParams(params []*tensor.Tensor, vec ParamVector) error {
	n := 0
	for _, p := range params {
		n += p.Len()
	}
	if n != len(vec) {
		return fmt.Errorf("nn: LoadParams: vector has %d elements, model wants %d", len(vec), n)
	}
	off := 0
	for _, p := range params {
		copy(p.Data, vec[off:off+p.Len()])
		off += p.Len()
	}
	return nil
}

// Clone returns a deep copy of v.
func (v ParamVector) Clone() ParamVector {
	out := make(ParamVector, len(v))
	copy(out, v)
	return out
}

// Lerp returns alpha*v + (1-alpha)*w, the cross-aggregation primitive.
func (v ParamVector) Lerp(w ParamVector, alpha float64) ParamVector {
	out := make(ParamVector, len(v))
	LerpVectorsTo(out, v, w, alpha)
	return out
}

// LerpVectorsTo computes dst = alpha*v + (1-alpha)*w without allocating.
// dst may alias v or w.
func LerpVectorsTo(dst, v, w ParamVector, alpha float64) {
	if len(v) != len(w) || len(dst) != len(v) {
		panic(fmt.Sprintf("nn: LerpVectorsTo length mismatch dst %d, v %d, w %d", len(dst), len(v), len(w)))
	}
	beta := 1 - alpha
	for i := range dst {
		dst[i] = alpha*v[i] + beta*w[i]
	}
}

// Add returns v + w.
func (v ParamVector) Add(w ParamVector) ParamVector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v ParamVector) Sub(w ParamVector) ParamVector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v.
func (v ParamVector) Scale(s float64) ParamVector {
	out := make(ParamVector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AXPY adds alpha*w to v in place.
func (v ParamVector) AXPY(alpha float64, w ParamVector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.AXPY length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// The reduction kernels below (Dot, NormSq, DotNorms, DistanceSq) share
// one accumulation scheme: four independent partial-sum streams fed in a
// fixed index pattern (stream j takes indices ≡ j mod 4, the remainder
// rides stream 0), reduced in the fixed order (s0+s1)+(s2+s3). The streams
// break the loop-carried add dependency so the kernels run at memory
// bandwidth, and because every kernel uses the same pattern, fused and
// separate passes produce bit-identical sums — the property the Gram-pass
// similarity cache relies on.

// Dot returns the inner product of v and w.
func (v ParamVector) Dot(w ParamVector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * w[i]
		s1 += v[i+1] * w[i+1]
		s2 += v[i+2] * w[i+2]
		s3 += v[i+3] * w[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * w[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// NormSq returns ‖v‖², bit-identical to v.Dot(v).
func (v ParamVector) NormSq() float64 { return v.Dot(v) }

// Norm returns the L2 norm of v.
func (v ParamVector) Norm() float64 { return math.Sqrt(v.NormSq()) }

// DotNorms returns dot(v,w), ‖v‖² and ‖w‖² in one fused pass over both
// vectors — the one-shot similarity kernel (a cosine needs all three).
// Each result is bit-identical to the corresponding separate call.
func (v ParamVector) DotNorms(w ParamVector) (dot, vv, ww float64) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.DotNorms length mismatch %d vs %d", len(v), len(w)))
	}
	var d0, d1, d2, d3 float64
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		x0, x1, x2, x3 := v[i], v[i+1], v[i+2], v[i+3]
		y0, y1, y2, y3 := w[i], w[i+1], w[i+2], w[i+3]
		d0 += x0 * y0
		d1 += x1 * y1
		d2 += x2 * y2
		d3 += x3 * y3
		a0 += x0 * x0
		a1 += x1 * x1
		a2 += x2 * x2
		a3 += x3 * x3
		b0 += y0 * y0
		b1 += y1 * y1
		b2 += y2 * y2
		b3 += y3 * y3
	}
	for ; i < len(v); i++ {
		d0 += v[i] * w[i]
		a0 += v[i] * v[i]
		b0 += w[i] * w[i]
	}
	return (d0 + d1) + (d2 + d3), (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

// DistanceSq returns ‖v-w‖², the quantity Lemma 3.4's contraction bounds.
func (v ParamVector) DistanceSq(w ParamVector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: ParamVector.DistanceSq length mismatch %d vs %d", len(v), len(w)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		e0 := v[i] - w[i]
		e1 := v[i+1] - w[i+1]
		e2 := v[i+2] - w[i+2]
		e3 := v[i+3] - w[i+3]
		s0 += e0 * e0
		s1 += e1 * e1
		s2 += e2 * e2
		s3 += e3 * e3
	}
	for ; i < len(v); i++ {
		d := v[i] - w[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// MeanVectors averages a non-empty set of equal-length vectors — the
// GlobalModelGen / FedAvg primitive.
func MeanVectors(vs []ParamVector) ParamVector {
	if len(vs) == 0 {
		panic("nn: MeanVectors of empty set")
	}
	out := make(ParamVector, len(vs[0]))
	MeanVectorsTo(out, vs)
	return out
}

// MeanVectorsTo computes the mean of vs into dst without allocating. dst
// may be vs[0] itself but must not alias any later vector, because dst is
// seeded from vs[0] before the rest accumulate.
func MeanVectorsTo(dst ParamVector, vs []ParamVector) {
	if len(vs) == 0 {
		panic("nn: MeanVectorsTo of empty set")
	}
	if len(dst) != len(vs[0]) {
		panic(fmt.Sprintf("nn: MeanVectorsTo destination length %d, want %d", len(dst), len(vs[0])))
	}
	copy(dst, vs[0])
	for _, v := range vs[1:] {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("nn: MeanVectorsTo length mismatch %d vs %d", len(v), len(dst)))
		}
		for i := range v {
			dst[i] += v[i]
		}
	}
	inv := 1 / float64(len(vs))
	for i := range dst {
		dst[i] *= inv
	}
}

// WeightedMeanVectors averages vectors with the given non-negative weights
// (normalised internally). Used for sample-size-weighted FedAvg.
func WeightedMeanVectors(vs []ParamVector, weights []float64) ParamVector {
	if len(vs) == 0 || len(vs) != len(weights) {
		panic(fmt.Sprintf("nn: WeightedMeanVectors: %d vectors, %d weights", len(vs), len(weights)))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("nn: WeightedMeanVectors: negative weight")
		}
		total += w
	}
	if total == 0 {
		return MeanVectors(vs)
	}
	out := make(ParamVector, len(vs[0]))
	for k, v := range vs {
		w := weights[k] / total
		for i := range v {
			out[i] += w * v[i]
		}
	}
	return out
}
