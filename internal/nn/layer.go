// Package nn is a from-scratch neural-network stack: layers with
// hand-derived backward passes, softmax cross-entropy, and SGD with
// momentum. It exists because the FedCross reproduction needs a DNN
// training substrate and Go has no stdlib one; every layer is
// gradient-checked against central differences in the tests.
//
// Conventions:
//   - Activations are rank-2 tensors (batch × features). Convolutional
//     layers are told their spatial geometry at construction and reshape
//     internally, so the rest of the stack never juggles ranks.
//   - Layers cache whatever the backward pass needs during Forward, so a
//     layer instance must not be shared between concurrent training runs.
//   - Backward receives dLoss/dOutput and returns dLoss/dInput, and
//     accumulates parameter gradients internally (read via Grads).
package nn

import (
	"fmt"

	"fedcross/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for a (batch × features) input.
	// train toggles training-only behaviour such as dropout.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients as a side effect.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (may be empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
}

// Sequential chains layers. It implements Layer itself, so blocks nest.
// The layer list must not be mutated after the first Params/Grads call:
// both views are cached so per-step bookkeeping (ZeroGrads, SGD steps)
// does not rebuild them.
type Sequential struct {
	Layers []Layer

	params, grads []*tensor.Tensor // cached flat views
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through the layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenation of all layer parameters, in layer
// order. The slice is cached; callers must not append to it.
func (s *Sequential) Params() []*tensor.Tensor {
	if s.params == nil {
		for _, l := range s.Layers {
			s.params = append(s.params, l.Params()...)
		}
	}
	return s.params
}

// Grads returns the concatenation of all layer gradients, aligned with
// Params. The slice is cached; callers must not append to it.
func (s *Sequential) Grads() []*tensor.Tensor {
	if s.grads == nil {
		for _, l := range s.Layers {
			s.grads = append(s.grads, l.Grads()...)
		}
	}
	return s.grads
}

// ZeroGrads clears every gradient tensor of the network.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Len()
	}
	return n
}

func checkBatch(name string, x *tensor.Tensor, features int) {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: %s expects rank-2 input, got shape %v", name, x.Shape))
	}
	if features > 0 && x.Shape[1] != features {
		panic(fmt.Sprintf("nn: %s expects %d input features, got %d", name, features, x.Shape[1]))
	}
}
