package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy between logits
// (batch × classes) and integer labels, plus dLoss/dLogits ready for
// Backward. The softmax is computed with the max-subtraction trick for
// numerical stability.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.Zeros(logits.Shape...)
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing dLoss/dLogits
// into a caller-owned grad tensor of the same shape as logits (contents
// are overwritten; grad must not alias logits). It is the zero-allocation
// form the training loop uses with a reused buffer.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects rank-2 logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: %d labels for batch %d", len(labels), batch))
	}
	if !tensor.SameShape(grad, logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: grad shape %v, want %v", grad.Shape, logits.Shape))
	}
	return softmaxXentRows(grad.Data, logits.Data, labels, classes)
}

// softmaxXentRows runs the softmax cross-entropy forward/backward over a
// block of rows with mean normalization over exactly those rows. Both the
// whole-batch and the per-group entry points funnel here, so a group's
// loss and gradient are bit-identical whether its rows are scored alone
// or as one block of a fused multi-client batch.
func softmaxXentRows(grad, logits []float64, labels []int, classes int) (loss float64) {
	batch := len(labels)
	invB := 1.0 / float64(batch)
	for b := 0; b < batch; b++ {
		row := logits[b*classes : (b+1)*classes]
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: label %d out of range [0,%d)", y, classes))
		}
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		g := grad[b*classes : (b+1)*classes]
		for j, v := range row {
			e := math.Exp(v - maxV)
			g[j] = e
			sum += e
		}
		loss += math.Log(sum) - (row[y] - maxV)
		invSum := 1.0 / sum
		for j := range g {
			g[j] *= invSum * invB
		}
		g[y] -= invB
	}
	return loss * invB
}

// SoftmaxCrossEntropyGroupsInto scores `groups` independently-normalized
// groups of rows sharing one fused logits tensor: group g owns the row
// block [g·n, (g+1)·n) where n = batch/groups, its gradient rows are
// scaled by 1/n (not 1/batch), and losses[g] receives its mean loss.
// Each group's loss and gradient are bit-identical to
// SoftmaxCrossEntropyInto over that group's rows alone — the property the
// fused multi-client trainer relies on.
func SoftmaxCrossEntropyGroupsInto(losses []float64, grad, logits *tensor.Tensor, labels []int, groups int) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyGroups expects rank-2 logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	if groups <= 0 || batch%groups != 0 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyGroups: %d groups must divide batch %d", groups, batch))
	}
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyGroups: %d labels for batch %d", len(labels), batch))
	}
	if len(losses) < groups {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyGroups: %d loss slots for %d groups", len(losses), groups))
	}
	if !tensor.SameShape(grad, logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyGroups: grad shape %v, want %v", grad.Shape, logits.Shape))
	}
	n := batch / groups
	span := n * classes
	for g := 0; g < groups; g++ {
		losses[g] = softmaxXentRows(grad.Data[g*span:(g+1)*span], logits.Data[g*span:(g+1)*span], labels[g*n:(g+1)*n], classes)
	}
}

// SoftmaxCrossEntropyLoss computes the mean cross-entropy only, skipping
// the gradient buffer — the evaluation-path form. The loss accumulation is
// identical to SoftmaxCrossEntropyInto's, so both paths report the same
// value for the same logits.
func SoftmaxCrossEntropyLoss(logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyLoss expects rank-2 logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyLoss: %d labels for batch %d", len(labels), batch))
	}
	loss := 0.0
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: SoftmaxCrossEntropyLoss: label %d out of range [0,%d)", y, classes))
		}
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		loss += math.Log(sum) - (row[y] - maxV)
	}
	invB := 1.0 / float64(batch)
	return loss * invB
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	batch, classes := logits.Shape[0], logits.Shape[1]
	out := tensor.Zeros(batch, classes)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		o := out.Data[b*classes : (b+1)*classes]
		for j, v := range row {
			o[j] = math.Exp(v - maxV)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}

// KLToTeacher computes the mean KL(teacher ‖ student) given teacher
// probabilities and student logits, together with dLoss/dStudentLogits.
// It is the distillation loss used by the FedGen baseline.
func KLToTeacher(teacherProbs, studentLogits *tensor.Tensor) (float64, *tensor.Tensor) {
	if !tensor.SameShape(teacherProbs, studentLogits) {
		panic(fmt.Sprintf("nn: KLToTeacher shape mismatch %v vs %v", teacherProbs.Shape, studentLogits.Shape))
	}
	batch, classes := studentLogits.Shape[0], studentLogits.Shape[1]
	student := Softmax(studentLogits)
	loss := 0.0
	grad := tensor.Zeros(batch, classes)
	invB := 1.0 / float64(batch)
	for b := 0; b < batch; b++ {
		t := teacherProbs.Data[b*classes : (b+1)*classes]
		s := student.Data[b*classes : (b+1)*classes]
		g := grad.Data[b*classes : (b+1)*classes]
		for j := range t {
			if t[j] > 0 {
				loss += t[j] * (math.Log(t[j]) - math.Log(math.Max(s[j], 1e-12)))
			}
			// d/dlogits of KL(t||softmax) = softmax - t.
			g[j] = (s[j] - t[j]) * invB
		}
	}
	return loss * invB, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label. NaN logits can never win the argmax (`v > bestV` is false for
// NaN either way, but a NaN in position 0 used to win by default), so a
// row of corrupted logits counts as a wrong prediction instead of
// silently as class 0.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	batch, classes := logits.Shape[0], logits.Shape[1]
	if batch == 0 {
		return 0
	}
	correct := 0
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		best := -1
		bestV := 0.0
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if best == -1 || v > bestV {
				best, bestV = j, v
			}
		}
		if best == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}
