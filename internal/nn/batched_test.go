package nn

import (
	"math"
	"testing"

	"fedcross/internal/tensor"
)

// batchedLossOf scores a fused forward pass with per-group normalization
// and returns the sum of the group losses. Each parameter slab block
// influences only its own group's loss, so the sum is a valid scalar
// objective for central differences on any coordinate.
func batchedLossOf(bn *BatchedNet, x *tensor.Tensor, labels []int, losses []float64, grad *tensor.Tensor) float64 {
	logits := bn.Forward(x, false)
	SoftmaxCrossEntropyGroupsInto(losses, grad, logits, labels, bn.G)
	sum := 0.0
	for _, l := range losses[:bn.G] {
		sum += l
	}
	return sum
}

// batchedGradCheck is gradCheck for a BatchedNet: analytic slab gradients
// from the grouped loss vs central differences of the summed group loss.
func batchedGradCheck(t *testing.T, name string, bn *BatchedNet, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	losses := make([]float64, bn.G)
	bn.ZeroGrads()
	logits := bn.Forward(x, false)
	dlogits := tensor.Zeros(logits.Shape...)
	SoftmaxCrossEntropyGroupsInto(losses, dlogits, logits, labels, bn.G)
	bn.Backward(dlogits)

	params := bn.Params()
	grads := bn.Grads()
	rng := tensor.NewRNG(123)
	const eps = 1e-5
	checked := 0
	for pi, p := range params {
		n := p.Len()
		// Check up to 4 coordinates per group block so every group's
		// arithmetic is exercised, not just group 0's.
		s := n / bn.G
		for g := 0; g < bn.G; g++ {
			for k := 0; k < 4 && k < s; k++ {
				j := g*s + rng.Intn(s)
				orig := p.Data[j]
				p.Data[j] = orig + eps
				lp := batchedLossOf(bn, x, labels, losses, dlogits)
				p.Data[j] = orig - eps
				lm := batchedLossOf(bn, x, labels, losses, dlogits)
				p.Data[j] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := grads[pi].Data[j]
				scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
				if math.Abs(numeric-analytic)/scale > tol {
					t.Fatalf("%s: param %d coord %d: analytic %.8g vs numeric %.8g", name, pi, j, analytic, numeric)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no parameters checked", name)
	}
}

// loadRandomClients fills every group of bn with an independently
// initialised solo model's parameters and returns the solo nets.
func loadRandomClients(t *testing.T, bn *BatchedNet, proto func(*tensor.RNG) *Sequential, seed int64) []*Sequential {
	t.Helper()
	solos := make([]*Sequential, bn.G)
	for g := 0; g < bn.G; g++ {
		solos[g] = proto(tensor.NewRNG(seed + int64(g)))
		bn.LoadClient(g, FlattenParams(solos[g].Params()))
	}
	return solos
}

func TestGradCheckBatchedLinear(t *testing.T) {
	proto := func(rng *tensor.RNG) *Sequential {
		return NewSequential(NewLinear(5, 6, rng), NewReLU(), NewLinear(6, 3, rng))
	}
	for _, fanout := range []int{2, 8} {
		bn, err := NewBatched(proto(tensor.NewRNG(0)), fanout)
		if err != nil {
			t.Fatal(err)
		}
		loadRandomClients(t, bn, proto, 40)
		rng := tensor.NewRNG(41)
		const n = 3
		x := rng.Randn(1, fanout*n, 5)
		labels := make([]int, fanout*n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		batchedGradCheck(t, "batched-linear", bn, x, labels, 1e-5)
	}
}

func TestGradCheckBatchedConv(t *testing.T) {
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	proto := func(rng *tensor.RNG) *Sequential {
		conv := NewConv2D(g, 3, rng)
		pool := NewMaxPool2D(3, 4, 4, 2)
		return NewSequential(conv, NewReLU(), pool, NewLinear(pool.OutFeatures(), 3, rng))
	}
	for _, fanout := range []int{2, 8} {
		bn, err := NewBatched(proto(tensor.NewRNG(0)), fanout)
		if err != nil {
			t.Fatal(err)
		}
		loadRandomClients(t, bn, proto, 50)
		rng := tensor.NewRNG(51)
		const n = 2
		x := rng.Randn(1, fanout*n, 2*4*4)
		labels := make([]int, fanout*n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		batchedGradCheck(t, "batched-conv", bn, x, labels, 1e-5)
	}
}

func TestGradCheckBatchedLSTM(t *testing.T) {
	proto := func(rng *tensor.RNG) *Sequential {
		return NewSequential(NewLSTM(4, 3, 5, rng), NewLinear(5, 3, rng))
	}
	for _, fanout := range []int{2, 8} {
		bn, err := NewBatched(proto(tensor.NewRNG(0)), fanout)
		if err != nil {
			t.Fatal(err)
		}
		loadRandomClients(t, bn, proto, 60)
		rng := tensor.NewRNG(61)
		const n = 2
		x := rng.Randn(1, fanout*n, 12)
		labels := make([]int, fanout*n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		batchedGradCheck(t, "batched-lstm", bn, x, labels, 1e-4)
	}
}

func TestGradCheckBatchedEmbedding(t *testing.T) {
	proto := func(rng *tensor.RNG) *Sequential {
		return NewSequential(NewEmbedding(7, 3, rng), NewLSTM(5, 3, 4, rng), NewLinear(4, 2, rng))
	}
	bn, err := NewBatched(proto(tensor.NewRNG(0)), 2)
	if err != nil {
		t.Fatal(err)
	}
	loadRandomClients(t, bn, proto, 70)
	x := tensor.New([]float64{0, 3, 6, 2, 1, 5, 5, 4, 0, 1, 2, 2, 6, 0, 3, 1, 4, 5, 6, 0}, 4, 5)
	batchedGradCheck(t, "batched-embedding", bn, x, []int{1, 0, 1, 0}, 1e-4)
}

// TestNewBatchedRejectsUnsupported pins the solo-fallback trigger: a
// Dropout (or Residual) in the architecture must fail NewBatched rather
// than silently change training semantics.
func TestNewBatchedRejectsUnsupported(t *testing.T) {
	rng := tensor.NewRNG(1)
	withDropout := NewSequential(NewLinear(4, 4, rng), NewDropout(0.5, rng), NewLinear(4, 2, rng))
	if _, err := NewBatched(withDropout, 2); err == nil {
		t.Fatal("NewBatched accepted a Dropout layer")
	}
	body := NewSequential(NewLinear(4, 4, rng))
	withRes := NewSequential(NewResidual(body), NewLinear(4, 2, rng))
	if _, err := NewBatched(withRes, 2); err == nil {
		t.Fatal("NewBatched accepted a Residual layer")
	}
	if _, err := NewBatched(NewSequential(NewLinear(4, 2, rng)), 0); err == nil {
		t.Fatal("NewBatched accepted fanout 0")
	}
}

// TestBatchedMatchesSolo trains G independently-initialised clients both
// ways — each solo on its own rows, and all fused through one BatchedNet
// with a shared elementwise SGD over the slabs — and requires bitwise
// agreement of every logit, every gradient block, and every parameter
// after multiple momentum steps. This is the whole-stack bit-identity
// contract the FL fused trainer builds on.
func TestBatchedMatchesSolo(t *testing.T) {
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	proto := func(rng *tensor.RNG) *Sequential {
		conv := NewConv2D(g, 3, rng)
		pool := NewMaxPool2D(3, 4, 4, 2)
		return NewSequential(conv, NewReLU(), pool, NewLinear(pool.OutFeatures(), 4, rng))
	}
	const G, n, classes, steps = 3, 4, 4, 5
	bn, err := NewBatched(proto(tensor.NewRNG(0)), G)
	if err != nil {
		t.Fatal(err)
	}
	solos := loadRandomClients(t, bn, proto, 80)

	rng := tensor.NewRNG(81)
	x := rng.Randn(1, G*n, 2*4*4)
	labels := make([]int, G*n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}

	fusedOpt := NewSGD(0.05, 0.9)
	soloOpts := make([]*SGD, G)
	for i := range soloOpts {
		soloOpts[i] = NewSGD(0.05, 0.9)
	}
	losses := make([]float64, G)
	feat := 2 * 4 * 4
	for step := 0; step < steps; step++ {
		bn.ZeroGrads()
		logits := bn.Forward(x, true)
		dlogits := tensor.Zeros(logits.Shape...)
		SoftmaxCrossEntropyGroupsInto(losses, dlogits, logits, labels, G)
		bn.Backward(dlogits)
		fusedOpt.Step(bn.Params(), bn.Grads())

		for gi, solo := range solos {
			solo.ZeroGrads()
			xg := tensor.New(x.Data[gi*n*feat:(gi+1)*n*feat], n, feat)
			sl := solo.Forward(xg, true)
			fusedBlock := logits.Data[gi*n*classes : (gi+1)*n*classes]
			for j := range sl.Data {
				if math.Float64bits(sl.Data[j]) != math.Float64bits(fusedBlock[j]) {
					t.Fatalf("step %d group %d logit %d: solo %v fused %v", step, gi, j, sl.Data[j], fusedBlock[j])
				}
			}
			loss, dl := SoftmaxCrossEntropy(sl, labels[gi*n:(gi+1)*n])
			if math.Float64bits(loss) != math.Float64bits(losses[gi]) {
				t.Fatalf("step %d group %d loss: solo %v fused %v", step, gi, loss, losses[gi])
			}
			solo.Backward(dl)
			// Gradient slab block must equal the solo gradient exactly.
			soloGrads := solo.Grads()
			for pi, fg := range bn.Grads() {
				s := fg.Len() / G
				block := fg.Data[gi*s : (gi+1)*s]
				want := soloGrads[pi].Data
				for j := range want {
					if math.Float64bits(block[j]) != math.Float64bits(want[j]) {
						t.Fatalf("step %d group %d grad %d coord %d: fused %v solo %v", step, gi, pi, j, block[j], want[j])
					}
				}
			}
			soloOpts[gi].Step(solo.Params(), soloGrads)
		}
	}

	out := make([]float64, bn.ClientParams())
	for gi, solo := range solos {
		bn.StoreClient(gi, out)
		want := FlattenParams(solo.Params())
		for j := range want {
			if math.Float64bits(out[j]) != math.Float64bits(want[j]) {
				t.Fatalf("final params group %d coord %d: fused %v solo %v", gi, j, out[j], want[j])
			}
		}
	}
}

// TestBatchedLoadStoreRoundTrip pins the slab layout contract: LoadClient
// then StoreClient is the identity on a solo flat vector.
func TestBatchedLoadStoreRoundTrip(t *testing.T) {
	proto := func(rng *tensor.RNG) *Sequential {
		return NewSequential(NewLSTM(3, 2, 4, rng), NewLinear(4, 3, rng))
	}
	bn, err := NewBatched(proto(tensor.NewRNG(0)), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(90)
	vecs := make([][]float64, 4)
	for g := 0; g < 4; g++ {
		vecs[g] = make([]float64, bn.ClientParams())
		for j := range vecs[g] {
			vecs[g][j] = rng.Normal(0, 1)
		}
		bn.LoadClient(g, vecs[g])
	}
	out := make([]float64, bn.ClientParams())
	for g := 0; g < 4; g++ {
		bn.StoreClient(g, out)
		for j := range out {
			if math.Float64bits(out[j]) != math.Float64bits(vecs[g][j]) {
				t.Fatalf("group %d coord %d: %v vs %v", g, j, out[j], vecs[g][j])
			}
		}
	}
}
