package nn

import (
	"fmt"

	"fedcross/internal/tensor"
)

// Residual wraps a body (usually a Sequential of conv/ReLU layers) with a
// skip connection: y = body(x) + proj(x). When the body preserves the
// feature width the projection is the identity; otherwise callers supply a
// projection layer (typically a 1×1 conv or Linear).
type Residual struct {
	Body Layer
	Proj Layer // nil means identity skip

	out *tensor.Tensor // reused forward buffer
}

// NewResidual wraps body with an identity skip connection.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// NewResidualProj wraps body with a learned projection on the skip path,
// for blocks that change the feature width.
func NewResidualProj(body, proj Layer) *Residual {
	return &Residual{Body: body, Proj: proj}
}

// Forward computes body(x) + skip(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	var skip *tensor.Tensor
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	} else {
		skip = x
	}
	if !tensor.SameShape(y, skip) {
		panic(fmt.Sprintf("nn: Residual: body output %v does not match skip %v (need a projection)", y.Shape, skip.Shape))
	}
	r.out = tensor.Ensure(r.out, y.Shape...)
	return tensor.AddTo(r.out, y, skip)
}

// Backward splits the incoming gradient between the body and the skip path.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := r.Body.Backward(grad)
	if r.Proj != nil {
		tensor.AddInPlace(dx, r.Proj.Backward(grad))
	} else {
		tensor.AddInPlace(dx, grad)
	}
	return dx
}

// Params returns the body's parameters followed by the projection's.
func (r *Residual) Params() []*tensor.Tensor {
	ps := r.Body.Params()
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}

// Grads returns gradients aligned with Params.
func (r *Residual) Grads() []*tensor.Tensor {
	gs := r.Body.Grads()
	if r.Proj != nil {
		gs = append(gs, r.Proj.Grads()...)
	}
	return gs
}
