package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// Embedding maps token-ID sequences to dense vectors. Input is
// (batch × T) of integer IDs stored as float64; output is (batch × T·D)
// with the T embedding vectors concatenated, ready for an LSTM that knows
// T and D.
type Embedding struct {
	Vocab, D int
	W        *tensor.Tensor // (Vocab × D)
	dW       *tensor.Tensor

	ids []int
	t   int // sequence length of the last forward

	out, dx *tensor.Tensor // reused buffers
}

// NewEmbedding constructs an embedding table with N(0, 1/√D) entries.
func NewEmbedding(vocab, d int, rng *tensor.RNG) *Embedding {
	return &Embedding{
		Vocab: vocab, D: d,
		W:  rng.Randn(1/math.Sqrt(float64(d)), vocab, d),
		dW: tensor.Zeros(vocab, d),
	}
}

// Forward looks up each token's embedding row.
func (e *Embedding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: Embedding expects rank-2 (batch x T) input, got %v", x.Shape))
	}
	batch, t := x.Shape[0], x.Shape[1]
	e.t = t
	if cap(e.ids) < batch*t {
		e.ids = make([]int, batch*t)
	}
	e.ids = e.ids[:batch*t]
	e.out = tensor.Ensure(e.out, batch, t*e.D)
	out := e.out
	for i, raw := range x.Data {
		id := int(raw)
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: Embedding: token id %d out of vocab %d", id, e.Vocab))
		}
		e.ids[i] = id
		copy(out.Data[i*e.D:(i+1)*e.D], e.W.Data[id*e.D:(id+1)*e.D])
	}
	return out
}

// Backward scatters gradients into the embedding rows. The returned input
// gradient is zero (token IDs are not differentiable).
func (e *Embedding) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Shape[1] != e.t*e.D {
		panic(fmt.Sprintf("nn: Embedding.Backward: grad width %d, want %d", grad.Shape[1], e.t*e.D))
	}
	for i, id := range e.ids {
		src := grad.Data[i*e.D : (i+1)*e.D]
		dst := e.dW.Data[id*e.D : (id+1)*e.D]
		for j := range src {
			dst[j] += src[j]
		}
	}
	// Token IDs are not differentiable; the input gradient is always zero.
	e.dx = tensor.Ensure(e.dx, grad.Shape[0], e.t)
	e.dx.Zero()
	return e.dx
}

// Params returns {W}.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.W} }

// Grads returns {dW}.
func (e *Embedding) Grads() []*tensor.Tensor { return []*tensor.Tensor{e.dW} }
