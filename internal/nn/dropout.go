package nn

import (
	"fmt"

	"fedcross/internal/tensor"
)

// Dropout zeroes activations with probability P during training and
// rescales the survivors by 1/(1-P) (inverted dropout), so inference needs
// no adjustment.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	mask    []float64
	out, dx *tensor.Tensor
}

// NewDropout constructs a dropout layer with drop probability p in [0,1).
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies the mask during training and is the identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	d.out = tensor.Ensure(d.out, x.Shape...)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			d.out.Data[i] = 0
		} else {
			d.mask[i] = scale
			d.out.Data[i] = v * scale
		}
	}
	return d.out
}

// Backward gates the gradient with the same mask used in Forward.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.dx = tensor.Ensure(d.dx, grad.Shape...)
	for i, v := range grad.Data {
		d.dx.Data[i] = v * d.mask[i]
	}
	return d.dx
}

// Params returns nil.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
