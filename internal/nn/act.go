package nn

import (
	"math"

	"fedcross/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	mask    []bool
	out, dx *tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative inputs and records the active mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	tensor.ReluForward(r.out.Data, x.Data, r.mask)
	return r.out
}

// Backward gates the incoming gradient by the active mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, grad.Shape...)
	tensor.ReluBackward(r.dx.Data, grad.Data, r.mask)
	return r.dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = tensor.ApplyTo(tensor.Ensure(t.y, x.Shape...), x, math.Tanh)
	return t.y
}

// Backward multiplies by 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.dx = tensor.Ensure(t.dx, grad.Shape...)
	for i, v := range grad.Data {
		t.dx.Data[i] = v * (1 - t.y.Data[i]*t.y.Data[i])
	}
	return t.dx
}

// Params returns nil.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function elementwise.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = tensor.ApplyTo(tensor.Ensure(s.y, x.Shape...), x, sigmoid)
	return s.y
}

// Backward multiplies by y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dx = tensor.Ensure(s.dx, grad.Shape...)
	for i, v := range grad.Data {
		s.dx.Data[i] = v * s.y.Data[i] * (1 - s.y.Data[i])
	}
	return s.dx
}

// Params returns nil.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }
