package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// Batched layers: G independent parameter sets trained as one fused
// network. A BatchedNet mirrors a solo Sequential's architecture but
// stores every parameter as a group-major slab whose g-th block is laid
// out exactly like the solo tensor, and consumes fused minibatches in
// which group g owns the row block [g·n, (g+1)·n). Each group's forward
// activations, gradients and SGD updates are bit-identical to running
// the solo network on that group's rows alone: the batched matmul
// kernels guarantee per-group bit-identity, the per-group scalar loops
// below replicate the solo loops' accumulation order, and SGD is
// elementwise. That is the contract that lets the FL layer fuse several
// clients' local training into one pass without perturbing any client's
// training history.

// groupRows validates that a fused batch splits evenly across groups and
// returns the per-group row count.
func groupRows(name string, batch, g int) int {
	if g <= 0 || batch%g != 0 {
		panic(fmt.Sprintf("nn: %s: batch %d must be a multiple of %d groups", name, batch, g))
	}
	return batch / g
}

// addGroupRows adds bias row g of bias (G × w) to each of group g's n
// rows of dst (G·n × w) — AddRowTo's per-element add applied per group.
func addGroupRows(dst, bias []float64, g, n, w int) {
	for gi := 0; gi < g; gi++ {
		b := bias[gi*w : (gi+1)*w]
		for r := gi * n; r < (gi+1)*n; r++ {
			row := dst[r*w : (r+1)*w]
			for j, v := range b {
				row[j] += v
			}
		}
	}
}

// colSumGroups accumulates per-group column sums of src (G·n × w) into
// dst rows (G × w), rows ascending within each group — ColSumAcc's
// accumulation chain restricted to each group's row block.
func colSumGroups(dst, src []float64, g, n, w int) {
	for gi := 0; gi < g; gi++ {
		d := dst[gi*w : (gi+1)*w]
		for r := gi * n; r < (gi+1)*n; r++ {
			row := src[r*w : (r+1)*w]
			for j, v := range row {
				d[j] += v
			}
		}
	}
}

// BatchedLinear is G independent Linear layers sharing one fused batch.
type BatchedLinear struct {
	G, In, Out int
	W, B       *tensor.Tensor // slabs (G × In × Out), (G × Out)
	dW, dB     *tensor.Tensor

	x       *tensor.Tensor // cached input for backward
	out, dx *tensor.Tensor
}

func newBatchedLinear(g, in, out int) *BatchedLinear {
	return &BatchedLinear{
		G: g, In: in, Out: out,
		W:  tensor.Zeros(g, in, out),
		B:  tensor.Zeros(g, out),
		dW: tensor.Zeros(g, in, out),
		dB: tensor.Zeros(g, out),
	}
}

// Forward computes group g's rows as x_g·W_g + b_g in one batched matmul.
func (l *BatchedLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("BatchedLinear", x, l.In)
	n := groupRows("BatchedLinear", x.Shape[0], l.G)
	l.x = x
	l.out = tensor.Ensure(l.out, x.Shape[0], l.Out)
	tensor.BatchMatMulTo(tensor.New(l.out.Data, l.G, n, l.Out), tensor.New(x.Data, l.G, n, l.In), l.W)
	addGroupRows(l.out.Data, l.B.Data, l.G, n, l.Out)
	return l.out
}

// Backward accumulates each group's dW/dB and returns the fused input
// gradient.
func (l *BatchedLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("BatchedLinear.Backward", grad, l.Out)
	batch := grad.Shape[0]
	n := batch / l.G
	g3 := tensor.New(grad.Data, l.G, n, l.Out)
	tensor.BatchMatMulTransAAcc(l.dW, tensor.New(l.x.Data, l.G, n, l.In), g3)
	colSumGroups(l.dB.Data, grad.Data, l.G, n, l.Out)
	l.dx = tensor.Ensure(l.dx, batch, l.In)
	tensor.BatchMatMulTransBTo(tensor.New(l.dx.Data, l.G, n, l.In), g3, l.W)
	return l.dx
}

// Params returns {W, B} slabs.
func (l *BatchedLinear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Grads returns {dW, dB} slabs.
func (l *BatchedLinear) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dW, l.dB} }

// BatchedConv2D is G independent Conv2D layers over one fused batch. The
// im2col workspace gains a leading group dimension so one batched matmul
// convolves every group; the channel-major shuffles run per group,
// replicating the solo layer's loops on each group's slab.
type BatchedConv2D struct {
	G      int
	Geom   tensor.ConvGeom
	OutC   int
	W, B   *tensor.Tensor // slabs (G × OutC × InC·KH·KW), (G × OutC)
	dW, dB *tensor.Tensor

	cols, y, out, dy, dcols, dx *tensor.Tensor
}

// InFeatures returns the flattened input width.
func (c *BatchedConv2D) InFeatures() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutFeatures returns the flattened output width.
func (c *BatchedConv2D) OutFeatures() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward lowers each group's rows with im2col and convolves all groups
// in one batched multiply.
func (c *BatchedConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("BatchedConv2D", x, c.InFeatures())
	batch := x.Shape[0]
	n := groupRows("BatchedConv2D", batch, c.G)
	spatial := c.Geom.OutH() * c.Geom.OutW()
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	inLen := c.InFeatures()
	ns := n * spatial
	c.cols = tensor.Ensure(c.cols, c.G, colRows, ns)
	for g := 0; g < c.G; g++ {
		tensor.Im2ColBatchTo(
			tensor.New(c.cols.Data[g*colRows*ns:(g+1)*colRows*ns], colRows, ns),
			tensor.New(x.Data[g*n*inLen:(g+1)*n*inLen], n, inLen), c.Geom)
	}
	c.y = tensor.Ensure(c.y, c.G, c.OutC, ns)
	tensor.BatchMatMulTo(c.y, c.W, c.cols)
	c.out = tensor.Ensure(c.out, batch, c.OutC*spatial)
	// Channel-major → sample-major with the bias fused into the copy,
	// exactly the solo loop on each group's slab.
	for g := 0; g < c.G; g++ {
		ySlab := c.y.Data[g*c.OutC*ns : (g+1)*c.OutC*ns]
		outSlab := c.out.Data[g*n*c.OutC*spatial : (g+1)*n*c.OutC*spatial]
		bg := c.B.Data[g*c.OutC : (g+1)*c.OutC]
		for oc := 0; oc < c.OutC; oc++ {
			bias := bg[oc]
			yrow := ySlab[oc*ns : (oc+1)*ns]
			for b := 0; b < n; b++ {
				src := yrow[b*spatial : (b+1)*spatial]
				dst := outSlab[b*c.OutC*spatial+oc*spatial : b*c.OutC*spatial+(oc+1)*spatial]
				for j, v := range src {
					dst[j] = v + bias
				}
			}
		}
	}
	return c.out
}

// Backward accumulates each group's dW/dB and scatters dx, mirroring the
// solo Conv2D backward per group.
func (c *BatchedConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("BatchedConv2D.Backward", grad, c.OutFeatures())
	batch := grad.Shape[0]
	n := batch / c.G
	spatial := c.Geom.OutH() * c.Geom.OutW()
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	inLen := c.InFeatures()
	ns := n * spatial
	c.dy = tensor.Ensure(c.dy, c.G, c.OutC, ns)
	for g := 0; g < c.G; g++ {
		dySlab := c.dy.Data[g*c.OutC*ns : (g+1)*c.OutC*ns]
		gSlab := grad.Data[g*n*c.OutC*spatial : (g+1)*n*c.OutC*spatial]
		for oc := 0; oc < c.OutC; oc++ {
			dyRow := dySlab[oc*ns : (oc+1)*ns]
			for b := 0; b < n; b++ {
				copy(dyRow[b*spatial:(b+1)*spatial], gSlab[b*c.OutC*spatial+oc*spatial:b*c.OutC*spatial+(oc+1)*spatial])
			}
		}
		// dW via the per-sample segment chain, dB via the solo scalar sums.
		tensor.MatMulTransBSegAcc(
			tensor.New(c.dW.Data[g*c.OutC*colRows:(g+1)*c.OutC*colRows], c.OutC, colRows),
			tensor.New(dySlab, c.OutC, ns),
			tensor.New(c.cols.Data[g*colRows*ns:(g+1)*colRows*ns], colRows, ns), spatial)
		dBg := c.dB.Data[g*c.OutC : (g+1)*c.OutC]
		for oc := 0; oc < c.OutC; oc++ {
			dyRow := dySlab[oc*ns : (oc+1)*ns]
			acc := dBg[oc]
			for b := 0; b < n; b++ {
				s := 0.0
				for _, v := range dyRow[b*spatial : (b+1)*spatial] {
					s += v
				}
				acc += s
			}
			dBg[oc] = acc
		}
	}
	c.dcols = tensor.Ensure(c.dcols, c.G, colRows, ns)
	tensor.BatchMatMulTransATo(c.dcols, c.W, c.dy)
	c.dx = tensor.Ensure(c.dx, batch, inLen)
	for g := 0; g < c.G; g++ {
		tensor.Col2ImBatchTo(
			tensor.New(c.dx.Data[g*n*inLen:(g+1)*n*inLen], n, inLen),
			tensor.New(c.dcols.Data[g*colRows*ns:(g+1)*colRows*ns], colRows, ns), c.Geom)
	}
	return c.dx
}

// Params returns {W, B} slabs.
func (c *BatchedConv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, dB} slabs.
func (c *BatchedConv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// BatchedLSTM is G independent LSTMs over one fused batch. The recurrence
// structure matches the solo layer step for step; only the two gate
// matmuls per step become batched multiplies over the weight slabs.
type BatchedLSTM struct {
	G, T, D, H   int
	Wx, Wh, B    *tensor.Tensor // slabs (G × D × 4H), (G × H × 4H), (G × 4H)
	dWx, dWh, dB *tensor.Tensor

	xs, hs, cs, gates, tanhC []*tensor.Tensor
	batch                    int

	a, da, dh, dc, dxt, dx *tensor.Tensor
}

func newBatchedLSTM(g, t, d, h int) *BatchedLSTM {
	return &BatchedLSTM{
		G: g, T: t, D: d, H: h,
		Wx:  tensor.Zeros(g, d, 4*h),
		Wh:  tensor.Zeros(g, h, 4*h),
		B:   tensor.Zeros(g, 4*h),
		dWx: tensor.Zeros(g, d, 4*h),
		dWh: tensor.Zeros(g, h, 4*h),
		dB:  tensor.Zeros(g, 4*h),
	}
}

// Forward runs the recurrence over all T steps for every group at once.
func (l *BatchedLSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("BatchedLSTM", x, l.T*l.D)
	batch := x.Shape[0]
	n := groupRows("BatchedLSTM", batch, l.G)
	l.batch = batch
	h4 := 4 * l.H

	l.xs = ensureSteps(l.xs, l.T, batch, l.D)
	l.hs = ensureSteps(l.hs, l.T+1, batch, l.H)
	l.cs = ensureSteps(l.cs, l.T+1, batch, l.H)
	l.gates = ensureSteps(l.gates, l.T, batch, h4)
	l.tanhC = ensureSteps(l.tanhC, l.T, batch, l.H)
	l.hs[0].Zero()
	l.cs[0].Zero()
	l.a = tensor.Ensure(l.a, batch, h4)
	a := l.a
	a3 := tensor.New(a.Data, l.G, n, h4)

	for t := 0; t < l.T; t++ {
		xt := l.xs[t]
		for b := 0; b < batch; b++ {
			copy(xt.Data[b*l.D:(b+1)*l.D], x.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D])
		}

		tensor.BatchMatMulTo(a3, tensor.New(xt.Data, l.G, n, l.D), l.Wx)
		tensor.BatchMatMulAcc(a3, tensor.New(l.hs[t].Data, l.G, n, l.H), l.Wh)
		addGroupRows(a.Data, l.B.Data, l.G, n, h4)

		gate, ct, ht, tc := l.gates[t], l.cs[t+1], l.hs[t+1], l.tanhC[t]
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			arow := a.Data[b*h4 : (b+1)*h4]
			grow := gate.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i := sigmoid(arow[j])
				f := sigmoid(arow[l.H+j])
				g := math.Tanh(arow[2*l.H+j])
				o := sigmoid(arow[3*l.H+j])
				grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j] = i, f, g, o
				c := f*prevC.Data[b*l.H+j] + i*g
				ct.Data[b*l.H+j] = c
				th := math.Tanh(c)
				tc.Data[b*l.H+j] = th
				ht.Data[b*l.H+j] = o * th
			}
		}
	}
	return l.hs[l.T]
}

// Backward backpropagates through time for every group at once.
func (l *BatchedLSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("BatchedLSTM.Backward", grad, l.H)
	batch := l.batch
	n := batch / l.G
	h4 := 4 * l.H
	l.dx = tensor.Ensure(l.dx, batch, l.T*l.D)
	l.dh = tensor.Ensure(l.dh, batch, l.H)
	copy(l.dh.Data, grad.Data)
	l.dc = tensor.Ensure(l.dc, batch, l.H)
	l.dc.Zero()
	l.da = tensor.Ensure(l.da, batch, h4)
	l.dxt = tensor.Ensure(l.dxt, batch, l.D)
	dx, dh, dc, da, dxt := l.dx, l.dh, l.dc, l.da, l.dxt
	da3 := tensor.New(da.Data, l.G, n, h4)
	dh3 := tensor.New(dh.Data, l.G, n, l.H)
	dxt3 := tensor.New(dxt.Data, l.G, n, l.D)

	for t := l.T - 1; t >= 0; t-- {
		gate := l.gates[t]
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			grow := gate.Data[b*h4 : (b+1)*h4]
			darow := da.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i, f, g, o := grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j]
				th := l.tanhC[t].Data[b*l.H+j]
				dhv := dh.Data[b*l.H+j]
				do := dhv * th
				dcv := dc.Data[b*l.H+j] + dhv*o*(1-th*th)
				di := dcv * g
				dg := dcv * i
				df := dcv * prevC.Data[b*l.H+j]
				dc.Data[b*l.H+j] = dcv * f // becomes dc_{t-1}
				darow[j] = di * i * (1 - i)
				darow[l.H+j] = df * f * (1 - f)
				darow[2*l.H+j] = dg * (1 - g*g)
				darow[3*l.H+j] = do * o * (1 - o)
			}
		}
		tensor.BatchMatMulTransAAcc(l.dWx, tensor.New(l.xs[t].Data, l.G, n, l.D), da3)
		tensor.BatchMatMulTransAAcc(l.dWh, tensor.New(l.hs[t].Data, l.G, n, l.H), da3)
		colSumGroups(l.dB.Data, da.Data, l.G, n, h4)
		tensor.BatchMatMulTransBTo(dxt3, da3, l.Wx)
		for b := 0; b < batch; b++ {
			copy(dx.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D], dxt.Data[b*l.D:(b+1)*l.D])
		}
		tensor.BatchMatMulTransBTo(dh3, da3, l.Wh)
	}
	return dx
}

// Params returns {Wx, Wh, B} slabs.
func (l *BatchedLSTM) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Wx, l.Wh, l.B} }

// Grads returns {dWx, dWh, dB} slabs.
func (l *BatchedLSTM) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dWx, l.dWh, l.dB} }

// BatchedEmbedding is G independent embedding tables; each fused row
// looks up (and scatters gradients into) its own group's table.
type BatchedEmbedding struct {
	G, Vocab, D int
	W           *tensor.Tensor // slab (G × Vocab × D)
	dW          *tensor.Tensor

	ids     []int
	t, n    int // sequence length and group rows of the last forward
	out, dx *tensor.Tensor
}

func newBatchedEmbedding(g, vocab, d int) *BatchedEmbedding {
	return &BatchedEmbedding{
		G: g, Vocab: vocab, D: d,
		W:  tensor.Zeros(g, vocab, d),
		dW: tensor.Zeros(g, vocab, d),
	}
}

// Forward looks up each token's embedding row in its group's table.
func (e *BatchedEmbedding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: BatchedEmbedding expects rank-2 (batch x T) input, got %v", x.Shape))
	}
	batch, t := x.Shape[0], x.Shape[1]
	n := groupRows("BatchedEmbedding", batch, e.G)
	e.t, e.n = t, n
	if cap(e.ids) < batch*t {
		e.ids = make([]int, batch*t)
	}
	e.ids = e.ids[:batch*t]
	e.out = tensor.Ensure(e.out, batch, t*e.D)
	out := e.out
	tableLen := e.Vocab * e.D
	for i, raw := range x.Data {
		id := int(raw)
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: BatchedEmbedding: token id %d out of vocab %d", id, e.Vocab))
		}
		e.ids[i] = id
		base := (i / (n * t)) * tableLen // group of row i/t
		copy(out.Data[i*e.D:(i+1)*e.D], e.W.Data[base+id*e.D:base+(id+1)*e.D])
	}
	return out
}

// Backward scatters gradients into each group's table rows.
func (e *BatchedEmbedding) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Shape[1] != e.t*e.D {
		panic(fmt.Sprintf("nn: BatchedEmbedding.Backward: grad width %d, want %d", grad.Shape[1], e.t*e.D))
	}
	tableLen := e.Vocab * e.D
	for i, id := range e.ids {
		base := (i / (e.n * e.t)) * tableLen
		src := grad.Data[i*e.D : (i+1)*e.D]
		dst := e.dW.Data[base+id*e.D : base+(id+1)*e.D]
		for j := range src {
			dst[j] += src[j]
		}
	}
	e.dx = tensor.Ensure(e.dx, grad.Shape[0], e.t)
	e.dx.Zero()
	return e.dx
}

// Params returns {W} slab.
func (e *BatchedEmbedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.W} }

// Grads returns {dW} slab.
func (e *BatchedEmbedding) Grads() []*tensor.Tensor { return []*tensor.Tensor{e.dW} }

// BatchedNet is G independent copies of one architecture fused into a
// single network over group-major parameter slabs. Group g's block of
// every slab is laid out exactly like the corresponding solo tensor, so
// LoadClient/StoreClient shuttle solo flat parameter vectors in and out
// without any reordering.
type BatchedNet struct {
	G   int
	Seq *Sequential
}

// NewBatched mirrors proto's architecture as a BatchedNet with g
// parameter groups (all zero-initialised — callers LoadClient real
// weights before use). Stateless layers are recreated as-is: they act
// per sample, so a fused batch already keeps groups independent. Layers
// whose fused semantics would differ from solo runs (Dropout consumes
// RNG draws across the whole batch; Residual may nest anything) are
// rejected, and callers fall back to solo training.
func NewBatched(proto *Sequential, g int) (*BatchedNet, error) {
	if g <= 0 {
		return nil, fmt.Errorf("nn: NewBatched: fanout %d must be positive", g)
	}
	layers := make([]Layer, 0, len(proto.Layers))
	for _, raw := range proto.Layers {
		switch l := raw.(type) {
		case *Linear:
			layers = append(layers, newBatchedLinear(g, l.In, l.Out))
		case *Conv2D:
			layers = append(layers, &BatchedConv2D{
				G: g, Geom: l.Geom, OutC: l.OutC,
				W:  tensor.Zeros(g, l.OutC, l.Geom.InC*l.Geom.KH*l.Geom.KW),
				B:  tensor.Zeros(g, l.OutC),
				dW: tensor.Zeros(g, l.OutC, l.Geom.InC*l.Geom.KH*l.Geom.KW),
				dB: tensor.Zeros(g, l.OutC),
			})
		case *LSTM:
			layers = append(layers, newBatchedLSTM(g, l.T, l.D, l.H))
		case *Embedding:
			layers = append(layers, newBatchedEmbedding(g, l.Vocab, l.D))
		case *ReLU:
			layers = append(layers, NewReLU())
		case *Tanh:
			layers = append(layers, NewTanh())
		case *Sigmoid:
			layers = append(layers, NewSigmoid())
		case *MaxPool2D:
			layers = append(layers, NewMaxPool2D(l.C, l.H, l.W, l.K))
		case *GlobalAvgPool:
			layers = append(layers, NewGlobalAvgPool(l.C, l.H, l.W))
		default:
			return nil, fmt.Errorf("nn: NewBatched: unsupported layer %T", raw)
		}
	}
	return &BatchedNet{G: g, Seq: NewSequential(layers...)}, nil
}

// Forward runs the fused batch through every layer.
func (bn *BatchedNet) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return bn.Seq.Forward(x, train)
}

// Backward propagates the fused gradient.
func (bn *BatchedNet) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return bn.Seq.Backward(grad)
}

// Params returns the parameter slabs in layer order.
func (bn *BatchedNet) Params() []*tensor.Tensor { return bn.Seq.Params() }

// Grads returns the gradient slabs aligned with Params.
func (bn *BatchedNet) Grads() []*tensor.Tensor { return bn.Seq.Grads() }

// ZeroGrads clears every gradient slab.
func (bn *BatchedNet) ZeroGrads() { bn.Seq.ZeroGrads() }

// ClientParams returns the per-client scalar parameter count.
func (bn *BatchedNet) ClientParams() int { return bn.Seq.NumParams() / bn.G }

// LoadClient copies a solo flat parameter vector into group g's slab
// blocks. It walks Params() in layer order — the same order
// FlattenParams uses — so vec's layout is exactly a solo model's.
func (bn *BatchedNet) LoadClient(g int, vec []float64) {
	if g < 0 || g >= bn.G {
		panic(fmt.Sprintf("nn: BatchedNet.LoadClient: group %d of %d", g, bn.G))
	}
	if len(vec) != bn.ClientParams() {
		panic(fmt.Sprintf("nn: BatchedNet.LoadClient: vector has %d elements, client model wants %d", len(vec), bn.ClientParams()))
	}
	off := 0
	for _, p := range bn.Seq.Params() {
		s := p.Len() / bn.G
		copy(p.Data[g*s:(g+1)*s], vec[off:off+s])
		off += s
	}
}

// StoreClient copies group g's parameter blocks out into a solo flat
// parameter vector, the inverse of LoadClient.
func (bn *BatchedNet) StoreClient(g int, out []float64) {
	if g < 0 || g >= bn.G {
		panic(fmt.Sprintf("nn: BatchedNet.StoreClient: group %d of %d", g, bn.G))
	}
	if len(out) != bn.ClientParams() {
		panic(fmt.Sprintf("nn: BatchedNet.StoreClient: vector has %d elements, client model has %d", len(out), bn.ClientParams()))
	}
	off := 0
	for _, p := range bn.Seq.Params() {
		s := p.Len() / bn.G
		copy(out[off:off+s], p.Data[g*s:(g+1)*s])
		off += s
	}
}
