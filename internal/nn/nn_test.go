package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fedcross/internal/tensor"
)

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over C classes => loss = ln C.
	logits := tensor.Zeros(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero.
	for b := 0; b < 2; b++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += grad.At(b, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", b, s)
		}
	}
}

func TestSoftmaxCrossEntropyConfident(t *testing.T) {
	logits := tensor.New([]float64{10, -10, -10}, 1, 3)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	lossWrong, _ := SoftmaxCrossEntropy(logits, []int{1})
	if lossWrong < 10 {
		t.Fatalf("confident wrong prediction should have large loss, got %v", lossWrong)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		b, c := 1+rng.Intn(4), 2+rng.Intn(5)
		p := Softmax(rng.Randn(3, b, c))
		for i := 0; i < b; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax(tensor.New([]float64{1000, 1000, -1000}, 1, 3))
	if p.HasNaN() {
		t.Fatal("softmax overflowed")
	}
	if math.Abs(p.Data[0]-0.5) > 1e-9 {
		t.Fatalf("p[0] = %v, want 0.5", p.Data[0])
	}
}

func TestKLToTeacher(t *testing.T) {
	teacher := tensor.New([]float64{0.7, 0.2, 0.1}, 1, 3)
	logits := tensor.New([]float64{math.Log(0.7), math.Log(0.2), math.Log(0.1)}, 1, 3)
	loss, grad := KLToTeacher(teacher, logits)
	if math.Abs(loss) > 1e-9 {
		t.Fatalf("KL to self should be 0, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.Abs(g) > 1e-9 {
			t.Fatalf("gradient at optimum should be 0, got %v", grad.Data)
		}
	}
	// KL to a different distribution is positive.
	other := tensor.New([]float64{0, 0, 0}, 1, 3)
	loss2, _ := KLToTeacher(teacher, other)
	if loss2 <= 0 {
		t.Fatalf("KL should be positive, got %v", loss2)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.New([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 3,
	}, 3, 3)
	if got := Accuracy(logits, []int{0, 1, 2}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 1, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 1/3", got)
	}
	if got := Accuracy(tensor.Zeros(0, 3), nil); got != 0 {
		t.Fatalf("Accuracy on empty batch = %v", got)
	}
}

// TestAccuracyNaNLogitsCountAsWrong is the regression test for the
// NaN-blind argmax: a NaN in position 0 used to win the row (`v > bestV`
// is false for NaN), so garbage predictions were silently scored as
// class 0. NaN logits must lose deterministically, and an all-NaN row
// must count as an incorrect prediction for every label.
func TestAccuracyNaNLogitsCountAsWrong(t *testing.T) {
	nan := math.NaN()
	logits := tensor.New([]float64{
		nan, 1, 2, // valid argmax 2 despite leading NaN
		nan, nan, nan, // garbage row: no valid prediction
		3, nan, 1, // valid argmax 0 despite inner NaN
	}, 3, 3)
	if got := Accuracy(logits, []int{2, 0, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 2/3 (all-NaN row must score wrong)", got)
	}
	// Before the fix the first row scored label 0 and the garbage row
	// scored label 0; pin that neither happens.
	if got := Accuracy(logits, []int{0, 0, 1}); got != 0 {
		t.Fatalf("Accuracy = %v, want 0 (NaN rows must never score class 0)", got)
	}
}

func TestSGDReducesLossOnConvexProblem(t *testing.T) {
	rng := tensor.NewRNG(20)
	net := NewSequential(NewLinear(3, 2, rng))
	opt := NewSGD(0.1, 0.5)
	x := rng.Randn(1, 16, 3)
	labels := make([]int, 16)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	first := lossOf(net, x, labels)
	for step := 0; step < 200; step++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	last := lossOf(net, x, labels)
	if last >= first*0.5 {
		t.Fatalf("SGD did not reduce loss: %v -> %v", first, last)
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	rng := tensor.NewRNG(21)
	net := NewSequential(NewLinear(4, 4, rng))
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	before := FlattenParams(net.Params()).Norm()
	// Zero gradient steps: only decay acts.
	net.ZeroGrads()
	for i := 0; i < 10; i++ {
		opt.Step(net.Params(), net.Grads())
	}
	after := FlattenParams(net.Params()).Norm()
	if after >= before {
		t.Fatalf("weight decay should shrink norm: %v -> %v", before, after)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(22)
	d := NewDropout(0.5, rng)
	x := tensor.Full(1, 1, 1000)
	yTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout p=0.5 zeroed %d of 1000", zeros)
	}
	// Survivors are scaled by 2.
	for _, v := range yTrain.Data {
		if v != 0 && math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor not rescaled: %v", v)
		}
	}
	yEval := d.Forward(x, false)
	for i, v := range yEval.Data {
		if v != x.Data[i] {
			t.Fatal("eval mode must be identity")
		}
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := tensor.NewRNG(23)
	d := NewDropout(0.5, rng)
	x := tensor.Full(1, 1, 100)
	y := d.Forward(x, true)
	g := d.Backward(tensor.Full(1, 1, 100))
	for i := range y.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask must match forward mask")
		}
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		net := NewSequential(NewLinear(3, 4, rng), NewLinear(4, 2, rng))
		orig := FlattenParams(net.Params())
		perturbed := orig.Clone()
		for i := range perturbed {
			perturbed[i] += 1
		}
		if err := LoadParams(net.Params(), perturbed); err != nil {
			return false
		}
		back := FlattenParams(net.Params())
		for i := range back {
			if back[i] != perturbed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadParamsSizeMismatch(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewSequential(NewLinear(3, 3, rng))
	if err := LoadParams(net.Params(), make(ParamVector, 5)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestParamVectorAlgebra(t *testing.T) {
	v := ParamVector{1, 2, 3}
	w := ParamVector{4, 5, 6}
	if got := v.Add(w); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.DistanceSq(w); got != 27 {
		t.Fatalf("DistanceSq = %v", got)
	}
	u := v.Clone()
	u.AXPY(2, w)
	if u[0] != 9 {
		t.Fatalf("AXPY = %v", u)
	}
	if v[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	v := ParamVector{0, 0}
	w := ParamVector{2, 4}
	if got := v.Lerp(w, 1); got[0] != 0 || got[1] != 0 {
		t.Fatalf("Lerp(1) = %v, want v", got)
	}
	if got := v.Lerp(w, 0); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Lerp(0) = %v, want w", got)
	}
	if got := v.Lerp(w, 0.75); got[0] != 0.5 || got[1] != 1 {
		t.Fatalf("Lerp(0.75) = %v", got)
	}
}

func TestMeanVectors(t *testing.T) {
	vs := []ParamVector{{1, 2}, {3, 4}, {5, 6}}
	m := MeanVectors(vs)
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("MeanVectors = %v", m)
	}
}

func TestWeightedMeanVectors(t *testing.T) {
	vs := []ParamVector{{0, 0}, {10, 10}}
	m := WeightedMeanVectors(vs, []float64{1, 3})
	if m[0] != 7.5 {
		t.Fatalf("WeightedMeanVectors = %v", m)
	}
	// Zero weights fall back to uniform.
	m2 := WeightedMeanVectors(vs, []float64{0, 0})
	if m2[0] != 5 {
		t.Fatalf("zero-weight fallback = %v", m2)
	}
}

func TestMeanVectorsProperty(t *testing.T) {
	// Mean of K copies of v is v.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(10)
		k := 1 + rng.Intn(5)
		v := make(ParamVector, n)
		for i := range v {
			v[i] = rng.Normal(0, 1)
		}
		vs := make([]ParamVector, k)
		for i := range vs {
			vs[i] = v
		}
		m := MeanVectors(vs)
		for i := range m {
			if math.Abs(m[i]-v[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialNesting(t *testing.T) {
	rng := tensor.NewRNG(30)
	inner := NewSequential(NewLinear(4, 4, rng), NewReLU())
	outer := NewSequential(inner, NewLinear(4, 2, rng))
	if got := len(outer.Params()); got != 4 {
		t.Fatalf("nested params = %d, want 4", got)
	}
	x := rng.Randn(1, 2, 4)
	y := outer.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 2 {
		t.Fatalf("output shape %v", y.Shape)
	}
	if outer.NumParams() != 4*4+4+4*2+2 {
		t.Fatalf("NumParams = %d", outer.NumParams())
	}
}

func TestZeroGrads(t *testing.T) {
	rng := tensor.NewRNG(31)
	net := NewSequential(NewLinear(3, 2, rng))
	x := rng.Randn(1, 2, 3)
	logits := net.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, []int{0, 1})
	net.Backward(g)
	nonzero := false
	for _, gr := range net.Grads() {
		if gr.MaxAbs() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected nonzero grads after backward")
	}
	net.ZeroGrads()
	for _, gr := range net.Grads() {
		if gr.MaxAbs() != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestLSTMShapeAndDeterminism(t *testing.T) {
	rng := tensor.NewRNG(32)
	l := NewLSTM(3, 2, 4, rng)
	x := rng.Randn(1, 5, 6)
	y1 := l.Forward(x, false)
	y2 := l.Forward(x, false)
	if y1.Shape[0] != 5 || y1.Shape[1] != 4 {
		t.Fatalf("LSTM output shape %v", y1.Shape)
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("LSTM forward must be deterministic")
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := tensor.NewRNG(33)
	e := NewEmbedding(5, 3, rng)
	x := tensor.New([]float64{2, 4}, 1, 2)
	y := e.Forward(x, false)
	for j := 0; j < 3; j++ {
		if y.Data[j] != e.W.At(2, j) {
			t.Fatal("embedding lookup row 2 mismatch")
		}
		if y.Data[3+j] != e.W.At(4, j) {
			t.Fatal("embedding lookup row 4 mismatch")
		}
	}
}

func TestEmbeddingOutOfVocabPanics(t *testing.T) {
	rng := tensor.NewRNG(34)
	e := NewEmbedding(5, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-vocab id")
		}
	}()
	e.Forward(tensor.New([]float64{7}, 1, 1), false)
}
