package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"fedcross/internal/tensor"
)

// Binary state primitives for round-granular checkpoints. Every reader
// treats its stream as hostile: lengths are validated against hard caps
// before any allocation, and payloads are consumed in bounded chunks so a
// truncated or lying stream fails having allocated at most one chunk
// beyond the bytes actually present — the same hardening discipline as
// the codec headers and core's middleware checkpoint.

const (
	// maxStateVectorLen caps a serialized parameter vector's length.
	maxStateVectorLen = 1 << 27
	// maxStateEntries caps map/slice entry counts (client ids, tensors).
	maxStateEntries = 1 << 22
	// maxStateStringLen caps serialized string lengths.
	maxStateStringLen = 1 << 12
	// stateChunkBytes bounds read granularity for large payloads.
	stateChunkBytes = 1 << 20
)

// WriteU64 writes one little-endian uint64.
func WriteU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// ReadU64 reads one little-endian uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteI64 writes one little-endian int64.
func WriteI64(w io.Writer, v int64) error { return WriteU64(w, uint64(v)) }

// ReadI64 reads one little-endian int64.
func ReadI64(r io.Reader) (int64, error) {
	v, err := ReadU64(r)
	return int64(v), err
}

// WriteF64 writes one float64 as its IEEE-754 bits.
func WriteF64(w io.Writer, v float64) error { return WriteU64(w, math.Float64bits(v)) }

// ReadF64 reads one float64 from its IEEE-754 bits.
func ReadF64(r io.Reader) (float64, error) {
	bits, err := ReadU64(r)
	return math.Float64frombits(bits), err
}

// WriteString writes a length-prefixed string.
func WriteString(w io.Writer, s string) error {
	if len(s) > maxStateStringLen {
		return fmt.Errorf("nn: state string %d bytes exceeds cap %d", len(s), maxStateStringLen)
	}
	if err := WriteU64(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	n, err := ReadU64(r)
	if err != nil {
		return "", err
	}
	if n > maxStateStringLen {
		return "", fmt.Errorf("nn: state string length %d exceeds cap %d", n, maxStateStringLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteVector writes a length-prefixed parameter vector. A nil vector is
// preserved as distinct from an empty one (presence flag), so optional
// state round-trips faithfully.
func WriteVector(w io.Writer, v ParamVector) error {
	if v == nil {
		return WriteU64(w, 0)
	}
	if len(v) > maxStateVectorLen {
		return fmt.Errorf("nn: state vector %d params exceeds cap %d", len(v), maxStateVectorLen)
	}
	if err := WriteU64(w, uint64(len(v))+1); err != nil {
		return err
	}
	buf := make([]byte, min(8*len(v), stateChunkBytes))
	for off := 0; off < len(v); {
		chunk := len(v) - off
		if chunk > len(buf)/8 {
			chunk = len(buf) / 8
		}
		for j := 0; j < chunk; j++ {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v[off+j]))
		}
		if _, err := w.Write(buf[:8*chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// ReadVector reads a vector written by WriteVector, allocating in bounded
// chunks as bytes actually arrive.
func ReadVector(r io.Reader) (ParamVector, error) {
	raw, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	if raw == 0 {
		return nil, nil
	}
	n := raw - 1
	if n > maxStateVectorLen {
		return nil, fmt.Errorf("nn: state vector length %d exceeds cap %d", n, maxStateVectorLen)
	}
	v := make(ParamVector, 0, min(int(n), stateChunkBytes/8))
	buf := make([]byte, min(8*int(n), stateChunkBytes))
	for uint64(len(v)) < n {
		want := 8 * (int(n) - len(v))
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, fmt.Errorf("nn: state vector: %w", err)
		}
		for off := 0; off < want; off += 8 {
			v = append(v, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		}
	}
	return v, nil
}

// WriteIntSlice writes a length-prefixed []int (as int64s).
func WriteIntSlice(w io.Writer, xs []int) error {
	if len(xs) > maxStateEntries {
		return fmt.Errorf("nn: state int slice %d entries exceeds cap %d", len(xs), maxStateEntries)
	}
	if err := WriteU64(w, uint64(len(xs))); err != nil {
		return err
	}
	for _, x := range xs {
		if err := WriteI64(w, int64(x)); err != nil {
			return err
		}
	}
	return nil
}

// ReadIntSlice reads a slice written by WriteIntSlice.
func ReadIntSlice(r io.Reader) ([]int, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	if n > maxStateEntries {
		return nil, fmt.Errorf("nn: state int slice length %d exceeds cap %d", n, maxStateEntries)
	}
	xs := make([]int, n)
	for i := range xs {
		v, err := ReadI64(r)
		if err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	return xs, nil
}

// WriteVectorMap writes a map[int]ParamVector with keys in ascending
// order, so identical maps serialize to identical bytes.
func WriteVectorMap(w io.Writer, m map[int]ParamVector) error {
	if len(m) > maxStateEntries {
		return fmt.Errorf("nn: state map %d entries exceeds cap %d", len(m), maxStateEntries)
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if err := WriteU64(w, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := WriteI64(w, int64(k)); err != nil {
			return err
		}
		if err := WriteVector(w, m[k]); err != nil {
			return err
		}
	}
	return nil
}

// ReadVectorMap reads a map written by WriteVectorMap.
func ReadVectorMap(r io.Reader) (map[int]ParamVector, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	if n > maxStateEntries {
		return nil, fmt.Errorf("nn: state map length %d exceeds cap %d", n, maxStateEntries)
	}
	m := make(map[int]ParamVector, n)
	for i := uint64(0); i < n; i++ {
		k, err := ReadI64(r)
		if err != nil {
			return nil, err
		}
		v, err := ReadVector(r)
		if err != nil {
			return nil, err
		}
		m[int(k)] = v
	}
	return m, nil
}

// WriteRNG writes a generator's (seed, position) snapshot.
func WriteRNG(w io.Writer, g *tensor.RNG) error {
	st := g.State()
	if err := WriteI64(w, st.Seed); err != nil {
		return err
	}
	return WriteU64(w, st.Pos)
}

// ReadRNG restores a generator written by WriteRNG.
func ReadRNG(r io.Reader) (*tensor.RNG, error) {
	seed, err := ReadI64(r)
	if err != nil {
		return nil, err
	}
	pos, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	return tensor.RestoreRNG(tensor.RNGState{Seed: seed, Pos: pos}), nil
}

// SaveState serializes the optimizer's momentum buffers (shape and data),
// so a checkpointed training loop resumes with bit-identical updates. A
// never-stepped optimizer writes an empty buffer list.
func (s *SGD) SaveState(w io.Writer) error {
	if len(s.velocity) > maxStateEntries {
		return fmt.Errorf("nn: SGD state %d tensors exceeds cap %d", len(s.velocity), maxStateEntries)
	}
	if err := WriteU64(w, uint64(len(s.velocity))); err != nil {
		return err
	}
	for _, v := range s.velocity {
		if err := WriteIntSlice(w, v.Shape); err != nil {
			return err
		}
		if err := WriteVector(w, v.Data); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores momentum buffers written by SaveState, replacing any
// current velocity state.
func (s *SGD) LoadState(r io.Reader) error {
	n, err := ReadU64(r)
	if err != nil {
		return err
	}
	if n > maxStateEntries {
		return fmt.Errorf("nn: SGD state length %d exceeds cap %d", n, maxStateEntries)
	}
	if n == 0 {
		s.velocity = nil
		return nil
	}
	vel := make([]*tensor.Tensor, n)
	for i := range vel {
		shape, err := ReadIntSlice(r)
		if err != nil {
			return err
		}
		data, err := ReadVector(r)
		if err != nil {
			return err
		}
		t := tensor.Zeros(shape...)
		if len(t.Data) != len(data) {
			return fmt.Errorf("nn: SGD state tensor %d: shape %v holds %d values, stream has %d", i, shape, len(t.Data), len(data))
		}
		copy(t.Data, data)
		vel[i] = t
	}
	s.velocity = vel
	return nil
}
