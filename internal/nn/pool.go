package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// MaxPool2D performs non-overlapping max pooling over CHW images carried in
// flattened activations. Kernel size equals stride (the common 2×2/2 case).
type MaxPool2D struct {
	C, H, W int // input geometry
	K       int // kernel = stride

	argmax  []int // flat input index chosen per output element, per batch
	batch   int
	out, dx *tensor.Tensor
}

// NewMaxPool2D constructs a pooling layer for C×H×W inputs with kernel k.
// H and W must be divisible by k.
func NewMaxPool2D(c, h, w, k int) *MaxPool2D {
	if k <= 0 || h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D: kernel %d must divide %dx%d", k, h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k}
}

// InFeatures returns the flattened input width.
func (p *MaxPool2D) InFeatures() int { return p.C * p.H * p.W }

// OutFeatures returns the flattened output width.
func (p *MaxPool2D) OutFeatures() int { return p.C * (p.H / p.K) * (p.W / p.K) }

// Forward takes the max over each k×k window.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("MaxPool2D", x, p.InFeatures())
	batch := x.Shape[0]
	p.batch = batch
	oh, ow := p.H/p.K, p.W/p.K
	outLen := p.C * oh * ow
	p.out = tensor.Ensure(p.out, batch, outLen)
	out := p.out
	if cap(p.argmax) < batch*outLen {
		p.argmax = make([]int, batch*outLen)
	}
	p.argmax = p.argmax[:batch*outLen]
	inLen := p.InFeatures()
	for b := 0; b < batch; b++ {
		src := x.Data[b*inLen : (b+1)*inLen]
		dst := out.Data[b*outLen : (b+1)*outLen]
		am := p.argmax[b*outLen : (b+1)*outLen]
		if p.K == 2 && tensor.MaxPool2x2(dst, am, src, p.W, oh, ow, p.C) {
			continue
		}
		for c := 0; c < p.C; c++ {
			obase := c * oh * ow
			ibase := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for dy := 0; dy < p.K; dy++ {
						for dx := 0; dx < p.K; dx++ {
							idx := ibase + (oy*p.K+dy)*p.W + (ox*p.K + dx)
							if src[idx] > best {
								best = src[idx]
								bestIdx = idx
							}
						}
					}
					o := obase + oy*ow + ox
					dst[o] = best
					am[o] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input element that won the max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("MaxPool2D.Backward", grad, p.OutFeatures())
	inLen := p.InFeatures()
	outLen := p.OutFeatures()
	p.dx = tensor.Ensure(p.dx, p.batch, inLen)
	dx := p.dx
	dx.Zero()
	for b := 0; b < p.batch; b++ {
		g := grad.Data[b*outLen : (b+1)*outLen]
		am := p.argmax[b*outLen : (b+1)*outLen]
		dst := dx.Data[b*inLen : (b+1)*inLen]
		for o, idx := range am {
			dst[idx] += g[o]
		}
	}
	return dx
}

// Params returns nil.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel's spatial plane, mapping
// (batch × C·H·W) to (batch × C). ResNet-style heads use it before the
// final Linear.
type GlobalAvgPool struct {
	C, H, W int
	batch   int
	out, dx *tensor.Tensor
}

// NewGlobalAvgPool constructs a global average pool for C×H×W inputs.
func NewGlobalAvgPool(c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, H: h, W: w}
}

// Forward averages over the spatial plane of each channel.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("GlobalAvgPool", x, p.C*p.H*p.W)
	batch := x.Shape[0]
	p.batch = batch
	plane := p.H * p.W
	p.out = tensor.Ensure(p.out, batch, p.C)
	out := p.out
	for b := 0; b < batch; b++ {
		src := x.Data[b*p.C*plane : (b+1)*p.C*plane]
		for c := 0; c < p.C; c++ {
			s := 0.0
			for _, v := range src[c*plane : (c+1)*plane] {
				s += v
			}
			out.Data[b*p.C+c] = s / float64(plane)
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("GlobalAvgPool.Backward", grad, p.C)
	plane := p.H * p.W
	inv := 1.0 / float64(plane)
	p.dx = tensor.Ensure(p.dx, p.batch, p.C*plane)
	dx := p.dx
	for b := 0; b < p.batch; b++ {
		for c := 0; c < p.C; c++ {
			g := grad.Data[b*p.C+c] * inv
			dst := dx.Data[b*p.C*plane+c*plane : b*p.C*plane+(c+1)*plane]
			for i := range dst {
				dst[i] = g
			}
		}
	}
	return dx
}

// Params returns nil.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }
