package nn

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"fedcross/internal/tensor"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range []string{"identity", "fp16", "int8", "topk", "topk:0.25"} {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		out = append(out, c)
	}
	return out
}

func randVec(rng *tensor.RNG, n int, scale float64) ParamVector {
	v := make(ParamVector, n)
	for i := range v {
		v[i] = rng.Normal(0, scale)
	}
	return v
}

// roundTrip encodes and decodes vec through c, checking the byte count
// against EncodedSize on the way.
func roundTrip(t *testing.T, c Codec, vec ParamVector) ParamVector {
	t.Helper()
	buf := c.Encode(nil, vec)
	if got, want := int64(len(buf)), c.EncodedSize(len(vec)); got != want {
		t.Fatalf("%s: Encode produced %d bytes, EncodedSize promises %d (n=%d)", c.Name(), got, want, len(vec))
	}
	dst := make(ParamVector, len(vec))
	consumed, err := c.Decode(dst, buf)
	if err != nil {
		t.Fatalf("%s: Decode: %v", c.Name(), err)
	}
	if consumed != len(buf) {
		t.Fatalf("%s: Decode consumed %d of %d bytes", c.Name(), consumed, len(buf))
	}
	return dst
}

// TestCodecByNameRoundTrips pins that every codec's Name() resolves back
// to an equivalent codec, and that bad spellings are rejected.
func TestCodecByNameRoundTrips(t *testing.T) {
	for _, c := range allCodecs(t) {
		back, err := CodecByName(c.Name())
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", c.Name(), err)
		}
		if back.Name() != c.Name() {
			t.Fatalf("name round-trip: %q -> %q", c.Name(), back.Name())
		}
	}
	for _, bad := range []string{"gzip", "topk:0", "topk:1.5", "topk:x", "int4"} {
		if _, err := CodecByName(bad); err == nil {
			t.Fatalf("CodecByName(%q) succeeded, want error", bad)
		}
	}
}

// TestCodecZeroLength pins the empty-vector path: every codec must
// round-trip a zero-length vector through a header-only payload.
func TestCodecZeroLength(t *testing.T) {
	for _, c := range allCodecs(t) {
		dst := roundTrip(t, c, ParamVector{})
		if len(dst) != 0 {
			t.Fatalf("%s: decoded %d elements from empty vector", c.Name(), len(dst))
		}
	}
}

// TestIdentityCodecBitExact pins the lossless contract on a hostile
// vector: NaN (payload bits included), ±Inf, subnormals, negative zero.
func TestIdentityCodecBitExact(t *testing.T) {
	vec := ParamVector{
		0, math.Copysign(0, -1), 1.5, -2.75, math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
	dst := roundTrip(t, IdentityCodec{}, vec)
	for i := range vec {
		if math.Float64bits(dst[i]) != math.Float64bits(vec[i]) {
			t.Fatalf("identity: element %d: %x -> %x", i, math.Float64bits(vec[i]), math.Float64bits(dst[i]))
		}
	}
	if !(IdentityCodec{}).Lossless() {
		t.Fatal("identity codec must report Lossless")
	}
}

// TestFP16CodecErrorBound pins the half-precision contract: relative
// error ≤ 2⁻¹¹ in the normal half range, Inf/NaN preserved, overflow to
// ±Inf, and exact round-trips for exactly-representable values.
func TestFP16CodecErrorBound(t *testing.T) {
	rng := tensor.NewRNG(7)
	vec := randVec(rng, 4096, 1.0)
	dst := roundTrip(t, FP16Codec{}, vec)
	for i, v := range vec {
		rel := math.Abs(dst[i]-v) / math.Abs(v)
		if rel > 1.0/2048 {
			t.Fatalf("fp16: element %d: %v -> %v, rel error %v > 2^-11", i, v, dst[i], rel)
		}
	}

	specials := ParamVector{math.NaN(), math.Inf(1), math.Inf(-1), 1e10, -1e10, 65504, 0.25, -1, 0, 2.9802322387695312e-08 /* 2^-25, ties to zero */}
	got := roundTrip(t, FP16Codec{}, specials)
	switch {
	case !math.IsNaN(got[0]):
		t.Fatalf("fp16: NaN -> %v", got[0])
	case !math.IsInf(got[1], 1) || !math.IsInf(got[2], -1):
		t.Fatalf("fp16: Inf -> %v, %v", got[1], got[2])
	case !math.IsInf(got[3], 1) || !math.IsInf(got[4], -1):
		t.Fatalf("fp16: overflow -> %v, %v (want ±Inf)", got[3], got[4])
	case got[5] != 65504:
		t.Fatalf("fp16: max finite half 65504 -> %v", got[5])
	case got[6] != 0.25 || got[7] != -1 || got[8] != 0:
		t.Fatalf("fp16: exact values drifted: %v", got[6:9])
	case got[9] != 0:
		t.Fatalf("fp16: 2^-25 -> %v, want 0 (round to even)", got[9])
	}
}

// TestInt8CodecErrorBound pins the affine quantization contract: every
// finite value decodes within (max−min)/510 of itself, non-finite inputs
// clamp onto the finite grid, and an all-equal vector (scale 0) is exact.
func TestInt8CodecErrorBound(t *testing.T) {
	rng := tensor.NewRNG(11)
	vec := randVec(rng, 4096, 3.0)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vec {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	bound := (hi - lo) / 510 * (1 + 1e-12)
	dst := roundTrip(t, Int8Codec{}, vec)
	for i, v := range vec {
		if math.Abs(dst[i]-v) > bound {
			t.Fatalf("int8: element %d: %v -> %v, error %v > %v", i, v, dst[i], math.Abs(dst[i]-v), bound)
		}
	}

	// Range endpoints land on grid points: exact up to the one float64
	// rounding in lo + 255·((hi−lo)/255).
	ulps := func(a, b float64) float64 {
		return math.Abs(a-b) / (math.Nextafter(math.Abs(b), math.Inf(1)) - math.Abs(b))
	}
	if got := roundTrip(t, Int8Codec{}, ParamVector{lo, hi, (lo + hi) / 2}); got[0] != lo || ulps(got[1], hi) > 4 {
		t.Fatalf("int8: endpoints drifted: %v -> %v, %v -> %v", lo, got[0], hi, got[1])
	}

	// Non-finite inputs clamp onto the finite range; the wire is finite.
	specials := ParamVector{math.Inf(1), math.Inf(-1), math.NaN(), -2, 2}
	got := roundTrip(t, Int8Codec{}, specials)
	switch {
	case ulps(got[0], 2) > 4:
		t.Fatalf("int8: +Inf -> %v, want max 2", got[0])
	case got[1] != -2:
		t.Fatalf("int8: -Inf -> %v, want min -2", got[1])
	case got[2] != -2:
		t.Fatalf("int8: NaN -> %v, want min -2", got[2])
	}
}

// TestInt8CodecDegenerate pins the scale=0 edge cases: all-equal vectors
// round-trip exactly, and an all-non-finite vector decodes to zeros.
func TestInt8CodecDegenerate(t *testing.T) {
	allEqual := ParamVector{1.25, 1.25, 1.25, 1.25}
	got := roundTrip(t, Int8Codec{}, allEqual)
	for i, v := range got {
		if v != 1.25 {
			t.Fatalf("int8 all-equal: element %d: %v", i, v)
		}
	}
	noFinite := ParamVector{math.NaN(), math.Inf(1), math.Inf(-1)}
	got = roundTrip(t, Int8Codec{}, noFinite)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("int8 no-finite: element %d: %v, want 0", i, v)
		}
	}
}

// TestTopKCodecSelection pins sparsification: exactly ⌈frac·n⌉ entries
// survive, they are the largest magnitudes with ties broken toward lower
// indices, kept values carry at most float32 rounding error, dropped
// entries decode to zero, and a NaN coordinate is always shipped.
func TestTopKCodecSelection(t *testing.T) {
	c := TopKCodec{Frac: 0.25}
	vec := ParamVector{0.1, -5, 0.2, 3, -0.3, 0.5, 4, -0.05} // n=8 -> keep 2: -5 and 4
	got := roundTrip(t, c, vec)
	want := ParamVector{0, -5, 0, 0, 0, 0, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk: element %d: %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}

	// Ties: all-equal magnitudes keep the lowest indices.
	ties := ParamVector{1, -1, 1, -1}
	got = roundTrip(t, TopKCodec{Frac: 0.5}, ties)
	if got[0] != 1 || got[1] != -1 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("topk ties: %v, want [1 -1 0 0]", got)
	}

	// NaN sorts above everything: it must be shipped, not dropped.
	poisoned := ParamVector{1, math.NaN(), 2, 3}
	got = roundTrip(t, TopKCodec{Frac: 0.25}, poisoned)
	if !math.IsNaN(got[1]) {
		t.Fatalf("topk: NaN coordinate dropped: %v", got)
	}

	// Kept values are float32-rounded, nothing worse.
	rng := tensor.NewRNG(3)
	dense := randVec(rng, 1000, 1.0)
	got = roundTrip(t, TopKCodec{Frac: 0.1}, dense)
	kept := 0
	for i, v := range got {
		if v == 0 {
			continue
		}
		kept++
		if v != float64(float32(dense[i])) {
			t.Fatalf("topk: kept element %d: %v, want float32(%v)", i, v, dense[i])
		}
	}
	if kept != 100 {
		t.Fatalf("topk: kept %d of 1000, want 100", kept)
	}
}

// TestCodecDecodeRejectsGarbage pins the defensive paths: wrong
// destination length, truncated bodies, and out-of-range topk indices
// must error, never panic or write out of bounds.
func TestCodecDecodeRejectsGarbage(t *testing.T) {
	rng := tensor.NewRNG(5)
	vec := randVec(rng, 64, 1.0)
	for _, c := range allCodecs(t) {
		buf := c.Encode(nil, vec)
		if _, err := c.Decode(make(ParamVector, 63), buf); err == nil {
			t.Fatalf("%s: decode into short destination succeeded", c.Name())
		}
		if _, err := c.Decode(make(ParamVector, 64), buf[:len(buf)-1]); err == nil {
			t.Fatalf("%s: decode of truncated body succeeded", c.Name())
		}
		if _, err := c.Decode(make(ParamVector, 64), buf[:2]); err == nil {
			t.Fatalf("%s: decode of truncated header succeeded", c.Name())
		}
	}
}

// TestFloat16KernelExhaustive round-trips every representable half value
// through the tensor conversion kernels: expand to float64, re-encode,
// and require the identical bit pattern (NaN excepted — any NaN encoding
// is acceptable as long as it stays NaN).
func TestFloat16KernelExhaustive(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		b := uint16(bits)
		v := tensor.Float16From(b)
		back := tensor.Float16Bits(v)
		if math.IsNaN(v) {
			if back&0x7c00 != 0x7c00 || back&0x03ff == 0 {
				t.Fatalf("bits %#04x: NaN re-encoded as %#04x (not NaN)", b, back)
			}
			continue
		}
		if back != b {
			t.Fatalf("bits %#04x -> %v -> %#04x", b, v, back)
		}
	}
}

// TestSelectNthMatchesSort pins the quickselect threshold against the
// full sort it replaced, across the shapes that break naive pivoting:
// random, sorted both ways, all-equal, two-valued plateaus (the shape
// delta-encoded payloads produce), and single elements.
func TestSelectNthMatchesSort(t *testing.T) {
	rng := tensor.NewRNG(11)
	shapes := map[string]func(n int) []float64{
		"random": func(n int) []float64 { return randVec(rng, n, 1) },
		"sorted": func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(i)
			}
			return v
		},
		"reversed": func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(n - i)
			}
			return v
		},
		"all-equal": func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = 7
			}
			return v
		},
		"plateau": func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				if rng.Float64() < 0.9 {
					v[i] = 0 // zero residuals under delta encoding
				} else {
					v[i] = rng.Normal(0, 1)
				}
			}
			return v
		},
		"infs": func(n int) []float64 {
			v := randVec(rng, n, 1)
			v[0] = math.Inf(1) // topkMag(NaN)
			v[n/2] = math.Inf(1)
			return v
		},
	}
	for name, mk := range shapes {
		for _, n := range []int{1, 2, 3, 17, 1000} {
			v := mk(n)
			want := append([]float64(nil), v...)
			sort.Float64s(want)
			for _, nth := range []int{0, n / 3, n - 1} {
				got := selectNth(append([]float64(nil), v...), nth)
				if got != want[nth] {
					t.Fatalf("%s n=%d: selectNth(%d) = %v, want %v", name, n, nth, got, want[nth])
				}
			}
		}
	}
}

// TestTopKQuickselectMatchesSortContract re-derives the emitted set with
// the original sort-based threshold on a large random payload and checks
// the quickselect encoder ships exactly the same (index, value) pairs.
func TestTopKQuickselectMatchesSortContract(t *testing.T) {
	rng := tensor.NewRNG(12)
	vec := randVec(rng, 4096, 1)
	// Inject magnitude ties so the tie-break path is exercised at scale.
	for i := 0; i < 4096; i += 7 {
		vec[i] = 0.25
	}
	c := TopKCodec{Frac: 0.1}
	got := roundTrip(t, c, vec)

	mags := make([]float64, len(vec))
	for i, v := range vec {
		mags[i] = topkMag(v)
	}
	sort.Float64s(mags)
	thresh := mags[len(vec)-c.Keep(len(vec))]
	want := make(ParamVector, len(vec))
	left := c.Keep(len(vec))
	for i, v := range vec {
		if left > 0 && topkMag(v) > thresh {
			want[i] = float64(float32(v))
			left--
		}
	}
	for i, v := range vec {
		if left == 0 {
			break
		}
		if topkMag(v) == thresh {
			want[i] = float64(float32(v))
			left--
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: quickselect ships %v, sort contract %v", i, got[i], want[i])
		}
	}
}

// TestInt8RangeManyWorkers pins the chunk-combine fix: when the worker
// count exceeds the number of chunks actually dispatched (payload just
// past the parallel threshold, huge CodecWorkers), the undispatched
// combine slots must not contribute phantom zeros to the range.
func TestInt8RangeManyWorkers(t *testing.T) {
	defer func(w int) { CodecWorkers = w }(CodecWorkers)
	vec := make(ParamVector, minParallelCodec+1)
	for i := range vec {
		vec[i] = 5 + float64(i%7)/7 // all values in [5, 6): lo must be 5
	}
	CodecWorkers = 1
	wantLo, wantHi := int8Range(vec)
	for _, workers := range []int{2, 129, 192, 1024} {
		CodecWorkers = workers
		lo, hi := int8Range(vec)
		if lo != wantLo || hi != wantHi {
			t.Fatalf("workers=%d: range [%v, %v], serial [%v, %v]", workers, lo, hi, wantLo, wantHi)
		}
	}
}

// TestCodecParallelismInvariance pins the chunk-parallel kernels: encoded
// bytes and decoded vectors are byte-identical with the fan-out disabled
// and at a worker count that forces several chunks on a payload past the
// parallel threshold.
func TestCodecParallelismInvariance(t *testing.T) {
	defer func(w int) { CodecWorkers = w }(CodecWorkers)
	rng := tensor.NewRNG(13)
	vec := randVec(rng, minParallelCodec+513, 1)
	vec[1] = math.NaN()
	vec[2] = math.Inf(1)
	vec[3] = math.Inf(-1)
	for _, c := range allCodecs(t) {
		CodecWorkers = 1
		serialBuf := c.Encode(nil, vec)
		serialDst := make(ParamVector, len(vec))
		if _, err := c.Decode(serialDst, serialBuf); err != nil {
			t.Fatalf("%s serial decode: %v", c.Name(), err)
		}
		CodecWorkers = 8
		parBuf := c.Encode(nil, vec)
		parDst := make(ParamVector, len(vec))
		if _, err := c.Decode(parDst, parBuf); err != nil {
			t.Fatalf("%s parallel decode: %v", c.Name(), err)
		}
		if !bytes.Equal(serialBuf, parBuf) {
			t.Fatalf("%s: parallel encode differs from serial", c.Name())
		}
		for i := range serialDst {
			s, p := serialDst[i], parDst[i]
			if s != p && !(math.IsNaN(s) && math.IsNaN(p)) {
				t.Fatalf("%s: decoded element %d: parallel %v, serial %v", c.Name(), i, p, s)
			}
		}
	}
}
