package nn

import (
	"math"

	"fedcross/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW images carried in flattened
// (batch × C·H·W) activations. The spatial geometry is fixed at
// construction; the forward pass lowers the whole minibatch with a
// batched im2col into one fused (colRows × batch·spatial) workspace, so
// the convolution is a single matrix multiply per layer per step instead
// of one per sample — the kernels finally see matrices big enough to
// amortize their blocking.
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor // (OutC × InC*KH*KW)
	B      *tensor.Tensor // (OutC)
	dW, dB *tensor.Tensor

	// Reusable workspaces, refreshed per call via tensor.Ensure so
	// steady-state batches allocate nothing. cols is the fused im2col
	// workspace (colRows × batch·spatial) that backward consumes; y and dy
	// hold the channel-major (OutC × batch·spatial) activations/gradients
	// on either side of the sample-major (batch × OutC·spatial) layout the
	// surrounding layers exchange.
	cols, y, dy    *tensor.Tensor
	out, dx, dcols *tensor.Tensor
}

// NewConv2D constructs a convolution with the given geometry and output
// channel count, Kaiming-uniform initialised.
func NewConv2D(g tensor.ConvGeom, outC int, rng *tensor.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	fanIn := g.InC * g.KH * g.KW
	bound := math.Sqrt(6.0 / float64(fanIn))
	return &Conv2D{
		Geom: g, OutC: outC,
		W:  rng.Uniform(-bound, bound, outC, fanIn),
		B:  tensor.Zeros(outC),
		dW: tensor.Zeros(outC, fanIn),
		dB: tensor.Zeros(outC),
	}
}

// InFeatures returns the flattened input width the layer expects.
func (c *Conv2D) InFeatures() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutFeatures returns the flattened output width the layer produces.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward convolves the whole batch with one fused matmul. Per-element
// arithmetic (ascending-tap matmul chain, one bias add) matches the old
// per-sample lowering exactly, so activations are bit-identical.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Conv2D", x, c.InFeatures())
	batch := x.Shape[0]
	spatial := c.Geom.OutH() * c.Geom.OutW()
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	c.cols = tensor.Ensure(c.cols, colRows, batch*spatial)
	tensor.Im2ColBatchTo(c.cols, x, c.Geom)
	c.y = tensor.Ensure(c.y, c.OutC, batch*spatial)
	tensor.MatMulTo(c.y, c.W, c.cols) // every sample in one multiply
	c.out = tensor.Ensure(c.out, batch, c.OutC*spatial)
	// Channel-major → sample-major, fusing the bias add into the copy.
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.B.Data[oc]
		yrow := c.y.Data[oc*batch*spatial : (oc+1)*batch*spatial]
		for b := 0; b < batch; b++ {
			src := yrow[b*spatial : (b+1)*spatial]
			dst := c.out.Data[b*c.OutC*spatial+oc*spatial : b*c.OutC*spatial+(oc+1)*spatial]
			for j, v := range src {
				dst[j] = v + bias
			}
		}
	}
	return c.out
}

// Backward accumulates dW/dB and returns the input gradient, again as
// one fused multiply per gradient: dW via a segment-accumulating
// transposed-B kernel whose per-sample segments reproduce the old
// per-sample accumulate chain, dcols via one transposed-A multiply, and
// dx via the batched col2im scatter.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("Conv2D.Backward", grad, c.OutFeatures())
	batch := grad.Shape[0]
	spatial := c.Geom.OutH() * c.Geom.OutW()
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	inLen := c.InFeatures()
	// Gather the sample-major incoming gradient into channel-major dy so
	// its layout matches the fused cols workspace (pure copy, no FP ops).
	c.dy = tensor.Ensure(c.dy, c.OutC, batch*spatial)
	for oc := 0; oc < c.OutC; oc++ {
		dyRow := c.dy.Data[oc*batch*spatial : (oc+1)*batch*spatial]
		for b := 0; b < batch; b++ {
			src := grad.Data[b*c.OutC*spatial+oc*spatial : b*c.OutC*spatial+(oc+1)*spatial]
			copy(dyRow[b*spatial:(b+1)*spatial], src)
		}
	}
	// dW += dy · colsᵀ, folded one per-sample segment at a time — bit-equal
	// to the per-sample MatMulTransBAcc sequence it replaces.
	tensor.MatMulTransBSegAcc(c.dW, c.dy, c.cols, spatial)
	// dB += per-sample row sums of dy, samples ascending, serial within a
	// sample — the old scalar loop's exact chain.
	for oc := 0; oc < c.OutC; oc++ {
		dyRow := c.dy.Data[oc*batch*spatial : (oc+1)*batch*spatial]
		acc := c.dB.Data[oc]
		for b := 0; b < batch; b++ {
			s := 0.0
			for _, v := range dyRow[b*spatial : (b+1)*spatial] {
				s += v
			}
			acc += s
		}
		c.dB.Data[oc] = acc
	}
	// dcols = Wᵀ · dy for all samples at once; dx = col2im per sample.
	c.dcols = tensor.Ensure(c.dcols, colRows, batch*spatial)
	tensor.MatMulTransATo(c.dcols, c.W, c.dy)
	c.dx = tensor.Ensure(c.dx, batch, inLen)
	tensor.Col2ImBatchTo(c.dx, c.dcols, c.Geom)
	return c.dx
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }
