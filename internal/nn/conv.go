package nn

import (
	"math"

	"fedcross/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW images carried in flattened
// (batch × C·H·W) activations. The spatial geometry is fixed at
// construction; the forward pass lowers each sample with im2col so the
// convolution is a single matrix multiply per sample.
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor // (OutC × InC*KH*KW)
	B      *tensor.Tensor // (OutC)
	dW, dB *tensor.Tensor

	// Reusable workspaces, refreshed per call via tensor.Ensure so
	// steady-state batches allocate nothing. cols is the per-sample im2col
	// cache that backward consumes; the header tensors (imgHdr, gradHdr)
	// re-point their Data at batch rows instead of allocating views.
	cols            []*tensor.Tensor
	y, out, dx      *tensor.Tensor
	dcols           *tensor.Tensor
	imgHdr, gradHdr tensor.Tensor
}

// NewConv2D constructs a convolution with the given geometry and output
// channel count, Kaiming-uniform initialised.
func NewConv2D(g tensor.ConvGeom, outC int, rng *tensor.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	fanIn := g.InC * g.KH * g.KW
	bound := math.Sqrt(6.0 / float64(fanIn))
	return &Conv2D{
		Geom: g, OutC: outC,
		W:  rng.Uniform(-bound, bound, outC, fanIn),
		B:  tensor.Zeros(outC),
		dW: tensor.Zeros(outC, fanIn),
		dB: tensor.Zeros(outC),
	}
}

// InFeatures returns the flattened input width the layer expects.
func (c *Conv2D) InFeatures() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutFeatures returns the flattened output width the layer produces.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward applies the convolution to every sample in the batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Conv2D", x, c.InFeatures())
	batch := x.Shape[0]
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	spatial := oh * ow
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	c.out = tensor.Ensure(c.out, batch, c.OutC*spatial)
	c.y = tensor.Ensure(c.y, c.OutC, spatial)
	c.cols = ensureSteps(c.cols, batch, colRows, spatial)
	inLen := c.InFeatures()
	if c.imgHdr.Shape == nil {
		c.imgHdr.Shape = []int{c.Geom.InC, c.Geom.InH, c.Geom.InW}
	}
	for b := 0; b < batch; b++ {
		c.imgHdr.Data = x.Data[b*inLen : (b+1)*inLen]
		cols := tensor.Im2ColTo(c.cols[b], &c.imgHdr, c.Geom)
		tensor.MatMulTo(c.y, c.W, cols) // (OutC × spatial)
		dst := c.out.Data[b*c.OutC*spatial : (b+1)*c.OutC*spatial]
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Data[oc]
			row := c.y.Data[oc*spatial : (oc+1)*spatial]
			dstRow := dst[oc*spatial : (oc+1)*spatial]
			for j := range row {
				dstRow[j] = row[j] + bias
			}
		}
	}
	return c.out
}

// Backward accumulates dW/dB and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("Conv2D.Backward", grad, c.OutFeatures())
	batch := grad.Shape[0]
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	spatial := oh * ow
	colRows := c.Geom.InC * c.Geom.KH * c.Geom.KW
	inLen := c.InFeatures()
	c.dx = tensor.Ensure(c.dx, batch, inLen)
	c.dcols = tensor.Ensure(c.dcols, colRows, spatial)
	if c.gradHdr.Shape == nil {
		c.gradHdr.Shape = []int{c.OutC, spatial}
	}
	if c.imgHdr.Shape == nil {
		c.imgHdr.Shape = []int{c.Geom.InC, c.Geom.InH, c.Geom.InW}
	}
	for b := 0; b < batch; b++ {
		c.gradHdr.Data = grad.Data[b*c.OutC*spatial : (b+1)*c.OutC*spatial]
		g := &c.gradHdr
		// dW += g · colsᵀ
		tensor.MatMulTransBAcc(c.dW, g, c.cols[b])
		// dB += row sums of g
		for oc := 0; oc < c.OutC; oc++ {
			row := g.Data[oc*spatial : (oc+1)*spatial]
			s := 0.0
			for _, v := range row {
				s += v
			}
			c.dB.Data[oc] += s
		}
		// dcols = Wᵀ · g ; dx row = col2im(dcols), scattered in place.
		tensor.MatMulTransATo(c.dcols, c.W, g)
		c.imgHdr.Data = c.dx.Data[b*inLen : (b+1)*inLen]
		tensor.Col2ImTo(&c.imgHdr, c.dcols, c.Geom)
	}
	return c.dx
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }
