package nn

import (
	"math"

	"fedcross/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW images carried in flattened
// (batch × C·H·W) activations. The spatial geometry is fixed at
// construction; the forward pass lowers each sample with im2col so the
// convolution is a single matrix multiply per sample.
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor // (OutC × InC*KH*KW)
	B      *tensor.Tensor // (OutC)
	dW, dB *tensor.Tensor

	cols []*tensor.Tensor // cached im2col matrices per sample
}

// NewConv2D constructs a convolution with the given geometry and output
// channel count, Kaiming-uniform initialised.
func NewConv2D(g tensor.ConvGeom, outC int, rng *tensor.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	fanIn := g.InC * g.KH * g.KW
	bound := math.Sqrt(6.0 / float64(fanIn))
	return &Conv2D{
		Geom: g, OutC: outC,
		W:  rng.Uniform(-bound, bound, outC, fanIn),
		B:  tensor.Zeros(outC),
		dW: tensor.Zeros(outC, fanIn),
		dB: tensor.Zeros(outC),
	}
}

// InFeatures returns the flattened input width the layer expects.
func (c *Conv2D) InFeatures() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutFeatures returns the flattened output width the layer produces.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward applies the convolution to every sample in the batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Conv2D", x, c.InFeatures())
	batch := x.Shape[0]
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	spatial := oh * ow
	out := tensor.Zeros(batch, c.OutC*spatial)
	c.cols = c.cols[:0]
	inLen := c.InFeatures()
	for b := 0; b < batch; b++ {
		img := tensor.New(x.Data[b*inLen:(b+1)*inLen], c.Geom.InC, c.Geom.InH, c.Geom.InW)
		cols := tensor.Im2Col(img, c.Geom)
		c.cols = append(c.cols, cols)
		y := tensor.MatMul(c.W, cols) // (OutC × spatial)
		dst := out.Data[b*c.OutC*spatial : (b+1)*c.OutC*spatial]
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Data[oc]
			row := y.Data[oc*spatial : (oc+1)*spatial]
			dstRow := dst[oc*spatial : (oc+1)*spatial]
			for j := range row {
				dstRow[j] = row[j] + bias
			}
		}
	}
	return out
}

// Backward accumulates dW/dB and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("Conv2D.Backward", grad, c.OutFeatures())
	batch := grad.Shape[0]
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	spatial := oh * ow
	inLen := c.InFeatures()
	dx := tensor.Zeros(batch, inLen)
	for b := 0; b < batch; b++ {
		g := tensor.New(grad.Data[b*c.OutC*spatial:(b+1)*c.OutC*spatial], c.OutC, spatial)
		// dW += g · colsᵀ
		tensor.AddInPlace(c.dW, tensor.MatMulTransB(g, c.cols[b]))
		// dB += row sums of g
		for oc := 0; oc < c.OutC; oc++ {
			row := g.Data[oc*spatial : (oc+1)*spatial]
			s := 0.0
			for _, v := range row {
				s += v
			}
			c.dB.Data[oc] += s
		}
		// dcols = Wᵀ · g ; dx = col2im(dcols)
		dcols := tensor.MatMulTransA(c.W, g)
		dimg := tensor.Col2Im(dcols, c.Geom)
		copy(dx.Data[b*inLen:(b+1)*inLen], dimg.Data)
	}
	return dx
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }
