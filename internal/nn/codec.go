package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"slices"
	"strconv"
	"strings"

	"fedcross/internal/tensor"
)

// CodecWorkers is the number of goroutines one encode or decode of a
// large payload may fan out over (0 or 1 disables parallelism). Small
// payloads always run serially, so the per-exchange cost of the threshold
// check is a single comparison. Like tensor.MatMulWorkers, the fan-out is
// element-chunked with fixed boundaries per (length, workers), and every
// element's bytes are a pure function of its value — so encoded payloads
// and decoded vectors are bit-identical at every worker count.
var CodecWorkers = runtime.GOMAXPROCS(0)

// minParallelCodec is the element count below which an encode/decode pass
// is not worth fanning out.
const minParallelCodec = 1 << 14

// codecWorkers resolves the fan-out for an n-element pass.
func codecWorkers(n int) int {
	w := CodecWorkers
	if n < minParallelCodec || w < 1 {
		return 1
	}
	return w
}

// codecGrow extends buf by n bytes in place (contents unspecified) and
// returns the extension alongside the full slice — the destination the
// chunk-parallel kernels fill, since concurrent writers cannot append.
func codecGrow(buf []byte, n int) (ext, all []byte) {
	off := len(buf)
	buf = slices.Grow(buf, n)[:off+n]
	return buf[off:], buf
}

// A Codec turns a ParamVector into wire bytes and back — the compression
// layer of the simulated FL transport. All four built-in codecs emit a
// content-independent byte count for a given element count (EncodedSize),
// which is what lets the transport charge byte-accurate network costs and
// decide straggler deadlines without inspecting payloads.
//
// Encode appends to buf (pass buf[:0] to recycle a scratch buffer);
// Decode writes into a caller-owned destination. Neither retains its
// arguments, so both compose with the recycled-buffer discipline of the
// round engine (docs/ARCHITECTURE.md, "Buffer ownership").
type Codec interface {
	// Name is the flag-facing identifier ("identity", "fp16", "int8",
	// "topk:0.1"); CodecByName(Name()) reconstructs the codec.
	Name() string
	// Lossless reports whether Decode∘Encode is bit-exact for every input.
	// The transport uses it to skip the encode/decode copy entirely — the
	// identity wire is a zero-copy pass-through, preserving today's
	// histories and allocation profile exactly.
	Lossless() bool
	// EncodedSize returns the exact number of bytes Encode appends for an
	// n-element vector. It is content-independent for every built-in codec.
	EncodedSize(n int) int64
	// Encode appends vec's encoded form to buf and returns the extended
	// slice.
	Encode(buf []byte, vec ParamVector) []byte
	// Decode reconstructs an encoded vector into dst, whose length must
	// equal the encoded element count, and returns the bytes consumed.
	Decode(dst ParamVector, data []byte) (int, error)
}

// CodecByName resolves a codec from its flag spelling: "identity" (or
// ""), "fp16", "int8", "topk" (default keep fraction 0.1) or
// "topk:<frac>" with frac ∈ (0, 1].
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "identity":
		return IdentityCodec{}, nil
	case "fp16":
		return FP16Codec{}, nil
	case "int8":
		return Int8Codec{}, nil
	case "topk":
		return TopKCodec{Frac: 0.1}, nil
	}
	if rest, ok := strings.CutPrefix(name, "topk:"); ok {
		frac, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("nn: bad topk fraction %q: %w", rest, err)
		}
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("nn: topk fraction %v outside (0, 1]", frac)
		}
		return TopKCodec{Frac: frac}, nil
	}
	return nil, fmt.Errorf("nn: unknown codec %q (want identity, fp16, int8 or topk[:frac])", name)
}

// Every codec leads with a uint32 element count so a payload is
// self-describing (checkpoints can be stored wire-encoded) and Decode can
// reject a destination of the wrong length before touching the body.
const codecHeaderBytes = 4

func putCount(buf []byte, n int) []byte {
	var hdr [codecHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(n))
	return append(buf, hdr[:]...)
}

func checkCount(dst ParamVector, data []byte, codec string) error {
	if len(data) < codecHeaderBytes {
		return fmt.Errorf("nn: %s: truncated header (%d bytes)", codec, len(data))
	}
	if n := binary.LittleEndian.Uint32(data); int(n) != len(dst) {
		return fmt.Errorf("nn: %s: payload has %d elements, destination %d", codec, n, len(dst))
	}
	return nil
}

// IdentityCodec ships raw float64 bits: 8 bytes per parameter, bit-exact
// (NaN payloads included) — the lossless reference wire.
type IdentityCodec struct{}

// Name implements Codec.
func (IdentityCodec) Name() string { return "identity" }

// Lossless implements Codec.
func (IdentityCodec) Lossless() bool { return true }

// EncodedSize implements Codec.
func (IdentityCodec) EncodedSize(n int) int64 { return codecHeaderBytes + 8*int64(n) }

// Encode implements Codec.
func (IdentityCodec) Encode(buf []byte, vec ParamVector) []byte {
	buf = putCount(buf, len(vec))
	var w [8]byte
	for _, v := range vec {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		buf = append(buf, w[:]...)
	}
	return buf
}

// Decode implements Codec.
func (c IdentityCodec) Decode(dst ParamVector, data []byte) (int, error) {
	if err := checkCount(dst, data, "identity"); err != nil {
		return 0, err
	}
	want := int(c.EncodedSize(len(dst)))
	if len(data) < want {
		return 0, fmt.Errorf("nn: identity: body truncated (%d of %d bytes)", len(data), want)
	}
	body := data[codecHeaderBytes:]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return want, nil
}

// FP16Codec ships IEEE binary16: 2 bytes per parameter, ≤ 2⁻¹¹ relative
// rounding error in the normal half range, ±Inf beyond it, Inf/NaN
// preserved.
type FP16Codec struct{}

// Name implements Codec.
func (FP16Codec) Name() string { return "fp16" }

// Lossless implements Codec.
func (FP16Codec) Lossless() bool { return false }

// EncodedSize implements Codec.
func (FP16Codec) EncodedSize(n int) int64 { return codecHeaderBytes + 2*int64(n) }

// Encode implements Codec.
func (FP16Codec) Encode(buf []byte, vec ParamVector) []byte {
	buf = putCount(buf, len(vec))
	body, buf := codecGrow(buf, 2*len(vec))
	tensor.ParallelChunks(len(vec), codecWorkers(len(vec)), func(_, i0, i1 int) {
		tensor.Float16EncodeSlice(body[2*i0:], vec[i0:i1])
	})
	return buf
}

// Decode implements Codec.
func (c FP16Codec) Decode(dst ParamVector, data []byte) (int, error) {
	if err := checkCount(dst, data, "fp16"); err != nil {
		return 0, err
	}
	want := int(c.EncodedSize(len(dst)))
	if len(data) < want {
		return 0, fmt.Errorf("nn: fp16: body truncated (%d of %d bytes)", len(data), want)
	}
	body := data[codecHeaderBytes:]
	tensor.ParallelChunks(len(dst), codecWorkers(len(dst)), func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			dst[i] = tensor.Float16From(binary.LittleEndian.Uint16(body[2*i:]))
		}
	})
	return want, nil
}

// Int8Codec ships per-tensor affine quantization: the finite value range
// [min, max] is mapped onto the 256 grid points min + q·(max−min)/255, so
// each finite parameter decodes within (max−min)/510 of its value — one
// byte per parameter plus a 16-byte affine header. Non-finite inputs are
// clamped onto the finite grid (+Inf → max, −Inf and NaN → min): the
// decoded wire is finite by construction. An all-equal vector has scale
// 0 and round-trips exactly (every point decodes to min).
type Int8Codec struct{}

// Name implements Codec.
func (Int8Codec) Name() string { return "int8" }

// Lossless implements Codec.
func (Int8Codec) Lossless() bool { return false }

// EncodedSize implements Codec.
func (Int8Codec) EncodedSize(n int) int64 { return codecHeaderBytes + 16 + int64(n) }

// Encode implements Codec.
func (Int8Codec) Encode(buf []byte, vec ParamVector) []byte {
	buf = putCount(buf, len(vec))
	lo, hi := int8Range(vec)
	scale := (hi - lo) / 255
	var w [16]byte
	binary.LittleEndian.PutUint64(w[:8], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(w[8:], math.Float64bits(scale))
	buf = append(buf, w[:]...)
	body, buf := codecGrow(buf, len(vec))
	tensor.ParallelChunks(len(vec), codecWorkers(len(vec)), func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			q := 0.0
			if scale > 0 {
				q = math.Round((vec[i] - lo) / scale)
			}
			// !(q >= 0) also catches NaN inputs (and NaN from 0·Inf above).
			if !(q >= 0) {
				q = 0
			} else if q > 255 {
				q = 255
			}
			body[i] = byte(q)
		}
	})
	return buf
}

// int8Range finds the finite [lo, hi] value range of vec. Large vectors
// reduce per chunk and combine in chunk order; min/max are exact, so the
// range is identical to the serial scan at every worker count.
func int8Range(vec ParamVector) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	if workers := codecWorkers(len(vec)); workers > 1 {
		// ParallelChunks can dispatch fewer chunks than workers (the last
		// chunk may cover the remainder), so the undispatched slots must
		// read as "no finite values", not as zeros — a zero would be
		// combined into the range and corrupt the quantization grid.
		los := make([]float64, workers)
		his := make([]float64, workers)
		for i := range los {
			los[i], his[i] = math.Inf(1), math.Inf(-1)
		}
		tensor.ParallelChunks(len(vec), workers, func(c, i0, i1 int) {
			los[c], his[c] = finiteRange(vec[i0:i1])
		})
		for i := 0; i < workers; i++ {
			if los[i] < lo {
				lo = los[i]
			}
			if his[i] > hi {
				hi = his[i]
			}
		}
	} else {
		lo, hi = finiteRange(vec)
	}
	if lo > hi { // no finite values (or empty): pin the grid at zero
		lo, hi = 0, 0
	}
	return lo, hi
}

// finiteRange scans for the finite min and max (+Inf/-Inf when none).
func finiteRange(vec ParamVector) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vec {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Decode implements Codec.
func (c Int8Codec) Decode(dst ParamVector, data []byte) (int, error) {
	if err := checkCount(dst, data, "int8"); err != nil {
		return 0, err
	}
	want := int(c.EncodedSize(len(dst)))
	if len(data) < want {
		return 0, fmt.Errorf("nn: int8: body truncated (%d of %d bytes)", len(data), want)
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(data[codecHeaderBytes:]))
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data[codecHeaderBytes+8:]))
	body := data[codecHeaderBytes+16:]
	tensor.ParallelChunks(len(dst), codecWorkers(len(dst)), func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			dst[i] = lo + scale*float64(body[i])
		}
	})
	return want, nil
}

// TopKCodec ships magnitude sparsification: the ⌈Frac·n⌉ largest-magnitude
// entries travel as (uint32 index, float32 value) pairs; everything else
// decodes to zero — which, under the transport's delta encoding, means
// "unchanged since the reference". Selection is deterministic: magnitude
// ties break toward the lower index, and NaN sorts as +Inf so a poisoned
// coordinate is always shipped rather than silently dropped.
type TopKCodec struct {
	// Frac is the kept fraction, in (0, 1].
	Frac float64
}

// Name implements Codec.
func (c TopKCodec) Name() string { return fmt.Sprintf("topk:%g", c.Frac) }

// Lossless implements Codec.
func (TopKCodec) Lossless() bool { return false }

// Keep returns the number of entries shipped for an n-element vector.
func (c TopKCodec) Keep(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(c.Frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// EncodedSize implements Codec.
func (c TopKCodec) EncodedSize(n int) int64 {
	return codecHeaderBytes + 4 + 8*int64(c.Keep(n))
}

// topkMag orders NaN above everything so poisoned coordinates are shipped.
func topkMag(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return math.Abs(v)
}

// Encode implements Codec.
func (c TopKCodec) Encode(buf []byte, vec ParamVector) []byte {
	buf = putCount(buf, len(vec))
	k := c.Keep(len(vec))
	var w [8]byte
	binary.LittleEndian.PutUint32(w[:4], uint32(k))
	buf = append(buf, w[:4]...)
	if k == 0 {
		return buf
	}
	// Threshold = k-th largest magnitude, found by quickselect over an
	// arena-leased scratch copy; the pass below then takes strictly-greater
	// entries first and fills the remainder with threshold ties in index
	// order — fully deterministic, because the threshold is a value (the
	// element at sorted position n−k), not a permutation, so any selection
	// strategy yields the same emit set as the full sort did. The mags
	// buffer outlives the (reordering) selection via a second scratch, so
	// the emit passes compare cached magnitudes instead of recomputing
	// them.
	magsT := tensor.GetScratch(len(vec))
	selT := tensor.GetScratch(len(vec))
	mags, sel := magsT.Data[:len(vec)], selT.Data[:len(vec)]
	tensor.ParallelChunks(len(vec), codecWorkers(len(vec)), func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			mags[i] = topkMag(vec[i])
		}
		copy(sel[i0:i1], mags[i0:i1])
	})
	thresh := selectNth(sel, len(vec)-k)
	tensor.PutScratch(selT)

	emit := func(i int) {
		binary.LittleEndian.PutUint32(w[:4], uint32(i))
		binary.LittleEndian.PutUint32(w[4:], math.Float32bits(float32(vec[i])))
		buf = append(buf, w[:]...)
	}
	left := k
	for i, m := range mags {
		if left > 0 && m > thresh {
			emit(i)
			left--
		}
	}
	for i, m := range mags {
		if left == 0 {
			break
		}
		if m == thresh {
			emit(i)
			left--
		}
	}
	tensor.PutScratch(magsT)
	return buf
}

// Decode implements Codec.
func (c TopKCodec) Decode(dst ParamVector, data []byte) (int, error) {
	if err := checkCount(dst, data, "topk"); err != nil {
		return 0, err
	}
	if len(data) < codecHeaderBytes+4 {
		return 0, fmt.Errorf("nn: topk: truncated pair count")
	}
	k := int(binary.LittleEndian.Uint32(data[codecHeaderBytes:]))
	if k != c.Keep(len(dst)) {
		return 0, fmt.Errorf("nn: topk: payload keeps %d entries, codec %d", k, c.Keep(len(dst)))
	}
	want := int(c.EncodedSize(len(dst)))
	if len(data) < want {
		return 0, fmt.Errorf("nn: topk: body truncated (%d of %d bytes)", len(data), want)
	}
	for i := range dst {
		dst[i] = 0
	}
	body := data[codecHeaderBytes+4:]
	for p := 0; p < k; p++ {
		idx := int(binary.LittleEndian.Uint32(body[8*p:]))
		if idx >= len(dst) {
			return 0, fmt.Errorf("nn: topk: index %d out of range %d", idx, len(dst))
		}
		dst[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[8*p+4:])))
	}
	return want, nil
}

// selectNth returns the value at sorted position n (0-based ascending) of
// a, overwriting a as scratch — the linear-time replacement for the full
// sort the threshold pass used to pay. It is a radix selection over the
// order-preserving integer encoding of the floats: one 256-way histogram
// pass per key byte, from the top byte down, narrowing to the bucket that
// contains the target rank. Unlike quickselect it has no degenerate
// inputs — the tie plateaus a delta-encoded payload produces (runs of
// zero residuals) collapse into one bucket and terminate the scan — and
// it is trivially deterministic: the result is a value, never a
// permutation. a must be NaN-free (topkMag already maps NaN to +Inf).
func selectNth(a []float64, n int) float64 {
	cur := a
	rank := n
	for shift := 56; ; shift -= 8 {
		var counts [256]int
		for _, v := range cur {
			counts[floatKey(v)>>shift&0xff]++
		}
		bucket := 0
		for cum := 0; ; bucket++ {
			if cum+counts[bucket] > rank {
				rank -= cum
				break
			}
			cum += counts[bucket]
		}
		if counts[bucket] == 1 || shift == 0 {
			// A singleton bucket (or byte exhaustion: all candidates share
			// every remaining byte, i.e. they are equal) pins the value.
			for _, v := range cur {
				if int(floatKey(v)>>shift&0xff) == bucket {
					return v
				}
			}
		}
		if counts[bucket] == len(cur) {
			continue // every candidate shares this byte: nothing to filter
		}
		// Compact the bucket's candidates to the front and recurse on them.
		w := 0
		for _, v := range cur {
			if int(floatKey(v)>>shift&0xff) == bucket {
				cur[w] = v
				w++
			}
		}
		cur = cur[:w]
	}
}

// floatKey maps a float64 to a uint64 whose unsigned ordering matches the
// float ordering over all non-NaN values (the standard total-order
// transform: negative values flip every bit, others flip the sign bit).
func floatKey(v float64) uint64 {
	b := math.Float64bits(v)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}
