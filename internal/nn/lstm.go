package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// LSTM is a single-layer LSTM that consumes a whole sequence and emits the
// final hidden state. Input is (batch × T·D) — T concatenated D-wide steps,
// as produced by Embedding — and output is (batch × H). Backward runs full
// backpropagation through time.
type LSTM struct {
	T, D, H int

	Wx *tensor.Tensor // (D × 4H), gate order [i f g o]
	Wh *tensor.Tensor // (H × 4H)
	B  *tensor.Tensor // (4H)

	dWx, dWh, dB *tensor.Tensor

	// Per-forward caches, one entry per timestep.
	xs    []*tensor.Tensor // (B × D) input slices
	hs    []*tensor.Tensor // (B × H) hidden states, hs[0] is h_{-1}=0
	cs    []*tensor.Tensor // (B × H) cell states, cs[0] is c_{-1}=0
	gates []*tensor.Tensor // (B × 4H) post-activation gates
	tanhC []*tensor.Tensor // (B × H) tanh(c_t)
	batch int
}

// NewLSTM constructs an LSTM for sequences of T steps of width D with H
// hidden units. The forget-gate bias is initialised to 1, the standard
// trick for stable early training.
func NewLSTM(t, d, h int, rng *tensor.RNG) *LSTM {
	if t <= 0 || d <= 0 || h <= 0 {
		panic(fmt.Sprintf("nn: LSTM: non-positive dims T=%d D=%d H=%d", t, d, h))
	}
	bx := math.Sqrt(6.0 / float64(d+4*h))
	bh := math.Sqrt(6.0 / float64(h+4*h))
	l := &LSTM{
		T: t, D: d, H: h,
		Wx:  rng.Uniform(-bx, bx, d, 4*h),
		Wh:  rng.Uniform(-bh, bh, h, 4*h),
		B:   tensor.Zeros(4 * h),
		dWx: tensor.Zeros(d, 4*h),
		dWh: tensor.Zeros(h, 4*h),
		dB:  tensor.Zeros(4 * h),
	}
	for j := h; j < 2*h; j++ { // forget gate slice
		l.B.Data[j] = 1
	}
	return l
}

// Forward runs the recurrence over all T steps and returns the last hidden
// state.
func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("LSTM", x, l.T*l.D)
	batch := x.Shape[0]
	l.batch = batch
	h4 := 4 * l.H

	l.xs = l.xs[:0]
	l.hs = append(l.hs[:0], tensor.Zeros(batch, l.H))
	l.cs = append(l.cs[:0], tensor.Zeros(batch, l.H))
	l.gates = l.gates[:0]
	l.tanhC = l.tanhC[:0]

	for t := 0; t < l.T; t++ {
		// Slice out step t of each sample into a (B × D) matrix.
		xt := tensor.Zeros(batch, l.D)
		for b := 0; b < batch; b++ {
			copy(xt.Data[b*l.D:(b+1)*l.D], x.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D])
		}
		l.xs = append(l.xs, xt)

		a := tensor.MatMul(xt, l.Wx)
		tensor.AddInPlace(a, tensor.MatMul(l.hs[t], l.Wh))
		for b := 0; b < batch; b++ {
			row := a.Data[b*h4 : (b+1)*h4]
			for j := range row {
				row[j] += l.B.Data[j]
			}
		}

		gate := tensor.Zeros(batch, h4)
		ct := tensor.Zeros(batch, l.H)
		ht := tensor.Zeros(batch, l.H)
		tc := tensor.Zeros(batch, l.H)
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			arow := a.Data[b*h4 : (b+1)*h4]
			grow := gate.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i := sigmoid(arow[j])
				f := sigmoid(arow[l.H+j])
				g := math.Tanh(arow[2*l.H+j])
				o := sigmoid(arow[3*l.H+j])
				grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j] = i, f, g, o
				c := f*prevC.Data[b*l.H+j] + i*g
				ct.Data[b*l.H+j] = c
				th := math.Tanh(c)
				tc.Data[b*l.H+j] = th
				ht.Data[b*l.H+j] = o * th
			}
		}
		l.gates = append(l.gates, gate)
		l.cs = append(l.cs, ct)
		l.hs = append(l.hs, ht)
		l.tanhC = append(l.tanhC, tc)
	}
	return l.hs[l.T]
}

// Backward backpropagates through time from the final hidden state.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("LSTM.Backward", grad, l.H)
	batch := l.batch
	h4 := 4 * l.H
	dx := tensor.Zeros(batch, l.T*l.D)
	dh := grad.Clone()
	dc := tensor.Zeros(batch, l.H)

	for t := l.T - 1; t >= 0; t-- {
		gate := l.gates[t]
		da := tensor.Zeros(batch, h4)
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			grow := gate.Data[b*h4 : (b+1)*h4]
			darow := da.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i, f, g, o := grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j]
				th := l.tanhC[t].Data[b*l.H+j]
				dhv := dh.Data[b*l.H+j]
				do := dhv * th
				dcv := dc.Data[b*l.H+j] + dhv*o*(1-th*th)
				di := dcv * g
				dg := dcv * i
				df := dcv * prevC.Data[b*l.H+j]
				dc.Data[b*l.H+j] = dcv * f // becomes dc_{t-1}
				darow[j] = di * i * (1 - i)
				darow[l.H+j] = df * f * (1 - f)
				darow[2*l.H+j] = dg * (1 - g*g)
				darow[3*l.H+j] = do * o * (1 - o)
			}
		}
		// Parameter gradients.
		tensor.AddInPlace(l.dWx, tensor.MatMulTransA(l.xs[t], da))
		tensor.AddInPlace(l.dWh, tensor.MatMulTransA(l.hs[t], da))
		for b := 0; b < batch; b++ {
			row := da.Data[b*h4 : (b+1)*h4]
			for j := range row {
				l.dB.Data[j] += row[j]
			}
		}
		// Input and recurrent gradients.
		dxt := tensor.MatMulTransB(da, l.Wx)
		for b := 0; b < batch; b++ {
			copy(dx.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D], dxt.Data[b*l.D:(b+1)*l.D])
		}
		dh = tensor.MatMulTransB(da, l.Wh)
	}
	return dx
}

// Params returns {Wx, Wh, B}.
func (l *LSTM) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Wx, l.Wh, l.B} }

// Grads returns {dWx, dWh, dB}.
func (l *LSTM) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dWx, l.dWh, l.dB} }
