package nn

import (
	"fmt"
	"math"

	"fedcross/internal/tensor"
)

// LSTM is a single-layer LSTM that consumes a whole sequence and emits the
// final hidden state. Input is (batch × T·D) — T concatenated D-wide steps,
// as produced by Embedding — and output is (batch × H). Backward runs full
// backpropagation through time.
type LSTM struct {
	T, D, H int

	Wx *tensor.Tensor // (D × 4H), gate order [i f g o]
	Wh *tensor.Tensor // (H × 4H)
	B  *tensor.Tensor // (4H)

	dWx, dWh, dB *tensor.Tensor

	// Per-forward caches, one entry per timestep, recycled across calls
	// via tensor.Ensure so steady-state batches allocate nothing.
	xs    []*tensor.Tensor // (B × D) input slices
	hs    []*tensor.Tensor // (B × H) hidden states, hs[0] is h_{-1}=0
	cs    []*tensor.Tensor // (B × H) cell states, cs[0] is c_{-1}=0
	gates []*tensor.Tensor // (B × 4H) post-activation gates
	tanhC []*tensor.Tensor // (B × H) tanh(c_t)
	batch int

	// Single-step scratch buffers (forward: a; backward: the rest).
	a, da, dh, dc, dxt, dx *tensor.Tensor
}

// NewLSTM constructs an LSTM for sequences of T steps of width D with H
// hidden units. The forget-gate bias is initialised to 1, the standard
// trick for stable early training.
func NewLSTM(t, d, h int, rng *tensor.RNG) *LSTM {
	if t <= 0 || d <= 0 || h <= 0 {
		panic(fmt.Sprintf("nn: LSTM: non-positive dims T=%d D=%d H=%d", t, d, h))
	}
	bx := math.Sqrt(6.0 / float64(d+4*h))
	bh := math.Sqrt(6.0 / float64(h+4*h))
	l := &LSTM{
		T: t, D: d, H: h,
		Wx:  rng.Uniform(-bx, bx, d, 4*h),
		Wh:  rng.Uniform(-bh, bh, h, 4*h),
		B:   tensor.Zeros(4 * h),
		dWx: tensor.Zeros(d, 4*h),
		dWh: tensor.Zeros(h, 4*h),
		dB:  tensor.Zeros(4 * h),
	}
	for j := h; j < 2*h; j++ { // forget gate slice
		l.B.Data[j] = 1
	}
	return l
}

// ensureSteps grows a per-timestep cache to n entries with the given
// element shape, recycling existing buffers.
func ensureSteps(ts []*tensor.Tensor, n, rows, cols int) []*tensor.Tensor {
	for len(ts) < n {
		ts = append(ts, nil)
	}
	for i := 0; i < n; i++ {
		ts[i] = tensor.Ensure(ts[i], rows, cols)
	}
	return ts
}

// Forward runs the recurrence over all T steps and returns the last hidden
// state.
func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("LSTM", x, l.T*l.D)
	batch := x.Shape[0]
	l.batch = batch
	h4 := 4 * l.H

	l.xs = ensureSteps(l.xs, l.T, batch, l.D)
	l.hs = ensureSteps(l.hs, l.T+1, batch, l.H)
	l.cs = ensureSteps(l.cs, l.T+1, batch, l.H)
	l.gates = ensureSteps(l.gates, l.T, batch, h4)
	l.tanhC = ensureSteps(l.tanhC, l.T, batch, l.H)
	l.hs[0].Zero()
	l.cs[0].Zero()
	l.a = tensor.Ensure(l.a, batch, h4)

	for t := 0; t < l.T; t++ {
		// Slice out step t of each sample into a (B × D) matrix.
		xt := l.xs[t]
		for b := 0; b < batch; b++ {
			copy(xt.Data[b*l.D:(b+1)*l.D], x.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D])
		}

		a := tensor.MatMulTo(l.a, xt, l.Wx)
		tensor.MatMulAcc(a, l.hs[t], l.Wh)
		tensor.AddRowTo(a, a, l.B)

		gate, ct, ht, tc := l.gates[t], l.cs[t+1], l.hs[t+1], l.tanhC[t]
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			arow := a.Data[b*h4 : (b+1)*h4]
			grow := gate.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i := sigmoid(arow[j])
				f := sigmoid(arow[l.H+j])
				g := math.Tanh(arow[2*l.H+j])
				o := sigmoid(arow[3*l.H+j])
				grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j] = i, f, g, o
				c := f*prevC.Data[b*l.H+j] + i*g
				ct.Data[b*l.H+j] = c
				th := math.Tanh(c)
				tc.Data[b*l.H+j] = th
				ht.Data[b*l.H+j] = o * th
			}
		}
	}
	return l.hs[l.T]
}

// Backward backpropagates through time from the final hidden state.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("LSTM.Backward", grad, l.H)
	batch := l.batch
	h4 := 4 * l.H
	l.dx = tensor.Ensure(l.dx, batch, l.T*l.D)
	l.dh = tensor.Ensure(l.dh, batch, l.H)
	copy(l.dh.Data, grad.Data)
	l.dc = tensor.Ensure(l.dc, batch, l.H)
	l.dc.Zero()
	l.da = tensor.Ensure(l.da, batch, h4)
	l.dxt = tensor.Ensure(l.dxt, batch, l.D)
	dx, dh, dc, da, dxt := l.dx, l.dh, l.dc, l.da, l.dxt

	for t := l.T - 1; t >= 0; t-- {
		gate := l.gates[t]
		prevC := l.cs[t]
		for b := 0; b < batch; b++ {
			grow := gate.Data[b*h4 : (b+1)*h4]
			darow := da.Data[b*h4 : (b+1)*h4]
			for j := 0; j < l.H; j++ {
				i, f, g, o := grow[j], grow[l.H+j], grow[2*l.H+j], grow[3*l.H+j]
				th := l.tanhC[t].Data[b*l.H+j]
				dhv := dh.Data[b*l.H+j]
				do := dhv * th
				dcv := dc.Data[b*l.H+j] + dhv*o*(1-th*th)
				di := dcv * g
				dg := dcv * i
				df := dcv * prevC.Data[b*l.H+j]
				dc.Data[b*l.H+j] = dcv * f // becomes dc_{t-1}
				darow[j] = di * i * (1 - i)
				darow[l.H+j] = df * f * (1 - f)
				darow[2*l.H+j] = dg * (1 - g*g)
				darow[3*l.H+j] = do * o * (1 - o)
			}
		}
		// Parameter gradients.
		tensor.MatMulTransAAcc(l.dWx, l.xs[t], da)
		tensor.MatMulTransAAcc(l.dWh, l.hs[t], da)
		tensor.ColSumAcc(l.dB, da)
		// Input and recurrent gradients. dh's previous value was fully
		// consumed above, so it can be overwritten in place.
		tensor.MatMulTransBTo(dxt, da, l.Wx)
		for b := 0; b < batch; b++ {
			copy(dx.Data[b*l.T*l.D+t*l.D:b*l.T*l.D+(t+1)*l.D], dxt.Data[b*l.D:(b+1)*l.D])
		}
		tensor.MatMulTransBTo(dh, da, l.Wh)
	}
	return dx
}

// Params returns {Wx, Wh, B}.
func (l *LSTM) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Wx, l.Wh, l.B} }

// Grads returns {dWx, dWh, dB}.
func (l *LSTM) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dWx, l.dWh, l.dB} }
