package nn

import (
	"math"

	"fedcross/internal/tensor"
)

// Linear is a fully connected layer: y = xW + b with W of shape (in × out).
type Linear struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor

	x *tensor.Tensor // cached input for backward

	// Reused activation/gradient buffers (see the buffer-ownership rules
	// in docs/ARCHITECTURE.md): refreshed via tensor.Ensure every call, so
	// steady-state training allocates nothing here.
	out, dx *tensor.Tensor
}

// NewLinear constructs a Linear layer with Kaiming-uniform weights drawn
// from rng.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	bound := math.Sqrt(6.0 / float64(in))
	return &Linear{
		In: in, Out: out,
		W:  rng.Uniform(-bound, bound, in, out),
		B:  tensor.Zeros(out),
		dW: tensor.Zeros(in, out),
		dB: tensor.Zeros(out),
	}
}

// Forward computes xW + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Linear", x, l.In)
	l.x = x
	batch := x.Shape[0]
	l.out = tensor.Ensure(l.out, batch, l.Out)
	tensor.MatMulTo(l.out, x, l.W)
	tensor.AddRowTo(l.out, l.out, l.B)
	return l.out
}

// Backward accumulates dW, dB and returns dLoss/dInput.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	checkBatch("Linear.Backward", grad, l.Out)
	// dW += xᵀ · grad ; dB += Σ_batch grad ; dx = grad · Wᵀ
	tensor.MatMulTransAAcc(l.dW, l.x, grad)
	tensor.ColSumAcc(l.dB, grad)
	batch := grad.Shape[0]
	l.dx = tensor.Ensure(l.dx, batch, l.In)
	return tensor.MatMulTransBTo(l.dx, grad, l.W)
}

// Params returns {W, B}.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Grads returns {dW, dB}.
func (l *Linear) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dW, l.dB} }
