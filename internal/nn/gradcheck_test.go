package nn

import (
	"math"
	"testing"

	"fedcross/internal/tensor"
)

// lossOf runs a forward pass through net and returns the cross-entropy
// loss against labels.
func lossOf(net *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(x, false)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// gradCheck compares the analytic parameter gradients of net against
// central differences for a random subset of coordinates.
func gradCheck(t *testing.T, name string, net *Sequential, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	net.ZeroGrads()
	logits := net.Forward(x, false)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	net.Backward(dlogits)

	params := net.Params()
	grads := net.Grads()
	rng := tensor.NewRNG(123)
	const eps = 1e-5
	checked := 0
	for pi, p := range params {
		// Check up to 6 coordinates per tensor.
		n := p.Len()
		for k := 0; k < 6 && k < n; k++ {
			j := rng.Intn(n)
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp := lossOf(net, x, labels)
			p.Data[j] = orig - eps
			lm := lossOf(net, x, labels)
			p.Data[j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := grads[pi].Data[j]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > tol {
				t.Fatalf("%s: param %d coord %d: analytic %.8g vs numeric %.8g", name, pi, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no parameters checked", name)
	}
}

func TestGradCheckLinear(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewSequential(NewLinear(5, 4, rng), NewReLU(), NewLinear(4, 3, rng))
	x := rng.Randn(1, 4, 5)
	gradCheck(t, "linear-relu-linear", net, x, []int{0, 2, 1, 0}, 1e-5)
}

func TestGradCheckTanhSigmoid(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewSequential(NewLinear(6, 5, rng), NewTanh(), NewLinear(5, 5, rng), NewSigmoid(), NewLinear(5, 2, rng))
	x := rng.Randn(1, 3, 6)
	gradCheck(t, "tanh-sigmoid", net, x, []int{1, 0, 1}, 1e-5)
}

func TestGradCheckConv(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 3, rng)
	net := NewSequential(conv, NewReLU(), NewLinear(conv.OutFeatures(), 3, rng))
	x := rng.Randn(1, 2, 2*5*5)
	gradCheck(t, "conv", net, x, []int{0, 2}, 1e-5)
}

func TestGradCheckConvStride(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 0}
	conv := NewConv2D(g, 2, rng)
	net := NewSequential(conv, NewLinear(conv.OutFeatures(), 2, rng))
	x := rng.Randn(1, 2, 36)
	gradCheck(t, "conv-stride2", net, x, []int{1, 0}, 1e-5)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := tensor.NewRNG(5)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 2, rng)
	pool := NewMaxPool2D(2, 4, 4, 2)
	net := NewSequential(conv, pool, NewLinear(pool.OutFeatures(), 3, rng))
	x := rng.Randn(1, 2, 16)
	gradCheck(t, "maxpool", net, x, []int{2, 1}, 1e-5)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	rng := tensor.NewRNG(6)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 4, rng)
	net := NewSequential(conv, NewGlobalAvgPool(4, 4, 4), NewLinear(4, 3, rng))
	x := rng.Randn(1, 2, 16)
	gradCheck(t, "gap", net, x, []int{0, 1}, 1e-5)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	rng := tensor.NewRNG(7)
	body := NewSequential(NewLinear(6, 6, rng), NewTanh(), NewLinear(6, 6, rng))
	net := NewSequential(NewResidual(body), NewLinear(6, 2, rng))
	x := rng.Randn(1, 3, 6)
	gradCheck(t, "residual-id", net, x, []int{0, 1, 1}, 1e-5)
}

func TestGradCheckResidualProj(t *testing.T) {
	rng := tensor.NewRNG(8)
	body := NewSequential(NewLinear(5, 8, rng), NewTanh())
	net := NewSequential(NewResidualProj(body, NewLinear(5, 8, rng)), NewLinear(8, 2, rng))
	x := rng.Randn(1, 3, 5)
	gradCheck(t, "residual-proj", net, x, []int{1, 0, 1}, 1e-5)
}

func TestGradCheckLSTM(t *testing.T) {
	rng := tensor.NewRNG(9)
	lstm := NewLSTM(4, 3, 5, rng) // T=4 D=3 H=5
	net := NewSequential(lstm, NewLinear(5, 3, rng))
	x := rng.Randn(1, 2, 12)
	gradCheck(t, "lstm", net, x, []int{2, 0}, 1e-4)
}

func TestGradCheckEmbeddingLSTM(t *testing.T) {
	rng := tensor.NewRNG(10)
	emb := NewEmbedding(7, 3, rng)
	lstm := NewLSTM(5, 3, 4, rng)
	net := NewSequential(emb, lstm, NewLinear(4, 2, rng))
	x := tensor.New([]float64{0, 3, 6, 2, 1, 5, 5, 4, 0, 1}, 2, 5)
	gradCheck(t, "embedding-lstm", net, x, []int{1, 0}, 1e-4)
}

func TestGradCheckInputGradient(t *testing.T) {
	// Verify dLoss/dInput (needed by SCAFFOLD-style analyses and FedGen's
	// generator training) with central differences on the input.
	rng := tensor.NewRNG(11)
	net := NewSequential(NewLinear(4, 5, rng), NewTanh(), NewLinear(5, 3, rng))
	x := rng.Randn(1, 2, 4)
	labels := []int{2, 0}
	net.ZeroGrads()
	logits := net.Forward(x, false)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	dx := net.Backward(dlogits)

	const eps = 1e-5
	for j := 0; j < x.Len(); j++ {
		orig := x.Data[j]
		x.Data[j] = orig + eps
		lp := lossOf(net, x, labels)
		x.Data[j] = orig - eps
		lm := lossOf(net, x, labels)
		x.Data[j] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data[j]) > 1e-6*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("input grad %d: analytic %.8g vs numeric %.8g", j, dx.Data[j], numeric)
		}
	}
}
