package nn

import (
	"fmt"

	"fedcross/internal/tensor"
)

// SGD implements stochastic gradient descent with classical momentum and
// optional weight decay — the optimizer used throughout the paper
// (lr = 0.01, momentum = 0.5).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD constructs an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD learning rate must be positive, got %v", lr))
	}
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one update to params given grads, both as returned by a
// network's Params/Grads. Velocity buffers are allocated lazily on first
// use and keyed by position, so an SGD instance is tied to one network.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: SGD.Step: %d params vs %d grads", len(params), len(grads)))
	}
	if s.velocity == nil {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.Zeros(p.Shape...)
		}
	}
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		for j := range p.Data {
			gj := g.Data[j]
			if s.WeightDecay != 0 {
				gj += s.WeightDecay * p.Data[j]
			}
			v.Data[j] = s.Momentum*v.Data[j] + gj
			p.Data[j] -= s.LR * v.Data[j]
		}
	}
}

// Reset clears the momentum buffers, e.g. when a fresh model is loaded
// into the same training loop.
func (s *SGD) Reset() { s.velocity = nil }

// ZeroVelocity zeroes the momentum buffers in place, keeping their
// storage. It is the replica-reuse reset: after it, the optimizer is
// indistinguishable from a freshly constructed one (whose velocity starts
// at zero) without Reset's reallocation on the next Step.
func (s *SGD) ZeroVelocity() {
	for _, v := range s.velocity {
		v.Zero()
	}
}
