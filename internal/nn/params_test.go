package nn

import (
	"math"
	"testing"

	"fedcross/internal/tensor"
)

// TestDotNormsMatchesSeparate pins the fused-kernel contract the
// similarity Gram pass relies on: DotNorms must be bit-identical to the
// three separate reductions at every length (remainder paths included)
// and must propagate NaN rather than mask it.
func TestDotNormsMatchesSeparate(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 64, 1001} {
		v := make(ParamVector, n)
		w := make(ParamVector, n)
		for i := 0; i < n; i++ {
			v[i] = rng.Normal(0, 1)
			w[i] = rng.Normal(0, 1)
		}
		dot, vv, ww := v.DotNorms(w)
		if dot != v.Dot(w) || vv != v.NormSq() || ww != w.NormSq() {
			t.Fatalf("n=%d: fused (%v,%v,%v) != separate (%v,%v,%v)",
				n, dot, vv, ww, v.Dot(w), v.NormSq(), w.NormSq())
		}
	}
	v := ParamVector{1, math.NaN(), 2}
	w := ParamVector{1, 1, 1}
	dot, vv, ww := v.DotNorms(w)
	if !math.IsNaN(dot) || !math.IsNaN(vv) || ww != 3 {
		t.Fatalf("NaN must poison the fused sums: %v %v %v", dot, vv, ww)
	}
}

func TestFlattenParamsInto(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := NewSequential(NewLinear(3, 5, rng), NewReLU(), NewLinear(5, 2, rng))
	want := FlattenParams(net.Params())
	dst := make(ParamVector, len(want))
	got := FlattenParamsInto(dst, net.Params())
	if &got[0] != &dst[0] {
		t.Fatal("FlattenParamsInto must return the destination")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], want[i])
		}
	}
	for _, bad := range []ParamVector{make(ParamVector, len(want)-1), make(ParamVector, len(want)+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for destination length %d", len(bad))
				}
			}()
			FlattenParamsInto(bad, net.Params())
		}()
	}
}
