package nn

import (
	"testing"

	"fedcross/internal/tensor"
)

// Steady-state allocation contracts: after a warm-up pass sizes every
// reused buffer, a training step (forward + loss + backward + SGD) must
// not allocate. These tests enforce the zero-allocation property of the
// destination-passing kernels end to end, per layer stack.

func trainStepAllocs(t *testing.T, net *Sequential, x *tensor.Tensor, labels []int) float64 {
	t.Helper()
	opt := NewSGD(0.05, 0.5)
	params, grads := net.Params(), net.Grads()
	dlogits := tensor.Zeros(x.Shape[0], 1) // resized after the first forward
	step := func() {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		dlogits = tensor.Ensure(dlogits, logits.Shape...)
		SoftmaxCrossEntropyInto(dlogits, logits, labels)
		net.Backward(dlogits)
		opt.Step(params, grads)
	}
	// Warm up: size every Ensure'd buffer and the SGD velocity.
	for i := 0; i < 3; i++ {
		step()
	}
	return testing.AllocsPerRun(10, step)
}

func TestTrainStepZeroAllocMLP(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewSequential(
		NewLinear(12, 16, rng),
		NewReLU(),
		NewLinear(16, 4, rng),
	)
	x := rng.Randn(1, 8, 12)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if allocs := trainStepAllocs(t, net, x, labels); allocs != 0 {
		t.Fatalf("MLP training step allocates %v objects/op, want 0", allocs)
	}
}

func TestTrainStepZeroAllocCNN(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 4, rng)
	net := NewSequential(
		conv,
		NewReLU(),
		NewMaxPool2D(4, 8, 8, 2),
		NewLinear(4*4*4, 4, rng),
	)
	x := rng.Randn(1, 6, 64)
	labels := []int{0, 1, 2, 3, 0, 1}
	if allocs := trainStepAllocs(t, net, x, labels); allocs != 0 {
		t.Fatalf("CNN training step allocates %v objects/op, want 0", allocs)
	}
}

func TestTrainStepZeroAllocLSTM(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewSequential(
		NewLSTM(5, 6, 8, rng),
		NewLinear(8, 3, rng),
	)
	x := rng.Randn(1, 4, 30)
	labels := []int{0, 1, 2, 0}
	if allocs := trainStepAllocs(t, net, x, labels); allocs != 0 {
		t.Fatalf("LSTM training step allocates %v objects/op, want 0", allocs)
	}
}
