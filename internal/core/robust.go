package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
)

// sqDistMeasure scores a pair by its SQUARED Euclidean distance — the
// quantity Krum ranks on. It is expressed through the Gram identity
// ‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b so the K×K pass reuses NewSimMatrix's
// fused, norm-cached kernels: Pair and FromDot are the same arithmetic on
// the same fixed-order nn reductions, so the matrix is bit-identical at
// every worker count (the property the gram tests pin for the similarity
// measures carries over unchanged).
//
// Note the orientation: unlike the similarity measures, HIGHER means
// FARTHER here. The matrix is consumed only by Krum's own scoring below,
// never by CoModelSel.
func sqDistMeasure() Measure {
	return Measure{
		Name:    "sqdist",
		Pair:    func(a, b nn.ParamVector) float64 { return sqDistFromDot(a.DotNorms(b)) },
		FromDot: sqDistFromDot,
	}
}

func sqDistFromDot(dot, aa, bb float64) float64 { return aa + bb - 2*dot }

// KrumReducer implements Krum and Multi-Krum (Blanchard et al., NeurIPS
// 2017): each upload is scored by the sum of its k−f−2 smallest squared
// distances to the other uploads, and the lowest-scoring upload(s) win.
// An attacker far from the honest cluster inflates its own score and is
// never selected, giving a breakdown point of f < (k−2)/2 — at the cost
// of discarding honest diversity (classic Krum keeps exactly one model).
//
// The pairwise distances come from NewSimMatrix under sqDistMeasure, so
// the O(k²·dim) part of the rule fans out over the worker allowance while
// staying bit-identical at every worker count; scoring and selection are
// pure serial functions of the matrix.
type KrumReducer struct {
	// F is the assumed number of Byzantine uploads. 0 derives the most
	// conservative admissible value floor((k−3)/2); any F is clamped to
	// k−3 so at least one distance survives the k−f−2 window.
	F int
	// Multi selects Multi-Krum: average the M best-scoring uploads
	// instead of returning the single winner.
	Multi bool
	// M is Multi-Krum's selection size. 0 defaults to k−f, the paper's
	// choice. Ignored unless Multi is set.
	M int
	// W is the worker allowance for the distance-matrix fan-out.
	W fl.Workers
}

// Name implements fl.Reducer.
func (r *KrumReducer) Name() string {
	if r.Multi {
		switch {
		case r.F > 0 && r.M > 0:
			return fmt.Sprintf("multikrum:%d:%d", r.F, r.M)
		case r.M > 0:
			return fmt.Sprintf("multikrum:%d", r.M)
		default:
			return "multikrum"
		}
	}
	if r.F > 0 {
		return fmt.Sprintf("krum:%d", r.F)
	}
	return "krum"
}

// SetWorkers implements fl.WorkersSetter.
func (r *KrumReducer) SetWorkers(w fl.Workers) { r.W = w }

// Reduce implements fl.Reducer. With fewer than 3 uploads no distance
// window exists and the rule degrades to the weighted mean — Krum is
// undefined there, and a 2-client round has no honest majority to find.
func (r *KrumReducer) Reduce(uploads []nn.ParamVector, weights []float64) nn.ParamVector {
	k := len(uploads)
	if k < 3 {
		return fl.MeanReducer{}.Reduce(uploads, weights)
	}
	f := r.F
	if f <= 0 {
		f = (k - 3) / 2
	}
	if f > k-3 {
		f = k - 3
	}
	window := k - f - 2 // number of nearest neighbours summed per score

	m := NewSimMatrix(uploads, sqDistMeasure(), r.W)
	scores := make([]float64, k)
	dists := make([]float64, 0, k-1)
	for i := 0; i < k; i++ {
		dists = dists[:0]
		for j := 0; j < k; j++ {
			if j != i {
				dists = append(dists, m.At(i, j))
			}
		}
		sort.Float64s(dists)
		s := 0.0
		for _, d := range dists[:window] {
			s += d
		}
		scores[i] = s
	}

	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	// Ties break on the lower index so selection is a pure function of
	// the score vector, independent of sort internals.
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] < scores[order[b]]
		}
		return order[a] < order[b]
	})

	if !r.Multi {
		return uploads[order[0]].Clone()
	}
	msel := r.M
	if msel <= 0 {
		msel = k - f
	}
	if msel > k {
		msel = k
	}
	chosen := make([]nn.ParamVector, msel)
	var chosenW []float64
	if weights != nil {
		chosenW = make([]float64, msel)
	}
	for i := 0; i < msel; i++ {
		chosen[i] = uploads[order[i]]
		if weights != nil {
			chosenW[i] = weights[order[i]]
		}
	}
	return fl.MeanReducer{}.Reduce(chosen, chosenW)
}

// ReducerByName is the full aggregation-rule registry: the Krum family
// implemented here ("krum", "krum:<f>", "multikrum", "multikrum:<m>",
// "multikrum:<f>:<m>") plus everything fl.ReducerByName resolves (mean,
// trimmed[:frac], median). This is what the experiment profiles and the
// fedsim -reducer flag go through.
func ReducerByName(name string) (fl.Reducer, error) {
	parts := strings.Split(name, ":")
	switch parts[0] {
	case "krum":
		r := &KrumReducer{}
		switch len(parts) {
		case 1:
		case 2:
			f, err := parseKrumParam(name, "f", parts[1])
			if err != nil {
				return nil, err
			}
			r.F = f
		default:
			return nil, fmt.Errorf("core: bad reducer %q (want krum or krum:<f>)", name)
		}
		return r, nil
	case "multikrum":
		r := &KrumReducer{Multi: true}
		switch len(parts) {
		case 1:
		case 2:
			m, err := parseKrumParam(name, "m", parts[1])
			if err != nil {
				return nil, err
			}
			r.M = m
		case 3:
			f, err := parseKrumParam(name, "f", parts[1])
			if err != nil {
				return nil, err
			}
			m, err := parseKrumParam(name, "m", parts[2])
			if err != nil {
				return nil, err
			}
			r.F, r.M = f, m
		default:
			return nil, fmt.Errorf("core: bad reducer %q (want multikrum[:f]:<m>)", name)
		}
		return r, nil
	case "", "mean", "median", "trimmed":
		return fl.ReducerByName(name)
	}
	return nil, fmt.Errorf("core: unknown reducer %q (want mean, trimmed[:frac], median, krum[:f] or multikrum[:f][:m])", name)
}

func parseKrumParam(name, field, s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("core: bad %s in reducer %q (want a non-negative integer)", field, name)
	}
	return v, nil
}
