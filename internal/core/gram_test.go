package core

import (
	"math"
	"testing"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// gramUploads builds a pathological upload list: random vectors plus a
// zero vector (zero-norm edge) and a NaN-poisoned one, with an odd length
// so the kernels' unrolled remainder path runs.
func gramUploads() []nn.ParamVector {
	rng := tensor.NewRNG(7)
	const k, n = 6, 37
	w := make([]nn.ParamVector, k)
	for i := range w {
		w[i] = make(nn.ParamVector, n)
		for j := range w[i] {
			w[i][j] = rng.Normal(0, 1)
		}
	}
	for j := range w[2] {
		w[2][j] = 0 // zero-norm upload
	}
	w[4][13] = math.NaN() // corrupted upload
	return w
}

// TestSimMatrixMatchesNaive pins the Gram pass's exactness contract: for
// every measure, worker count and cell, the cached matrix equals the
// naive pairwise call — including the zero-norm and NaN edge cases — and
// matrix-based selection equals the naive CoModelSel loop for all three
// strategies.
func TestSimMatrixMatchesNaive(t *testing.T) {
	w := gramUploads()
	k := len(w)
	for _, meas := range []Measure{CosineMeasure(), PaperMeasure(), EuclideanMeasure()} {
		for _, workers := range []int{1, 4} {
			m := NewSimMatrix(w, meas, fl.Limit(workers))
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if i == j {
						continue
					}
					want := meas.Pair(w[i], w[j])
					got := m.At(i, j)
					if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("%s workers=%d cell (%d,%d): matrix %v, naive %v",
							meas.Name, workers, i, j, got, want)
					}
				}
			}
			for r := 0; r < 2*k; r++ {
				for i := 0; i < k; i++ {
					for _, s := range []Strategy{InOrder, HighestSimilarity, LowestSimilarity} {
						naive := CoModelSel(s, i, r, w, meas.Pair)
						if got := CoModelSelMatrix(s, i, r, m); got != naive {
							t.Fatalf("%s workers=%d strategy %v r=%d i=%d: matrix picked %d, naive %d",
								meas.Name, workers, s, r, i, got, naive)
						}
					}
				}
			}
		}
	}
}

// TestSimMatrixDefaultsToCosine mirrors CoModelSel's nil-similarity
// default: a zero-valued Measure scores with cosine.
func TestSimMatrixDefaultsToCosine(t *testing.T) {
	w := gramUploads()
	m := NewSimMatrix(w, Measure{}, fl.Limit(2))
	if got, want := m.At(0, 1), CosineSimilarity(w[0], w[1]); got != want {
		t.Fatalf("default measure: got %v, want cosine %v", got, want)
	}
}

// TestSimMatrixCustomAsymmetric pins the fallback path's ordered-pair
// exactness: a measure without FromDot — even an asymmetric one — must
// fill every directed cell with its own Pair call.
func TestSimMatrixCustomAsymmetric(t *testing.T) {
	w := gramUploads()
	asym := Measure{Name: "first-coord", Pair: func(a, b nn.ParamVector) float64 {
		return a[0] - 2*b[0]
	}}
	m := NewSimMatrix(w, asym, fl.Limit(3))
	for i := range w {
		for j := range w {
			if i == j {
				continue
			}
			if got, want := m.At(i, j), asym.Pair(w[i], w[j]); got != want {
				t.Fatalf("asymmetric cell (%d,%d): got %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestPairlessMeasureRejected guards against a partially built Measure
// (FromDot or Name without Pair) being silently rescored with cosine.
func TestPairlessMeasureRejected(t *testing.T) {
	opts := DefaultOptions()
	opts.Similarity = Measure{Name: "mysim", FromDot: func(dot, aa, bb float64) float64 { return dot }}
	if _, err := New(opts); err == nil {
		t.Fatal("expected New to reject a measure without Pair")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected NewSimMatrix to panic on a measure without Pair")
		}
	}()
	NewSimMatrix(gramUploads(), Measure{Name: "mysim"}, fl.Limit(1))
}

func TestPairIndexCoversUpperTriangle(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		seen := map[[2]int]bool{}
		for p := 0; p < k*(k-1)/2; p++ {
			i, j := pairIndex(p, k)
			if i < 0 || j <= i || j >= k {
				t.Fatalf("k=%d p=%d: bad pair (%d,%d)", k, p, i, j)
			}
			seen[[2]int{i, j}] = true
		}
		if len(seen) != k*(k-1)/2 {
			t.Fatalf("k=%d: %d distinct pairs, want %d", k, len(seen), k*(k-1)/2)
		}
	}
}
