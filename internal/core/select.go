package core

import (
	"fmt"

	"fedcross/internal/nn"
)

// Strategy names a collaborative-model selection criterion (Section
// III-B.1).
type Strategy int

const (
	// InOrder cycles deterministically so that within every K−1 rounds
	// each middleware model collaborates with every other model exactly
	// once (adequacy-and-diversity criterion).
	InOrder Strategy = iota
	// HighestSimilarity picks the most similar upload (gradient-divergence
	// minimisation). The paper shows it is the worst choice globally:
	// similar models cluster and the final averaging suffers.
	HighestSimilarity
	// LowestSimilarity picks the least similar upload (knowledge
	// maximisation) — the paper's recommended strategy.
	LowestSimilarity
)

// String returns the strategy's report name.
func (s Strategy) String() string {
	switch s {
	case InOrder:
		return "in-order"
	case HighestSimilarity:
		return "highest-similarity"
	case LowestSimilarity:
		return "lowest-similarity"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// StrategyByName resolves a strategy for CLI flags.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "in-order", "inorder":
		return InOrder, nil
	case "highest-similarity", "highest":
		return HighestSimilarity, nil
	case "", "lowest-similarity", "lowest":
		return LowestSimilarity, nil
	default:
		return 0, fmt.Errorf("core: unknown selection strategy %q (want in-order, highest or lowest)", name)
	}
}

// CoModelSel returns the index of the collaborative model for uploaded
// model i in round r, given the full upload list w. It implements the
// paper's three strategies; sim is only consulted by the similarity-based
// ones.
func CoModelSel(strategy Strategy, i, r int, w []nn.ParamVector, sim SimilarityFunc) int {
	k := len(w)
	if k < 2 {
		panic(fmt.Sprintf("core: CoModelSel requires at least 2 models, got %d", k))
	}
	if i < 0 || i >= k {
		panic(fmt.Sprintf("core: CoModelSel index %d out of range [0,%d)", i, k))
	}
	switch strategy {
	case InOrder:
		// Paper formula: (i + (r%(K−1) + 1)) % K. The offset cycles through
		// 1..K−1, so the choice is never i itself and covers every peer
		// exactly once per K−1 rounds.
		return (i + (r%(k-1) + 1)) % k
	case HighestSimilarity, LowestSimilarity:
		if sim == nil {
			sim = CosineSimilarity
		}
		best := -1
		var bestScore float64
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			s := sim(w[i], w[j])
			if best == -1 ||
				(strategy == HighestSimilarity && s > bestScore) ||
				(strategy == LowestSimilarity && s < bestScore) {
				best, bestScore = j, s
			}
		}
		return best
	default:
		panic(fmt.Sprintf("core: unknown strategy %v", strategy))
	}
}

// CrossAggr fuses an uploaded model with its collaborative model:
// α·v + (1−α)·v_co (Section III-B.2).
func CrossAggr(v, vco nn.ParamVector, alpha float64) nn.ParamVector {
	return v.Lerp(vco, alpha)
}

// GlobalModelGen produces the deployment model: the plain average of the
// middleware models (Section III-B.3). It never participates in training.
func GlobalModelGen(w []nn.ParamVector) nn.ParamVector {
	return nn.MeanVectors(w)
}
