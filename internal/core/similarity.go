// Package core implements FedCross, the paper's primary contribution: a
// multi-to-multi FL training scheme in which K middleware models are
// shuffle-dispatched to K clients each round, then pairwise fused by
// cross-aggregation (CrossAggr) with collaborative models chosen by one of
// three selection strategies (CoModelSel). The deployment model is the
// one-shot average of the middleware models (GlobalModelGen) and never
// trains. Two acceleration methods — propeller models and dynamic α —
// implement Section III-D.
package core

import (
	"fmt"
	"math"

	"fedcross/internal/nn"
)

// SimilarityFunc scores how aligned two parameter vectors are; higher
// means more similar. It drives the highest/lowest-similarity selection
// strategies.
type SimilarityFunc func(a, b nn.ParamVector) float64

// CosineSimilarity is the standard cosine: dot(a,b)/(‖a‖·‖b‖). The paper
// names cosine similarity as its measure; this is the default.
func CosineSimilarity(a, b nn.ParamVector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// PaperSimilarity is the formula as printed in the paper, which divides by
// the *sum* of norms rather than their product: dot(a,b)/(‖a‖+‖b‖).
// It is provided for fidelity; rankings usually agree with cosine because
// middleware-model norms stay close to each other (see DESIGN.md §5).
func PaperSimilarity(a, b nn.ParamVector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na+nb == 0 {
		return 0
	}
	return a.Dot(b) / (na + nb)
}

// EuclideanSimilarity is the negated L2 distance, the alternative measure
// the paper leaves as future work. Higher (less negative) means more
// similar.
func EuclideanSimilarity(a, b nn.ParamVector) float64 {
	return -math.Sqrt(a.DistanceSq(b))
}

// SimilarityByName resolves a measure for CLI flags.
func SimilarityByName(name string) (SimilarityFunc, error) {
	switch name {
	case "", "cosine":
		return CosineSimilarity, nil
	case "paper":
		return PaperSimilarity, nil
	case "euclidean":
		return EuclideanSimilarity, nil
	default:
		return nil, fmt.Errorf("core: unknown similarity measure %q (want cosine, paper or euclidean)", name)
	}
}
