// Package core implements FedCross, the paper's primary contribution: a
// multi-to-multi FL training scheme in which K middleware models are
// shuffle-dispatched to K clients each round, then pairwise fused by
// cross-aggregation (CrossAggr) with collaborative models chosen by one of
// three selection strategies (CoModelSel). The deployment model is the
// one-shot average of the middleware models (GlobalModelGen) and never
// trains. Two acceleration methods — propeller models and dynamic α —
// implement Section III-D.
package core

import (
	"fmt"
	"math"

	"fedcross/internal/nn"
)

// SimilarityFunc scores how aligned two parameter vectors are; higher
// means more similar. It drives the highest/lowest-similarity selection
// strategies.
type SimilarityFunc func(a, b nn.ParamVector) float64

// Measure couples a pairwise similarity with the fused form the
// Gram-matrix pass exploits. Pair is the direct scoring function and is
// never nil for a valid measure. FromDot, when non-nil, derives the same
// score from dot(a,b) and the cached squared norms ‖a‖², ‖b‖² — the
// contract is bit-identity with Pair (pinned by the gram tests), which
// holds because the nn reduction kernels accumulate in one fixed order
// whether fused or separate. Measures that need the full vectors
// (Euclidean distance) leave FromDot nil; the Gram pass then falls back
// to Pair per ordered pair, so arbitrary (even asymmetric) custom
// measures stay exact.
type Measure struct {
	// Name labels the measure in reports and CLI flags.
	Name string
	// Pair scores two vectors directly.
	Pair SimilarityFunc
	// FromDot maps (dot(a,b), ‖a‖², ‖b‖²) to Pair's score, or is nil.
	FromDot func(dot, aa, bb float64) float64
}

// CosineSimilarity is the standard cosine: dot(a,b)/(‖a‖·‖b‖). The paper
// names cosine similarity as its measure; this is the default. The fused
// DotNorms kernel makes it a single pass over both vectors.
func CosineSimilarity(a, b nn.ParamVector) float64 {
	return cosineFromDot(a.DotNorms(b))
}

func cosineFromDot(dot, aa, bb float64) float64 {
	na, nb := math.Sqrt(aa), math.Sqrt(bb)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// PaperSimilarity is the formula as printed in the paper, which divides by
// the *sum* of norms rather than their product: dot(a,b)/(‖a‖+‖b‖).
// It is provided for fidelity; rankings usually agree with cosine because
// middleware-model norms stay close to each other (see DESIGN.md §5).
func PaperSimilarity(a, b nn.ParamVector) float64 {
	return paperFromDot(a.DotNorms(b))
}

func paperFromDot(dot, aa, bb float64) float64 {
	na, nb := math.Sqrt(aa), math.Sqrt(bb)
	if na+nb == 0 {
		return 0
	}
	return dot / (na + nb)
}

// EuclideanSimilarity is the negated L2 distance, the alternative measure
// the paper leaves as future work. Higher (less negative) means more
// similar.
func EuclideanSimilarity(a, b nn.ParamVector) float64 {
	return -math.Sqrt(a.DistanceSq(b))
}

// CosineMeasure is the default measure (what the paper names).
func CosineMeasure() Measure {
	return Measure{Name: "cosine", Pair: CosineSimilarity, FromDot: cosineFromDot}
}

// PaperMeasure is the paper's printed sum-of-norms formula.
func PaperMeasure() Measure {
	return Measure{Name: "paper", Pair: PaperSimilarity, FromDot: paperFromDot}
}

// EuclideanMeasure is negated L2 distance. It has no FromDot form: the
// distance is accumulated elementwise over the difference vector, which a
// Gram product cannot reproduce bit-identically, so the matrix pass
// scores its pairs with Pair directly.
func EuclideanMeasure() Measure {
	return Measure{Name: "euclidean", Pair: EuclideanSimilarity}
}

// normalize is the single policy for incomplete measures: the fully zero
// Measure means "default to cosine", while a partially built one (FromDot
// or Name without Pair) is a caller bug — silently rescoring it with
// cosine would mislabel every result. Options.Validate, New and
// NewSimMatrix all defer to it.
func (m Measure) normalize() (Measure, error) {
	if m.Pair != nil {
		return m, nil
	}
	if m.FromDot != nil || m.Name != "" {
		return Measure{}, fmt.Errorf("core: similarity measure %q has no Pair function", m.Name)
	}
	return CosineMeasure(), nil
}

// SimilarityByName resolves a measure for CLI flags.
func SimilarityByName(name string) (Measure, error) {
	switch name {
	case "", "cosine":
		return CosineMeasure(), nil
	case "paper":
		return PaperMeasure(), nil
	case "euclidean":
		return EuclideanMeasure(), nil
	default:
		return Measure{}, fmt.Errorf("core: unknown similarity measure %q (want cosine, paper or euclidean)", name)
	}
}
