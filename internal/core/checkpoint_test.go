package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
)

func checkpointEnv(t *testing.T) *fl.Env {
	t.Helper()
	cfg := data.VisionConfig{
		Classes: 3, Features: 8,
		TrainPerClass: 20, TestPerClass: 10,
		ModesPerClass: 1, Sep: 1.2, Noise: 0.3, Seed: 1,
	}
	fed := data.BuildVision(cfg, 4, data.Heterogeneity{IID: true}, 2)
	return &fl.Env{Fed: fed, Model: models.MLP(8, 6, 3)}
}

func trainedFedCross(t *testing.T, env *fl.Env) *FedCross {
	t.Helper()
	algo := MustNew(DefaultOptions())
	cfg := fl.Config{Rounds: 3, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0, Seed: 1}
	if _, err := fl.Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	return algo
}

func TestCheckpointRoundTrip(t *testing.T) {
	env := checkpointEnv(t)
	algo := trainedFedCross(t, env)

	var buf bytes.Buffer
	if err := algo.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := MustNew(DefaultOptions())
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	orig := algo.Middleware()
	back := restored.Middleware()
	if len(orig) != len(back) {
		t.Fatalf("middleware count %d vs %d", len(orig), len(back))
	}
	for i := range orig {
		if orig[i].DistanceSq(back[i]) != 0 {
			t.Fatalf("middleware %d differs after round trip", i)
		}
	}
	// The asynchronous deployment path: GlobalModelGen on the restored
	// state matches the live one.
	g1, g2 := algo.Global(), restored.Global()
	if g1.DistanceSq(g2) != 0 {
		t.Fatal("global model differs after checkpoint restore")
	}
}

func TestCheckpointErrors(t *testing.T) {
	fresh := MustNew(DefaultOptions())
	var buf bytes.Buffer
	if err := fresh.Save(&buf); err == nil {
		t.Fatal("Save before Init must error")
	}

	env := checkpointEnv(t)
	algo := trainedFedCross(t, env)
	if err := algo.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Truncated stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := MustNew(DefaultOptions()).Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
	// Corrupt magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xFF
	if err := MustNew(DefaultOptions()).Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must error")
	}
	// Empty stream.
	if err := MustNew(DefaultOptions()).Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty checkpoint must error")
	}
}

// checkpointHeader builds a raw 16-byte header with the given counts.
func checkpointHeader(magic, k uint32, n uint64) []byte {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], k)
	binary.LittleEndian.PutUint64(hdr[8:], n)
	return hdr
}

// TestLoadRejectsHostileHeaders is the regression test for the unbounded
// header-driven allocation: Load used to accept n up to 2³⁴ and allocate
// 8·n bytes before reading any payload, so a 20-byte stream could demand
// multiple GiB. Every hostile header must be rejected from the 16 header
// bytes alone.
func TestLoadRejectsHostileHeaders(t *testing.T) {
	cases := []struct {
		name string
		hdr  []byte
	}{
		{"huge-n", checkpointHeader(checkpointMagic, 2, 1<<34)},
		{"max-uint64-n", checkpointHeader(checkpointMagic, 2, ^uint64(0))},
		{"zero-n", checkpointHeader(checkpointMagic, 2, 0)},
		{"huge-k", checkpointHeader(checkpointMagic, 1<<31, 16)},
		{"one-model", checkpointHeader(checkpointMagic, 1, 16)},
		{"product-over-cap", checkpointHeader(checkpointMagic, 1<<16, 1<<26)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := MustNew(DefaultOptions())
			if err := f.Load(bytes.NewReader(c.hdr)); err == nil {
				t.Fatalf("hostile header %q must be rejected", c.name)
			}
			if f.middleware != nil {
				t.Fatal("failed Load must not install partial state")
			}
		})
	}
}

// TestLoadTruncatedAfterPlausibleHeader checks that a header passing
// validation but followed by a short payload fails with bounded work —
// the chunked reader stops at the actual stream end.
func TestLoadTruncatedAfterPlausibleHeader(t *testing.T) {
	raw := append(checkpointHeader(checkpointMagic, 8, 1<<20), make([]byte, 4096)...)
	if err := MustNew(DefaultOptions()).Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestCheckpointResumeTraining(t *testing.T) {
	// A restored instance can continue training where the original left
	// off (new rounds work against the loaded middleware list).
	env := checkpointEnv(t)
	algo := trainedFedCross(t, env)
	var buf bytes.Buffer
	if err := algo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := MustNew(DefaultOptions())
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Re-init runtime wiring, then overwrite middleware with the
	// checkpoint (Init resets middleware, so load afterwards).
	cfg := fl.Config{Rounds: 1, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0, Seed: 9}
	if _, err := fl.Run(restored, env, cfg); err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := restored.Round(0, []int{0, 1, 2}); err != nil {
		t.Fatalf("resumed round failed: %v", err)
	}
	if restored.Global().DistanceSq(algo.Global()) == 0 {
		t.Fatal("resumed training should move the global model")
	}
}

func TestDisableShuffleAblation(t *testing.T) {
	// With shuffle disabled and a pinned selection, middleware model i
	// always trains on the same client — verify determinism of the
	// assignment by checking two no-shuffle runs agree exactly while a
	// shuffled run differs.
	env := checkpointEnv(t)
	cfg := fl.Config{Rounds: 3, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0, Seed: 4}

	run := func(disable bool, seed int64) fl.History {
		opts := DefaultOptions()
		opts.DisableShuffle = disable
		algo := MustNew(opts)
		c := cfg
		c.Seed = seed
		hist, err := fl.Run(algo, env, c)
		if err != nil {
			t.Fatal(err)
		}
		return *hist
	}
	a := run(true, 4)
	b := run(true, 4)
	if a.Final().TestAcc != b.Final().TestAcc {
		t.Fatal("no-shuffle runs with equal seeds must agree")
	}
}
