package core

import (
	"bytes"
	"testing"

	"fedcross/internal/fl"
)

// TestCheckpointRoundTripPerCodec pins that checkpointing composes with
// every wire codec: a FedCross run whose middleware state was shaped by a
// lossy transport must Save and Load bit-exactly — the checkpoint always
// captures the server's (wire-visible) state, whatever the codec did to
// the payloads along the way.
func TestCheckpointRoundTripPerCodec(t *testing.T) {
	for _, codec := range []string{"identity", "fp16", "int8", "topk"} {
		t.Run(codec, func(t *testing.T) {
			env := checkpointEnv(t)
			algo := MustNew(DefaultOptions())
			cfg := fl.Config{
				Rounds: 2, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 8,
				LR: 0.05, Momentum: 0, Seed: 1,
				Transport: fl.TransportOptions{Codec: codec},
			}
			if _, err := fl.Run(algo, env, cfg); err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := algo.Save(&buf); err != nil {
				t.Fatal(err)
			}
			restored := MustNew(DefaultOptions())
			if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			orig, back := algo.Middleware(), restored.Middleware()
			if len(orig) != len(back) {
				t.Fatalf("middleware count %d vs %d", len(orig), len(back))
			}
			for i := range orig {
				if orig[i].DistanceSq(back[i]) != 0 {
					t.Fatalf("codec %s: middleware %d differs after checkpoint round trip", codec, i)
				}
			}
			if algo.Global().DistanceSq(restored.Global()) != 0 {
				t.Fatalf("codec %s: global model differs after restore", codec)
			}
		})
	}
}
