package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedcross/internal/nn"
)

// Checkpointing lets a FedCross deployment persist the middleware-model
// list between rounds. The paper notes that global-model generation "can
// be performed asynchronously at any time"; a checkpoint is exactly the
// state that makes that possible — an external process can load it and
// call GlobalModelGen without touching training.
//
// Wire format (little endian):
//
//	magic  uint32 = 0x46435253 ("FCRS")
//	k      uint32 — number of middleware models
//	n      uint64 — parameters per model
//	k × n  float64 bits

const checkpointMagic = 0x46435253

// Load hardening limits. The header is untrusted input: k and n must be
// validated (including their product) before any payload-sized allocation,
// or a 20-byte stream could demand a multi-GiB buffer.
const (
	// maxCheckpointModels caps the middleware-model count k.
	maxCheckpointModels = 1 << 16
	// maxCheckpointParams caps the per-model parameter count n.
	maxCheckpointParams = 1 << 27
	// maxCheckpointBytes caps the total declared payload k·n·8.
	maxCheckpointBytes = 1 << 31
	// loadChunkBytes bounds the read granularity so allocation grows with
	// bytes actually present on the stream.
	loadChunkBytes = 1 << 20
)

// Save serialises the middleware models to w. It enforces the same
// limits as Load, so every checkpoint Save emits is guaranteed to be
// restorable — oversized state fails at save time, not at restore time.
func (f *FedCross) Save(w io.Writer) error {
	if len(f.middleware) == 0 {
		return fmt.Errorf("core: Save: FedCross not initialised")
	}
	n := len(f.middleware[0])
	if k := len(f.middleware); k > maxCheckpointModels {
		return fmt.Errorf("core: Save: %d middleware models exceed the checkpoint limit %d", k, maxCheckpointModels)
	}
	if n == 0 || n > maxCheckpointParams {
		return fmt.Errorf("core: Save: %d params per model outside the checkpoint limit (1, %d]", n, maxCheckpointParams)
	}
	if int64(len(f.middleware))*int64(n)*8 > maxCheckpointBytes {
		return fmt.Errorf("core: Save: %d×%d params exceed the %d-byte checkpoint cap", len(f.middleware), n, int64(maxCheckpointBytes))
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(f.middleware)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("core: Save header: %w", err)
	}
	buf := make([]byte, 8*n)
	for i, m := range f.middleware {
		if len(m) != n {
			return fmt.Errorf("core: Save: middleware %d has %d params, want %d", i, len(m), n)
		}
		for j, v := range m {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("core: Save model %d: %w", i, err)
		}
	}
	return nil
}

// Load restores a middleware list written by Save, replacing any current
// state. The instance must have compatible options (Load does not check
// architecture compatibility — loading into a run with a different model
// factory will surface as a LoadParams error on the next round).
func (f *FedCross) Load(r io.Reader) error {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("core: Load header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != checkpointMagic {
		return fmt.Errorf("core: Load: bad magic %#x", got)
	}
	k := int(binary.LittleEndian.Uint32(hdr[4:]))
	nRaw := binary.LittleEndian.Uint64(hdr[8:])
	if k < 2 || k > maxCheckpointModels {
		return fmt.Errorf("core: Load: implausible middleware count %d", k)
	}
	if nRaw == 0 || nRaw > maxCheckpointParams {
		return fmt.Errorf("core: Load: implausible parameter count %d", nRaw)
	}
	n := int(nRaw)
	// k ≤ 2¹⁶ and n ≤ 2²⁷, so k·n·8 cannot overflow int64; cap the total.
	if int64(k)*int64(n)*8 > maxCheckpointBytes {
		return fmt.Errorf("core: Load: declared payload %d×%d params exceeds %d-byte cap", k, n, int64(maxCheckpointBytes))
	}
	mid := make([]nn.ParamVector, k)
	buf := make([]byte, min(8*n, loadChunkBytes))
	for i := range mid {
		// Decode in bounded chunks, growing the vector as bytes actually
		// arrive: a truncated or lying stream fails having allocated at
		// most one chunk beyond the data received.
		v := make(nn.ParamVector, 0, min(n, loadChunkBytes/8))
		for len(v) < n {
			want := 8 * (n - len(v))
			if want > len(buf) {
				want = len(buf)
			}
			if _, err := io.ReadFull(r, buf[:want]); err != nil {
				return fmt.Errorf("core: Load model %d: %w", i, err)
			}
			for off := 0; off < want; off += 8 {
				v = append(v, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			}
		}
		mid[i] = v
	}
	f.middleware = mid
	return nil
}

// SaveState implements fl.RoundCheckpointer: the middleware list in the
// standalone checkpoint format, followed by the algorithm RNG's (seed,
// position) snapshot. The spare/upload/recv buffers are per-round
// scratch and rebuilt on the first resumed round.
func (f *FedCross) SaveState(w io.Writer) error {
	if err := f.Save(w); err != nil {
		return err
	}
	return nn.WriteRNG(w, f.rng)
}

// LoadState implements fl.RoundCheckpointer. Init has already run (it
// precedes any resume), so options and buffers are in place; Load
// replaces the middleware wholesale and the restored RNG resumes the
// shuffle/split stream at its checkpointed position.
func (f *FedCross) LoadState(r io.Reader) error {
	if err := f.Load(r); err != nil {
		return err
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("core: LoadState rng: %w", err)
	}
	f.rng = rng
	f.spare = nil
	return nil
}
