package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedcross/internal/nn"
)

// Checkpointing lets a FedCross deployment persist the middleware-model
// list between rounds. The paper notes that global-model generation "can
// be performed asynchronously at any time"; a checkpoint is exactly the
// state that makes that possible — an external process can load it and
// call GlobalModelGen without touching training.
//
// Wire format (little endian):
//
//	magic  uint32 = 0x46435253 ("FCRS")
//	k      uint32 — number of middleware models
//	n      uint64 — parameters per model
//	k × n  float64 bits

const checkpointMagic = 0x46435253

// Save serialises the middleware models to w.
func (f *FedCross) Save(w io.Writer) error {
	if len(f.middleware) == 0 {
		return fmt.Errorf("core: Save: FedCross not initialised")
	}
	n := len(f.middleware[0])
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(f.middleware)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("core: Save header: %w", err)
	}
	buf := make([]byte, 8*n)
	for i, m := range f.middleware {
		if len(m) != n {
			return fmt.Errorf("core: Save: middleware %d has %d params, want %d", i, len(m), n)
		}
		for j, v := range m {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("core: Save model %d: %w", i, err)
		}
	}
	return nil
}

// Load restores a middleware list written by Save, replacing any current
// state. The instance must have compatible options (Load does not check
// architecture compatibility — loading into a run with a different model
// factory will surface as a LoadParams error on the next round).
func (f *FedCross) Load(r io.Reader) error {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("core: Load header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != checkpointMagic {
		return fmt.Errorf("core: Load: bad magic %#x", got)
	}
	k := int(binary.LittleEndian.Uint32(hdr[4:]))
	n := int(binary.LittleEndian.Uint64(hdr[8:]))
	if k < 2 || k > 1<<20 {
		return fmt.Errorf("core: Load: implausible middleware count %d", k)
	}
	if n <= 0 || n > 1<<34 {
		return fmt.Errorf("core: Load: implausible parameter count %d", n)
	}
	mid := make([]nn.ParamVector, k)
	buf := make([]byte, 8*n)
	for i := range mid {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("core: Load model %d: %w", i, err)
		}
		v := make(nn.ParamVector, n)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		mid[i] = v
	}
	f.middleware = mid
	return nil
}
