package core

import (
	"math"
	"reflect"
	"testing"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func krumUploads(rng *tensor.RNG, k, n int) []nn.ParamVector {
	ups := make([]nn.ParamVector, k)
	for i := range ups {
		v := make(nn.ParamVector, n)
		for j := range v {
			v[j] = rng.Normal(0, 1)
		}
		ups[i] = v
	}
	return ups
}

// TestKrumSelectsHonestModel: with f outliers far from a tight honest
// cluster, Krum returns one of the honest uploads.
func TestKrumSelectsHonestModel(t *testing.T) {
	rng := tensor.NewRNG(1)
	const k, f, n = 9, 3, 40
	center := krumUploads(rng, 1, n)[0]
	ups := make([]nn.ParamVector, k)
	for i := range ups {
		v := make(nn.ParamVector, n)
		for j := range v {
			if i < f {
				v[j] = 500 + rng.Normal(0, 1) // far colluding-ish outliers
			} else {
				v[j] = center[j] + rng.Normal(0, 0.05)
			}
		}
		ups[i] = v
	}
	r := &KrumReducer{F: f}
	out, err := fl.ReduceUploads(r, ups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("output length %d", len(out))
	}
	if d := math.Sqrt(out.DistanceSq(center)); d > 1 {
		t.Fatalf("krum picked a vector %v away from the honest cluster", d)
	}
	// The winner is an exact copy of one honest upload, not a blend.
	match := false
	for _, u := range ups[f:] {
		if reflect.DeepEqual(out, u) {
			match = true
			break
		}
	}
	if !match {
		t.Fatal("classic krum must return one of the honest uploads verbatim")
	}
	// And it must be a fresh vector, never an alias into the inputs.
	for _, u := range ups {
		if len(u) > 0 && len(out) > 0 && &u[0] == &out[0] {
			t.Fatal("krum must clone the winner, not alias it")
		}
	}
}

// TestMultiKrumAveragesSelection: Multi-Krum with M honest-sized
// selection recovers (approximately) the honest centroid and beats the
// mean under the same attack.
func TestMultiKrumAveragesSelection(t *testing.T) {
	rng := tensor.NewRNG(2)
	const k, f, n = 11, 4, 32
	centroid := make(nn.ParamVector, n)
	ups := make([]nn.ParamVector, k)
	for i := range ups {
		v := make(nn.ParamVector, n)
		for j := range v {
			if i < f {
				v[j] = -300
			} else {
				v[j] = 1 + rng.Normal(0, 0.02)
			}
		}
		ups[i] = v
	}
	for j := range centroid {
		centroid[j] = 1
	}
	robust, err := fl.ReduceUploads(&KrumReducer{F: f, Multi: true}, ups, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := fl.ReduceUploads(nil, ups, nil)
	if err != nil {
		t.Fatal(err)
	}
	dR := math.Sqrt(robust.DistanceSq(centroid))
	dM := math.Sqrt(mean.DistanceSq(centroid))
	if dR > 0.5 {
		t.Fatalf("multikrum distance to honest centroid %v", dR)
	}
	if dM < 100*dR {
		t.Fatalf("mean should be far off under attack: mean %v vs multikrum %v", dM, dR)
	}
}

// TestKrumWorkerCountInvariance: the distance matrix fans out, so the
// result must be bit-identical at every worker cap.
func TestKrumWorkerCountInvariance(t *testing.T) {
	rng := tensor.NewRNG(3)
	ups := krumUploads(rng, 10, 600)
	ws := make([]float64, len(ups))
	for i := range ws {
		ws[i] = float64(1 + i)
	}
	for _, multi := range []bool{false, true} {
		serial := &KrumReducer{Multi: multi, W: fl.Limit(1)}
		wide := &KrumReducer{Multi: multi, W: fl.Limit(8)}
		a, err := fl.ReduceUploads(serial, ups, ws)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fl.ReduceUploads(wide, ups, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("multi=%v: workers=1 vs 8 differ", multi)
		}
	}
}

// TestKrumSmallCohorts: below 3 uploads Krum degrades to the mean
// instead of panicking (NewSimMatrix requires k ≥ 2, the window k−f−2
// requires k ≥ 3).
func TestKrumSmallCohorts(t *testing.T) {
	rng := tensor.NewRNG(4)
	for k := 1; k <= 2; k++ {
		ups := krumUploads(rng, k, 8)
		got, err := fl.ReduceUploads(&KrumReducer{}, ups, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fl.ReduceUploads(nil, ups, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: krum fallback must equal the mean", k)
		}
	}
}

func TestCoreReducerByName(t *testing.T) {
	for name, want := range map[string]string{
		"krum":          "krum",
		"krum:2":        "krum:2",
		"multikrum":     "multikrum",
		"multikrum:5":   "multikrum:5",
		"multikrum:2:6": "multikrum:2:6",
		"mean":          "mean",
		"median":        "median",
		"trimmed:0.3":   "trimmed:0.30",
	} {
		r, err := ReducerByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if r.Name() != want {
			t.Fatalf("%q resolved to %q, want %q", name, r.Name(), want)
		}
	}
	for _, bad := range []string{"krum:x", "krum:-1", "krum:1:2", "multikrum:1:2:3", "multikrum:y", "bogus"} {
		if _, err := ReducerByName(bad); err == nil {
			t.Fatalf("%q should not resolve", bad)
		}
	}
}

// FuzzKrum: arbitrary cohort sizes, dimensions and bit patterns must
// never panic, and successful reductions match the model dimension.
func FuzzKrum(f *testing.F) {
	f.Add(uint8(5), uint8(10), int64(1), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(1), int64(2), uint8(1), uint8(2))
	f.Add(uint8(16), uint8(64), int64(3), uint8(4), uint8(9))
	f.Fuzz(func(t *testing.T, kRaw, nRaw uint8, seed int64, fRaw, mRaw uint8) {
		k := 1 + int(kRaw)%16
		n := 1 + int(nRaw)%96
		rng := tensor.NewRNG(seed)
		ups := krumUploads(rng, k, n)
		if seed%3 == 0 && k > 1 {
			ups[0][0] = math.NaN() // exercise the non-finite screen
		}
		for _, r := range []fl.Reducer{
			&KrumReducer{F: int(fRaw) % 8},
			&KrumReducer{Multi: true, F: int(fRaw) % 8, M: int(mRaw) % 8},
		} {
			out, err := fl.ReduceUploads(r, ups, nil)
			if err != nil {
				continue
			}
			if len(out) != n {
				t.Fatalf("%s: output length %d, want %d", r.Name(), len(out), n)
			}
			for _, x := range out {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%s: non-finite aggregate", r.Name())
				}
			}
		}
	})
}
