package core

import (
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
)

func integrationEnv(seed int64, clients int, het data.Heterogeneity) *fl.Env {
	cfg := data.VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 50, TestPerClass: 20,
		ModesPerClass: 2, Sep: 1.2, Noise: 0.35, Seed: seed,
	}
	fed := data.BuildVision(cfg, clients, het, seed+1)
	return &fl.Env{Fed: fed, Model: models.MLP(12, 16, 4)}
}

func runCfg(rounds int) fl.Config {
	return fl.Config{
		Rounds: rounds, ClientsPerRound: 4, LocalEpochs: 2, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 0, Seed: 3,
	}
}

func TestFedCrossEndToEndImproves(t *testing.T) {
	env := integrationEnv(1, 8, data.Heterogeneity{Beta: 0.5})
	algo := MustNew(DefaultOptions())
	hist, err := fl.Run(algo, env, runCfg(12))
	if err != nil {
		t.Fatal(err)
	}
	final := hist.Final()
	if final.TestAcc < 0.4 {
		t.Fatalf("FedCross final accuracy %v; expected clearly above 25%% chance", final.TestAcc)
	}
	if hist.Comm.ModelsDown != 12*4 || hist.Comm.VarsDown != 0 || hist.Comm.GeneratorsDown != 0 {
		t.Fatalf("comm profile %+v; FedCross must match FedAvg's 2K models", hist.Comm)
	}
}

func TestFedCrossAllStrategiesRun(t *testing.T) {
	for _, s := range []Strategy{InOrder, HighestSimilarity, LowestSimilarity} {
		opts := DefaultOptions()
		opts.Strategy = s
		env := integrationEnv(2, 6, data.Heterogeneity{Beta: 1.0})
		hist, err := fl.Run(MustNew(opts), env, runCfg(4))
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if hist.Final().TestAcc <= 0 {
			t.Fatalf("strategy %v produced zero accuracy", s)
		}
	}
}

func TestFedCrossAccelerationModesRun(t *testing.T) {
	for _, m := range []AccelMode{AccelPropeller, AccelDynamicAlpha, AccelBoth} {
		opts := DefaultOptions()
		opts.Accel = m
		opts.AccelRounds = 4
		opts.PropellerCount = 2
		env := integrationEnv(3, 6, data.Heterogeneity{IID: true})
		hist, err := fl.Run(MustNew(opts), env, runCfg(6))
		if err != nil {
			t.Fatalf("accel %v: %v", m, err)
		}
		if hist.Final().TestAcc <= 0 {
			t.Fatalf("accel %v produced zero accuracy", m)
		}
	}
}

func TestFedCrossToleratesDropout(t *testing.T) {
	env := integrationEnv(4, 8, data.Heterogeneity{Beta: 0.5})
	cfg := runCfg(6)
	cfg.DropoutRate = 0.4
	hist, err := fl.Run(MustNew(DefaultOptions()), env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().TestAcc <= 0 {
		t.Fatal("dropout run produced zero accuracy")
	}
}

func TestFedCrossMiddlewareConverge(t *testing.T) {
	// The cross-aggregation restricts weight differences, so middleware
	// models should grow more similar over training (the paper's
	// "eventually become similar" claim).
	env := integrationEnv(5, 6, data.Heterogeneity{IID: true})
	algo := MustNew(DefaultOptions())
	cfg := runCfg(2)
	if _, err := fl.Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	early := middlewareSpread(algo)

	algo2 := MustNew(DefaultOptions())
	cfg2 := runCfg(16)
	if _, err := fl.Run(algo2, env, cfg2); err != nil {
		t.Fatal(err)
	}
	late := middlewareSpread(algo2)
	if late >= early {
		t.Fatalf("middleware spread should shrink with training: %v (2 rounds) vs %v (16 rounds)", early, late)
	}
}

// middlewareSpread is the mean distance of middleware models from their
// average.
func middlewareSpread(f *FedCross) float64 {
	mid := f.Middleware()
	mean := GlobalModelGen(mid)
	s := 0.0
	for _, m := range mid {
		s += m.DistanceSq(mean)
	}
	return s / float64(len(mid))
}

func TestFedCrossNeedsTwoClients(t *testing.T) {
	env := integrationEnv(6, 1, data.Heterogeneity{IID: true})
	cfg := runCfg(2)
	cfg.ClientsPerRound = 1
	if _, err := fl.Run(MustNew(DefaultOptions()), env, cfg); err == nil {
		t.Fatal("expected error with a single client")
	}
}

func TestFedCrossName(t *testing.T) {
	if MustNew(DefaultOptions()).Name() != "fedcross" {
		t.Fatal("vanilla name")
	}
	o := DefaultOptions()
	o.Accel = AccelBoth
	o.AccelRounds = 2
	if MustNew(o).Name() != "fedcross+pm-da" {
		t.Fatal("accelerated name")
	}
	if MustNew(DefaultOptions()).Category() != "Multi-Model Guided" {
		t.Fatal("category")
	}
}
