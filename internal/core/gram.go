package core

import (
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
)

// SimMatrix caches the K×K pairwise similarity scores of one round's
// uploads, so CoModelSel's per-model scans read precomputed cells instead
// of re-walking full parameter vectors — Algorithm 1 consults the scores
// K times per round, and the naive loop recomputed every pair twice.
//
// Invalidation rule: a SimMatrix (and the per-upload norm cache built
// while filling it) is valid only for the exact upload list it was built
// from. Uploads are frozen between training and aggregation, so FedCross
// builds the matrix once per round inside aggregate and drops it before
// anything can mutate a vector; holding one across rounds is a bug.
type SimMatrix struct {
	// K is the number of uploads.
	K int
	// s is the row-major K×K score matrix; the diagonal is unused (a
	// model never collaborates with itself).
	s []float64
}

// At returns the similarity of uploads i and j.
func (m *SimMatrix) At(i, j int) float64 { return m.s[i*m.K+j] }

// NewSimMatrix scores every pair of uploads under measure m, in parallel
// across the allowance w (fl.Workers{} means every core, unbudgeted; a
// budget leases the fan-out from the pool shared with concurrent runs). For measures with a FromDot form the
// pass is fused and norm-cached: K squared norms are computed once, then
// each unordered pair costs a single dot product — cells are bit-identical
// to m.Pair (the nn kernels accumulate in one fixed order whether fused or
// separate). Measures without FromDot are scored with m.Pair per ordered
// pair, preserving exactness for asymmetric custom measures. Every cell is
// a pure function of its pair, so the result is independent of workers and
// scheduling.
func NewSimMatrix(w []nn.ParamVector, m Measure, wk fl.Workers) *SimMatrix {
	k := len(w)
	if k < 2 {
		panic(fmt.Sprintf("core: NewSimMatrix requires at least 2 models, got %d", k))
	}
	norm, err := m.normalize()
	if err != nil {
		panic(err.Error())
	}
	m = norm
	sm := &SimMatrix{K: k, s: make([]float64, k*k)}
	if m.FromDot != nil {
		normsSq := make([]float64, k)
		fl.ParallelForW(k, wk, func(i int) { normsSq[i] = w[i].NormSq() })
		fl.ParallelForW(k*(k-1)/2, wk, func(p int) {
			i, j := pairIndex(p, k)
			s := m.FromDot(w[i].Dot(w[j]), normsSq[i], normsSq[j])
			sm.s[i*k+j], sm.s[j*k+i] = s, s
		})
		return sm
	}
	fl.ParallelForW(k*k, wk, func(p int) {
		i, j := p/k, p%k
		if i != j {
			sm.s[p] = m.Pair(w[i], w[j])
		}
	})
	return sm
}

// pairIndex maps a flat index p in [0, k(k-1)/2) to the pair (i, j) with
// i < j, enumerating the strict upper triangle row by row.
func pairIndex(p, k int) (int, int) {
	i := 0
	for p >= k-1-i {
		p -= k - 1 - i
		i++
	}
	return i, i + 1 + p
}

// CoModelSelMatrix is CoModelSel reading scores from a precomputed
// similarity matrix. The scan order and tie-breaking (first best in
// ascending j) are identical to the naive loop, so given a matrix whose
// cells equal the pairwise scores, the selection is identical too —
// including NaN cells, which can never displace an earlier best.
func CoModelSelMatrix(strategy Strategy, i, r int, m *SimMatrix) int {
	k := m.K
	if i < 0 || i >= k {
		panic(fmt.Sprintf("core: CoModelSelMatrix index %d out of range [0,%d)", i, k))
	}
	switch strategy {
	case InOrder:
		return (i + (r%(k-1) + 1)) % k
	case HighestSimilarity, LowestSimilarity:
		best := -1
		var bestScore float64
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			s := m.At(i, j)
			if best == -1 ||
				(strategy == HighestSimilarity && s > bestScore) ||
				(strategy == LowestSimilarity && s < bestScore) {
				best, bestScore = j, s
			}
		}
		return best
	default:
		panic(fmt.Sprintf("core: unknown strategy %v", strategy))
	}
}
