package core

import (
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// AccelMode selects a Section III-D training-acceleration method.
type AccelMode int

const (
	// AccelNone runs vanilla FedCross.
	AccelNone AccelMode = iota
	// AccelPropeller aggregates each middleware model with several
	// in-order "propeller" models during the acceleration window
	// ("FedCross w/ PM").
	AccelPropeller
	// AccelDynamicAlpha ramps α from DynAlphaStart up to Alpha across the
	// acceleration window ("FedCross w/ DA").
	AccelDynamicAlpha
	// AccelBoth uses propeller models for the first half of the window and
	// dynamic α for the second half ("FedCross w/ PM-DA").
	AccelBoth
)

// String returns the mode's report name.
func (m AccelMode) String() string {
	switch m {
	case AccelNone:
		return "vanilla"
	case AccelPropeller:
		return "pm"
	case AccelDynamicAlpha:
		return "da"
	case AccelBoth:
		return "pm-da"
	default:
		return fmt.Sprintf("accel(%d)", int(m))
	}
}

// Options configures FedCross. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Alpha is the cross-aggregation weight of the model's own update;
	// the paper requires α ∈ [0.5, 1) and recommends 0.99.
	Alpha float64
	// Strategy picks the collaborative model (paper default: lowest
	// similarity).
	Strategy Strategy
	// Similarity is the measure behind the similarity strategies
	// (default cosine).
	Similarity Measure
	// Accel selects a training-acceleration method.
	Accel AccelMode
	// AccelRounds is the acceleration window length (rounds).
	AccelRounds int
	// PropellerCount is how many in-order propeller models each
	// middleware model learns from during AccelPropeller.
	PropellerCount int
	// DynAlphaStart is the initial α of the dynamic-α ramp.
	DynAlphaStart float64
	// DisableShuffle turns off Algorithm 1's Shuffle(Lc) step, pinning
	// middleware model i to selected client slot i. The paper keeps the
	// shuffle because without it "each middleware model will be dispatched
	// to the clients encountered in the previous training rounds with a
	// high probability"; this switch exists for the ablation that
	// quantifies that claim.
	DisableShuffle bool
}

// DefaultOptions mirrors the paper's recommended setting: α = 0.99 with
// the lowest-similarity strategy, no acceleration.
func DefaultOptions() Options {
	return Options{
		Alpha:          0.99,
		Strategy:       LowestSimilarity,
		Similarity:     CosineMeasure(),
		Accel:          AccelNone,
		AccelRounds:    100,
		PropellerCount: 3,
		DynAlphaStart:  0.5,
	}
}

// Validate reports the first problem with the options.
func (o Options) Validate() error {
	if _, err := o.Similarity.normalize(); err != nil {
		return err
	}
	switch {
	case o.Alpha < 0.5 || o.Alpha >= 1:
		return fmt.Errorf("core: alpha %v out of the paper's range [0.5, 1)", o.Alpha)
	case o.Strategy != InOrder && o.Strategy != HighestSimilarity && o.Strategy != LowestSimilarity:
		return fmt.Errorf("core: unknown strategy %d", int(o.Strategy))
	case o.Accel < AccelNone || o.Accel > AccelBoth:
		return fmt.Errorf("core: unknown acceleration mode %d", int(o.Accel))
	case o.Accel != AccelNone && o.AccelRounds <= 0:
		return fmt.Errorf("core: acceleration needs AccelRounds > 0, got %d", o.AccelRounds)
	case (o.Accel == AccelPropeller || o.Accel == AccelBoth) && o.PropellerCount < 1:
		return fmt.Errorf("core: propeller acceleration needs PropellerCount >= 1, got %d", o.PropellerCount)
	case (o.Accel == AccelDynamicAlpha || o.Accel == AccelBoth) && (o.DynAlphaStart < 0.5 || o.DynAlphaStart > o.Alpha):
		return fmt.Errorf("core: DynAlphaStart %v must lie in [0.5, alpha=%v]", o.DynAlphaStart, o.Alpha)
	}
	return nil
}

// FedCross is the multi-model cross-aggregation algorithm. It satisfies
// fl.Algorithm (and fl.TransportUser: middleware dispatches and uploads
// cross the simulated wire).
type FedCross struct {
	opts Options

	fl.Wire
	env *fl.Env
	cfg fl.Config
	rng *tensor.RNG

	// middleware holds the K middleware-model parameter vectors W.
	middleware []nn.ParamVector
	// spare is the previous round's middleware storage, recycled as the
	// destination of the next cross-aggregation so steady-state rounds
	// allocate no parameter-sized buffers.
	spare []nn.ParamVector
	// uploadBuf holds K recycled destination vectors that TrainAll
	// flattens trained parameters into (LocalSpec.Out), replacing the
	// per-job result allocation. The buffers are only read during the
	// same round's aggregation, so reusing them every round is safe.
	uploadBuf []nn.ParamVector
	// recvBuf holds K recycled destinations for the wire-decoded
	// middleware dispatches when the codec is lossy (the pass-through
	// wire never touches them). recvBuf[i] is valid for one round: it is
	// the slot's training init and the delta reference its upload is
	// encoded against, and the next round's dispatch overwrites it.
	recvBuf []nn.ParamVector
	// recvView[i] is what slot i's client received this round —
	// recvBuf[i] under a lossy codec, the middleware vector itself on the
	// pass-through wire.
	recvView []nn.ParamVector
	// props is the reusable propeller-model scratch list.
	props []nn.ParamVector
}

// New constructs a FedCross instance with the given options.
func New(opts Options) (*FedCross, error) {
	sim, err := opts.Similarity.normalize()
	if err != nil {
		return nil, err
	}
	opts.Similarity = sim
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &FedCross{opts: opts}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(opts Options) *FedCross {
	f, err := New(opts)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements fl.Algorithm.
func (f *FedCross) Name() string {
	if f.opts.Accel == AccelNone {
		return "fedcross"
	}
	return "fedcross+" + f.opts.Accel.String()
}

// Category implements fl.Algorithm (Table I's taxonomy).
func (f *FedCross) Category() string { return "Multi-Model Guided" }

// Init creates the K middleware models. All K start from one shared
// random initialisation (FedCross is "implemented on top of vanilla
// FedAvg", whose global model is cloned to every participant): averaging
// independently initialised networks is meaningless under permutation
// symmetry, so a shared starting point is what makes GlobalModelGen's
// one-shot average coherent. The models then diverge only through local
// training, and cross-aggregation bounds how far apart they drift.
func (f *FedCross) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	f.env, f.cfg, f.rng = env, cfg, rng
	k := cfg.ClientsPerRound
	if k > env.NumClients() {
		k = env.NumClients()
	}
	if k < 2 {
		return fmt.Errorf("core: FedCross needs at least 2 clients per round, got %d", k)
	}
	init := nn.FlattenParams(env.Model.New(rng.Split()).Params())
	f.middleware = make([]nn.ParamVector, k)
	for i := range f.middleware {
		f.middleware[i] = init.Clone()
	}
	f.spare = nil
	return nil
}

// Round implements Algorithm 1's training loop body: shuffle the
// model-to-client assignment, train each middleware model on its client,
// then cross-aggregate every upload with its collaborative model.
func (f *FedCross) Round(r int, selected []int) error {
	k := len(f.middleware)
	if len(selected) < k {
		return fmt.Errorf("core: FedCross round %d: %d selected clients for %d middleware models", r, len(selected), k)
	}
	// Shuffle(Lc): randomise which client trains which middleware model so
	// each model sees different data across rounds even if selection
	// repeats. The ablation switch pins the identity assignment instead.
	var assign []int
	if f.opts.DisableShuffle {
		assign = make([]int, k)
		for i := range assign {
			assign[i] = i
		}
	} else {
		assign = f.rng.Perm(k)
	}

	// Local training, fanned out over the worker pool. Jobs are prepared
	// serially — the per-client RNG splits and the transport dispatches
	// happen here, in slot order, so the streams (and the wire's byte and
	// clock accounting) are identical at every parallelism level. A
	// dropped client (-1) leaves its middleware model untrained this
	// round (v_i = w_i), the natural fault-tolerant reading of
	// Algorithm 1; a straggler whose upload misses the round deadline
	// degrades the same way.
	tr := f.Transport()
	n := len(f.middleware[0])
	f.ensureUploadBuf(k, n)
	passThrough := tr.PassThrough()
	if !passThrough {
		f.recvBuf = ensureVecs(f.recvBuf, k, n)
	}
	if len(f.recvView) != k {
		f.recvView = make([]nn.ParamVector, k)
	}
	jobs := make([]fl.LocalJob, 0, k)
	slots := make([]int, 0, k)
	clients := make([]int, 0, k)
	for i := 0; i < k; i++ {
		ci := selected[assign[i]]
		// An untrainable client (virtualized federation, empty shard)
		// degrades exactly like a dropout: its middleware model skips the
		// round untrained.
		if ci < 0 || !f.env.Fed.Trainable(ci) {
			continue
		}
		var dst nn.ParamVector
		if !passThrough {
			dst = f.recvBuf[i]
		}
		recv := tr.Down(dst, ci, f.middleware[i])
		f.recvView[i] = recv
		jobs = append(jobs, fl.LocalJob{
			Client: ci,
			Spec: fl.LocalSpec{
				Init:      recv,
				Epochs:    f.cfg.LocalEpochs,
				BatchSize: f.cfg.BatchSize,
				LR:        f.cfg.LR,
				Momentum:  f.cfg.Momentum,
				Out:       f.uploadBuf[i],
			},
			RNG: f.rng.Split(),
		})
		slots = append(slots, i)
		clients = append(clients, ci)
	}
	results, err := fl.TrainAllFanout(f.env, jobs, f.cfg.Allowance(), f.cfg.BatchFanout)
	if err != nil {
		return fmt.Errorf("core: FedCross round %d: %w", r, err)
	}
	uploads := make([]nn.ParamVector, k)
	copy(uploads, f.middleware) // untrained slots upload their model as-is
	arrived := 0
	for j, res := range results {
		// The upload returns delta-encoded against this round's dispatch
		// (the one vector both endpoints hold bit-identically), decoded in
		// place into the slot's recycled upload buffer.
		dec, ok := tr.Up(res.Params, clients[j], res.Params, f.recvView[slots[j]])
		if ok {
			uploads[slots[j]] = dec
			arrived++
		}
	}
	if f.cfg.MinUploads > 0 && arrived < f.cfg.MinUploads {
		return nil // degraded round: every middleware model stays as it was
	}

	f.middleware = f.aggregate(r, uploads)
	return nil
}

// ensureUploadBuf sizes the recycled upload destinations for K models of
// n parameters (a no-op at steady state).
func (f *FedCross) ensureUploadBuf(k, n int) {
	f.uploadBuf = ensureVecs(f.uploadBuf, k, n)
}

// ensureVecs sizes a recycled list of K n-length vectors (a no-op at
// steady state).
func ensureVecs(vs []nn.ParamVector, k, n int) []nn.ParamVector {
	if len(vs) != k {
		vs = make([]nn.ParamVector, k)
	}
	for i := range vs {
		if len(vs[i]) != n {
			vs[i] = make(nn.ParamVector, n)
		}
	}
	return vs
}

// aggregate applies cross-aggregation (with any active acceleration) to
// the uploads and returns the next round's middleware list. The
// destination vectors are recycled from the round-before-last's
// middleware storage (f.spare), which nothing references any more: the
// current round's uploads alias only recycled upload buffers or the
// *current* middleware list, never the spare one.
//
// When a similarity strategy is active, the K×K score matrix is built
// once here — in parallel, with per-upload norms cached — and consumed by
// every selection; CoModelSelMatrix scans it exactly like the naive loop,
// so the round is bit-identical to per-selection recomputation.
func (f *FedCross) aggregate(r int, uploads []nn.ParamVector) []nn.ParamVector {
	k := len(uploads)
	n := len(uploads[0])
	next := f.spare
	if len(next) != k {
		next = make([]nn.ParamVector, k)
	}
	for i := range next {
		if len(next[i]) != n {
			next[i] = make(nn.ParamVector, n)
		}
	}
	f.spare = f.middleware
	alpha := f.effectiveAlpha(r)
	usePropeller := f.propellerActive(r)
	var gram *SimMatrix
	if !usePropeller && (f.opts.Strategy == HighestSimilarity || f.opts.Strategy == LowestSimilarity) {
		gram = NewSimMatrix(uploads, f.opts.Similarity, f.cfg.Allowance())
	}
	for i := 0; i < k; i++ {
		if usePropeller {
			f.propellerAggrTo(next[i], i, r, uploads, alpha)
			continue
		}
		var co int
		if gram != nil {
			co = CoModelSelMatrix(f.opts.Strategy, i, r, gram)
		} else {
			co = CoModelSel(f.opts.Strategy, i, r, uploads, f.opts.Similarity.Pair)
		}
		nn.LerpVectorsTo(next[i], uploads[i], uploads[co], alpha)
	}
	return next
}

// effectiveAlpha returns α for round r, honouring dynamic-α acceleration.
func (f *FedCross) effectiveAlpha(r int) float64 {
	switch f.opts.Accel {
	case AccelDynamicAlpha:
		return f.rampAlpha(r, 0, f.opts.AccelRounds)
	case AccelBoth:
		// DA covers the second half of the window.
		half := f.opts.AccelRounds / 2
		if r < half {
			return f.opts.Alpha // PM phase uses the nominal alpha
		}
		return f.rampAlpha(r, half, f.opts.AccelRounds)
	default:
		return f.opts.Alpha
	}
}

// rampAlpha linearly interpolates from DynAlphaStart at round start to
// Alpha at round end, clamping afterwards.
func (f *FedCross) rampAlpha(r, start, end int) float64 {
	if r >= end || end <= start {
		return f.opts.Alpha
	}
	if r < start {
		r = start
	}
	frac := float64(r-start) / float64(end-start)
	return f.opts.DynAlphaStart + frac*(f.opts.Alpha-f.opts.DynAlphaStart)
}

// propellerActive reports whether propeller aggregation applies in round r.
func (f *FedCross) propellerActive(r int) bool {
	switch f.opts.Accel {
	case AccelPropeller:
		return r < f.opts.AccelRounds
	case AccelBoth:
		return r < f.opts.AccelRounds/2
	default:
		return false
	}
}

// propellerAggrTo fuses upload i with the mean of its P in-order
// propeller models into dst: α·v_i + (1−α)·mean(propellers). Using
// several propellers gives each middleware model more knowledge per
// round, accelerating early training (Section III-D). The propeller mean
// is built in dst itself, then lerped against the upload in place.
func (f *FedCross) propellerAggrTo(dst nn.ParamVector, i, r int, uploads []nn.ParamVector, alpha float64) {
	k := len(uploads)
	p := f.opts.PropellerCount
	if p > k-1 {
		p = k - 1
	}
	f.props = f.props[:0]
	for step := 0; step < p; step++ {
		j := CoModelSel(InOrder, i, r+step, uploads, nil)
		f.props = append(f.props, uploads[j])
	}
	nn.MeanVectorsTo(dst, f.props)
	nn.LerpVectorsTo(dst, uploads[i], dst, alpha)
}

// Global implements fl.Algorithm: the one-shot fusion of the middleware
// models, computed on demand because it never trains. The default is
// GlobalModelGen's plain mean; with a Config.Reducer set, the configured
// rule fuses the middleware instead, so a Byzantine middleware model
// (poisoned through a compromised client's cross-aggregation) cannot
// steer the deployment model. nil stays bit-identical to GlobalModelGen.
func (f *FedCross) Global() nn.ParamVector {
	if f.cfg.Reducer == nil {
		return GlobalModelGen(f.middleware)
	}
	agg, err := fl.ReduceUploads(f.cfg.Reducer, f.middleware, nil)
	if err != nil {
		// Middleware vectors are engine-owned; only a fully non-finite set
		// can fail here, and then the plain mean is no worse.
		return GlobalModelGen(f.middleware)
	}
	return agg
}

// Middleware exposes copies of the middleware-model vectors for analysis
// (loss landscapes, similarity audits).
func (f *FedCross) Middleware() []nn.ParamVector {
	out := make([]nn.ParamVector, len(f.middleware))
	for i, m := range f.middleware {
		out[i] = m.Clone()
	}
	return out
}

// RoundComm implements fl.Algorithm: K models down, K models up — exactly
// FedAvg's footprint, the paper's Table I "Low" row.
func (f *FedCross) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k}
}
