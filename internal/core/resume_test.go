package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// resumeRunCfg layers faults, a quorum and a sign-flip adversary on the
// integration config so the snapshot has to carry the full middleware
// list, selection RNG and transport counters across the kill.
func resumeRunCfg(par int) fl.Config {
	cfg := runCfg(6)
	cfg.EvalEvery = 1
	cfg.Parallelism = par
	cfg.Faults = fl.FaultOptions{CrashRate: 0.2, DropRate: 0.2, StallRate: 0.2}
	cfg.MinUploads = 2
	cfg.Transport = fl.TransportOptions{Codec: "fp16", Retries: 1, RetryBackoffSec: 0.1}
	cfg.Adversary = fl.AdversaryOptions{Attack: fl.AttackSignFlip, Frac: 0.25}
	return cfg
}

// TestFedCrossKillResumeBitIdentity: FedCross killed at a round boundary
// and resumed from its write-ahead snapshot reproduces the uninterrupted
// history byte-for-byte, including the per-model RNG and spare buffers.
func TestFedCrossKillResumeBitIdentity(t *testing.T) {
	dir := t.TempDir()
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			full, err := fl.Run(MustNew(DefaultOptions()), integrationEnv(1, 8, data.Heterogeneity{Beta: 0.5}), resumeRunCfg(par))
			if err != nil {
				t.Fatal(err)
			}
			for _, stop := range []int{1, 3, 5} {
				path := filepath.Join(dir, fmt.Sprintf("fc-%d-%d.ckpt", par, stop))
				killed := resumeRunCfg(par)
				killed.Checkpoint = fl.CheckpointOptions{Path: path, StopAfterRound: stop}
				if _, err := fl.Run(MustNew(DefaultOptions()), integrationEnv(1, 8, data.Heterogeneity{Beta: 0.5}), killed); !errors.Is(err, fl.ErrStopped) {
					t.Fatalf("stop %d: want ErrStopped, got %v", stop, err)
				}
				resumed := resumeRunCfg(par)
				resumed.Checkpoint = fl.CheckpointOptions{Path: path, Resume: true}
				h, err := fl.Run(MustNew(DefaultOptions()), integrationEnv(1, 8, data.Heterogeneity{Beta: 0.5}), resumed)
				if err != nil {
					t.Fatalf("stop %d: %v", stop, err)
				}
				if !reflect.DeepEqual(full, h) {
					t.Fatalf("stop %d: resumed history diverged", stop)
				}
			}
		})
	}
}

// TestFedCrossQuorumDegradedRound: below-quorum rounds leave the
// middleware list untouched and the run never hangs or leaks.
func TestFedCrossQuorumDegradedRound(t *testing.T) {
	cfg := runCfg(5)
	cfg.EvalEvery = 1
	cfg.Faults = fl.FaultOptions{CrashRate: 0.9}
	cfg.MinUploads = 4
	hist, err := fl.Run(MustNew(DefaultOptions()), integrationEnv(2, 8, data.Heterogeneity{Beta: 0.5}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Degraded == 0 {
		t.Fatal("90% crash rate against a quorum of 4 must degrade at least one round")
	}
	for i := 1; i < len(hist.Metrics); i++ {
		prev, cur := hist.Metrics[i-1], hist.Metrics[i]
		if cur.CumDegraded > prev.CumDegraded && cur.TestAcc != prev.TestAcc {
			t.Fatalf("round %d degraded but accuracy moved %v -> %v", cur.Round, prev.TestAcc, cur.TestAcc)
		}
	}
}
