package core

import (
	"math"
	"testing"
	"testing/quick"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func randVec(rng *tensor.RNG, n int) nn.ParamVector {
	v := make(nn.ParamVector, n)
	for i := range v {
		v[i] = rng.Normal(0, 1)
	}
	return v
}

func TestCosineSimilarityProperties(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := randVec(rng, 20)
	b := randVec(rng, 20)
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cos(a,a) = %v, want 1", got)
	}
	if got := CosineSimilarity(a, a.Scale(-1)); math.Abs(got+1) > 1e-12 {
		t.Fatalf("cos(a,-a) = %v, want -1", got)
	}
	if math.Abs(CosineSimilarity(a, b)-CosineSimilarity(b, a)) > 1e-12 {
		t.Fatal("cosine must be symmetric")
	}
	// Scale invariance.
	if math.Abs(CosineSimilarity(a, b)-CosineSimilarity(a.Scale(3), b.Scale(0.5))) > 1e-12 {
		t.Fatal("cosine must be scale invariant")
	}
	// Zero vector convention.
	if got := CosineSimilarity(make(nn.ParamVector, 20), b); got != 0 {
		t.Fatalf("cos(0,b) = %v, want 0", got)
	}
}

func TestPaperSimilarity(t *testing.T) {
	a := nn.ParamVector{3, 4} // norm 5
	b := nn.ParamVector{3, 4}
	// dot = 25, norms sum = 10 -> 2.5 (not 1: it is not a true cosine).
	if got := PaperSimilarity(a, b); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("paper similarity = %v, want 2.5", got)
	}
	if got := PaperSimilarity(make(nn.ParamVector, 2), make(nn.ParamVector, 2)); got != 0 {
		t.Fatalf("paper similarity of zeros = %v", got)
	}
}

func TestEuclideanSimilarityOrdering(t *testing.T) {
	a := nn.ParamVector{0, 0}
	near := nn.ParamVector{0.1, 0}
	far := nn.ParamVector{5, 5}
	if EuclideanSimilarity(a, near) <= EuclideanSimilarity(a, far) {
		t.Fatal("nearer vector must score higher")
	}
}

func TestSimilarityByName(t *testing.T) {
	for _, name := range []string{"", "cosine", "paper", "euclidean"} {
		if _, err := SimilarityByName(name); err != nil {
			t.Fatalf("SimilarityByName(%q): %v", name, err)
		}
	}
	if _, err := SimilarityByName("nope"); err == nil {
		t.Fatal("expected error for unknown measure")
	}
}

func TestStrategyByNameAndString(t *testing.T) {
	cases := map[string]Strategy{
		"in-order": InOrder, "inorder": InOrder,
		"highest": HighestSimilarity, "highest-similarity": HighestSimilarity,
		"lowest": LowestSimilarity, "lowest-similarity": LowestSimilarity,
		"": LowestSimilarity,
	}
	for name, want := range cases {
		got, err := StrategyByName(name)
		if err != nil || got != want {
			t.Fatalf("StrategyByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if InOrder.String() != "in-order" || HighestSimilarity.String() != "highest-similarity" || LowestSimilarity.String() != "lowest-similarity" {
		t.Fatal("strategy String names")
	}
}

func TestInOrderNeverSelf(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		k := 2 + rng.Intn(10)
		w := make([]nn.ParamVector, k)
		for i := range w {
			w[i] = randVec(rng, 4)
		}
		for r := 0; r < 3*k; r++ {
			for i := 0; i < k; i++ {
				j := CoModelSel(InOrder, i, r, w, nil)
				if j == i || j < 0 || j >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInOrderCoversAllPeersInKMinus1Rounds(t *testing.T) {
	// Paper claim: in every K−1 rounds each middleware model collaborates
	// with all the other K−1 models once.
	for _, k := range []int{2, 3, 5, 8} {
		w := make([]nn.ParamVector, k)
		rng := tensor.NewRNG(int64(k))
		for i := range w {
			w[i] = randVec(rng, 3)
		}
		for base := 0; base < 2; base++ { // two consecutive windows
			for i := 0; i < k; i++ {
				seen := map[int]bool{}
				for r := base * (k - 1); r < (base+1)*(k-1); r++ {
					seen[CoModelSel(InOrder, i, r, w, nil)] = true
				}
				if len(seen) != k-1 {
					t.Fatalf("K=%d model %d window %d saw %d peers, want %d", k, i, base, len(seen), k-1)
				}
			}
		}
	}
}

func TestInOrderIsPermutationEachRound(t *testing.T) {
	// Every uploaded model is chosen as a collaborator exactly once per
	// round — the property Equation 2's telescoping sum relies on.
	for _, k := range []int{2, 4, 7} {
		w := make([]nn.ParamVector, k)
		rng := tensor.NewRNG(int64(k))
		for i := range w {
			w[i] = randVec(rng, 3)
		}
		for r := 0; r < 2*k; r++ {
			counts := make([]int, k)
			for i := 0; i < k; i++ {
				counts[CoModelSel(InOrder, i, r, w, nil)]++
			}
			for j, c := range counts {
				if c != 1 {
					t.Fatalf("K=%d round %d: model %d chosen %d times", k, r, j, c)
				}
			}
		}
	}
}

func TestSimilarityStrategiesPickExpected(t *testing.T) {
	rng := tensor.NewRNG(3)
	base := randVec(rng, 16)
	near := base.Clone()
	near.AXPY(0.01, randVec(rng, 16)) // almost identical
	far := base.Scale(-1)             // opposite direction
	w := []nn.ParamVector{base, near, far}

	if got := CoModelSel(HighestSimilarity, 0, 0, w, CosineSimilarity); got != 1 {
		t.Fatalf("highest similarity picked %d, want 1 (the near clone)", got)
	}
	if got := CoModelSel(LowestSimilarity, 0, 0, w, CosineSimilarity); got != 2 {
		t.Fatalf("lowest similarity picked %d, want 2 (the opposite)", got)
	}
	// Nil similarity defaults to cosine.
	if got := CoModelSel(LowestSimilarity, 0, 0, w, nil); got != 2 {
		t.Fatalf("nil similarity default picked %d", got)
	}
}

func TestCoModelSelNeverSelfAnyStrategy(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		k := 2 + rng.Intn(6)
		w := make([]nn.ParamVector, k)
		for i := range w {
			w[i] = randVec(rng, 8)
		}
		r := rng.Intn(50)
		for i := 0; i < k; i++ {
			for _, s := range []Strategy{InOrder, HighestSimilarity, LowestSimilarity} {
				if CoModelSel(s, i, r, w, CosineSimilarity) == i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoModelSelPanics(t *testing.T) {
	w := []nn.ParamVector{{1}, {2}}
	for _, fn := range []func(){
		func() { CoModelSel(InOrder, 0, 0, w[:1], nil) },
		func() { CoModelSel(InOrder, 5, 0, w, nil) },
		func() { CoModelSel(Strategy(99), 0, 0, w, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCrossAggrEndpoints(t *testing.T) {
	v := nn.ParamVector{1, 2}
	w := nn.ParamVector{3, 6}
	got := CrossAggr(v, w, 0.75)
	if got[0] != 1.5 || got[1] != 3 {
		t.Fatalf("CrossAggr = %v", got)
	}
}

// TestLemma34Contraction verifies the paper's Lemma 3.4 numerically:
// with wᵢ = α·vᵢ + (1−α)·vᵢ′ where i↦i′ is the in-order permutation,
// Σ‖wᵢ − w⋆‖² ≤ Σ‖vᵢ − w⋆‖² for any α ∈ [0,1] and any w⋆.
func TestLemma34Contraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		k := 2 + rng.Intn(8)
		n := 1 + rng.Intn(12)
		v := make([]nn.ParamVector, k)
		for i := range v {
			v[i] = randVec(rng, n)
		}
		wstar := randVec(rng, n)
		alpha := rng.Float64()
		r := rng.Intn(20)

		sumBefore, sumAfter := 0.0, 0.0
		for i := 0; i < k; i++ {
			co := CoModelSel(InOrder, i, r, v, nil)
			w := CrossAggr(v[i], v[co], alpha)
			sumBefore += v[i].DistanceSq(wstar)
			sumAfter += w.DistanceSq(wstar)
		}
		return sumAfter <= sumBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEquation2MeanPreservation verifies Equation 2: with the in-order
// strategy the sum (hence mean) of the middleware models is invariant
// under cross-aggregation, so GlobalModelGen commutes with CrossAggr.
func TestEquation2MeanPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		k := 2 + rng.Intn(8)
		n := 1 + rng.Intn(10)
		v := make([]nn.ParamVector, k)
		for i := range v {
			v[i] = randVec(rng, n)
		}
		alpha := rng.Float64()
		r := rng.Intn(20)
		w := make([]nn.ParamVector, k)
		for i := range w {
			w[i] = CrossAggr(v[i], v[CoModelSel(InOrder, i, r, v, nil)], alpha)
		}
		before := GlobalModelGen(v)
		after := GlobalModelGen(w)
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalModelGenIsMean(t *testing.T) {
	w := []nn.ParamVector{{2, 0}, {0, 2}, {4, 4}}
	g := GlobalModelGen(w)
	if g[0] != 2 || g[1] != 2 {
		t.Fatalf("GlobalModelGen = %v", g)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		func() Options { o := DefaultOptions(); o.Alpha = 0.4; return o }(),
		func() Options { o := DefaultOptions(); o.Alpha = 1.0; return o }(),
		func() Options { o := DefaultOptions(); o.Strategy = Strategy(9); return o }(),
		func() Options { o := DefaultOptions(); o.Accel = AccelMode(9); return o }(),
		func() Options { o := DefaultOptions(); o.Accel = AccelPropeller; o.AccelRounds = 0; return o }(),
		func() Options { o := DefaultOptions(); o.Accel = AccelPropeller; o.PropellerCount = 0; return o }(),
		func() Options { o := DefaultOptions(); o.Accel = AccelDynamicAlpha; o.DynAlphaStart = 0.2; return o }(),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, o)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Fatal("New must reject invalid options")
	}
}

func TestAccelModeString(t *testing.T) {
	if AccelNone.String() != "vanilla" || AccelPropeller.String() != "pm" ||
		AccelDynamicAlpha.String() != "da" || AccelBoth.String() != "pm-da" {
		t.Fatal("accel mode names")
	}
}

func TestEffectiveAlphaRamp(t *testing.T) {
	opts := DefaultOptions()
	opts.Accel = AccelDynamicAlpha
	opts.AccelRounds = 10
	opts.DynAlphaStart = 0.5
	opts.Alpha = 0.99
	f := MustNew(opts)
	if got := f.effectiveAlpha(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alpha(0) = %v, want 0.5", got)
	}
	mid := f.effectiveAlpha(5)
	if mid <= 0.5 || mid >= 0.99 {
		t.Fatalf("alpha(5) = %v, want strictly inside ramp", mid)
	}
	if got := f.effectiveAlpha(10); got != 0.99 {
		t.Fatalf("alpha(10) = %v, want 0.99", got)
	}
	if got := f.effectiveAlpha(1000); got != 0.99 {
		t.Fatalf("alpha(1000) = %v, want 0.99", got)
	}
	// Monotone non-decreasing across the ramp.
	prev := -1.0
	for r := 0; r <= 12; r++ {
		a := f.effectiveAlpha(r)
		if a < prev {
			t.Fatalf("alpha not monotone at round %d: %v < %v", r, a, prev)
		}
		prev = a
	}
}

func TestPropellerWindow(t *testing.T) {
	opts := DefaultOptions()
	opts.Accel = AccelPropeller
	opts.AccelRounds = 4
	f := MustNew(opts)
	if !f.propellerActive(0) || !f.propellerActive(3) {
		t.Fatal("propeller should be active inside the window")
	}
	if f.propellerActive(4) {
		t.Fatal("propeller should stop after the window")
	}

	opts.Accel = AccelBoth
	g := MustNew(opts)
	if !g.propellerActive(1) {
		t.Fatal("pm-da: propeller active in first half")
	}
	if g.propellerActive(2) {
		t.Fatal("pm-da: propeller inactive in second half")
	}
	if a := g.effectiveAlpha(1); a != opts.Alpha {
		t.Fatalf("pm-da first half alpha = %v, want nominal", a)
	}
	if a := g.effectiveAlpha(2); a >= opts.Alpha {
		t.Fatalf("pm-da second half should ramp, alpha = %v", a)
	}
}

func TestPropellerAggrUsesMeanOfPeers(t *testing.T) {
	opts := DefaultOptions()
	opts.Accel = AccelPropeller
	opts.AccelRounds = 10
	opts.PropellerCount = 2
	opts.Alpha = 0.5
	f := MustNew(opts)
	uploads := []nn.ParamVector{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	got := make(nn.ParamVector, len(uploads[0]))
	f.propellerAggrTo(got, 0, 0, uploads, 0.5)
	// In-order propellers for i=0, r=0..1, K=4: offsets (0%3+1)=1 and
	// (1%3+1)=2 -> models 1 and 2; mean = (1,1); result = 0.5*(0,0)+0.5*(1,1).
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("propellerAggr = %v, want (0.5, 0.5)", got)
	}
	// PropellerCount capped at K-1.
	opts.PropellerCount = 99
	g := MustNew(opts)
	res := make(nn.ParamVector, len(uploads[0]))
	g.propellerAggrTo(res, 0, 0, uploads, 0.5)
	if len(res) != 2 {
		t.Fatalf("unexpected result %v", res)
	}
}
