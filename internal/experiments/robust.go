package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// RobustOptions configures the Byzantine-robustness sweep: one algorithm
// run on identical environments under every (attacker fraction ×
// aggregation rule) combination, so the grid isolates exactly how much
// accuracy each reducer buys back from the attack.
type RobustOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Algorithm is the method under attack (default "fedavg" — the pure
	// mean baseline the robust rules are measured against).
	Algorithm string
	// Attack is the Byzantine behaviour (default fl.AttackSignFlip).
	Attack string
	// Scale is the attack magnitude for scale/collude (0 keeps the
	// adversary default).
	Scale float64
	// Fracs are the attacker fractions swept (default 0, 0.2).
	Fracs []float64
	// Reducers are the aggregation rules swept (default mean, trimmed,
	// median, krum, multikrum).
	Reducers []string
}

// DefaultRobustOptions returns the standard sweep.
func DefaultRobustOptions() RobustOptions {
	return RobustOptions{
		Dataset:   "vision10",
		Model:     "cnn",
		Het:       data.Heterogeneity{Beta: 0.5},
		Algorithm: "fedavg",
		Attack:    fl.AttackSignFlip,
		Fracs:     []float64{0, 0.2},
		Reducers:  []string{"mean", "trimmed", "median", "krum", "multikrum"},
	}
}

// RobustCell is one (fraction, reducer) run's summary.
type RobustCell struct {
	Frac    float64
	Reducer string
	// FinalAcc / BestAcc summarise the run's test accuracy.
	FinalAcc, BestAcc float64
	// Attackers is the number of compromised clients in the population.
	Attackers int
}

// RobustResult holds the full grid, rows ordered by (frac, reducer).
type RobustResult struct {
	Title    string
	Fracs    []float64
	Reducers []string
	// Cells is row-major: Cells[i*len(Reducers)+j] is Fracs[i] ×
	// Reducers[j].
	Cells []RobustCell
}

// Cell returns the (frac index, reducer index) cell.
func (r *RobustResult) Cell(i, j int) RobustCell { return r.Cells[i*len(r.Reducers)+j] }

// RunRobust executes the robustness grid. Every cell shares the
// environment build and the worker budget through the scheduler; the
// attacker set within a cell is a pure function of the seed (identical at
// every Jobs/Parallelism setting), so the grid is bit-identical however
// it is scheduled. This is the harness behind the PR's acceptance gate:
// at 20% sign-flip attackers the rank-based rules hold near-benign
// accuracy while the plain mean collapses.
func RunRobust(opts RobustOptions) (*RobustResult, error) {
	def := DefaultRobustOptions()
	if opts.Dataset == "" {
		opts.Dataset = def.Dataset
	}
	if opts.Model == "" {
		opts.Model = def.Model
	}
	if opts.Algorithm == "" {
		opts.Algorithm = def.Algorithm
	}
	if opts.Attack == "" {
		opts.Attack = def.Attack
	}
	if len(opts.Fracs) == 0 {
		opts.Fracs = def.Fracs
	}
	if len(opts.Reducers) == 0 {
		opts.Reducers = def.Reducers
	}
	for _, name := range opts.Reducers {
		if err := ValidateReducer(name); err != nil {
			return nil, err
		}
	}
	seed := int64(1)
	if len(opts.Profile.Seeds) > 0 {
		seed = opts.Profile.Seeds[0]
	}
	res := &RobustResult{
		Title: fmt.Sprintf("Byzantine robustness — %s on %s/%s, attack=%s",
			opts.Algorithm, opts.Dataset, opts.Model, opts.Attack),
		Fracs:    opts.Fracs,
		Reducers: opts.Reducers,
		Cells:    make([]RobustCell, len(opts.Fracs)*len(opts.Reducers)),
	}
	s := newScheduler(opts.Profile)
	err := s.Run(len(res.Cells), func(idx int) error {
		i, j := idx/len(opts.Reducers), idx%len(opts.Reducers)
		p := opts.Profile
		p.Reducer = opts.Reducers[j]
		p.Attack = opts.Attack
		p.AttackFrac = opts.Fracs[i]
		p.AttackScale = opts.Scale
		env, err := s.Env(opts.Profile, opts.Dataset, opts.Model, opts.Het, seed)
		if err != nil {
			return err
		}
		algo, err := NewAlgorithm(opts.Algorithm)
		if err != nil {
			return err
		}
		hist, err := fl.Run(algo, env, s.Config(p, seed))
		if err != nil {
			return fmt.Errorf("experiments: robust frac=%g reducer=%s: %w",
				opts.Fracs[i], opts.Reducers[j], err)
		}
		attackers := int(opts.Fracs[i]*float64(p.NumClients) + 0.5)
		res.Cells[idx] = RobustCell{
			Frac:      opts.Fracs[i],
			Reducer:   opts.Reducers[j],
			FinalAcc:  hist.Final().TestAcc,
			BestAcc:   hist.BestAcc(),
			Attackers: attackers,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes one table per attacker fraction, each row a reducer with
// its final and best accuracy — and, for non-zero fractions, the
// retention relative to the same reducer's benign run when the grid
// includes frac 0 (the quantity the CI gate thresholds).
func (r *RobustResult) Render(w io.Writer) error {
	benign := -1
	for i, f := range r.Fracs {
		if f == 0 {
			benign = i
			break
		}
	}
	for i, f := range r.Fracs {
		t := Table{
			Title:  fmt.Sprintf("%s — attackers %.0f%%", r.Title, 100*f),
			Header: []string{"Reducer", "Final acc", "Best acc", "Retention"},
		}
		for j, name := range r.Reducers {
			c := r.Cell(i, j)
			ret := "-"
			if benign >= 0 && i != benign {
				base := r.Cell(benign, j).FinalAcc
				if base > 0 {
					ret = fmt.Sprintf("%.3f", c.FinalAcc/base)
				}
			}
			t.Add(name,
				fmt.Sprintf("%.4f", c.FinalAcc),
				fmt.Sprintf("%.4f", c.BestAcc),
				ret)
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
