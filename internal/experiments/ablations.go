package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// The ablations quantify two design choices DESIGN.md calls out beyond
// the paper's own Table-III study:
//
//   - Shuffle dispatching (Algorithm 1 line 5): the paper argues the
//     shuffle is what gives every middleware model an even chance of
//     visiting every client. AblationShuffle runs FedCross with and
//     without it.
//   - Similarity measure: the paper's printed formula divides by the sum
//     of norms rather than their product (DESIGN.md §5).
//     AblationSimilarity runs the lowest-similarity strategy under
//     cosine, the printed variant, and negated Euclidean distance.

// AblationOptions sizes the ablation runs.
type AblationOptions struct {
	Profile Profile
	Model   string
	Beta    float64
}

// DefaultAblationOptions runs on the CNN under moderate skew.
func DefaultAblationOptions() AblationOptions {
	return AblationOptions{Profile: TinyProfile(), Model: "cnn", Beta: 0.5}
}

// AblationCell names one variant and its accuracy statistic.
type AblationCell struct {
	Variant string
	Acc     Stat
}

// AblationResult holds one ablation's cells.
type AblationResult struct {
	Title string
	Cells []AblationCell
}

// Get returns the named variant's statistic.
func (r *AblationResult) Get(variant string) (Stat, bool) {
	for _, c := range r.Cells {
		if c.Variant == variant {
			return c.Acc, true
		}
	}
	return Stat{}, false
}

// Render writes the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	t := Table{Title: r.Title, Header: []string{"Variant", "Accuracy (%)"}}
	for _, c := range r.Cells {
		t.Add(c.Variant, c.Acc.String())
	}
	_, err := t.WriteTo(w)
	return err
}

// runVariants executes FedCross once per option set per seed — one
// scheduled grid, every variant sharing the per-seed environment build —
// and collects final accuracies.
func runVariants(opts AblationOptions, title string, variants map[string]core.Options, order []string) (*AblationResult, error) {
	res := &AblationResult{Title: title}
	het := data.Heterogeneity{Beta: opts.Beta}
	seeds := opts.Profile.Seeds
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: ablation %q needs at least one seed", title)
	}
	finals := make([]float64, len(order)*len(seeds))
	s := newScheduler(opts.Profile)
	err := s.Run(len(finals), func(i int) error {
		name := order[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		hist, _, _, err := s.runOne(opts.Profile, "vision10", opts.Model, het, seed,
			func() (fl.Algorithm, error) { return core.New(variants[name]) })
		if err != nil {
			return fmt.Errorf("experiments: ablation %s: %w", name, err)
		}
		finals[i] = hist.Final().TestAcc
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, name := range order {
		res.Cells = append(res.Cells, AblationCell{Variant: name, Acc: NewStat(finals[vi*len(seeds) : (vi+1)*len(seeds)])})
	}
	return res, nil
}

// RunAblationShuffle compares shuffle dispatching against the pinned
// assignment.
func RunAblationShuffle(opts AblationOptions) (*AblationResult, error) {
	with := core.DefaultOptions()
	without := core.DefaultOptions()
	without.DisableShuffle = true
	return runVariants(opts,
		"Ablation — shuffle dispatching (Algorithm 1, line 5)",
		map[string]core.Options{"shuffle": with, "no-shuffle": without},
		[]string{"shuffle", "no-shuffle"})
}

// RunAblationSimilarity compares the three similarity measures under the
// lowest-similarity strategy.
func RunAblationSimilarity(opts AblationOptions) (*AblationResult, error) {
	mk := func(sim core.Measure) core.Options {
		o := core.DefaultOptions()
		o.Strategy = core.LowestSimilarity
		o.Similarity = sim
		return o
	}
	return runVariants(opts,
		"Ablation — similarity measure behind lowest-similarity selection",
		map[string]core.Options{
			"cosine":    mk(core.CosineMeasure()),
			"paper":     mk(core.PaperMeasure()),
			"euclidean": mk(core.EuclideanMeasure()),
		},
		[]string{"cosine", "paper", "euclidean"})
}

// RunAblationPropellerCount sweeps the propeller fan-in of the PM
// acceleration.
func RunAblationPropellerCount(opts AblationOptions, counts []int) (*AblationResult, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("experiments: propeller ablation needs counts")
	}
	variants := map[string]core.Options{}
	var order []string
	for _, c := range counts {
		o := core.DefaultOptions()
		o.Accel = core.AccelPropeller
		o.AccelRounds = opts.Profile.Rounds / 2
		if o.AccelRounds < 1 {
			o.AccelRounds = 1
		}
		o.PropellerCount = c
		name := fmt.Sprintf("propellers=%d", c)
		variants[name] = o
		order = append(order, name)
	}
	return runVariants(opts, "Ablation — propeller-model fan-in (PM acceleration)", variants, order)
}
