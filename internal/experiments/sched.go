package experiments

import (
	"runtime"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// Scheduler executes the cells of an experiment grid concurrently. Every
// table and figure runner expands its full grid — (dataset, model,
// heterogeneity, algorithm, seed) and the sweep-specific axes — into an
// ordered list of independent cells, then dispatches them here. Three
// pieces make that safe and fast:
//
//   - Cell concurrency: at most Profile.Jobs cells run at once (0 means
//     every core), each holding one base token of the shared budget.
//   - Worker-budget arbitration: the same fl.WorkerBudget is attached to
//     every cell's fl.Config, so the cells' inner training/evaluation
//     fan-outs lease their extra goroutines from one global pool —
//     however many cells are in flight, live workers never exceed the
//     budget (fl.WorkerBudget's invariant). An idle grid tail therefore
//     hands its cores to the cells still running.
//   - Environment memoization: cells lease their environments from a
//     shared EnvCache, so the grid builds each distinct (dataset, model,
//     het, seed, sizing) environment once instead of once per run — the
//     hoist that also makes strictly serial grids (Jobs=1) stop
//     rebuilding identical datasets per algorithm.
//
// Determinism: cells write only their own pre-indexed result slots, every
// run's randomness is derived from its own cfg.Seed exactly as before,
// and cached environment builds are bit-identical to direct BuildEnv
// calls — so grid results are bit-identical at every Jobs setting,
// the same invariant the round engine holds for Parallelism.
type Scheduler struct {
	jobs   int
	budget *fl.WorkerBudget
	cache  *EnvCache
}

// newScheduler builds the per-grid scheduler for a profile: Jobs cell
// slots and a worker budget of one token per core.
func newScheduler(p Profile) *Scheduler {
	jobs := p.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Scheduler{
		jobs:   jobs,
		budget: fl.NewWorkerBudget(0),
		cache:  NewEnvCache(),
	}
}

// Run executes cell(i) for every i in [0,n) with at most s.jobs cells in
// flight, each holding one base budget token for its whole lifetime.
// Cells must write only state owned by index i. The error contract
// matches fl.TrainAll: first failure by cell index wins, unstarted cells
// are skipped.
func (s *Scheduler) Run(n int, cell func(i int) error) error {
	return fl.ParallelForErr(n, fl.Limit(s.jobs), func(i int) error {
		s.budget.Acquire()
		defer s.budget.Release()
		return cell(i)
	})
}

// Config returns the profile's run configuration for a seed with the
// scheduler's shared worker budget attached.
func (s *Scheduler) Config(p Profile, seed int64) fl.Config {
	cfg := p.Config(seed)
	cfg.Budget = s.budget
	return cfg
}

// Env leases a memoized environment for the cell coordinates.
func (s *Scheduler) Env(p Profile, dataset, model string, het data.Heterogeneity, seed int64) (*fl.Env, error) {
	return s.cache.Lease(p, dataset, model, het, seed)
}

// runOne is the unit of work most grids dispatch: lease the environment,
// construct the algorithm, run the full simulation under the budgeted
// config, and hand back the history (plus the leased env and algorithm
// for harnesses that post-process the trained model, like Fig 4's
// landscape scans).
func (s *Scheduler) runOne(p Profile, dataset, model string, het data.Heterogeneity, seed int64, mk func() (fl.Algorithm, error)) (*fl.History, *fl.Env, fl.Algorithm, error) {
	env, err := s.Env(p, dataset, model, het, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	algo, err := mk()
	if err != nil {
		return nil, nil, nil, err
	}
	hist, err := fl.Run(algo, env, s.Config(p, seed))
	if err != nil {
		return nil, nil, nil, err
	}
	return hist, env, algo, nil
}

// curveData is one run's evaluated learning curve — the shared result
// shape of the curve figures' grid cells.
type curveData struct {
	rounds []int
	accs   []float64
}

// curveOf extracts the evaluated (round, accuracy) series of a history.
func curveOf(hist *fl.History) curveData {
	c := curveData{
		rounds: make([]int, len(hist.Metrics)),
		accs:   make([]float64, len(hist.Metrics)),
	}
	for i, m := range hist.Metrics {
		c.rounds[i] = m.Round
		c.accs[i] = m.TestAcc
	}
	return c
}
