package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// TableIIIOptions configures the α × selection-strategy ablation (paper:
// CNN on CIFAR-10, β = 1.0).
type TableIIIOptions struct {
	Profile Profile
	// Alphas are the cross-aggregation weights to sweep. The paper uses
	// {0.5, 0.8, 0.9, 0.95, 0.99, 0.999}.
	Alphas []float64
	// Strategies are the selection criteria to sweep (default: all three).
	Strategies []core.Strategy
	// Model is the vision architecture (paper: cnn).
	Model string
	// Beta is the Dirichlet heterogeneity (paper: 1.0).
	Beta float64
}

// DefaultTableIIIOptions returns a tiny slice of the ablation grid.
func DefaultTableIIIOptions() TableIIIOptions {
	return TableIIIOptions{
		Profile:    TinyProfile(),
		Alphas:     []float64{0.5, 0.99},
		Strategies: []core.Strategy{core.InOrder, core.HighestSimilarity, core.LowestSimilarity},
		Model:      "cnn",
		Beta:       1.0,
	}
}

// PaperTableIIIOptions returns the full paper grid (expensive).
func PaperTableIIIOptions() TableIIIOptions {
	o := DefaultTableIIIOptions()
	o.Profile = PaperProfile()
	o.Alphas = []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999}
	return o
}

// TableIIICell is one α × strategy accuracy.
type TableIIICell struct {
	Alpha    float64
	Strategy core.Strategy
	Acc      Stat
}

// TableIIIResult holds the ablation grid.
type TableIIIResult struct {
	Cells []TableIIICell
}

// Get returns the statistic for (alpha, strategy), if computed.
func (r *TableIIIResult) Get(alpha float64, s core.Strategy) (Stat, bool) {
	for _, c := range r.Cells {
		if c.Alpha == alpha && c.Strategy == s {
			return c.Acc, true
		}
	}
	return Stat{}, false
}

// RunTableIII executes the ablation as one scheduled grid of
// (alpha, strategy, seed) runs; every run shares the per-seed environment
// build. Note α = 0.999 falls inside the paper's admissible interval
// [0.5, 1) and is expected to collapse — that is the point of the
// ablation.
func RunTableIII(opts TableIIIOptions) (*TableIIIResult, error) {
	if len(opts.Alphas) == 0 || len(opts.Strategies) == 0 {
		return nil, fmt.Errorf("experiments: TableIII needs at least one alpha and one strategy")
	}
	het := data.Heterogeneity{Beta: opts.Beta}
	seeds := opts.Profile.Seeds
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: TableIII needs at least one seed")
	}
	perCell := len(seeds)
	perAlpha := len(opts.Strategies) * perCell
	finals := make([]float64, len(opts.Alphas)*perAlpha)
	s := newScheduler(opts.Profile)
	err := s.Run(len(finals), func(i int) error {
		alpha := opts.Alphas[i/perAlpha]
		strat := opts.Strategies[i%perAlpha/perCell]
		seed := seeds[i%perCell]
		hist, _, _, err := s.runOne(opts.Profile, "vision10", opts.Model, het, seed, func() (fl.Algorithm, error) {
			fcOpts := core.DefaultOptions()
			fcOpts.Alpha = alpha
			fcOpts.Strategy = strat
			return core.New(fcOpts)
		})
		if err != nil {
			return fmt.Errorf("experiments: TableIII alpha=%v %v: %w", alpha, strat, err)
		}
		finals[i] = hist.Final().TestAcc
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{}
	for ai, alpha := range opts.Alphas {
		for si, strat := range opts.Strategies {
			at := ai*perAlpha + si*perCell
			res.Cells = append(res.Cells, TableIIICell{Alpha: alpha, Strategy: strat, Acc: NewStat(finals[at : at+perCell])})
		}
	}
	return res, nil
}

// Render writes the α × strategy grid in the paper's layout.
func (r *TableIIIResult) Render(w io.Writer) error {
	var alphas []float64
	var strategies []core.Strategy
	seenA := map[float64]bool{}
	seenS := map[core.Strategy]bool{}
	for _, c := range r.Cells {
		if !seenA[c.Alpha] {
			seenA[c.Alpha] = true
			alphas = append(alphas, c.Alpha)
		}
		if !seenS[c.Strategy] {
			seenS[c.Strategy] = true
			strategies = append(strategies, c.Strategy)
		}
	}
	header := []string{"alpha"}
	for _, s := range strategies {
		header = append(header, s.String())
	}
	t := Table{Title: "Table III — test accuracy (%) by alpha and selection strategy", Header: header}
	for _, a := range alphas {
		row := []string{fmt.Sprintf("%.3g", a)}
		for _, s := range strategies {
			if st, ok := r.Get(a, s); ok {
				row = append(row, st.String())
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}
