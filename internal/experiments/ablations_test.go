package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAblationShuffle(t *testing.T) {
	opts := DefaultAblationOptions()
	opts.Profile = microProfile()
	res, err := RunAblationShuffle(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if _, ok := res.Get("shuffle"); !ok {
		t.Fatal("missing shuffle variant")
	}
	if _, ok := res.Get("no-shuffle"); !ok {
		t.Fatal("missing no-shuffle variant")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shuffle") {
		t.Fatal("render missing variants")
	}
}

func TestRunAblationSimilarity(t *testing.T) {
	opts := DefaultAblationOptions()
	opts.Profile = microProfile()
	res, err := RunAblationSimilarity(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"cosine", "paper", "euclidean"} {
		if _, ok := res.Get(v); !ok {
			t.Fatalf("missing variant %q", v)
		}
	}
	if _, ok := res.Get("nope"); ok {
		t.Fatal("phantom variant")
	}
}

func TestRunAblationPropellerCount(t *testing.T) {
	opts := DefaultAblationOptions()
	opts.Profile = microProfile()
	res, err := RunAblationPropellerCount(opts, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if _, err := RunAblationPropellerCount(opts, nil); err == nil {
		t.Fatal("empty counts must error")
	}
}
