//go:build race

package experiments

// raceEnabled reports whether the race detector is active. The heavy
// fixed-seed accuracy gates skip under it: their numbers are identical
// with or without instrumentation, and the same code paths get race
// coverage from the (much lighter) grid-determinism tests.
const raceEnabled = true
