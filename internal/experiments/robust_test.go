package experiments

import (
	"bytes"
	"testing"
)

// TestRobustGridDeterminism: the robust and async grids are bit-identical
// at Jobs=1 and Jobs=4, the same render-bytes invariant every other grid
// holds.
func TestRobustGridDeterminism(t *testing.T) {
	grids := map[string]func(p Profile) (renderable, error){
		"robust": func(p Profile) (renderable, error) {
			o := DefaultRobustOptions()
			o.Profile = p
			o.Model = "mlp"
			o.Fracs = []float64{0, 0.25}
			o.Reducers = []string{"mean", "median", "krum"}
			return RunRobust(o)
		},
		"async": func(p Profile) (renderable, error) {
			o := DefaultAsyncSweepOptions(p)
			o.Model = "mlp"
			o.Buffers = []int{2, 4}
			o.InFlights = []int{3}
			return RunAsyncSweep(o)
		},
	}
	for name, run := range grids {
		serial := renderAtJobs(t, 1, run)
		wide := renderAtJobs(t, 4, run)
		if !bytes.Equal(serial, wide) {
			t.Fatalf("%s: Jobs=1 vs Jobs=4 renders differ:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
				name, serial, wide)
		}
	}
}

// TestRobustProfileWiring: profile-level reducer/attack settings reach the
// run config — an unknown reducer name fails pre-flight, and a valid grid
// carries the attacker population it claims.
func TestRobustProfileWiring(t *testing.T) {
	if err := ValidateReducer("krum:2"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReducer("nonsense"); err == nil {
		t.Fatal("bad reducer names must fail pre-flight")
	}
	p := microProfile()
	p.Reducer = "median"
	p.Attack = "signflip"
	p.AttackFrac = 0.25
	cfg := p.Config(1)
	if cfg.Reducer == nil || cfg.Reducer.Name() != "median" {
		t.Fatalf("reducer not wired: %+v", cfg.Reducer)
	}
	if cfg.Adversary.Attack != "signflip" || cfg.Adversary.Frac != 0.25 {
		t.Fatalf("adversary not wired: %+v", cfg.Adversary)
	}
	o := DefaultRobustOptions()
	o.Profile = microProfile()
	o.Model = "mlp"
	o.Fracs = []float64{0.5}
	o.Reducers = []string{"median"}
	res, err := RunRobust(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cell(0, 0).Attackers; got != 3 { // round(0.5·6)
		t.Fatalf("attacker count %d, want 3", got)
	}
	if _, err := RunRobust(RobustOptions{Profile: microProfile(), Reducers: []string{"nope"}}); err == nil {
		t.Fatal("unknown reducer in the sweep must fail before any cell runs")
	}
}

// TestRobustAccuracyFloor is the PR's acceptance gate: at 20% sign-flip
// attackers (K=10 cohorts, so rank-based rules can actually outvote the
// worst hypergeometric draw), Krum and the heavily-trimmed mean hold at
// least 90% of their benign accuracy while the plain mean collapses
// below half of its own. Fixed seed, deterministic engine — these are
// exact reproducible numbers, not a statistical bound.
func TestRobustAccuracyFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell training grid")
	}
	if raceEnabled {
		t.Skip("fixed-seed numeric gate; race coverage comes from TestRobustGridDeterminism")
	}
	p := TinyProfile()
	p.ClientsPerRound = 10
	p.Rounds = 24
	p.EvalEvery = 0 // final-only eval; training streams are unaffected
	o := DefaultRobustOptions()
	o.Profile = p
	o.Fracs = []float64{0, 0.2}
	o.Reducers = []string{"mean", "trimmed:0.4", "krum"}
	res, err := RunRobust(o)
	if err != nil {
		t.Fatal(err)
	}
	retention := func(j int) (benign, attacked, ret float64) {
		b, a := res.Cell(0, j), res.Cell(1, j)
		return b.FinalAcc, a.FinalAcc, a.FinalAcc / b.FinalAcc
	}
	if b, a, ret := retention(0); ret >= 0.5 {
		t.Fatalf("mean should collapse under 20%% sign-flip: benign %v, attacked %v (retention %v)", b, a, ret)
	}
	for j, name := range []string{"", "trimmed:0.4", "krum"} {
		if j == 0 {
			continue
		}
		if b, a, ret := retention(j); ret < 0.9 {
			t.Fatalf("%s should hold ≥90%% of benign accuracy: benign %v, attacked %v (retention %v)", name, b, a, ret)
		}
	}
}
