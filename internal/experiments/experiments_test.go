package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fedcross/internal/core"
	"fedcross/internal/data"
)

// microProfile is even smaller than Tiny: for package tests we only need
// the harnesses to execute their logic, not to converge.
func microProfile() Profile {
	return Profile{
		Name:                "micro",
		VisionTrainPerClass: 12, VisionTestPerClass: 4,
		TextSamplesPerClient: 10, TextTestSamples: 40,
		NumClients: 6, ClientsPerRound: 3,
		Rounds: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.03, Momentum: 0.5,
		EvalEvery: 1,
		Seeds:     []int64{1},
	}
}

func TestNewAlgorithmAllNames(t *testing.T) {
	for _, name := range AlgorithmNames() {
		algo, err := NewAlgorithm(name)
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		if algo.Name() != name {
			t.Fatalf("algorithm %q reports name %q", name, algo.Name())
		}
	}
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestBuildEnvAllDatasets(t *testing.T) {
	p := microProfile()
	for _, ds := range DatasetNames() {
		env, err := p.BuildEnv(ds, "cnn", data.Heterogeneity{Beta: 0.5}, 1)
		if err != nil {
			t.Fatalf("BuildEnv(%q): %v", ds, err)
		}
		if env.NumClients() != p.NumClients {
			t.Fatalf("%s: %d clients, want %d", ds, env.NumClients(), p.NumClients)
		}
		if env.Fed.Test.Len() == 0 {
			t.Fatalf("%s: empty test set", ds)
		}
	}
	if _, err := p.BuildEnv("nope", "cnn", data.Heterogeneity{}, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if _, err := p.BuildEnv("vision10", "nope", data.Heterogeneity{}, 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestStatSummary(t *testing.T) {
	s := NewStat([]float64{0.5, 0.7})
	if math.Abs(s.Mean-0.6) > 1e-12 || math.Abs(s.Std-0.1) > 1e-12 || s.N != 2 {
		t.Fatalf("Stat = %+v", s)
	}
	if got := s.String(); got != "60.00 ± 10.00" {
		t.Fatalf("Stat.String = %q", got)
	}
	if z := NewStat(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty stat %+v", z)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.Add("x", "y")
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "bb") || !strings.Contains(out, "x") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{Title: "curves", XLabel: "round", Xs: []int{1, 2},
		Curves: map[string][]float64{"a": {0.1, 0.2}, "b": {0.3}},
		Order:  []string{"a", "b"}}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.1000") || !strings.Contains(out, "-") {
		t.Fatalf("series output:\n%s", out)
	}
}

func TestHeatmapRendering(t *testing.T) {
	h := Heatmap{Title: "hm", Counts: [][]int{{0, 5}, {2, 1}}}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hm") {
		t.Fatal("heatmap missing title")
	}
}

func TestRunTableI(t *testing.T) {
	res, err := RunTableI(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("TableI rows = %d, want 6", len(res.Rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range res.Rows {
		byName[r.Algorithm] = r
	}
	// FedCross communication equals FedAvg exactly (the paper's headline
	// overhead claim).
	if byName["fedcross"].ModelEquivalents != byName["fedavg"].ModelEquivalents {
		t.Fatalf("fedcross %v vs fedavg %v model-equivalents",
			byName["fedcross"].ModelEquivalents, byName["fedavg"].ModelEquivalents)
	}
	if byName["scaffold"].Overhead != "High" || byName["fedgen"].Overhead != "Medium" || byName["fedcross"].Overhead != "Low" {
		t.Fatalf("overhead classes: %+v", byName)
	}
	// SCAFFOLD and FedGen cost strictly more than FedAvg.
	if byName["scaffold"].ModelEquivalents <= byName["fedavg"].ModelEquivalents {
		t.Fatal("scaffold should cost more than fedavg")
	}
	if byName["fedgen"].ModelEquivalents <= byName["fedavg"].ModelEquivalents {
		t.Fatal("fedgen should cost more than fedavg")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Multi-Model Guided") {
		t.Fatal("render missing fedcross category")
	}
	if _, err := RunTableI(0); err == nil {
		t.Fatal("K=0 must error")
	}
}

func TestRunTableIISlice(t *testing.T) {
	opts := TableIIOptions{
		Profile:    microProfile(),
		Models:     []string{"mlp"},
		Datasets:   []string{"vision10"},
		Hets:       []data.Heterogeneity{{IID: true}},
		Algorithms: []string{"fedavg", "fedcross"},
	}
	res, err := RunTableII(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	cell := res.Cells[0]
	if len(cell.Acc) != 2 {
		t.Fatalf("acc entries = %d", len(cell.Acc))
	}
	if cell.Winner != "fedavg" && cell.Winner != "fedcross" {
		t.Fatalf("winner %q", cell.Winner)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vision10") {
		t.Fatal("render missing dataset")
	}
	wins, total := res.FedCrossWins()
	if total != 1 || wins < 0 || wins > 1 {
		t.Fatalf("FedCrossWins = %d/%d", wins, total)
	}
}

func TestRunTableIITextDataset(t *testing.T) {
	opts := TableIIOptions{
		Profile:    microProfile(),
		Models:     []string{"cnn"}, // overridden to lstm for text
		Datasets:   []string{"sent140"},
		Algorithms: []string{"fedavg"},
	}
	res, err := RunTableII(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Het != "-" {
		t.Fatalf("text cell %+v", res.Cells)
	}
}

func TestRunTableIII(t *testing.T) {
	opts := TableIIIOptions{
		Profile:    microProfile(),
		Alphas:     []float64{0.5, 0.99},
		Strategies: []core.Strategy{core.InOrder},
		Model:      "mlp",
		Beta:       1.0,
	}
	res, err := RunTableIII(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if _, ok := res.Get(0.5, core.InOrder); !ok {
		t.Fatal("missing cell 0.5/in-order")
	}
	if _, ok := res.Get(0.7, core.InOrder); ok {
		t.Fatal("phantom cell")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "in-order") {
		t.Fatal("render missing strategy column")
	}
	if _, err := RunTableIII(TableIIIOptions{}); err == nil {
		t.Fatal("empty options must error")
	}
}

func TestRunFig3SkewOrdering(t *testing.T) {
	opts := DefaultFig3Options()
	opts.Profile = microProfile()
	res, err := RunFig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	// The paper's Figure-3 shape: smaller beta, more skew.
	if !(res.Panels[0].SkewScore > res.Panels[2].SkewScore) {
		t.Fatalf("skew(beta=0.1)=%v should exceed skew(beta=1.0)=%v",
			res.Panels[0].SkewScore, res.Panels[2].SkewScore)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dir(beta=0.1)") {
		t.Fatal("render missing panel title")
	}
}

func TestRunFig4Micro(t *testing.T) {
	opts := DefaultFig4Options()
	opts.Profile = microProfile()
	opts.Model = "mlp"
	opts.Hets = []data.Heterogeneity{{IID: true}}
	opts.Scan.Resolution = 3
	opts.Scan.MaxSamples = 16
	opts.SharpnessDirs = 1
	res, err := RunFig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 1 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	p := res.Panels[0]
	if p.FedAvgGrid == nil || p.FedCrossGrid == nil {
		t.Fatal("missing grids")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sharpness") {
		t.Fatal("render missing sharpness")
	}
}

func TestRunFig5Micro(t *testing.T) {
	opts := Fig5Options{
		Profile: microProfile(),
		Models:  []string{"mlp"},
		Hets:    []data.Heterogeneity{{IID: true}},
	}
	res, err := RunFig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 1 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	cs := res.Panels[0]
	if len(cs.Rounds) == 0 || len(cs.Acc) != 6 {
		t.Fatalf("curves rounds=%d algos=%d", len(cs.Rounds), len(cs.Acc))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fedcross") {
		t.Fatal("render missing fedcross curve")
	}
}

func TestRunFig6Micro(t *testing.T) {
	opts := Fig6Options{
		Profile:    microProfile(),
		Ks:         []int{2, 3},
		Model:      "mlp",
		Beta:       0.5,
		Algorithms: []string{"fedavg", "fedcross"},
	}
	res, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || res.Cells[0].K != 2 {
		t.Fatalf("cells %+v", res.Cells)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7Micro(t *testing.T) {
	opts := Fig7Options{
		Profile:      microProfile(),
		Ns:           []int{6, 12},
		Model:        "mlp",
		Beta:         0.5,
		TotalSamples: 120,
		Algorithms:   []string{"fedcross"},
	}
	res, err := RunFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig8Micro(t *testing.T) {
	opts := Fig8Options{
		Profile:    microProfile(),
		Alphas:     []float64{0.9},
		Strategies: []core.Strategy{core.InOrder},
		Beta:       1.0,
		Model:      "mlp",
	}
	res, err := RunFig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 1 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	cs := res.Panels[0]
	if _, ok := cs.Acc["fedavg"]; !ok {
		t.Fatal("missing fedavg reference curve")
	}
	if _, ok := cs.Acc["alpha=0.9"]; !ok {
		t.Fatalf("missing alpha curve; have %v", cs.Order)
	}
}

func TestRunFig9Micro(t *testing.T) {
	opts := Fig9Options{
		Profile:        microProfile(),
		Model:          "mlp",
		Hets:           []data.Heterogeneity{{IID: true}},
		AccelRounds:    2,
		PropellerCount: 2,
	}
	res, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Panels[0]
	for _, name := range []string{"vanilla", "pm", "da", "pm-da"} {
		if _, ok := cs.Acc[name]; !ok {
			t.Fatalf("missing variant %q", name)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCurveSetHelpers(t *testing.T) {
	cs := &CurveSet{Acc: map[string][]float64{"a": {0.2, 0.5, 0.4}}}
	if cs.Best("a") != 0.5 {
		t.Fatalf("Best = %v", cs.Best("a"))
	}
	if cs.Final("a") != 0.4 {
		t.Fatalf("Final = %v", cs.Final("a"))
	}
	if cs.Final("missing") != 0 {
		t.Fatal("missing curve should be 0")
	}
}

func TestProfilesAreValid(t *testing.T) {
	for _, p := range []Profile{TinyProfile(), SmallProfile(), PaperProfile()} {
		if err := p.Config(1).Validate(); err != nil {
			t.Fatalf("profile %s invalid: %v", p.Name, err)
		}
		if p.ClientsPerRound > p.NumClients {
			t.Fatalf("profile %s: K > N", p.Name)
		}
	}
}
