package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/landscape"
)

// Fig4Options configures the loss-landscape comparison (paper Figure 4 /
// RQ1: FedCross global models land in flatter valleys than FedAvg's).
type Fig4Options struct {
	Profile Profile
	// Model is the architecture (paper: ResNet-20 → resnet here).
	Model string
	// Hets are the data settings (paper: β = 0.1 and IID).
	Hets []data.Heterogeneity
	// Scan configures the 2-D landscape grid.
	Scan landscape.Options
	// SharpnessRadius / SharpnessDirs configure the scalar flatness metric.
	SharpnessRadius float64
	SharpnessDirs   int
}

// DefaultFig4Options mirrors the paper's two panels at tiny scale.
func DefaultFig4Options() Fig4Options {
	scan := landscape.DefaultOptions()
	scan.Resolution = 5
	return Fig4Options{
		Profile:         TinyProfile(),
		Model:           "resnet",
		Hets:            []data.Heterogeneity{{Beta: 0.1}, {IID: true}},
		Scan:            scan,
		SharpnessRadius: 0.3, SharpnessDirs: 3,
	}
}

// Fig4Panel compares FedAvg and FedCross landscapes under one setting.
type Fig4Panel struct {
	Het string
	// FedAvgGrid / FedCrossGrid are the 2-D loss surfaces.
	FedAvgGrid, FedCrossGrid *landscape.Grid
	// FedAvgSharpness / FedCrossSharpness are the scalar flatness
	// metrics; the paper's claim is FedCross < FedAvg.
	FedAvgSharpness, FedCrossSharpness float64
	// FedAvgAcc / FedCrossAcc are the trained models' test accuracies.
	FedAvgAcc, FedCrossAcc float64
}

// Fig4Result holds all panels.
type Fig4Result struct {
	Panels []Fig4Panel
}

// RunFig4 trains FedAvg and FedCross under each setting, then scans the
// loss landscape around both global models and computes sharpness. Every
// (heterogeneity, algorithm) pair is an independent scheduler cell — the
// two methods of a panel train concurrently on one shared environment
// build, and the landscape probes draw their evaluation workers from the
// same budget as the training fan-outs.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	if len(opts.Hets) == 0 {
		return nil, fmt.Errorf("experiments: Fig4 needs at least one heterogeneity setting")
	}
	seed := firstSeed(opts.Profile)
	algos := []string{"fedavg", "fedcross"}
	res := &Fig4Result{Panels: make([]Fig4Panel, len(opts.Hets))}
	s := newScheduler(opts.Profile)
	err := s.Run(len(opts.Hets)*len(algos), func(i int) error {
		het := opts.Hets[i/len(algos)]
		which := algos[i%len(algos)]
		hist, env, algo, err := s.runOne(opts.Profile, "vision10", opts.Model, het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(which) })
		if err != nil {
			return fmt.Errorf("experiments: Fig4 %s %s: %w", which, het, err)
		}
		vec := algo.Global()
		scan := opts.Scan
		scan.Workers = s.Config(opts.Profile, seed).Allowance()
		grid, err := landscape.Scan2D(env.Model, vec, env.Fed.Test, scan)
		if err != nil {
			return fmt.Errorf("experiments: Fig4 scan %s: %w", which, err)
		}
		sharp, err := landscape.Sharpness(env.Model, vec, env.Fed.Test, opts.SharpnessRadius, opts.SharpnessDirs, scan.Seed, scan.Workers)
		if err != nil {
			return fmt.Errorf("experiments: Fig4 sharpness %s: %w", which, err)
		}
		// Cells of one panel write disjoint fields; Het is filled during
		// the serial assembly below so sibling cells never write one word.
		panel := &res.Panels[i/len(algos)]
		if which == "fedavg" {
			panel.FedAvgGrid, panel.FedAvgSharpness, panel.FedAvgAcc = grid, sharp, hist.Final().TestAcc
		} else {
			panel.FedCrossGrid, panel.FedCrossSharpness, panel.FedCrossAcc = grid, sharp, hist.Final().TestAcc
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, het := range opts.Hets {
		res.Panels[i].Het = het.String()
	}
	return res, nil
}

// Render writes the sharpness comparison and a coarse contour of each
// grid.
func (r *Fig4Result) Render(w io.Writer) error {
	t := Table{
		Title:  "Figure 4 — loss-landscape flatness (sharpness: lower = flatter)",
		Header: []string{"Setting", "FedAvg sharpness", "FedCross sharpness", "Flatter", "FedAvg acc", "FedCross acc"},
	}
	for _, p := range r.Panels {
		flatter := "fedcross"
		if p.FedAvgSharpness < p.FedCrossSharpness {
			flatter = "fedavg"
		}
		t.Add(p.Het,
			fmt.Sprintf("%.4f", p.FedAvgSharpness),
			fmt.Sprintf("%.4f", p.FedCrossSharpness),
			flatter,
			fmt.Sprintf("%.4f", p.FedAvgAcc),
			fmt.Sprintf("%.4f", p.FedCrossAcc))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	for _, p := range r.Panels {
		fmt.Fprintf(w, "\n%s: FedAvg grid centre=%.4f max=%.4f | FedCross grid centre=%.4f max=%.4f\n",
			p.Het, p.FedAvgGrid.CenterLoss(), p.FedAvgGrid.MaxLoss(),
			p.FedCrossGrid.CenterLoss(), p.FedCrossGrid.MaxLoss())
	}
	return nil
}
