package experiments

import (
	"io"
	"testing"
)

// commProfile sizes the sweep for a fast test: a few rounds of the tiny
// environment per codec.
func commProfile() Profile {
	p := TinyProfile()
	p.Rounds = 2
	p.EvalEvery = 1
	p.NumClients = 6
	p.ClientsPerRound = 3
	p.VisionTrainPerClass = 10
	p.VisionTestPerClass = 4
	return p
}

// TestCommCurve pins the sweep's structure: one curve per codec, strictly
// increasing cumulative traffic, identity moving the most bytes and every
// lossy codec strictly fewer — the whole point of the wire.
func TestCommCurve(t *testing.T) {
	opts := DefaultCommCurveOptions()
	opts.Profile = commProfile()
	opts.Model = "mlp"
	res, err := RunCommCurve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(opts.Codecs) {
		t.Fatalf("%d curves for %d codecs", len(res.Curves), len(opts.Codecs))
	}
	var identityMB float64
	for _, c := range res.Curves {
		if len(c.Points) == 0 {
			t.Fatalf("codec %s: no evaluated points", c.Codec)
		}
		prev := 0.0
		for _, p := range c.Points {
			if p.CumMB <= prev {
				t.Fatalf("codec %s: cumulative MB not increasing: %v", c.Codec, c.Points)
			}
			prev = p.CumMB
		}
		if c.Codec == "identity" {
			identityMB = c.TotalMB
		}
	}
	if identityMB == 0 {
		t.Fatal("identity curve missing or moved zero bytes")
	}
	for _, c := range res.Curves {
		if c.Codec != "identity" && c.TotalMB >= identityMB {
			t.Fatalf("lossy codec %s moved %v MB, identity %v — compression had no effect", c.Codec, c.TotalMB, identityMB)
		}
	}
	if err := res.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestCommCurveDeadline pins straggler surfacing through the harness: an
// edge network with a tight deadline must report stragglers in at least
// one curve, and the runs must stay deterministic.
func TestCommCurveDeadline(t *testing.T) {
	opts := DefaultCommCurveOptions()
	opts.Profile = commProfile()
	opts.Model = "mlp"
	opts.Codecs = []string{"identity"}
	opts.Network = "edge"
	opts.DeadlineSec = 0.5
	a, err := RunCommCurve(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCommCurve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Curves[0].Stragglers != b.Curves[0].Stragglers {
		t.Fatalf("straggler count not deterministic: %d vs %d", a.Curves[0].Stragglers, b.Curves[0].Stragglers)
	}
	if a.Curves[0].Stragglers == 0 {
		t.Fatal("edge network with 0.5 s deadline produced no stragglers")
	}
}
