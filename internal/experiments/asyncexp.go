package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// AsyncSweepOptions configures the buffered-asynchronous sweep: the
// FedBuff engine run on identical environments under every (buffer size ×
// in-flight concurrency) combination, so the grid shows how the
// staleness/throughput trade moves with both knobs.
type AsyncSweepOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Buffers are the commit buffer sizes B swept (default 1, 4, 8).
	Buffers []int
	// InFlights are the concurrent-client counts M swept (default K,
	// 2K for the profile's K).
	InFlights []int
	// Async seeds the engine options shared by every cell (staleness
	// exponent, server LR, compute model); Buffer and InFlight are
	// overwritten per cell.
	Async fl.AsyncOptions
}

// DefaultAsyncSweepOptions returns the standard sweep for a profile.
func DefaultAsyncSweepOptions(p Profile) AsyncSweepOptions {
	k := p.ClientsPerRound
	if k <= 0 {
		k = 4
	}
	return AsyncSweepOptions{
		Profile:   p,
		Dataset:   "vision10",
		Model:     "cnn",
		Het:       data.Heterogeneity{Beta: 0.5},
		Buffers:   []int{1, 4, 8},
		InFlights: []int{k, 2 * k},
	}
}

// AsyncCell is one (buffer, in-flight) run's summary.
type AsyncCell struct {
	Buffer, InFlight  int
	FinalAcc, BestAcc float64
	// Arrivals is the total number of uploads folded; MBUp is the
	// measured uplink traffic.
	Arrivals int
	MBUp     float64
}

// AsyncSweepResult holds the grid, row-major over (buffer, in-flight).
type AsyncSweepResult struct {
	Title     string
	Buffers   []int
	InFlights []int
	Cells     []AsyncCell
}

// Cell returns the (buffer index, in-flight index) cell.
func (r *AsyncSweepResult) Cell(i, j int) AsyncCell { return r.Cells[i*len(r.InFlights)+j] }

// RunAsyncSweep executes the buffered-asynchronous grid through the
// scheduler (shared environment build, shared worker budget). Each cell's
// history is a pure function of its seed and knobs — the async engine
// draws every arrival time and client pick serially at dispatch — so the
// grid is bit-identical at every Jobs/Parallelism setting.
func RunAsyncSweep(opts AsyncSweepOptions) (*AsyncSweepResult, error) {
	def := DefaultAsyncSweepOptions(opts.Profile)
	if opts.Dataset == "" {
		opts.Dataset = def.Dataset
	}
	if opts.Model == "" {
		opts.Model = def.Model
	}
	if len(opts.Buffers) == 0 {
		opts.Buffers = def.Buffers
	}
	if len(opts.InFlights) == 0 {
		opts.InFlights = def.InFlights
	}
	seed := int64(1)
	if len(opts.Profile.Seeds) > 0 {
		seed = opts.Profile.Seeds[0]
	}
	res := &AsyncSweepResult{
		Title: fmt.Sprintf("Buffered-async (FedBuff) — %s/%s, net=%s",
			opts.Dataset, opts.Model, netName(opts.Profile.Network)),
		Buffers:   opts.Buffers,
		InFlights: opts.InFlights,
		Cells:     make([]AsyncCell, len(opts.Buffers)*len(opts.InFlights)),
	}
	s := newScheduler(opts.Profile)
	err := s.Run(len(res.Cells), func(idx int) error {
		i, j := idx/len(opts.InFlights), idx%len(opts.InFlights)
		env, err := s.Env(opts.Profile, opts.Dataset, opts.Model, opts.Het, seed)
		if err != nil {
			return err
		}
		ao := opts.Async
		ao.Buffer = opts.Buffers[i]
		ao.InFlight = opts.InFlights[j]
		hist, err := fl.RunAsync(env, s.Config(opts.Profile, seed), ao)
		if err != nil {
			return fmt.Errorf("experiments: async B=%d M=%d: %w",
				opts.Buffers[i], opts.InFlights[j], err)
		}
		res.Cells[idx] = AsyncCell{
			Buffer:   opts.Buffers[i],
			InFlight: opts.InFlights[j],
			FinalAcc: hist.Final().TestAcc,
			BestAcc:  hist.BestAcc(),
			Arrivals: hist.Comm.ModelsUp,
			MBUp:     float64(hist.BytesUp) / (1 << 20),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the grid as one table, a row per (buffer, in-flight).
func (r *AsyncSweepResult) Render(w io.Writer) error {
	t := Table{
		Title:  r.Title,
		Header: []string{"Buffer", "In-flight", "Final acc", "Best acc", "Arrivals", "MB up"},
	}
	for i := range r.Buffers {
		for j := range r.InFlights {
			c := r.Cell(i, j)
			t.Add(
				fmt.Sprintf("%d", c.Buffer),
				fmt.Sprintf("%d", c.InFlight),
				fmt.Sprintf("%.4f", c.FinalAcc),
				fmt.Sprintf("%.4f", c.BestAcc),
				fmt.Sprintf("%d", c.Arrivals),
				fmt.Sprintf("%.2f", c.MBUp),
			)
		}
	}
	_, err := t.WriteTo(w)
	return err
}
