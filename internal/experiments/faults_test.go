package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFaultGridRetentionAndDeterminism: the fault sweep runs end to end
// on the micro profile, its level-0 cell anchors the retention column,
// faulted cells actually fire faults, and the grid render is
// bit-identical at Jobs=1 and Jobs=4.
func TestFaultGridRetentionAndDeterminism(t *testing.T) {
	run := func(p Profile) (renderable, error) {
		o := DefaultFaultGridOptions()
		o.Profile = p
		o.Model = "mlp"
		o.Levels = []float64{0, 0.2}
		return RunFaultGrid(o)
	}
	serial := renderAtJobs(t, 1, run)
	wide := renderAtJobs(t, 4, run)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("fault grid: Jobs=1 vs Jobs=4 renders differ:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", serial, wide)
	}

	o := DefaultFaultGridOptions()
	o.Profile = microProfile()
	o.Model = "mlp"
	o.Levels = []float64{0, 0.2}
	res, err := RunFaultGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(res.Cells))
	}
	benign, faulted := res.Cells[0], res.Cells[1]
	if benign.Crashes+benign.FaultDrops+benign.Retries+benign.Stalls != 0 {
		t.Fatalf("level 0 must stay fault-free: %+v", benign)
	}
	if faulted.Crashes == 0 && faulted.FaultDrops == 0 && faulted.Stalls == 0 {
		t.Fatalf("level 0.2 fired no faults: %+v", faulted)
	}
	if ret := res.Retention(1); ret <= 0 {
		t.Fatalf("retention at level 0.2 must be positive, got %v", ret)
	}
	if res.Retention(0) != 1 {
		t.Fatalf("retention at level 0 must be exactly 1, got %v", res.Retention(0))
	}
}

// TestChurnGridBaselineAndTelemetry: availability 1 is the benign anchor
// (no churn telemetry), lower availabilities lose selection slots, and
// the sweep is deterministic across cell parallelism.
func TestChurnGridBaselineAndTelemetry(t *testing.T) {
	run := func(p Profile) (renderable, error) {
		o := DefaultChurnGridOptions()
		o.Profile = p
		o.Model = "mlp"
		o.Availabilities = []float64{1, 0.3}
		return RunChurnGrid(o)
	}
	serial := renderAtJobs(t, 1, run)
	wide := renderAtJobs(t, 4, run)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("churn grid: Jobs=1 vs Jobs=4 renders differ:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", serial, wide)
	}

	o := DefaultChurnGridOptions()
	o.Profile = microProfile()
	o.Model = "mlp"
	o.Availabilities = []float64{1, 0.3}
	res, err := RunChurnGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(res.Cells))
	}
	if res.Cells[0].Unavailable != 0 {
		t.Fatalf("availability 1 must lose no slots: %+v", res.Cells[0])
	}
	if res.Cells[1].Unavailable == 0 {
		t.Fatalf("availability 0.3 must lose slots: %+v", res.Cells[1])
	}
}

// TestResumeCheckAllMatch: the crash/resume harness reports byte-identity
// for a representative algorithm pair under the default fault mix.
func TestResumeCheckAllMatch(t *testing.T) {
	o := DefaultResumeCheckOptions()
	o.Profile = microProfile()
	o.Model = "mlp"
	o.Algorithms = []string{"fedavg", "fedcross"}
	o.StopRounds = []int{2}
	res, err := RunResumeCheck(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if !c.Match {
			t.Fatalf("%s stop %d diverged", c.Algorithm, c.StopRound)
		}
	}
}

// TestResumeStops pins the default kill-point policy.
func TestResumeStops(t *testing.T) {
	for _, tc := range []struct {
		rounds int
		want   []int
	}{
		{8, []int{1, 4, 7}},
		{3, []int{1, 2}},
		{2, []int{1}},
		{1, []int{1}},
	} {
		if got := resumeStops(tc.rounds); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("resumeStops(%d) = %v, want %v", tc.rounds, got, tc.want)
		}
	}
}
