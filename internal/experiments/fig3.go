package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/models"
)

// Fig3Options configures the data-distribution visualisation (paper
// Figure 3: class × client sample counts under Dir(β)).
type Fig3Options struct {
	Profile Profile
	// Betas are the Dirichlet settings (paper: 0.1, 0.5, 1.0).
	Betas []float64
	// ShowClients caps how many clients are rendered (paper shows 10).
	ShowClients int
	// Seed drives generation and partitioning.
	Seed int64
}

// DefaultFig3Options mirrors the paper's three panels.
func DefaultFig3Options() Fig3Options {
	return Fig3Options{Profile: TinyProfile(), Betas: []float64{0.1, 0.5, 1.0}, ShowClients: 10, Seed: 1}
}

// Fig3Panel is one β setting's distribution matrix.
type Fig3Panel struct {
	Beta float64
	// Counts[class][client] restricted to the first ShowClients clients.
	Counts [][]int
	// SkewScore is the mean squared deviation of per-client class shares
	// from uniform — a scalar so the β ordering is testable.
	SkewScore float64
}

// Fig3Result holds all panels.
type Fig3Result struct {
	Panels []Fig3Panel
}

// RunFig3 partitions the vision corpus under each β and collects the
// class × client matrices; the β panels are independent scheduler cells
// (generation + partitioning only — no training, so no environment
// cache). Expected shape: smaller β ⇒ larger SkewScore.
func RunFig3(opts Fig3Options) (*Fig3Result, error) {
	if len(opts.Betas) == 0 {
		return nil, fmt.Errorf("experiments: Fig3 needs at least one beta")
	}
	res := &Fig3Result{Panels: make([]Fig3Panel, len(opts.Betas))}
	s := newScheduler(opts.Profile)
	err := s.Run(len(opts.Betas), func(i int) error {
		beta := opts.Betas[i]
		cfg := data.VisionConfig{
			Classes: 10, Features: models.VisionFeatures,
			TrainPerClass: opts.Profile.VisionTrainPerClass, TestPerClass: 1,
			ModesPerClass: 1, Sep: 1, Noise: 0.3, Seed: opts.Seed,
		}
		fed := data.BuildVision(cfg, opts.Profile.NumClients, data.Heterogeneity{Beta: beta}, opts.Seed+7)
		full := fed.DistributionMatrix()
		show := opts.ShowClients
		if show <= 0 || show > len(full[0]) {
			show = len(full[0])
		}
		counts := make([][]int, len(full))
		for c := range full {
			counts[c] = full[c][:show]
		}
		res.Panels[i] = Fig3Panel{Beta: beta, Counts: counts, SkewScore: skewScore(fed)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// skewScore averages the squared deviation of each client's class
// distribution from uniform.
func skewScore(fed *data.Federated) float64 {
	uniform := 1.0 / float64(fed.Classes)
	total := 0.0
	n := 0
	for ci := 0; ci < fed.NumClients(); ci++ {
		if fed.Size(ci) == 0 {
			continue
		}
		shard := fed.LeaseShard(ci)
		counts := shard.ClassCounts()
		for _, c := range counts {
			d := float64(c)/float64(shard.Len()) - uniform
			total += d * d
		}
		fed.ReleaseShard(ci)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Render writes each panel as a heat map with its skew score.
func (r *Fig3Result) Render(w io.Writer) error {
	for _, p := range r.Panels {
		hm := Heatmap{
			Title:    fmt.Sprintf("Figure 3 — client class distribution, Dir(beta=%.1f), skew=%.4f", p.Beta, p.SkewScore),
			RowLabel: "class",
			Counts:   p.Counts,
		}
		if _, err := hm.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
