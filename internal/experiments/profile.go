// Package experiments contains one harness per table and figure of the
// paper's evaluation (Section IV). Each harness builds its workload from a
// Profile (Tiny for tests/benches, Small for examples, Paper for the
// full-scale CLI run), executes the algorithms, and renders the same rows
// or series the paper reports. EXPERIMENTS.md records paper-vs-measured
// shapes for every artifact.
package experiments

import (
	"fmt"

	"fedcross/internal/baselines"
	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
)

// Profile sizes an experiment run. The paper's absolute scale (2000 GPU
// rounds on CIFAR) is out of reach for a single-CPU pure-Go run, so
// profiles preserve relative structure: same K/N ratio, same local-epoch
// and batch settings, scaled sample counts and rounds.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// VisionTrainPerClass / VisionTestPerClass size the synthetic vision
	// corpora.
	VisionTrainPerClass, VisionTestPerClass int
	// TextSamplesPerClient / TextTestSamples size the LEAF-style tasks.
	TextSamplesPerClient, TextTestSamples int
	// NumClients is N; ClientsPerRound is K (the paper activates 10%).
	NumClients, ClientsPerRound int
	// Rounds, LocalEpochs, BatchSize, LR, Momentum mirror fl.Config.
	Rounds, LocalEpochs, BatchSize int
	LR, Momentum                   float64
	// EvalEvery controls the learning-curve resolution.
	EvalEvery int
	// Seeds are the independent repetitions behind mean±std cells.
	Seeds []int64
	// Parallelism caps the training/evaluation worker goroutines per run
	// (fl.Config.Parallelism): 0 uses every core, 1 forces serial
	// execution. Results are identical either way.
	Parallelism int
	// BatchFanout caps how many same-shape client jobs a round may fuse
	// into one batched training pass (fl.Config.BatchFanout): 0 or 1
	// trains every client solo. Results are bit-identical either way.
	BatchFanout int
	// Jobs caps how many grid cells (independent algorithm runs) an
	// experiment harness executes concurrently: 0 uses every core, 1
	// forces strictly sequential cells. Cells arbitrate their inner
	// Parallelism against one shared worker budget, so any Jobs ×
	// Parallelism combination is safe — and results are bit-identical at
	// every setting (see Scheduler).
	Jobs int
	// PrefetchRounds is how many future rounds of planned cohorts each
	// run warms through the lazy source's background pool
	// (fl.Config.PrefetchRounds): 0 disables lookahead. Histories are
	// bit-identical at every setting; prefetch moves wall-clock only.
	PrefetchRounds int
	// CacheStripes overrides the lazy shard cache's stripe count and
	// CacheCap its resident-shard capacity (0 = auto for both: stripes
	// clamp(NumCPU, 8, 64), capacity clamp(4K, 64, 4096)). Both are
	// wall-clock/memory knobs — shard bytes never change.
	CacheStripes, CacheCap int
	// Codec, Network and DeadlineSec configure the simulated wire every
	// run's payloads travel over (fl.Config.Transport). Zero values mean
	// the pass-through reference wire.
	Codec, Network string
	DeadlineSec    float64
	// Reducer names the server-side aggregation rule every run's upload
	// fold routes through (core.ReducerByName registry: mean,
	// trimmed[:frac], median, krum[:f], multikrum[:f]:[m]). "" keeps the
	// legacy weighted mean, bit-identical to the pre-reducer engine.
	Reducer string
	// Attack, AttackFrac and AttackScale configure Byzantine client
	// injection (fl.AdversaryOptions); zero values run benign.
	Attack                  string
	AttackFrac, AttackScale float64
	// Faults configures deterministic fault injection (fl.Config.Faults);
	// the zero value runs fault-free and bit-identical to earlier engines.
	Faults fl.FaultOptions
	// MinUploads is the per-round upload-acceptance quorum
	// (fl.Config.MinUploads); 0 disables quorum degradation.
	MinUploads int
	// Retries and RetryBackoffSec configure deadline-aware upload retries
	// on the simulated wire (fl.TransportOptions).
	Retries         int
	RetryBackoffSec float64
	// Churn configures availability traces and population drift
	// (fl.Config.Churn); the zero value keeps the fleet static.
	Churn fl.ChurnOptions
	// Checkpoint configures round-granular snapshots and resume
	// (fl.Config.Checkpoint); the zero value never touches disk.
	Checkpoint fl.CheckpointOptions
}

// TinyProfile sizes experiments for unit tests and testing.B benches:
// every harness completes in seconds on one CPU.
func TinyProfile() Profile {
	return Profile{
		Name:                "tiny",
		VisionTrainPerClass: 30, VisionTestPerClass: 10,
		TextSamplesPerClient: 20, TextTestSamples: 120,
		NumClients: 20, ClientsPerRound: 4,
		Rounds: 8, LocalEpochs: 5, BatchSize: 25,
		LR: 0.05, Momentum: 0.5,
		EvalEvery: 2,
		Seeds:     []int64{1},
	}
}

// SmallProfile sizes the runnable examples: minutes, with visible learning
// curves.
func SmallProfile() Profile {
	return Profile{
		Name:                "small",
		VisionTrainPerClass: 60, VisionTestPerClass: 20,
		TextSamplesPerClient: 40, TextTestSamples: 300,
		NumClients: 40, ClientsPerRound: 6,
		Rounds: 30, LocalEpochs: 3, BatchSize: 25,
		LR: 0.02, Momentum: 0.5,
		EvalEvery: 3,
		Seeds:     []int64{1, 2},
	}
}

// PaperProfile mirrors the paper's relative setup (N=100, K=10, E=5,
// B=50, lr=0.01, momentum=0.5) with sample counts and rounds scaled to
// what a CPU run can finish; invoke via cmd/fedsim for the long runs.
func PaperProfile() Profile {
	return Profile{
		Name:                "paper",
		VisionTrainPerClass: 100, VisionTestPerClass: 25,
		TextSamplesPerClient: 60, TextTestSamples: 500,
		NumClients: 100, ClientsPerRound: 10,
		Rounds: 200, LocalEpochs: 5, BatchSize: 50,
		LR: 0.01, Momentum: 0.5,
		EvalEvery: 10,
		Seeds:     []int64{1, 2, 3},
	}
}

// Config converts the profile into the runner configuration for a given
// seed. A non-empty Reducer name is resolved through core.ReducerByName;
// an unknown name panics, so CLI layers must pre-validate with
// ValidateReducer (every run would fail identically anyway — the panic
// just surfaces the typo at configuration time instead of once per cell).
// Each call constructs a fresh reducer instance: reducers carry per-run
// worker allowances, so concurrent grid cells must never share one.
func (p Profile) Config(seed int64) fl.Config {
	cfg := fl.Config{
		Rounds:          p.Rounds,
		ClientsPerRound: p.ClientsPerRound,
		LocalEpochs:     p.LocalEpochs,
		BatchSize:       p.BatchSize,
		LR:              p.LR,
		Momentum:        p.Momentum,
		EvalEvery:       p.EvalEvery,
		Seed:            seed,
		Parallelism:     p.Parallelism,
		BatchFanout:     p.BatchFanout,
		PrefetchRounds:  p.PrefetchRounds,
		CacheStripes:    p.CacheStripes,
		Transport: fl.TransportOptions{
			Codec:           p.Codec,
			Network:         p.Network,
			DeadlineSec:     p.DeadlineSec,
			Retries:         p.Retries,
			RetryBackoffSec: p.RetryBackoffSec,
		},
		Adversary: fl.AdversaryOptions{
			Attack: p.Attack,
			Frac:   p.AttackFrac,
			Scale:  p.AttackScale,
		},
		Faults:     p.Faults,
		MinUploads: p.MinUploads,
		Churn:      p.Churn,
		Checkpoint: p.Checkpoint,
	}
	if p.Reducer != "" {
		r, err := core.ReducerByName(p.Reducer)
		if err != nil {
			panic(fmt.Sprintf("experiments: profile %q: %v", p.Name, err))
		}
		cfg.Reducer = r
	}
	return cfg
}

// ValidateReducer checks a reducer name against the full registry without
// constructing a run — the CLI pre-flight for Profile.Config's panic.
func ValidateReducer(name string) error {
	if name == "" {
		return nil
	}
	_, err := core.ReducerByName(name)
	return err
}

// AlgorithmNames lists the six methods of the comparison in the paper's
// Table-I order.
func AlgorithmNames() []string {
	return []string{"fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross"}
}

// NewAlgorithm builds a method by name with the paper's settings (FedProx
// µ=0.01, FedGen defaults, FedCross α=0.99 + lowest similarity).
func NewAlgorithm(name string) (fl.Algorithm, error) {
	switch name {
	case "fedavg":
		return baselines.NewFedAvg(), nil
	case "fedprox":
		return baselines.NewFedProx(0.01)
	case "scaffold":
		return baselines.NewSCAFFOLD(), nil
	case "fedgen":
		return baselines.NewFedGen(baselines.DefaultFedGenOptions())
	case "clusamp":
		return baselines.NewCluSamp(), nil
	case "fedcross":
		return core.New(core.DefaultOptions())
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q (want one of %v)", name, AlgorithmNames())
	}
}

// DatasetNames lists the five evaluation datasets (synthetic substitutes;
// DESIGN.md §2).
func DatasetNames() []string {
	return []string{"vision10", "vision100", "femnist", "shakespeare", "sent140"}
}

// BuildEnv constructs the environment for a dataset/model pair under the
// profile. Vision datasets honour the heterogeneity setting; the
// LEAF-style datasets are naturally non-IID and ignore it. For text
// datasets the model name is ignored (they fix their LSTM architecture).
func (p Profile) BuildEnv(dataset, model string, het data.Heterogeneity, seed int64) (*fl.Env, error) {
	switch dataset {
	case "vision10", "vision100":
		classes := 10
		if dataset == "vision100" {
			classes = 100
		}
		cfg := data.VisionConfig{
			Classes: classes, Features: models.VisionFeatures,
			TrainPerClass: p.VisionTrainPerClass, TestPerClass: p.VisionTestPerClass,
			ModesPerClass: 4, Sep: 0.55, Noise: 0.9, Seed: seed,
		}
		if classes == 100 {
			// CIFAR-100 analogue: more classes, fewer samples each.
			cfg.TrainPerClass = maxInt(4, p.VisionTrainPerClass/5)
			cfg.TestPerClass = maxInt(2, p.VisionTestPerClass/5)
			cfg.ModesPerClass = 2
		}
		fac, err := visionModel(model, classes)
		if err != nil {
			return nil, err
		}
		if p.NumClients >= LazyClientCutoff {
			cap := p.CacheCap
			if cap <= 0 {
				cap = clampInt(4*p.ClientsPerRound, 64, 4096)
			}
			fed := data.BuildVisionLazyStriped(cfg, p.NumClients, het, seed+1000, cap, p.CacheStripes)
			return &fl.Env{Fed: fed, Model: fac}, nil
		}
		return &fl.Env{Fed: data.BuildVision(cfg, p.NumClients, het, seed+1000), Model: fac}, nil

	case "femnist":
		cfg := data.FEMNISTConfig{
			Classes: 62, Features: models.VisionFeatures,
			Writers:       p.NumClients,
			MinSamples:    maxInt(10, p.TextSamplesPerClient/2),
			MaxSamples:    p.TextSamplesPerClient * 2,
			TestSamples:   maxInt(62, p.TextTestSamples),
			StyleStrength: 0.3, Seed: seed,
		}
		fac, err := visionModel(model, 62)
		if err != nil {
			return nil, err
		}
		return &fl.Env{Fed: data.GenerateFEMNIST(cfg), Model: fac}, nil

	case "shakespeare":
		cfg := data.ShakespeareConfig{
			Vocab: 24, SeqLen: 8,
			Clients:          p.NumClients,
			SamplesPerClient: p.TextSamplesPerClient,
			TestSamples:      p.TextTestSamples,
			Mix:              0.6, Seed: seed,
		}
		return &fl.Env{
			Fed:   data.GenerateShakespeare(cfg),
			Model: models.CharLSTM(cfg.Vocab, cfg.SeqLen, 6, 12),
		}, nil

	case "sent140":
		cfg := data.Sent140Config{
			Vocab: 40, SeqLen: 8,
			Clients:          p.NumClients,
			SamplesPerClient: p.TextSamplesPerClient,
			TestSamples:      p.TextTestSamples,
			SentimentTokens:  6, Seed: seed,
		}
		return &fl.Env{
			Fed:   data.GenerateSent140(cfg),
			Model: models.SentLSTM(cfg.Vocab, cfg.SeqLen, 6, 12),
		}, nil

	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q (want one of %v)", dataset, DatasetNames())
	}
}

func visionModel(name string, classes int) (models.Factory, error) {
	switch name {
	case "cnn", "":
		return models.CNN(classes), nil
	case "resnet":
		return models.ResNetMini(classes), nil
	case "vgg":
		return models.VGGMini(classes), nil
	case "mlp":
		return models.MLP(models.VisionFeatures, 32, classes), nil
	default:
		return models.Factory{}, fmt.Errorf("experiments: unknown vision model %q (want cnn, resnet, vgg or mlp)", name)
	}
}

// LazyClientCutoff is the population size at which BuildEnv switches the
// vision datasets from eager shard materialization to the lazy
// ClientSource: below it the whole federation fits comfortably in memory
// and stays bit-identical with every historical run; at or above it only
// the LRU working set (sized to a few rounds of selections) is resident.
const LazyClientCutoff = 512

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
