package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// CommCurveOptions configures the communication-vs-accuracy sweep: the
// same algorithm run once per wire codec on identical environments, so
// the only difference between curves is what the transport does to the
// payloads.
type CommCurveOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Algorithm is the method under test (default "fedcross").
	Algorithm string
	// Codecs are the wire codecs to sweep (default: identity, fp16, int8,
	// topk).
	Codecs []string
	// Network and DeadlineSec configure the link model shared by every
	// run (default: the ideal network, no deadline).
	Network     string
	DeadlineSec float64
}

// DefaultCommCurveOptions returns the standard sweep.
func DefaultCommCurveOptions() CommCurveOptions {
	return CommCurveOptions{
		Dataset:   "vision10",
		Model:     "cnn",
		Het:       data.Heterogeneity{Beta: 0.5},
		Algorithm: "fedcross",
		Codecs:    []string{"identity", "fp16", "int8", "topk"},
	}
}

// CommPoint is one evaluated round of one codec's run.
type CommPoint struct {
	Round int
	// CumMB is the cumulative two-way wire traffic in megabytes.
	CumMB float64
	// Acc is the global model's test accuracy at that point.
	Acc float64
}

// CommCurve is one codec's accuracy-vs-traffic trajectory.
type CommCurve struct {
	Codec string
	// Points are the evaluated rounds in order.
	Points []CommPoint
	// FinalAcc / BestAcc summarise the run.
	FinalAcc, BestAcc float64
	// TotalMB is the whole-run two-way traffic in megabytes.
	TotalMB float64
	// Stragglers counts deadline-missed uploads over the run.
	Stragglers int
}

// CommCurveResult holds the full sweep.
type CommCurveResult struct {
	Title  string
	Curves []CommCurve
}

// RunCommCurve executes the sweep: one run per codec, identical seeds and
// environments, accuracy plotted against measured bytes on the wire. It
// is the harness behind the question the paper's Table I only answers
// analytically — what accuracy does a method buy per megabyte moved?
func RunCommCurve(opts CommCurveOptions) (*CommCurveResult, error) {
	if opts.Dataset == "" {
		opts.Dataset = "vision10"
	}
	if opts.Model == "" {
		opts.Model = "cnn"
	}
	if opts.Algorithm == "" {
		opts.Algorithm = "fedcross"
	}
	if len(opts.Codecs) == 0 {
		opts.Codecs = []string{"identity", "fp16", "int8", "topk"}
	}
	seed := int64(1)
	if len(opts.Profile.Seeds) > 0 {
		seed = opts.Profile.Seeds[0]
	}
	res := &CommCurveResult{
		Title: fmt.Sprintf("Comm-vs-accuracy — %s on %s/%s, net=%s",
			opts.Algorithm, opts.Dataset, opts.Model, netName(opts.Network)),
		Curves: make([]CommCurve, len(opts.Codecs)),
	}
	// One scheduled cell per codec: every run shares the single
	// environment build (identical key) and the global worker budget.
	s := newScheduler(opts.Profile)
	err := s.Run(len(opts.Codecs), func(i int) error {
		codec := opts.Codecs[i]
		env, err := s.Env(opts.Profile, opts.Dataset, opts.Model, opts.Het, seed)
		if err != nil {
			return err
		}
		algo, err := NewAlgorithm(opts.Algorithm)
		if err != nil {
			return err
		}
		cfg := s.Config(opts.Profile, seed)
		cfg.Transport = fl.TransportOptions{
			Codec:       codec,
			Network:     opts.Network,
			DeadlineSec: opts.DeadlineSec,
		}
		hist, err := fl.Run(algo, env, cfg)
		if err != nil {
			return fmt.Errorf("experiments: comm curve codec %s: %w", codec, err)
		}
		curve := CommCurve{
			Codec:      codec,
			FinalAcc:   hist.Final().TestAcc,
			BestAcc:    hist.BestAcc(),
			TotalMB:    float64(hist.TotalBytes()) / (1 << 20),
			Stragglers: hist.Stragglers,
		}
		for _, m := range hist.Metrics {
			curve.Points = append(curve.Points, CommPoint{
				Round: m.Round,
				CumMB: float64(m.CumBytesDown+m.CumBytesUp) / (1 << 20),
				Acc:   m.TestAcc,
			})
		}
		res.Curves[i] = curve
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func netName(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

// Render writes the per-codec summary table followed by each curve's
// traffic-vs-accuracy trajectory.
func (r *CommCurveResult) Render(w io.Writer) error {
	t := Table{
		Title:  r.Title,
		Header: []string{"Codec", "Final acc", "Best acc", "MB on wire", "Stragglers"},
	}
	for _, c := range r.Curves {
		t.Add(c.Codec,
			fmt.Sprintf("%.4f", c.FinalAcc),
			fmt.Sprintf("%.4f", c.BestAcc),
			fmt.Sprintf("%.2f", c.TotalMB),
			fmt.Sprintf("%d", c.Stragglers))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	for _, c := range r.Curves {
		ct := Table{
			Title:  fmt.Sprintf("\n%s trajectory", c.Codec),
			Header: []string{"Round", "Cum MB", "Acc"},
		}
		for _, p := range c.Points {
			ct.Add(fmt.Sprintf("%d", p.Round), fmt.Sprintf("%.2f", p.CumMB), fmt.Sprintf("%.4f", p.Acc))
		}
		if _, err := ct.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
