package experiments

import (
	"fmt"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// CurveSet is the shared result shape of the learning-curve figures
// (Figs 5–9): one accuracy-vs-round curve per named variant.
type CurveSet struct {
	Title string
	// Rounds are the evaluated round indices.
	Rounds []int
	// Acc maps variant name to accuracy samples aligned with Rounds.
	Acc map[string][]float64
	// Order preserves the variant ordering for rendering.
	Order []string
}

// Best returns the best accuracy reached by the named curve.
func (c *CurveSet) Best(name string) float64 {
	best := 0.0
	for _, v := range c.Acc[name] {
		if v > best {
			best = v
		}
	}
	return best
}

// Final returns the last accuracy of the named curve.
func (c *CurveSet) Final(name string) float64 {
	vals := c.Acc[name]
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// Series converts the curve set to the renderer type.
func (c *CurveSet) Series() *Series {
	return &Series{Title: c.Title, XLabel: "round", Xs: c.Rounds, Curves: c.Acc, Order: c.Order}
}

// runCurve executes one algorithm run and folds its metric history into
// the curve set (averaging across seeds happens by calling with each seed
// and merging via mergeCurves).
func runCurve(mk func() (fl.Algorithm, error), env *fl.Env, cfg fl.Config) ([]int, []float64, error) {
	algo, err := mk()
	if err != nil {
		return nil, nil, err
	}
	hist, err := fl.Run(algo, env, cfg)
	if err != nil {
		return nil, nil, err
	}
	rounds := make([]int, len(hist.Metrics))
	accs := make([]float64, len(hist.Metrics))
	for i, m := range hist.Metrics {
		rounds[i] = m.Round
		accs[i] = m.TestAcc
	}
	return rounds, accs, nil
}

// CompareAlgorithms runs the named algorithms on identical environments
// and returns their learning curves — the engine behind Figures 5, 6 and
// 7.
func CompareAlgorithms(p Profile, dataset, model string, het data.Heterogeneity, algoNames []string, title string) (*CurveSet, error) {
	if len(algoNames) == 0 {
		algoNames = AlgorithmNames()
	}
	seed := int64(1)
	if len(p.Seeds) > 0 {
		seed = p.Seeds[0]
	}
	cs := &CurveSet{Title: title, Acc: map[string][]float64{}, Order: algoNames}
	for _, name := range algoNames {
		name := name
		env, err := p.BuildEnv(dataset, model, het, seed)
		if err != nil {
			return nil, err
		}
		rounds, accs, err := runCurve(func() (fl.Algorithm, error) { return NewAlgorithm(name) }, env, p.Config(seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: curves %s: %w", name, err)
		}
		if cs.Rounds == nil {
			cs.Rounds = rounds
		}
		cs.Acc[name] = accs
	}
	return cs, nil
}
