package experiments

import (
	"fmt"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// CurveSet is the shared result shape of the learning-curve figures
// (Figs 5–9): one accuracy-vs-round curve per named variant.
type CurveSet struct {
	Title string
	// Rounds are the evaluated round indices.
	Rounds []int
	// Acc maps variant name to accuracy samples aligned with Rounds.
	Acc map[string][]float64
	// Order preserves the variant ordering for rendering.
	Order []string
}

// Best returns the best accuracy reached by the named curve.
func (c *CurveSet) Best(name string) float64 {
	best := 0.0
	for _, v := range c.Acc[name] {
		if v > best {
			best = v
		}
	}
	return best
}

// Final returns the last accuracy of the named curve.
func (c *CurveSet) Final(name string) float64 {
	vals := c.Acc[name]
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// Series converts the curve set to the renderer type.
func (c *CurveSet) Series() *Series {
	return &Series{Title: c.Title, XLabel: "round", Xs: c.Rounds, Curves: c.Acc, Order: c.Order}
}

// firstSeed returns the profile's first seed (1 when none are set) — the
// seed the single-seed curve figures run under.
func firstSeed(p Profile) int64 {
	if len(p.Seeds) > 0 {
		return p.Seeds[0]
	}
	return 1
}

// CompareAlgorithms runs the named algorithms on identical environments
// and returns their learning curves — the engine behind Figures 5, 6 and
// 7. The runs are grid cells: they execute concurrently under the
// profile's Jobs / worker-budget arbitration and share one memoized
// environment build.
func CompareAlgorithms(p Profile, dataset, model string, het data.Heterogeneity, algoNames []string, title string) (*CurveSet, error) {
	return compareAlgorithms(newScheduler(p), p, dataset, model, het, algoNames, title)
}

// compareAlgorithms is CompareAlgorithms on a caller-owned scheduler, so
// multi-panel figures can pool every panel's runs into one grid.
func compareAlgorithms(s *Scheduler, p Profile, dataset, model string, het data.Heterogeneity, algoNames []string, title string) (*CurveSet, error) {
	if len(algoNames) == 0 {
		algoNames = AlgorithmNames()
	}
	seed := firstSeed(p)
	out := make([]curveData, len(algoNames))
	err := s.Run(len(algoNames), func(i int) error {
		name := algoNames[i]
		hist, _, _, err := s.runOne(p, dataset, model, het, seed, func() (fl.Algorithm, error) { return NewAlgorithm(name) })
		if err != nil {
			return fmt.Errorf("experiments: curves %s: %w", name, err)
		}
		out[i] = curveOf(hist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cs := &CurveSet{Title: title, Acc: map[string][]float64{}, Order: algoNames}
	for i, name := range algoNames {
		if cs.Rounds == nil {
			cs.Rounds = out[i].rounds
		}
		cs.Acc[name] = out[i].accs
	}
	return cs, nil
}
