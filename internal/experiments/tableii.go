package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// TableIIOptions selects the slice of the paper's Table II grid to run.
// The full grid (3 vision models × 3 datasets × 4 heterogeneity settings
// plus 2 LSTM rows, 6 algorithms, multiple seeds) is hours of CPU; tests
// and benches run one- or two-cell slices.
type TableIIOptions struct {
	Profile Profile
	// Models are vision architectures to evaluate ("cnn", "resnet", "vgg").
	Models []string
	// Datasets are dataset names from DatasetNames().
	Datasets []string
	// Heterogeneity settings applied to the vision datasets.
	Hets []data.Heterogeneity
	// Algorithms to compare (defaults to all six).
	Algorithms []string
}

// DefaultTableIIOptions runs a tiny but representative slice: CNN on the
// CIFAR-10 substitute across one non-IID and the IID setting, all six
// algorithms.
func DefaultTableIIOptions() TableIIOptions {
	return TableIIOptions{
		Profile:  TinyProfile(),
		Models:   []string{"cnn"},
		Datasets: []string{"vision10"},
		Hets: []data.Heterogeneity{
			{Beta: 0.5},
			{IID: true},
		},
	}
}

// TableIICell is one dataset × model × heterogeneity row of Table II.
type TableIICell struct {
	Model, Dataset string
	Het            string
	// Acc maps algorithm name to its final-accuracy statistic.
	Acc map[string]Stat
	// Winner is the algorithm with the best mean accuracy.
	Winner string
}

// TableIIResult holds all computed cells.
type TableIIResult struct {
	Cells []TableIICell
}

// RunTableII executes the selected slice of the accuracy-comparison grid.
// The full grid is expanded into independent (cell, algorithm, seed) runs
// and dispatched through the experiment scheduler: runs execute
// concurrently under Profile.Jobs with their training fan-outs arbitrated
// against one worker budget, and each distinct (dataset, model, het,
// seed) environment is built once and shared across the algorithms
// instead of once per run — the hoist that, at Jobs=1, also makes
// strictly serial grids stop rebuilding identical environments.
func RunTableII(opts TableIIOptions) (*TableIIResult, error) {
	algos := opts.Algorithms
	if len(algos) == 0 {
		algos = AlgorithmNames()
	}
	seeds := opts.Profile.Seeds
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: TableII needs at least one seed")
	}

	// Expand the grid in rendering order: cells, then algorithms, then
	// seeds — the run list's order is the assembly order below.
	type cellSpec struct {
		model, dataset string
		het            data.Heterogeneity
	}
	var cells []cellSpec
	for _, dataset := range opts.Datasets {
		hets := opts.Hets
		modelsToRun := opts.Models
		if dataset == "femnist" {
			hets = []data.Heterogeneity{{IID: true}} // natural split; het ignored
		}
		if dataset == "shakespeare" || dataset == "sent140" {
			hets = []data.Heterogeneity{{IID: true}}
			modelsToRun = []string{"lstm"} // fixed architecture
		}
		for _, model := range modelsToRun {
			for _, het := range hets {
				cells = append(cells, cellSpec{model: model, dataset: dataset, het: het})
			}
		}
	}

	runsPerCell := len(algos) * len(seeds)
	finals := make([]float64, len(cells)*runsPerCell)
	s := newScheduler(opts.Profile)
	err := s.Run(len(finals), func(i int) error {
		c := cells[i/runsPerCell]
		algoName := algos[i%runsPerCell/len(seeds)]
		seed := seeds[i%len(seeds)]
		hist, _, _, err := s.runOne(opts.Profile, c.dataset, vmodel(c.dataset, c.model), c.het,
			seed, func() (fl.Algorithm, error) { return NewAlgorithm(algoName) })
		if err != nil {
			return fmt.Errorf("experiments: TableII %s on %s/%s: %w", algoName, c.dataset, c.model, err)
		}
		finals[i] = hist.Final().TestAcc
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIIResult{}
	for ci, c := range cells {
		cell := TableIICell{Model: c.model, Dataset: c.dataset, Het: hetLabel(c.dataset, c.het), Acc: map[string]Stat{}}
		for ai, algoName := range algos {
			at := ci*runsPerCell + ai*len(seeds)
			cell.Acc[algoName] = NewStat(finals[at : at+len(seeds)])
		}
		cell.Winner = bestAlgo(cell.Acc)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// hetLabel renders the heterogeneity column like the paper's table
// (text/FEMNIST rows use "-", being naturally non-IID).
func hetLabel(dataset string, het data.Heterogeneity) string {
	switch dataset {
	case "femnist", "shakespeare", "sent140":
		return "-"
	default:
		return het.String()
	}
}

// vmodel maps the requested model to what BuildEnv expects (text datasets
// fix their own architecture).
func vmodel(dataset, model string) string {
	if dataset == "shakespeare" || dataset == "sent140" {
		return ""
	}
	if model == "lstm" {
		return ""
	}
	return model
}

func bestAlgo(acc map[string]Stat) string {
	best, bestV := "", -1.0
	for _, name := range AlgorithmNames() {
		if s, ok := acc[name]; ok && s.Mean > bestV {
			best, bestV = name, s.Mean
		}
	}
	return best
}

// FedCrossWins counts the cells whose winner is FedCross.
func (r *TableIIResult) FedCrossWins() (wins, total int) {
	for _, c := range r.Cells {
		if _, ok := c.Acc["fedcross"]; !ok {
			continue
		}
		total++
		if c.Winner == "fedcross" {
			wins++
		}
	}
	return wins, total
}

// Render writes the table in the paper's layout: one row per
// model × dataset × heterogeneity, one column per algorithm.
func (r *TableIIResult) Render(w io.Writer) error {
	if len(r.Cells) == 0 {
		_, err := fmt.Fprintln(w, "Table II — no cells computed")
		return err
	}
	var algos []string
	for _, name := range AlgorithmNames() {
		if _, ok := r.Cells[0].Acc[name]; ok {
			algos = append(algos, name)
		}
	}
	t := Table{
		Title:  "Table II — test accuracy (%) comparison",
		Header: append([]string{"Model", "Dataset", "Heterogeneity"}, append(algos, "winner")...),
	}
	for _, c := range r.Cells {
		row := []string{c.Model, c.Dataset, c.Het}
		for _, a := range algos {
			row = append(row, c.Acc[a].String())
		}
		row = append(row, c.Winner)
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}
