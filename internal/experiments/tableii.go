package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// TableIIOptions selects the slice of the paper's Table II grid to run.
// The full grid (3 vision models × 3 datasets × 4 heterogeneity settings
// plus 2 LSTM rows, 6 algorithms, multiple seeds) is hours of CPU; tests
// and benches run one- or two-cell slices.
type TableIIOptions struct {
	Profile Profile
	// Models are vision architectures to evaluate ("cnn", "resnet", "vgg").
	Models []string
	// Datasets are dataset names from DatasetNames().
	Datasets []string
	// Heterogeneity settings applied to the vision datasets.
	Hets []data.Heterogeneity
	// Algorithms to compare (defaults to all six).
	Algorithms []string
}

// DefaultTableIIOptions runs a tiny but representative slice: CNN on the
// CIFAR-10 substitute across one non-IID and the IID setting, all six
// algorithms.
func DefaultTableIIOptions() TableIIOptions {
	return TableIIOptions{
		Profile:  TinyProfile(),
		Models:   []string{"cnn"},
		Datasets: []string{"vision10"},
		Hets: []data.Heterogeneity{
			{Beta: 0.5},
			{IID: true},
		},
	}
}

// TableIICell is one dataset × model × heterogeneity row of Table II.
type TableIICell struct {
	Model, Dataset string
	Het            string
	// Acc maps algorithm name to its final-accuracy statistic.
	Acc map[string]Stat
	// Winner is the algorithm with the best mean accuracy.
	Winner string
}

// TableIIResult holds all computed cells.
type TableIIResult struct {
	Cells []TableIICell
}

// RunTableII executes the selected slice of the accuracy-comparison grid.
func RunTableII(opts TableIIOptions) (*TableIIResult, error) {
	algos := opts.Algorithms
	if len(algos) == 0 {
		algos = AlgorithmNames()
	}
	if len(opts.Profile.Seeds) == 0 {
		return nil, fmt.Errorf("experiments: TableII needs at least one seed")
	}
	res := &TableIIResult{}
	for _, dataset := range opts.Datasets {
		hets := opts.Hets
		modelsToRun := opts.Models
		if dataset == "femnist" {
			hets = []data.Heterogeneity{{IID: true}} // natural split; het ignored
		}
		if dataset == "shakespeare" || dataset == "sent140" {
			hets = []data.Heterogeneity{{IID: true}}
			modelsToRun = []string{"lstm"} // fixed architecture
		}
		for _, model := range modelsToRun {
			for _, het := range hets {
				cell := TableIICell{Model: model, Dataset: dataset, Het: hetLabel(dataset, het), Acc: map[string]Stat{}}
				for _, algoName := range algos {
					var finals []float64
					for _, seed := range opts.Profile.Seeds {
						env, err := opts.Profile.BuildEnv(dataset, vmodel(dataset, model), het, seed)
						if err != nil {
							return nil, fmt.Errorf("experiments: TableII %s/%s: %w", dataset, model, err)
						}
						algo, err := NewAlgorithm(algoName)
						if err != nil {
							return nil, err
						}
						hist, err := fl.Run(algo, env, opts.Profile.Config(seed))
						if err != nil {
							return nil, fmt.Errorf("experiments: TableII %s on %s: %w", algoName, dataset, err)
						}
						finals = append(finals, hist.Final().TestAcc)
					}
					cell.Acc[algoName] = NewStat(finals)
				}
				cell.Winner = bestAlgo(cell.Acc)
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// hetLabel renders the heterogeneity column like the paper's table
// (text/FEMNIST rows use "-", being naturally non-IID).
func hetLabel(dataset string, het data.Heterogeneity) string {
	switch dataset {
	case "femnist", "shakespeare", "sent140":
		return "-"
	default:
		return het.String()
	}
}

// vmodel maps the requested model to what BuildEnv expects (text datasets
// fix their own architecture).
func vmodel(dataset, model string) string {
	if dataset == "shakespeare" || dataset == "sent140" {
		return ""
	}
	if model == "lstm" {
		return ""
	}
	return model
}

func bestAlgo(acc map[string]Stat) string {
	best, bestV := "", -1.0
	for _, name := range AlgorithmNames() {
		if s, ok := acc[name]; ok && s.Mean > bestV {
			best, bestV = name, s.Mean
		}
	}
	return best
}

// FedCrossWins counts the cells whose winner is FedCross.
func (r *TableIIResult) FedCrossWins() (wins, total int) {
	for _, c := range r.Cells {
		if _, ok := c.Acc["fedcross"]; !ok {
			continue
		}
		total++
		if c.Winner == "fedcross" {
			wins++
		}
	}
	return wins, total
}

// Render writes the table in the paper's layout: one row per
// model × dataset × heterogeneity, one column per algorithm.
func (r *TableIIResult) Render(w io.Writer) error {
	if len(r.Cells) == 0 {
		_, err := fmt.Fprintln(w, "Table II — no cells computed")
		return err
	}
	var algos []string
	for _, name := range AlgorithmNames() {
		if _, ok := r.Cells[0].Acc[name]; ok {
			algos = append(algos, name)
		}
	}
	t := Table{
		Title:  "Table II — test accuracy (%) comparison",
		Header: append([]string{"Model", "Dataset", "Heterogeneity"}, append(algos, "winner")...),
	}
	for _, c := range r.Cells {
		row := []string{c.Model, c.Dataset, c.Het}
		for _, a := range algos {
			row = append(row, c.Acc[a].String())
		}
		row = append(row, c.Winner)
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}
