package experiments

import (
	"sync"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// envKey identifies one environment build. It captures everything
// Profile.BuildEnv reads: the dataset/model/heterogeneity/seed cell
// coordinates plus the profile's sizing fields — Fig-7-style sweeps
// mutate NumClients and the sample counts between cells, and two profiles
// that differ there must never share a build.
type envKey struct {
	dataset, model string
	het            data.Heterogeneity
	seed           int64
	sizing         envSizing
}

// envSizing is the subset of Profile fields that shape an environment.
type envSizing struct {
	visionTrain, visionTest int
	textPerClient, textTest int
	numClients              int
}

func (p Profile) sizing() envSizing {
	return envSizing{
		visionTrain: p.VisionTrainPerClass, visionTest: p.VisionTestPerClass,
		textPerClient: p.TextSamplesPerClient, textTest: p.TextTestSamples,
		numClients: p.NumClients,
	}
}

// EnvCache memoizes environment construction across the cells of an
// experiment grid. The old runners called Profile.BuildEnv once per
// (algorithm, seed) run — TableII rebuilt the identical dataset and
// partition six times per cell, once per compared method. The cache
// builds each distinct key exactly once (concurrent requesters block on
// the build via a per-entry once) and hands every run its own lease.
//
// Lease/copy ownership rules (also in docs/ARCHITECTURE.md): the sample
// storage (data.Dataset contents) is immutable by contract — training
// copies batches out, never writes in — so leases share the built
// datasets. What each lease owns privately is the *structure*: a fresh
// fl.Env and data.Federated struct and a fresh Clients slice, so a cell
// that re-slices or swaps shard pointers (FedGen substitutes augmented
// shard copies per job, tests override entries) can never affect a
// sibling cell. Anything mutating sample storage in place must Subset or
// clone first; nothing in the tree does today.
type EnvCache struct {
	mu sync.Mutex
	m  map[envKey]*envEntry
}

type envEntry struct {
	once sync.Once
	env  *fl.Env
	err  error
}

// NewEnvCache returns an empty cache. Runners create one per grid
// invocation, and the cache holds every build it has made until the grid
// finishes — there is no per-key eviction, so a grid's peak memory is the
// sum of its distinct environments rather than one env at a time. That
// trade is deliberate: the synthetic corpora are megabytes each (the
// paper profile's largest is ~1 MB of samples), a full TableII grid has
// tens of keys, and releasing a key early would need lease refcounting
// for a saving that profiling doesn't justify. Revisit if environments
// ever grow to real-dataset scale.
func NewEnvCache() *EnvCache { return &EnvCache{m: map[envKey]*envEntry{}} }

// Lease returns an environment for the cell coordinates, building it on
// first use and sharing the build afterwards. Every call returns a
// distinct copy-on-lease view (see the ownership rules above); the build
// itself is bit-identical to a direct Profile.BuildEnv call, so memoized
// grids reproduce the unmemoized results exactly.
func (c *EnvCache) Lease(p Profile, dataset, model string, het data.Heterogeneity, seed int64) (*fl.Env, error) {
	key := envKey{dataset: dataset, model: model, het: het, seed: seed, sizing: p.sizing()}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &envEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.env, e.err = p.BuildEnv(dataset, model, het, seed) })
	if e.err != nil {
		return nil, e.err
	}
	return leaseCopy(e.env), nil
}

// leaseCopy clones the environment structure (Env, Federated, the
// Clients slice) while sharing the immutable datasets underneath. A
// source-backed federation (nil Clients) shares its ClientSource through
// the struct copy: the source is concurrency-safe and its shards
// immutable, so concurrent grid cells lease shards from one LRU rather
// than duplicating the virtualized data.
func leaseCopy(e *fl.Env) *fl.Env {
	fed := *e.Fed
	fed.Clients = append([]*data.Dataset(nil), e.Fed.Clients...)
	return &fl.Env{Fed: &fed, Model: e.Model}
}
