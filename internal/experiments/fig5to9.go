package experiments

import (
	"fmt"
	"io"

	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// --- Figure 5: learning curves of all methods -----------------------------

// Fig5Options configures the learning-curve comparison (paper Figure 5:
// six methods × {CNN, ResNet-20, VGG-16} × four heterogeneity settings on
// CIFAR-10).
type Fig5Options struct {
	Profile Profile
	Models  []string
	Hets    []data.Heterogeneity
}

// DefaultFig5Options runs the CNN panel with one non-IID and the IID
// setting.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{
		Profile: TinyProfile(),
		Models:  []string{"cnn"},
		Hets:    []data.Heterogeneity{{Beta: 0.5}, {IID: true}},
	}
}

// Fig5Result is one curve set per model × heterogeneity panel.
type Fig5Result struct {
	Panels []*CurveSet
}

// RunFig5 produces the learning-curve panels. All panels' runs pool into
// one scheduled grid: every (model, het, algorithm) run is an independent
// cell, and the six methods of a panel share one environment build.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	type panelSpec struct {
		model string
		het   data.Heterogeneity
	}
	var panels []panelSpec
	for _, model := range opts.Models {
		for _, het := range opts.Hets {
			panels = append(panels, panelSpec{model: model, het: het})
		}
	}
	algos := AlgorithmNames()
	seed := firstSeed(opts.Profile)
	curves := make([]curveData, len(panels)*len(algos))
	s := newScheduler(opts.Profile)
	err := s.Run(len(curves), func(i int) error {
		p := panels[i/len(algos)]
		name := algos[i%len(algos)]
		hist, _, _, err := s.runOne(opts.Profile, "vision10", p.model, p.het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(name) })
		if err != nil {
			return fmt.Errorf("experiments: Fig5 %s on %s: %w", name, p.model, err)
		}
		curves[i] = curveOf(hist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for pi, p := range panels {
		cs := &CurveSet{
			Title: fmt.Sprintf("Figure 5 — %s on vision10, %s", p.model, p.het),
			Acc:   map[string][]float64{},
			Order: algos,
		}
		for ai, name := range algos {
			c := curves[pi*len(algos)+ai]
			if cs.Rounds == nil {
				cs.Rounds = c.rounds
			}
			cs.Acc[name] = c.accs
		}
		res.Panels = append(res.Panels, cs)
	}
	return res, nil
}

// Render writes every panel.
func (r *Fig5Result) Render(w io.Writer) error {
	for _, p := range r.Panels {
		if _, err := p.Series().WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- Figure 6: number of activated clients K ------------------------------

// Fig6Options configures the activated-clients sweep (paper Figure 6:
// K ∈ {5, 10, 20, 50, 100} on CIFAR-10, β = 0.1, ResNet-20).
type Fig6Options struct {
	Profile Profile
	Ks      []int
	Model   string
	Beta    float64
	// Algorithms to compare per K (default: fedavg + fedcross to keep the
	// sweep affordable; the paper shows all six).
	Algorithms []string
}

// DefaultFig6Options runs a small K sweep.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{
		Profile:    TinyProfile(),
		Ks:         []int{2, 4, 8},
		Model:      "cnn",
		Beta:       0.1,
		Algorithms: []string{"fedavg", "fedcross"},
	}
}

// Fig6Cell is the outcome of one K setting.
type Fig6Cell struct {
	K int
	// Best maps algorithm to its best evaluated accuracy.
	Best map[string]float64
}

// Fig6Result holds the sweep.
type Fig6Result struct {
	Cells []Fig6Cell
}

// RunFig6 sweeps K as one scheduled (K, algorithm) grid; K only changes
// the round configuration, so every run in the sweep shares a single
// environment build. Expected shape: accuracy grows with K up to ~20 then
// saturates; FedCross leads at every K.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	if len(opts.Ks) == 0 {
		return nil, fmt.Errorf("experiments: Fig6 needs at least one K")
	}
	if len(opts.Algorithms) == 0 {
		opts.Algorithms = AlgorithmNames()
	}
	het := data.Heterogeneity{Beta: opts.Beta}
	seed := firstSeed(opts.Profile)
	bests := make([]float64, len(opts.Ks)*len(opts.Algorithms))
	s := newScheduler(opts.Profile)
	err := s.Run(len(bests), func(i int) error {
		k := opts.Ks[i/len(opts.Algorithms)]
		name := opts.Algorithms[i%len(opts.Algorithms)]
		p := opts.Profile
		p.ClientsPerRound = k
		hist, _, _, err := s.runOne(p, "vision10", opts.Model, het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(name) })
		if err != nil {
			return fmt.Errorf("experiments: Fig6 K=%d %s: %w", k, name, err)
		}
		bests[i] = hist.BestAcc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for ki, k := range opts.Ks {
		cell := Fig6Cell{K: k, Best: map[string]float64{}}
		for ai, name := range opts.Algorithms {
			cell.Best[name] = bests[ki*len(opts.Algorithms)+ai]
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render writes the K sweep table.
func (r *Fig6Result) Render(w io.Writer) error {
	if len(r.Cells) == 0 {
		return nil
	}
	var names []string
	for _, n := range AlgorithmNames() {
		if _, ok := r.Cells[0].Best[n]; ok {
			names = append(names, n)
		}
	}
	t := Table{Title: "Figure 6 — best accuracy vs activated clients K", Header: append([]string{"K"}, names...)}
	for _, c := range r.Cells {
		row := []string{fmt.Sprintf("%d", c.K)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.4f", c.Best[n]))
		}
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}

// --- Figure 7: total number of clients N ----------------------------------

// Fig7Options configures the total-clients sweep (paper Figure 7:
// N ∈ {50, 100, 200, 500, 1000} with 10% participation, β = 0.5,
// ResNet-20; the total sample budget is fixed, so more clients means less
// data each).
type Fig7Options struct {
	Profile Profile
	Ns      []int
	Model   string
	Beta    float64
	// TotalSamples fixes the corpus size across N (paper behaviour).
	TotalSamples int
	Algorithms   []string
	// KCap caps the activated clients per round (default 100): without it
	// 10% participation at N=10^6 would mean 10^5 concurrent middleware
	// models. All historical sweeps (N ≤ 1000) sit at or under the cap,
	// so their K is unchanged.
	KCap int
}

// DefaultFig7Options runs a small N sweep.
func DefaultFig7Options() Fig7Options {
	return Fig7Options{
		Profile:      TinyProfile(),
		Ns:           []int{10, 20, 40},
		Model:        "cnn",
		Beta:         0.5,
		TotalSamples: 300,
		Algorithms:   []string{"fedavg", "fedcross"},
	}
}

// Fig7Cell is the outcome of one N setting.
type Fig7Cell struct {
	N int
	// K is the activated clients per round actually used for this cell.
	K int
	// Best maps algorithm to best accuracy; RoundsTo40 maps algorithm to
	// the first round reaching 40% accuracy (-1 if never) — a
	// convergence-speed proxy.
	Best       map[string]float64
	RoundsTo40 map[string]int
}

// Fig7Result holds the sweep.
type Fig7Result struct {
	Cells []Fig7Cell
}

// RunFig7 sweeps N with 10% participation and a fixed total sample
// budget, as one scheduled (N, algorithm) grid — the compared methods of
// one N share that N's environment build. Expected shape: larger N needs
// more rounds to converge.
func RunFig7(opts Fig7Options) (*Fig7Result, error) {
	if len(opts.Ns) == 0 {
		return nil, fmt.Errorf("experiments: Fig7 needs at least one N")
	}
	if len(opts.Algorithms) == 0 {
		opts.Algorithms = AlgorithmNames()
	}
	if opts.KCap == 0 {
		opts.KCap = 100
	}
	het := data.Heterogeneity{Beta: opts.Beta}
	seed := firstSeed(opts.Profile)
	type outcome struct {
		best       float64
		roundsTo40 int
	}
	outcomes := make([]outcome, len(opts.Ns)*len(opts.Algorithms))
	s := newScheduler(opts.Profile)
	err := s.Run(len(outcomes), func(i int) error {
		n := opts.Ns[i/len(opts.Algorithms)]
		name := opts.Algorithms[i%len(opts.Algorithms)]
		p := opts.Profile
		p.NumClients = n
		p.ClientsPerRound = minInt(maxInt(2, n/10), opts.KCap)
		p.VisionTrainPerClass = maxInt(2, opts.TotalSamples/10)
		hist, _, _, err := s.runOne(p, "vision10", opts.Model, het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(name) })
		if err != nil {
			return fmt.Errorf("experiments: Fig7 N=%d %s: %w", n, name, err)
		}
		outcomes[i] = outcome{best: hist.BestAcc(), roundsTo40: hist.RoundsToAcc(0.4)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	for ni, n := range opts.Ns {
		cell := Fig7Cell{N: n, K: minInt(maxInt(2, n/10), opts.KCap), Best: map[string]float64{}, RoundsTo40: map[string]int{}}
		for ai, name := range opts.Algorithms {
			o := outcomes[ni*len(opts.Algorithms)+ai]
			cell.Best[name] = o.best
			cell.RoundsTo40[name] = o.roundsTo40
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render writes the N sweep table.
func (r *Fig7Result) Render(w io.Writer) error {
	if len(r.Cells) == 0 {
		return nil
	}
	var names []string
	for _, n := range AlgorithmNames() {
		if _, ok := r.Cells[0].Best[n]; ok {
			names = append(names, n)
		}
	}
	header := []string{"N", "K"}
	for _, n := range names {
		header = append(header, n+" best", n+" r@40%")
	}
	t := Table{Title: "Figure 7 — accuracy vs total clients N (10% participation, fixed data budget)", Header: header}
	for _, c := range r.Cells {
		k := c.K
		if k == 0 { // cells recorded before K was stored
			k = maxInt(2, c.N/10)
		}
		row := []string{fmt.Sprintf("%d", c.N), fmt.Sprintf("%d", k)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.4f", c.Best[n]), fmt.Sprintf("%d", c.RoundsTo40[n]))
		}
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}

// --- Figure 8: learning curves per alpha ----------------------------------

// Fig8Options configures the α learning-curve study (paper Figure 8: CNN,
// β = 1.0, in-order and lowest-similarity panels, α ∈ Table III's set,
// plus the FedAvg reference).
type Fig8Options struct {
	Profile    Profile
	Alphas     []float64
	Strategies []core.Strategy
	Beta       float64
	Model      string
}

// DefaultFig8Options runs a reduced α set on both recommended strategies.
func DefaultFig8Options() Fig8Options {
	return Fig8Options{
		Profile:    TinyProfile(),
		Alphas:     []float64{0.5, 0.99},
		Strategies: []core.Strategy{core.InOrder, core.LowestSimilarity},
		Beta:       1.0,
		Model:      "cnn",
	}
}

// Fig8Result has one curve set per strategy panel; curves are keyed
// "fedavg" and "alpha=<v>".
type Fig8Result struct {
	Panels []*CurveSet
}

// RunFig8 produces the α-sweep learning curves as one scheduled grid:
// every (strategy, variant) pair — the FedAvg reference plus each α — is
// an independent cell, and all of them share a single environment build.
func RunFig8(opts Fig8Options) (*Fig8Result, error) {
	if len(opts.Alphas) == 0 || len(opts.Strategies) == 0 {
		return nil, fmt.Errorf("experiments: Fig8 needs alphas and strategies")
	}
	seed := firstSeed(opts.Profile)
	het := data.Heterogeneity{Beta: opts.Beta}
	variants := 1 + len(opts.Alphas) // fedavg reference first, then alphas
	curves := make([]curveData, len(opts.Strategies)*variants)
	s := newScheduler(opts.Profile)
	err := s.Run(len(curves), func(i int) error {
		strat := opts.Strategies[i/variants]
		vi := i % variants
		mk := func() (fl.Algorithm, error) { return NewAlgorithm("fedavg") }
		if vi > 0 {
			alpha := opts.Alphas[vi-1]
			mk = func() (fl.Algorithm, error) {
				o := core.DefaultOptions()
				o.Alpha = alpha
				o.Strategy = strat
				return core.New(o)
			}
		}
		hist, _, _, err := s.runOne(opts.Profile, "vision10", opts.Model, het, seed, mk)
		if err != nil {
			return fmt.Errorf("experiments: Fig8 %s variant %d: %w", strat, vi, err)
		}
		curves[i] = curveOf(hist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for si, strat := range opts.Strategies {
		cs := &CurveSet{
			Title: fmt.Sprintf("Figure 8 — alpha sweep, %s strategy", strat),
			Acc:   map[string][]float64{},
			Order: []string{"fedavg"},
		}
		base := si * variants
		cs.Rounds = curves[base].rounds
		cs.Acc["fedavg"] = curves[base].accs
		for ai, alpha := range opts.Alphas {
			name := fmt.Sprintf("alpha=%.3g", alpha)
			cs.Acc[name] = curves[base+1+ai].accs
			cs.Order = append(cs.Order, name)
		}
		res.Panels = append(res.Panels, cs)
	}
	return res, nil
}

// Render writes every panel.
func (r *Fig8Result) Render(w io.Writer) error {
	for _, p := range r.Panels {
		if _, err := p.Series().WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- Figure 9: acceleration methods ---------------------------------------

// Fig9Options configures the training-acceleration comparison (paper
// Figure 9: VGG-16 on CIFAR-10, β = 0.1 and IID; variants vanilla, PM,
// DA, PM-DA with a 100-round acceleration window).
type Fig9Options struct {
	Profile Profile
	Model   string
	Hets    []data.Heterogeneity
	// AccelRounds is the acceleration window.
	AccelRounds int
	// PropellerCount is the PM fan-in.
	PropellerCount int
}

// DefaultFig9Options runs all four variants at tiny scale.
func DefaultFig9Options() Fig9Options {
	return Fig9Options{
		Profile:        TinyProfile(),
		Model:          "cnn",
		Hets:           []data.Heterogeneity{{Beta: 0.1}, {IID: true}},
		AccelRounds:    4,
		PropellerCount: 2,
	}
}

// Fig9Result has one curve set per heterogeneity panel with curves
// "vanilla", "pm", "da", "pm-da".
type Fig9Result struct {
	Panels []*CurveSet
}

// RunFig9 compares the acceleration variants as one scheduled
// (heterogeneity, variant) grid; the four variants of a panel share one
// environment build.
func RunFig9(opts Fig9Options) (*Fig9Result, error) {
	if len(opts.Hets) == 0 {
		return nil, fmt.Errorf("experiments: Fig9 needs at least one heterogeneity setting")
	}
	seed := firstSeed(opts.Profile)
	variants := []core.AccelMode{core.AccelNone, core.AccelPropeller, core.AccelDynamicAlpha, core.AccelBoth}
	curves := make([]curveData, len(opts.Hets)*len(variants))
	s := newScheduler(opts.Profile)
	err := s.Run(len(curves), func(i int) error {
		het := opts.Hets[i/len(variants)]
		mode := variants[i%len(variants)]
		hist, _, _, err := s.runOne(opts.Profile, "vision10", opts.Model, het, seed, func() (fl.Algorithm, error) {
			o := core.DefaultOptions()
			o.Accel = mode
			o.AccelRounds = opts.AccelRounds
			o.PropellerCount = opts.PropellerCount
			return core.New(o)
		})
		if err != nil {
			return fmt.Errorf("experiments: Fig9 %v: %w", mode, err)
		}
		curves[i] = curveOf(hist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for hi, het := range opts.Hets {
		cs := &CurveSet{
			Title: fmt.Sprintf("Figure 9 — acceleration methods, %s on vision10, %s", opts.Model, het),
			Acc:   map[string][]float64{},
		}
		for vi, mode := range variants {
			c := curves[hi*len(variants)+vi]
			if cs.Rounds == nil {
				cs.Rounds = c.rounds
			}
			cs.Acc[mode.String()] = c.accs
			cs.Order = append(cs.Order, mode.String())
		}
		res.Panels = append(res.Panels, cs)
	}
	return res, nil
}

// Render writes every panel.
func (r *Fig9Result) Render(w io.Writer) error {
	for _, p := range r.Panels {
		if _, err := p.Series().WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
