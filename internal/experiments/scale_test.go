package experiments

import (
	"strings"
	"testing"

	"fedcross/internal/data"
)

// TestBuildEnvLazyCutoff: vision environments switch to the virtualized
// ClientSource exactly at LazyClientCutoff clients, and stay on the
// historical eager layout below it.
func TestBuildEnvLazyCutoff(t *testing.T) {
	p := TinyProfile()
	p.ClientsPerRound = 8

	p.NumClients = LazyClientCutoff - 1
	env, err := p.BuildEnv("vision10", "mlp", data.Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if env.Fed.Source != nil {
		t.Fatal("below the cutoff the federation must stay eager")
	}
	if env.NumClients() != LazyClientCutoff-1 {
		t.Fatalf("NumClients = %d", env.NumClients())
	}

	p.NumClients = LazyClientCutoff
	env, err = p.BuildEnv("vision10", "mlp", data.Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lz, ok := env.Fed.Source.(*data.Lazy)
	if !ok {
		t.Fatalf("at the cutoff the federation must be lazy, got %T", env.Fed.Source)
	}
	if env.NumClients() != LazyClientCutoff {
		t.Fatalf("NumClients = %d", env.NumClients())
	}
	if lz.Resident() != 0 {
		t.Fatalf("construction synthesized %d shards", lz.Resident())
	}
}

// TestRunFig7KCap: the participation cap bounds K for huge N (the cell
// records the K it used and Render reports it), while small sweeps keep
// the historical 10% rule.
func TestRunFig7KCap(t *testing.T) {
	p := TinyProfile()
	p.Rounds = 2
	p.EvalEvery = 1
	opts := Fig7Options{
		Profile: p, Ns: []int{30}, Model: "mlp", Beta: 0.5,
		TotalSamples: 300, Algorithms: []string{"fedavg"}, KCap: 2,
	}
	res, err := RunFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].K != 2 {
		t.Fatalf("cells %+v, want one cell with K=2", res.Cells)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fedavg") {
		t.Fatalf("render missing algorithm column:\n%s", sb.String())
	}

	// Default cap leaves the historical small-N formula untouched.
	if got := minInt(maxInt(2, 40/10), 100); got != 4 {
		t.Fatalf("small-N K = %d, want 4", got)
	}
}

// TestRunFig7LazyPopulation drives a full Fig-7 cell over a population
// beyond the lazy cutoff: the scheduler, env cache and engines all run
// against synthesized shards.
func TestRunFig7LazyPopulation(t *testing.T) {
	p := TinyProfile()
	p.Rounds = 2
	p.EvalEvery = 2
	opts := Fig7Options{
		Profile: p, Ns: []int{LazyClientCutoff + 88}, Model: "mlp", Beta: 0.5,
		TotalSamples: 300, Algorithms: []string{"fedavg"}, KCap: 6,
	}
	res, err := RunFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.K != 6 {
		t.Fatalf("K = %d, want the cap 6", c.K)
	}
	if c.Best["fedavg"] < 0 || c.Best["fedavg"] > 1 {
		t.Fatalf("best accuracy %v out of range", c.Best["fedavg"])
	}
}
