package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a fixed-width text table renderer shared by all harnesses.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cell strings.
	Rows [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Series is a set of named curves sampled at shared x positions — the
// learning-curve figures.
type Series struct {
	// Title is printed above the series block.
	Title string
	// XLabel names the x axis (usually "round").
	XLabel string
	// Xs are the sample positions.
	Xs []int
	// Curves maps a name to y values aligned with Xs.
	Curves map[string][]float64
	// Order fixes the column order; unspecified names follow sorted.
	Order []string
}

// WriteTo renders the series as aligned columns, one row per x.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	names := s.Order
	if len(names) == 0 {
		for name := range s.Curves {
			names = append(names, name)
		}
	}
	t := Table{Title: s.Title, Header: append([]string{s.XLabel}, names...)}
	for i, x := range s.Xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, name := range names {
			c := s.Curves[name]
			if i < len(c) {
				row = append(row, fmt.Sprintf("%.4f", c[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t.WriteTo(w)
}

// Stat is a mean ± population-std summary over repeated runs.
type Stat struct {
	Mean, Std float64
	N         int
}

// NewStat summarises values.
func NewStat(values []float64) Stat {
	if len(values) == 0 {
		return Stat{}
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	variance := 0.0
	for _, v := range values {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(values))
	return Stat{Mean: mean, Std: math.Sqrt(variance), N: len(values)}
}

// String renders the paper's "54.78 ± 0.56" accuracy cell style (in
// percent).
func (s Stat) String() string {
	return fmt.Sprintf("%.2f ± %.2f", 100*s.Mean, 100*s.Std)
}

// Heatmap renders an integer matrix (Fig 3's class × client counts) with
// scaled glyphs, mirroring the paper's dot-size encoding.
type Heatmap struct {
	Title      string
	RowLabel   string
	Counts     [][]int
	ColHeaders []string
}

// WriteTo renders the heat map.
func (h *Heatmap) WriteTo(w io.Writer) (int64, error) {
	maxV := 1
	for _, row := range h.Counts {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	glyphs := []byte(" .:*#@")
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	if len(h.ColHeaders) > 0 {
		fmt.Fprintf(&b, "%8s %s\n", h.RowLabel, strings.Join(h.ColHeaders, " "))
	}
	for r, row := range h.Counts {
		fmt.Fprintf(&b, "%8d ", r)
		for _, v := range row {
			g := glyphs[0]
			if v > 0 {
				idx := 1 + v*(len(glyphs)-2)/maxV
				if idx >= len(glyphs) {
					idx = len(glyphs) - 1
				}
				g = glyphs[idx]
			}
			b.WriteByte(g)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
