package experiments

import (
	"fmt"
	"io"
)

// TableIRow is one row of the paper's Table I: method, taxonomy category
// and per-round communication overhead.
type TableIRow struct {
	Algorithm string
	Category  string
	Profile   string // rendered comm profile for K clients
	Overhead  string // Low / Medium / High
	// ModelEquivalents is the per-round traffic in model-sized units.
	ModelEquivalents float64
}

// TableIResult holds all rows.
type TableIResult struct {
	K    int
	Rows []TableIRow
}

// RunTableI reproduces Table I analytically: it instantiates every
// algorithm and reads its per-round communication profile for K activated
// clients. The expected shape: FedCross matches FedAvg exactly (Low);
// SCAFFOLD is High; FedGen is Medium.
func RunTableI(k int) (*TableIResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: TableI needs K > 0, got %d", k)
	}
	res := &TableIResult{K: k}
	for _, name := range AlgorithmNames() {
		algo, err := NewAlgorithm(name)
		if err != nil {
			return nil, err
		}
		p := algo.RoundComm(k)
		res.Rows = append(res.Rows, TableIRow{
			Algorithm:        algo.Name(),
			Category:         algo.Category(),
			Profile:          p.String(),
			Overhead:         p.OverheadClass(),
			ModelEquivalents: p.TotalModelEquivalents(0.25),
		})
	}
	return res, nil
}

// Render writes the table in the paper's layout.
func (r *TableIResult) Render(w io.Writer) error {
	t := Table{
		Title:  fmt.Sprintf("Table I — method categories and per-round communication (K=%d)", r.K),
		Header: []string{"Method", "Category", "Per-round traffic", "Overhead", "Model-equivalents"},
	}
	for _, row := range r.Rows {
		t.Add(row.Algorithm, row.Category, row.Profile, row.Overhead,
			fmt.Sprintf("%.1f", row.ModelEquivalents))
	}
	_, err := t.WriteTo(w)
	return err
}
