package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"

	"fedcross/internal/data"
	"fedcross/internal/fl"
)

// FaultGridOptions configures the fault-injection sweep: one algorithm run
// on identical environments under increasing fault intensity, with upload
// retries and a quorum floor engaged, so the grid isolates how much
// accuracy deterministic crash/drop/corruption faults cost and proves the
// engine completes (no hangs, no lease leaks) under each level.
type FaultGridOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Algorithm is the method under fault (default "fedavg").
	Algorithm string
	// Levels are the fault intensities swept (default 0, 0.05, 0.1).
	// Level x sets CrashRate and DropRate and StraggleRate to x and the
	// truncate/corrupt/duplicate/stall rates to x/2, so the top level
	// exercises every fault class; level 0 is the bit-identical benign
	// baseline the retention column divides by.
	Levels []float64
	// MinUploads is the per-round quorum (default ClientsPerRound/2).
	MinUploads int
	// Retries / RetryBackoffSec configure upload retries (defaults 2,
	// 0.05).
	Retries         int
	RetryBackoffSec float64
}

// DefaultFaultGridOptions returns the standard sweep.
func DefaultFaultGridOptions() FaultGridOptions {
	return FaultGridOptions{
		Dataset:         "vision10",
		Model:           "cnn",
		Het:             data.Heterogeneity{Beta: 0.5},
		Algorithm:       "fedavg",
		Levels:          []float64{0, 0.05, 0.1},
		Retries:         2,
		RetryBackoffSec: 0.05,
	}
}

// faultsAtLevel expands a sweep level into the full fault mix.
func faultsAtLevel(x float64) fl.FaultOptions {
	return fl.FaultOptions{
		CrashRate:     x,
		DropRate:      x,
		StraggleRate:  x,
		TruncateRate:  x / 2,
		CorruptRate:   x / 2,
		DuplicateRate: x / 2,
		StallRate:     x / 2,
	}
}

// FaultCell is one fault level's run summary.
type FaultCell struct {
	Level             float64
	FinalAcc, BestAcc float64
	// Whole-run fault telemetry from the history.
	Crashes, FaultDrops, Retries, Duplicates, Stalls, Degraded int
}

// FaultGridResult holds the sweep, one cell per level in order.
type FaultGridResult struct {
	Title string
	Cells []FaultCell
}

// RunFaultGrid executes the fault-injection sweep. Every cell's fault
// plan is a pure function of (seed, round, client), so the grid is
// bit-identical at every Jobs/Parallelism setting; level 0 leaves the
// history bit-unchanged from a fault-free run. This is the harness behind
// the CI fault-smoke gate: benign retention at the top level must stay
// above a pinned floor.
func RunFaultGrid(opts FaultGridOptions) (*FaultGridResult, error) {
	def := DefaultFaultGridOptions()
	if opts.Dataset == "" {
		opts.Dataset = def.Dataset
	}
	if opts.Model == "" {
		opts.Model = def.Model
	}
	if opts.Algorithm == "" {
		opts.Algorithm = def.Algorithm
	}
	if len(opts.Levels) == 0 {
		opts.Levels = def.Levels
	}
	if opts.MinUploads == 0 {
		opts.MinUploads = maxInt(1, opts.Profile.ClientsPerRound/2)
	}
	if opts.Retries == 0 {
		opts.Retries = def.Retries
	}
	if opts.RetryBackoffSec == 0 {
		opts.RetryBackoffSec = def.RetryBackoffSec
	}
	for _, x := range opts.Levels {
		if err := faultsAtLevel(x).Validate(); err != nil {
			return nil, fmt.Errorf("experiments: fault level %g: %w", x, err)
		}
	}
	seed := int64(1)
	if len(opts.Profile.Seeds) > 0 {
		seed = opts.Profile.Seeds[0]
	}
	res := &FaultGridResult{
		Title: fmt.Sprintf("Fault injection — %s on %s/%s, quorum=%d, retries=%d",
			opts.Algorithm, opts.Dataset, opts.Model, opts.MinUploads, opts.Retries),
		Cells: make([]FaultCell, len(opts.Levels)),
	}
	s := newScheduler(opts.Profile)
	err := s.Run(len(res.Cells), func(i int) error {
		p := opts.Profile
		p.Faults = faultsAtLevel(opts.Levels[i])
		p.MinUploads = opts.MinUploads
		p.Retries = opts.Retries
		p.RetryBackoffSec = opts.RetryBackoffSec
		hist, _, _, err := s.runOne(p, opts.Dataset, opts.Model, opts.Het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(opts.Algorithm) })
		if err != nil {
			return fmt.Errorf("experiments: faults level=%g: %w", opts.Levels[i], err)
		}
		res.Cells[i] = FaultCell{
			Level:      opts.Levels[i],
			FinalAcc:   hist.Final().TestAcc,
			BestAcc:    hist.BestAcc(),
			Crashes:    hist.Crashes,
			FaultDrops: hist.FaultDrops,
			Retries:    hist.Retries,
			Duplicates: hist.Duplicates,
			Stalls:     hist.Stalls,
			Degraded:   hist.Degraded,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Retention returns the final accuracy of the given cell relative to the
// grid's level-0 cell, or -1 when the grid has no benign level (the
// quantity the CI fault-smoke gate thresholds).
func (r *FaultGridResult) Retention(i int) float64 {
	for _, c := range r.Cells {
		if c.Level == 0 && c.FinalAcc > 0 {
			return r.Cells[i].FinalAcc / c.FinalAcc
		}
	}
	return -1
}

// Render writes the sweep table, one row per fault level.
func (r *FaultGridResult) Render(w io.Writer) error {
	t := Table{
		Title: r.Title,
		Header: []string{"Level", "Final acc", "Best acc", "Retention",
			"Crashes", "Drops", "Retries", "Dups", "Stalls", "Degraded"},
	}
	for i, c := range r.Cells {
		ret := "-"
		if c.Level != 0 {
			if v := r.Retention(i); v >= 0 {
				ret = fmt.Sprintf("%.3f", v)
			}
		}
		t.Add(fmt.Sprintf("%.2f", c.Level),
			fmt.Sprintf("%.4f", c.FinalAcc),
			fmt.Sprintf("%.4f", c.BestAcc),
			ret,
			fmt.Sprintf("%d", c.Crashes),
			fmt.Sprintf("%d", c.FaultDrops),
			fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d", c.Duplicates),
			fmt.Sprintf("%d", c.Stalls),
			fmt.Sprintf("%d", c.Degraded))
	}
	_, err := t.WriteTo(w)
	return err
}

// ChurnGridOptions configures the availability-churn sweep: one algorithm
// run under decreasing mean availability with a diurnal cycle, per-client
// jitter, and a population ramp, so the grid shows how selection biased to
// the online fleet degrades (or holds) accuracy. With Profile.NumClients
// raised to 10⁵ this is the million-scale churn scenario from the
// roadmap's availability-trace item.
type ChurnGridOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Algorithm is the method under churn (default "fedavg").
	Algorithm string
	// Availabilities are the mean online fractions swept (default 1,
	// 0.7, 0.4); 1 is the static benign baseline.
	Availabilities []float64
	// Jitter spreads per-client availability (default 0.3).
	Jitter float64
	// StartFrac / EndFrac ramp the live population across the run
	// (defaults 1 → 0.6, a shrinking fleet). Applied only to cells with
	// availability < 1 so the baseline stays static.
	StartFrac, EndFrac float64
}

// DefaultChurnGridOptions returns the standard sweep.
func DefaultChurnGridOptions() ChurnGridOptions {
	return ChurnGridOptions{
		Dataset:        "vision10",
		Model:          "cnn",
		Het:            data.Heterogeneity{Beta: 0.5},
		Algorithm:      "fedavg",
		Availabilities: []float64{1, 0.7, 0.4},
		Jitter:         0.3,
		StartFrac:      1,
		EndFrac:        0.6,
	}
}

// ChurnCell is one availability level's run summary.
type ChurnCell struct {
	Availability      float64
	FinalAcc, BestAcc float64
	// Unavailable is the whole-run count of selection slots lost to
	// offline or departed clients.
	Unavailable int
}

// ChurnGridResult holds the sweep, one cell per availability in order.
type ChurnGridResult struct {
	Title string
	Cells []ChurnCell
}

// RunChurnGrid executes the churn sweep. Availability is a pure function
// of (seed, client, round), so the grid is bit-identical at every
// Jobs/Parallelism setting and availability 1 leaves the history
// bit-unchanged from a churn-free run.
func RunChurnGrid(opts ChurnGridOptions) (*ChurnGridResult, error) {
	def := DefaultChurnGridOptions()
	if opts.Dataset == "" {
		opts.Dataset = def.Dataset
	}
	if opts.Model == "" {
		opts.Model = def.Model
	}
	if opts.Algorithm == "" {
		opts.Algorithm = def.Algorithm
	}
	if len(opts.Availabilities) == 0 {
		opts.Availabilities = def.Availabilities
	}
	if opts.Jitter == 0 {
		opts.Jitter = def.Jitter
	}
	if opts.StartFrac == 0 {
		opts.StartFrac = def.StartFrac
	}
	if opts.EndFrac == 0 {
		opts.EndFrac = def.EndFrac
	}
	for _, a := range opts.Availabilities {
		churn := fl.ChurnOptions{Availability: a, Jitter: opts.Jitter,
			StartFrac: opts.StartFrac, EndFrac: opts.EndFrac}
		if err := churn.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: churn availability %g: %w", a, err)
		}
	}
	seed := int64(1)
	if len(opts.Profile.Seeds) > 0 {
		seed = opts.Profile.Seeds[0]
	}
	res := &ChurnGridResult{
		Title: fmt.Sprintf("Availability churn — %s on %s/%s, N=%d",
			opts.Algorithm, opts.Dataset, opts.Model, opts.Profile.NumClients),
		Cells: make([]ChurnCell, len(opts.Availabilities)),
	}
	s := newScheduler(opts.Profile)
	err := s.Run(len(res.Cells), func(i int) error {
		p := opts.Profile
		if a := opts.Availabilities[i]; a < 1 {
			p.Churn = fl.ChurnOptions{Availability: a, Jitter: opts.Jitter,
				StartFrac: opts.StartFrac, EndFrac: opts.EndFrac}
		}
		hist, _, _, err := s.runOne(p, opts.Dataset, opts.Model, opts.Het, seed,
			func() (fl.Algorithm, error) { return NewAlgorithm(opts.Algorithm) })
		if err != nil {
			return fmt.Errorf("experiments: churn availability=%g: %w",
				opts.Availabilities[i], err)
		}
		res.Cells[i] = ChurnCell{
			Availability: opts.Availabilities[i],
			FinalAcc:     hist.Final().TestAcc,
			BestAcc:      hist.BestAcc(),
			Unavailable:  hist.Unavailable,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the sweep table, one row per availability level, with
// retention relative to the availability-1 cell when present.
func (r *ChurnGridResult) Render(w io.Writer) error {
	base := -1.0
	for _, c := range r.Cells {
		if c.Availability == 1 && c.FinalAcc > 0 {
			base = c.FinalAcc
			break
		}
	}
	t := Table{
		Title:  r.Title,
		Header: []string{"Availability", "Final acc", "Best acc", "Retention", "Unavailable"},
	}
	for _, c := range r.Cells {
		ret := "-"
		if c.Availability != 1 && base > 0 {
			ret = fmt.Sprintf("%.3f", c.FinalAcc/base)
		}
		t.Add(fmt.Sprintf("%.2f", c.Availability),
			fmt.Sprintf("%.4f", c.FinalAcc),
			fmt.Sprintf("%.4f", c.BestAcc),
			ret,
			fmt.Sprintf("%d", c.Unavailable))
	}
	_, err := t.WriteTo(w)
	return err
}

// ResumeCheckOptions configures the crash/resume equality check: every
// algorithm is run to completion once, then killed at each stop round
// (checkpoint written, fl.ErrStopped returned) and resumed from the
// snapshot — the resumed history must equal the uninterrupted one
// byte-for-byte.
type ResumeCheckOptions struct {
	Profile Profile
	// Dataset / Model / Het choose the environment (defaults: vision10,
	// cnn, Dir(0.5)).
	Dataset, Model string
	Het            data.Heterogeneity
	// Algorithms are the methods checked (default: all six).
	Algorithms []string
	// StopRounds are the kill points (default 1, Rounds/2, Rounds-1,
	// clipped and deduplicated).
	StopRounds []int
	// Benign disables the default fault mix; by default the check runs
	// under 10% crash + 10% drop with a quorum floor, so it proves the
	// snapshot also captures the fault and retry telemetry mid-stream.
	Benign bool
}

// DefaultResumeCheckOptions returns the standard check.
func DefaultResumeCheckOptions() ResumeCheckOptions {
	return ResumeCheckOptions{
		Dataset:    "vision10",
		Model:      "cnn",
		Het:        data.Heterogeneity{Beta: 0.5},
		Algorithms: AlgorithmNames(),
	}
}

// ResumeCell is one (algorithm, stop round) verdict.
type ResumeCell struct {
	Algorithm string
	StopRound int
	Match     bool
}

// ResumeCheckResult holds the verdict grid, rows ordered by (algorithm,
// stop round).
type ResumeCheckResult struct {
	Title string
	Cells []ResumeCell
}

// resumeStops returns the default kill points for a run length.
func resumeStops(rounds int) []int {
	raw := []int{1, rounds / 2, rounds - 1}
	seen := map[int]bool{}
	stops := make([]int, 0, len(raw))
	for _, s := range raw {
		if s < 1 || s >= rounds || seen[s] {
			continue
		}
		seen[s] = true
		stops = append(stops, s)
	}
	if len(stops) == 0 {
		stops = []int{1}
	}
	return stops
}

// RunResumeCheck executes the crash/resume equality check. Each cell
// writes its snapshot to a private file under a temporary directory that
// is removed before returning. The returned result always covers every
// cell that ran; the error is non-nil if any resumed history diverged
// from its uninterrupted twin.
func RunResumeCheck(opts ResumeCheckOptions) (*ResumeCheckResult, error) {
	def := DefaultResumeCheckOptions()
	if opts.Dataset == "" {
		opts.Dataset = def.Dataset
	}
	if opts.Model == "" {
		opts.Model = def.Model
	}
	if len(opts.Algorithms) == 0 {
		opts.Algorithms = def.Algorithms
	}
	if len(opts.StopRounds) == 0 {
		opts.StopRounds = resumeStops(opts.Profile.Rounds)
	}
	for _, stop := range opts.StopRounds {
		if stop < 1 || stop >= opts.Profile.Rounds {
			return nil, fmt.Errorf("experiments: resume stop round %d outside [1, %d)",
				stop, opts.Profile.Rounds)
		}
	}
	p := opts.Profile
	// The check owns its checkpoint files; a caller-level -checkpoint
	// setting must not leak into the baseline or resumed runs.
	p.Checkpoint = fl.CheckpointOptions{}
	if !opts.Benign {
		p.Faults = fl.FaultOptions{CrashRate: 0.1, DropRate: 0.1}
		p.MinUploads = maxInt(1, p.ClientsPerRound/2)
		p.Retries = 2
	}
	dir, err := os.MkdirTemp("", "fedsim-resume-")
	if err != nil {
		return nil, fmt.Errorf("experiments: resume workspace: %w", err)
	}
	defer os.RemoveAll(dir)
	seed := int64(1)
	if len(p.Seeds) > 0 {
		seed = p.Seeds[0]
	}
	res := &ResumeCheckResult{
		Title: fmt.Sprintf("Resume equality — %s/%s, stops %v, faults=%v",
			opts.Dataset, opts.Model, opts.StopRounds, !opts.Benign),
		Cells: make([]ResumeCell, len(opts.Algorithms)*len(opts.StopRounds)),
	}
	s := newScheduler(p)
	// One scheduler cell per algorithm: the baseline run is shared by that
	// algorithm's stop rounds, so it is trained exactly once.
	err = s.Run(len(opts.Algorithms), func(ai int) error {
		name := opts.Algorithms[ai]
		env, err := s.Env(p, opts.Dataset, opts.Model, opts.Het, seed)
		if err != nil {
			return err
		}
		run := func(prof Profile) (*fl.History, error) {
			algo, err := NewAlgorithm(name)
			if err != nil {
				return nil, err
			}
			return fl.Run(algo, env, s.Config(prof, seed))
		}
		full, err := run(p)
		if err != nil {
			return fmt.Errorf("experiments: resume baseline %s: %w", name, err)
		}
		for si, stop := range opts.StopRounds {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.ckpt", name, stop))
			killed := p
			killed.Checkpoint = fl.CheckpointOptions{Path: path, StopAfterRound: stop}
			if _, err := run(killed); !errors.Is(err, fl.ErrStopped) {
				return fmt.Errorf("experiments: resume kill %s@%d: want ErrStopped, got %v",
					name, stop, err)
			}
			resumed := p
			resumed.Checkpoint = fl.CheckpointOptions{Path: path, Resume: true}
			hist, err := run(resumed)
			if err != nil {
				return fmt.Errorf("experiments: resume continue %s@%d: %w", name, stop, err)
			}
			res.Cells[ai*len(opts.StopRounds)+si] = ResumeCell{
				Algorithm: name,
				StopRound: stop,
				Match:     reflect.DeepEqual(full, hist),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bad []string
	for _, c := range res.Cells {
		if !c.Match {
			bad = append(bad, fmt.Sprintf("%s@%d", c.Algorithm, c.StopRound))
		}
	}
	if len(bad) > 0 {
		return res, fmt.Errorf("experiments: resumed history diverged for %v", bad)
	}
	return res, nil
}

// Render writes the verdict table, one row per (algorithm, stop round).
func (r *ResumeCheckResult) Render(w io.Writer) error {
	t := Table{
		Title:  r.Title,
		Header: []string{"Algorithm", "Stop round", "Resumed history"},
	}
	for _, c := range r.Cells {
		verdict := "identical"
		if !c.Match {
			verdict = "DIVERGED"
		}
		t.Add(c.Algorithm, fmt.Sprintf("%d", c.StopRound), verdict)
	}
	_, err := t.WriteTo(w)
	return err
}
