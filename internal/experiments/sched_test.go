package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedcross/internal/core"
	"fedcross/internal/data"
)

// renderable is what every grid result offers the determinism harness.
type renderable interface{ Render(w io.Writer) error }

// renderAtJobs runs a grid at the given Jobs setting and returns its
// rendered bytes — the strictest cheap equality check, since every
// accuracy in every cell lands in the output.
func renderAtJobs(t *testing.T, jobs int, run func(p Profile) (renderable, error)) []byte {
	t.Helper()
	p := microProfile()
	p.Jobs = jobs
	res, err := run(p)
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("jobs=%d render: %v", jobs, err)
	}
	return buf.Bytes()
}

// TestSchedulerDeterminism pins the scheduler's core invariant: every
// grid runner produces byte-identical results at cell parallelism 1 and
// at a parallelism that forces concurrent cells — the grid-level twin of
// PR 1's round-engine parallelism invariance.
func TestSchedulerDeterminism(t *testing.T) {
	grids := map[string]func(p Profile) (renderable, error){
		"tableII": func(p Profile) (renderable, error) {
			return RunTableII(TableIIOptions{
				Profile:  p,
				Models:   []string{"mlp"},
				Datasets: []string{"vision10"},
				Hets:     []data.Heterogeneity{{Beta: 0.5}, {IID: true}},
				Algorithms: []string{
					"fedavg", "fedcross", "scaffold",
				},
			})
		},
		"tableIII": func(p Profile) (renderable, error) {
			return RunTableIII(TableIIIOptions{
				Profile: p,
				Alphas:  []float64{0.5, 0.99},
				Strategies: []core.Strategy{
					core.InOrder, core.LowestSimilarity,
				},
				Model: "mlp",
				Beta:  1.0,
			})
		},
		"fig3": func(p Profile) (renderable, error) {
			o := DefaultFig3Options()
			o.Profile = p
			return RunFig3(o)
		},
		"fig4": func(p Profile) (renderable, error) {
			o := DefaultFig4Options()
			o.Profile = p
			o.Model = "mlp"
			o.Hets = []data.Heterogeneity{{IID: true}, {Beta: 0.5}}
			o.Scan.Resolution = 3
			o.Scan.MaxSamples = 16
			o.SharpnessDirs = 1
			return RunFig4(o)
		},
		"fig5": func(p Profile) (renderable, error) {
			return RunFig5(Fig5Options{Profile: p, Models: []string{"mlp"}, Hets: []data.Heterogeneity{{IID: true}}})
		},
		"fig7": func(p Profile) (renderable, error) {
			return RunFig7(Fig7Options{Profile: p, Ns: []int{6, 12}, Model: "mlp", Beta: 0.5,
				TotalSamples: 120, Algorithms: []string{"fedavg", "fedcross"}})
		},
		"fig9": func(p Profile) (renderable, error) {
			return RunFig9(Fig9Options{Profile: p, Model: "mlp", Hets: []data.Heterogeneity{{IID: true}},
				AccelRounds: 2, PropellerCount: 2})
		},
		"fig6": func(p Profile) (renderable, error) {
			return RunFig6(Fig6Options{Profile: p, Ks: []int{2, 3}, Model: "mlp", Beta: 0.5,
				Algorithms: []string{"fedavg", "fedcross"}})
		},
		"fig8": func(p Profile) (renderable, error) {
			return RunFig8(Fig8Options{Profile: p, Alphas: []float64{0.9}, Strategies: []core.Strategy{core.InOrder},
				Beta: 1.0, Model: "mlp"})
		},
		"comm": func(p Profile) (renderable, error) {
			o := DefaultCommCurveOptions()
			o.Profile = p
			o.Model = "mlp"
			o.Codecs = []string{"identity", "int8"}
			return RunCommCurve(o)
		},
		"ablation-shuffle": func(p Profile) (renderable, error) {
			o := DefaultAblationOptions()
			o.Profile = p
			o.Model = "mlp"
			return RunAblationShuffle(o)
		},
	}
	for name, run := range grids {
		serial := renderAtJobs(t, 1, run)
		parallel := renderAtJobs(t, 8, run)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: jobs=8 output differs from jobs=1\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				name, serial, parallel)
		}
	}
}

// TestEnvCacheLeases pins the memoization and ownership rules: one build
// per key, shared datasets, private structure per lease, and key
// separation across seeds and profile sizing.
func TestEnvCacheLeases(t *testing.T) {
	p := microProfile()
	c := NewEnvCache()
	het := data.Heterogeneity{Beta: 0.5}
	a, err := c.Lease(p, "vision10", "mlp", het, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Lease(p, "vision10", "mlp", het, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.Fed == b.Fed {
		t.Fatal("leases must not share Env/Federated structure")
	}
	if a.Fed.Clients[0] != b.Fed.Clients[0] || a.Fed.Test != b.Fed.Test {
		t.Fatal("leases of one key must share the built datasets")
	}
	// Structural mutation of one lease must not leak into a sibling.
	b.Fed.Clients[0] = b.Fed.Clients[1]
	if a.Fed.Clients[0] == b.Fed.Clients[0] {
		t.Fatal("shard swap on one lease visible through another")
	}

	other, err := c.Lease(p, "vision10", "mlp", het, 2)
	if err != nil {
		t.Fatal(err)
	}
	if other.Fed.Test == a.Fed.Test {
		t.Fatal("different seeds must not share a build")
	}
	p2 := p
	p2.NumClients = p.NumClients + 1
	resized, err := c.Lease(p2, "vision10", "mlp", het, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resized.NumClients() != p2.NumClients {
		t.Fatalf("sizing change ignored: %d clients, want %d", resized.NumClients(), p2.NumClients)
	}

	// The cached build is bit-identical to a direct BuildEnv.
	direct, err := p.BuildEnv("vision10", "mlp", het, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Fed.Test.Len() != a.Fed.Test.Len() {
		t.Fatalf("cached test set %d samples, direct %d", a.Fed.Test.Len(), direct.Fed.Test.Len())
	}
	for i, v := range direct.Fed.Test.X.Data {
		if a.Fed.Test.X.Data[i] != v {
			t.Fatalf("cached build differs from direct BuildEnv at sample byte %d", i)
		}
	}
}

// TestSchedulerJobsCapAndErrors pins the cell-level contract: at most
// Jobs cells in flight, and a failing cell aborts the grid with its
// error.
func TestSchedulerJobsCapAndErrors(t *testing.T) {
	p := microProfile()
	p.Jobs = 2
	s := newScheduler(p)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := s.Run(8, func(i int) error {
		v := cur.Add(1)
		defer cur.Add(-1)
		mu.Lock()
		if v > peak.Load() {
			peak.Store(v)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak concurrent cells %d exceeds Jobs=2", peak.Load())
	}

	boom := errors.New("cell failed")
	err = s.Run(4, func(i int) error {
		if i == 1 {
			return fmt.Errorf("cell %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the failing cell's error", err)
	}
}
