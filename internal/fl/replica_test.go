package fl

import (
	"testing"

	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// TestTrainLocalReplicaReuse pins the replica engine's equivalence
// contract: a job that leases a recycled replica must be bit-identical to
// one that constructed fresh. The uniquely named factory guarantees a
// cold pool, so the first call constructs and the second reuses what the
// first returned.
func TestTrainLocalReplicaReuse(t *testing.T) {
	env := testEnv(41, 2)
	factory := models.Factory{Name: "test-replica-equivalence-mlp-12-16-4", New: env.Model.New}
	init := nn.FlattenParams(factory.New(tensor.NewRNG(5)).Params())
	shard := env.Fed.Clients[0]
	spec := LocalSpec{Init: init, Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.5}

	fresh, err := TrainLocal(factory, shard, spec, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	reused, err := TrainLocal(factory, shard, spec, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Steps != reused.Steps || fresh.MeanLoss != reused.MeanLoss {
		t.Fatalf("replica reuse changed training: %+v vs %+v", fresh, reused)
	}
	for i := range fresh.Params {
		if fresh.Params[i] != reused.Params[i] {
			t.Fatalf("param %d differs between fresh and reused replica: %v vs %v",
				i, fresh.Params[i], reused.Params[i])
		}
	}

	// Both eval paths must be equally oblivious to pool state: the first
	// Evaluate on this factory constructs eval replicas, the second
	// reuses them.
	a1, l1, err := Evaluate(factory, fresh.Params, env.Fed.Test, 16, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	a2, l2, err := Evaluate(factory, reused.Params, env.Fed.Test, 16, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || l1 != l2 {
		t.Fatalf("Evaluate differs between cold and warm pool: %v/%v vs %v/%v", a1, l1, a2, l2)
	}
	envU := &Env{Fed: env.Fed, Model: factory}
	p1, err := EvaluatePerClient(envU, fresh.Params, 16, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EvaluatePerClient(envU, reused.Params, 16, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Mean != p2.Mean || p1.Worst != p2.Worst || p1.Std != p2.Std {
		t.Fatalf("EvaluatePerClient differs between cold and warm pool:\n%+v\n%+v", p1, p2)
	}
}

// TestTrainLocalSteadyStateAllocs pins the leased-replica hot path: once
// the pool and scratch arena are warm and the caller supplies an Out
// buffer, a whole local-training job allocates (next to) nothing — only
// the per-epoch batch permutation remains.
func TestTrainLocalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is deliberately lossy under the race detector, so pool hits are not guaranteed")
	}
	env := testEnv(42, 2)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(6)).Params())
	out := make(nn.ParamVector, len(init))
	shard := env.Fed.Clients[0]
	spec := LocalSpec{Init: init, Epochs: 1, BatchSize: 16, LR: 0.05, Momentum: 0.5, Out: out}
	rng := tensor.NewRNG(3)
	run := func() {
		if _, err := TrainLocal(env.Model, shard, spec, rng); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the replica pool and scratch arena
	}
	if allocs := testing.AllocsPerRun(20, run); allocs > 12 {
		t.Fatalf("steady-state TrainLocal allocates %v objects/op, want <= 12", allocs)
	}
}

// TestTrainLocalOutBuffer pins the recycled-destination contract: the
// result aliases the provided buffer, and a wrong-length buffer is
// rejected before training.
func TestTrainLocalOutBuffer(t *testing.T) {
	env := testEnv(43, 2)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(7)).Params())
	out := make(nn.ParamVector, len(init))
	spec := LocalSpec{Init: init, Epochs: 1, BatchSize: 16, LR: 0.05, Out: out}
	res, err := TrainLocal(env.Model, env.Fed.Clients[0], spec, tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if &res.Params[0] != &out[0] {
		t.Fatal("result must be written into the provided Out buffer")
	}
	spec.Out = out[:len(out)-1]
	if _, err := TrainLocal(env.Model, env.Fed.Clients[0], spec, tensor.NewRNG(8)); err == nil {
		t.Fatal("expected error for wrong Out length")
	}
}
