package fl

import (
	"fmt"
	"math"
	"sort"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// AsyncOptions configures the buffered-asynchronous (FedBuff-style)
// aggregation mode run by RunAsync. Zero fields take the documented
// defaults, so the zero value is a valid configuration.
type AsyncOptions struct {
	// Buffer is B, the number of upload arrivals folded into the
	// staleness-weighted accumulator between server commits (default 4).
	Buffer int
	// InFlight is M, how many clients the server keeps training
	// concurrently (default Config.ClientsPerRound).
	InFlight int
	// Commits is the number of server version bumps to run (default
	// Config.Rounds) — the async analogue of the round count.
	Commits int
	// StalenessExp is p in the staleness weight 1/(1+s)^p, where s is
	// how many versions the server committed between a client's fetch and
	// its arrival (default 0.5, FedBuff's polynomial damping).
	StalenessExp float64
	// ServerLR is the server step η applied at each commit:
	// w ← w + η/B · Σ weight·Δ (default 1).
	ServerLR float64
	// ComputeSec is the median simulated local-training wall-clock per
	// activation (default 1s); ComputeJitter is the σ of its lognormal
	// multiplier (default 0.5), which is what spreads arrival times even
	// on an ideal network.
	ComputeSec, ComputeJitter float64
}

// Validate reports the first problem with the options.
func (o AsyncOptions) Validate() error {
	switch {
	case o.Buffer < 0:
		return fmt.Errorf("fl: async Buffer = %d, must be non-negative", o.Buffer)
	case o.InFlight < 0:
		return fmt.Errorf("fl: async InFlight = %d, must be non-negative", o.InFlight)
	case o.Commits < 0:
		return fmt.Errorf("fl: async Commits = %d, must be non-negative", o.Commits)
	case o.StalenessExp < 0:
		return fmt.Errorf("fl: async StalenessExp = %v, must be non-negative", o.StalenessExp)
	case o.ServerLR < 0:
		return fmt.Errorf("fl: async ServerLR = %v, must be non-negative", o.ServerLR)
	case o.ComputeSec < 0 || o.ComputeJitter < 0:
		return fmt.Errorf("fl: async compute model (%v, %v) must be non-negative", o.ComputeSec, o.ComputeJitter)
	}
	return nil
}

// resolve fills the documented defaults against the run configuration.
func (o AsyncOptions) resolve(cfg Config) AsyncOptions {
	if o.Buffer == 0 {
		o.Buffer = 4
	}
	if o.InFlight == 0 {
		o.InFlight = cfg.ClientsPerRound
	}
	if o.Commits == 0 {
		o.Commits = cfg.Rounds
	}
	if o.StalenessExp == 0 {
		o.StalenessExp = 0.5
	}
	if o.ServerLR == 0 {
		o.ServerLR = 1
	}
	if o.ComputeSec == 0 {
		o.ComputeSec = 1
	}
	if o.ComputeJitter == 0 {
		o.ComputeJitter = 0.5
	}
	return o
}

// asyncJob is one dispatched client activation in flight between fetch
// and arrival.
type asyncJob struct {
	seq     int // dispatch order, the arrival tie-break
	client  int
	version int            // server version at fetch time
	arrival float64        // simulated arrival instant (seconds)
	fetch   nn.ParamVector // snapshot the client trains from (engine-owned)
	trained nn.ParamVector // filled by the parallel training pass
	done    bool
	rng     *tensor.RNG
}

// RunAsync executes a buffered-asynchronous FedAvg-style simulation
// (FedBuff; Nguyen et al., AISTATS 2022): the server keeps
// opts.InFlight clients training concurrently, folds each upload into a
// staleness-weighted accumulator the moment its simulated arrival time
// lands, and commits a version bump every opts.Buffer arrivals:
//
//	w ← w + η/B · Σ_arrivals Δ_c / (1 + staleness_c)^p
//
// Arrival times come from the configured NetworkModel (per-dispatch
// lognormal link draws, exactly the sync transport's jitter scheme) plus
// a lognormal compute-time draw, so fast clients really do lap slow ones
// and staleness is earned rather than scripted.
//
// Determinism contract (the async half of the split contract in
// docs/ARCHITECTURE.md): every random draw — client selection, link and
// compute times, per-job training streams, the Byzantine seed split —
// happens serially at dispatch time, and folds apply in (arrival, seq)
// order. Local training of in-flight clients fans out over the worker
// pool, but each job trains from its own immutable snapshot with its own
// pre-split RNG, so histories are byte-identical at every
// Config.Parallelism / scheduler -jobs setting for a fixed seed.
//
// The simulated wire contributes sizes and times only: payload values
// cross losslessly (a lossy codec still prices EncodedSize bytes; value
// corruption under async delta references is future work). Byzantine
// options apply exactly as in Run — label-flip through the shadow
// environment, model-poisoning at the fold.
func RunAsync(env *Env, cfg Config, opts AsyncOptions) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.resolve(cfg)
	n := env.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: RunAsync: environment has no clients")
	}
	codec, err := nn.CodecByName(cfg.Transport.Codec)
	if err != nil {
		return nil, err
	}
	netModel, err := NetworkByName(cfg.Transport.Network)
	if err != nil {
		return nil, err
	}

	rng := tensor.NewRNG(cfg.Seed)
	initRNG := rng.Split()
	selRNG := rng.Split()
	timeRNG := rng.Split()
	jobRNG := rng.Split()
	advRNG := rng.Split()
	// The fault stream is appended after every pre-existing split (the
	// advRNG pattern): a zero-rate plan leaves benign histories
	// bit-unchanged. Fault decisions key on (dispatch seq, client), so
	// they are identical at every worker count and free to recompute on
	// resume. Client churn is a round-calendar concept and applies to the
	// synchronous engine only; its stream is still reserved here so the
	// two engines' split orders stay parallel.
	faultRNG := rng.Split()
	_ = rng.Split() // churn stream, reserved
	faults := NewFaultPlan(cfg.Faults, faultRNG.Int63())

	adv := NewAdversary(cfg.Adversary, n, advRNG)
	adv.BeginRound()
	env = adv.ShadowEnv(env)
	n = env.NumClients() // virtual sybils extend the shadow population

	// The async engine's "plan" is the dispatch draw itself: a client's
	// shard is not touched until the batched training pass of the next
	// arrival pop, so warming it at dispatch overlaps synthesis with the
	// folds, evaluations and arrivals in between. Prefetch draws no RNG,
	// so histories are bit-identical with it on or off.
	restripeSource(env, cfg)
	prefetch := sourcePrefetcher(env, cfg)
	if prefetch != nil {
		defer prefetch.CancelPrefetch()
	}

	global := nn.FlattenParams(env.Model.New(initRNG.Split()).Params())
	dim := len(global)
	wireBytes := codec.EncodedSize(dim)

	// Snapshot/upload buffers recycle through a freelist: at most
	// 2·InFlight parameter-sized vectors are ever live.
	var free []nn.ParamVector
	lease := func() nn.ParamVector {
		if len(free) > 0 {
			v := free[len(free)-1]
			free = free[:len(free)-1]
			return v
		}
		return make(nn.ParamVector, dim)
	}
	release := func(vs ...nn.ParamVector) { free = append(free, vs...) }

	// available is the sorted pool of clients not currently in flight, so
	// the uniform draw below is a pure function of the selection stream.
	// Virtualized federations admit only trainable (non-empty) clients —
	// at million-client scale empty shards are expected, not exceptional;
	// eager federations keep every client, preserving the legacy
	// empty-shard training error.
	available := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if env.Fed.Trainable(i) {
			available = append(available, i)
		}
	}
	if len(available) == 0 {
		return nil, fmt.Errorf("fl: RunAsync: no trainable clients")
	}
	if opts.InFlight > len(available) {
		opts.InFlight = len(available)
	}

	hist := &History{Algorithm: "fedbuff"}
	acc := make(nn.ParamVector, dim)
	var (
		inflight   []*asyncJob
		now        float64
		seq        int
		version    int
		arrivals   int
		dispatches int

		// folded counts the current window's accepted uploads — the
		// quorum the commit is judged against.
		folded                                      int
		crashes, faultDrops, duplicates, stallCount int
		degraded                                    int
		commits                                     int
	)
	ck := cfg.Checkpoint

	var prefetchBuf [1]int
	dispatch := func() {
		idx := selRNG.Intn(len(available))
		client := available[idx]
		available = append(available[:idx], available[idx+1:]...)
		if prefetch != nil {
			// Warm the dispatched client's shard now; it is trained no
			// earlier than the next arrival pop. Prefetch copies the id
			// synchronously, so the buffer is immediately reusable.
			prefetchBuf[0] = client
			prefetch.Prefetch(prefetchBuf[:])
		}
		// Per-dispatch simulated times, drawn in a fixed order: link
		// multipliers exactly like Transport.BeginRound, then compute.
		down, up, lat := mbpsToBytesPerSec(netModel.DownMbps), mbpsToBytesPerSec(netModel.UpMbps), netModel.LatencySec
		if netModel.Jitter > 0 {
			down *= math.Exp(netModel.Jitter * timeRNG.Normal(0, 1))
			up *= math.Exp(netModel.Jitter * timeRNG.Normal(0, 1))
			lat *= math.Exp(netModel.Jitter * timeRNG.Normal(0, 1))
		}
		compute := opts.ComputeSec * math.Exp(opts.ComputeJitter*timeRNG.Normal(0, 1))
		elapsed := 2*lat + compute
		if down > 0 {
			elapsed += float64(wireBytes) / down
		}
		if up > 0 {
			elapsed += float64(wireBytes) / up
		}
		if faults.Straggles(seq, client) {
			// A straggler spike stretches the whole activation — slow
			// links, slow compute — so the arrival lands later, earning
			// real staleness (the async analogue of the sync transport's
			// rate/latency inflation).
			elapsed *= faults.StraggleFactor()
		}
		fetch := lease()
		copy(fetch, global)
		job := &asyncJob{
			seq: seq, client: client, version: version,
			arrival: now + elapsed, fetch: fetch, rng: jobRNG.Split(),
		}
		if faults.Crashes(seq, client) {
			// The client dies mid-round: it fetched (bytes down are
			// already spent) but will never train or upload. done with a
			// nil trained vector is the crash marker the fold recognises.
			job.done = true
		}
		inflight = append(inflight, job)
		seq++
		dispatches++
		hist.BytesDown += wireBytes
	}

	startFresh := true
	if ck.Active() && ck.Resume {
		snap, err := loadAsyncCheckpoint(ck.Path, cfg, opts, n, dim)
		if err != nil {
			return nil, fmt.Errorf("fl: RunAsync: %w", err)
		}
		now, seq, version = snap.now, snap.seq, snap.version
		arrivals, dispatches = snap.arrivals, snap.dispatches
		crashes, faultDrops, duplicates = snap.crashes, snap.faultDrops, snap.dups
		stallCount, degraded = snap.stalls, snap.degraded
		hist.BytesDown, hist.BytesUp = snap.bytesDown, snap.bytesUp
		hist.Metrics = snap.metrics
		selRNG = tensor.RestoreRNG(snap.selState)
		timeRNG = tensor.RestoreRNG(snap.timeState)
		jobRNG = tensor.RestoreRNG(snap.jobState)
		available = snap.available
		copy(global, snap.global)
		inflight = make([]*asyncJob, len(snap.jobs))
		for i, js := range snap.jobs {
			inflight[i] = &asyncJob{
				seq: js.seq, client: js.client, version: js.version,
				arrival: js.arrival, fetch: js.fetch, trained: js.trained,
				done: js.done, rng: tensor.RestoreRNG(js.rng),
			}
		}
		commits = snap.nextCommit
		startFresh = false
		// The snapshot was taken inside the commit block, before the
		// dispatch that closes a loop iteration — run that dispatch now.
		if commits < opts.Commits {
			dispatch()
		}
	}
	if startFresh {
		for i := 0; i < opts.InFlight; i++ {
			dispatch()
		}
	}

	evalNow := func(commit int) error {
		accT, loss, err := evaluate(env.Model, global, env.Fed.Test, 64, cfg.Allowance())
		if err != nil {
			return fmt.Errorf("fl: RunAsync: eval commit %d: %w", commit, err)
		}
		hist.Metrics = append(hist.Metrics, RoundMetric{
			Round:               commit,
			TestAcc:             accT,
			TestLoss:            loss,
			CumModelEquivalents: float64(dispatches + arrivals),
			CumBytesDown:        hist.BytesDown,
			CumBytesUp:          hist.BytesUp,
			CumFaultDrops:       faultDrops,
			CumDuplicates:       duplicates,
			CumStalls:           stallCount,
			CumCrashes:          crashes,
			CumDegraded:         degraded,
		})
		return nil
	}

	finish := func() {
		hist.Comm = CommProfile{ModelsDown: dispatches, ModelsUp: arrivals}
		hist.Crashes = crashes
		hist.FaultDrops = faultDrops
		hist.Duplicates = duplicates
		hist.Stalls = stallCount
		hist.Degraded = degraded
	}

	for commits < opts.Commits {
		// Pop the earliest arrival (ties broken by dispatch order). The
		// in-flight set is small (M), so a linear scan is the queue.
		best := 0
		for i := 1; i < len(inflight); i++ {
			if inflight[i].arrival < inflight[best].arrival ||
				(inflight[i].arrival == inflight[best].arrival && inflight[i].seq < inflight[best].seq) {
				best = i
			}
		}
		job := inflight[best]
		if !job.done {
			// Batch-train every untrained in-flight client in one parallel
			// pass: each trains from its own snapshot with its own
			// pre-split stream, so results are scheduling-independent and
			// the engine still gets its fan-out.
			if err := trainPending(env, cfg, inflight); err != nil {
				releaseAll(inflight, release)
				return nil, fmt.Errorf("fl: RunAsync: %w", err)
			}
		}
		inflight = append(inflight[:best], inflight[best+1:]...)
		now = job.arrival

		if job.trained == nil {
			// Fault-injected crash: the slot completes (the server times
			// the client out and moves on) but nothing crossed the uplink.
			crashes++
			release(job.fetch)
		} else {
			hist.BytesUp += wireBytes
			switch {
			case faults.Drops(job.seq, job.client, 0),
				faults.Truncates(job.seq, job.client, 0),
				faults.Corrupts(job.seq, job.client, 0):
				// The async wire carries values losslessly, so a
				// truncated or corrupted payload is rejected whole at the
				// server door — observably a drop, and counted as one.
				faultDrops++
			default:
				upload := adv.CorruptUpload(job.client, job.trained)
				if finiteVector(upload) {
					// Fold: staleness-weighted model delta against the fetched
					// snapshot. Non-finite uploads are dropped at the server door,
					// the same screen ReduceUploads applies in the sync engine.
					staleness := float64(version - job.version)
					weight := 1 / math.Pow(1+staleness, opts.StalenessExp)
					for i := range acc {
						acc[i] += weight * (upload[i] - job.fetch[i])
					}
					folded++
				}
				if faults.Duplicates(job.seq, job.client) {
					// The retransmit arrives twice; the server dedupes but
					// the duplicate bytes were spent.
					hist.BytesUp += wireBytes
					duplicates++
				}
			}
			release(job.fetch, job.trained)
		}
		arrivals++
		insertSorted(&available, job.client)

		if arrivals%opts.Buffer == 0 {
			if cfg.MinUploads > 0 && folded < cfg.MinUploads {
				// Degraded commit: the window's accepted uploads missed the
				// quorum, so the thin accumulator is discarded and the model
				// survives unchanged. The version still bumps — staleness is
				// wall-clock truth, not a function of acceptance.
				for i := range acc {
					acc[i] = 0
				}
				degraded++
			} else {
				scale := opts.ServerLR / float64(opts.Buffer)
				for i := range global {
					global[i] += scale * acc[i]
					acc[i] = 0
				}
			}
			folded = 0
			version++
			commits++
			if faults.Stalls(commits - 1) {
				// Server stall: the commit pauses before the next dispatch
				// goes out, shifting only work scheduled after it.
				now += faults.StallSec()
				stallCount++
			}
			adv.BeginRound()
			last := commits == opts.Commits
			if last || (cfg.EvalEvery > 0 && commits%cfg.EvalEvery == 0) {
				if err := evalNow(commits); err != nil {
					releaseAll(inflight, release)
					return nil, err
				}
			}
			if ck.Active() {
				stopHere := ck.StopAfterRound > 0 && commits == ck.StopAfterRound
				if stopHere || (ck.Every > 0 && commits%ck.Every == 0) {
					snap := &asyncSnapshot{
						nextCommit: commits, now: now, seq: seq, version: version,
						arrivals: arrivals, dispatches: dispatches,
						crashes: crashes, faultDrops: faultDrops, dups: duplicates,
						stalls: stallCount, degraded: degraded,
						bytesDown: hist.BytesDown, bytesUp: hist.BytesUp,
						selState:  selRNG.State(), timeState: timeRNG.State(), jobState: jobRNG.State(),
						available: available, global: global, metrics: hist.Metrics,
					}
					snap.jobs = make([]asyncJobSnap, len(inflight))
					for i, j := range inflight {
						snap.jobs[i] = asyncJobSnap{
							seq: j.seq, client: j.client, version: j.version,
							arrival: j.arrival, done: j.done,
							fetch: j.fetch, trained: j.trained, rng: j.rng.State(),
						}
					}
					if err := saveAsyncCheckpoint(ck.Path, cfg, opts, n, dim, snap); err != nil {
						releaseAll(inflight, release)
						return nil, fmt.Errorf("fl: RunAsync: checkpoint commit %d: %w", commits, err)
					}
				}
				if stopHere {
					releaseAll(inflight, release)
					finish()
					return hist, ErrStopped
				}
			}
			if last {
				break
			}
		}
		dispatch()
	}
	finish()
	return hist, nil
}

// trainPending runs local training for every not-yet-trained in-flight
// job in one parallel batch, writing each result into an engine-owned
// upload buffer.
func trainPending(env *Env, cfg Config, inflight []*asyncJob) error {
	var pending []*asyncJob
	for _, j := range inflight {
		if !j.done {
			pending = append(pending, j)
		}
	}
	jobs := make([]LocalJob, len(pending))
	for i, j := range pending {
		jobs[i] = LocalJob{
			Client: j.client,
			Spec: LocalSpec{
				Init:      j.fetch,
				Epochs:    cfg.LocalEpochs,
				BatchSize: cfg.BatchSize,
				LR:        cfg.LR,
				Momentum:  cfg.Momentum,
			},
			RNG: j.rng,
		}
	}
	results, err := TrainAllFanout(env, jobs, cfg.Allowance(), cfg.BatchFanout)
	if err != nil {
		return err
	}
	for i, j := range pending {
		j.trained = results[i].Params
		j.done = true
	}
	return nil
}

// releaseAll hands the in-flight buffers back on error paths, keeping the
// engine leak-free even when an attacker-induced failure aborts the run
// (the freelist is function-local, so this is bookkeeping hygiene; the
// replica-pool leases inside TrainAll are already released by TrainLocal
// itself — pinned by the leak test).
func releaseAll(inflight []*asyncJob, release func(vs ...nn.ParamVector)) {
	for _, j := range inflight {
		release(j.fetch)
		if j.trained != nil {
			release(j.trained)
		}
	}
}

// insertSorted puts c back into the sorted available pool.
func insertSorted(pool *[]int, c int) {
	s := *pool
	i := sort.SearchInts(s, c)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = c
	*pool = s
}
