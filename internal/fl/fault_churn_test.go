package fl

import (
	"fmt"
	"reflect"
	"testing"
)

// faultMix exercises every fault class at rates high enough that each
// fires within a short run.
func faultMix() FaultOptions {
	return FaultOptions{
		CrashRate: 0.3, DropRate: 0.3, TruncateRate: 0.25, CorruptRate: 0.25,
		DuplicateRate: 0.3, StraggleRate: 0.3, StallRate: 0.3,
	}
}

func TestFaultOptionsValidate(t *testing.T) {
	for _, bad := range []FaultOptions{
		{CrashRate: -0.1},
		{DropRate: 1.5},
		{TruncateRate: 2},
		{CorruptRate: -1},
		{DuplicateRate: 1.01},
		{StraggleRate: -0.5},
		{StallRate: 7},
		{StraggleFactor: 0.5}, // a speedup is not a straggler
		{StraggleFactor: -1},
		{StallSec: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should not validate", bad)
		}
	}
	if err := (FaultOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := faultMix().Validate(); err != nil {
		t.Fatal(err)
	}
	if (FaultOptions{StraggleFactor: 4, StallSec: 2}).Active() {
		t.Fatal("factor-only options must be inactive")
	}
}

// TestFaultPlanDeterministicAndPure: every decision is a pure function of
// (seed, round, id) — two plans with the same seed agree everywhere, and
// the nil plan injects nothing.
func TestFaultPlanDeterministicAndPure(t *testing.T) {
	a := NewFaultPlan(faultMix(), 42)
	b := NewFaultPlan(faultMix(), 42)
	var nilPlan *FaultPlan
	fired, clean := 0, 0
	for r := 0; r < 50; r++ {
		if a.Stalls(r) != b.Stalls(r) {
			t.Fatalf("stall decision diverged at round %d", r)
		}
		for id := 0; id < 20; id++ {
			decisions := [][2]bool{
				{a.Crashes(r, id), b.Crashes(r, id)},
				{a.Drops(r, id, 0), b.Drops(r, id, 0)},
				{a.Drops(r, id, 1), b.Drops(r, id, 1)},
				{a.Truncates(r, id, 0), b.Truncates(r, id, 0)},
				{a.Corrupts(r, id, 0), b.Corrupts(r, id, 0)},
				{a.Duplicates(r, id), b.Duplicates(r, id)},
				{a.Straggles(r, id), b.Straggles(r, id)},
			}
			for k, d := range decisions {
				if d[0] != d[1] {
					t.Fatalf("decision %d diverged at (%d,%d)", k, r, id)
				}
				if d[0] {
					fired++
				} else {
					clean++
				}
			}
			if nilPlan.Crashes(r, id) || nilPlan.Drops(r, id, 0) ||
				nilPlan.Duplicates(r, id) || nilPlan.Straggles(r, id) || nilPlan.Stalls(r) {
				t.Fatal("nil plan must inject nothing")
			}
		}
	}
	if fired == 0 || clean == 0 {
		t.Fatalf("degenerate plan: fired=%d clean=%d", fired, clean)
	}
	if NewFaultPlan(FaultOptions{}, 42).Active() {
		t.Fatal("inactive options must yield an inactive plan")
	}
}

// TestInactiveFaultsAndChurnBitIdentical: setting only the fault/churn
// fields that carry no probability (factors, durations) must leave the
// history bit-unchanged from the benign run — the rate-0 guarantee.
func TestInactiveFaultsAndChurnBitIdentical(t *testing.T) {
	cfg := Config{Rounds: 4, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 9}
	base, err := Run(&wireAlgo{}, testEnv(51, 6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	decorated := cfg
	decorated.Faults = FaultOptions{StraggleFactor: 8, StallSec: 30}
	decorated.Churn = ChurnOptions{Availability: 1, PeriodRounds: 12}
	got, err := Run(&wireAlgo{}, testEnv(51, 6), decorated)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("inactive faults/churn changed the history:\n%+v\nvs\n%+v", base, got)
	}
}

// TestRunUnderFaultsDeterministicAcrossParallelism: the full fault mix,
// retries, a quorum floor, an adversary and a lossy wire — histories must
// still be bit-identical at every worker count, and every fault class
// must show up in the telemetry.
func TestRunUnderFaultsDeterministicAcrossParallelism(t *testing.T) {
	mk := func(par int) Config {
		return Config{Rounds: 8, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 16,
			LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 3, Parallelism: par,
			Faults:     faultMix(),
			MinUploads: 2,
			Transport:  TransportOptions{Codec: "fp16", Network: "lte", Retries: 2, RetryBackoffSec: 0.1},
			Adversary:  AdversaryOptions{Attack: AttackSignFlip, Frac: 0.25},
		}
	}
	ref, err := Run(&wireAlgo{}, testEnv(52, 10), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 8} {
		h, err := Run(&wireAlgo{}, testEnv(52, 10), mk(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !reflect.DeepEqual(ref, h) {
			t.Fatalf("history diverged at Parallelism=%d", par)
		}
	}
	if ref.Crashes == 0 || ref.FaultDrops == 0 || ref.Retries == 0 ||
		ref.Duplicates == 0 || ref.Stalls == 0 {
		t.Fatalf("fault telemetry incomplete: %+v", ref)
	}
	final := ref.Final()
	if final.CumCrashes != ref.Crashes || final.CumFaultDrops != ref.FaultDrops ||
		final.CumStalls != ref.Stalls {
		t.Fatalf("per-round cum counters disagree with run totals: %+v vs %+v", final, ref)
	}
}

// TestQuorumDegradationNeverHangs: with a quorum the cohort can rarely
// meet, rounds degrade (and are counted) instead of hanging or erroring.
func TestQuorumDegradationNeverHangs(t *testing.T) {
	cfg := Config{Rounds: 5, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 4,
		Faults:     FaultOptions{CrashRate: 0.9},
		MinUploads: 4,
	}
	h, err := Run(&wireAlgo{}, testEnv(53, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded == 0 {
		t.Fatalf("expected degraded rounds under a 90%% crash rate and a full quorum: %+v", h)
	}
	if h.Final().CumDegraded != h.Degraded {
		t.Fatalf("cum degraded %d != run total %d", h.Final().CumDegraded, h.Degraded)
	}
}

// TestHostileUploadBytesNeverPanic: with every upload truncated or
// corrupted in transit, every codec must surface the damage as a counted
// per-client dropout — the run completes, nothing panics, and with no
// accepted uploads the model just holds still.
func TestHostileUploadBytesNeverPanic(t *testing.T) {
	for _, codec := range []string{"identity", "fp16", "int8", "topk:0.25"} {
		for _, faults := range []FaultOptions{{TruncateRate: 1}, {CorruptRate: 1}} {
			name := fmt.Sprintf("%s/truncate=%v", codec, faults.TruncateRate == 1)
			t.Run(name, func(t *testing.T) {
				cfg := Config{Rounds: 3, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
					LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 5,
					Faults:    faults,
					Transport: TransportOptions{Codec: codec, Retries: 1},
				}
				h, err := Run(&wireAlgo{}, testEnv(54, 6), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if h.FaultDrops != 3*3 {
					t.Fatalf("want all %d uploads counted as fault drops, got %d", 3*3, h.FaultDrops)
				}
				first, last := h.Metrics[0].TestAcc, h.Final().TestAcc
				if first != last {
					t.Fatalf("model moved with zero accepted uploads: %v -> %v", first, last)
				}
			})
		}
	}
}

func TestChurnOptionsValidate(t *testing.T) {
	for _, bad := range []ChurnOptions{
		{Availability: -0.1},
		{Availability: 1.5},
		{PeriodRounds: -1},
		{Jitter: -0.2},
		{Jitter: 2},
		{StartFrac: -1},
		{EndFrac: 1.2},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should not validate", bad)
		}
	}
	if err := (ChurnOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (ChurnOptions{Availability: 1, StartFrac: 1, EndFrac: 1}).Active() {
		t.Fatal("full availability and a flat ramp must be inactive")
	}
}

// TestChurnPlanPureAndRamped: availability is a pure function of (seed,
// round, id), the population ramp hits its endpoints, and departed ids
// are offline by definition.
func TestChurnPlanPureAndRamped(t *testing.T) {
	opts := ChurnOptions{Availability: 0.5, Jitter: 0.3, StartFrac: 1, EndFrac: 0.5}
	const n, rounds = 100, 10
	a := NewChurnPlan(opts, 7, n, rounds)
	b := NewChurnPlan(opts, 7, n, rounds)
	online, offline := 0, 0
	for r := 0; r < rounds; r++ {
		for id := 0; id < n; id++ {
			av := a.Available(r, id)
			if av != b.Available(r, id) {
				t.Fatalf("availability diverged at (%d,%d)", r, id)
			}
			if av {
				online++
			} else {
				offline++
			}
			if id >= a.PopN(r) && av {
				t.Fatalf("departed client %d online at round %d", id, r)
			}
		}
	}
	if online == 0 || offline == 0 {
		t.Fatalf("degenerate trace: online=%d offline=%d", online, offline)
	}
	if got := a.PopN(0); got != n {
		t.Fatalf("PopN(0) = %d, want %d", got, n)
	}
	if got := a.PopN(rounds - 1); got != n/2 {
		t.Fatalf("PopN(last) = %d, want %d", got, n/2)
	}
	var nilPlan *ChurnPlan
	if !nilPlan.Available(3, 5) {
		t.Fatal("nil plan must keep everyone online")
	}
	if NewChurnPlan(ChurnOptions{}, 7, n, rounds) != nil {
		t.Fatal("inactive churn must yield a nil plan")
	}
}

// TestChurnRunTelemetryAndDeterminism: a sparse fleet loses selection
// slots (counted), and histories stay bit-identical across worker counts.
func TestChurnRunTelemetryAndDeterminism(t *testing.T) {
	mk := func(par int) Config {
		return Config{Rounds: 6, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
			LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 6, Parallelism: par,
			Churn: ChurnOptions{Availability: 0.3, Jitter: 0.5, StartFrac: 1, EndFrac: 0.5},
		}
	}
	ref, err := Run(&wireAlgo{}, testEnv(55, 6), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := Run(&wireAlgo{}, testEnv(55, 6), mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, h) {
		t.Fatal("churned history diverged across Parallelism")
	}
	if ref.Unavailable == 0 {
		t.Fatalf("expected lost selection slots at 30%% availability over a shrinking fleet: %+v", ref)
	}
	if ref.Final().CumUnavailable != ref.Unavailable {
		t.Fatalf("cum unavailable %d != run total %d", ref.Final().CumUnavailable, ref.Unavailable)
	}
}
