// Package fl is the federated-learning simulation substrate: local SGD
// training with algorithm hooks (proximal terms, gradient corrections),
// client selection, round orchestration, evaluation, and communication
// accounting. Algorithms (FedAvg, FedProx, SCAFFOLD, FedGen, CluSamp in
// internal/baselines; FedCross in internal/core) plug into the Runner
// through the Algorithm interface.
package fl

import (
	"fmt"
	"runtime"

	"fedcross/internal/data"
	"fedcross/internal/models"
)

// Config holds the round-level hyper-parameters shared by every
// algorithm. The defaults mirror the paper's Section IV-A settings scaled
// to CPU: B=50, E=5, SGD lr=0.01 momentum=0.5, 10% participation.
type Config struct {
	// Rounds is the number of FL communication rounds.
	Rounds int
	// ClientsPerRound is K, the number of clients activated per round.
	ClientsPerRound int
	// LocalEpochs is E, the local epochs per activation.
	LocalEpochs int
	// BatchSize is the local mini-batch size.
	BatchSize int
	// LR and Momentum configure the clients' SGD optimizer.
	LR, Momentum float64
	// EvalEvery evaluates the global model every n rounds (plus always at
	// the final round); 0 evaluates only at the end.
	EvalEvery int
	// DropoutRate is the probability that an activated client fails to
	// return its model this round (failure injection); 0 disables.
	DropoutRate float64
	// Seed drives all simulation randomness (selection, shuffles, local
	// batching).
	Seed int64
	// Parallelism caps the worker goroutines a simulation run uses for
	// client-local training and its periodic evaluation. 0 (the default)
	// uses runtime.NumCPU(); 1 reproduces strictly serial execution.
	// Results are bit-identical at every setting: per-client RNG streams
	// are pre-split before dispatch, so scheduling never influences
	// randomness. (The standalone Evaluate/EvaluatePerClient helpers take
	// no Config; they accept the same worker budget as an explicit
	// argument.)
	Parallelism int
	// Transport selects the simulated wire (codec, link model, round
	// deadline). The zero value is the pass-through reference wire:
	// identity codec, ideal network, no deadline — bit-identical histories
	// to the accounting-only engine.
	Transport TransportOptions
	// Reducer is the server-side aggregation rule every algorithm's
	// upload fold routes through (see ReduceUploads). nil keeps the
	// legacy weighted-mean path, bit-identical to the pre-reducer engine;
	// the robust rules (trimmed mean, median, core's Krum family) swap in
	// here.
	Reducer Reducer
	// Adversary injects Byzantine clients (see AdversaryOptions). The
	// zero value runs the benign setting with histories untouched.
	Adversary AdversaryOptions
	// Faults injects deterministic failures — client crashes, payload
	// drop/truncation/corruption/duplication, straggle and stall faults
	// (see FaultOptions). The zero value injects nothing and leaves
	// histories bit-unchanged.
	Faults FaultOptions
	// MinUploads is the aggregation quorum: a round whose accepted
	// uploads fall below it degrades (the server keeps its current
	// model) instead of folding a thin cohort. 0 disables the quorum —
	// any non-empty fold proceeds, the pre-quorum behaviour.
	MinUploads int
	// Churn models client availability and population drift (see
	// ChurnOptions). The zero value runs the static, always-on fleet
	// with histories untouched.
	Churn ChurnOptions
	// Checkpoint configures round-granular write-ahead snapshots and
	// resume (see CheckpointOptions). The zero value never touches disk.
	Checkpoint CheckpointOptions
	// BatchFanout caps how many queued client jobs may be fused into one
	// batched training pass (see TrainAllFanout). 0 or 1 (the default)
	// trains every client solo — the reference path. Any setting is
	// bit-identical to solo training: fusion changes only how the
	// arithmetic is scheduled, never its results.
	BatchFanout int
	// PrefetchRounds is how many future rounds of planned cohorts the
	// engines hand to the data layer's background prefetch pool while the
	// current round trains (see data.Prefetcher): with a lazy client
	// source, round r+1's shards are synthesized concurrently with round
	// r's training, hiding the serial prepare phase of huge-K rounds. 0
	// (the default) disables lookahead. Prefetch only warms the shard
	// cache — it never draws RNG and is disabled automatically for
	// Selector algorithms, whose next cohort depends on round state — so
	// histories are bit-identical at every setting.
	PrefetchRounds int
	// CacheStripes overrides the lazy shard cache's stripe count before
	// the first lease (see data.NewLazyStriped): 0 (the default) keeps
	// the source's construction-time geometry. Stripes move lock
	// placement only, never shard bytes — results are bit-identical at
	// every stripe count.
	CacheStripes int
	// Budget, when non-nil, is the shared worker-token pool this run's
	// training and evaluation fan-outs lease goroutines from — set by the
	// experiment scheduler so concurrently running grid cells never
	// oversubscribe the machine. nil (the default) leaves the run
	// unbudgeted: Parallelism alone caps the fan-out, exactly the
	// standalone behaviour. The budget never affects results, only how
	// many goroutines compute them.
	Budget *WorkerBudget
}

// DefaultConfig returns the paper-mirroring configuration at test scale.
func DefaultConfig() Config {
	return Config{
		Rounds:          20,
		ClientsPerRound: 10,
		LocalEpochs:     5,
		BatchSize:       50,
		LR:              0.01,
		Momentum:        0.5,
		EvalEvery:       5,
		Seed:            1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fl: Rounds = %d, must be positive", c.Rounds)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("fl: ClientsPerRound = %d, must be positive", c.ClientsPerRound)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("fl: LocalEpochs = %d, must be positive", c.LocalEpochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: BatchSize = %d, must be positive", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("fl: LR = %v, must be positive", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("fl: Momentum = %v, must be in [0,1)", c.Momentum)
	case c.DropoutRate < 0 || c.DropoutRate >= 1:
		return fmt.Errorf("fl: DropoutRate = %v, must be in [0,1)", c.DropoutRate)
	case c.Parallelism < 0:
		return fmt.Errorf("fl: Parallelism = %d, must be non-negative", c.Parallelism)
	case c.BatchFanout < 0:
		return fmt.Errorf("fl: BatchFanout = %d, must be non-negative", c.BatchFanout)
	case c.PrefetchRounds < 0:
		return fmt.Errorf("fl: PrefetchRounds = %d, must be non-negative", c.PrefetchRounds)
	case c.CacheStripes < 0:
		return fmt.Errorf("fl: CacheStripes = %d, must be non-negative", c.CacheStripes)
	case c.MinUploads < 0:
		return fmt.Errorf("fl: MinUploads = %d, must be non-negative", c.MinUploads)
	}
	if err := c.Adversary.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Churn.Validate(); err != nil {
		return err
	}
	if err := c.Checkpoint.Validate(); err != nil {
		return err
	}
	return c.Transport.Validate()
}

// Workers resolves Parallelism to an effective worker count: the
// configured value, or runtime.NumCPU() when unset.
func (c Config) Workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Allowance returns the worker allowance a round's parallel sections draw
// from: Parallelism as the cap, leased from the shared Budget when the
// run executes under the experiment scheduler.
func (c Config) Allowance() Workers {
	return Workers{Max: c.Parallelism, Budget: c.Budget}
}

// Env bundles the federated dataset with the model architecture under
// test.
type Env struct {
	// Fed is the client shards plus shared test set.
	Fed *data.Federated
	// Model constructs the architecture every participant trains.
	Model models.Factory
}

// NumClients returns the total client population N.
func (e *Env) NumClients() int { return e.Fed.NumClients() }
