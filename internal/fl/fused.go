package fl

import (
	"fmt"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// TrainAllFanout is TrainAll with multi-client fusion: when fanout ≥ 2,
// queued jobs that share their hyper-parameters and shard size are
// trained in groups of up to fanout as one fused pass over a BatchedNet
// — one batched matmul per layer per step instead of one per client —
// with per-client gradient demultiplexing at the SGD step.
//
// Fusion never changes results: each fused client's trajectory is
// bit-identical to its solo TrainLocal run (the BatchedNet per-group
// contract, the grouped loss, and elementwise SGD compose to exactly the
// solo arithmetic, and each job's RNG is consumed by the same Perm draws
// in the same order). Jobs that cannot fuse — hook-bearing specs
// (Prox/GradCorrection), override shards, empty shards, or architectures
// with no batched mirror — fall back to the solo path, so fanout is
// purely a throughput knob. fanout ≤ 1 is exactly TrainAll.
func TrainAllFanout(env *Env, jobs []LocalJob, w Workers, fanout int) ([]LocalResult, error) {
	if fanout <= 1 || len(jobs) < 2 {
		return TrainAll(env, jobs, w)
	}
	// Serial grouping pass: bucket fusable jobs by the invariants a fused
	// pass needs (equal loop hyper-parameters and shard length), emitting
	// a fused unit whenever a bucket fills. Grouping happens before any
	// dispatch, so unit composition is scheduling-independent.
	type fuseKey struct {
		epochs, batchSize int
		lr, momentum      float64
		shardLen          int
	}
	var units [][]int // job indices; len ≥ 2 means fused
	buckets := make(map[fuseKey]*[]int)
	var keyOrder []fuseKey
	for i, job := range jobs {
		size := 0
		if job.Shard == nil {
			size = env.Fed.Size(job.Client)
		}
		if job.Shard != nil || job.Spec.Prox != 0 || job.Spec.GradCorrection != nil || size == 0 {
			units = append(units, []int{i})
			continue
		}
		k := fuseKey{job.Spec.Epochs, job.Spec.BatchSize, job.Spec.LR, job.Spec.Momentum, size}
		b, ok := buckets[k]
		if !ok {
			b = new([]int)
			buckets[k] = b
			keyOrder = append(keyOrder, k)
		}
		*b = append(*b, i)
		if len(*b) == fanout {
			units = append(units, *b)
			*b = nil
		}
	}
	for _, k := range keyOrder {
		rest := *buckets[k]
		if len(rest) >= 2 {
			units = append(units, rest)
		} else {
			for _, i := range rest {
				units = append(units, []int{i})
			}
		}
	}

	results := make([]LocalResult, len(jobs))
	err := parallelForErr(len(units), w, func(u int) error {
		idxs := units[u]
		if len(idxs) == 1 {
			i := idxs[0]
			job := jobs[i]
			shard := job.Shard
			if shard == nil {
				shard = env.Fed.LeaseShard(job.Client)
				defer env.Fed.ReleaseShard(job.Client)
			}
			res, err := TrainLocal(env.Model, shard, job.Spec, job.RNG)
			if err != nil {
				return fmt.Errorf("client %d: %w", job.Client, err)
			}
			results[i] = res
			return nil
		}
		return trainFusedUnit(env, jobs, idxs, results)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// trainFusedUnit trains the jobs at idxs as one fused pass, writing each
// job's LocalResult in place. It falls back to sequential solo training
// when the architecture has no batched mirror or a leased shard does not
// match its advertised size.
func trainFusedUnit(env *Env, jobs []LocalJob, idxs []int, results []LocalResult) error {
	g := len(idxs)
	shards := make([]*data.Dataset, g)
	for k, i := range idxs {
		shards[k] = env.Fed.LeaseShard(jobs[i].Client)
		defer env.Fed.ReleaseShard(jobs[i].Client)
	}
	solo := func() error {
		for k, i := range idxs {
			res, err := TrainLocal(env.Model, shards[k], jobs[i].Spec, jobs[i].RNG)
			if err != nil {
				return fmt.Errorf("client %d: %w", jobs[i].Client, err)
			}
			results[i] = res
		}
		return nil
	}
	n := shards[0].Len()
	for _, s := range shards[1:] {
		if s.Len() != n {
			return solo() // lease disagreed with Size metadata
		}
	}

	pool := models.BatchedReplicas(env.Model, g)
	rep, err := pool.Get()
	if err != nil {
		return solo() // no batched mirror for this architecture
	}
	defer pool.Put(rep)
	net := rep.Net

	spec0 := jobs[idxs[0]].Spec
	for _, i := range idxs {
		spec := jobs[i].Spec
		switch {
		case spec.LR <= 0:
			return fmt.Errorf("client %d: fl: TrainLocal: learning rate %v must be positive", jobs[i].Client, spec.LR)
		case len(spec.Init) != net.ClientParams():
			return fmt.Errorf("client %d: fl: TrainLocal: vector has %d elements, model wants %d", jobs[i].Client, len(spec.Init), net.ClientParams())
		case spec.Out != nil && len(spec.Out) != len(spec.Init):
			return fmt.Errorf("client %d: fl: TrainLocal: out length %d != init %d", jobs[i].Client, len(spec.Out), len(spec.Init))
		}
	}
	for k, i := range idxs {
		net.LoadClient(k, jobs[i].Spec.Init)
	}
	rep.Reset(spec0.LR, spec0.Momentum)

	params := net.Params()
	grads := net.Grads()
	opt := rep.Opt
	bs := spec0.BatchSize
	feat := shards[0].Features()
	steps := 0
	lossSums := make([]float64, g)
	losses := make([]float64, g)
	perms := make([][]int, g)

	x := tensor.GetScratch(g*bs, feat)
	defer tensor.PutScratch(x)
	y := make([]int, g*bs)
	var dlogits *tensor.Tensor
	defer func() { tensor.PutScratch(dlogits) }()

	for epoch := 0; epoch < spec0.Epochs; epoch++ {
		// One epoch permutation per client, drawn from that client's own
		// RNG — the identical draw shard.Batches makes on the solo path.
		for k, i := range idxs {
			perms[k] = jobs[i].RNG.Perm(n)
		}
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			m := end - start
			bx := tensor.Ensure(x, g*m, feat)
			by := y[:g*m]
			for k := range idxs {
				shards[k].BatchInto(tensor.New(bx.Data[k*m*feat:(k+1)*m*feat], m, feat), by[k*m:(k+1)*m], perms[k][start:end])
			}
			net.ZeroGrads()
			logits := net.Forward(bx, true)
			if dlogits == nil {
				dlogits = tensor.GetScratch(logits.Shape...)
			}
			dlogits = tensor.Ensure(dlogits, logits.Shape...)
			nn.SoftmaxCrossEntropyGroupsInto(losses, dlogits, logits, by, g)
			net.Backward(dlogits)
			opt.Step(params, grads)
			steps++
			for k := range lossSums {
				lossSums[k] += losses[k]
			}
		}
	}

	for k, i := range idxs {
		spec := jobs[i].Spec
		out := spec.Out
		if out == nil {
			out = make(nn.ParamVector, len(spec.Init))
		}
		net.StoreClient(k, out)
		res := LocalResult{Params: out, Steps: steps, Samples: n}
		if steps > 0 {
			res.MeanLoss = lossSums[k] / float64(steps)
		}
		results[i] = res
	}
	return nil
}
