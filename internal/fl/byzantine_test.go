package fl

import (
	"errors"
	"reflect"
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// wireAlgo is a minimal FedAvg-like algorithm that routes every payload
// through the simulated wire and its aggregation through ReduceUploads —
// the smallest in-package stack that exercises the adversary's two seams
// plus the reducer plug.
type wireAlgo struct {
	Wire
	env    *Env
	cfg    Config
	rng    *tensor.RNG
	global nn.ParamVector
}

func (s *wireAlgo) Name() string     { return "wiremean" }
func (s *wireAlgo) Category() string { return "Test" }

func (s *wireAlgo) Init(env *Env, cfg Config, rng *tensor.RNG) error {
	s.env, s.cfg, s.rng = env, cfg, rng
	s.global = nn.FlattenParams(env.Model.New(rng).Params())
	return nil
}

func (s *wireAlgo) Round(r int, selected []int) error {
	tr := s.Transport()
	var survivors []int
	for _, ci := range selected {
		if ci >= 0 {
			survivors = append(survivors, ci)
		}
	}
	recv := tr.Broadcast(nil, survivors, s.global)
	rngs := s.rng.SplitN(len(survivors))
	jobs := make([]LocalJob, len(survivors))
	for i, ci := range survivors {
		jobs[i] = LocalJob{Client: ci, Spec: LocalSpec{
			Init: recv, Epochs: s.cfg.LocalEpochs, BatchSize: s.cfg.BatchSize,
			LR: s.cfg.LR, Momentum: s.cfg.Momentum,
		}, RNG: rngs[i]}
	}
	results, err := TrainAll(s.env, jobs, s.cfg.Allowance())
	if err != nil {
		return err
	}
	var uploads []nn.ParamVector
	var weights []float64
	for j, res := range results {
		dec, ok := tr.Up(res.Params, jobs[j].Client, res.Params, recv)
		if !ok {
			continue
		}
		uploads = append(uploads, dec)
		weights = append(weights, float64(res.Samples))
	}
	if len(uploads) == 0 {
		return nil
	}
	agg, err := ReduceUploads(s.cfg.Reducer, uploads, weights)
	if errors.Is(err, ErrNoFiniteUploads) {
		return nil
	}
	if err != nil {
		return err
	}
	s.global = agg
	return nil
}

func (s *wireAlgo) Global() nn.ParamVector { return s.global }
func (s *wireAlgo) RoundComm(k int) CommProfile {
	return CommProfile{ModelsDown: k, ModelsUp: k}
}

func TestAdversaryOptionsValidate(t *testing.T) {
	for _, bad := range []AdversaryOptions{
		{Attack: "nuke", Frac: 0.1},
		{Attack: AttackSignFlip, Frac: -0.1},
		{Attack: AttackSignFlip, Frac: 1},
		{Attack: AttackScale, Frac: 0.1, Scale: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should not validate", bad)
		}
	}
	if err := (AdversaryOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (AdversaryOptions{Attack: AttackSignFlip}).Active() {
		t.Fatal("zero fraction must be inactive")
	}
}

// TestByzantineSeedSplit: the compromised set is a pure function of the
// seed split — identical across constructions and of the documented size.
func TestByzantineSeedSplit(t *testing.T) {
	opts := AdversaryOptions{Attack: AttackSignFlip, Frac: 0.3}
	mk := func() *Adversary {
		rng := tensor.NewRNG(42)
		for i := 0; i < 4; i++ {
			rng.Split() // the engine's earlier streams
		}
		return NewAdversary(opts, 20, rng.Split())
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Attackers(), b.Attackers()) {
		t.Fatalf("attacker set must be seed-deterministic: %v vs %v", a.Attackers(), b.Attackers())
	}
	if len(a.Attackers()) != 6 { // round(0.3·20)
		t.Fatalf("want 6 attackers, got %v", a.Attackers())
	}
	for _, c := range a.Attackers() {
		if !a.IsAttacker(c) {
			t.Fatalf("IsAttacker(%d) = false for listed attacker", c)
		}
	}
}

func TestCorruptUpload(t *testing.T) {
	rng := tensor.NewRNG(1)
	mk := func(opts AdversaryOptions) *Adversary {
		return NewAdversary(opts, 4, rng.Split())
	}
	vec := nn.ParamVector{1, -2, 3}
	orig := append(nn.ParamVector(nil), vec...)

	sf := mk(AdversaryOptions{Attack: AttackSignFlip, Frac: 0.99})
	sf.BeginRound()
	got := sf.CorruptUpload(sf.Attackers()[0], vec)
	if want := (nn.ParamVector{-1, 2, -3}); !reflect.DeepEqual(got, want) {
		t.Fatalf("signflip: got %v", got)
	}
	sc := mk(AdversaryOptions{Attack: AttackScale, Frac: 0.99, Scale: 4})
	sc.BeginRound()
	if got := sc.CorruptUpload(sc.Attackers()[0], vec); !reflect.DeepEqual(got, nn.ParamVector{4, -8, 12}) {
		t.Fatalf("scale: got %v", got)
	}
	co := mk(AdversaryOptions{Attack: AttackCollude, Frac: 0.99, Scale: 2})
	co.BeginRound()
	att := co.Attackers()
	first := co.CorruptUpload(att[0], vec)
	second := co.CorruptUpload(att[1], nn.ParamVector{9, 9, 9})
	if !reflect.DeepEqual(first, nn.ParamVector{-2, 4, -6}) {
		t.Fatalf("collude mint: got %v", first)
	}
	if &first[0] != &second[0] {
		t.Fatal("colluders must share one malicious vector")
	}
	lf := mk(AdversaryOptions{Attack: AttackLabelFlip, Frac: 0.99})
	lf.BeginRound()
	if got := lf.CorruptUpload(lf.Attackers()[0], vec); &got[0] != &vec[0] {
		t.Fatal("labelflip must pass uploads through untouched")
	}
	if !reflect.DeepEqual(vec, orig) {
		t.Fatal("CorruptUpload must never mutate the input vector")
	}
	// Honest clients pass through on every attack.
	honest := -1
	for c := 0; c < 4; c++ {
		if !sf.IsAttacker(c) {
			honest = c
			break
		}
	}
	if honest >= 0 {
		if got := sf.CorruptUpload(honest, vec); &got[0] != &vec[0] {
			t.Fatal("honest upload must pass through")
		}
	}
	// Nil adversary is a no-op.
	var nilAdv *Adversary
	nilAdv.BeginRound()
	if got := nilAdv.CorruptUpload(0, vec); &got[0] != &vec[0] {
		t.Fatal("nil adversary must pass uploads through")
	}
}

func TestShadowEnvFlipsOnlyAttackers(t *testing.T) {
	env := testEnv(21, 4)
	adv := NewAdversary(AdversaryOptions{Attack: AttackLabelFlip, Frac: 0.5}, 4, tensor.NewRNG(9).Split())
	shadow := adv.ShadowEnv(env)
	if shadow == env {
		t.Fatal("labelflip must produce a shadow environment")
	}
	classes := env.Fed.Clients[0].Classes
	for c := 0; c < 4; c++ {
		orig, sh := env.Fed.Clients[c], shadow.Fed.Clients[c]
		if adv.IsAttacker(c) {
			if sh == orig {
				t.Fatalf("attacker %d shard must be replaced", c)
			}
			for i := range orig.Y {
				if sh.Y[i] != classes-1-orig.Y[i] {
					t.Fatalf("attacker %d label %d not flipped", c, i)
				}
			}
			if sh.X != orig.X {
				t.Fatalf("attacker %d features must be shared, not copied", c)
			}
		} else if sh != orig {
			t.Fatalf("honest client %d shard must be shared", c)
		}
	}
	// Non-labelflip attacks leave the environment alone.
	adv2 := NewAdversary(AdversaryOptions{Attack: AttackSignFlip, Frac: 0.5}, 4, tensor.NewRNG(9).Split())
	if adv2.ShadowEnv(env) != env {
		t.Fatal("signflip must not shadow the environment")
	}
}

// TestAttackRunParallelismInvariance: under every attack (and a robust
// reducer) histories are bit-identical at Parallelism 1 vs 8 — the
// attacker set, corruption and aggregation are all scheduling-free.
func TestAttackRunParallelismInvariance(t *testing.T) {
	for _, attack := range []string{AttackLabelFlip, AttackSignFlip, AttackScale, AttackCollude} {
		run := func(par int) *History {
			cfg := Config{
				Rounds: 3, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
				LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 11, Parallelism: par,
				Reducer:   &TrimmedMeanReducer{Frac: 0.3},
				Adversary: AdversaryOptions{Attack: attack, Frac: 0.25},
			}
			h, err := Run(&wireAlgo{}, testEnv(22, 8), cfg)
			if err != nil {
				t.Fatalf("%s: %v", attack, err)
			}
			return h
		}
		if h1, h8 := run(1), run(8); !reflect.DeepEqual(h1, h8) {
			t.Fatalf("%s: Parallelism=1 vs 8 histories differ", attack)
		}
	}
}

// TestBenignReducerMeanBitIdentical: a benign run with an explicit
// MeanReducer must reproduce the nil legacy path bit-for-bit.
func TestBenignReducerMeanBitIdentical(t *testing.T) {
	run := func(r Reducer) *History {
		cfg := Config{
			Rounds: 3, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
			LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 13, Reducer: r,
		}
		h, err := Run(&wireAlgo{}, testEnv(23, 6), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if a, b := run(nil), run(MeanReducer{}); !reflect.DeepEqual(a, b) {
		t.Fatal("benign MeanReducer history must be bit-identical to the nil path")
	}
}

// TestSignFlipHurtsMeanNotMedian: the end-to-end sanity check behind the
// robust experiment — with 25% sign-flip attackers the mean aggregate
// loses accuracy while the coordinate-wise median holds.
func TestSignFlipHurtsMeanNotMedian(t *testing.T) {
	run := func(attack string, r Reducer) float64 {
		cfg := Config{
			Rounds: 6, ClientsPerRound: 8, LocalEpochs: 2, BatchSize: 16,
			LR: 0.05, Momentum: 0.5, Seed: 17, Reducer: r,
			Adversary: AdversaryOptions{Attack: attack, Frac: 0.25},
		}
		if attack == "" {
			cfg.Adversary = AdversaryOptions{}
		}
		h, err := Run(&wireAlgo{}, testEnv(24, 16), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h.Final().TestAcc
	}
	benign := run("", nil)
	attackedMean := run(AttackSignFlip, nil)
	attackedMedian := run(AttackSignFlip, &MedianReducer{})
	if attackedMean >= benign {
		t.Fatalf("sign-flip should hurt the mean: benign %v, attacked %v", benign, attackedMean)
	}
	if attackedMedian <= attackedMean {
		t.Fatalf("median should beat the mean under attack: median %v, mean %v", attackedMedian, attackedMean)
	}
}
