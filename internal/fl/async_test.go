package fl

import (
	"reflect"
	"strings"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/models"
)

func asyncCfg(seed int64, par int) Config {
	return Config{
		Rounds: 6, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: seed, Parallelism: par,
	}
}

func TestAsyncOptionsValidate(t *testing.T) {
	for _, bad := range []AsyncOptions{
		{Buffer: -1},
		{InFlight: -2},
		{Commits: -1},
		{StalenessExp: -0.5},
		{ServerLR: -1},
		{ComputeSec: -1},
		{ComputeJitter: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should not validate", bad)
		}
	}
	if err := (AsyncOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncRunsAndAccounts(t *testing.T) {
	env := testEnv(31, 8)
	opts := AsyncOptions{Buffer: 3, InFlight: 4, Commits: 5}
	hist, err := RunAsync(env, asyncCfg(1, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Algorithm != "fedbuff" {
		t.Fatalf("algorithm %q", hist.Algorithm)
	}
	if got, want := hist.Comm.ModelsUp, 3*5; got != want {
		t.Fatalf("arrivals %d, want B·commits = %d", got, want)
	}
	// One dispatch per arrival plus the still-in-flight tail.
	if got, want := hist.Comm.ModelsDown, 3*5+4-1; got != want {
		t.Fatalf("dispatches %d, want %d", got, want)
	}
	if hist.BytesDown <= 0 || hist.BytesUp <= 0 {
		t.Fatalf("bytes not accounted: down=%d up=%d", hist.BytesDown, hist.BytesUp)
	}
	if hist.Final().Round != 5 {
		t.Fatalf("final commit %d, want 5", hist.Final().Round)
	}
	// EvalEvery=2 over 5 commits → commits 2, 4 and the final 5.
	if len(hist.Metrics) != 3 {
		t.Fatalf("evals %d, want 3", len(hist.Metrics))
	}
}

// TestAsyncFoldDeterminism is the async half of the determinism contract:
// byte-identical histories at any worker fan-out for a fixed seed, with
// and without an adversary.
func TestAsyncFoldDeterminism(t *testing.T) {
	for _, adv := range []AdversaryOptions{
		{},
		{Attack: AttackSignFlip, Frac: 0.25},
	} {
		run := func(par int) *History {
			cfg := asyncCfg(5, par)
			cfg.Adversary = adv
			h, err := RunAsync(testEnv(32, 8), cfg, AsyncOptions{Buffer: 2, InFlight: 5, Commits: 6})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
		if h1, h8 := run(1), run(8); !reflect.DeepEqual(h1, h8) {
			t.Fatalf("attack=%q: Parallelism=1 vs 8 histories differ", adv.Attack)
		}
	}
}

func TestAsyncLearns(t *testing.T) {
	env := testEnv(33, 8)
	hist, err := RunAsync(env, asyncCfg(2, 0), AsyncOptions{Buffer: 4, Commits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hist.BestAcc() < 0.4 {
		t.Fatalf("async training should learn the easy env: best acc %v", hist.BestAcc())
	}
}

// TestAsyncNoReplicaLeakOnError: an error mid-fold (a client with an
// empty shard aborts the batched training pass) must not leak leased
// replicas — the pool's outstanding-lease count returns to zero. The env
// uses a dedicated architecture so no other test's leases show up in the
// counter.
func TestAsyncNoReplicaLeakOnError(t *testing.T) {
	env := testEnv(34, 8)
	env.Model = models.MLP(12, 17, 4) // unique dims → private replica pool
	env.Fed.Clients[3] = &data.Dataset{Classes: 4}
	pool := models.Replicas(env.Model)

	_, err := RunAsync(env, asyncCfg(3, 4), AsyncOptions{Buffer: 2, InFlight: 6, Commits: 8})
	if err == nil || !strings.Contains(err.Error(), "empty shard") {
		t.Fatalf("want the empty-shard failure, got %v", err)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("error path leaked %d replica leases", n)
	}

	// The sync engine holds the same invariant through its error exit.
	cfg := asyncCfg(3, 4)
	cfg.Rounds, cfg.ClientsPerRound = 4, 8 // select everyone → hit the empty shard
	if _, err := Run(&wireAlgo{}, env, cfg); err == nil {
		t.Fatal("sync run should also fail on the empty shard")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("sync error path leaked %d replica leases", n)
	}
}

// TestAsyncStalenessWeighting: with a strong staleness exponent, stale
// folds are damped — the run still progresses and stays finite.
func TestAsyncStalenessWeighting(t *testing.T) {
	env := testEnv(35, 8)
	hist, err := RunAsync(env, asyncCfg(4, 0), AsyncOptions{
		Buffer: 2, InFlight: 8, Commits: 6, StalenessExp: 2, ComputeJitter: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range hist.Metrics {
		if m.TestAcc < 0 || m.TestAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", m)
		}
	}
}
