package fl

import (
	"fmt"
	"sort"

	"fedcross/internal/data"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Attack names the Byzantine client behaviours the simulator can inject.
const (
	// AttackNone disables the adversary.
	AttackNone = "none"
	// AttackLabelFlip trains honestly on dishonest data: every label y of
	// a compromised client's shard becomes Classes−1−y. A data-poisoning
	// attack — the upload itself is a faithful model of the flipped shard.
	AttackLabelFlip = "labelflip"
	// AttackSignFlip uploads the negated parameter vector, the classic
	// model-poisoning attack that reverses the aggregate's direction.
	AttackSignFlip = "signflip"
	// AttackScale uploads the trained vector multiplied by Scale — a
	// scaled-gradient attack that lets a single client dominate a mean.
	AttackScale = "scale"
	// AttackCollude makes every compromised client upload the SAME
	// malicious vector (the first attacker's sign-flipped, Scale-amplified
	// update). Identical vectors sit at distance zero from each other,
	// which is exactly the cluster structure Krum-style defences are
	// weakest against.
	AttackCollude = "collude"
)

// AdversaryOptions configures Byzantine client injection for a run. The
// zero value means no adversary.
type AdversaryOptions struct {
	// Attack is the behaviour ("" or "none" disables; see the Attack*
	// constants).
	Attack string
	// Frac is the fraction of the TOTAL client population compromised,
	// in [0, 1). The compromised set is drawn once per run from a
	// dedicated seed split, so it is identical at every worker count and
	// stable under -jobs/-parallel changes.
	Frac float64
	// Scale is the magnitude of the scale/collude attacks (default 10).
	Scale float64
	// Virtual appends this many synthetic Byzantine clients past the real
	// population: client ids N..N+Virtual−1 exist only in the shadow
	// environment, recycle a real client's shard data (id mod N), and are
	// all compromised. They model sybil participants that the server
	// cannot distinguish from real clients, and exercise the ClientSource
	// seam — a virtual client's shard is synthesized on lease exactly like
	// a lazy real client's.
	Virtual int
}

// Active reports whether the options describe a live adversary.
func (o AdversaryOptions) Active() bool {
	return (o.Frac > 0 || o.Virtual > 0) && o.Attack != "" && o.Attack != AttackNone
}

// Validate reports the first problem with the options.
func (o AdversaryOptions) Validate() error {
	switch o.Attack {
	case "", AttackNone, AttackLabelFlip, AttackSignFlip, AttackScale, AttackCollude:
	default:
		return fmt.Errorf("fl: unknown attack %q (want none, labelflip, signflip, scale or collude)", o.Attack)
	}
	if o.Frac < 0 || o.Frac >= 1 {
		return fmt.Errorf("fl: attack fraction %v out of [0, 1)", o.Frac)
	}
	if o.Scale < 0 {
		return fmt.Errorf("fl: attack scale %v negative", o.Scale)
	}
	if o.Virtual < 0 {
		return fmt.Errorf("fl: virtual client count %d negative", o.Virtual)
	}
	if o.Virtual > 0 && (o.Attack == "" || o.Attack == AttackNone) {
		return fmt.Errorf("fl: virtual clients require an attack")
	}
	return nil
}

func (o AdversaryOptions) scale() float64 {
	if o.Scale == 0 {
		return 10
	}
	return o.Scale
}

// Adversary is a run's resolved Byzantine client set plus the attack
// machinery. It plugs into the engine at two seams:
//
//   - data: ShadowEnv substitutes label-flipped shards for compromised
//     clients (AttackLabelFlip), leaving honest shards and the test set
//     shared with the original environment;
//   - wire: the Transport consults CorruptUpload on every client→server
//     payload, so the model-poisoning attacks apply uniformly to all six
//     algorithms (and the async engine) without touching any of them.
//
// Concurrency contract: CorruptUpload and BeginRound are called only from
// the serial phases of a round, exactly like every other Transport
// method.
type Adversary struct {
	opts      AdversaryOptions
	attackers map[int]bool
	sorted    []int
	// baseN is the real client population; virtual ids live in
	// [baseN, baseN+virtual).
	baseN   int
	virtual int

	// colludeVec is the round's shared malicious payload; colludeSet
	// marks whether this round's first colluder has minted it yet.
	colludeVec nn.ParamVector
	colludeSet bool
	// bufs recycles per-upload corruption destinations across rounds;
	// used counts how many are live this round.
	bufs []nn.ParamVector
	used int
}

// NewAdversary draws the compromised client set: round(Frac·n) distinct
// clients chosen by one rng.Perm — a pure function of the dedicated seed
// split, independent of scheduling. Returns nil when the options are
// inactive.
func NewAdversary(opts AdversaryOptions, n int, rng *tensor.RNG) *Adversary {
	if !opts.Active() || n == 0 {
		return nil
	}
	k := int(opts.Frac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	a := &Adversary{opts: opts, attackers: make(map[int]bool, k+opts.Virtual), baseN: n, virtual: opts.Virtual}
	for _, c := range perm {
		a.attackers[c] = true
	}
	a.sorted = append(a.sorted, perm...)
	sort.Ints(a.sorted)
	// Virtual sybils are appended past the real population and are all
	// compromised by construction; they consume no RNG, so runs with
	// Virtual=0 draw the exact attacker set of earlier releases.
	for v := 0; v < opts.Virtual; v++ {
		a.attackers[n+v] = true
		a.sorted = append(a.sorted, n+v)
	}
	return a
}

// IsAttacker reports whether client c is compromised. Nil-safe.
func (a *Adversary) IsAttacker(c int) bool { return a != nil && a.attackers[c] }

// Attackers returns the compromised client ids in ascending order.
func (a *Adversary) Attackers() []int {
	if a == nil {
		return nil
	}
	return append([]int(nil), a.sorted...)
}

// BeginRound resets the per-round corruption state (collusion payload,
// recycled buffers). Called by Transport.BeginRound in the sync engine
// and at every commit by the async engine. Nil-safe.
func (a *Adversary) BeginRound() {
	if a == nil {
		return
	}
	a.used = 0
	a.colludeSet = false
}

// CorruptUpload returns the vector client c actually transmits: vec
// itself for honest clients and data-poisoning attackers, a corrupted
// copy for the model-poisoning attacks. vec is never mutated; the
// returned buffer stays valid until the next BeginRound. Nil-safe.
func (a *Adversary) CorruptUpload(client int, vec nn.ParamVector) nn.ParamVector {
	if a == nil || !a.attackers[client] {
		return vec
	}
	switch a.opts.Attack {
	case AttackSignFlip:
		buf := a.scratch(len(vec))
		for i, x := range vec {
			buf[i] = -x
		}
		return buf
	case AttackScale:
		s := a.opts.scale()
		buf := a.scratch(len(vec))
		for i, x := range vec {
			buf[i] = s * x
		}
		return buf
	case AttackCollude:
		if !a.colludeSet {
			if len(a.colludeVec) != len(vec) {
				a.colludeVec = make(nn.ParamVector, len(vec))
			}
			s := a.opts.scale()
			for i, x := range vec {
				a.colludeVec[i] = -s * x
			}
			a.colludeSet = true
		}
		return a.colludeVec
	default: // labelflip poisons data, not payloads
		return vec
	}
}

// scratch leases the next recycled corruption buffer of length n.
func (a *Adversary) scratch(n int) nn.ParamVector {
	if a.used == len(a.bufs) {
		a.bufs = append(a.bufs, make(nn.ParamVector, n))
	}
	buf := a.bufs[a.used]
	if len(buf) != n {
		buf = make(nn.ParamVector, n)
		a.bufs[a.used] = buf
	}
	a.used++
	return buf
}

// ShadowEnv returns the environment the algorithms should actually train
// against: for AttackLabelFlip, a view whose compromised shards have
// every label flipped to Classes−1−y (feature storage is shared — the
// flip allocates only label slices); with Virtual sybils, a view whose
// client population is extended to N+Virtual ids that recycle real
// shards. For a plain model-poisoning attack without sybils the original
// environment is returned unchanged. Nil-safe.
//
// Eager federations keep the historical copy-on-write Clients slice;
// source-backed federations (and any run with Virtual > 0) get a
// shadowSource wrapper that poisons the leased copy instead, so the
// shadow never materializes more than the in-flight working set.
func (a *Adversary) ShadowEnv(env *Env) *Env {
	if a == nil {
		return env
	}
	flip := a.opts.Attack == AttackLabelFlip
	if a.virtual == 0 && !flip {
		return env
	}
	if a.virtual == 0 && env.Fed.Source == nil && flip {
		fed := *env.Fed
		fed.Clients = append([]*data.Dataset(nil), env.Fed.Clients...)
		for _, c := range a.sorted {
			if c < len(fed.Clients) {
				fed.Clients[c] = flipLabels(fed.Clients[c])
			}
		}
		return &Env{Fed: &fed, Model: env.Model}
	}
	inner := env.Fed.Source
	if inner == nil {
		inner = data.NewMaterialized(env.Fed.Clients)
	}
	fed := *env.Fed
	fed.Clients = nil
	fed.Source = &shadowSource{
		inner:     inner,
		baseN:     a.baseN,
		virtual:   a.virtual,
		flip:      flip,
		attackers: a.attackers,
	}
	return &Env{Fed: &fed, Model: env.Model}
}

// shadowSource is the adversary's view of a client source: ids past the
// real population map onto real shards (id mod baseN), and label-flip
// poisoning is applied to a copy at lease time, leaving the underlying
// source's data untouched. Each shadow lease holds exactly one inner
// lease, so outstanding-lease accounting passes straight through.
type shadowSource struct {
	inner     data.ClientSource
	baseN     int
	virtual   int
	flip      bool
	attackers map[int]bool
}

// mapID folds a virtual id onto the real shard it recycles.
func (s *shadowSource) mapID(id int) int {
	if id >= s.baseN {
		return (id - s.baseN) % s.baseN
	}
	return id
}

// NumClients counts real plus virtual clients.
func (s *shadowSource) NumClients() int { return s.baseN + s.virtual }

// Size reads the recycled shard's metadata size.
func (s *shadowSource) Size(id int) int { return s.inner.Size(s.mapID(id)) }

// Shard leases the recycled shard, flipping labels on a fresh view when
// the id is compromised under a label-flip attack. The flipped view
// shares feature storage with the inner lease, which stays pinned until
// Release.
func (s *shadowSource) Shard(id int) *data.Dataset {
	ds := s.inner.Shard(s.mapID(id))
	if s.flip && s.attackers[id] {
		return flipLabels(ds)
	}
	return ds
}

// Release returns the inner lease backing the shadow lease.
func (s *shadowSource) Release(id int) { s.inner.Release(s.mapID(id)) }

// Outstanding passes through to the inner source.
func (s *shadowSource) Outstanding() int { return s.inner.Outstanding() }

// Prefetch forwards a planned cohort to the inner source's warming pool
// with virtual sybil ids folded onto the real shards they recycle.
// Label-flip poisoning happens on the leased view, so warming the real
// shard is exactly what a later shadow lease consumes. No-op when the
// inner source cannot prefetch.
func (s *shadowSource) Prefetch(ids []int) {
	p, ok := s.inner.(data.Prefetcher)
	if !ok {
		return
	}
	mapped := make([]int, len(ids))
	for i, id := range ids {
		if id < 0 {
			mapped[i] = id
			continue
		}
		mapped[i] = s.mapID(id)
	}
	p.Prefetch(mapped)
}

// CancelPrefetch forwards the early-exit drain to the inner source.
func (s *shadowSource) CancelPrefetch() {
	if p, ok := s.inner.(data.Prefetcher); ok {
		p.CancelPrefetch()
	}
}

// Restripe forwards the cache-geometry knob to the inner source.
func (s *shadowSource) Restripe(stripes int) bool {
	if rs, ok := s.inner.(data.Restriper); ok {
		return rs.Restripe(stripes)
	}
	return false
}

// flipLabels returns a dataset sharing d's features with labels mapped to
// Classes−1−y.
func flipLabels(d *data.Dataset) *data.Dataset {
	y := make([]int, len(d.Y))
	for i, v := range d.Y {
		y[i] = d.Classes - 1 - v
	}
	return &data.Dataset{X: d.X, Y: y, Classes: d.Classes, TokenVocab: d.TokenVocab}
}
