package fl

import (
	"fedcross/internal/data"
	"fedcross/internal/tensor"
)

// CohortPlan replays the engine's selection stream and returns the
// cohort fl.Run will select for round r (0-based, pre-dropout) under a
// benign run whose algorithm does not implement Selector: it splits the
// master RNG exactly as Run does, then consumes one Perm(n) per round
// through round r. Because selection is a pure function of (seed, n, k,
// r), round r+1's cohort is known while round r still trains — the
// determinism fact the prefetch pipeline is built on. k is clamped to n
// exactly as in Run. Selector algorithms (clustered sampling) choose
// clients from round-local state, so their cohorts exist only inside the
// run; the engine's planner handles them by drawing at round boundaries
// and disabling lookahead. CohortPlan replays the static, always-on
// fleet: under an active ChurnPlan the engine filters the same Perm to
// available ids, so the replay remains a superset of the cohort.
func CohortPlan(r int, seed int64, n, k int) []int {
	if r < 0 || n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	root := tensor.NewRNG(seed)
	_ = root.Split() // initRNG — first split in Run's anchor order
	sel := root.Split()
	var cohort []int
	for rr := 0; rr <= r; rr++ {
		cohort = sel.Perm(n)[:k]
	}
	return cohort
}

// cohortPlanner owns a run's selection stream. It factors client
// selection out of the round loop so round r+1's cohort can be planned
// (and its shards prefetched) while round r trains, without moving a
// single RNG draw out of round order: plans are drawn strictly
// sequentially from the same selRNG, so whether a round's cohort is
// drawn eagerly (lookahead) or at its round top, the stream — and every
// history bit — is identical to the inline selection it replaced.
type cohortPlanner struct {
	algo  Algorithm
	rng   *tensor.RNG
	n, k  int
	churn *ChurnPlan // nil for the static, always-on fleet

	next  int           // first round whose cohort has not been drawn
	drawn map[int][]int // planned cohorts not yet handed to the loop
}

func newCohortPlanner(algo Algorithm, rng *tensor.RNG, n, k int, churn *ChurnPlan) *cohortPlanner {
	return &cohortPlanner{algo: algo, rng: rng, n: n, k: k, churn: churn, drawn: map[int][]int{}}
}

// draw advances the selection stream through round r, caching cohorts
// drawn ahead of their round. Availability is a pure function of
// (seed, id, round), so churn-biased cohorts are as plannable ahead as
// uniform ones.
func (p *cohortPlanner) draw(r int) []int {
	for p.next <= r {
		p.drawn[p.next] = selectClients(p.algo, p.next, p.rng, p.n, p.k, p.churn)
		p.next++
	}
	return p.drawn[r]
}

// Take returns round r's cohort and releases the planner's reference, so
// the round loop owns the slice (dropout marks slots in place, exactly
// as with inline selection). Rounds are taken in ascending order.
func (p *cohortPlanner) Take(r int) []int {
	ids := p.draw(r)
	delete(p.drawn, r)
	return ids
}

// Ahead returns round r's planned cohort without consuming it, or nil
// when the algorithm selects its own clients: a Selector consults
// algorithm state as of round r, which does not exist before round r−1
// completes, so planning ahead would change both the chosen cohort and
// the stream's draw count. Callers must copy-or-consume the ids before
// round r starts — Take(r) returns the same backing slice, which the
// round loop then mutates.
func (p *cohortPlanner) Ahead(r int) []int {
	if _, ok := p.algo.(Selector); ok {
		return nil
	}
	return p.draw(r)
}

// sourcePrefetcher resolves the environment's shard-warming seam: the
// federation's source when the run asked for lookahead (PrefetchRounds >
// 0) and the source supports it. Prefetch only warms the cache — it
// draws no RNG and flows through the same lease path as training — so a
// nil return (eager layout, unsupported source, prefetch disabled)
// changes wall-clock only, never results.
func sourcePrefetcher(env *Env, cfg Config) data.Prefetcher {
	if cfg.PrefetchRounds <= 0 || env.Fed.Source == nil {
		return nil
	}
	p, ok := env.Fed.Source.(data.Prefetcher)
	if !ok {
		return nil
	}
	return p
}

// restripeSource applies the CacheStripes knob to a source that supports
// geometry reconfiguration. Engines call it before the first lease (a
// warm shared cache keeps its geometry — see data.Lazy.Restripe);
// geometry affects lock placement only, never shard bytes, so the knob
// is wall-clock-only by construction.
func restripeSource(env *Env, cfg Config) {
	if cfg.CacheStripes <= 0 || env.Fed.Source == nil {
		return
	}
	if rs, ok := env.Fed.Source.(data.Restriper); ok {
		rs.Restripe(cfg.CacheStripes)
	}
}
