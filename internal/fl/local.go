package fl

import (
	"fmt"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// LocalSpec describes one client-side training job. The two optional
// fields are the hooks the baseline algorithms need: Prox/ProxRef realise
// FedProx's proximal term µ/2·‖w−w_g‖², and GradCorrection realises
// SCAFFOLD's per-step drift correction (c − c_i), added to every gradient.
type LocalSpec struct {
	// Init is the parameter vector to start from (copied, not mutated).
	Init nn.ParamVector
	// Epochs, BatchSize, LR, Momentum configure the local SGD loop.
	Epochs, BatchSize int
	LR, Momentum      float64
	// Prox is FedProx's µ; 0 disables the proximal term.
	Prox float64
	// ProxRef is the anchor for the proximal term (usually Init).
	ProxRef nn.ParamVector
	// GradCorrection, when non-nil, is added to the gradient at every
	// step (flat, aligned with the parameter vector).
	GradCorrection nn.ParamVector
	// Out, when non-nil, is the caller-owned destination for
	// LocalResult.Params (it must have exactly Init's length). Algorithms
	// that recycle upload buffers across rounds (FedCross) set it so the
	// steady-state round allocates no parameter-sized vectors; when nil,
	// TrainLocal allocates a fresh vector.
	Out nn.ParamVector
}

// LocalResult reports what a client training job produced.
type LocalResult struct {
	// Params is the trained parameter vector.
	Params nn.ParamVector
	// Steps is the number of SGD steps taken (SCAFFOLD's K).
	Steps int
	// MeanLoss is the average training loss over all steps.
	MeanLoss float64
	// Samples is the client's shard size (FedAvg weighting).
	Samples int
}

// TrainLocal runs one client's local training: it leases a long-lived
// replica of the architecture from the process-wide pool, loads spec.Init
// over its weights, and runs spec.Epochs epochs of mini-batch SGD on
// shard. It returns the trained parameters; spec.Init is never mutated.
//
// The replica lease is invisible to callers: weights and optimizer state
// are fully reset, the job RNG is consumed only by batch shuffling (never
// by construction), and the result is bit-identical whether the pool hit
// or missed.
func TrainLocal(factory models.Factory, shard *data.Dataset, spec LocalSpec, rng *tensor.RNG) (LocalResult, error) {
	switch {
	case shard.Len() == 0:
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: empty shard")
	case spec.LR <= 0:
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: learning rate %v must be positive", spec.LR)
	case spec.Prox > 0 && len(spec.ProxRef) != len(spec.Init):
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: prox ref length %d != init %d", len(spec.ProxRef), len(spec.Init))
	case spec.GradCorrection != nil && len(spec.GradCorrection) != len(spec.Init):
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: correction length %d != init %d", len(spec.GradCorrection), len(spec.Init))
	case spec.Out != nil && len(spec.Out) != len(spec.Init):
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: out length %d != init %d", len(spec.Out), len(spec.Init))
	}
	pool := models.Replicas(factory)
	rep := pool.Get()
	defer pool.Put(rep)
	net := rep.Net
	if err := nn.LoadParams(net.Params(), spec.Init); err != nil {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: %w", err)
	}
	rep.Reset(spec.LR, spec.Momentum)

	params := net.Params()
	grads := net.Grads()
	opt := rep.Opt
	steps := 0
	lossSum := 0.0

	// dlogits is the loss-gradient scratch, leased from the arena for the
	// whole call and resized per batch, so the steady-state SGD loop does
	// no allocation.
	var dlogits *tensor.Tensor
	defer func() { tensor.PutScratch(dlogits) }()

	for epoch := 0; epoch < spec.Epochs; epoch++ {
		shard.Batches(rng, spec.BatchSize, func(x *tensor.Tensor, y []int) {
			net.ZeroGrads()
			logits := net.Forward(x, true)
			if dlogits == nil {
				dlogits = tensor.GetScratch(logits.Shape...)
			}
			dlogits = tensor.Ensure(dlogits, logits.Shape...)
			loss := nn.SoftmaxCrossEntropyInto(dlogits, logits, y)
			net.Backward(dlogits)
			applyHooks(params, grads, spec)
			opt.Step(params, grads)
			steps++
			lossSum += loss
		})
	}

	out := spec.Out
	if out == nil {
		out = make(nn.ParamVector, len(spec.Init))
	}
	res := LocalResult{
		Params:  nn.FlattenParamsInto(out, params),
		Steps:   steps,
		Samples: shard.Len(),
	}
	if steps > 0 {
		res.MeanLoss = lossSum / float64(steps)
	}
	return res, nil
}

// applyHooks adds the proximal and correction terms to the gradient
// tensors, walking them with a running flat offset so the flat reference
// vectors stay aligned with the tensor layout.
func applyHooks(params, grads []*tensor.Tensor, spec LocalSpec) {
	if spec.Prox == 0 && spec.GradCorrection == nil {
		return
	}
	off := 0
	for i, p := range params {
		g := grads[i]
		n := p.Len()
		if spec.Prox > 0 {
			ref := spec.ProxRef[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += spec.Prox * (p.Data[j] - ref[j])
			}
		}
		if spec.GradCorrection != nil {
			corr := spec.GradCorrection[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += corr[j]
			}
		}
		off += n
	}
}

// Evaluate computes test accuracy and mean loss of the parameter vector on
// ds, batching for memory locality. Batches are evaluated across the
// allowance w (Workers{} means every core, unbudgeted — matching the old
// workers=0 convention; Limit(n) caps the fan-out; a Budget leases the
// fan-out from a shared pool); the per-batch partial sums are reduced in
// batch order, so the result is bit-identical at every worker count.
func Evaluate(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, batchSize int, w Workers) (acc, loss float64, err error) {
	return evaluate(factory, vec, ds, batchSize, w)
}

// evaluate is Evaluate's engine. Forward passes mutate layer activations,
// so each worker leases its own replica from the architecture pool,
// loaded with vec once and reused for every batch that worker claims. The
// replica count must match the dispatch fan-out exactly, so the worker
// allowance (including any budget lease) is resolved here, before the
// replicas are taken, and the dispatch below runs at that fixed count.
func evaluate(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, batchSize int, w Workers) (acc, loss float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, fmt.Errorf("fl: Evaluate: empty dataset")
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	n := ds.Len()
	feat := ds.Features()
	numBatches := (n + batchSize - 1) / batchSize
	workers, leased := w.lease(numBatches)
	defer w.Budget.ReleaseN(leased)

	pool := models.Replicas(factory)
	reps := make([]*models.Replica, workers)
	defer func() {
		for _, r := range reps {
			pool.Put(r) // Put tolerates the nils of an early return
		}
	}()
	for i := range reps {
		reps[i] = pool.Get()
		if err := nn.LoadParams(reps[i].Net.Params(), vec); err != nil {
			return 0, 0, fmt.Errorf("fl: Evaluate: %w", err)
		}
	}

	accW := make([]float64, numBatches)
	lossW := make([]float64, numBatches)
	idxBufs := make([][]int, workers)
	yBufs := make([][]int, workers)
	for i := range idxBufs {
		idxBufs[i] = make([]int, batchSize)
		yBufs[i] = make([]int, batchSize)
	}
	parallelForWorker(numBatches, Limit(workers), func(w, b int) {
		start := b * batchSize
		end := start + batchSize
		if end > n {
			end = n
		}
		idx := idxBufs[w][:end-start]
		for i := range idx {
			idx[i] = start + i
		}
		y := yBufs[w][:end-start]
		x := tensor.GetScratch(end-start, feat)
		defer tensor.PutScratch(x)
		ds.BatchInto(x, y, idx)
		logits := reps[w].Net.Forward(x, false)
		l := nn.SoftmaxCrossEntropyLoss(logits, y)
		a := nn.Accuracy(logits, y)
		weight := float64(len(y))
		accW[b] = a * weight
		lossW[b] = l * weight
	})
	correctWeighted := 0.0
	lossWeighted := 0.0
	for b := 0; b < numBatches; b++ {
		correctWeighted += accW[b]
		lossWeighted += lossW[b]
	}
	return correctWeighted / float64(n), lossWeighted / float64(n), nil
}
