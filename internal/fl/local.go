package fl

import (
	"fmt"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// LocalSpec describes one client-side training job. The two optional
// fields are the hooks the baseline algorithms need: Prox/ProxRef realise
// FedProx's proximal term µ/2·‖w−w_g‖², and GradCorrection realises
// SCAFFOLD's per-step drift correction (c − c_i), added to every gradient.
type LocalSpec struct {
	// Init is the parameter vector to start from (copied, not mutated).
	Init nn.ParamVector
	// Epochs, BatchSize, LR, Momentum configure the local SGD loop.
	Epochs, BatchSize int
	LR, Momentum      float64
	// Prox is FedProx's µ; 0 disables the proximal term.
	Prox float64
	// ProxRef is the anchor for the proximal term (usually Init).
	ProxRef nn.ParamVector
	// GradCorrection, when non-nil, is added to the gradient at every
	// step (flat, aligned with the parameter vector).
	GradCorrection nn.ParamVector
}

// LocalResult reports what a client training job produced.
type LocalResult struct {
	// Params is the trained parameter vector.
	Params nn.ParamVector
	// Steps is the number of SGD steps taken (SCAFFOLD's K).
	Steps int
	// MeanLoss is the average training loss over all steps.
	MeanLoss float64
	// Samples is the client's shard size (FedAvg weighting).
	Samples int
}

// TrainLocal runs one client's local training: it reconstructs the
// architecture, loads spec.Init, and runs spec.Epochs epochs of mini-batch
// SGD on shard. It returns the trained parameters; spec.Init is never
// mutated.
func TrainLocal(factory models.Factory, shard *data.Dataset, spec LocalSpec, rng *tensor.RNG) (LocalResult, error) {
	if shard.Len() == 0 {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: empty shard")
	}
	net := factory.New(rng)
	if err := nn.LoadParams(net.Params(), spec.Init); err != nil {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: %w", err)
	}
	if spec.Prox > 0 && len(spec.ProxRef) != len(spec.Init) {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: prox ref length %d != init %d", len(spec.ProxRef), len(spec.Init))
	}
	if spec.GradCorrection != nil && len(spec.GradCorrection) != len(spec.Init) {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: correction length %d != init %d", len(spec.GradCorrection), len(spec.Init))
	}

	params := net.Params()
	grads := net.Grads()
	opt := nn.NewSGD(spec.LR, spec.Momentum)
	steps := 0
	lossSum := 0.0

	for epoch := 0; epoch < spec.Epochs; epoch++ {
		shard.Batches(rng, spec.BatchSize, func(x *tensor.Tensor, y []int) {
			net.ZeroGrads()
			logits := net.Forward(x, true)
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, y)
			net.Backward(dlogits)
			applyHooks(params, grads, spec)
			opt.Step(params, grads)
			steps++
			lossSum += loss
		})
	}

	res := LocalResult{
		Params:  nn.FlattenParams(params),
		Steps:   steps,
		Samples: shard.Len(),
	}
	if steps > 0 {
		res.MeanLoss = lossSum / float64(steps)
	}
	return res, nil
}

// applyHooks adds the proximal and correction terms to the gradient
// tensors, walking them with a running flat offset so the flat reference
// vectors stay aligned with the tensor layout.
func applyHooks(params, grads []*tensor.Tensor, spec LocalSpec) {
	if spec.Prox == 0 && spec.GradCorrection == nil {
		return
	}
	off := 0
	for i, p := range params {
		g := grads[i]
		n := p.Len()
		if spec.Prox > 0 {
			ref := spec.ProxRef[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += spec.Prox * (p.Data[j] - ref[j])
			}
		}
		if spec.GradCorrection != nil {
			corr := spec.GradCorrection[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += corr[j]
			}
		}
		off += n
	}
}

// Evaluate computes test accuracy and mean loss of the parameter vector on
// ds, batching for memory locality.
func Evaluate(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, batchSize int) (acc, loss float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, fmt.Errorf("fl: Evaluate: empty dataset")
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	net := factory.New(tensor.NewRNG(0))
	if err := nn.LoadParams(net.Params(), vec); err != nil {
		return 0, 0, fmt.Errorf("fl: Evaluate: %w", err)
	}
	correctWeighted := 0.0
	lossWeighted := 0.0
	n := ds.Len()
	idx := make([]int, 0, batchSize)
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		idx = idx[:0]
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		x, y := ds.Batch(idx)
		logits := net.Forward(x, false)
		l, _ := nn.SoftmaxCrossEntropy(logits, y)
		a := nn.Accuracy(logits, y)
		w := float64(len(y))
		correctWeighted += a * w
		lossWeighted += l * w
	}
	return correctWeighted / float64(n), lossWeighted / float64(n), nil
}
