package fl

import (
	"fmt"
	"sync"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// LocalSpec describes one client-side training job. The two optional
// fields are the hooks the baseline algorithms need: Prox/ProxRef realise
// FedProx's proximal term µ/2·‖w−w_g‖², and GradCorrection realises
// SCAFFOLD's per-step drift correction (c − c_i), added to every gradient.
type LocalSpec struct {
	// Init is the parameter vector to start from (copied, not mutated).
	Init nn.ParamVector
	// Epochs, BatchSize, LR, Momentum configure the local SGD loop.
	Epochs, BatchSize int
	LR, Momentum      float64
	// Prox is FedProx's µ; 0 disables the proximal term.
	Prox float64
	// ProxRef is the anchor for the proximal term (usually Init).
	ProxRef nn.ParamVector
	// GradCorrection, when non-nil, is added to the gradient at every
	// step (flat, aligned with the parameter vector).
	GradCorrection nn.ParamVector
}

// LocalResult reports what a client training job produced.
type LocalResult struct {
	// Params is the trained parameter vector.
	Params nn.ParamVector
	// Steps is the number of SGD steps taken (SCAFFOLD's K).
	Steps int
	// MeanLoss is the average training loss over all steps.
	MeanLoss float64
	// Samples is the client's shard size (FedAvg weighting).
	Samples int
}

// TrainLocal runs one client's local training: it reconstructs the
// architecture, loads spec.Init, and runs spec.Epochs epochs of mini-batch
// SGD on shard. It returns the trained parameters; spec.Init is never
// mutated.
func TrainLocal(factory models.Factory, shard *data.Dataset, spec LocalSpec, rng *tensor.RNG) (LocalResult, error) {
	if shard.Len() == 0 {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: empty shard")
	}
	net := factory.New(rng)
	if err := nn.LoadParams(net.Params(), spec.Init); err != nil {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: %w", err)
	}
	if spec.Prox > 0 && len(spec.ProxRef) != len(spec.Init) {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: prox ref length %d != init %d", len(spec.ProxRef), len(spec.Init))
	}
	if spec.GradCorrection != nil && len(spec.GradCorrection) != len(spec.Init) {
		return LocalResult{}, fmt.Errorf("fl: TrainLocal: correction length %d != init %d", len(spec.GradCorrection), len(spec.Init))
	}

	params := net.Params()
	grads := net.Grads()
	opt := nn.NewSGD(spec.LR, spec.Momentum)
	steps := 0
	lossSum := 0.0

	// dlogits is the loss-gradient scratch, leased from the arena for the
	// whole call and resized per batch, so the steady-state SGD loop does
	// no allocation.
	var dlogits *tensor.Tensor
	defer func() { tensor.PutScratch(dlogits) }()

	for epoch := 0; epoch < spec.Epochs; epoch++ {
		shard.Batches(rng, spec.BatchSize, func(x *tensor.Tensor, y []int) {
			net.ZeroGrads()
			logits := net.Forward(x, true)
			if dlogits == nil {
				dlogits = tensor.GetScratch(logits.Shape...)
			}
			dlogits = tensor.Ensure(dlogits, logits.Shape...)
			loss := nn.SoftmaxCrossEntropyInto(dlogits, logits, y)
			net.Backward(dlogits)
			applyHooks(params, grads, spec)
			opt.Step(params, grads)
			steps++
			lossSum += loss
		})
	}

	res := LocalResult{
		Params:  nn.FlattenParams(params),
		Steps:   steps,
		Samples: shard.Len(),
	}
	if steps > 0 {
		res.MeanLoss = lossSum / float64(steps)
	}
	return res, nil
}

// applyHooks adds the proximal and correction terms to the gradient
// tensors, walking them with a running flat offset so the flat reference
// vectors stay aligned with the tensor layout.
func applyHooks(params, grads []*tensor.Tensor, spec LocalSpec) {
	if spec.Prox == 0 && spec.GradCorrection == nil {
		return
	}
	off := 0
	for i, p := range params {
		g := grads[i]
		n := p.Len()
		if spec.Prox > 0 {
			ref := spec.ProxRef[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += spec.Prox * (p.Data[j] - ref[j])
			}
		}
		if spec.GradCorrection != nil {
			corr := spec.GradCorrection[off : off+n]
			for j := 0; j < n; j++ {
				g.Data[j] += corr[j]
			}
		}
		off += n
	}
}

// Evaluate computes test accuracy and mean loss of the parameter vector on
// ds, batching for memory locality. Batches are evaluated across all CPU
// cores; the per-batch partial sums are reduced in batch order, so the
// result is bit-identical to a serial pass.
func Evaluate(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, batchSize int) (acc, loss float64, err error) {
	return evaluate(factory, vec, ds, batchSize, 0)
}

// evaluate is Evaluate with an explicit worker budget (0 means all cores,
// 1 means serial — used by EvaluatePerClient, which parallelises one
// level up, over clients).
func evaluate(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, batchSize, workers int) (acc, loss float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, fmt.Errorf("fl: Evaluate: empty dataset")
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	// Build one net eagerly to surface shape mismatches, then share it
	// through a pool: forward passes mutate layer activations, so each
	// in-flight batch needs its own instance, but idle instances can be
	// reused across batches exactly as the serial loop reused its one net.
	first := factory.New(tensor.NewRNG(0))
	if err := nn.LoadParams(first.Params(), vec); err != nil {
		return 0, 0, fmt.Errorf("fl: Evaluate: %w", err)
	}
	netPool := sync.Pool{New: func() any {
		net := factory.New(tensor.NewRNG(0))
		_ = nn.LoadParams(net.Params(), vec) // length verified above
		return net
	}}
	netPool.Put(first)

	n := ds.Len()
	numBatches := (n + batchSize - 1) / batchSize
	accW := make([]float64, numBatches)
	lossW := make([]float64, numBatches)
	parallelFor(numBatches, workers, func(b int) {
		net := netPool.Get().(*nn.Sequential)
		defer netPool.Put(net)
		start := b * batchSize
		end := start + batchSize
		if end > n {
			end = n
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		x, y := ds.Batch(idx)
		logits := net.Forward(x, false)
		l, _ := nn.SoftmaxCrossEntropy(logits, y)
		a := nn.Accuracy(logits, y)
		w := float64(len(y))
		accW[b] = a * w
		lossW[b] = l * w
	})
	correctWeighted := 0.0
	lossWeighted := 0.0
	for b := 0; b < numBatches; b++ {
		correctWeighted += accW[b]
		lossWeighted += lossW[b]
	}
	return correctWeighted / float64(n), lossWeighted / float64(n), nil
}
