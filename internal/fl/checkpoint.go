package fl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// CheckpointOptions configures round-granular crash recovery: after a
// round completes, the engine can snapshot everything the run's future
// depends on — model and per-algorithm state, the exact positions of
// every RNG stream, the metric history, cumulative wire telemetry — so a
// killed process resumes at the next round boundary and finishes with a
// final history byte-identical to the uninterrupted run. Snapshots are
// write-ahead: serialized to a temp file and renamed into place, so a
// crash mid-write leaves the previous snapshot intact. The shard cache is
// deliberately absent from the format — shards are pure functions of
// (seed, id), so a resumed run re-synthesizes what it needs.
type CheckpointOptions struct {
	// Path is the snapshot file. Required when any other field is set.
	Path string
	// Every writes a snapshot after every n completed rounds; 0 writes
	// none on a schedule (StopAfterRound may still write one).
	Every int
	// Resume loads Path before the first round and continues from the
	// recorded round instead of round 0. The file must exist and match
	// the run's seed, algorithm, and shape.
	Resume bool
	// StopAfterRound, when positive, halts the run after that (1-based)
	// round completes, writing a snapshot regardless of Every and
	// returning the partial history alongside ErrStopped — the
	// kill-at-a-round-boundary simulation used by the resume tests.
	StopAfterRound int
}

// Active reports whether the run touches a checkpoint file at all.
func (o CheckpointOptions) Active() bool { return o.Path != "" }

// Validate reports the first problem with the options.
func (o CheckpointOptions) Validate() error {
	switch {
	case o.Every < 0:
		return fmt.Errorf("fl: Checkpoint.Every = %d, must be non-negative", o.Every)
	case o.StopAfterRound < 0:
		return fmt.Errorf("fl: Checkpoint.StopAfterRound = %d, must be non-negative", o.StopAfterRound)
	case o.Path == "" && (o.Every > 0 || o.Resume || o.StopAfterRound > 0):
		return fmt.Errorf("fl: Checkpoint.Path required when checkpointing is enabled")
	}
	return nil
}

// ErrStopped is returned (with the partial history) when a run halts at
// CheckpointOptions.StopAfterRound. It is a clean stop, not a failure.
var ErrStopped = errors.New("fl: run stopped at requested checkpoint round")

// RoundCheckpointer is implemented by algorithms that can snapshot and
// restore their full round-to-round state — models, control variates,
// optimizer buffers, and the position of the RNG stream Init handed them.
// All six built-in algorithms implement it; Run returns a clear error if
// checkpointing is requested for an algorithm that does not.
type RoundCheckpointer interface {
	// SaveState writes the algorithm's complete inter-round state.
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState, overwriting
	// whatever Init produced.
	LoadState(r io.Reader) error
}

const (
	runCkptMagic   = 0x4352_4C46 // "FLRC" little-endian
	asyncCkptMagic = 0x4341_4C46 // "FLAC" little-endian
	ckptVersion    = 1
	maxCkptBlob    = 1 << 31
	maxCkptMetrics = 1 << 22
)

// runSnapshot is everything fl.Run needs to reconstruct the exact state
// at a round boundary. Fault, churn, and adversary schedules are absent
// by design: they are pure functions of the seed, recomputed on resume.
type runSnapshot struct {
	nextRound int

	selState    tensor.RNGState
	plannerNext int
	drawn       map[int][]int
	dropState   tensor.RNGState
	netState    tensor.RNGState

	crashes     int
	unavailable int
	degraded    int

	trCum struct {
		down, up                                       int64
		stragglers, retries, faultDrops, dups, stalls  int
	}

	acctRounds int
	acctTotal  CommProfile

	metrics []RoundMetric

	algoBlob []byte
}

// writeRNGState / readRNGState serialize a stream position.
func writeRNGState(w io.Writer, st tensor.RNGState) error {
	if err := nn.WriteI64(w, st.Seed); err != nil {
		return err
	}
	return nn.WriteU64(w, st.Pos)
}

func readRNGState(r io.Reader) (tensor.RNGState, error) {
	seed, err := nn.ReadI64(r)
	if err != nil {
		return tensor.RNGState{}, err
	}
	pos, err := nn.ReadU64(r)
	if err != nil {
		return tensor.RNGState{}, err
	}
	return tensor.RNGState{Seed: seed, Pos: pos}, nil
}

func writeMetric(w io.Writer, m RoundMetric) error {
	ints := []int64{
		int64(m.Round), int64(m.CumBytesDown), int64(m.CumBytesUp),
		int64(m.CumStragglers), int64(m.CumRetries), int64(m.CumFaultDrops),
		int64(m.CumDuplicates), int64(m.CumStalls), int64(m.CumCrashes),
		int64(m.CumUnavailable), int64(m.CumDegraded),
	}
	for _, v := range ints {
		if err := nn.WriteI64(w, v); err != nil {
			return err
		}
	}
	for _, f := range []float64{m.TestAcc, m.TestLoss, m.CumModelEquivalents} {
		if err := nn.WriteF64(w, f); err != nil {
			return err
		}
	}
	return nil
}

func readMetric(r io.Reader) (RoundMetric, error) {
	var ints [11]int64
	for i := range ints {
		v, err := nn.ReadI64(r)
		if err != nil {
			return RoundMetric{}, err
		}
		ints[i] = v
	}
	var floats [3]float64
	for i := range floats {
		v, err := nn.ReadF64(r)
		if err != nil {
			return RoundMetric{}, err
		}
		floats[i] = v
	}
	return RoundMetric{
		Round: int(ints[0]), CumBytesDown: ints[1], CumBytesUp: ints[2],
		CumStragglers: int(ints[3]), CumRetries: int(ints[4]),
		CumFaultDrops: int(ints[5]), CumDuplicates: int(ints[6]),
		CumStalls: int(ints[7]), CumCrashes: int(ints[8]),
		CumUnavailable: int(ints[9]), CumDegraded: int(ints[10]),
		TestAcc: floats[0], TestLoss: floats[1], CumModelEquivalents: floats[2],
	}, nil
}

func writeComm(w io.Writer, p CommProfile) error {
	for _, v := range []int{p.ModelsDown, p.ModelsUp, p.VarsDown, p.VarsUp, p.GeneratorsDown} {
		if err := nn.WriteI64(w, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

func readComm(r io.Reader) (CommProfile, error) {
	var vs [5]int64
	for i := range vs {
		v, err := nn.ReadI64(r)
		if err != nil {
			return CommProfile{}, err
		}
		vs[i] = v
	}
	return CommProfile{ModelsDown: int(vs[0]), ModelsUp: int(vs[1]), VarsDown: int(vs[2]), VarsUp: int(vs[3]), GeneratorsDown: int(vs[4])}, nil
}

// atomicWriteFile serializes the snapshot write-ahead: the bytes land in
// a temp file in the destination directory, then rename into place, so a
// crash at any instant leaves either the old snapshot or the new one —
// never a torn file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// saveRunCheckpoint serializes a round-boundary snapshot for fl.Run.
func saveRunCheckpoint(path string, cfg Config, algo Algorithm, n int, snap *runSnapshot) error {
	rc, ok := algo.(RoundCheckpointer)
	if !ok {
		return fmt.Errorf("fl: algorithm %s does not support round checkpoints", algo.Name())
	}
	var buf bytes.Buffer
	w := &buf
	for _, v := range []uint64{runCkptMagic, ckptVersion} {
		if err := nn.WriteU64(w, v); err != nil {
			return err
		}
	}
	if err := nn.WriteI64(w, cfg.Seed); err != nil {
		return err
	}
	if err := nn.WriteString(w, algo.Name()); err != nil {
		return err
	}
	for _, v := range []int64{
		int64(cfg.Rounds), int64(cfg.ClientsPerRound), int64(n), int64(snap.nextRound),
		int64(snap.plannerNext),
		int64(snap.crashes), int64(snap.unavailable), int64(snap.degraded),
		snap.trCum.down, snap.trCum.up,
		int64(snap.trCum.stragglers), int64(snap.trCum.retries),
		int64(snap.trCum.faultDrops), int64(snap.trCum.dups), int64(snap.trCum.stalls),
		int64(snap.acctRounds),
	} {
		if err := nn.WriteI64(w, v); err != nil {
			return err
		}
	}
	for _, st := range []tensor.RNGState{snap.selState, snap.dropState, snap.netState} {
		if err := writeRNGState(w, st); err != nil {
			return err
		}
	}
	// Planner lookahead cohorts drawn past the boundary: these left the
	// selection stream before the snapshot position, so they must travel
	// with it.
	keys := make([]int, 0, len(snap.drawn))
	for k := range snap.drawn {
		keys = append(keys, k)
	}
	sortInts(keys)
	if err := nn.WriteU64(w, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := nn.WriteI64(w, int64(k)); err != nil {
			return err
		}
		if err := nn.WriteIntSlice(w, snap.drawn[k]); err != nil {
			return err
		}
	}
	if err := writeComm(w, snap.acctTotal); err != nil {
		return err
	}
	if err := nn.WriteU64(w, uint64(len(snap.metrics))); err != nil {
		return err
	}
	for _, m := range snap.metrics {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	var algoBuf bytes.Buffer
	if err := rc.SaveState(&algoBuf); err != nil {
		return fmt.Errorf("fl: checkpoint %s state: %w", algo.Name(), err)
	}
	if algoBuf.Len() > maxCkptBlob {
		return fmt.Errorf("fl: checkpoint %s state %d bytes exceeds cap", algo.Name(), algoBuf.Len())
	}
	if err := nn.WriteU64(w, uint64(algoBuf.Len())); err != nil {
		return err
	}
	if _, err := w.Write(algoBuf.Bytes()); err != nil {
		return err
	}
	return atomicWriteFile(path, buf.Bytes())
}

// loadRunCheckpoint reads and validates a snapshot against the resuming
// run's configuration, restores the algorithm's state, and returns the
// engine-side snapshot. Every length is capped and every header field
// cross-checked, so a hostile or stale file fails with a clear error.
func loadRunCheckpoint(path string, cfg Config, algo Algorithm, n int) (*runSnapshot, error) {
	rc, ok := algo.(RoundCheckpointer)
	if !ok {
		return nil, fmt.Errorf("fl: algorithm %s does not support round checkpoints", algo.Name())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fl: resume: %w", err)
	}
	r := bytes.NewReader(data)
	for i, want := range []uint64{runCkptMagic, ckptVersion} {
		got, err := nn.ReadU64(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated header", path)
		}
		if got != want {
			what := "magic"
			if i == 1 {
				what = "version"
			}
			return nil, fmt.Errorf("fl: resume %s: bad %s %#x (want %#x)", path, what, got, want)
		}
	}
	seed, err := nn.ReadI64(r)
	if err != nil {
		return nil, err
	}
	if seed != cfg.Seed {
		return nil, fmt.Errorf("fl: resume %s: checkpoint seed %d != run seed %d", path, seed, cfg.Seed)
	}
	name, err := nn.ReadString(r)
	if err != nil {
		return nil, err
	}
	if name != algo.Name() {
		return nil, fmt.Errorf("fl: resume %s: checkpoint algorithm %q != run algorithm %q", path, name, algo.Name())
	}
	var ints [16]int64
	for i := range ints {
		v, err := nn.ReadI64(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated body", path)
		}
		ints[i] = v
	}
	if int(ints[0]) != cfg.Rounds || int(ints[1]) != cfg.ClientsPerRound || int(ints[2]) != n {
		return nil, fmt.Errorf("fl: resume %s: checkpoint shape (rounds %d, k %d, n %d) != run (%d, %d, %d)",
			path, ints[0], ints[1], ints[2], cfg.Rounds, cfg.ClientsPerRound, n)
	}
	snap := &runSnapshot{
		nextRound:   int(ints[3]),
		plannerNext: int(ints[4]),
		crashes:     int(ints[5]),
		unavailable: int(ints[6]),
		degraded:    int(ints[7]),
		acctRounds:  int(ints[15]),
		drawn:       map[int][]int{},
	}
	snap.trCum.down, snap.trCum.up = ints[8], ints[9]
	snap.trCum.stragglers, snap.trCum.retries = int(ints[10]), int(ints[11])
	snap.trCum.faultDrops, snap.trCum.dups, snap.trCum.stalls = int(ints[12]), int(ints[13]), int(ints[14])
	if snap.nextRound < 0 || snap.nextRound > cfg.Rounds {
		return nil, fmt.Errorf("fl: resume %s: next round %d outside [0,%d]", path, snap.nextRound, cfg.Rounds)
	}
	for _, dst := range []*tensor.RNGState{&snap.selState, &snap.dropState, &snap.netState} {
		st, err := readRNGState(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated RNG state", path)
		}
		*dst = st
	}
	nDrawn, err := nn.ReadU64(r)
	if err != nil {
		return nil, err
	}
	if nDrawn > maxCkptMetrics {
		return nil, fmt.Errorf("fl: resume %s: %d planned cohorts exceeds cap", path, nDrawn)
	}
	for i := uint64(0); i < nDrawn; i++ {
		k, err := nn.ReadI64(r)
		if err != nil {
			return nil, err
		}
		ids, err := nn.ReadIntSlice(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: planned cohort: %w", path, err)
		}
		snap.drawn[int(k)] = ids
	}
	if snap.acctTotal, err = readComm(r); err != nil {
		return nil, err
	}
	nMetrics, err := nn.ReadU64(r)
	if err != nil {
		return nil, err
	}
	if nMetrics > maxCkptMetrics {
		return nil, fmt.Errorf("fl: resume %s: %d metrics exceeds cap", path, nMetrics)
	}
	snap.metrics = make([]RoundMetric, nMetrics)
	for i := range snap.metrics {
		if snap.metrics[i], err = readMetric(r); err != nil {
			return nil, fmt.Errorf("fl: resume %s: metric %d: %w", path, i, err)
		}
	}
	blobLen, err := nn.ReadU64(r)
	if err != nil {
		return nil, err
	}
	if blobLen > maxCkptBlob {
		return nil, fmt.Errorf("fl: resume %s: algorithm state %d bytes exceeds cap", path, blobLen)
	}
	if uint64(r.Len()) < blobLen {
		return nil, fmt.Errorf("fl: resume %s: algorithm state truncated (%d of %d bytes)", path, r.Len(), blobLen)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, err
	}
	if err := rc.LoadState(bytes.NewReader(blob)); err != nil {
		return nil, fmt.Errorf("fl: resume %s: %s state: %w", path, algo.Name(), err)
	}
	return snap, nil
}

// asyncJobSnap is one in-flight activation as persisted at a commit
// boundary: trained is nil for jobs still awaiting the batched training
// pass and for fault-crashed clients (whose fold is skipped on arrival).
type asyncJobSnap struct {
	seq, client, version int
	arrival              float64
	done                 bool
	fetch, trained       nn.ParamVector
	rng                  tensor.RNGState
}

// asyncSnapshot is everything RunAsync needs to reconstruct its state at
// a commit boundary. The staleness accumulator is deliberately absent:
// commits fire exactly when it is zeroed, so every snapshot point has an
// empty window by construction.
type asyncSnapshot struct {
	nextCommit int
	now        float64
	seq        int
	version    int
	arrivals   int
	dispatches int

	crashes, faultDrops, dups, stalls, degraded int
	bytesDown, bytesUp                          int64

	selState, timeState, jobState tensor.RNGState

	available []int
	global    nn.ParamVector
	metrics   []RoundMetric
	jobs      []asyncJobSnap
}

// maxCkptJobs caps the persisted in-flight set (InFlight is user-bounded
// well below this; the cap is load hardening).
const maxCkptJobs = 1 << 20

// saveAsyncCheckpoint serializes a commit-boundary snapshot for RunAsync.
func saveAsyncCheckpoint(path string, cfg Config, opts AsyncOptions, n, dim int, snap *asyncSnapshot) error {
	var buf bytes.Buffer
	w := &buf
	for _, v := range []uint64{asyncCkptMagic, ckptVersion} {
		if err := nn.WriteU64(w, v); err != nil {
			return err
		}
	}
	if err := nn.WriteI64(w, cfg.Seed); err != nil {
		return err
	}
	for _, v := range []int64{
		int64(opts.Commits), int64(opts.Buffer), int64(opts.InFlight), int64(n), int64(dim),
		int64(snap.nextCommit), int64(snap.seq), int64(snap.version),
		int64(snap.arrivals), int64(snap.dispatches),
		int64(snap.crashes), int64(snap.faultDrops), int64(snap.dups),
		int64(snap.stalls), int64(snap.degraded),
		snap.bytesDown, snap.bytesUp,
	} {
		if err := nn.WriteI64(w, v); err != nil {
			return err
		}
	}
	if err := nn.WriteF64(w, snap.now); err != nil {
		return err
	}
	for _, st := range []tensor.RNGState{snap.selState, snap.timeState, snap.jobState} {
		if err := writeRNGState(w, st); err != nil {
			return err
		}
	}
	if err := nn.WriteIntSlice(w, snap.available); err != nil {
		return err
	}
	if err := nn.WriteVector(w, snap.global); err != nil {
		return err
	}
	if err := nn.WriteU64(w, uint64(len(snap.metrics))); err != nil {
		return err
	}
	for _, m := range snap.metrics {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	if len(snap.jobs) > maxCkptJobs {
		return fmt.Errorf("fl: checkpoint: %d in-flight jobs exceeds cap", len(snap.jobs))
	}
	if err := nn.WriteU64(w, uint64(len(snap.jobs))); err != nil {
		return err
	}
	for _, j := range snap.jobs {
		for _, v := range []int64{int64(j.seq), int64(j.client), int64(j.version)} {
			if err := nn.WriteI64(w, v); err != nil {
				return err
			}
		}
		if err := nn.WriteF64(w, j.arrival); err != nil {
			return err
		}
		done := int64(0)
		if j.done {
			done = 1
		}
		if err := nn.WriteI64(w, done); err != nil {
			return err
		}
		if err := nn.WriteVector(w, j.fetch); err != nil {
			return err
		}
		if err := nn.WriteVector(w, j.trained); err != nil {
			return err
		}
		if err := writeRNGState(w, j.rng); err != nil {
			return err
		}
	}
	return atomicWriteFile(path, buf.Bytes())
}

// loadAsyncCheckpoint reads and validates a snapshot written by
// saveAsyncCheckpoint against the resuming run's configuration.
func loadAsyncCheckpoint(path string, cfg Config, opts AsyncOptions, n, dim int) (*asyncSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fl: resume: %w", err)
	}
	r := bytes.NewReader(data)
	for i, want := range []uint64{asyncCkptMagic, ckptVersion} {
		got, err := nn.ReadU64(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated header", path)
		}
		if got != want {
			what := "magic"
			if i == 1 {
				what = "version"
			}
			return nil, fmt.Errorf("fl: resume %s: bad %s %#x (want %#x)", path, what, got, want)
		}
	}
	seed, err := nn.ReadI64(r)
	if err != nil {
		return nil, err
	}
	if seed != cfg.Seed {
		return nil, fmt.Errorf("fl: resume %s: checkpoint seed %d != run seed %d", path, seed, cfg.Seed)
	}
	var ints [17]int64
	for i := range ints {
		v, err := nn.ReadI64(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated body", path)
		}
		ints[i] = v
	}
	if int(ints[0]) != opts.Commits || int(ints[1]) != opts.Buffer || int(ints[2]) != opts.InFlight ||
		int(ints[3]) != n || int(ints[4]) != dim {
		return nil, fmt.Errorf("fl: resume %s: checkpoint shape (commits %d, B %d, M %d, n %d, dim %d) != run (%d, %d, %d, %d, %d)",
			path, ints[0], ints[1], ints[2], ints[3], ints[4],
			opts.Commits, opts.Buffer, opts.InFlight, n, dim)
	}
	snap := &asyncSnapshot{
		nextCommit: int(ints[5]), seq: int(ints[6]), version: int(ints[7]),
		arrivals: int(ints[8]), dispatches: int(ints[9]),
		crashes: int(ints[10]), faultDrops: int(ints[11]), dups: int(ints[12]),
		stalls: int(ints[13]), degraded: int(ints[14]),
		bytesDown: ints[15], bytesUp: ints[16],
	}
	if snap.nextCommit < 0 || snap.nextCommit > opts.Commits {
		return nil, fmt.Errorf("fl: resume %s: next commit %d outside [0,%d]", path, snap.nextCommit, opts.Commits)
	}
	if snap.now, err = nn.ReadF64(r); err != nil {
		return nil, err
	}
	for _, dst := range []*tensor.RNGState{&snap.selState, &snap.timeState, &snap.jobState} {
		st, err := readRNGState(r)
		if err != nil {
			return nil, fmt.Errorf("fl: resume %s: truncated RNG state", path)
		}
		*dst = st
	}
	if snap.available, err = nn.ReadIntSlice(r); err != nil {
		return nil, fmt.Errorf("fl: resume %s: available pool: %w", path, err)
	}
	for _, id := range snap.available {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("fl: resume %s: available client %d outside [0,%d)", path, id, n)
		}
	}
	if snap.global, err = nn.ReadVector(r); err != nil {
		return nil, fmt.Errorf("fl: resume %s: global: %w", path, err)
	}
	if len(snap.global) != dim {
		return nil, fmt.Errorf("fl: resume %s: global has %d params, want %d", path, len(snap.global), dim)
	}
	nMetrics, err := nn.ReadU64(r)
	if err != nil {
		return nil, err
	}
	if nMetrics > maxCkptMetrics {
		return nil, fmt.Errorf("fl: resume %s: %d metrics exceeds cap", path, nMetrics)
	}
	snap.metrics = make([]RoundMetric, nMetrics)
	for i := range snap.metrics {
		if snap.metrics[i], err = readMetric(r); err != nil {
			return nil, fmt.Errorf("fl: resume %s: metric %d: %w", path, i, err)
		}
	}
	nJobs, err := nn.ReadU64(r)
	if err != nil {
		return nil, err
	}
	if nJobs > maxCkptJobs {
		return nil, fmt.Errorf("fl: resume %s: %d in-flight jobs exceeds cap", path, nJobs)
	}
	snap.jobs = make([]asyncJobSnap, nJobs)
	for i := range snap.jobs {
		j := &snap.jobs[i]
		var jv [3]int64
		for k := range jv {
			if jv[k], err = nn.ReadI64(r); err != nil {
				return nil, fmt.Errorf("fl: resume %s: job %d: %w", path, i, err)
			}
		}
		j.seq, j.client, j.version = int(jv[0]), int(jv[1]), int(jv[2])
		if j.client < 0 || j.client >= n {
			return nil, fmt.Errorf("fl: resume %s: job %d client %d outside [0,%d)", path, i, j.client, n)
		}
		if j.arrival, err = nn.ReadF64(r); err != nil {
			return nil, err
		}
		done, err := nn.ReadI64(r)
		if err != nil {
			return nil, err
		}
		j.done = done != 0
		if j.fetch, err = nn.ReadVector(r); err != nil {
			return nil, fmt.Errorf("fl: resume %s: job %d fetch: %w", path, i, err)
		}
		if len(j.fetch) != dim {
			return nil, fmt.Errorf("fl: resume %s: job %d fetch has %d params, want %d", path, i, len(j.fetch), dim)
		}
		if j.trained, err = nn.ReadVector(r); err != nil {
			return nil, fmt.Errorf("fl: resume %s: job %d trained: %w", path, i, err)
		}
		if j.trained != nil && len(j.trained) != dim {
			return nil, fmt.Errorf("fl: resume %s: job %d trained has %d params, want %d", path, i, len(j.trained), dim)
		}
		if j.rng, err = readRNGState(r); err != nil {
			return nil, fmt.Errorf("fl: resume %s: job %d rng: %w", path, i, err)
		}
	}
	return snap, nil
}

// sortInts is a tiny insertion sort for the handful of lookahead keys a
// snapshot carries, avoiding a sort import for this one site.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// captureCum snapshots the transport's cumulative counters.
func (t *Transport) captureCum(snap *runSnapshot) {
	if t == nil {
		return
	}
	snap.trCum.down, snap.trCum.up = t.cumDown, t.cumUp
	snap.trCum.stragglers, snap.trCum.retries = t.cumStragglers, t.cumRetries
	snap.trCum.faultDrops, snap.trCum.dups, snap.trCum.stalls = t.cumFaultDrops, t.cumDuplicates, t.cumStalls
}

// restoreCum overwrites the transport's cumulative counters from a
// snapshot.
func (t *Transport) restoreCum(snap *runSnapshot) {
	if t == nil {
		return
	}
	t.cumDown, t.cumUp = snap.trCum.down, snap.trCum.up
	t.cumStragglers, t.cumRetries = snap.trCum.stragglers, snap.trCum.retries
	t.cumFaultDrops, t.cumDuplicates, t.cumStalls = snap.trCum.faultDrops, snap.trCum.dups, snap.trCum.stalls
}
