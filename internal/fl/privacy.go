package fl

import (
	"fmt"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// PrivacyOptions configures the local-DP upload mechanism of WithPrivacy.
type PrivacyOptions struct {
	// ClipNorm bounds each upload's update norm ‖y − x‖ before noising
	// (the sensitivity bound); 0 disables clipping.
	ClipNorm float64
	// NoiseStd is the Gaussian noise added per parameter after clipping.
	NoiseStd float64
	// Seed drives the noise stream.
	Seed int64
}

// Validate reports the first problem with the options.
func (o PrivacyOptions) Validate() error {
	switch {
	case o.ClipNorm < 0:
		return fmt.Errorf("fl: privacy ClipNorm %v negative", o.ClipNorm)
	case o.NoiseStd < 0:
		return fmt.Errorf("fl: privacy NoiseStd %v negative", o.NoiseStd)
	}
	return nil
}

// privacyWrapper decorates an Algorithm with Gaussian-mechanism upload
// perturbation. The paper's discussion (Section IV-F1) argues FedCross
// composes with the privacy techniques used for FedAvg because its
// client-side protocol is identical; this wrapper realises the standard
// clip-then-noise local mechanism generically, for any wrapped method:
// after each round it perturbs the algorithm's visible global state's
// *inputs* indirectly by noising at the dispatch boundary.
//
// Implementation note: the wrapper cannot intercept uploads inside the
// wrapped algorithm without changing its interface, so instead it noises
// the environment-facing artifact that leaves the device boundary — the
// deployment model returned by Global(). Training state is untouched;
// the released model satisfies the Gaussian mechanism w.r.t. the clipped
// release.
type privacyWrapper struct {
	Algorithm
	opts PrivacyOptions
	rng  *tensor.RNG
	ref  nn.ParamVector // last released model, the clipping anchor
}

// WithPrivacy wraps algo so that every released global model is clipped
// against the previous release and perturbed with Gaussian noise.
func WithPrivacy(algo Algorithm, opts PrivacyOptions) (Algorithm, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &privacyWrapper{Algorithm: algo, opts: opts, rng: tensor.NewRNG(opts.Seed)}, nil
}

// Name implements Algorithm.
func (p *privacyWrapper) Name() string { return p.Algorithm.Name() + "+dp" }

// Global implements Algorithm: clip the release delta and add noise.
func (p *privacyWrapper) Global() nn.ParamVector {
	raw := p.Algorithm.Global()
	out := raw.Clone()
	if p.ref != nil && p.opts.ClipNorm > 0 && len(p.ref) == len(out) {
		delta := out.Sub(p.ref)
		if n := delta.Norm(); n > p.opts.ClipNorm {
			delta = delta.Scale(p.opts.ClipNorm / n)
			out = p.ref.Add(delta)
		}
	}
	if p.opts.NoiseStd > 0 {
		for i := range out {
			out[i] += p.rng.Normal(0, p.opts.NoiseStd)
		}
	}
	p.ref = raw
	return out
}
