package fl

import (
	"fmt"
	"log"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// PrivacyOptions configures the local-DP upload mechanism of WithPrivacy.
type PrivacyOptions struct {
	// ClipNorm bounds each upload's update norm ‖y − x‖ before noising
	// (the sensitivity bound); 0 disables clipping.
	ClipNorm float64
	// NoiseStd is the Gaussian noise added per parameter after clipping.
	NoiseStd float64
	// Seed drives the noise stream.
	Seed int64
}

// Validate reports the first problem with the options.
func (o PrivacyOptions) Validate() error {
	switch {
	case o.ClipNorm < 0:
		return fmt.Errorf("fl: privacy ClipNorm %v negative", o.ClipNorm)
	case o.NoiseStd < 0:
		return fmt.Errorf("fl: privacy NoiseStd %v negative", o.NoiseStd)
	}
	return nil
}

// privacyWrapper decorates an Algorithm with Gaussian-mechanism upload
// perturbation. The paper's discussion (Section IV-F1) argues FedCross
// composes with the privacy techniques used for FedAvg because its
// client-side protocol is identical; this wrapper realises the standard
// clip-then-noise local mechanism generically, for any wrapped method:
// after each round it perturbs the algorithm's visible global state's
// *inputs* indirectly by noising at the dispatch boundary.
//
// Implementation note: the wrapper cannot intercept uploads inside the
// wrapped algorithm without changing its interface, so instead it noises
// the environment-facing artifact that leaves the device boundary — the
// deployment model returned by Global(). Training state is untouched;
// the released model satisfies the Gaussian mechanism w.r.t. the clipped
// release.
type privacyWrapper struct {
	Algorithm
	opts PrivacyOptions
	rng  *tensor.RNG
	ref  nn.ParamVector // raw model at the last release, the clipping anchor

	// released memoizes the round's release: the Gaussian mechanism's
	// output is a function of the round's training state, so within one
	// round every Global() call must return the SAME released model.
	// Drawing fresh noise per call would publish several distinct noisy
	// views of one model — silently double-spending the privacy budget
	// whenever a round both evaluates and deploys. Round() invalidates it.
	released nn.ParamVector
}

// WithPrivacy wraps algo so that every released global model is clipped
// against the previous release and perturbed with Gaussian noise.
func WithPrivacy(algo Algorithm, opts PrivacyOptions) (Algorithm, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &privacyWrapper{Algorithm: algo, opts: opts, rng: tensor.NewRNG(opts.Seed)}, nil
}

// Name implements Algorithm.
func (p *privacyWrapper) Name() string { return p.Algorithm.Name() + "+dp" }

// SetTransport implements TransportUser by forwarding the runner's wire
// to the wrapped algorithm (interface embedding would otherwise hide the
// inner method from the runner's type assertion).
func (p *privacyWrapper) SetTransport(t *Transport) {
	if tu, ok := p.Algorithm.(TransportUser); ok {
		tu.SetTransport(t)
	}
}

// Init implements Algorithm: besides initialising the wrapped method, it
// discards the previous run's memoized release and clipping anchor —
// stale state from an earlier experiment must not leak into (or clip) the
// new run's first release.
func (p *privacyWrapper) Init(env *Env, cfg Config, rng *tensor.RNG) error {
	p.released = nil
	p.ref = nil
	return p.Algorithm.Init(env, cfg, rng)
}

// Round implements Algorithm: it forwards to the wrapped method and
// invalidates the memoized release, because the round changed the state
// the next release is computed from.
func (p *privacyWrapper) Round(r int, selected []int) error {
	p.released = nil
	return p.Algorithm.Round(r, selected)
}

// Global implements Algorithm: clip the release delta against the previous
// round's release anchor and add Gaussian noise. The release is memoized
// per training round — repeated calls (evaluate, then deploy) return
// copies of the same perturbed model, and the clipping anchor advances
// exactly once per round.
func (p *privacyWrapper) Global() nn.ParamVector {
	if p.released != nil {
		return p.released.Clone()
	}
	raw := p.Algorithm.Global()
	out := raw.Clone()
	if p.ref != nil && p.opts.ClipNorm > 0 {
		if len(p.ref) != len(out) {
			// A length change means the wrapped algorithm swapped model
			// architectures mid-run; clipping against the stale anchor is
			// impossible, which weakens the release's sensitivity bound.
			// Surface it rather than skipping silently.
			log.Printf("fl: privacy: clipping skipped: anchor has %d params, release has %d (model changed?)", len(p.ref), len(out))
		} else {
			delta := out.Sub(p.ref)
			if n := delta.Norm(); n > p.opts.ClipNorm {
				delta = delta.Scale(p.opts.ClipNorm / n)
				out = p.ref.Add(delta)
			}
		}
	}
	if p.opts.NoiseStd > 0 {
		for i := range out {
			out[i] += p.rng.Normal(0, p.opts.NoiseStd)
		}
	}
	p.ref = raw
	p.released = out
	return out.Clone()
}
