package fl

import (
	"fmt"
	"math"
)

// FaultOptions configures deterministic fault injection. The zero value
// disables every fault, leaving histories bit-identical to the
// fault-free engine. Each fault is decided by a pure hash of
// (plan seed, round, id) — no sequential RNG draws — so decisions are
// identical at every Parallelism/-jobs fan-out and never perturb any
// other stream.
type FaultOptions struct {
	// CrashRate is the probability an activated client crashes before
	// training (it consumes its activation but contributes nothing —
	// distinct from DropoutRate, which models clients that never start).
	CrashRate float64
	// DropRate is the per-attempt probability an upload payload is lost
	// on the wire and must be retried (see TransportOptions.Retries).
	DropRate float64
	// TruncateRate is the per-attempt probability an upload arrives cut
	// short; the decode rejects it and the attempt counts as dropped.
	TruncateRate float64
	// CorruptRate is the per-attempt probability an upload's header is
	// bit-flipped in transit; the decode rejects it and the attempt
	// counts as dropped.
	CorruptRate float64
	// DuplicateRate is the probability an accepted upload is delivered
	// twice; the server dedups, but the duplicate's bytes and wire time
	// are charged.
	DuplicateRate float64
	// StraggleRate is the probability a client's link runs slow this
	// round: rates divided and latency multiplied by StraggleFactor.
	StraggleRate float64
	// StraggleFactor is the slowdown multiplier for straggle faults;
	// 0 defaults to 4.
	StraggleFactor float64
	// StallRate is the per-round probability of a server-side stall that
	// adds StallSec of latency to every link this round.
	StallRate float64
	// StallSec is the stall duration; 0 defaults to 1.
	StallSec float64
}

// Active reports whether any fault can fire.
func (o FaultOptions) Active() bool {
	return o.CrashRate > 0 || o.DropRate > 0 || o.TruncateRate > 0 ||
		o.CorruptRate > 0 || o.DuplicateRate > 0 || o.StraggleRate > 0 ||
		o.StallRate > 0
}

// Validate reports the first problem with the options.
func (o FaultOptions) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"CrashRate", o.CrashRate},
		{"DropRate", o.DropRate},
		{"TruncateRate", o.TruncateRate},
		{"CorruptRate", o.CorruptRate},
		{"DuplicateRate", o.DuplicateRate},
		{"StraggleRate", o.StraggleRate},
		{"StallRate", o.StallRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fl: %s = %v, must be in [0,1]", r.name, r.v)
		}
	}
	if o.StraggleFactor < 0 {
		return fmt.Errorf("fl: StraggleFactor = %v, must be non-negative", o.StraggleFactor)
	}
	if o.StraggleFactor > 0 && o.StraggleFactor < 1 {
		return fmt.Errorf("fl: StraggleFactor = %v, must be >= 1 (a slowdown)", o.StraggleFactor)
	}
	if o.StallSec < 0 {
		return fmt.Errorf("fl: StallSec = %v, must be non-negative", o.StallSec)
	}
	return nil
}

// straggleFactor resolves the default.
func (o FaultOptions) straggleFactor() float64 {
	if o.StraggleFactor == 0 {
		return 4
	}
	return o.StraggleFactor
}

// stallSec resolves the default.
func (o FaultOptions) stallSec() float64 {
	if o.StallSec == 0 {
		return 1
	}
	return o.StallSec
}

// faultKind namespaces the hash so a client's crash, drop and straggle
// decisions in the same round are independent.
type faultKind uint64

const (
	kindCrash faultKind = iota + 1
	kindDrop
	kindTruncate
	kindCorrupt
	kindDuplicate
	kindStraggle
	kindStall
	kindAvail
	kindPhase
	kindLevel
)

// hash01 maps (seed, round, id, kind) to a uniform value in [0,1) with a
// splitmix64-style finalizer. It is the whole source of fault and
// availability randomness: a stateless function, so decisions commute
// with execution order and cost nothing to checkpoint.
func hash01(seed int64, round, id uint64, kind faultKind) float64 {
	x := uint64(seed) ^ round*0x9E3779B97F4A7C15 ^ id*0xBF58476D1CE4E5B9 ^ uint64(kind)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// attemptID folds a retry attempt index into a client id so per-attempt
// faults (drop/truncate/corrupt) redraw on every retry.
func attemptID(client, attempt int) uint64 {
	return uint64(client) | uint64(attempt)<<40
}

// FaultPlan is a run's deterministic fault schedule. Its seed is drawn
// once from a dedicated RNG split appended after every existing stream
// (the advRNG pattern), so a plan with zero rates leaves histories
// bit-unchanged and an active plan never shifts selection, dropout, or
// algorithm randomness.
type FaultPlan struct {
	opts FaultOptions
	seed int64
}

// NewFaultPlan builds a plan from options and the dedicated stream seed.
// A nil plan (or one with inactive options) injects nothing.
func NewFaultPlan(opts FaultOptions, seed int64) *FaultPlan {
	if !opts.Active() {
		return nil
	}
	return &FaultPlan{opts: opts, seed: seed}
}

// Active reports whether the plan can fire (nil-safe).
func (p *FaultPlan) Active() bool { return p != nil && p.opts.Active() }

// Crashes reports whether client id crashes before training in round r.
func (p *FaultPlan) Crashes(r, id int) bool {
	return p != nil && p.opts.CrashRate > 0 &&
		hash01(p.seed, uint64(r), uint64(id), kindCrash) < p.opts.CrashRate
}

// Drops reports whether client id's upload attempt is lost in round r.
func (p *FaultPlan) Drops(r, id, attempt int) bool {
	return p != nil && p.opts.DropRate > 0 &&
		hash01(p.seed, uint64(r), attemptID(id, attempt), kindDrop) < p.opts.DropRate
}

// Truncates reports whether client id's upload attempt arrives cut short.
func (p *FaultPlan) Truncates(r, id, attempt int) bool {
	return p != nil && p.opts.TruncateRate > 0 &&
		hash01(p.seed, uint64(r), attemptID(id, attempt), kindTruncate) < p.opts.TruncateRate
}

// Corrupts reports whether client id's upload attempt arrives bit-flipped.
func (p *FaultPlan) Corrupts(r, id, attempt int) bool {
	return p != nil && p.opts.CorruptRate > 0 &&
		hash01(p.seed, uint64(r), attemptID(id, attempt), kindCorrupt) < p.opts.CorruptRate
}

// Duplicates reports whether client id's accepted upload is delivered
// twice in round r.
func (p *FaultPlan) Duplicates(r, id int) bool {
	return p != nil && p.opts.DuplicateRate > 0 &&
		hash01(p.seed, uint64(r), uint64(id), kindDuplicate) < p.opts.DuplicateRate
}

// Straggles reports whether client id's link runs slow in round r.
func (p *FaultPlan) Straggles(r, id int) bool {
	return p != nil && p.opts.StraggleRate > 0 &&
		hash01(p.seed, uint64(r), uint64(id), kindStraggle) < p.opts.StraggleRate
}

// StraggleFactor is the slowdown multiplier for straggle faults.
func (p *FaultPlan) StraggleFactor() float64 {
	if p == nil {
		return 1
	}
	return p.opts.straggleFactor()
}

// Stalls reports whether the server stalls in round r.
func (p *FaultPlan) Stalls(r int) bool {
	return p != nil && p.opts.StallRate > 0 &&
		hash01(p.seed, uint64(r), math.MaxUint64, kindStall) < p.opts.StallRate
}

// StallSec is the latency a stalled round adds to every link.
func (p *FaultPlan) StallSec() float64 {
	if p == nil {
		return 0
	}
	return p.opts.stallSec()
}
