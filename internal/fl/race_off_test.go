//go:build !race

package fl

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
