package fl

import (
	"fmt"
	"reflect"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/tensor"
)

// recordAlgo trains like wireAlgo but keeps a copy of every round's
// selected cohort, letting tests compare the engine's actual selection
// against the pure CohortPlan replay.
type recordAlgo struct {
	wireAlgo
	rounds [][]int
}

func (a *recordAlgo) Round(r int, selected []int) error {
	a.rounds = append(a.rounds, append([]int(nil), selected...))
	return a.wireAlgo.Round(r, selected)
}

// selectorAlgo is wireAlgo plus a Selector whose choice rotates with the
// round and consumes one RNG draw per call — if the planner ever drew a
// Selector cohort ahead of its round, both the rotation and the stream
// position would change and histories would diverge.
type selectorAlgo struct {
	wireAlgo
}

func (a *selectorAlgo) SelectClients(r int, rng *tensor.RNG, n, k int) []int {
	perm := rng.Perm(n)
	out := make([]int, k)
	for i := range out {
		out[i] = perm[(i+r)%n]
	}
	return out
}

// lazyStripedEnv builds the standard test environment over a lazy source
// with an explicit cache geometry, large enough that stripe counts up to
// 64 are honored rather than clamped away.
func lazyStripedEnv(seed int64, clients int, het data.Heterogeneity, capacity, stripes int) *Env {
	cfg := data.VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 40, TestPerClass: 15,
		ModesPerClass: 2, Sep: 1.2, Noise: 0.3, Seed: seed,
	}
	fed := data.BuildVisionLazyStriped(cfg, clients, het, seed+1, capacity, stripes)
	return &Env{Fed: fed, Model: models.MLP(12, 16, 4)}
}

// TestCohortPlanMatchesEngine: the pure replay returns exactly the cohort
// the engine selects, round by round — the contract that lets prefetch
// know the future without touching it.
func TestCohortPlanMatchesEngine(t *testing.T) {
	cfg := Config{Rounds: 5, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 5, Seed: 17}
	algo := &recordAlgo{}
	env := sourceEnv(33, 8, data.Heterogeneity{IID: true}, "lazy")
	if _, err := Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	n := env.NumClients()
	if len(algo.rounds) != cfg.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(algo.rounds), cfg.Rounds)
	}
	for r, got := range algo.rounds {
		want := CohortPlan(r, cfg.Seed, n, cfg.ClientsPerRound)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: engine selected %v, CohortPlan %v", r, got, want)
		}
	}
	// k > n clamps exactly like the engine; nonsense inputs return nil.
	if got := CohortPlan(0, cfg.Seed, 4, 9); len(got) != 4 {
		t.Fatalf("CohortPlan k>n returned %d ids, want clamp to 4", len(got))
	}
	if CohortPlan(-1, 1, 4, 2) != nil || CohortPlan(0, 1, 0, 2) != nil {
		t.Fatal("CohortPlan accepted nonsense inputs")
	}
}

// TestRunIdenticalAcrossStripesAndPrefetch is the acceptance gate of the
// striped-cache PR: fl.Run histories are byte-identical across stripe
// counts {1, 8, 64} × prefetch lookahead {0, 1, 2}, with every lease
// drained afterwards. Dropout is on, so the test also covers prefetching
// pre-dropout plans whose clients later drop.
func TestRunIdenticalAcrossStripesAndPrefetch(t *testing.T) {
	base := Config{Rounds: 4, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: 19, DropoutRate: 0.2}
	var ref *History
	for _, stripes := range []int{1, 8, 64} {
		for _, pre := range []int{0, 1, 2} {
			t.Run(fmt.Sprintf("stripes%d/prefetch%d", stripes, pre), func(t *testing.T) {
				cfg := base
				cfg.CacheStripes = stripes
				cfg.PrefetchRounds = pre
				env := lazyStripedEnv(35, 12, data.Heterogeneity{Beta: 0.5}, 64, 1)
				h, err := Run(&wireAlgo{}, env, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if n := env.Fed.OutstandingLeases(); n != 0 {
					t.Fatalf("%d leases outstanding after run", n)
				}
				if stats, ok := env.Fed.SourceStats(); ok && stats.Stripes != stripes {
					t.Fatalf("source runs %d stripes, want %d applied cold", stats.Stripes, stripes)
				}
				if ref == nil {
					ref = h
					return
				}
				if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
					t.Fatalf("history diverges at stripes=%d prefetch=%d:\n%v\nvs\n%v",
						stripes, pre, ref.Metrics, h.Metrics)
				}
			})
		}
	}
}

// TestRunAsyncIdenticalAcrossStripesAndPrefetch repeats the gate for the
// buffered-async engine, whose prefetch fires per dispatched client
// rather than per planned round.
func TestRunAsyncIdenticalAcrossStripesAndPrefetch(t *testing.T) {
	base := Config{Rounds: 4, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: 23}
	opts := AsyncOptions{Buffer: 2}
	var ref *History
	for _, stripes := range []int{1, 8, 64} {
		for _, pre := range []int{0, 1} {
			cfg := base
			cfg.CacheStripes = stripes
			cfg.PrefetchRounds = pre
			env := lazyStripedEnv(37, 10, data.Heterogeneity{Beta: 0.5}, 64, 1)
			h, err := RunAsync(env, cfg, opts)
			if err != nil {
				t.Fatalf("stripes=%d prefetch=%d: %v", stripes, pre, err)
			}
			if n := env.Fed.OutstandingLeases(); n != 0 {
				t.Fatalf("stripes=%d prefetch=%d: %d leases outstanding", stripes, pre, n)
			}
			if ref == nil {
				ref = h
				continue
			}
			if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
				t.Fatalf("async history diverges at stripes=%d prefetch=%d:\n%v\nvs\n%v",
					stripes, pre, ref.Metrics, h.Metrics)
			}
		}
	}
}

// TestSelectorDisablesLookahead: for algorithms that choose their own
// clients, the planner must refuse to plan ahead — histories with
// prefetch on and off are identical, and the source records zero
// prefetch-warmed hits because no lookahead was ever issued.
func TestSelectorDisablesLookahead(t *testing.T) {
	base := Config{Rounds: 4, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: 29}
	var ref *History
	for _, pre := range []int{0, 2} {
		cfg := base
		cfg.PrefetchRounds = pre
		env := lazyStripedEnv(39, 10, data.Heterogeneity{IID: true}, 64, 8)
		h, err := Run(&selectorAlgo{}, env, cfg)
		if err != nil {
			t.Fatalf("prefetch=%d: %v", pre, err)
		}
		if stats, ok := env.Fed.SourceStats(); !ok {
			t.Fatal("lazy source lost its stats seam")
		} else if stats.PrefetchHits != 0 {
			t.Fatalf("prefetch=%d: %d prefetch hits with a Selector algorithm, want 0",
				pre, stats.PrefetchHits)
		}
		if ref == nil {
			ref = h
			continue
		}
		if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
			t.Fatalf("Selector history changed with prefetch on:\n%v\nvs\n%v", ref.Metrics, h.Metrics)
		}
	}
}

// waitPrefetchAlgo trains like wireAlgo but rendezvouses with the lazy
// source's prefetch pool at the top of every round. Real runs never wait
// — warming is best-effort overlap — but the test must, because on a
// small box the foreground lease can win the synthesis race and the
// prefetch-hit counter would be a coin flip.
type waitPrefetchAlgo struct {
	wireAlgo
	src interface{ WaitPrefetch() }
}

func (a *waitPrefetchAlgo) Round(r int, selected []int) error {
	a.src.WaitPrefetch()
	return a.wireAlgo.Round(r, selected)
}

// TestPrefetchActuallyWarms: with lookahead on, later rounds lease out of
// the warmed cache — the source must record prefetch hits, or the
// overlap machinery silently did nothing.
func TestPrefetchActuallyWarms(t *testing.T) {
	cfg := Config{Rounds: 5, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 5, Seed: 31, PrefetchRounds: 2}
	env := lazyStripedEnv(41, 12, data.Heterogeneity{IID: true}, 64, 8)
	algo := &waitPrefetchAlgo{src: env.Fed.Source.(*data.Lazy)}
	if _, err := Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	stats, ok := env.Fed.SourceStats()
	if !ok {
		t.Fatal("lazy source lost its stats seam")
	}
	if stats.PrefetchHits == 0 {
		t.Fatalf("no prefetch hits over %d rounds of lookahead: %+v", cfg.Rounds, stats)
	}
	if stats.Outstanding != 0 {
		t.Fatalf("outstanding %d after run", stats.Outstanding)
	}
}
