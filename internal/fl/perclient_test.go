package fl

import (
	"math"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func TestEvaluatePerClient(t *testing.T) {
	env := testEnv(31, 5)
	vec := nn.FlattenParams(env.Model.New(tensor.NewRNG(1)).Params())
	rep, err := EvaluatePerClient(env, vec, 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evals) != 5 {
		t.Fatalf("evals = %d", len(rep.Evals))
	}
	// Sorted ascending by accuracy.
	for i := 1; i < len(rep.Evals); i++ {
		if rep.Evals[i].Acc < rep.Evals[i-1].Acc {
			t.Fatal("evals not sorted")
		}
	}
	if rep.Worst != rep.Evals[0].Acc {
		t.Fatalf("worst %v != first sorted %v", rep.Worst, rep.Evals[0].Acc)
	}
	if rep.Mean < 0 || rep.Mean > 1 || rep.Std < 0 {
		t.Fatalf("summary out of range: %+v", rep)
	}
	if rep.BottomDecileMean() != rep.Evals[0].Acc {
		t.Fatalf("bottom decile of 5 clients should be the single worst")
	}
}

func TestEvaluatePerClientWeightedMean(t *testing.T) {
	// Mean must be sample-weighted: construct two clients with very
	// different sizes and check the identity directly.
	env := testEnv(32, 2)
	vec := nn.FlattenParams(env.Model.New(tensor.NewRNG(2)).Params())
	rep, err := EvaluatePerClient(env, vec, 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	num, den := 0.0, 0
	for _, e := range rep.Evals {
		num += e.Acc * float64(e.Samples)
		den += e.Samples
	}
	if math.Abs(rep.Mean-num/float64(den)) > 1e-12 {
		t.Fatalf("mean %v, want %v", rep.Mean, num/float64(den))
	}
}

func TestEvaluatePerClientTrainedBeatsRandom(t *testing.T) {
	env := testEnv(33, 4)
	cfg := Config{Rounds: 5, ClientsPerRound: 4, LocalEpochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.5, Seed: 1}
	algo := &stubAlgo{}
	if _, err := Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	random := nn.FlattenParams(env.Model.New(tensor.NewRNG(99)).Params())
	repR, err := EvaluatePerClient(env, random, 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	repT, err := EvaluatePerClient(env, algo.Global(), 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if repT.Mean <= repR.Mean {
		t.Fatalf("trained per-client mean %v should beat random %v", repT.Mean, repR.Mean)
	}
}

func TestEvaluatePerClientErrors(t *testing.T) {
	env := &Env{Fed: &data.Federated{}, Model: testEnv(1, 2).Model}
	if _, err := EvaluatePerClient(env, nil, 32, Limit(0)); err == nil {
		t.Fatal("empty federation must error")
	}
}
