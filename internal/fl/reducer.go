package fl

import (
	"errors"
	"fmt"
	"math"

	"fedcross/internal/nn"
)

// Reducer is the pluggable server-side aggregation rule: it combines one
// round's surviving uploads into a single parameter vector. The round
// engine routes every algorithm's aggregation through ReduceUploads, so a
// robust rule (trimmed mean, coordinate-wise median, Krum in
// internal/core) drops in where the hard-coded weighted mean used to be.
//
// Contract: Reduce is called only through ReduceUploads, which guarantees
// a non-empty upload list of equal-length finite vectors and a matching
// non-negative weight list. Reduce must not mutate the uploads and must
// return a fresh vector of the common length. Implementations must be
// pure functions of (uploads, weights) — never of scheduling — so
// histories stay bit-identical at every worker count.
type Reducer interface {
	// Name identifies the rule in reports and flags.
	Name() string
	// Reduce combines the validated uploads into one vector.
	Reduce(uploads []nn.ParamVector, weights []float64) nn.ParamVector
}

// WorkersSetter is optionally implemented by reducers whose Reduce fans
// out internally (the coordinate-wise rules, Krum's distance matrix). The
// runner injects the run's worker allowance before the first round, so a
// reducer inside a scheduled grid cell leases its goroutines from the
// same shared budget as training and evaluation.
type WorkersSetter interface {
	SetWorkers(w Workers)
}

// ErrNoFiniteUploads is returned when every upload was dropped by the
// non-finite payload screen — there is nothing left to aggregate.
var ErrNoFiniteUploads = errors.New("fl: reduce: no finite uploads")

// ReduceUploads is the validated entry point every aggregation goes
// through. It hardens the server against hostile payloads the way the
// codec layer hardens it against hostile headers:
//
//   - a nil reducer falls back to the weighted mean (the legacy path,
//     bit-identical to nn.WeightedMeanVectors),
//   - ragged upload lengths, mismatched weight counts and negative or
//     non-finite weights are errors, never panics,
//   - uploads containing NaN or ±Inf coordinates are dropped before the
//     rule runs (a single poisoned vector must not NaN the whole model);
//     if every upload is dropped, ErrNoFiniteUploads is returned.
//
// weights may be nil for an unweighted reduction.
func ReduceUploads(r Reducer, uploads []nn.ParamVector, weights []float64) (nn.ParamVector, error) {
	if len(uploads) == 0 {
		return nil, fmt.Errorf("fl: reduce: no uploads")
	}
	if weights != nil && len(weights) != len(uploads) {
		return nil, fmt.Errorf("fl: reduce: %d uploads but %d weights", len(uploads), len(weights))
	}
	n := len(uploads[0])
	for i, u := range uploads {
		if len(u) != n {
			return nil, fmt.Errorf("fl: reduce: upload %d has length %d, want %d", i, len(u), n)
		}
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("fl: reduce: weight %d = %v, must be finite and non-negative", i, w)
		}
	}
	uploads, weights = dropNonFinite(uploads, weights)
	if len(uploads) == 0 {
		return nil, ErrNoFiniteUploads
	}
	if r == nil {
		r = MeanReducer{}
	}
	out := r.Reduce(uploads, weights)
	if len(out) != n {
		return nil, fmt.Errorf("fl: reduce: %s returned length %d, want %d", r.Name(), len(out), n)
	}
	return out, nil
}

// dropNonFinite filters out uploads containing NaN or ±Inf coordinates.
// When nothing is dropped the original slices are returned untouched, so
// the clean path adds only a read-only scan (and the mean fallback stays
// bit-identical to the pre-reducer engine).
func dropNonFinite(uploads []nn.ParamVector, weights []float64) ([]nn.ParamVector, []float64) {
	drop := -1
	for i, u := range uploads {
		if !finiteVector(u) {
			drop = i
			break
		}
	}
	if drop == -1 {
		return uploads, weights
	}
	outU := append([]nn.ParamVector(nil), uploads[:drop]...)
	var outW []float64
	if weights != nil {
		outW = append([]float64(nil), weights[:drop]...)
	}
	for i := drop + 1; i < len(uploads); i++ {
		if !finiteVector(uploads[i]) {
			continue
		}
		outU = append(outU, uploads[i])
		if weights != nil {
			outW = append(outW, weights[i])
		}
	}
	return outU, outW
}

// finiteVector reports whether every coordinate is finite.
func finiteVector(v nn.ParamVector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// MeanReducer is the classic FedAvg rule: the weighted mean of the
// uploads. With nil weights it is the plain mean. It has a breakdown
// point of zero — one unbounded attacker moves the aggregate arbitrarily
// far — and exists as the reference the robust rules are measured
// against.
type MeanReducer struct {
	// W is the worker allowance for the tree-reduce fan-out over client
	// groups. The zero value fans out unbudgeted, which is still
	// bit-deterministic (see treeMean).
	W Workers
}

// Name implements Reducer.
func (MeanReducer) Name() string { return "mean" }

// SetWorkers implements WorkersSetter (pointer receiver, so the value
// MeanReducer{} used by the nil-reducer fallback keeps its zero
// allowance and legacy algorithms that branch on cfg.Reducer != nil are
// unaffected).
func (r *MeanReducer) SetWorkers(w Workers) { r.W = w }

// Reduce implements Reducer. Up to treeLeaf uploads it is bit-identical
// to nn.WeightedMeanVectors (the legacy serial fold); past that it
// switches to the deterministic group tree-reduce.
func (r MeanReducer) Reduce(uploads []nn.ParamVector, weights []float64) nn.ParamVector {
	return treeMean(uploads, weights, r.W)
}

// treeLeaf is the client-group size at the tree-reduce's leaves. Every
// configuration up to treeLeaf uploads per round takes the single-group
// fast path, which is the exact legacy serial fold — so all historical
// runs (K ≤ 64) are reproduced bit-for-bit.
const treeLeaf = 64

// treeMaxGroups caps the leaf-group count; beyond it the leaves grow
// instead, keeping the partial-vector footprint bounded at
// treeMaxGroups·dim even for 10^5 uploads.
const treeMaxGroups = 128

// treeMean is the worker-budgeted tree-reduce behind MeanReducer and the
// nil-reducer fallback: uploads are cut into fixed contiguous groups of
// treeLeaf, each group folds serially in index order into one partial,
// and partials combine pairwise (partials[2j] += partials[2j+1]) level by
// level until one remains.
//
// Determinism contract: the tree shape — group boundaries and pair
// assignments — depends only on len(uploads), never on the worker count.
// Workers decide WHO computes a node, not WHAT it sums, so the result is
// bit-identical at any fan-out (and to the serial legacy fold whenever
// the inputs fit one group).
func treeMean(uploads []nn.ParamVector, weights []float64, w Workers) nn.ParamVector {
	k := len(uploads)
	leaf := treeLeaf
	if g := (k + leaf - 1) / leaf; g > treeMaxGroups {
		leaf = (k + treeMaxGroups - 1) / treeMaxGroups
	}
	groups := (k + leaf - 1) / leaf
	if groups <= 1 {
		if weights == nil {
			return nn.MeanVectors(uploads)
		}
		return nn.WeightedMeanVectors(uploads, weights)
	}
	dim := len(uploads[0])
	total := 0.0
	if weights != nil {
		for _, x := range weights {
			total += x
		}
		if total == 0 {
			weights = nil // all-zero weights degrade to the plain mean, as WeightedMeanVectors does
		}
	}
	partials := make([]nn.ParamVector, groups)
	parallelForWorker(groups, w, func(_, g int) {
		lo, hi := g*leaf, (g+1)*leaf
		if hi > k {
			hi = k
		}
		p := make(nn.ParamVector, dim)
		if weights == nil {
			copy(p, uploads[lo])
			for _, v := range uploads[lo+1 : hi] {
				for i := range p {
					p[i] += v[i]
				}
			}
		} else {
			for j := lo; j < hi; j++ {
				wj := weights[j] / total
				v := uploads[j]
				for i := range p {
					p[i] += wj * v[i]
				}
			}
		}
		partials[g] = p
	})
	for len(partials) > 1 {
		pairs := len(partials) / 2
		parallelForWorker(pairs, w, func(_, j int) {
			a, b := partials[2*j], partials[2*j+1]
			for i := range a {
				a[i] += b[i]
			}
		})
		next := partials[:0]
		for j := 0; j < pairs; j++ {
			next = append(next, partials[2*j])
		}
		if len(partials)%2 == 1 {
			next = append(next, partials[len(partials)-1])
		}
		partials = next
	}
	out := partials[0]
	if weights == nil {
		inv := 1 / float64(k)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// reduceChunk is the coordinate-chunk width the coordinate-wise rules
// parallelise over: big enough to amortise dispatch, small enough that a
// tiny model still fans out.
const reduceChunk = 4096

// TrimmedMeanReducer is the coordinate-wise trimmed mean: at every
// coordinate the g largest and g smallest values are discarded and the
// rest averaged, with g = floor(Frac·k) clamped so at least one value
// survives. With g ≥ f it tolerates f arbitrary attackers per coordinate
// (Yin et al., ICML 2018). Weights are ignored: rank-based rules order
// values, they do not scale them.
type TrimmedMeanReducer struct {
	// Frac is the fraction trimmed from EACH end (default 0.25 when 0).
	Frac float64
	// W is the worker allowance for the coordinate fan-out.
	W Workers
}

// Name implements Reducer.
func (r TrimmedMeanReducer) Name() string { return fmt.Sprintf("trimmed:%.2f", r.frac()) }

func (r TrimmedMeanReducer) frac() float64 {
	if r.Frac <= 0 {
		return 0.25
	}
	return r.Frac
}

// SetWorkers implements WorkersSetter.
func (r *TrimmedMeanReducer) SetWorkers(w Workers) { r.W = w }

// Reduce implements Reducer.
func (r TrimmedMeanReducer) Reduce(uploads []nn.ParamVector, weights []float64) nn.ParamVector {
	k := len(uploads)
	g := int(r.frac() * float64(k))
	if 2*g >= k {
		g = (k - 1) / 2
	}
	return columnwise(uploads, r.W, func(vals []float64) float64 {
		insertionSort(vals)
		kept := vals[g : len(vals)-g]
		sum := 0.0
		for _, v := range kept {
			sum += v
		}
		return sum / float64(len(kept))
	})
}

// MedianReducer is the coordinate-wise median, the maximally trimmed
// mean: breakdown point just under 1/2. Weights are ignored.
type MedianReducer struct {
	// W is the worker allowance for the coordinate fan-out.
	W Workers
}

// Name implements Reducer.
func (MedianReducer) Name() string { return "median" }

// SetWorkers implements WorkersSetter.
func (r *MedianReducer) SetWorkers(w Workers) { r.W = w }

// Reduce implements Reducer.
func (r MedianReducer) Reduce(uploads []nn.ParamVector, weights []float64) nn.ParamVector {
	return columnwise(uploads, r.W, func(vals []float64) float64 {
		insertionSort(vals)
		k := len(vals)
		if k%2 == 1 {
			return vals[k/2]
		}
		return (vals[k/2-1] + vals[k/2]) / 2
	})
}

// columnwise applies stat to every coordinate's column of upload values,
// fanning out over coordinate chunks. Each worker owns one scratch column
// buffer; every output cell is a pure function of its column, so the
// result is bit-identical at every worker count.
func columnwise(uploads []nn.ParamVector, w Workers, stat func(vals []float64) float64) nn.ParamVector {
	k := len(uploads)
	n := len(uploads[0])
	out := make(nn.ParamVector, n)
	chunks := (n + reduceChunk - 1) / reduceChunk
	// parallelForWorker never runs more than effectiveWorkers(chunks,
	// w.Max) goroutines (a budget can only shrink the fan-out), so sizing
	// the per-worker scratch to that bound is always enough.
	scratch := make([][]float64, effectiveWorkers(chunks, w.Max))
	for i := range scratch {
		scratch[i] = make([]float64, k)
	}
	parallelForWorker(chunks, w, func(wk, c int) {
		vals := scratch[wk]
		lo := c * reduceChunk
		hi := lo + reduceChunk
		if hi > n {
			hi = n
		}
		for j := lo; j < hi; j++ {
			for i := 0; i < k; i++ {
				vals[i] = uploads[i][j]
			}
			out[j] = stat(vals)
		}
	})
	return out
}

// insertionSort sorts a small column in place — k is the per-round upload
// count (≤ tens), where insertion sort beats sort.Float64s and allocates
// nothing.
func insertionSort(vals []float64) {
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1] = vals[j]
			j--
		}
		vals[j+1] = v
	}
}

// ReducerByName resolves the rules implemented in this package: "mean"
// (or empty), "trimmed"/"trimmed:<frac>" and "median". The Krum family
// lives in internal/core (it is built on the similarity-matrix kernels)
// and is resolved by core.ReducerByName, which falls back to this
// function for the coordinate-wise rules.
func ReducerByName(name string) (Reducer, error) {
	switch {
	case name == "" || name == "mean":
		return MeanReducer{}, nil
	case name == "median":
		return &MedianReducer{}, nil
	case name == "trimmed":
		return &TrimmedMeanReducer{}, nil
	case len(name) > len("trimmed:") && name[:len("trimmed:")] == "trimmed:":
		var frac float64
		if _, err := fmt.Sscanf(name[len("trimmed:"):], "%g", &frac); err != nil {
			return nil, fmt.Errorf("fl: bad trimmed fraction in %q: %w", name, err)
		}
		if frac <= 0 || frac >= 0.5 {
			return nil, fmt.Errorf("fl: trimmed fraction %v out of (0, 0.5)", frac)
		}
		return &TrimmedMeanReducer{Frac: frac}, nil
	}
	return nil, fmt.Errorf("fl: unknown reducer %q (want mean, trimmed[:frac] or median)", name)
}
