package fl

import (
	"math"
	"reflect"
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func testVec(rng *tensor.RNG, n int) nn.ParamVector {
	v := make(nn.ParamVector, n)
	for i := range v {
		v[i] = rng.Normal(0, 1)
	}
	return v
}

// TestTransportNilPassThrough pins the nil-receiver contract every
// algorithm relies on when driven outside fl.Run.
func TestTransportNilPassThrough(t *testing.T) {
	var tr *Transport
	vec := nn.ParamVector{1, 2, 3}
	if got := tr.Down(nil, 0, vec); &got[0] != &vec[0] {
		t.Fatal("nil transport Down must return the input vector")
	}
	if got, ok := tr.Up(nil, 0, vec, nil); !ok || &got[0] != &vec[0] {
		t.Fatal("nil transport Up must pass through on time")
	}
	if got := tr.Broadcast(nil, []int{0, 1}, vec); &got[0] != &vec[0] {
		t.Fatal("nil transport Broadcast must return the input vector")
	}
	tr.BeginRound(0, []int{0, 1}, nil)
	if d, u, s := tr.EndRound(); d != 0 || u != 0 || s != 0 {
		t.Fatalf("nil transport accounted %d/%d/%d", d, u, s)
	}
	if !tr.PassThrough() {
		t.Fatal("nil transport must report PassThrough")
	}
}

// TestTransportIdentityZeroCopy pins the reference wire: identity codec
// returns the input slices untouched (no decode copy) while still
// charging byte-accurate traffic.
func TestTransportIdentityZeroCopy(t *testing.T) {
	tr, err := NewTransport(TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	vec := testVec(rng, 100)
	tr.BeginRound(0, []int{3, 7, -1}, rng.Split())

	if got := tr.Down(nil, 3, vec); &got[0] != &vec[0] {
		t.Fatal("identity Down must be zero-copy")
	}
	if got := tr.Broadcast(nil, []int{3, 7, -1}, vec); &got[0] != &vec[0] {
		t.Fatal("identity Broadcast must be zero-copy")
	}
	if got, ok := tr.Up(nil, 7, vec, vec); !ok || &got[0] != &vec[0] {
		t.Fatal("identity Up must be zero-copy and on time")
	}

	perPayload := (nn.IdentityCodec{}).EncodedSize(100)
	down, up, stragglers := tr.EndRound()
	if want := 3 * perPayload; down != want { // 1 Down + 2 Broadcast recipients
		t.Fatalf("down bytes %d, want %d", down, want)
	}
	if up != perPayload {
		t.Fatalf("up bytes %d, want %d", up, perPayload)
	}
	if stragglers != 0 {
		t.Fatalf("stragglers %d, want 0", stragglers)
	}
	if d, u, _ := tr.Totals(); d != down || u != up {
		t.Fatalf("totals %d/%d, want %d/%d", d, u, down, up)
	}
}

// TestTransportLossyDelta pins the delta path: an int8 upload encoded
// against a reference decodes within the quantization bound of the
// *residual* range — far tighter than quantizing the raw vector — and
// dropped top-k coordinates stay at the reference instead of zero.
func TestTransportLossyDelta(t *testing.T) {
	rng := tensor.NewRNG(2)
	ref := testVec(rng, 512)
	vec := ref.Clone()
	// Perturb a little: the residual range is ~1e-2 while the value range is ~1.
	resLo, resHi := math.Inf(1), math.Inf(-1)
	for i := range vec {
		d := 0.01 * rng.Normal(0, 1)
		vec[i] += d
		resLo = math.Min(resLo, d)
		resHi = math.Max(resHi, d)
	}

	tr, err := NewTransport(TransportOptions{Codec: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	tr.BeginRound(0, []int{0}, nil)
	dst := make(nn.ParamVector, len(vec))
	got, ok := tr.Up(dst, 0, vec, ref)
	if !ok {
		t.Fatal("upload missed a deadline that does not exist")
	}
	bound := (resHi - resLo) / 510 * (1 + 1e-9)
	for i := range vec {
		if math.Abs(got[i]-vec[i]) > bound {
			t.Fatalf("delta int8: element %d error %v > residual bound %v", i, math.Abs(got[i]-vec[i]), bound)
		}
	}

	// topk delta: unsent coordinates must equal the reference bit-exactly.
	tr2, err := NewTransport(TransportOptions{Codec: "topk:0.1"})
	if err != nil {
		t.Fatal(err)
	}
	tr2.BeginRound(0, []int{0}, nil)
	got2, _ := tr2.Up(make(nn.ParamVector, len(vec)), 0, vec, ref)
	unchanged := 0
	for i := range got2 {
		if got2[i] == ref[i] {
			unchanged++
		}
	}
	if want := len(vec) - (nn.TopKCodec{Frac: 0.1}).Keep(len(vec)); unchanged < want {
		t.Fatalf("topk delta: %d coordinates at the reference, want at least %d", unchanged, want)
	}
}

// TestTransportDeadlineStragglers pins straggler semantics: with a slow
// link and a tight deadline, uploads past the budget report ok=false,
// each straggler is counted exactly once, later uploads from the same
// client are skipped, and the selection is a deterministic function of
// the seed.
func TestTransportDeadlineStragglers(t *testing.T) {
	rng := tensor.NewRNG(9)
	vec := testVec(rng, 25_000) // 200 KB identity payload
	clients := []int{0, 1, 2, 3, 4, 5, 6, 7}

	run := func(seed int64) (missed []int, stragglers int) {
		tr, err := NewTransport(TransportOptions{Network: "edge", DeadlineSec: 5})
		if err != nil {
			t.Fatal(err)
		}
		tr.BeginRound(0, clients, tensor.NewRNG(seed))
		tr.Broadcast(nil, clients, vec)
		for _, ci := range clients {
			if _, ok := tr.Up(nil, ci, vec, nil); !ok {
				missed = append(missed, ci)
				// A second upload from a straggler must also fail, without
				// double-counting.
				if _, ok := tr.Up(nil, ci, vec, nil); ok {
					t.Fatalf("client %d: upload after straggling succeeded", ci)
				}
			}
		}
		_, _, s := tr.EndRound()
		return missed, s
	}

	missedA, stragglersA := run(42)
	missedB, stragglersB := run(42)
	if !reflect.DeepEqual(missedA, missedB) {
		t.Fatalf("straggler selection not deterministic: %v vs %v", missedA, missedB)
	}
	if stragglersA != len(missedA) || stragglersA != stragglersB {
		t.Fatalf("straggler count %d/%d, want %d (each once)", stragglersA, stragglersB, len(missedA))
	}
	// 200 KB down (0.8 s at median edge rates) plus 200 KB up (3.2 s)
	// against a 5 s deadline: the jittered fleet must split — some make
	// it, some miss — or the scenario tests nothing.
	if len(missedA) == 0 || len(missedA) == len(clients) {
		t.Fatalf("degenerate straggler scenario: %d of %d missed", len(missedA), len(clients))
	}

	// A different seed should eventually produce a different fleet; scan a
	// few to avoid flakiness.
	different := false
	for seed := int64(43); seed < 53; seed++ {
		if m, _ := run(seed); !reflect.DeepEqual(m, missedA) {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("straggler selection ignores the network RNG stream")
	}
}

// TestTransportIdealNetworkNeverStraggles pins that deadlines only bite
// when the link model charges time.
func TestTransportIdealNetworkNeverStraggles(t *testing.T) {
	tr, err := NewTransport(TransportOptions{DeadlineSec: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	vec := testVec(rng, 10_000)
	tr.BeginRound(0, []int{0}, rng.Split())
	for i := 0; i < 100; i++ {
		if _, ok := tr.Up(nil, 0, vec, nil); !ok {
			t.Fatal("ideal network produced a straggler")
		}
	}
}

// TestNetworkByName pins the preset table and its error path.
func TestNetworkByName(t *testing.T) {
	for _, name := range []string{"", "none", "fiber", "wifi", "lte", "edge"} {
		m, err := NetworkByName(name)
		if err != nil {
			t.Fatalf("NetworkByName(%q): %v", name, err)
		}
		if name == "" || name == "none" {
			if !m.Ideal() {
				t.Fatalf("%q must be ideal", name)
			}
		} else if m.Ideal() || m.Name != name {
			t.Fatalf("%q resolved to %+v", name, m)
		}
	}
	if _, err := NetworkByName("starlink"); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := (TransportOptions{Codec: "zip"}).Validate(); err == nil {
		t.Fatal("bad codec accepted")
	}
	if err := (TransportOptions{DeadlineSec: -1}).Validate(); err == nil {
		t.Fatal("negative deadline accepted")
	}
}
