//go:build race

package fl

// raceEnabled reports whether the race detector is active. Under it,
// sync.Pool deliberately drops items to widen race coverage, so
// pool-dependent allocation counts are not meaningful.
const raceEnabled = true
