package fl

import (
	"fmt"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Algorithm is the plug-in point for FL methods. The Runner owns client
// selection and evaluation; the algorithm owns what happens inside a
// round. Algorithms that additionally implement TransportUser receive the
// runner's simulated wire before Init and must route every model-sized
// exchange through it; the six built-in methods all do.
type Algorithm interface {
	// Name identifies the method in reports ("fedavg", "fedcross", ...).
	Name() string
	// Category is the Table-I taxonomy bucket.
	Category() string
	// Init prepares the algorithm's state for the given environment. It
	// is called exactly once before the first round.
	Init(env *Env, cfg Config, rng *tensor.RNG) error
	// Round runs one training round on the selected client indices. A
	// selected index of -1 marks a client that was activated but dropped
	// out (failure injection); algorithms must tolerate it.
	Round(r int, selected []int) error
	// Global returns the current deployment model. For FedCross this
	// triggers GlobalModelGen; for the baselines it is the live global
	// model.
	Global() nn.ParamVector
	// RoundComm is the per-round communication profile for K activated
	// clients.
	RoundComm(k int) CommProfile
}

// Selector is optionally implemented by algorithms that choose their own
// clients (CluSamp's clustered sampling). The Runner falls back to uniform
// random selection otherwise.
type Selector interface {
	SelectClients(r int, rng *tensor.RNG, n, k int) []int
}

// RoundMetric records the state after one evaluated round.
type RoundMetric struct {
	// Round is the 1-based round index.
	Round int
	// TestAcc and TestLoss are the global model's held-out metrics.
	TestAcc, TestLoss float64
	// CumModelEquivalents is cumulative communication in model-sized
	// units up to and including this round (the analytic Table-I view).
	CumModelEquivalents float64
	// CumBytesDown / CumBytesUp are the cumulative wire traffic measured
	// by the transport — byte-accurate encoded payload sizes, not
	// model-equivalents — up to and including this round.
	CumBytesDown, CumBytesUp int64
	// CumStragglers counts clients whose upload missed the round deadline
	// so far (0 unless Config.Transport sets a deadline).
	CumStragglers int
	// CumRetries / CumFaultDrops / CumDuplicates / CumStalls are the
	// cumulative fault-injection telemetry: retry attempts, clients
	// permanently lost to wire faults, duplicate deliveries, and stalled
	// rounds (0 unless Config.Faults is active).
	CumRetries, CumFaultDrops, CumDuplicates, CumStalls int
	// CumCrashes counts fault-injected pre-training client crashes.
	CumCrashes int
	// CumUnavailable counts selection slots lost to churn (offline or
	// departed clients) so far (0 unless Config.Churn is active).
	CumUnavailable int
	// CumDegraded counts rounds whose accepted uploads fell below the
	// Config.MinUploads quorum, so the server kept its current model.
	CumDegraded int
}

// History is a full run record.
type History struct {
	// Algorithm is the method name.
	Algorithm string
	// Metrics holds one entry per evaluated round.
	Metrics []RoundMetric
	// Comm is the whole-run communication total in analytic units.
	Comm CommProfile
	// BytesDown / BytesUp are the whole-run wire traffic measured by the
	// transport (encoded payload bytes).
	BytesDown, BytesUp int64
	// Stragglers is the whole-run count of deadline-missed uploads.
	Stragglers int
	// Retries / FaultDrops / Duplicates / Stalls are the whole-run fault
	// telemetry (see the matching RoundMetric fields).
	Retries, FaultDrops, Duplicates, Stalls int
	// Crashes is the whole-run count of fault-injected client crashes.
	Crashes int
	// Unavailable is the whole-run count of selection slots lost to
	// churn.
	Unavailable int
	// Degraded is the whole-run count of below-quorum rounds.
	Degraded int
}

// TotalBytes returns the run's whole wire traffic in both directions.
func (h *History) TotalBytes() int64 { return h.BytesDown + h.BytesUp }

// Final returns the last evaluated metric.
func (h *History) Final() RoundMetric {
	if len(h.Metrics) == 0 {
		return RoundMetric{}
	}
	return h.Metrics[len(h.Metrics)-1]
}

// BestAcc returns the best test accuracy seen at any evaluation point.
func (h *History) BestAcc() float64 {
	best := 0.0
	for _, m := range h.Metrics {
		if m.TestAcc > best {
			best = m.TestAcc
		}
	}
	return best
}

// RoundsToAcc returns the first evaluated round reaching acc, or -1.
func (h *History) RoundsToAcc(acc float64) int {
	for _, m := range h.Metrics {
		if m.TestAcc >= acc {
			return m.Round
		}
	}
	return -1
}

// Run executes a full FL simulation: Init, Rounds× (select → algorithm
// round → optional eval), returning the metric history.
func Run(algo Algorithm, env *Env, cfg Config) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := env.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: Run: environment has no clients")
	}
	k := cfg.ClientsPerRound
	if k > n {
		k = n
	}
	rng := tensor.NewRNG(cfg.Seed)
	// The split order below is the determinism anchor: initRNG, selRNG,
	// dropRNG, netRNG were split in exactly this order before the
	// adversary existed, and advRNG comes last — the parent stream is
	// never drawn from again, so benign histories are bit-identical to
	// the pre-adversary engine, and the attacker set is a pure function
	// of cfg.Seed (identical at every -jobs/worker fan-out).
	initRNG := rng.Split()
	selRNG := rng.Split()
	dropRNG := rng.Split()
	// The transport's stream is split after the pre-existing ones, so
	// selection, dropout and algorithm randomness are untouched by its
	// introduction — histories with the reference wire stay bit-identical
	// to the accounting-only engine.
	netRNG := rng.Split()
	advRNG := rng.Split()
	// Fault and churn streams are appended after every pre-existing
	// split, exactly the advRNG pattern: the master is never drawn again,
	// so a zero-rate plan leaves every existing history bit-unchanged.
	// Each plan consumes one draw of its dedicated stream as its hash
	// seed; decisions are pure functions of that seed, so they commute
	// with worker scheduling and checkpoint/resume recomputes them free.
	faultRNG := rng.Split()
	churnRNG := rng.Split()
	tr, err := NewTransport(cfg.Transport)
	if err != nil {
		return nil, fmt.Errorf("fl: Run: %w", err)
	}
	adv := NewAdversary(cfg.Adversary, n, advRNG)
	tr.SetAdversary(adv)
	faults := NewFaultPlan(cfg.Faults, faultRNG.Int63())
	tr.SetFaultPlan(faults)
	// Label-flip attackers train honestly on dishonest data: the
	// algorithm sees a copy-on-write environment whose compromised shards
	// carry flipped labels. Every other attack corrupts uploads at the
	// transport seam instead.
	env = adv.ShadowEnv(env)
	// Virtual sybils extend the shadow population past n, so selection
	// and per-client state must size against the shadow view. Without
	// them the recount is a no-op.
	if m := env.NumClients(); m != n {
		n = m
		k = cfg.ClientsPerRound
		if k > n {
			k = n
		}
	}
	if ws, ok := cfg.Reducer.(WorkersSetter); ok {
		ws.SetWorkers(cfg.Allowance())
	}
	if tu, ok := algo.(TransportUser); ok {
		tu.SetTransport(tr)
	}
	// Cache geometry and prefetch both resolve against the shadow view:
	// the stripe knob reaches the real source through the adversary
	// wrapper, and prefetched sybil ids fold onto the real shards they
	// recycle. Neither touches RNG, so histories are unchanged.
	restripeSource(env, cfg)
	prefetch := sourcePrefetcher(env, cfg)
	if prefetch != nil {
		// Early exits (round errors) must not leave pool goroutines
		// synthesizing into a cache nobody will read.
		defer prefetch.CancelPrefetch()
	}
	if err := algo.Init(env, cfg, initRNG); err != nil {
		return nil, fmt.Errorf("fl: Run: init %s: %w", algo.Name(), err)
	}
	// Churn sizes against the shadow population (selection's id space).
	churn := NewChurnPlan(cfg.Churn, churnRNG.Int63(), n, cfg.Rounds)
	hist := &History{Algorithm: algo.Name()}
	var acct Accountant
	genFrac := 0.25 // generators are a quarter model, cf. comm.go
	planner := newCohortPlanner(algo, selRNG, n, k, churn)
	ck := cfg.Checkpoint
	if ck.Active() {
		if _, ok := algo.(RoundCheckpointer); !ok {
			return nil, fmt.Errorf("fl: Run: algorithm %s does not support round checkpoints", algo.Name())
		}
	}
	var crashes, unavailable, degraded int
	startRound := 0
	if ck.Resume {
		// Restore overwrites stream positions and engine counters; the
		// algorithm re-ran Init (consuming initRNG identically to the
		// original run) and LoadState then replaced its state wholesale.
		// Fault, churn, and adversary schedules are recomputed — they
		// are pure functions of the seed.
		snap, err := loadRunCheckpoint(ck.Path, cfg, algo, n)
		if err != nil {
			return nil, fmt.Errorf("fl: Run: %w", err)
		}
		startRound = snap.nextRound
		selRNG = tensor.RestoreRNG(snap.selState)
		dropRNG = tensor.RestoreRNG(snap.dropState)
		netRNG = tensor.RestoreRNG(snap.netState)
		planner = newCohortPlanner(algo, selRNG, n, k, churn)
		planner.next = snap.plannerNext
		planner.drawn = snap.drawn
		tr.restoreCum(snap)
		acct = Accountant{rounds: snap.acctRounds, total: snap.acctTotal}
		hist.Metrics = snap.metrics
		crashes, unavailable, degraded = snap.crashes, snap.unavailable, snap.degraded
	}

	for r := startRound; r < cfg.Rounds; r++ {
		selected := planner.Take(r)
		if churn.Active() {
			// Slots the planner padded or marked -1 are churn losses;
			// dropout and crash marking below add their own.
			for _, ci := range selected {
				if ci < 0 {
					unavailable++
				}
			}
		}
		if cfg.DropoutRate > 0 {
			for i := range selected {
				if dropRNG.Float64() < cfg.DropoutRate {
					selected[i] = -1
				}
			}
		}
		if faults.Active() && cfg.Faults.CrashRate > 0 {
			// A crash consumes the activation but contributes nothing —
			// marked exactly like a dropout so every algorithm already
			// tolerates it.
			for i, ci := range selected {
				if ci >= 0 && faults.Crashes(r, ci) {
					selected[i] = -1
					crashes++
				}
			}
		}
		// Hand the next rounds' planned cohorts to the background pool
		// before training starts, so their shards synthesize while this
		// round computes. The planner draws those cohorts now, but from
		// the same selRNG positions they would occupy anyway — selection
		// is a dedicated stream, so early draws are invisible. Prefetch
		// enqueues pre-dropout plans (a dropped client's warm shard is
		// merely unused) and copies the ids before returning, so the
		// round loop's later in-place dropout marking never races it.
		if prefetch != nil {
			for a := 1; a <= cfg.PrefetchRounds && r+a < cfg.Rounds; a++ {
				if ids := planner.Ahead(r + a); ids != nil {
					prefetch.Prefetch(ids)
				}
			}
		}
		tr.BeginRound(r, selected, netRNG.Split())
		if err := algo.Round(r, selected); err != nil {
			return nil, fmt.Errorf("fl: Run: %s round %d: %w", algo.Name(), r, err)
		}
		if cfg.MinUploads > 0 && tr.RoundUploaders() < cfg.MinUploads {
			// The algorithms' reduce paths kept the current model (see
			// ReduceUploads quorum gating); the engine records that the
			// round degraded rather than aggregated.
			degraded++
		}
		tr.EndRound()
		acct.Record(algo.RoundComm(k))

		last := r == cfg.Rounds-1
		if last || (cfg.EvalEvery > 0 && (r+1)%cfg.EvalEvery == 0) {
			acc, loss, err := evaluate(env.Model, algo.Global(), env.Fed.Test, 64, cfg.Allowance())
			if err != nil {
				return nil, fmt.Errorf("fl: Run: eval round %d: %w", r, err)
			}
			down, up, stragglers := tr.Totals()
			retries, faultDrops, dups, stalls := tr.FaultTotals()
			hist.Metrics = append(hist.Metrics, RoundMetric{
				Round:               r + 1,
				TestAcc:             acc,
				TestLoss:            loss,
				CumModelEquivalents: acct.Total().TotalModelEquivalents(genFrac),
				CumBytesDown:        down,
				CumBytesUp:          up,
				CumStragglers:       stragglers,
				CumRetries:          retries,
				CumFaultDrops:       faultDrops,
				CumDuplicates:       dups,
				CumStalls:           stalls,
				CumCrashes:          crashes,
				CumUnavailable:      unavailable,
				CumDegraded:         degraded,
			})
		}

		if ck.Active() {
			stopHere := ck.StopAfterRound > 0 && r+1 == ck.StopAfterRound
			if stopHere || (ck.Every > 0 && (r+1)%ck.Every == 0) {
				snap := &runSnapshot{
					nextRound:   r + 1,
					selState:    selRNG.State(),
					plannerNext: planner.next,
					drawn:       planner.drawn,
					dropState:   dropRNG.State(),
					netState:    netRNG.State(),
					crashes:     crashes,
					unavailable: unavailable,
					degraded:    degraded,
					acctRounds:  acct.rounds,
					acctTotal:   acct.total,
					metrics:     hist.Metrics,
				}
				tr.captureCum(snap)
				if err := saveRunCheckpoint(ck.Path, cfg, algo, n, snap); err != nil {
					return nil, fmt.Errorf("fl: Run: checkpoint round %d: %w", r+1, err)
				}
			}
			if stopHere {
				finishHistory(hist, &acct, tr, crashes, unavailable, degraded)
				return hist, ErrStopped
			}
		}
	}
	finishHistory(hist, &acct, tr, crashes, unavailable, degraded)
	return hist, nil
}

// finishHistory folds the run totals into the history record.
func finishHistory(hist *History, acct *Accountant, tr *Transport, crashes, unavailable, degraded int) {
	hist.Comm = acct.Total()
	hist.BytesDown, hist.BytesUp, hist.Stragglers = tr.Totals()
	hist.Retries, hist.FaultDrops, hist.Duplicates, hist.Stalls = tr.FaultTotals()
	hist.Crashes = crashes
	hist.Unavailable = unavailable
	hist.Degraded = degraded
}

// selectClients asks the algorithm first and falls back to uniform random
// selection without replacement. An active churn plan biases selection to
// available clients: the uniform path draws its one Perm(n) as always
// (the stream's shape never depends on churn) and then takes the first k
// available ids, padding with -1 when fewer exist; a Selector's
// self-chosen cohort has its offline members marked -1 after the fact.
func selectClients(algo Algorithm, r int, rng *tensor.RNG, n, k int, churn *ChurnPlan) []int {
	if s, ok := algo.(Selector); ok {
		sel := s.SelectClients(r, rng, n, k)
		if len(sel) == k {
			if churn.Active() {
				for i, id := range sel {
					if id >= 0 && !churn.Available(r, id) {
						sel[i] = -1
					}
				}
			}
			return sel
		}
	}
	perm := rng.Perm(n)
	if !churn.Active() {
		return perm[:k]
	}
	out := make([]int, 0, k)
	for _, id := range perm {
		if len(out) == k {
			break
		}
		if churn.Available(r, id) {
			out = append(out, id)
		}
	}
	for len(out) < k {
		out = append(out, -1)
	}
	return out
}
