package fl

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// randUploads builds k uploads of length n with weights.
func randUploads(rng *tensor.RNG, k, n int) ([]nn.ParamVector, []float64) {
	ups := make([]nn.ParamVector, k)
	ws := make([]float64, k)
	for i := range ups {
		v := make(nn.ParamVector, n)
		for j := range v {
			v[j] = rng.Normal(0, 1)
		}
		ups[i] = v
		ws[i] = float64(1 + rng.Intn(20))
	}
	return ups, ws
}

// allReducers lists this package's rules plus the nil legacy path.
func allReducers() []Reducer {
	return []Reducer{
		nil, // legacy weighted-mean path
		MeanReducer{},
		&TrimmedMeanReducer{},
		&TrimmedMeanReducer{Frac: 0.4},
		&MedianReducer{},
	}
}

func reducerLabel(r Reducer) string {
	if r == nil {
		return "nil"
	}
	return r.Name()
}

func TestReduceUploadsNilMatchesWeightedMean(t *testing.T) {
	rng := tensor.NewRNG(1)
	ups, ws := randUploads(rng, 7, 129)
	got, err := ReduceUploads(nil, ups, ws)
	if err != nil {
		t.Fatal(err)
	}
	want := nn.WeightedMeanVectors(ups, ws)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil reducer must be bit-identical to nn.WeightedMeanVectors")
	}
	// And the explicit MeanReducer must match the nil path bit-for-bit.
	got2, err := ReduceUploads(MeanReducer{}, ups, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, got2) {
		t.Fatal("MeanReducer must be bit-identical to the nil legacy path")
	}
}

// TestReducersPermutationInvariant: shuffling the clients (uploads and
// weights together) must not change the aggregate. Rank-based rules sort
// each column, so they are bitwise invariant; the mean sums in input
// order, so it gets a small tolerance.
func TestReducersPermutationInvariant(t *testing.T) {
	rng := tensor.NewRNG(2)
	ups, ws := randUploads(rng, 9, 200)
	perm := rng.Perm(len(ups))
	permUps := make([]nn.ParamVector, len(ups))
	permWs := make([]float64, len(ws))
	for i, p := range perm {
		permUps[i] = ups[p]
		permWs[i] = ws[p]
	}
	for _, r := range allReducers() {
		a, err := ReduceUploads(r, ups, ws)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReduceUploads(r, permUps, permWs)
		if err != nil {
			t.Fatal(err)
		}
		exact := true
		if r == nil {
			exact = false
		} else if _, isMean := r.(MeanReducer); isMean {
			exact = false
		}
		for j := range a {
			if exact && a[j] != b[j] {
				t.Fatalf("%s: coordinate %d changed under permutation: %v vs %v",
					reducerLabel(r), j, a[j], b[j])
			}
			if !exact && math.Abs(a[j]-b[j]) > 1e-12 {
				t.Fatalf("%s: coordinate %d moved more than rounding under permutation: %v vs %v",
					reducerLabel(r), j, a[j], b[j])
			}
		}
	}
}

// TestReducersWorkerCountInvariant: the coordinate-wise fan-out must be
// bit-identical at every worker cap.
func TestReducersWorkerCountInvariant(t *testing.T) {
	rng := tensor.NewRNG(3)
	ups, ws := randUploads(rng, 8, 10_000) // > reduceChunk so several chunks exist
	for _, mk := range []func(w Workers) Reducer{
		func(w Workers) Reducer { return &TrimmedMeanReducer{W: w} },
		func(w Workers) Reducer { return &MedianReducer{W: w} },
	} {
		serial, err := ReduceUploads(mk(Limit(1)), ups, ws)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := ReduceUploads(mk(Limit(8)), ups, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, wide) {
			t.Fatalf("%s: workers=1 vs workers=8 differ", mk(Limit(0)).Name())
		}
	}
}

// TestReducerBreakdown: with f < n/2 scaled-gradient attackers, the
// robust rules stay near the honest centroid while the mean is dragged
// arbitrarily far.
func TestReducerBreakdown(t *testing.T) {
	rng := tensor.NewRNG(4)
	const k, f, n = 11, 4, 64 // f < k/2
	centroid := make(nn.ParamVector, n)
	for j := range centroid {
		centroid[j] = rng.Normal(0, 1)
	}
	ups := make([]nn.ParamVector, k)
	for i := range ups {
		v := make(nn.ParamVector, n)
		if i < f { // attacker: huge scaled opposite of the centroid
			for j := range v {
				v[j] = -1000 * centroid[j]
			}
		} else { // honest: centroid plus small noise
			for j := range v {
				v[j] = centroid[j] + rng.Normal(0, 0.01)
			}
		}
		ups[i] = v
	}
	dist := func(r Reducer) float64 {
		out, err := ReduceUploads(r, ups, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Sqrt(out.DistanceSq(centroid))
	}
	honestScale := math.Sqrt(centroid.NormSq())
	meanD := dist(MeanReducer{})
	if meanD < 10*honestScale {
		t.Fatalf("mean should be dragged far by %d/%d scaled attackers, distance %v (centroid norm %v)",
			f, k, meanD, honestScale)
	}
	for _, r := range []Reducer{&TrimmedMeanReducer{Frac: 0.4}, &MedianReducer{}} {
		if d := dist(r); d > 0.1*honestScale {
			t.Fatalf("%s should recover the honest centroid with %d/%d attackers, distance %v (centroid norm %v)",
				r.Name(), f, k, d, honestScale)
		}
	}
}

func TestReduceUploadsDropsNonFinite(t *testing.T) {
	rng := tensor.NewRNG(5)
	ups, ws := randUploads(rng, 5, 30)
	clean, err := ReduceUploads(nil, ups[1:], ws[1:])
	if err != nil {
		t.Fatal(err)
	}
	// Poison upload 0 with NaN: the screen must drop exactly it, leaving
	// the aggregate of the remaining four.
	ups[0][7] = math.NaN()
	got, err := ReduceUploads(nil, ups, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatal("NaN upload must be dropped, leaving the clean aggregate")
	}
	for _, r := range allReducers() {
		out, err := ReduceUploads(r, ups, ws)
		if err != nil {
			t.Fatalf("%s: %v", reducerLabel(r), err)
		}
		if !finiteVector(out) {
			t.Fatalf("%s: poisoned upload leaked non-finite values into the aggregate", reducerLabel(r))
		}
	}
	// ±Inf is screened the same way.
	ups[2][0] = math.Inf(1)
	if out, err := ReduceUploads(&MedianReducer{}, ups, ws); err != nil || !finiteVector(out) {
		t.Fatalf("Inf upload must be dropped: out=%v err=%v", out, err)
	}
	// All-poisoned rounds surface ErrNoFiniteUploads, never a NaN model.
	for i := range ups {
		ups[i][0] = math.Inf(-1)
	}
	if _, err := ReduceUploads(nil, ups, ws); !errors.Is(err, ErrNoFiniteUploads) {
		t.Fatalf("want ErrNoFiniteUploads, got %v", err)
	}
}

func TestReduceUploadsRejectsMalformed(t *testing.T) {
	rng := tensor.NewRNG(6)
	ups, ws := randUploads(rng, 4, 16)
	if _, err := ReduceUploads(nil, nil, nil); err == nil {
		t.Fatal("empty upload list must error")
	}
	ragged := append([]nn.ParamVector(nil), ups...)
	ragged[2] = ragged[2][:10]
	if _, err := ReduceUploads(nil, ragged, ws); err == nil {
		t.Fatal("ragged upload lengths must error")
	}
	if _, err := ReduceUploads(nil, ups, ws[:2]); err == nil {
		t.Fatal("weight-count mismatch must error")
	}
	bad := append([]float64(nil), ws...)
	bad[1] = -3
	if _, err := ReduceUploads(nil, ups, bad); err == nil {
		t.Fatal("negative weight must error")
	}
	bad[1] = math.NaN()
	if _, err := ReduceUploads(nil, ups, bad); err == nil {
		t.Fatal("NaN weight must error")
	}
}

func TestReducerByName(t *testing.T) {
	for name, want := range map[string]string{
		"":            "mean",
		"mean":        "mean",
		"median":      "median",
		"trimmed":     "trimmed:0.25",
		"trimmed:0.4": "trimmed:0.40",
	} {
		r, err := ReducerByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if r.Name() != want {
			t.Fatalf("%q resolved to %q, want %q", name, r.Name(), want)
		}
	}
	for _, name := range []string{"bogus", "trimmed:0.6", "trimmed:-1", "trimmed:x"} {
		if _, err := ReducerByName(name); err == nil {
			t.Fatalf("%q should not resolve", name)
		}
	}
}

// FuzzReducer hammers every rule with arbitrary client counts, vector
// lengths and raw bit patterns (including NaN/Inf): ReduceUploads must
// never panic, and on success must return a vector of the model
// dimension.
func FuzzReducer(f *testing.F) {
	f.Add(uint8(3), uint8(10), []byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add(uint8(1), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f}, false) // NaN bits
	f.Add(uint8(9), uint8(33), []byte{}, true)
	f.Fuzz(func(t *testing.T, kRaw, nRaw uint8, raw []byte, ragged bool) {
		k := 1 + int(kRaw)%16
		n := 1 + int(nRaw)%128
		ups := make([]nn.ParamVector, k)
		ws := make([]float64, k)
		bi := 0
		nextF64 := func() float64 {
			var u uint64
			for b := 0; b < 8; b++ {
				if len(raw) > 0 {
					u = u<<8 | uint64(raw[bi%len(raw)])
					bi++
				}
			}
			return math.Float64frombits(u)
		}
		for i := range ups {
			ln := n
			if ragged && i == k-1 && k > 1 {
				ln = n/2 + 1
			}
			v := make(nn.ParamVector, ln)
			for j := range v {
				v[j] = nextF64()
			}
			ups[i] = v
			ws[i] = float64(1 + i)
		}
		for _, r := range allReducers() {
			out, err := ReduceUploads(r, ups, ws)
			if err != nil {
				continue // malformed or fully poisoned input: error is the contract
			}
			if len(out) != n {
				t.Fatalf("%s: output length %d, want %d", reducerLabel(r), len(out), n)
			}
		}
	})
}
