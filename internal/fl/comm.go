package fl

import "fmt"

// CommProfile counts one round's communication payloads in units of
// model-sized objects, mirroring the paper's Table I analysis. FedAvg,
// FedProx, CluSamp and FedCross all move 2K models per round; SCAFFOLD
// adds 2K control variates (model-sized), FedGen adds K generator
// downloads.
type CommProfile struct {
	// ModelsDown / ModelsUp count model payloads per round.
	ModelsDown, ModelsUp int
	// VarsDown / VarsUp count model-sized auxiliary variables (SCAFFOLD's
	// control variates).
	VarsDown, VarsUp int
	// GeneratorsDown counts generator payloads (FedGen).
	GeneratorsDown int
}

// TotalModelEquivalents returns the round's traffic in model-sized units,
// counting a generator as genFrac of a model (FedGen's generator is
// smaller than the task model; the paper calls its overhead "Medium").
func (p CommProfile) TotalModelEquivalents(genFrac float64) float64 {
	return float64(p.ModelsDown+p.ModelsUp+p.VarsDown+p.VarsUp) + genFrac*float64(p.GeneratorsDown)
}

// Bytes converts the profile to bytes given the encoded model and
// generator sizes.
func (p CommProfile) Bytes(modelBytes, generatorBytes int64) int64 {
	return int64(p.ModelsDown+p.ModelsUp+p.VarsDown+p.VarsUp)*modelBytes +
		int64(p.GeneratorsDown)*generatorBytes
}

// OverheadClass buckets the profile the way Table I does (Low / Medium /
// High) relative to the plain-FedAvg 2K-models baseline.
func (p CommProfile) OverheadClass() string {
	base := p.ModelsDown + p.ModelsUp
	extraVars := p.VarsDown + p.VarsUp
	switch {
	case extraVars >= base:
		return "High"
	case extraVars > 0 || p.GeneratorsDown > 0:
		return "Medium"
	default:
		return "Low"
	}
}

// String renders the profile compactly for reports.
func (p CommProfile) String() string {
	return fmt.Sprintf("down=%dm+%dv+%dg up=%dm+%dv", p.ModelsDown, p.VarsDown, p.GeneratorsDown, p.ModelsUp, p.VarsUp)
}

// Accountant accumulates communication over a run.
type Accountant struct {
	rounds int
	total  CommProfile
}

// Record adds one round's profile.
func (a *Accountant) Record(p CommProfile) {
	a.rounds++
	a.total.ModelsDown += p.ModelsDown
	a.total.ModelsUp += p.ModelsUp
	a.total.VarsDown += p.VarsDown
	a.total.VarsUp += p.VarsUp
	a.total.GeneratorsDown += p.GeneratorsDown
}

// Total returns the accumulated profile.
func (a *Accountant) Total() CommProfile { return a.total }

// Rounds returns how many rounds were recorded.
func (a *Accountant) Rounds() int { return a.rounds }
