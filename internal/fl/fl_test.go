package fl

import (
	"fmt"
	"math"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func testEnv(seed int64, clients int) *Env {
	cfg := data.VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 40, TestPerClass: 15,
		ModesPerClass: 2, Sep: 1.2, Noise: 0.3, Seed: seed,
	}
	fed := data.BuildVision(cfg, clients, data.Heterogeneity{IID: true}, seed+1)
	return &Env{Fed: fed, Model: models.MLP(12, 16, 4)}
}

func TestTrainLocalImproves(t *testing.T) {
	env := testEnv(1, 4)
	rng := tensor.NewRNG(2)
	init := nn.FlattenParams(env.Model.New(rng).Params())
	shard := env.Fed.Clients[0]

	spec := LocalSpec{Init: init, Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.5}
	res, err := TrainLocal(env.Model, shard, spec, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Samples != shard.Len() {
		t.Fatalf("result %+v", res)
	}
	accBefore, _, _ := Evaluate(env.Model, init, shard, 32, Limit(0))
	accAfter, _, _ := Evaluate(env.Model, res.Params, shard, 32, Limit(0))
	if accAfter <= accBefore {
		t.Fatalf("local training should improve local accuracy: %v -> %v", accBefore, accAfter)
	}
	// Init vector must not be mutated.
	init2 := nn.FlattenParams(env.Model.New(tensor.NewRNG(2)).Params())
	for i := range init {
		if init[i] != init2[i] {
			t.Fatal("TrainLocal mutated the init vector")
		}
	}
}

func TestTrainLocalProxPullsTowardRef(t *testing.T) {
	env := testEnv(3, 2)
	rng := tensor.NewRNG(4)
	init := nn.FlattenParams(env.Model.New(rng).Params())
	shard := env.Fed.Clients[0]

	free, err := TrainLocal(env.Model, shard, LocalSpec{Init: init, Epochs: 5, BatchSize: 16, LR: 0.05, Momentum: 0}, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	prox, err := TrainLocal(env.Model, shard, LocalSpec{Init: init, Epochs: 5, BatchSize: 16, LR: 0.05, Momentum: 0, Prox: 10, ProxRef: init}, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	dFree := init.DistanceSq(free.Params)
	dProx := init.DistanceSq(prox.Params)
	if dProx >= dFree {
		t.Fatalf("proximal term must keep params closer to ref: free %v vs prox %v", dFree, dProx)
	}
}

func TestTrainLocalGradCorrectionShiftsResult(t *testing.T) {
	env := testEnv(6, 2)
	rng := tensor.NewRNG(7)
	init := nn.FlattenParams(env.Model.New(rng).Params())
	shard := env.Fed.Clients[0]

	plain, err := TrainLocal(env.Model, shard, LocalSpec{Init: init, Epochs: 2, BatchSize: 16, LR: 0.05}, tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	corr := make(nn.ParamVector, len(init))
	for i := range corr {
		corr[i] = 0.01
	}
	corrected, err := TrainLocal(env.Model, shard, LocalSpec{Init: init, Epochs: 2, BatchSize: 16, LR: 0.05, GradCorrection: corr}, tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Params.DistanceSq(corrected.Params) == 0 {
		t.Fatal("gradient correction should change the trajectory")
	}
}

func TestTrainLocalErrors(t *testing.T) {
	env := testEnv(9, 2)
	rng := tensor.NewRNG(10)
	init := nn.FlattenParams(env.Model.New(rng).Params())
	empty := &data.Dataset{X: tensor.Zeros(0, 12), Classes: 4}
	if _, err := TrainLocal(env.Model, empty, LocalSpec{Init: init, Epochs: 1, BatchSize: 8, LR: 0.1}, rng); err == nil {
		t.Fatal("expected error for empty shard")
	}
	if _, err := TrainLocal(env.Model, env.Fed.Clients[0], LocalSpec{Init: init[:5], Epochs: 1, BatchSize: 8, LR: 0.1}, rng); err == nil {
		t.Fatal("expected error for wrong init length")
	}
	bad := LocalSpec{Init: init, Epochs: 1, BatchSize: 8, LR: 0.1, Prox: 1, ProxRef: init[:3]}
	if _, err := TrainLocal(env.Model, env.Fed.Clients[0], bad, rng); err == nil {
		t.Fatal("expected error for wrong prox-ref length")
	}
}

func TestEvaluateBatchIndependence(t *testing.T) {
	env := testEnv(11, 2)
	vec := nn.FlattenParams(env.Model.New(tensor.NewRNG(1)).Params())
	a1, l1, err := Evaluate(env.Model, vec, env.Fed.Test, 7, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	a2, l2, err := Evaluate(env.Model, vec, env.Fed.Test, 64, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-a2) > 1e-12 || math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("evaluation must not depend on batch size: %v/%v vs %v/%v", a1, l1, a2, l2)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.ClientsPerRound = -1 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Momentum = 1 },
		func(c *Config) { c.DropoutRate = 1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestCommProfile(t *testing.T) {
	fedavg := CommProfile{ModelsDown: 10, ModelsUp: 10}
	if fedavg.OverheadClass() != "Low" {
		t.Fatalf("fedavg class %q", fedavg.OverheadClass())
	}
	scaffold := CommProfile{ModelsDown: 10, ModelsUp: 10, VarsDown: 10, VarsUp: 10}
	if scaffold.OverheadClass() != "High" {
		t.Fatalf("scaffold class %q", scaffold.OverheadClass())
	}
	fedgen := CommProfile{ModelsDown: 10, ModelsUp: 10, GeneratorsDown: 10}
	if fedgen.OverheadClass() != "Medium" {
		t.Fatalf("fedgen class %q", fedgen.OverheadClass())
	}
	if got := fedavg.TotalModelEquivalents(0.25); got != 20 {
		t.Fatalf("fedavg equivalents %v", got)
	}
	if got := fedgen.TotalModelEquivalents(0.25); got != 22.5 {
		t.Fatalf("fedgen equivalents %v", got)
	}
	if got := scaffold.Bytes(100, 25); got != 4000 {
		t.Fatalf("scaffold bytes %v", got)
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	a.Record(CommProfile{ModelsDown: 2, ModelsUp: 2})
	a.Record(CommProfile{ModelsDown: 2, ModelsUp: 2, GeneratorsDown: 1})
	if a.Rounds() != 2 {
		t.Fatalf("rounds %d", a.Rounds())
	}
	tot := a.Total()
	if tot.ModelsDown != 4 || tot.GeneratorsDown != 1 {
		t.Fatalf("total %+v", tot)
	}
}

// stubAlgo is a minimal FedAvg-like algorithm for Runner tests.
type stubAlgo struct {
	env      *Env
	cfg      Config
	rng      *tensor.RNG
	global   nn.ParamVector
	rounds   []([]int)
	failInit bool
}

func (s *stubAlgo) Name() string     { return "stub" }
func (s *stubAlgo) Category() string { return "Test" }

func (s *stubAlgo) Init(env *Env, cfg Config, rng *tensor.RNG) error {
	if s.failInit {
		return fmt.Errorf("boom")
	}
	s.env, s.cfg, s.rng = env, cfg, rng
	s.global = nn.FlattenParams(env.Model.New(rng).Params())
	return nil
}

func (s *stubAlgo) Round(r int, selected []int) error {
	s.rounds = append(s.rounds, append([]int(nil), selected...))
	var got []nn.ParamVector
	for _, ci := range selected {
		if ci < 0 {
			continue
		}
		res, err := TrainLocal(s.env.Model, s.env.Fed.Clients[ci], LocalSpec{
			Init: s.global, Epochs: s.cfg.LocalEpochs, BatchSize: s.cfg.BatchSize,
			LR: s.cfg.LR, Momentum: s.cfg.Momentum,
		}, s.rng.Split())
		if err != nil {
			return err
		}
		got = append(got, res.Params)
	}
	if len(got) > 0 {
		s.global = nn.MeanVectors(got)
	}
	return nil
}

func (s *stubAlgo) Global() nn.ParamVector { return s.global }

func (s *stubAlgo) RoundComm(k int) CommProfile {
	return CommProfile{ModelsDown: k, ModelsUp: k}
}

func TestRunEndToEnd(t *testing.T) {
	env := testEnv(12, 6)
	cfg := Config{Rounds: 6, ClientsPerRound: 3, LocalEpochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: 3}
	algo := &stubAlgo{}
	hist, err := Run(algo, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Metrics) != 3 {
		t.Fatalf("expected 3 evals, got %d", len(hist.Metrics))
	}
	if hist.Final().Round != 6 {
		t.Fatalf("final round %d", hist.Final().Round)
	}
	if hist.Comm.ModelsDown != 6*3 {
		t.Fatalf("comm %+v", hist.Comm)
	}
	// Selection picks K distinct clients.
	for _, sel := range algo.rounds {
		if len(sel) != 3 {
			t.Fatalf("selected %d clients", len(sel))
		}
		seen := map[int]bool{}
		for _, c := range sel {
			if c < 0 || c >= 6 || seen[c] {
				t.Fatalf("bad selection %v", sel)
			}
			seen[c] = true
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	env := testEnv(13, 4)
	cfg := Config{Rounds: 3, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Momentum: 0, Seed: 7}
	h1, err := Run(&stubAlgo{}, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(&stubAlgo{}, testEnv(13, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Final().TestAcc != h2.Final().TestAcc {
		t.Fatalf("same seed must reproduce: %v vs %v", h1.Final().TestAcc, h2.Final().TestAcc)
	}
}

func TestRunWithDropout(t *testing.T) {
	env := testEnv(14, 6)
	cfg := Config{Rounds: 4, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Momentum: 0, Seed: 5, DropoutRate: 0.5}
	algo := &stubAlgo{}
	if _, err := Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, sel := range algo.rounds {
		for _, c := range sel {
			if c == -1 {
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Fatal("expected some dropped clients at 50% dropout")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	env := testEnv(15, 3)
	cfg := Config{Rounds: 2, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Seed: 1}
	if _, err := Run(&stubAlgo{failInit: true}, env, cfg); err == nil {
		t.Fatal("expected init error to propagate")
	}
	bad := cfg
	bad.Rounds = 0
	if _, err := Run(&stubAlgo{}, env, bad); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{Metrics: []RoundMetric{
		{Round: 1, TestAcc: 0.3},
		{Round: 2, TestAcc: 0.6},
		{Round: 3, TestAcc: 0.5},
	}}
	if h.BestAcc() != 0.6 {
		t.Fatalf("BestAcc %v", h.BestAcc())
	}
	if h.RoundsToAcc(0.55) != 2 {
		t.Fatalf("RoundsToAcc %d", h.RoundsToAcc(0.55))
	}
	if h.RoundsToAcc(0.9) != -1 {
		t.Fatalf("RoundsToAcc unreachable = %d", h.RoundsToAcc(0.9))
	}
	if h.Final().Round != 3 {
		t.Fatalf("Final %+v", h.Final())
	}
	empty := &History{}
	if empty.Final().Round != 0 || empty.BestAcc() != 0 {
		t.Fatal("empty history helpers")
	}
}
