package fl

import (
	"strings"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 64} {
		n := 100
		hits := make([]int, n) // distinct indices, no synchronisation needed
		parallelFor(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	parallelFor(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

// trainJobs builds identically-seeded job lists so serial and parallel
// TrainAll runs can be compared bit-for-bit.
func trainJobs(env *Env, init nn.ParamVector, seed int64) []LocalJob {
	rng := tensor.NewRNG(seed)
	jobs := make([]LocalJob, 0, env.NumClients())
	for ci := 0; ci < env.NumClients(); ci++ {
		jobs = append(jobs, LocalJob{
			Client: ci,
			Spec:   LocalSpec{Init: init, Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.5},
			RNG:    rng.Split(),
		})
	}
	return jobs
}

func TestTrainAllParallelismInvariant(t *testing.T) {
	env := testEnv(21, 6)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(22)).Params())

	serial, err := TrainAll(env, trainJobs(env, init, 23), Limit(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TrainAll(env, trainJobs(env, init, 23), Limit(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Steps != parallel[i].Steps || serial[i].MeanLoss != parallel[i].MeanLoss {
			t.Fatalf("job %d metadata differs: %+v vs %+v", i, serial[i], parallel[i])
		}
		for j := range serial[i].Params {
			if serial[i].Params[j] != parallel[i].Params[j] {
				t.Fatalf("job %d param %d differs: %v vs %v", i, j, serial[i].Params[j], parallel[i].Params[j])
			}
		}
	}
}

func TestTrainAllShardOverride(t *testing.T) {
	env := testEnv(31, 3)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(32)).Params())
	override := env.Fed.Clients[2]
	jobs := []LocalJob{{
		Client: 0, // must be ignored in favour of Shard
		Shard:  override,
		Spec:   LocalSpec{Init: init, Epochs: 1, BatchSize: 16, LR: 0.05},
		RNG:    tensor.NewRNG(33),
	}}
	results, err := TrainAll(env, jobs, Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Samples != override.Len() {
		t.Fatalf("shard override ignored: trained on %d samples, want %d", results[0].Samples, override.Len())
	}
}

func TestTrainAllReportsFirstErrorByJobIndex(t *testing.T) {
	env := testEnv(41, 3)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(42)).Params())
	empty := &data.Dataset{X: tensor.Zeros(0, 12), Classes: 4}
	jobs := []LocalJob{
		{Client: 0, Spec: LocalSpec{Init: init, Epochs: 1, BatchSize: 16, LR: 0.05}, RNG: tensor.NewRNG(43)},
		{Client: 1, Shard: empty, Spec: LocalSpec{Init: init, Epochs: 1, BatchSize: 16, LR: 0.05}, RNG: tensor.NewRNG(44)},
	}
	_, err := TrainAll(env, jobs, Limit(4))
	if err == nil {
		t.Fatal("expected error from the empty shard")
	}
	if !strings.Contains(err.Error(), "client 1") {
		t.Fatalf("error should name the failing client: %v", err)
	}
}

func TestEvaluateWorkerInvariant(t *testing.T) {
	env := testEnv(51, 2)
	vec := nn.FlattenParams(env.Model.New(tensor.NewRNG(52)).Params())
	accSerial, lossSerial, err := evaluate(env.Model, vec, env.Fed.Test, 7, Limit(1))
	if err != nil {
		t.Fatal(err)
	}
	accPar, lossPar, err := evaluate(env.Model, vec, env.Fed.Test, 7, Limit(8))
	if err != nil {
		t.Fatal(err)
	}
	if accSerial != accPar || lossSerial != lossPar {
		t.Fatalf("evaluate differs across worker counts: (%v,%v) vs (%v,%v)",
			accSerial, lossSerial, accPar, lossPar)
	}
}
