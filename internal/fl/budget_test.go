package fl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// gauge tracks the peak of a concurrently incremented counter.
type gauge struct {
	cur, peak atomic.Int64
}

func (g *gauge) enter() {
	v := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (g *gauge) exit() { g.cur.Add(-1) }

func TestWorkerBudgetTokens(t *testing.T) {
	b := NewWorkerBudget(3)
	if b.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", b.Cap())
	}
	if got := b.TryAcquire(5); got != 3 {
		t.Fatalf("TryAcquire(5) on a full budget = %d, want 3", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on a drained budget = %d, want 0", got)
	}
	b.ReleaseN(2)
	if got := b.TryAcquire(5); got != 2 {
		t.Fatalf("TryAcquire after ReleaseN(2) = %d, want 2", got)
	}
	b.ReleaseN(3)

	b.Acquire() // blocking path with a token free
	b.Release()

	var nilBudget *WorkerBudget
	nilBudget.Acquire() // all nil methods are no-ops / full grants
	nilBudget.Release()
	if got := nilBudget.TryAcquire(7); got != 7 {
		t.Fatalf("nil TryAcquire = %d, want full grant", got)
	}
	nilBudget.ReleaseN(7)
	if nilBudget.Cap() != 0 {
		t.Fatalf("nil Cap = %d", nilBudget.Cap())
	}
	if NewWorkerBudget(0).Cap() < 1 {
		t.Fatal("default budget must have at least one token")
	}
}

// TestWorkerBudgetArbitration pins the scheduler/round arbitration
// invariant: with C cells each holding a base token and fanning their
// inner loops out through the same budget, the number of live workers
// never exceeds the budget's capacity — however greedy the inner
// allowances are.
func TestWorkerBudgetArbitration(t *testing.T) {
	const budgetCap = 3
	const cells = 6
	b := NewWorkerBudget(budgetCap)
	var g gauge
	var wg sync.WaitGroup
	wg.Add(cells)
	for c := 0; c < cells; c++ {
		go func() {
			defer wg.Done()
			b.Acquire() // the cell's base token
			defer b.Release()
			// Inner fan-out asks for far more workers than the budget
			// holds; whatever is granted plus the inline worker must stay
			// within the cap.
			parallelForWorker(32, Workers{Max: 16, Budget: b}, func(_, i int) {
				g.enter()
				time.Sleep(200 * time.Microsecond)
				g.exit()
			})
		}()
	}
	wg.Wait()
	if peak := g.peak.Load(); peak > budgetCap {
		t.Fatalf("peak live workers %d exceeds budget %d", peak, budgetCap)
	}
	if got := b.TryAcquire(budgetCap + 1); got != budgetCap {
		t.Fatalf("budget leaked tokens: %d free of %d after all sections ended", got, budgetCap)
	}
	b.ReleaseN(budgetCap)
}

// TestParallelForErrFastForward pins the failure path: the lowest-index
// error among the iterations that ran wins, and iterations that were not
// yet claimed when the failure hit are skipped rather than spun through a
// claim-and-skip pass.
func TestParallelForErrFastForward(t *testing.T) {
	const n = 100000
	var ran atomic.Int64
	boom := errors.New("boom")
	err := parallelForErr(n, Limit(4), func(i int) error {
		ran.Add(1)
		if i == 3 {
			return fmt.Errorf("iteration %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// 4 workers, failure at the 4th claimed iteration: almost everything
	// must have been skipped. The bound is loose (in-flight iterations
	// finish, and claims race the fast-forward) but far below n.
	if got := ran.Load(); got > n/10 {
		t.Fatalf("ran %d of %d iterations after an early failure", got, n)
	}

	// Lowest index wins even when a later iteration fails first. A barrier
	// makes every iteration in-flight before any failure, so all of them
	// run to completion and the minimum failing index is deterministic.
	var entered sync.WaitGroup
	entered.Add(8)
	err = parallelForErr(8, Limit(8), func(i int) error {
		entered.Done()
		entered.Wait()
		if i >= 6 {
			return fmt.Errorf("fail-%d", i)
		}
		time.Sleep(2 * time.Millisecond)
		if i == 2 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("err = %v, want fail-2 (lowest failing index that ran)", err)
	}

	// Serial path stops at the first error without touching the rest.
	var serialRan int
	err = parallelForErr(10, Limit(1), func(i int) error {
		serialRan++
		if i == 4 {
			return errors.New("serial stop")
		}
		return nil
	})
	if err == nil || serialRan != 5 {
		t.Fatalf("serial: ran %d (err %v), want 5 with error", serialRan, err)
	}
}

// TestTrainAllBudgeted pins that a budgeted TrainAll still produces
// results bit-identical to the unbudgeted serial run — tokens change the
// fan-out, never the outcome.
func TestTrainAllBudgeted(t *testing.T) {
	env := testEnv(31, 4)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(1)).Params())
	serial, err := TrainAll(env, trainJobs(env, init, 23), Limit(1))
	if err != nil {
		t.Fatal(err)
	}
	b := NewWorkerBudget(2)
	b.Acquire() // the caller's base token, as under the scheduler
	defer b.Release()
	budgeted, err := TrainAll(env, trainJobs(env, init, 23), Workers{Max: 8, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(budgeted) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(budgeted))
	}
	for i := range serial {
		for j := range serial[i].Params {
			if serial[i].Params[j] != budgeted[i].Params[j] {
				t.Fatalf("job %d: budgeted params differ from serial at %d", i, j)
			}
		}
	}
}
