package fl

import "runtime"

// WorkerBudget is a token pool bounding the total number of live worker
// goroutines across every simulation that shares it — the arbitration
// layer between the experiment scheduler (which runs many grid cells
// concurrently) and each cell's inner training/evaluation fan-out.
//
// The protocol has two tiers:
//
//   - Base token (Acquire/Release, blocking): held for the whole lifetime
//     of a unit of work that is entitled to make progress — the scheduler
//     acquires one per running grid cell. The base token covers the one
//     inline worker every parallel section is always allowed, which is
//     what makes the scheme deadlock-free: no section ever blocks waiting
//     for fan-out tokens.
//   - Fan-out tokens (TryAcquire/ReleaseN, non-blocking): a parallel
//     section holding a base token asks for up to target−1 extra workers
//     and gets whatever is free right now. Busy machine ⇒ the section
//     runs serially; idle machine ⇒ it fans out to its cap.
//
// Invariant: live workers = Σ over sections (1 base + extras) ≤ Cap.
// Tokens never influence results — only how many goroutines compute them
// (see the determinism contract on LocalJob).
//
// A nil *WorkerBudget is valid everywhere and means "unbudgeted": Acquire
// and Release are no-ops and TryAcquire grants every request, which is
// exactly the pre-scheduler behaviour of a standalone run.
type WorkerBudget struct {
	tokens chan struct{}
}

// NewWorkerBudget returns a budget of n tokens (n <= 0 means
// runtime.NumCPU(), the natural hardware bound).
func NewWorkerBudget(n int) *WorkerBudget {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	b := &WorkerBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Cap returns the budget's token count (0 for the nil unbudgeted budget).
func (b *WorkerBudget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.tokens)
}

// Acquire blocks until one base token is available. No-op on nil.
func (b *WorkerBudget) Acquire() {
	if b != nil {
		<-b.tokens
	}
}

// Release returns one base token. No-op on nil.
func (b *WorkerBudget) Release() {
	if b != nil {
		b.tokens <- struct{}{}
	}
}

// TryAcquire grabs up to k fan-out tokens without blocking and returns
// how many it got. A nil budget grants the full request.
func (b *WorkerBudget) TryAcquire(k int) int {
	if b == nil {
		return k
	}
	got := 0
	for got < k {
		select {
		case <-b.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseN returns k fan-out tokens. No-op on nil.
func (b *WorkerBudget) ReleaseN(k int) {
	if b == nil {
		return
	}
	for i := 0; i < k; i++ {
		b.tokens <- struct{}{}
	}
}

// Workers is a worker allowance for one parallel section: at most Max
// goroutines (0 means runtime.NumCPU(), matching Config.Parallelism's
// convention), leased from Budget when it is non-nil. The zero value is
// "every core, unbudgeted" — the historical behaviour of passing 0 for a
// workers count.
type Workers struct {
	Max    int
	Budget *WorkerBudget
}

// Limit returns an unbudgeted allowance of at most n workers — the
// adapter for the pre-budget `workers int` call sites.
func Limit(n int) Workers { return Workers{Max: n} }

// lease resolves the allowance for a section of n iterations: the worker
// count to run with, and how many fan-out tokens were taken (the caller
// must hand them back via w.Budget.ReleaseN once the section ends). The
// first worker is always granted — it is covered by the caller's base
// token when a budget is in play.
func (w Workers) lease(n int) (workers, leased int) {
	workers = effectiveWorkers(n, w.Max)
	if workers <= 1 || w.Budget == nil {
		return workers, 0
	}
	leased = w.Budget.TryAcquire(workers - 1)
	return 1 + leased, leased
}
