package fl

import (
	"fmt"
	"math"
)

// ChurnOptions models client availability and population drift. The zero
// value — and full availability with a static population — disables churn
// entirely, leaving histories bit-identical to the churn-free engine.
// Availability is a pure function of (plan seed, id, round): a diurnal
// sine with a per-client phase plus per-client jitter, so a fleet of
// 10^6 clients costs no per-client state at all.
type ChurnOptions struct {
	// Availability is the mean fraction of the fleet online at any time.
	// 0 or 1 disables availability filtering.
	Availability float64
	// PeriodRounds is the diurnal cycle length in rounds; 0 defaults
	// to 24.
	PeriodRounds int
	// Jitter spreads per-client availability around the mean: each
	// client's probability is scaled by a fixed (1 + u) with u uniform in
	// [-Jitter, Jitter]. 0 makes all clients identical.
	Jitter float64
	// StartFrac / EndFrac ramp the population: the live population at
	// round r is n·lerp(StartFrac, EndFrac, r/(rounds-1)), so the fleet
	// grows (Start < End) or shrinks (Start > End) mid-run. Ids at or
	// past the live population are unavailable. 0 means 1 (full
	// population).
	StartFrac, EndFrac float64
}

// Active reports whether churn can change any round's cohort.
func (o ChurnOptions) Active() bool {
	if o.Availability > 0 && o.Availability < 1 {
		return true
	}
	if o.StartFrac > 0 && o.StartFrac != 1 {
		return true
	}
	if o.EndFrac > 0 && o.EndFrac != 1 {
		return true
	}
	return false
}

// Validate reports the first problem with the options.
func (o ChurnOptions) Validate() error {
	switch {
	case o.Availability < 0 || o.Availability > 1:
		return fmt.Errorf("fl: Availability = %v, must be in [0,1]", o.Availability)
	case o.PeriodRounds < 0:
		return fmt.Errorf("fl: PeriodRounds = %d, must be non-negative", o.PeriodRounds)
	case o.Jitter < 0 || o.Jitter > 1:
		return fmt.Errorf("fl: churn Jitter = %v, must be in [0,1]", o.Jitter)
	case o.StartFrac < 0 || o.StartFrac > 1:
		return fmt.Errorf("fl: StartFrac = %v, must be in [0,1]", o.StartFrac)
	case o.EndFrac < 0 || o.EndFrac > 1:
		return fmt.Errorf("fl: EndFrac = %v, must be in [0,1]", o.EndFrac)
	}
	return nil
}

// ChurnPlan is a run's deterministic availability trace, seeded from a
// dedicated RNG split appended after every existing stream (and after the
// fault stream), so inactive churn leaves histories bit-unchanged.
type ChurnPlan struct {
	opts   ChurnOptions
	seed   int64
	n      int
	rounds int
}

// NewChurnPlan builds a plan over an n-client population and a run of
// the given length. Returns nil (inject nothing) when churn is inactive.
func NewChurnPlan(opts ChurnOptions, seed int64, n, rounds int) *ChurnPlan {
	if !opts.Active() || n <= 0 {
		return nil
	}
	return &ChurnPlan{opts: opts, seed: seed, n: n, rounds: rounds}
}

// Active reports whether the plan filters anyone (nil-safe).
func (p *ChurnPlan) Active() bool { return p != nil }

// period resolves the diurnal cycle length.
func (p *ChurnPlan) period() float64 {
	if p.opts.PeriodRounds <= 0 {
		return 24
	}
	return float64(p.opts.PeriodRounds)
}

// prob is client id's availability probability at round r: the mean
// scaled by a diurnal sine (per-client phase, so the fleet's time zones
// differ) and the client's fixed jitter level, clamped to [0,1].
func (p *ChurnPlan) prob(r, id int) float64 {
	avail := p.opts.Availability
	if avail <= 0 || avail >= 1 {
		avail = 1
	}
	phase := hash01(p.seed, 0, uint64(id), kindPhase)
	pr := avail * (1 + 0.8*math.Sin(2*math.Pi*(float64(r)/p.period()+phase)))
	if p.opts.Jitter > 0 {
		level := p.opts.Jitter * (2*hash01(p.seed, 0, uint64(id), kindLevel) - 1)
		pr *= 1 + level
	}
	return math.Max(0, math.Min(1, pr))
}

// Available reports whether client id is online at round r. Ids at or
// past the round's live population are offline by definition.
func (p *ChurnPlan) Available(r, id int) bool {
	if p == nil {
		return true
	}
	if id < 0 || id >= p.PopN(r) {
		return false
	}
	avail := p.opts.Availability
	if avail <= 0 || avail >= 1 {
		if p.opts.Jitter == 0 {
			return true // pure population ramp, no availability filtering
		}
	}
	return hash01(p.seed, uint64(r), uint64(id), kindAvail) < p.prob(r, id)
}

// PopN is the live population at round r under the Start→End ramp.
func (p *ChurnPlan) PopN(r int) int {
	if p == nil {
		return math.MaxInt
	}
	start, end := p.opts.StartFrac, p.opts.EndFrac
	if start == 0 {
		start = 1
	}
	if end == 0 {
		end = 1
	}
	frac := start
	if p.rounds > 1 {
		t := float64(r) / float64(p.rounds-1)
		if t > 1 {
			t = 1
		}
		frac = start + (end-start)*t
	}
	live := int(math.Round(frac * float64(p.n)))
	if live < 1 {
		live = 1
	}
	if live > p.n {
		live = p.n
	}
	return live
}
