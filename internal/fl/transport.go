package fl

import (
	"fmt"
	"math"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// TransportOptions selects the simulated wire a run's payloads travel
// over. The zero value — identity codec, ideal network, no deadline — is
// the reference wire: payloads pass through untouched (and uncopied), so
// histories are bit-identical to the accounting-only engine, with byte
// counters riding along for free.
type TransportOptions struct {
	// Codec names the model codec: "identity" (default), "fp16", "int8",
	// "topk" or "topk:<frac>". See nn.CodecByName.
	Codec string
	// Network names the link model: "none" (default), "fiber", "wifi",
	// "lte" or "edge". See NetworkByName.
	Network string
	// DeadlineSec is the per-round wall-clock budget per client: a client
	// whose simulated download+upload time exceeds it becomes a straggler
	// (its uploads never reach the server). 0 disables the deadline.
	DeadlineSec float64
	// Retries is how many extra upload attempts a client makes after a
	// fault-injected loss (drop/truncate/corrupt) before the server gives
	// up on it; 0 means a single attempt. Retries only matter under an
	// active FaultPlan — the fault-free wire never loses a payload.
	Retries int
	// RetryBackoffSec is the base of the deterministic exponential
	// backoff charged to the client's link clock before retry attempt a:
	// RetryBackoffSec·2^(a-1) seconds. 0 retries immediately.
	RetryBackoffSec float64
}

// Validate reports the first problem with the options.
func (o TransportOptions) Validate() error {
	if _, err := nn.CodecByName(o.Codec); err != nil {
		return err
	}
	if _, err := NetworkByName(o.Network); err != nil {
		return err
	}
	if o.DeadlineSec < 0 {
		return fmt.Errorf("fl: DeadlineSec %v negative", o.DeadlineSec)
	}
	if o.Retries < 0 {
		return fmt.Errorf("fl: Retries = %d, must be non-negative", o.Retries)
	}
	if o.RetryBackoffSec < 0 {
		return fmt.Errorf("fl: RetryBackoffSec %v negative", o.RetryBackoffSec)
	}
	return nil
}

// NetworkModel describes simulated per-client link conditions. Rates and
// latency are medians; each activated client draws lognormal multipliers
// exp(Jitter·N(0,1)) per round, so a fleet on the same model still has
// fast and slow members.
type NetworkModel struct {
	// Name labels the model in reports.
	Name string
	// DownMbps / UpMbps are median link rates in megabits per second;
	// 0 means infinite (no transfer time).
	DownMbps, UpMbps float64
	// LatencySec is the median one-way message latency.
	LatencySec float64
	// Jitter is the σ of the lognormal multiplier; 0 makes every client
	// identical.
	Jitter float64
}

// Ideal reports whether the model charges no time at all.
func (m NetworkModel) Ideal() bool {
	return m.DownMbps == 0 && m.UpMbps == 0 && m.LatencySec == 0
}

// NetworkByName resolves a link model from its flag spelling.
func NetworkByName(name string) (NetworkModel, error) {
	switch name {
	case "", "none":
		return NetworkModel{Name: "none"}, nil
	case "fiber":
		return NetworkModel{Name: "fiber", DownMbps: 300, UpMbps: 100, LatencySec: 0.005, Jitter: 0.1}, nil
	case "wifi":
		return NetworkModel{Name: "wifi", DownMbps: 80, UpMbps: 30, LatencySec: 0.010, Jitter: 0.3}, nil
	case "lte":
		return NetworkModel{Name: "lte", DownMbps: 30, UpMbps: 10, LatencySec: 0.050, Jitter: 0.5}, nil
	case "edge":
		return NetworkModel{Name: "edge", DownMbps: 2, UpMbps: 0.5, LatencySec: 0.200, Jitter: 0.8}, nil
	}
	return NetworkModel{}, fmt.Errorf("fl: unknown network %q (want none, fiber, wifi, lte or edge)", name)
}

// link is one activated client's drawn conditions and round clock.
type link struct {
	downRate, upRate float64 // bytes per second; 0 = infinite
	latency          float64 // seconds per message
	elapsed          float64 // simulated wire time consumed this round
	straggler        bool
	failed           bool // fault-injected permanent loss (retries exhausted)
	okUps            int  // uploads the server accepted this round
}

// Transport is the simulated exchange path every algorithm routes its
// down/up payloads through. It serializes payloads with the configured
// codec, charges byte-accurate traffic, advances per-client link clocks
// drawn from the network model, and reports deadline-missed uploads as
// stragglers.
//
// Concurrency contract: all Transport methods must be called from the
// serial phases of a round (job preparation and reduce) — exactly where
// algorithms draw their RNG splits today. Link conditions are drawn in
// slot order from a pre-split per-round stream, so results are
// bit-identical at every Parallelism setting.
//
// A nil *Transport is valid and behaves as a zero-cost pass-through, so
// algorithms run unchanged outside fl.Run (unit tests driving Init/Round
// directly).
type Transport struct {
	codec    nn.Codec
	net      NetworkModel
	deadline float64

	links map[int]*link

	// adv, when non-nil, corrupts compromised clients' uploads before
	// they are encoded (see Adversary). Set by the runner.
	adv *Adversary

	// faults, when non-nil, is the run's deterministic fault schedule
	// (see FaultPlan). Set by the runner; round tracks the 0-based round
	// index BeginRound was last given, so fault decisions key off it.
	faults *FaultPlan
	round  int
	// stall is the server-side latency every link starts this round with
	// (a stall fault); retries/retryBackoff mirror TransportOptions.
	stall        float64
	retries      int
	retryBackoff float64

	// round counters, folded into the cumulative ones by EndRound.
	roundDown, roundUp int64
	roundStragglers    int
	roundRetries       int
	roundFaultDrops    int
	roundDuplicates    int
	roundStalls        int
	cumDown, cumUp     int64
	cumStragglers      int
	cumRetries         int
	cumFaultDrops      int
	cumDuplicates      int
	cumStalls          int

	// encBuf is the recycled encode scratch; resBuf the recycled delta
	// residual. Both are safe to reuse per call because transport calls
	// are serial by contract.
	encBuf []byte
	resBuf nn.ParamVector
}

// NewTransport builds a transport from options. The zero options value
// yields the pass-through reference wire.
func NewTransport(opts TransportOptions) (*Transport, error) {
	codec, err := nn.CodecByName(opts.Codec)
	if err != nil {
		return nil, err
	}
	net, err := NetworkByName(opts.Network)
	if err != nil {
		return nil, err
	}
	if opts.DeadlineSec < 0 {
		return nil, fmt.Errorf("fl: DeadlineSec %v negative", opts.DeadlineSec)
	}
	if opts.Retries < 0 || opts.RetryBackoffSec < 0 {
		return nil, fmt.Errorf("fl: Retries %d / RetryBackoffSec %v negative", opts.Retries, opts.RetryBackoffSec)
	}
	return &Transport{
		codec:        codec,
		net:          net,
		deadline:     opts.DeadlineSec,
		retries:      opts.Retries,
		retryBackoff: opts.RetryBackoffSec,
		links:        map[int]*link{},
	}, nil
}

// Codec returns the configured codec ("identity" for a nil transport).
func (t *Transport) Codec() nn.Codec {
	if t == nil {
		return nn.IdentityCodec{}
	}
	return t.codec
}

// Network returns the configured link model.
func (t *Transport) Network() NetworkModel {
	if t == nil {
		return NetworkModel{Name: "none"}
	}
	return t.net
}

// PassThrough reports whether payloads cross the wire unmodified (the
// codec is lossless), in which case Down/Up/Broadcast return the input
// vector itself and never touch a destination buffer.
func (t *Transport) PassThrough() bool { return t == nil || t.codec.Lossless() }

// SetAdversary installs the run's Byzantine adversary (nil for benign
// runs). Nil-safe on both sides.
func (t *Transport) SetAdversary(a *Adversary) {
	if t != nil {
		t.adv = a
	}
}

// SetFaultPlan installs the run's deterministic fault schedule (nil for
// fault-free runs). Nil-safe on both sides.
func (t *Transport) SetFaultPlan(p *FaultPlan) {
	if t != nil {
		t.faults = p
	}
}

// BeginRound resets the round counters and draws round r's link
// conditions for every activated client (dropped slots, marked -1, are
// skipped) in slot order from rng — which the runner pre-splits serially,
// keeping the draws independent of scheduling. rng may be nil when the
// network model is ideal. Fault-injected straggle (slowed link) and stall
// (server-side latency on every link) conditions apply here, after the
// jitter draws, so an inactive plan leaves the stream untouched.
func (t *Transport) BeginRound(r int, selected []int, rng *tensor.RNG) {
	if t == nil {
		return
	}
	t.round = r
	t.roundDown, t.roundUp, t.roundStragglers = 0, 0, 0
	t.roundRetries, t.roundFaultDrops, t.roundDuplicates, t.roundStalls = 0, 0, 0, 0
	t.stall = 0
	if t.faults.Stalls(r) {
		t.stall = t.faults.StallSec()
		t.roundStalls++
	}
	t.adv.BeginRound()
	clear(t.links)
	for _, ci := range selected {
		if ci < 0 {
			continue
		}
		l := &link{
			downRate: mbpsToBytesPerSec(t.net.DownMbps),
			upRate:   mbpsToBytesPerSec(t.net.UpMbps),
			latency:  t.net.LatencySec,
		}
		if t.net.Jitter > 0 && rng != nil {
			// One lognormal multiplier per quantity, drawn in a fixed
			// order; a multiplier slows rates down and stretches latency.
			l.downRate *= math.Exp(t.net.Jitter * rng.Normal(0, 1))
			l.upRate *= math.Exp(t.net.Jitter * rng.Normal(0, 1))
			l.latency *= math.Exp(t.net.Jitter * rng.Normal(0, 1))
		}
		t.applyLinkFaults(l, ci)
		t.links[ci] = l
	}
}

// applyLinkFaults layers this round's straggle and stall faults onto a
// freshly built link.
func (t *Transport) applyLinkFaults(l *link, client int) {
	if t.faults.Straggles(t.round, client) {
		f := t.faults.StraggleFactor()
		l.downRate /= f
		l.upRate /= f
		l.latency *= f
	}
	l.elapsed += t.stall
}

func mbpsToBytesPerSec(mbps float64) float64 { return mbps * 1e6 / 8 }

// EndRound folds the round counters into the run totals and returns the
// round's traffic and straggler count.
func (t *Transport) EndRound() (bytesDown, bytesUp int64, stragglers int) {
	if t == nil {
		return 0, 0, 0
	}
	t.cumDown += t.roundDown
	t.cumUp += t.roundUp
	t.cumStragglers += t.roundStragglers
	t.cumRetries += t.roundRetries
	t.cumFaultDrops += t.roundFaultDrops
	t.cumDuplicates += t.roundDuplicates
	t.cumStalls += t.roundStalls
	return t.roundDown, t.roundUp, t.roundStragglers
}

// Totals returns the cumulative run traffic and straggler count.
func (t *Transport) Totals() (bytesDown, bytesUp int64, stragglers int) {
	if t == nil {
		return 0, 0, 0
	}
	return t.cumDown, t.cumUp, t.cumStragglers
}

// FaultTotals returns the cumulative fault telemetry: upload retry
// attempts, clients permanently lost to faults (retries exhausted),
// duplicate deliveries, and stalled rounds.
func (t *Transport) FaultTotals() (retries, faultDrops, duplicates, stalls int) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.cumRetries, t.cumFaultDrops, t.cumDuplicates, t.cumStalls
}

// RoundUploaders counts the clients whose uploads the server has accepted
// this round — the quorum the engines compare against Config.MinUploads
// before deciding whether the round aggregates or degrades.
func (t *Transport) RoundUploaders() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, l := range t.links {
		if l.okUps > 0 && !l.failed && !l.straggler {
			n++
		}
	}
	return n
}

// Down simulates one server→client dispatch of vec: the payload is
// encoded, charged to the downlink, and the client-visible (decoded)
// vector is returned — dst when the codec is lossy (allocated at vec's
// length when dst is nil), vec itself on the lossless pass-through.
func (t *Transport) Down(dst nn.ParamVector, client int, vec nn.ParamVector) nn.ParamVector {
	if t == nil {
		return vec
	}
	size := t.codec.EncodedSize(len(vec))
	t.roundDown += size
	t.chargeTime(client, size, true)
	out, err := t.deliver(dst, vec, nil, mangleNone)
	if err != nil {
		// Encode and Decode are the same codec over the same undamaged
		// buffer; a failure here is a codec bug, not an input condition.
		panic(err)
	}
	return out
}

// Broadcast simulates dispatching one payload to every listed client
// (dropped -1 slots are skipped): bytes and link time are charged per
// client, but the payload is encoded and decoded once — every client
// sees the same decoded vector, exactly as a deterministic codec behaves.
func (t *Transport) Broadcast(dst nn.ParamVector, clients []int, vec nn.ParamVector) nn.ParamVector {
	if t == nil {
		return vec
	}
	size := t.codec.EncodedSize(len(vec))
	for _, ci := range clients {
		if ci < 0 {
			continue
		}
		t.roundDown += size
		t.chargeTime(ci, size, true)
	}
	out, err := t.deliver(dst, vec, nil, mangleNone)
	if err != nil {
		// Undamaged round-trip failure is a codec bug (see Down).
		panic(err)
	}
	return out
}

// Up simulates one client→server upload of vec, delta-encoded against
// ref when ref is non-nil (both endpoints must hold ref bit-identically —
// see the invalidation rule in docs/ARCHITECTURE.md). It returns the
// server-visible vector (decoded into dst, or vec itself on the lossless
// pass-through) and ok=false when the client's round clock has passed the
// deadline: the upload was transmitted (its bytes are charged) but the
// server stopped waiting, so the caller must treat the client like a
// dropout. Subsequent uploads from a straggler are skipped entirely.
func (t *Transport) Up(dst nn.ParamVector, client int, vec, ref nn.ParamVector) (nn.ParamVector, bool) {
	if t == nil {
		return vec, true
	}
	if l := t.links[client]; l != nil && (l.straggler || l.failed) {
		return vec, false
	}
	// A compromised client transmits its corrupted payload; the server
	// only ever sees the wire-visible vector, so every algorithm (and
	// every codec) is attacked uniformly at this one seam.
	vec = t.adv.CorruptUpload(client, vec)
	size := t.codec.EncodedSize(len(vec))
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			t.backoff(client, attempt)
			t.roundRetries++
		}
		t.roundUp += size
		if !t.chargeTime(client, size, false) {
			t.markStraggler(client)
			return vec, false
		}
		// Wire losses: an outright drop, or a payload the decode rejects
		// (truncated body, flipped header). Each is a pure per-attempt
		// hash, so a retry redraws its fate.
		lost := t.faults.Drops(t.round, client, attempt)
		mangle := mangleNone
		if !lost {
			switch {
			case t.faults.Truncates(t.round, client, attempt):
				mangle = mangleTruncate
			case t.faults.Corrupts(t.round, client, attempt):
				mangle = mangleCorrupt
			}
			// The lossless pass-through never materializes wire bytes to
			// mangle; a truncated/corrupted payload is simply lost.
			if mangle != mangleNone && t.codec.Lossless() {
				lost = true
			}
		}
		if !lost {
			out, err := t.deliver(dst, vec, ref, mangle)
			if err == nil {
				if t.faults.Duplicates(t.round, client) {
					// The duplicate's bytes and wire time are charged; the
					// server dedups the payload itself.
					t.roundUp += size
					t.chargeTime(client, size, false)
					t.roundDuplicates++
				}
				if l := t.links[client]; l != nil {
					l.okUps++
				}
				return out, true
			}
		}
		if attempt >= t.retries {
			t.markFailed(client)
			return vec, false
		}
	}
}

// backoff charges the deterministic exponential retry backoff to the
// client's link clock before attempt a (a ≥ 1).
func (t *Transport) backoff(client, attempt int) {
	if t.retryBackoff == 0 {
		return
	}
	if l := t.links[client]; l != nil {
		l.elapsed += t.retryBackoff * math.Pow(2, float64(attempt-1))
	}
}

// markStraggler flags the client's link and counts it once.
func (t *Transport) markStraggler(client int) {
	l := t.links[client]
	if l == nil {
		l = &link{}
		t.links[client] = l
	}
	if !l.straggler {
		l.straggler = true
		t.roundStragglers++
	}
}

// markFailed flags a client whose upload was permanently lost to faults
// (every attempt dropped or rejected) and counts it once. The caller
// treats it like a dropout; subsequent uploads are skipped.
func (t *Transport) markFailed(client int) {
	l := t.links[client]
	if l == nil {
		l = &link{}
		t.links[client] = l
	}
	if !l.failed {
		l.failed = true
		t.roundFaultDrops++
	}
}

// chargeTime advances the client's round clock by one message (latency
// plus transfer) and reports whether the clock is still inside the
// deadline. Unknown clients (algorithms exchanging outside BeginRound)
// get an un-jittered link on first touch.
func (t *Transport) chargeTime(client int, size int64, down bool) bool {
	if t.net.Ideal() && t.deadline == 0 {
		return true
	}
	l := t.links[client]
	if l == nil {
		l = &link{
			downRate: mbpsToBytesPerSec(t.net.DownMbps),
			upRate:   mbpsToBytesPerSec(t.net.UpMbps),
			latency:  t.net.LatencySec,
		}
		t.applyLinkFaults(l, client)
		t.links[client] = l
	}
	rate := l.upRate
	if down {
		rate = l.downRate
	}
	l.elapsed += l.latency
	if rate > 0 {
		l.elapsed += float64(size) / rate
	}
	return t.deadline == 0 || l.elapsed <= t.deadline
}

// mangle selects the wire damage deliver inflicts on the encoded payload
// before the receiver decodes it.
type mangle int

const (
	mangleNone     mangle = iota
	mangleTruncate        // cut the encoded body short
	mangleCorrupt         // flip the element-count header's bits
)

// deliver runs vec through the codec into dst, applying the delta
// transform against ref when set: the residual vec−ref is what crosses
// the wire, and the receiver adds ref back — so coordinates a lossy codec
// drops stay at the reference value instead of snapping to zero, and
// quantization grids span the (much smaller) residual range.
//
// A non-zero mangle damages the encoded bytes in transit; the decode then
// rejects the payload with an error, which the caller treats as a lost
// attempt. Decode failures never panic: a hostile or damaged payload
// surfaces as a per-client loss, exactly like a dropped one. On any error
// dst holds unspecified bytes and must not be used.
func (t *Transport) deliver(dst, vec, ref nn.ParamVector, m mangle) (nn.ParamVector, error) {
	if t.codec.Lossless() {
		// The identity wire is a zero-copy pass-through: delta would only
		// add float cancellation error to a codec that is already exact.
		// Mangle is handled by the caller (no wire bytes exist here).
		return vec, nil
	}
	payload := vec
	if ref != nil {
		if len(ref) != len(vec) {
			panic(fmt.Sprintf("fl: transport delta ref length %d != payload %d", len(ref), len(vec)))
		}
		if cap(t.resBuf) < len(vec) {
			t.resBuf = make(nn.ParamVector, len(vec))
		}
		t.resBuf = t.resBuf[:len(vec)]
		for i := range vec {
			t.resBuf[i] = vec[i] - ref[i]
		}
		payload = t.resBuf
	}
	t.encBuf = t.codec.Encode(t.encBuf[:0], payload)
	switch m {
	case mangleTruncate:
		t.encBuf = t.encBuf[:len(t.encBuf)/2]
	case mangleCorrupt:
		// Flipping the 4-byte element-count header is a bijection, so the
		// decoded count never matches the destination: rejection is
		// guaranteed, unlike flipping body bytes a quantizer might accept.
		for i := 0; i < len(t.encBuf) && i < 4; i++ {
			t.encBuf[i] ^= 0xFF
		}
	}
	if dst == nil {
		dst = make(nn.ParamVector, len(vec))
	}
	if len(dst) != len(vec) {
		panic(fmt.Sprintf("fl: transport destination length %d != payload %d", len(dst), len(vec)))
	}
	if _, err := t.codec.Decode(dst, t.encBuf); err != nil {
		return dst, fmt.Errorf("fl: transport codec round-trip: %w", err)
	}
	if ref != nil {
		for i := range dst {
			dst[i] += ref[i]
		}
	}
	return dst, nil
}

// TransportUser is implemented by algorithms that route their exchanges
// through the simulated transport. The runner injects its transport
// before Init; algorithms must tolerate never receiving one (nil
// transport methods are pass-through no-ops).
type TransportUser interface {
	SetTransport(t *Transport)
}

// Wire is the embeddable TransportUser implementation algorithms use.
type Wire struct {
	tr *Transport
}

// SetTransport implements TransportUser.
func (w *Wire) SetTransport(t *Transport) { w.tr = t }

// Transport returns the injected transport (nil when running outside
// fl.Run, which every Transport method tolerates).
func (w *Wire) Transport() *Transport { return w.tr }
