package fl

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
)

// ckptWireAlgo is wireAlgo plus RoundCheckpointer: the smallest
// in-package algorithm that can ride the engine's kill/resume cycle.
type ckptWireAlgo struct{ wireAlgo }

func (s *ckptWireAlgo) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, s.global); err != nil {
		return err
	}
	return nn.WriteRNG(w, s.rng)
}

func (s *ckptWireAlgo) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return err
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return err
	}
	s.global, s.rng = global, rng
	return nil
}

func TestCheckpointOptionsValidate(t *testing.T) {
	for _, bad := range []CheckpointOptions{
		{Path: "x", Every: -1},
		{Path: "x", StopAfterRound: -1},
		{Every: 2},
		{Resume: true},
		{StopAfterRound: 3},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should not validate", bad)
		}
	}
	if err := (CheckpointOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (CheckpointOptions{}).Active() {
		t.Fatal("zero options must be inactive")
	}
}

// resumeCfg is a deliberately hostile setting for the snapshot: faults,
// retries, a quorum, an adversary and a lossy wire all carry live state
// across the kill boundary.
func resumeCfg(par int) Config {
	return Config{Rounds: 6, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 11, Parallelism: par,
		Faults:     FaultOptions{CrashRate: 0.2, DropRate: 0.2, DuplicateRate: 0.2, StallRate: 0.2},
		MinUploads: 2,
		Transport:  TransportOptions{Codec: "fp16", Network: "wifi", Retries: 1, RetryBackoffSec: 0.1},
		Adversary:  AdversaryOptions{Attack: AttackSignFlip, Frac: 0.25},
	}
}

// TestRunKillResumeBitIdentity: a run killed at any round boundary and
// resumed from its snapshot finishes with a final history byte-identical
// to the uninterrupted run — at serial and fanned-out parallelism, under
// faults and attack.
func TestRunKillResumeBitIdentity(t *testing.T) {
	dir := t.TempDir()
	for _, par := range []int{1, 8} {
		full, err := Run(&ckptWireAlgo{}, testEnv(61, 8), resumeCfg(par))
		if err != nil {
			t.Fatal(err)
		}
		for _, stop := range []int{1, 3, 5} {
			t.Run(fmt.Sprintf("par%d/stop%d", par, stop), func(t *testing.T) {
				path := filepath.Join(dir, fmt.Sprintf("p%d-s%d.ckpt", par, stop))
				killed := resumeCfg(par)
				killed.Checkpoint = CheckpointOptions{Path: path, StopAfterRound: stop}
				partial, err := Run(&ckptWireAlgo{}, testEnv(61, 8), killed)
				if !errors.Is(err, ErrStopped) {
					t.Fatalf("want ErrStopped, got %v", err)
				}
				if got := partial.Final().Round; got > stop {
					t.Fatalf("partial history ran past the kill: round %d > %d", got, stop)
				}
				resumed := resumeCfg(par)
				resumed.Checkpoint = CheckpointOptions{Path: path, Resume: true}
				h, err := Run(&ckptWireAlgo{}, testEnv(61, 8), resumed)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(full, h) {
					t.Fatalf("resumed history diverged:\nfull    %+v\nresumed %+v", full, h)
				}
			})
		}
	}
}

// TestRunCheckpointEveryResume: periodic snapshots (no explicit kill) are
// also valid resume points — resuming from whatever Every left on disk
// reproduces the uninterrupted tail.
func TestRunCheckpointEveryResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := resumeCfg(0)
	cfg.Rounds = 5
	full, err := Run(&ckptWireAlgo{}, testEnv(62, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	every := cfg
	every.Checkpoint = CheckpointOptions{Path: path, Every: 2}
	if _, err := Run(&ckptWireAlgo{}, testEnv(62, 8), every); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	h, err := Run(&ckptWireAlgo{}, testEnv(62, 8), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, h) {
		t.Fatal("resume from the periodic snapshot diverged from the uninterrupted run")
	}
}

// TestRunResumeRejectsHostileInput: missing files, truncated snapshots,
// garbage bytes and mismatched run parameters all fail with a clear
// error — never a panic, never a silent wrong resume. An algorithm
// without checkpoint support is rejected up front.
func TestRunResumeRejectsHostileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cfg := resumeCfg(0)
	cfg.Checkpoint = CheckpointOptions{Path: path, StopAfterRound: 2}
	if _, err := Run(&ckptWireAlgo{}, testEnv(63, 8), cfg); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resume := func(p string, cfg Config) error {
		cfg.Checkpoint = CheckpointOptions{Path: p, Resume: true}
		_, err := Run(&ckptWireAlgo{}, testEnv(63, 8), cfg)
		return err
	}
	if err := resume(filepath.Join(dir, "missing.ckpt"), resumeCfg(0)); err == nil {
		t.Fatal("resume from a missing file must fail")
	}
	for _, mutate := range []struct {
		name  string
		bytes []byte
	}{
		{"truncated", raw[:len(raw)/2]},
		{"empty", nil},
		{"garbage", []byte("not a checkpoint at all")},
	} {
		hostile := filepath.Join(dir, mutate.name+".ckpt")
		if err := os.WriteFile(hostile, mutate.bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resume(hostile, resumeCfg(0)); err == nil {
			t.Fatalf("resume from %s snapshot must fail", mutate.name)
		}
	}
	wrongSeed := resumeCfg(0)
	wrongSeed.Seed = 999
	if err := resume(path, wrongSeed); err == nil {
		t.Fatal("resume under a different seed must fail")
	}
	plain := resumeCfg(0)
	plain.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	if _, err := Run(&wireAlgo{}, testEnv(63, 8), plain); err == nil {
		t.Fatal("checkpointing without RoundCheckpointer must fail")
	}
}

func asyncResumeCfg() (Config, AsyncOptions) {
	cfg := Config{Rounds: 6, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 13,
		Faults:     FaultOptions{CrashRate: 0.2, DropRate: 0.2, DuplicateRate: 0.2, StallRate: 0.2},
		MinUploads: 1,
		Adversary:  AdversaryOptions{Attack: AttackSignFlip, Frac: 0.25},
	}
	return cfg, AsyncOptions{Buffer: 2, InFlight: 4, Commits: 8}
}

// TestAsyncKillResumeBitIdentity: the buffered-async engine holds the
// same contract — kill at any commit boundary, resume, and the final
// history is byte-identical, in-flight jobs and all.
func TestAsyncKillResumeBitIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg, opts := asyncResumeCfg()
	full, err := RunAsync(testEnv(64, 8), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("stop%d", stop), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("s%d.ckpt", stop))
			killedCfg, opts := asyncResumeCfg()
			killedCfg.Checkpoint = CheckpointOptions{Path: path, StopAfterRound: stop}
			partial, err := RunAsync(testEnv(64, 8), killedCfg, opts)
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("want ErrStopped, got %v", err)
			}
			if got := partial.Final().Round; got > stop {
				t.Fatalf("partial history ran past the kill: commit %d > %d", got, stop)
			}
			resumedCfg, opts := asyncResumeCfg()
			resumedCfg.Checkpoint = CheckpointOptions{Path: path, Resume: true}
			h, err := RunAsync(testEnv(64, 8), resumedCfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(full, h) {
				t.Fatalf("async resumed history diverged:\nfull    %+v\nresumed %+v", full, h)
			}
		})
	}
}

// TestAsyncResumeRejectsHostileInput mirrors the sync hardening for the
// async snapshot format.
func TestAsyncResumeRejectsHostileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "async.ckpt")
	cfg, opts := asyncResumeCfg()
	cfg.Checkpoint = CheckpointOptions{Path: path, StopAfterRound: 3}
	if _, err := RunAsync(testEnv(65, 8), cfg, opts); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hostile := filepath.Join(dir, "hostile.ckpt")
	if err := os.WriteFile(hostile, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	badCfg, opts := asyncResumeCfg()
	badCfg.Checkpoint = CheckpointOptions{Path: hostile, Resume: true}
	if _, err := RunAsync(testEnv(65, 8), badCfg, opts); err == nil {
		t.Fatal("async resume from a truncated snapshot must fail")
	}
	wrongSeed, opts2 := asyncResumeCfg()
	wrongSeed.Seed = 999
	wrongSeed.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	if _, err := RunAsync(testEnv(65, 8), wrongSeed, opts2); err == nil {
		t.Fatal("async resume under a different seed must fail")
	}
}

// TestFaultedRoundsDrainAllLeases: fault-heavy runs (including killed
// ones) must release every replica and shard lease — the abort paths the
// faults add cannot leak. The env gets a private architecture so no other
// test's replicas show up, and a lazy source so shard leases are counted.
func TestFaultedRoundsDrainAllLeases(t *testing.T) {
	mkEnv := func() *Env {
		env := sourceEnv(66, 8, data.Heterogeneity{IID: true}, "lazy")
		env.Model = models.MLP(12, 19, 4) // unique dims → private replica pool
		return env
	}
	pool := models.Replicas(models.MLP(12, 19, 4))
	leases := func(env *Env) int {
		type outstander interface{ Outstanding() int }
		return env.Fed.Source.(outstander).Outstanding()
	}

	cfg := resumeCfg(4)
	env := mkEnv()
	if _, err := Run(&ckptWireAlgo{}, env, cfg); err != nil {
		t.Fatal(err)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("faulted sync run leaked %d replica leases", n)
	}
	if n := leases(env); n != 0 {
		t.Fatalf("faulted sync run leaked %d shard leases", n)
	}

	killed := resumeCfg(4)
	killed.Checkpoint = CheckpointOptions{Path: filepath.Join(t.TempDir(), "k.ckpt"), StopAfterRound: 2}
	env = mkEnv()
	if _, err := Run(&ckptWireAlgo{}, env, killed); !errors.Is(err, ErrStopped) {
		t.Fatal("want ErrStopped")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("killed sync run leaked %d replica leases", n)
	}
	if n := leases(env); n != 0 {
		t.Fatalf("killed sync run leaked %d shard leases", n)
	}

	asyncCfg, opts := asyncResumeCfg()
	env = mkEnv()
	if _, err := RunAsync(env, asyncCfg, opts); err != nil {
		t.Fatal(err)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("faulted async run leaked %d replica leases", n)
	}
	if n := leases(env); n != 0 {
		t.Fatalf("faulted async run leaked %d shard leases", n)
	}

	asyncKilled, opts := asyncResumeCfg()
	asyncKilled.Checkpoint = CheckpointOptions{Path: filepath.Join(t.TempDir(), "ak.ckpt"), StopAfterRound: 3}
	env = mkEnv()
	if _, err := RunAsync(env, asyncKilled, opts); !errors.Is(err, ErrStopped) {
		t.Fatal("want ErrStopped")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("killed async run leaked %d replica leases", n)
	}
	if n := leases(env); n != 0 {
		t.Fatalf("killed async run leaked %d shard leases", n)
	}
}
