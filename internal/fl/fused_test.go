package fl

import (
	"math"
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// compareResults requires two TrainAll-shaped result sets to agree bit
// for bit — parameters, step counts, losses, and sample counts.
func compareResults(t *testing.T, name string, a, b []LocalResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result counts differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i].Steps != b[i].Steps || a[i].Samples != b[i].Samples ||
			math.Float64bits(a[i].MeanLoss) != math.Float64bits(b[i].MeanLoss) {
			t.Fatalf("%s: job %d metadata differs: %+v vs %+v", name, i, a[i], b[i])
		}
		if len(a[i].Params) != len(b[i].Params) {
			t.Fatalf("%s: job %d param lengths differ", name, i)
		}
		for j := range a[i].Params {
			if math.Float64bits(a[i].Params[j]) != math.Float64bits(b[i].Params[j]) {
				t.Fatalf("%s: job %d param %d: %v vs %v", name, i, j, a[i].Params[j], b[i].Params[j])
			}
		}
	}
}

// TestBatchFanoutBitIdentical is the fused trainer's core promise: for
// any fanout, TrainAllFanout returns exactly what solo TrainAll returns —
// same parameters bit for bit, same losses, same step counts — because
// fusion only reschedules the arithmetic.
func TestBatchFanoutBitIdentical(t *testing.T) {
	env := testEnv(61, 7)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(62)).Params())

	solo, err := TrainAll(env, trainJobs(env, init, 63), Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	// 7 jobs: fanout 2 → three pairs + leftover solo; 3 → two triples +
	// leftover pair; 8 → one under-full fused unit of 7.
	for _, fanout := range []int{2, 3, 8} {
		fused, err := TrainAllFanout(env, trainJobs(env, init, 63), Limit(2), fanout)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, "fanout", solo, fused)
	}
}

// TestBatchFanoutWorkerInvariant checks that the fused path stays
// scheduling-independent: unit grouping happens before dispatch, so the
// worker budget cannot change which clients fuse together or any result.
func TestBatchFanoutWorkerInvariant(t *testing.T) {
	env := testEnv(71, 6)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(72)).Params())

	serial, err := TrainAllFanout(env, trainJobs(env, init, 73), Limit(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TrainAllFanout(env, trainJobs(env, init, 73), Limit(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "workers", serial, parallel)
}

// TestBatchFanoutMixedFallback mixes fusable jobs with ones the fused
// path must route solo — a proximal spec and a shard override — and
// checks the whole batch still matches plain TrainAll exactly.
func TestBatchFanoutMixedFallback(t *testing.T) {
	env := testEnv(81, 6)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(82)).Params())

	build := func() []LocalJob {
		jobs := trainJobs(env, init, 83)
		jobs[1].Spec.Prox = 0.1 // hook-bearing: must train solo
		jobs[1].Spec.ProxRef = init
		jobs[4].Shard = env.Fed.Clients[4] // override shard: must train solo
		return jobs
	}
	solo, err := TrainAll(env, build(), Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := TrainAllFanout(env, build(), Limit(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "mixed", solo, fused)
}

// TestBatchFanoutOutBuffers checks the fused path honours caller-owned
// Out destinations exactly like TrainLocal does.
func TestBatchFanoutOutBuffers(t *testing.T) {
	env := testEnv(91, 4)
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(92)).Params())

	build := func(withOut bool) []LocalJob {
		jobs := trainJobs(env, init, 93)
		if withOut {
			for i := range jobs {
				jobs[i].Spec.Out = make(nn.ParamVector, len(init))
			}
		}
		return jobs
	}
	jobs := build(true)
	fused, err := TrainAllFanout(env, jobs, Limit(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fused {
		if &fused[i].Params[0] != &jobs[i].Spec.Out[0] {
			t.Fatalf("job %d: result not written into the caller's Out buffer", i)
		}
	}
	solo, err := TrainAll(env, build(false), Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "out", solo, fused)
}

// fanoutAlgo is a FedAvg-shaped probe whose rounds train through
// TrainAllFanout with the configured fanout, exercising the same dispatch
// path the real algorithms use.
type fanoutAlgo struct {
	env    *Env
	cfg    Config
	rng    *tensor.RNG
	global nn.ParamVector
}

func (s *fanoutAlgo) Name() string     { return "fanout-probe" }
func (s *fanoutAlgo) Category() string { return "Test" }

func (s *fanoutAlgo) Init(env *Env, cfg Config, rng *tensor.RNG) error {
	s.env, s.cfg, s.rng = env, cfg, rng
	s.global = nn.FlattenParams(env.Model.New(rng).Params())
	return nil
}

func (s *fanoutAlgo) Round(r int, selected []int) error {
	var jobs []LocalJob
	for _, ci := range selected {
		if ci < 0 {
			continue
		}
		jobs = append(jobs, LocalJob{
			Client: ci,
			Spec: LocalSpec{Init: s.global, Epochs: s.cfg.LocalEpochs,
				BatchSize: s.cfg.BatchSize, LR: s.cfg.LR, Momentum: s.cfg.Momentum},
			RNG: s.rng.Split(),
		})
	}
	if len(jobs) == 0 {
		return nil
	}
	results, err := TrainAllFanout(s.env, jobs, s.cfg.Allowance(), s.cfg.BatchFanout)
	if err != nil {
		return err
	}
	got := make([]nn.ParamVector, len(results))
	for i, res := range results {
		got[i] = res.Params
	}
	s.global = nn.MeanVectors(got)
	return nil
}

func (s *fanoutAlgo) Global() nn.ParamVector { return s.global }

func (s *fanoutAlgo) RoundComm(k int) CommProfile {
	return CommProfile{ModelsDown: k, ModelsUp: k}
}

// TestRunBatchFanoutHistoryIdentical runs a short end-to-end simulation
// through the round engine at fanout 0 and 4 and requires identical
// histories — the Config knob must be invisible in results.
func TestRunBatchFanoutHistoryIdentical(t *testing.T) {
	env := testEnv(101, 10)
	base := DefaultConfig()
	base.Rounds = 3
	base.ClientsPerRound = 6
	base.LocalEpochs = 2
	base.BatchSize = 16
	base.LR = 0.05
	base.Parallelism = 2
	base.EvalEvery = 1
	base.Seed = 102

	run := func(fanout int) *History {
		cfg := base
		cfg.BatchFanout = fanout
		h, err := Run(&fanoutAlgo{}, env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	solo := run(0)
	fused := run(4)
	if len(solo.Metrics) != len(fused.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(solo.Metrics), len(fused.Metrics))
	}
	for i := range solo.Metrics {
		a, b := solo.Metrics[i], fused.Metrics[i]
		if math.Float64bits(a.TestAcc) != math.Float64bits(b.TestAcc) ||
			math.Float64bits(a.TestLoss) != math.Float64bits(b.TestLoss) {
			t.Fatalf("round %d differs: %+v vs %+v", i, a, b)
		}
	}
}
