package fl

import (
	"fmt"
	"math"
	"sort"

	"fedcross/internal/nn"
)

// ClientEval is one client's local-data accuracy under a given model.
type ClientEval struct {
	Client  int
	Acc     float64
	Samples int
}

// PerClientReport summarises how evenly a global model serves the
// federation — the fairness lens on the paper's claim that FedCross
// produces "a unified global model to benefit all the clients".
type PerClientReport struct {
	Evals []ClientEval
	// Mean is the sample-weighted mean accuracy.
	Mean float64
	// Worst is the lowest client accuracy (the client the model serves
	// worst).
	Worst float64
	// Std is the unweighted standard deviation across clients; lower
	// means the model generalises more evenly.
	Std float64
}

// EvaluatePerClient measures the model on every client's local data.
// Clients are evaluated in parallel across the allowance w (Workers{}
// means every core, unbudgeted, matching the old workers=0 convention;
// each worker runs a serial per-client pass); the report is reduced in
// client order, so the result is identical at every worker count.
func EvaluatePerClient(env *Env, vec nn.ParamVector, batchSize int, w Workers) (*PerClientReport, error) {
	n := env.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: EvaluatePerClient: no clients")
	}
	clientAccs := make([]float64, n)
	err := parallelForErr(n, w, func(ci int) error {
		if env.Fed.Size(ci) == 0 {
			return nil
		}
		// Lease the shard only for this client's evaluation, releasing on
		// every exit path so a failed pass cannot strand a lease.
		shard := env.Fed.LeaseShard(ci)
		defer env.Fed.ReleaseShard(ci)
		acc, _, err := evaluate(env.Model, vec, shard, batchSize, Limit(1))
		if err != nil {
			return fmt.Errorf("fl: EvaluatePerClient client %d: %w", ci, err)
		}
		clientAccs[ci] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &PerClientReport{Worst: math.Inf(1)}
	totalSamples := 0
	var accs []float64
	for ci := 0; ci < n; ci++ {
		sz := env.Fed.Size(ci)
		if sz == 0 {
			continue
		}
		acc := clientAccs[ci]
		rep.Evals = append(rep.Evals, ClientEval{Client: ci, Acc: acc, Samples: sz})
		rep.Mean += acc * float64(sz)
		totalSamples += sz
		if acc < rep.Worst {
			rep.Worst = acc
		}
		accs = append(accs, acc)
	}
	if totalSamples == 0 {
		return nil, fmt.Errorf("fl: EvaluatePerClient: all shards empty")
	}
	rep.Mean /= float64(totalSamples)
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	variance := 0.0
	for _, a := range accs {
		d := a - mean
		variance += d * d
	}
	rep.Std = math.Sqrt(variance / float64(len(accs)))
	sort.Slice(rep.Evals, func(i, j int) bool { return rep.Evals[i].Acc < rep.Evals[j].Acc })
	return rep, nil
}

// BottomDecileMean returns the mean accuracy of the worst 10% of clients
// (at least one), a standard fairness summary.
func (r *PerClientReport) BottomDecileMean() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	n := len(r.Evals) / 10
	if n == 0 {
		n = 1
	}
	s := 0.0
	for _, e := range r.Evals[:n] { // Evals sorted ascending by Acc
		s += e.Acc
	}
	return s / float64(n)
}
