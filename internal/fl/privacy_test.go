package fl

import (
	"testing"

	"fedcross/internal/tensor"
)

func TestPrivacyOptionsValidate(t *testing.T) {
	if err := (PrivacyOptions{ClipNorm: 1, NoiseStd: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (PrivacyOptions{ClipNorm: -1}).Validate(); err == nil {
		t.Fatal("negative clip must fail")
	}
	if err := (PrivacyOptions{NoiseStd: -1}).Validate(); err == nil {
		t.Fatal("negative noise must fail")
	}
	if _, err := WithPrivacy(&stubAlgo{}, PrivacyOptions{NoiseStd: -1}); err == nil {
		t.Fatal("WithPrivacy must validate")
	}
}

func TestPrivacyWrapperNamesAndNoise(t *testing.T) {
	env := testEnv(21, 4)
	inner := &stubAlgo{}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{NoiseStd: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "stub+dp" {
		t.Fatalf("name %q", wrapped.Name())
	}
	cfg := Config{Rounds: 2, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if _, err := Run(wrapped, env, cfg); err != nil {
		t.Fatal(err)
	}
	// The released model differs from the raw one (noise applied) but not
	// wildly (std 0.05).
	raw := inner.Global()
	released := wrapped.Global()
	d := raw.DistanceSq(released)
	if d == 0 {
		t.Fatal("release should be perturbed")
	}
	perCoord := d / float64(len(raw))
	if perCoord > 0.05*0.05*10 {
		t.Fatalf("noise too large: mean squared %v", perCoord)
	}
	// Training state inside the wrapped algorithm is untouched: two
	// consecutive releases differ (fresh noise) around the same raw model.
	r2 := wrapped.Global()
	if released.DistanceSq(r2) == 0 {
		t.Fatal("each release should draw fresh noise")
	}
}

func TestPrivacyClippingBoundsRelease(t *testing.T) {
	inner := &stubAlgo{}
	env := testEnv(22, 3)
	cfg := Config{Rounds: 1, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if err := inner.Init(env, cfg, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{ClipNorm: 0.1, NoiseStd: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := wrapped.Global() // anchors the reference
	// Push the inner model far away.
	big := inner.global.Clone()
	for i := range big {
		big[i] += 5
	}
	inner.global = big
	second := wrapped.Global()
	delta := second.Sub(first)
	if n := delta.Norm(); n > 0.1+1e-9 {
		t.Fatalf("release moved %v, clip is 0.1", n)
	}
}
