package fl

import (
	"bytes"
	"log"
	"strings"
	"testing"

	"fedcross/internal/tensor"
)

func TestPrivacyOptionsValidate(t *testing.T) {
	if err := (PrivacyOptions{ClipNorm: 1, NoiseStd: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (PrivacyOptions{ClipNorm: -1}).Validate(); err == nil {
		t.Fatal("negative clip must fail")
	}
	if err := (PrivacyOptions{NoiseStd: -1}).Validate(); err == nil {
		t.Fatal("negative noise must fail")
	}
	if _, err := WithPrivacy(&stubAlgo{}, PrivacyOptions{NoiseStd: -1}); err == nil {
		t.Fatal("WithPrivacy must validate")
	}
}

func TestPrivacyWrapperNamesAndNoise(t *testing.T) {
	env := testEnv(21, 4)
	inner := &stubAlgo{}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{NoiseStd: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "stub+dp" {
		t.Fatalf("name %q", wrapped.Name())
	}
	cfg := Config{Rounds: 2, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if _, err := Run(wrapped, env, cfg); err != nil {
		t.Fatal(err)
	}
	// The released model differs from the raw one (noise applied) but not
	// wildly (std 0.05).
	raw := inner.Global()
	released := wrapped.Global()
	d := raw.DistanceSq(released)
	if d == 0 {
		t.Fatal("release should be perturbed")
	}
	perCoord := d / float64(len(raw))
	if perCoord > 0.05*0.05*10 {
		t.Fatalf("noise too large: mean squared %v", perCoord)
	}
	// The release is memoized within a round: a second call (evaluate then
	// deploy) returns the same perturbed model rather than drawing fresh
	// noise and double-spending the privacy budget.
	r2 := wrapped.Global()
	if released.DistanceSq(r2) != 0 {
		t.Fatal("repeated Global() in one round must return the same release")
	}
}

// TestPrivacyReleaseIdempotentPerRound is the regression test for the
// double-release bug: Global() used to draw fresh Gaussian noise and
// advance the clipping anchor on every call, so evaluating and then
// deploying in one round published two different models. The release must
// be memoized per training round and refreshed only after the next Round.
func TestPrivacyReleaseIdempotentPerRound(t *testing.T) {
	env := testEnv(31, 4)
	inner := &stubAlgo{}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{ClipNorm: 5, NoiseStd: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rounds: 1, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if err := wrapped.Init(env, cfg, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Round(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	a := wrapped.Global()
	b := wrapped.Global()
	if a.DistanceSq(b) != 0 {
		t.Fatal("two releases within one round must be identical")
	}
	// Mutating the returned vector must not corrupt the memoized release.
	a[0] += 100
	if c := wrapped.Global(); c.DistanceSq(b) != 0 {
		t.Fatal("caller mutation leaked into the memoized release")
	}
	// The next round invalidates the memo: state changed, new release.
	if err := wrapped.Round(1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	d := wrapped.Global()
	if d.DistanceSq(b) == 0 {
		t.Fatal("a new round must produce a fresh release")
	}
	// Re-initialising for a new run discards the memo and the clipping
	// anchor — nothing from the previous experiment may leak forward.
	if err := wrapped.Init(env, cfg, tensor.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	pw := wrapped.(*privacyWrapper)
	if pw.released != nil || pw.ref != nil {
		t.Fatal("Init must clear the memoized release and the clipping anchor")
	}
	if e := wrapped.Global(); e.DistanceSq(d) == 0 {
		t.Fatal("post-Init release must not replay the previous run's memo")
	}
}

// TestPrivacyClipSkipSurfaced pins that a clipping anchor whose length no
// longer matches the release is reported instead of silently skipped.
func TestPrivacyClipSkipSurfaced(t *testing.T) {
	env := testEnv(33, 3)
	inner := &stubAlgo{}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{ClipNorm: 0.1, NoiseStd: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rounds: 1, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if err := wrapped.Init(env, cfg, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	_ = wrapped.Global() // anchors the reference
	pw := wrapped.(*privacyWrapper)
	pw.released = nil
	pw.ref = pw.ref[:len(pw.ref)-1] // simulate an architecture change

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)
	_ = wrapped.Global()
	if !strings.Contains(buf.String(), "clipping skipped") {
		t.Fatalf("length mismatch must be surfaced, log output: %q", buf.String())
	}
}

func TestPrivacyClippingBoundsRelease(t *testing.T) {
	inner := &stubAlgo{}
	env := testEnv(22, 3)
	cfg := Config{Rounds: 1, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: 1}
	if err := inner.Init(env, cfg, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	wrapped, err := WithPrivacy(inner, PrivacyOptions{ClipNorm: 0.1, NoiseStd: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := wrapped.Global() // anchors the reference
	// Push the inner model far away.
	big := inner.global.Clone()
	for i := range big {
		big[i] += 5
	}
	inner.global = big
	// Invalidate the per-round memo (as the next Round would) so the
	// second call computes a fresh, clipped release.
	wrapped.(*privacyWrapper).released = nil
	second := wrapped.Global()
	delta := second.Sub(first)
	if n := delta.Norm(); n > 0.1+1e-9 {
		t.Fatalf("release moved %v, clip is 0.1", n)
	}
}
