package fl

import (
	"math"
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func randomUploads(k, dim int, seed int64) ([]nn.ParamVector, []float64) {
	rng := tensor.NewRNG(seed)
	ups := make([]nn.ParamVector, k)
	ws := make([]float64, k)
	for i := range ups {
		ups[i] = make(nn.ParamVector, dim)
		for j := range ups[i] {
			ups[i][j] = rng.Normal(0, 1)
		}
		ws[i] = float64(1 + rng.Intn(50))
	}
	return ups, ws
}

// TestTreeMeanLegacyFastPath: any cohort that fits one leaf group — every
// historical configuration, K ≤ 64 — must reproduce the serial
// nn.MeanVectors / nn.WeightedMeanVectors fold bit-for-bit, at any worker
// allowance.
func TestTreeMeanLegacyFastPath(t *testing.T) {
	for _, k := range []int{1, 2, 10, treeLeaf} {
		ups, ws := randomUploads(k, 257, int64(k))
		for _, w := range []Workers{{}, Limit(1), Limit(7)} {
			r := MeanReducer{W: w}
			got := r.Reduce(ups, nil)
			want := nn.MeanVectors(ups)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d unweighted coord %d: %v != legacy %v", k, i, got[i], want[i])
				}
			}
			got = r.Reduce(ups, ws)
			want = nn.WeightedMeanVectors(ups, ws)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d weighted coord %d: %v != legacy %v", k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTreeMeanFanoutInvariance: past the leaf size the tree engages; its
// shape is fixed by len(uploads), so the result is bit-identical at every
// worker count — the aggregation half of the determinism contract.
func TestTreeMeanFanoutInvariance(t *testing.T) {
	for _, k := range []int{treeLeaf + 1, 3 * treeLeaf, 300, treeLeaf*treeMaxGroups + 5} {
		dim := 61
		ups, ws := randomUploads(k, dim, int64(k))
		for _, weights := range [][]float64{nil, ws} {
			var ref nn.ParamVector
			for _, w := range []Workers{Limit(1), Limit(2), Limit(5), {}} {
				r := MeanReducer{W: w}
				got := r.Reduce(ups, weights)
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("k=%d coord %d: fan-out changed the bits (%v vs %v)", k, i, got[i], ref[i])
					}
				}
			}
			// The tree reorders float additions, so it need not be
			// bit-equal to the serial fold — but it must agree to
			// accumulated rounding error.
			var serial nn.ParamVector
			if weights == nil {
				serial = nn.MeanVectors(ups)
			} else {
				serial = nn.WeightedMeanVectors(ups, weights)
			}
			for i := range serial {
				if math.Abs(ref[i]-serial[i]) > 1e-9 {
					t.Fatalf("k=%d coord %d: tree %v vs serial %v", k, i, ref[i], serial[i])
				}
			}
		}
	}
}

// TestTreeMeanZeroWeights: an all-zero weight vector degrades to the
// plain mean, matching nn.WeightedMeanVectors' documented behaviour, on
// both sides of the leaf threshold.
func TestTreeMeanZeroWeights(t *testing.T) {
	for _, k := range []int{8, 200} {
		ups, _ := randomUploads(k, 33, 5)
		zeros := make([]float64, k)
		r := MeanReducer{W: Limit(3)}
		got := r.Reduce(ups, zeros)
		want := r.Reduce(ups, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d coord %d: zero weights %v != unweighted %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestTreeMeanDoesNotMutateUploads: Reducer contract — uploads are
// read-only.
func TestTreeMeanDoesNotMutateUploads(t *testing.T) {
	ups, ws := randomUploads(150, 17, 6)
	snap := make([]nn.ParamVector, len(ups))
	for i, u := range ups {
		snap[i] = append(nn.ParamVector(nil), u...)
	}
	r := MeanReducer{W: Limit(4)}
	r.Reduce(ups, ws)
	for i := range ups {
		for j := range ups[i] {
			if ups[i][j] != snap[i][j] {
				t.Fatalf("upload %d mutated at %d", i, j)
			}
		}
	}
}
