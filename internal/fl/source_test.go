package fl

import (
	"fmt"
	"reflect"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// sourceEnv builds the standard test environment with its client shards
// held three different ways: "legacy" is the historical eager Clients
// slice, "materialized" wraps that exact slice in a ClientSource, and
// "lazy" synthesizes shards on demand from the same partition seed
// through a deliberately tiny LRU. All three must be observationally
// identical to every engine.
func sourceEnv(seed int64, clients int, het data.Heterogeneity, mode string) *Env {
	cfg := data.VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 40, TestPerClass: 15,
		ModesPerClass: 2, Sep: 1.2, Noise: 0.3, Seed: seed,
	}
	var fed *data.Federated
	switch mode {
	case "legacy":
		fed = data.BuildVision(cfg, clients, het, seed+1)
	case "materialized":
		fed = data.BuildVision(cfg, clients, het, seed+1)
		fed.Source = data.NewMaterialized(fed.Clients)
		fed.Clients = nil
	case "lazy":
		fed = data.BuildVisionLazy(cfg, clients, het, seed+1, 3)
	default:
		panic("unknown source mode " + mode)
	}
	return &Env{Fed: fed, Model: models.MLP(12, 16, 4)}
}

var sourceModes = []string{"legacy", "materialized", "lazy"}

// TestRunIdenticalAcrossSources is the engine-level half of the
// equivalence property: fl.Run produces bit-identical histories whether
// shards are eager, wrapped, or synthesized lazily — per scheme and at
// both serial and fanned-out parallelism.
func TestRunIdenticalAcrossSources(t *testing.T) {
	for _, het := range []data.Heterogeneity{{IID: true}, {Beta: 0.5}} {
		for _, par := range []int{1, 0} {
			t.Run(fmt.Sprintf("%s/par%d", het.String(), par), func(t *testing.T) {
				cfg := Config{Rounds: 3, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
					LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 7, Parallelism: par}
				var ref *History
				for _, mode := range sourceModes {
					env := sourceEnv(21, 6, het, mode)
					h, err := Run(&wireAlgo{}, env, cfg)
					if err != nil {
						t.Fatalf("%s: %v", mode, err)
					}
					if n := env.Fed.OutstandingLeases(); n != 0 {
						t.Fatalf("%s: %d leases outstanding after run", mode, n)
					}
					if ref == nil {
						ref = h
						continue
					}
					if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
						t.Fatalf("%s history diverges from legacy:\n%v\nvs\n%v", mode, ref.Metrics, h.Metrics)
					}
				}
			})
		}
	}
}

// TestRunAsyncIdenticalAcrossSources repeats the property for the
// buffered-async engine, whose lease pattern (batched in-flight
// training) differs from the sync round loop.
func TestRunAsyncIdenticalAcrossSources(t *testing.T) {
	cfg := Config{Rounds: 4, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 2, Seed: 9}
	opts := AsyncOptions{Buffer: 2}
	var ref *History
	for _, mode := range sourceModes {
		env := sourceEnv(23, 6, data.Heterogeneity{Beta: 0.5}, mode)
		h, err := RunAsync(env, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if n := env.Fed.OutstandingLeases(); n != 0 {
			t.Fatalf("%s: %d leases outstanding after run", mode, n)
		}
		if ref == nil {
			ref = h
			continue
		}
		if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
			t.Fatalf("%s async history diverges:\n%v\nvs\n%v", mode, ref.Metrics, h.Metrics)
		}
	}
}

// TestVirtualSybilsIdenticalAcrossSources: with virtual Byzantine ids
// extending the population past N, the shadow environment routes every
// source through the shadowSource wrapper — legacy and lazy federations
// must still agree bit-for-bit, and sybil participation must actually
// change the outcome relative to the benign run.
func TestVirtualSybilsIdenticalAcrossSources(t *testing.T) {
	for _, attack := range []string{AttackLabelFlip, AttackSignFlip} {
		t.Run(attack, func(t *testing.T) {
			cfg := Config{Rounds: 3, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 16,
				LR: 0.05, Momentum: 0.5, EvalEvery: 1, Seed: 11,
				Adversary: AdversaryOptions{Attack: attack, Virtual: 4}}
			benignCfg := cfg
			benignCfg.Adversary = AdversaryOptions{}
			var ref, benign *History
			for _, mode := range sourceModes {
				env := sourceEnv(25, 4, data.Heterogeneity{IID: true}, mode)
				h, err := Run(&wireAlgo{}, env, cfg)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if n := env.Fed.OutstandingLeases(); n != 0 {
					t.Fatalf("%s: %d leases outstanding after run", mode, n)
				}
				if ref == nil {
					ref = h
					b, err := Run(&wireAlgo{}, sourceEnv(25, 4, data.Heterogeneity{IID: true}, mode), benignCfg)
					if err != nil {
						t.Fatal(err)
					}
					benign = b
					continue
				}
				if !reflect.DeepEqual(ref.Metrics, h.Metrics) {
					t.Fatalf("%s attacked history diverges:\n%v\nvs\n%v", mode, ref.Metrics, h.Metrics)
				}
			}
			if reflect.DeepEqual(ref.Metrics, benign.Metrics) {
				t.Fatalf("%s: virtual sybils had no effect on the run", attack)
			}
		})
	}
}

// TestVirtualZeroBitCompat: Virtual=0 must not perturb existing attacked
// histories — the sybil extension draws no RNG and takes the historical
// shadow path.
func TestVirtualZeroBitCompat(t *testing.T) {
	base := Config{Rounds: 2, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0, EvalEvery: 1, Seed: 13,
		Adversary: AdversaryOptions{Attack: AttackLabelFlip, Frac: 0.34}}
	h1, err := Run(&wireAlgo{}, sourceEnv(27, 6, data.Heterogeneity{IID: true}, "legacy"), base)
	if err != nil {
		t.Fatal(err)
	}
	withZero := base
	withZero.Adversary.Virtual = 0
	h2, err := Run(&wireAlgo{}, sourceEnv(27, 6, data.Heterogeneity{IID: true}, "legacy"), withZero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1.Metrics, h2.Metrics) {
		t.Fatal("explicit Virtual=0 changed the attacked history")
	}
}

// TestEvaluatePerClientLeasesDrainOnError: a failing per-client pass must
// release every shard lease on the way out (satellite: streaming
// evaluation with zero-leak error paths).
func TestEvaluatePerClientLeasesDrainOnError(t *testing.T) {
	env := sourceEnv(29, 6, data.Heterogeneity{IID: true}, "lazy")
	// A wrong-length vector fails replica loading inside every client's
	// evaluation.
	if _, err := EvaluatePerClient(env, make(nn.ParamVector, 3), 32, Limit(0)); err == nil {
		t.Fatal("expected load error from truncated parameter vector")
	}
	if n := env.Fed.OutstandingLeases(); n != 0 {
		t.Fatalf("%d leases outstanding after failed evaluation", n)
	}
	// And the happy path agrees with the eager federation.
	vec := nn.FlattenParams(env.Model.New(tensor.NewRNG(3)).Params())
	repLazy, err := EvaluatePerClient(env, vec, 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	repEager, err := EvaluatePerClient(sourceEnv(29, 6, data.Heterogeneity{IID: true}, "legacy"), vec, 32, Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repLazy, repEager) {
		t.Fatalf("per-client reports diverge:\n%+v\nvs\n%+v", repLazy, repEager)
	}
	if n := env.Fed.OutstandingLeases(); n != 0 {
		t.Fatalf("%d leases outstanding after evaluation", n)
	}
}

// TestTotalTrainSamplesNeverMaterializes: weight lookups must run off
// assignment metadata alone — the lazy cache stays empty.
func TestTotalTrainSamplesNeverMaterializes(t *testing.T) {
	env := sourceEnv(31, 200, data.Heterogeneity{Beta: 0.3}, "lazy")
	lz, ok := env.Fed.Source.(*data.Lazy)
	if !ok {
		t.Fatalf("expected *data.Lazy source, got %T", env.Fed.Source)
	}
	total := env.Fed.TotalTrainSamples()
	if total != 4*40 {
		t.Fatalf("TotalTrainSamples = %d, want 160", total)
	}
	for ci := 0; ci < env.NumClients(); ci++ {
		_ = env.Fed.Size(ci)
	}
	if lz.Resident() != 0 {
		t.Fatalf("Size/TotalTrainSamples synthesized %d shards", lz.Resident())
	}
}
