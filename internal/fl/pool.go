package fl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fedcross/internal/data"
	"fedcross/internal/tensor"
)

// LocalJob is one client-slot training job prepared by an algorithm for
// the worker pool. Algorithms build the full job list serially — drawing
// any randomness they need (assignment shuffles, RNG splits, generated
// augmentation samples) in their usual order — and then hand the list to
// TrainAll, which may execute the jobs in any order on any number of
// goroutines.
//
// Determinism contract: every field a job reads during training must be
// owned by the job (RNG) or immutable for the duration of the round
// (Spec.Init, Spec.ProxRef, Spec.GradCorrection, the shard). Because the
// RNG is split before dispatch, a job's training trajectory depends only
// on the job itself, never on scheduling — so results are bit-identical
// at every parallelism level.
type LocalJob struct {
	// Client indexes env.Fed.Clients; ignored when Shard is set.
	Client int
	// Shard, when non-nil, overrides the client's shard (FedGen trains on
	// generator-augmented copies).
	Shard *data.Dataset
	// Spec is the training job; Init and the hook vectors are read-only.
	Spec LocalSpec
	// RNG is the job's exclusively-owned generator, pre-split by the
	// algorithm before dispatch.
	RNG *tensor.RNG
}

// TrainAll runs every job's local training across at most workers
// goroutines (workers <= 0 means runtime.NumCPU()) and returns the
// results in job order. Any error aborts the round: in-flight jobs
// finish, unstarted jobs are skipped, and the error with the lowest job
// index among those that actually failed is returned.
func TrainAll(env *Env, jobs []LocalJob, workers int) ([]LocalResult, error) {
	results := make([]LocalResult, len(jobs))
	err := parallelForErr(len(jobs), workers, func(i int) error {
		job := jobs[i]
		shard := job.Shard
		if shard == nil {
			shard = env.Fed.Clients[job.Client]
		}
		res, err := TrainLocal(env.Model, shard, job.Spec, job.RNG)
		if err != nil {
			return fmt.Errorf("client %d: %w", job.Client, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// parallelForErr runs fn like parallelFor but fails fast: once any
// iteration returns an error, unstarted iterations are skipped
// (in-flight ones finish), and the lowest-index error among the
// iterations that actually ran is returned.
func parallelForErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	parallelFor(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelFor runs fn(i) for every i in [0,n) across at most workers
// goroutines (workers <= 0 means runtime.NumCPU()). Iterations are
// claimed from a shared atomic counter, so the call balances uneven job
// costs; it returns once every iteration has finished. fn must be safe to
// call concurrently for distinct i.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForWorker(n, workers, func(_, i int) { fn(i) })
}

// ParallelFor exposes the engine's deterministic work-stealing loop to
// the algorithm layer (core's Gram-matrix similarity pass). fn(i) must
// write only state owned by iteration i, so results are independent of
// scheduling.
func ParallelFor(n, workers int, fn func(i int)) { parallelFor(n, workers, fn) }

// parallelForWorker is parallelFor with the executing worker's index in
// [0, effectiveWorkers(n, workers)) passed to fn, so callers can lease
// per-worker state (evaluation replicas, index buffers) up front. Worker
// identity must never influence results — only which scratch state an
// iteration uses.
func parallelForWorker(n, workers int, fn func(w, i int)) {
	workers = effectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// effectiveWorkers resolves a worker budget against the iteration count:
// non-positive budgets mean every core, and no more workers than
// iterations (with a floor of one).
func effectiveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
