package fl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fedcross/internal/data"
	"fedcross/internal/tensor"
)

// LocalJob is one client-slot training job prepared by an algorithm for
// the worker pool. Algorithms build the full job list serially — drawing
// any randomness they need (assignment shuffles, RNG splits, generated
// augmentation samples) in their usual order — and then hand the list to
// TrainAll, which may execute the jobs in any order on any number of
// goroutines.
//
// Determinism contract: every field a job reads during training must be
// owned by the job (RNG) or immutable for the duration of the round
// (Spec.Init, Spec.ProxRef, Spec.GradCorrection, the shard). Because the
// RNG is split before dispatch, a job's training trajectory depends only
// on the job itself, never on scheduling — so results are bit-identical
// at every parallelism level.
type LocalJob struct {
	// Client identifies the shard to lease from env.Fed; ignored when
	// Shard is set.
	Client int
	// Shard, when non-nil, overrides the client's shard (FedGen trains on
	// generator-augmented copies).
	Shard *data.Dataset
	// Spec is the training job; Init and the hook vectors are read-only.
	Spec LocalSpec
	// RNG is the job's exclusively-owned generator, pre-split by the
	// algorithm before dispatch.
	RNG *tensor.RNG
}

// TrainAll runs every job's local training across the allowance w (see
// Workers: at most w.Max goroutines, leased from w.Budget when it is
// shared with other concurrent simulations) and returns the results in
// job order. Any error aborts the round: in-flight jobs finish, unstarted
// jobs are skipped, and the error with the lowest job index among those
// that actually failed is returned.
func TrainAll(env *Env, jobs []LocalJob, w Workers) ([]LocalResult, error) {
	results := make([]LocalResult, len(jobs))
	err := parallelForErr(len(jobs), w, func(i int) error {
		job := jobs[i]
		shard := job.Shard
		if shard == nil {
			// Lease for exactly the duration of the local pass, so a
			// virtualized federation keeps only in-flight shards pinned.
			shard = env.Fed.LeaseShard(job.Client)
			defer env.Fed.ReleaseShard(job.Client)
		}
		res, err := TrainLocal(env.Model, shard, job.Spec, job.RNG)
		if err != nil {
			return fmt.Errorf("client %d: %w", job.Client, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ParallelForErr exposes the fail-fast loop to the scheduling layers (the
// experiment grid runner): fn(i) must write only state owned by iteration
// i. Semantics match TrainAll's error contract: first failure by index
// wins, unstarted iterations are skipped.
func ParallelForErr(n int, w Workers, fn func(i int) error) error {
	return parallelForErr(n, w, fn)
}

// parallelForErr runs fn like parallelFor but fails fast: once any
// iteration returns an error the shared claim counter is fast-forwarded
// past n, so the remaining iterations are never even claimed (the old
// loop spun every one of them through a claim-and-skip pass — wasted
// cycles for huge n). In-flight iterations finish, and the lowest-index
// error among the iterations that actually failed is returned (tracked as
// a running minimum, not an O(n) error slice).
func parallelForErr(n int, w Workers, fn func(i int) error) error {
	workers, leased := w.lease(n)
	defer w.Budget.ReleaseN(leased)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		minIdx = n
		minErr error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < minIdx {
						minIdx, minErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					next.Store(int64(n)) // fast-forward: stop claim churn
				}
			}
		}()
	}
	wg.Wait()
	return minErr
}

// parallelFor runs fn(i) for every i in [0,n) across at most workers
// goroutines (workers <= 0 means runtime.NumCPU()). Iterations are
// claimed from a shared atomic counter, so the call balances uneven job
// costs; it returns once every iteration has finished. fn must be safe to
// call concurrently for distinct i.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForWorker(n, Limit(workers), func(_, i int) { fn(i) })
}

// ParallelFor exposes the engine's deterministic work-stealing loop to
// the algorithm layer (core's Gram-matrix similarity pass). fn(i) must
// write only state owned by iteration i, so results are independent of
// scheduling.
func ParallelFor(n, workers int, fn func(i int)) { parallelFor(n, workers, fn) }

// ParallelForW is ParallelFor under a Workers allowance, so budgeted
// callers (similarity passes running inside scheduled grid cells) fan out
// only as far as the shared budget allows.
func ParallelForW(n int, w Workers, fn func(i int)) {
	parallelForWorker(n, w, func(_, i int) { fn(i) })
}

// parallelForWorker is the budget-aware dispatch core: it resolves the
// allowance (leasing fan-out tokens beyond the always-granted inline
// worker when a budget is attached) and passes the executing worker's
// index in [0, workers) to fn, so callers can lease per-worker state
// (evaluation replicas, index buffers) up front. Worker identity must
// never influence results — only which scratch state an iteration uses.
func parallelForWorker(n int, w Workers, fn func(wk, i int)) {
	workers, leased := w.lease(n)
	defer w.Budget.ReleaseN(leased)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
}

// effectiveWorkers resolves a worker budget against the iteration count:
// non-positive budgets mean every core, and no more workers than
// iterations (with a floor of one).
func effectiveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
