package landscape

import (
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func landEnv(seed int64) (models.Factory, *data.Dataset) {
	cfg := data.VisionConfig{
		Classes: 3, Features: 8,
		TrainPerClass: 30, TestPerClass: 12,
		ModesPerClass: 1, Sep: 1.5, Noise: 0.3, Seed: seed,
	}
	_, test := data.GenerateVision(cfg)
	return models.MLP(8, 8, 3), test
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		{Resolution: 2, Radius: 0.5},
		{Resolution: 8, Radius: 0.5}, // even
		{Resolution: 9, Radius: 0},
		{Resolution: 9, Radius: 0.5, MaxSamples: -1},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Fatalf("case %d should fail validation: %+v", i, o)
		}
	}
}

func TestScan2DCenterMatchesDirectEval(t *testing.T) {
	factory, test := landEnv(1)
	vec := nn.FlattenParams(factory.New(tensor.NewRNG(2)).Params())
	opts := Options{Resolution: 5, Radius: 0.3, Seed: 3}
	grid, err := Scan2D(factory, vec, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Loss) != 5 || len(grid.Loss[0]) != 5 {
		t.Fatalf("grid dims %dx%d", len(grid.Loss), len(grid.Loss[0]))
	}
	// Axes are symmetric about zero.
	if grid.Xs[2] != 0 || grid.Xs[0] != -0.3 || grid.Xs[4] != 0.3 {
		t.Fatalf("axes %v", grid.Xs)
	}
	// The centre is the unperturbed model: CenterLoss must match Evaluate.
	centre := grid.CenterLoss()
	probe := vec.Clone()
	net := factory.New(tensor.NewRNG(0))
	if err := nn.LoadParams(net.Params(), probe); err != nil {
		t.Fatal(err)
	}
	x, y := test.Batch(allIdx(test.Len()))
	logits := net.Forward(x, false)
	loss, _ := nn.SoftmaxCrossEntropy(logits, y)
	if diff := centre - loss; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("centre loss %v, direct eval %v", centre, loss)
	}
	if grid.MaxLoss() < centre {
		t.Fatal("max loss below centre loss")
	}
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestScanDeterministicInSeed(t *testing.T) {
	factory, test := landEnv(4)
	vec := nn.FlattenParams(factory.New(tensor.NewRNG(5)).Params())
	opts := Options{Resolution: 3, Radius: 0.2, Seed: 9}
	g1, err := Scan2D(factory, vec, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Scan2D(factory, vec, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Loss {
		for j := range g1.Loss[i] {
			if g1.Loss[i][j] != g2.Loss[i][j] {
				t.Fatal("scan must be deterministic given the seed")
			}
		}
	}
}

func TestMaxSamplesCapsEvaluation(t *testing.T) {
	factory, test := landEnv(6)
	vec := nn.FlattenParams(factory.New(tensor.NewRNG(7)).Params())
	opts := Options{Resolution: 3, Radius: 0.2, Seed: 1, MaxSamples: 8}
	if _, err := Scan2D(factory, vec, test, opts); err != nil {
		t.Fatal(err)
	}
}

func TestSharpnessDetectsCurvatureDifference(t *testing.T) {
	// A trained (near-minimum) model should be sharper at large radius
	// than at small radius — sanity that the metric responds to scale.
	factory, test := landEnv(8)
	rng := tensor.NewRNG(9)
	net := factory.New(rng)
	// Train briefly so we sit near a minimum.
	opt := nn.NewSGD(0.1, 0.5)
	for step := 0; step < 60; step++ {
		x, y := test.Batch(allIdx(test.Len()))
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, g := nn.SoftmaxCrossEntropy(logits, y)
		net.Backward(g)
		opt.Step(net.Params(), net.Grads())
	}
	vec := nn.FlattenParams(net.Params())
	small, err := Sharpness(factory, vec, test, 0.05, 4, 11, fl.Workers{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Sharpness(factory, vec, test, 0.5, 4, 11, fl.Workers{})
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("sharpness at radius 0.5 (%v) should exceed radius 0.05 (%v)", large, small)
	}
	if small < -0.05 {
		t.Fatalf("near a minimum sharpness should be ~non-negative, got %v", small)
	}
}

func TestSharpnessValidation(t *testing.T) {
	factory, test := landEnv(10)
	vec := nn.FlattenParams(factory.New(tensor.NewRNG(1)).Params())
	if _, err := Sharpness(factory, vec, test, 0, 2, 1, fl.Workers{}); err == nil {
		t.Fatal("radius 0 must error")
	}
	if _, err := Sharpness(factory, vec, test, 0.1, 0, 1, fl.Workers{}); err == nil {
		t.Fatal("nDirs 0 must error")
	}
}
