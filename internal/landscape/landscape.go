// Package landscape visualises loss surfaces around trained models,
// reproducing the paper's Figure 4 (RQ1): FedCross global models should
// sit in flatter valleys than FedAvg's. It implements the
// filter-normalised random-direction technique of Li et al. (2018) —
// per-tensor normalisation at this scale — plus a scalar sharpness metric
// so "flatter" is testable, not just visual.
package landscape

import (
	"fmt"
	"math"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Grid is a square 2-D slice of the loss surface: Loss[i][j] is the test
// loss at w + Xs[i]·d1 + Ys[j]·d2.
type Grid struct {
	// Xs and Ys are the offsets along the two directions.
	Xs, Ys []float64
	// Loss[i][j] is the loss at offset (Xs[i], Ys[j]).
	Loss [][]float64
}

// CenterLoss returns the loss at the grid centre (the model itself). The
// grid must have odd resolution.
func (g *Grid) CenterLoss() float64 {
	return g.Loss[len(g.Xs)/2][len(g.Ys)/2]
}

// MaxLoss returns the largest loss on the grid.
func (g *Grid) MaxLoss() float64 {
	m := g.Loss[0][0]
	for _, row := range g.Loss {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Options configures a landscape scan.
type Options struct {
	// Resolution is the per-axis grid size; odd values centre the model.
	Resolution int
	// Radius is the scan half-width in filter-normalised units.
	Radius float64
	// Seed picks the two random directions.
	Seed int64
	// MaxSamples caps how many evaluation samples are used (0 = all);
	// landscape scans are Resolution² evaluations, so this bounds cost.
	MaxSamples int
	// Workers is the allowance the per-probe evaluations draw from (the
	// zero value means every core, unbudgeted; the Fig-4 harness attaches
	// the experiment scheduler's shared budget here so concurrent grid
	// cells never oversubscribe).
	Workers fl.Workers
}

// DefaultOptions mirrors the paper's [-0.5, 0.5] axes at a small grid.
func DefaultOptions() Options {
	return Options{Resolution: 9, Radius: 0.5, Seed: 1, MaxSamples: 256}
}

// Validate reports the first problem with the options.
func (o Options) Validate() error {
	switch {
	case o.Resolution < 3:
		return fmt.Errorf("landscape: resolution %d must be >= 3", o.Resolution)
	case o.Resolution%2 == 0:
		return fmt.Errorf("landscape: resolution %d must be odd so the model sits at the centre", o.Resolution)
	case o.Radius <= 0:
		return fmt.Errorf("landscape: radius %v must be positive", o.Radius)
	case o.MaxSamples < 0:
		return fmt.Errorf("landscape: MaxSamples %d negative", o.MaxSamples)
	}
	return nil
}

// Scan2D evaluates the loss surface around vec on ds along two random
// filter-normalised directions.
func Scan2D(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, opts Options) (*Grid, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	eval := ds
	if opts.MaxSamples > 0 && ds.Len() > opts.MaxSamples {
		idx := make([]int, opts.MaxSamples)
		step := ds.Len() / opts.MaxSamples
		for i := range idx {
			idx[i] = i * step
		}
		eval = ds.Subset(idx)
	}

	rng := tensor.NewRNG(opts.Seed)
	d1 := normalizedDirection(factory, vec, rng)
	d2 := normalizedDirection(factory, vec, rng)

	res := opts.Resolution
	xs := make([]float64, res)
	for i := range xs {
		xs[i] = -opts.Radius + 2*opts.Radius*float64(i)/float64(res-1)
	}
	ys := append([]float64(nil), xs...)

	grid := &Grid{Xs: xs, Ys: ys, Loss: make([][]float64, res)}
	probe := vec.Clone()
	for i := range xs {
		grid.Loss[i] = make([]float64, res)
		for j := range ys {
			copy(probe, vec)
			probe.AXPY(xs[i], d1)
			probe.AXPY(ys[j], d2)
			_, loss, err := fl.Evaluate(factory, probe, eval, 64, opts.Workers)
			if err != nil {
				return nil, fmt.Errorf("landscape: probe (%d,%d): %w", i, j, err)
			}
			grid.Loss[i][j] = loss
		}
	}
	return grid, nil
}

// normalizedDirection draws a Gaussian direction and rescales it
// per-parameter-tensor so each tensor's direction norm equals the model
// tensor's norm (the filter-normalisation that makes scans comparable
// across architectures and checkpoints).
func normalizedDirection(factory models.Factory, vec nn.ParamVector, rng *tensor.RNG) nn.ParamVector {
	pool := models.Replicas(factory)
	rep := pool.Get()
	defer pool.Put(rep)
	net := rep.Net
	if err := nn.LoadParams(net.Params(), vec); err != nil {
		panic(fmt.Sprintf("landscape: direction: %v", err))
	}
	dir := make(nn.ParamVector, len(vec))
	for i := range dir {
		dir[i] = rng.Normal(0, 1)
	}
	off := 0
	for _, p := range net.Params() {
		n := p.Len()
		seg := dir[off : off+n]
		segNorm := 0.0
		for _, v := range seg {
			segNorm += v * v
		}
		pNorm := 0.0
		for _, v := range p.Data {
			pNorm += v * v
		}
		if segNorm > 0 {
			scale := 0.0
			if pNorm > 0 {
				scale = math.Sqrt(pNorm) / math.Sqrt(segNorm)
			}
			for k := range seg {
				seg[k] *= scale
			}
		}
		off += n
	}
	return dir
}

// Sharpness measures how steeply the loss rises around vec: the mean loss
// increase at the given radius over nDirs random filter-normalised
// directions. Lower is flatter; the paper's RQ1 expects
// Sharpness(FedCross) < Sharpness(FedAvg).
func Sharpness(factory models.Factory, vec nn.ParamVector, ds *data.Dataset, radius float64, nDirs int, seed int64, w fl.Workers) (float64, error) {
	if radius <= 0 || nDirs <= 0 {
		return 0, fmt.Errorf("landscape: Sharpness radius %v / nDirs %d invalid", radius, nDirs)
	}
	_, base, err := fl.Evaluate(factory, vec, ds, 64, w)
	if err != nil {
		return 0, fmt.Errorf("landscape: Sharpness base eval: %w", err)
	}
	rng := tensor.NewRNG(seed)
	total := 0.0
	probe := vec.Clone()
	for d := 0; d < nDirs; d++ {
		dir := normalizedDirection(factory, vec, rng)
		copy(probe, vec)
		probe.AXPY(radius, dir)
		_, lp, err := fl.Evaluate(factory, probe, ds, 64, w)
		if err != nil {
			return 0, fmt.Errorf("landscape: Sharpness probe %d: %w", d, err)
		}
		copy(probe, vec)
		probe.AXPY(-radius, dir)
		_, lm, err := fl.Evaluate(factory, probe, ds, 64, w)
		if err != nil {
			return 0, fmt.Errorf("landscape: Sharpness probe -%d: %w", d, err)
		}
		total += 0.5*(lp+lm) - base
	}
	return total / float64(nDirs), nil
}
