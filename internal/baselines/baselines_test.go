package baselines

import (
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func testEnv(seed int64, clients int, het data.Heterogeneity) *fl.Env {
	cfg := data.VisionConfig{
		Classes: 4, Features: 12,
		TrainPerClass: 50, TestPerClass: 20,
		ModesPerClass: 2, Sep: 1.2, Noise: 0.35, Seed: seed,
	}
	fed := data.BuildVision(cfg, clients, het, seed+1)
	return &fl.Env{Fed: fed, Model: models.MLP(12, 16, 4)}
}

func testCfg(rounds int) fl.Config {
	return fl.Config{
		Rounds: rounds, ClientsPerRound: 4, LocalEpochs: 2, BatchSize: 16,
		LR: 0.05, Momentum: 0.5, EvalEvery: 0, Seed: 3,
	}
}

func allBaselines(t *testing.T) []fl.Algorithm {
	t.Helper()
	prox, err := NewFedProx(0.01)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewFedGen(DefaultFedGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	return []fl.Algorithm{NewFedAvg(), prox, NewSCAFFOLD(), gen, NewCluSamp()}
}

func TestAllBaselinesEndToEnd(t *testing.T) {
	for _, algo := range allBaselines(t) {
		algo := algo
		t.Run(algo.Name(), func(t *testing.T) {
			env := testEnv(1, 8, data.Heterogeneity{Beta: 0.5})
			hist, err := fl.Run(algo, env, testCfg(8))
			if err != nil {
				t.Fatal(err)
			}
			if hist.Final().TestAcc < 0.35 {
				t.Fatalf("%s final accuracy %v, expected clearly above 25%% chance", algo.Name(), hist.Final().TestAcc)
			}
		})
	}
}

func TestBaselineCategoriesMatchTableI(t *testing.T) {
	want := map[string]string{
		"fedavg":   "Classic",
		"fedprox":  "Global Control Variable",
		"scaffold": "Global Control Variable",
		"fedgen":   "Knowledge Distillation",
		"clusamp":  "Client Grouping",
	}
	for _, algo := range allBaselines(t) {
		if got := algo.Category(); got != want[algo.Name()] {
			t.Fatalf("%s category %q, want %q", algo.Name(), got, want[algo.Name()])
		}
	}
}

func TestCommProfilesMatchTableI(t *testing.T) {
	classes := map[string]string{
		"fedavg":   "Low",
		"fedprox":  "Low",
		"scaffold": "High",
		"fedgen":   "Medium",
		"clusamp":  "Low",
	}
	for _, algo := range allBaselines(t) {
		got := algo.RoundComm(10).OverheadClass()
		if got != classes[algo.Name()] {
			t.Fatalf("%s overhead %q, want %q", algo.Name(), got, classes[algo.Name()])
		}
	}
}

func TestFedAvgAggregationWeighted(t *testing.T) {
	// With one dominant client, the global model should land near that
	// client's upload. Construct directly via the aggregation helper.
	uploads := []nn.ParamVector{{0, 0}, {10, 10}}
	got := nn.WeightedMeanVectors(uploads, []float64{1, 9})
	if got[0] != 9 {
		t.Fatalf("weighted mean = %v", got)
	}
}

func TestFedProxValidation(t *testing.T) {
	if _, err := NewFedProx(0); err == nil {
		t.Fatal("mu=0 must be rejected")
	}
	if _, err := NewFedProx(-1); err == nil {
		t.Fatal("negative mu must be rejected")
	}
}

func TestFedGenValidation(t *testing.T) {
	bad := DefaultFedGenOptions()
	bad.NoiseDim = 0
	if _, err := NewFedGen(bad); err == nil {
		t.Fatal("NoiseDim=0 must be rejected")
	}
	bad = DefaultFedGenOptions()
	bad.GenLR = 0
	if _, err := NewFedGen(bad); err == nil {
		t.Fatal("GenLR=0 must be rejected")
	}
	bad = DefaultFedGenOptions()
	bad.AugmentPerClient = -1
	if _, err := NewFedGen(bad); err == nil {
		t.Fatal("negative augment must be rejected")
	}
}

func TestSCAFFOLDControlVariatesEvolve(t *testing.T) {
	env := testEnv(2, 6, data.Heterogeneity{Beta: 0.5})
	algo := NewSCAFFOLD()
	cfg := testCfg(3)
	if _, err := fl.Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	if algo.c.Norm() == 0 {
		t.Fatal("server control variate should be nonzero after training")
	}
	participated := 0
	for _, ci := range algo.ci {
		if ci != nil {
			participated++
		}
	}
	if participated == 0 {
		t.Fatal("no client variates were initialised")
	}
}

func TestSCAFFOLDDriftCorrectionChangesTrajectory(t *testing.T) {
	// SCAFFOLD and FedAvg start identically; after several rounds on
	// non-IID data their trajectories must differ (the variates bite).
	env := testEnv(3, 6, data.Heterogeneity{Beta: 0.1})
	cfg := testCfg(4)
	hAvg, err := fl.Run(NewFedAvg(), env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hSca, err := fl.Run(NewSCAFFOLD(), env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hAvg.Final().TestAcc == hSca.Final().TestAcc && hAvg.Final().TestLoss == hSca.Final().TestLoss {
		t.Fatal("SCAFFOLD should diverge from FedAvg on non-IID data")
	}
}

func TestFedGenGeneratorLearns(t *testing.T) {
	env := testEnv(4, 6, data.Heterogeneity{Beta: 0.5})
	gen, err := NewFedGen(DefaultFedGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(3)
	if _, err := fl.Run(gen, env, cfg); err != nil {
		t.Fatal(err)
	}
	// After rounds, generated samples should be classified as their
	// conditioning label by the global model more often than chance.
	x, y := gen.generate(200)
	net := env.Model.New(tensor.NewRNG(0))
	if err := nn.LoadParams(net.Params(), gen.Global()); err != nil {
		t.Fatal(err)
	}
	logits := net.Forward(x, false)
	acc := nn.Accuracy(logits, y)
	if acc < 0.3 {
		t.Fatalf("generator-label agreement %v, want > chance 0.25", acc)
	}
}

// TestFedGenOnTokenDataset guards the seed-era bug where the generator's
// continuous outputs reached an Embedding layer as token ids and panicked
// ("token id -1 out of vocab"): on token datasets the augmentation and
// distillation paths must discretise generated features first.
func TestFedGenOnTokenDataset(t *testing.T) {
	fed := data.GenerateShakespeare(data.ShakespeareConfig{
		Vocab: 12, SeqLen: 5, Clients: 6, SamplesPerClient: 12,
		TestSamples: 30, Mix: 0.6, Seed: 2,
	})
	env := &fl.Env{Fed: fed, Model: models.CharLSTM(12, 5, 4, 6)}
	gen, err := NewFedGen(DefaultFedGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run(gen, env, testCfg(2)); err != nil {
		t.Fatal(err)
	}
	// Every augmented shard must contain only valid token ids.
	aug := gen.augmented(fed.Clients[0])
	for i, v := range aug.X.Data {
		if v != float64(int(v)) || v < 0 || int(v) >= fed.Clients[0].TokenVocab {
			t.Fatalf("augmented feature %d is not a valid token id: %v", i, v)
		}
	}
}

func TestCluSampSelectionProperties(t *testing.T) {
	env := testEnv(5, 10, data.Heterogeneity{Beta: 0.5})
	algo := NewCluSamp()
	cfg := testCfg(1)
	rng := tensor.NewRNG(7)
	if err := algo.Init(env, cfg, rng); err != nil {
		t.Fatal(err)
	}
	// Cold start: all clients cold, selection must be k distinct clients.
	sel := algo.SelectClients(0, rng, 10, 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
	seen := map[int]bool{}
	for _, c := range sel {
		if c < 0 || c >= 10 || seen[c] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[c] = true
	}
	// Warm up all clients, then clustered selection must still return k
	// valid indices.
	if err := algo.Round(0, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	sel2 := algo.SelectClients(1, rng, 10, 4)
	if len(sel2) != 4 {
		t.Fatalf("warm selection %v", sel2)
	}
	for _, c := range sel2 {
		if c < 0 || c >= 10 {
			t.Fatalf("warm selection out of range: %v", sel2)
		}
	}
}

func TestBaselinesTolerateFullDropout(t *testing.T) {
	// A round where every selected client drops must not error and must
	// leave the global model unchanged.
	for _, algo := range allBaselines(t) {
		env := testEnv(6, 4, data.Heterogeneity{IID: true})
		cfg := testCfg(1)
		rng := tensor.NewRNG(1)
		if err := algo.Init(env, cfg, rng); err != nil {
			t.Fatalf("%s init: %v", algo.Name(), err)
		}
		before := algo.Global().Clone()
		if err := algo.Round(0, []int{-1, -1, -1, -1}); err != nil {
			t.Fatalf("%s full-dropout round: %v", algo.Name(), err)
		}
		after := algo.Global()
		if before.DistanceSq(after) != 0 {
			t.Fatalf("%s changed global model with zero uploads", algo.Name())
		}
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	cfg := testCfg(2)
	for _, name := range []string{"fedavg", "scaffold"} {
		mk := func() fl.Algorithm {
			if name == "fedavg" {
				return NewFedAvg()
			}
			return NewSCAFFOLD()
		}
		h1, err := fl.Run(mk(), testEnv(7, 5, data.Heterogeneity{IID: true}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := fl.Run(mk(), testEnv(7, 5, data.Heterogeneity{IID: true}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if h1.Final().TestAcc != h2.Final().TestAcc {
			t.Fatalf("%s not deterministic: %v vs %v", name, h1.Final().TestAcc, h2.Final().TestAcc)
		}
	}
}
