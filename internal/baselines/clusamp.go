package baselines

import (
	"fmt"
	"math"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// CluSamp implements clustered client sampling (Fraboni et al., ICML
// 2021): clients are grouped into K clusters and one representative is
// drawn per cluster, reducing the variance of the aggregation. Following
// the paper's setup we cluster on model-gradient similarity (each client's
// last observed update direction) rather than raw data distributions,
// which would leak private information. Clients that have never
// participated share a "cold" pool and are explored first. Aggregation is
// sample-weighted FedAvg, and communication matches FedAvg (Table I:
// Low).
type CluSamp struct {
	fl.Wire
	env     *fl.Env
	cfg     fl.Config
	rng     *tensor.RNG
	global  nn.ParamVector
	recvBuf nn.ParamVector // recycled broadcast-decode destination

	// updates[i] is client i's last update direction (yᵢ − x), keyed by
	// client id and absent until first participation — a map rather than
	// a dense slice, so the gradient memory stays O(participants) for
	// huge populations.
	updates map[int]nn.ParamVector
}

// NewCluSamp returns a CluSamp instance.
func NewCluSamp() *CluSamp { return &CluSamp{} }

// Name implements fl.Algorithm.
func (a *CluSamp) Name() string { return "clusamp" }

// Category implements fl.Algorithm.
func (a *CluSamp) Category() string { return "Client Grouping" }

// Init creates the global model and empty gradient memory.
func (a *CluSamp) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	a.updates = make(map[int]nn.ParamVector)
	return nil
}

// SelectClients implements fl.Selector: k-medoid-style clustering on
// cosine similarity of remembered update directions, one uniform draw per
// cluster. Cold clients (no remembered update) are explored before warm
// clusters are exploited.
func (a *CluSamp) SelectClients(r int, rng *tensor.RNG, n, k int) []int {
	var cold, warm []int
	for i := 0; i < n; i++ {
		if a.updates[i] == nil {
			cold = append(cold, i)
		} else {
			warm = append(warm, i)
		}
	}
	rng.Shuffle(len(cold), func(i, j int) { cold[i], cold[j] = cold[j], cold[i] })

	selected := make([]int, 0, k)
	// Exploration: fill from the cold pool first.
	for _, ci := range cold {
		if len(selected) == k {
			return selected
		}
		selected = append(selected, ci)
	}
	remaining := k - len(selected)
	if remaining <= 0 || len(warm) == 0 {
		return selected
	}
	clusters := a.clusterWarm(warm, remaining, rng)
	for _, members := range clusters {
		if len(selected) == k {
			break
		}
		if len(members) == 0 {
			continue
		}
		selected = append(selected, members[rng.Intn(len(members))])
	}
	// Top up with random warm clients if clustering under-filled.
	for len(selected) < k {
		selected = append(selected, warm[rng.Intn(len(warm))])
	}
	return selected
}

// clusterWarm greedily assigns warm clients to c clusters seeded by
// far-apart update directions (k-medoids++ style seeding, one assignment
// pass — cheap and adequate for selection).
func (a *CluSamp) clusterWarm(warm []int, c int, rng *tensor.RNG) [][]int {
	if c > len(warm) {
		c = len(warm)
	}
	seeds := make([]int, 0, c)
	seeds = append(seeds, warm[rng.Intn(len(warm))])
	for len(seeds) < c {
		// Pick the client least similar to its nearest seed.
		best, bestScore := -1, math.Inf(1)
		for _, ci := range warm {
			taken := false
			for _, s := range seeds {
				if s == ci {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			nearest := math.Inf(-1)
			for _, s := range seeds {
				sim := cosine(a.updates[ci], a.updates[s])
				if sim > nearest {
					nearest = sim
				}
			}
			if nearest < bestScore {
				best, bestScore = ci, nearest
			}
		}
		if best == -1 {
			break
		}
		seeds = append(seeds, best)
	}
	clusters := make([][]int, len(seeds))
	for _, ci := range warm {
		bestSeed, bestSim := 0, math.Inf(-1)
		for si, s := range seeds {
			sim := cosine(a.updates[ci], a.updates[s])
			if sim > bestSim {
				bestSeed, bestSim = si, sim
			}
		}
		clusters[bestSeed] = append(clusters[bestSeed], ci)
	}
	return clusters
}

func cosine(x, y nn.ParamVector) float64 {
	nx, ny := x.Norm(), y.Norm()
	if nx == 0 || ny == 0 {
		return 0
	}
	return x.Dot(y) / (nx * ny)
}

// Round trains the selected clients FedAvg-style on the worker pool and
// remembers each client's update direction for future clustering (the
// gradient memory is refreshed in selection order during the reduce).
// Both the memory and the aggregation see only wire-visible vectors: a
// straggler contributes to neither, exactly as a server that never
// received the upload.
func (a *CluSamp) Round(r int, selected []int) error {
	uploads, weights, clients, recv, err := trainSelected(a.env, a.cfg, a.rng, a.Transport(), &a.recvBuf, a.global, selected, fl.LocalSpec{})
	if err != nil {
		return fmt.Errorf("baselines: clusamp round %d: %w", r, err)
	}
	if len(uploads) == 0 {
		return nil
	}
	if a.cfg.MinUploads > 0 && len(uploads) < a.cfg.MinUploads {
		return nil // degraded round: keep the model and the gradient memory
	}
	for j, up := range uploads {
		a.updates[clients[j]] = up.Sub(recv)
	}
	a.global, err = reduce(a.cfg, a.global, uploads, weights)
	if err != nil {
		return fmt.Errorf("baselines: clusamp round %d: %w", r, err)
	}
	return nil
}

// Global implements fl.Algorithm.
func (a *CluSamp) Global() nn.ParamVector { return a.global }

// RoundComm implements fl.Algorithm: FedAvg traffic.
func (a *CluSamp) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k}
}
