// Package baselines implements the five comparison methods of the paper's
// evaluation: FedAvg (classic), FedProx and SCAFFOLD (global control
// variable methods), FedGen (knowledge distillation) and CluSamp (client
// grouping). All satisfy fl.Algorithm and run against the same
// environments as FedCross.
package baselines

import (
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// FedAvg is the classic one-to-multi scheme: dispatch the global model to
// K clients, train locally, and average the uploads weighted by local
// sample counts (McMahan et al., 2017).
type FedAvg struct {
	env    *fl.Env
	cfg    fl.Config
	rng    *tensor.RNG
	global nn.ParamVector
}

// NewFedAvg returns a FedAvg instance.
func NewFedAvg() *FedAvg { return &FedAvg{} }

// Name implements fl.Algorithm.
func (a *FedAvg) Name() string { return "fedavg" }

// Category implements fl.Algorithm.
func (a *FedAvg) Category() string { return "Classic" }

// Init creates the initial global model.
func (a *FedAvg) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	return nil
}

// Round trains the selected clients from the global model and averages.
func (a *FedAvg) Round(r int, selected []int) error {
	uploads, weights, err := trainSelected(a.env, a.cfg, a.rng, a.global, selected, fl.LocalSpec{})
	if err != nil {
		return fmt.Errorf("baselines: fedavg round %d: %w", r, err)
	}
	if len(uploads) == 0 {
		return nil // every client dropped; keep the current global model
	}
	a.global = nn.WeightedMeanVectors(uploads, weights)
	return nil
}

// Global implements fl.Algorithm.
func (a *FedAvg) Global() nn.ParamVector { return a.global }

// RoundComm implements fl.Algorithm: K models down, K models up.
func (a *FedAvg) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k}
}

// trainSelected runs local training from init on every surviving selected
// client, applying the extra LocalSpec hooks (Prox/ProxRef/GradCorrection
// are taken from hooks; the loop fills in the shared fields). Training
// fans out over the worker pool; RNG splits happen serially in selection
// order beforehand, so results do not depend on the worker count. It
// returns the uploaded vectors and their sample-count weights.
func trainSelected(env *fl.Env, cfg fl.Config, rng *tensor.RNG, init nn.ParamVector, selected []int, hooks fl.LocalSpec) ([]nn.ParamVector, []float64, error) {
	jobs := selectedJobs(cfg, rng, init, selected, hooks)
	results, err := fl.TrainAll(env, jobs, cfg.Workers())
	if err != nil {
		return nil, nil, err
	}
	uploads, weights := uploadsAndWeights(results)
	return uploads, weights, nil
}

// uploadsAndWeights unpacks training results into the parameter vectors
// and sample-count weights that FedAvg-style aggregation consumes.
func uploadsAndWeights(results []fl.LocalResult) ([]nn.ParamVector, []float64) {
	uploads := make([]nn.ParamVector, 0, len(results))
	weights := make([]float64, 0, len(results))
	for _, res := range results {
		uploads = append(uploads, res.Params)
		weights = append(weights, float64(res.Samples))
	}
	return uploads, weights
}

// selectedJobs builds the per-client job list for the surviving selected
// clients: shared hyper-parameters from cfg, algorithm hooks from hooks,
// and one RNG split per job drawn in selection order.
func selectedJobs(cfg fl.Config, rng *tensor.RNG, init nn.ParamVector, selected []int, hooks fl.LocalSpec) []fl.LocalJob {
	survivors := make([]int, 0, len(selected))
	for _, ci := range selected {
		if ci >= 0 { // skip dropped clients
			survivors = append(survivors, ci)
		}
	}
	rngs := rng.SplitN(len(survivors))
	jobs := make([]fl.LocalJob, len(survivors))
	for i, ci := range survivors {
		spec := hooks
		spec.Init = init
		spec.Epochs = cfg.LocalEpochs
		spec.BatchSize = cfg.BatchSize
		spec.LR = cfg.LR
		spec.Momentum = cfg.Momentum
		jobs[i] = fl.LocalJob{Client: ci, Spec: spec, RNG: rngs[i]}
	}
	return jobs
}
