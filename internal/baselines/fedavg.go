// Package baselines implements the five comparison methods of the paper's
// evaluation: FedAvg (classic), FedProx and SCAFFOLD (global control
// variable methods), FedGen (knowledge distillation) and CluSamp (client
// grouping). All satisfy fl.Algorithm and run against the same
// environments as FedCross.
package baselines

import (
	"errors"
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// FedAvg is the classic one-to-multi scheme: dispatch the global model to
// K clients, train locally, and average the uploads weighted by local
// sample counts (McMahan et al., 2017).
type FedAvg struct {
	fl.Wire
	env     *fl.Env
	cfg     fl.Config
	rng     *tensor.RNG
	global  nn.ParamVector
	recvBuf nn.ParamVector // recycled broadcast-decode destination
}

// NewFedAvg returns a FedAvg instance.
func NewFedAvg() *FedAvg { return &FedAvg{} }

// Name implements fl.Algorithm.
func (a *FedAvg) Name() string { return "fedavg" }

// Category implements fl.Algorithm.
func (a *FedAvg) Category() string { return "Classic" }

// Init creates the initial global model.
func (a *FedAvg) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	return nil
}

// Round trains the selected clients from the global model and averages.
func (a *FedAvg) Round(r int, selected []int) error {
	uploads, weights, _, _, err := trainSelected(a.env, a.cfg, a.rng, a.Transport(), &a.recvBuf, a.global, selected, fl.LocalSpec{})
	if err != nil {
		return fmt.Errorf("baselines: fedavg round %d: %w", r, err)
	}
	if len(uploads) == 0 {
		return nil // every client dropped; keep the current global model
	}
	a.global, err = reduce(a.cfg, a.global, uploads, weights)
	if err != nil {
		return fmt.Errorf("baselines: fedavg round %d: %w", r, err)
	}
	return nil
}

// Global implements fl.Algorithm.
func (a *FedAvg) Global() nn.ParamVector { return a.global }

// reduce routes a round's server-side aggregation through the configured
// fl.Reducer (nil keeps the legacy weighted mean, bit-identical). When
// the non-finite screen drops every upload the current model survives
// unchanged — a fully poisoned round behaves like a fully dropped one.
// A configured quorum (Config.MinUploads) degrades the round the same
// way: below it, the server keeps its current model rather than folding
// a thin cohort.
func reduce(cfg fl.Config, cur nn.ParamVector, uploads []nn.ParamVector, weights []float64) (nn.ParamVector, error) {
	if cfg.MinUploads > 0 && len(uploads) < cfg.MinUploads {
		return cur, nil
	}
	agg, err := fl.ReduceUploads(cfg.Reducer, uploads, weights)
	if errors.Is(err, fl.ErrNoFiniteUploads) {
		return cur, nil
	}
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// RoundComm implements fl.Algorithm: K models down, K models up.
func (a *FedAvg) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k}
}

// trainSelected runs local training from init on every surviving selected
// client, routed through the simulated transport: the dispatched model is
// broadcast through the codec (clients train on the wire-visible decoded
// vector), and each upload travels back delta-encoded against that
// broadcast — a straggler whose upload misses the round deadline is
// excluded like a dropout. The extra LocalSpec hooks come from hooks
// (a FedProx hook with Prox > 0 gets the received broadcast as its
// proximal anchor); the loop fills in the shared fields. Training fans
// out over the worker pool; RNG splits and all transport calls happen
// serially in selection order, so results do not depend on the worker
// count.
//
// It returns the server-visible uploads, their sample-count weights, the
// uploading clients (aligned with uploads), and the client-visible
// broadcast vector.
func trainSelected(env *fl.Env, cfg fl.Config, rng *tensor.RNG, tr *fl.Transport, recvBuf *nn.ParamVector, init nn.ParamVector, selected []int, hooks fl.LocalSpec) (uploads []nn.ParamVector, weights []float64, clients []int, recv nn.ParamVector, err error) {
	survivors := survivingTrainable(env, selected)
	recv = tr.Broadcast(wireDst(tr, recvBuf, len(init)), survivors, init)
	if hooks.Prox > 0 {
		hooks.ProxRef = recv // clients anchor on what they received
	}
	jobs := selectedJobs(cfg, rng, recv, survivors, hooks)
	results, err := fl.TrainAllFanout(env, jobs, cfg.Allowance(), cfg.BatchFanout)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	uploads = make([]nn.ParamVector, 0, len(results))
	weights = make([]float64, 0, len(results))
	clients = make([]int, 0, len(results))
	for j, res := range results {
		dec, ok := tr.Up(res.Params, jobs[j].Client, res.Params, recv)
		if !ok {
			continue // straggler: the server never saw this upload
		}
		uploads = append(uploads, dec)
		weights = append(weights, float64(res.Samples))
		clients = append(clients, jobs[j].Client)
	}
	return uploads, weights, clients, recv, nil
}

// surviving filters the dropped (-1) slots out of a selection.
func surviving(selected []int) []int {
	out := make([]int, 0, len(selected))
	for _, ci := range selected {
		if ci >= 0 {
			out = append(out, ci)
		}
	}
	return out
}

// survivingTrainable additionally drops clients without training data.
// Only virtualized federations report untrainable clients (at
// million-client scale empty shards are expected, not exceptional);
// eager federations report every client trainable, so legacy runs still
// surface the empty-shard training error and histories are unchanged.
func survivingTrainable(env *fl.Env, selected []int) []int {
	out := make([]int, 0, len(selected))
	for _, ci := range selected {
		if ci >= 0 && env.Fed.Trainable(ci) {
			out = append(out, ci)
		}
	}
	return out
}

// wireDst returns an algorithm-owned decode destination of length n for
// a lossy transport, recycling (and resizing) *buf across rounds — or
// nil on the pass-through wire, which never touches destinations.
func wireDst(tr *fl.Transport, buf *nn.ParamVector, n int) nn.ParamVector {
	if tr.PassThrough() {
		return nil
	}
	if len(*buf) != n {
		*buf = make(nn.ParamVector, n)
	}
	return *buf
}

// selectedJobs builds the per-client job list for the surviving selected
// clients: shared hyper-parameters from cfg, algorithm hooks from hooks,
// and one RNG split per job drawn in selection order.
func selectedJobs(cfg fl.Config, rng *tensor.RNG, init nn.ParamVector, selected []int, hooks fl.LocalSpec) []fl.LocalJob {
	survivors := surviving(selected)
	rngs := rng.SplitN(len(survivors))
	jobs := make([]fl.LocalJob, len(survivors))
	for i, ci := range survivors {
		spec := hooks
		spec.Init = init
		spec.Epochs = cfg.LocalEpochs
		spec.BatchSize = cfg.BatchSize
		spec.LR = cfg.LR
		spec.Momentum = cfg.Momentum
		jobs[i] = fl.LocalJob{Client: ci, Spec: spec, RNG: rngs[i]}
	}
	return jobs
}
