package baselines

import (
	"errors"
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// SCAFFOLD corrects client drift with control variates (Karimireddy et
// al., ICML 2020). The server keeps a global variate c and each client a
// local variate cᵢ; every local SGD step adds (c − cᵢ) to the gradient.
// After training, clients refresh cᵢ with the option-II rule
// cᵢ⁺ = cᵢ − c + (x − yᵢ)/(S·η) and the server folds the deltas into x
// and c. Both the model and the variate travel each way, which is why
// Table I classes its communication overhead as High.
type SCAFFOLD struct {
	fl.Wire
	env    *fl.Env
	cfg    fl.Config
	rng    *tensor.RNG
	global nn.ParamVector
	c      nn.ParamVector // server control variate
	// ci holds per-client control variates, keyed by client id and
	// allocated on first participation — a map rather than a dense slice,
	// so state stays O(participants) even for 10^6-client populations.
	ci map[int]nn.ParamVector
	// recvGlobalBuf / recvCBuf are the recycled broadcast-decode
	// destinations for the two downlink payloads.
	recvGlobalBuf, recvCBuf nn.ParamVector
}

// NewSCAFFOLD returns a SCAFFOLD instance.
func NewSCAFFOLD() *SCAFFOLD { return &SCAFFOLD{} }

// Name implements fl.Algorithm.
func (a *SCAFFOLD) Name() string { return "scaffold" }

// Category implements fl.Algorithm.
func (a *SCAFFOLD) Category() string { return "Global Control Variable" }

// Init creates the global model and zero control variates.
func (a *SCAFFOLD) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	a.c = make(nn.ParamVector, len(a.global))
	a.ci = make(map[int]nn.ParamVector)
	return nil
}

// Round implements the SCAFFOLD round with server step size 1. Local
// training fans out over the worker pool: the per-client corrections and
// RNG splits are prepared serially from the pre-round state (c and the cᵢ
// only change in the reduce below), then the variate refreshes fold back
// in selection order.
//
// Both the model and the variate cross the simulated wire in each
// direction: clients train from (and drift-correct against) the decoded
// broadcasts, and each upload travels delta-encoded against the state the
// server already holds — the round's model broadcast for yᵢ, the stored
// cᵢ for the variate, which both endpoints keep wire-visible so delta
// references never diverge. A straggler loses its whole contribution
// (neither fold nor cᵢ refresh), exactly as a server that stopped
// waiting.
func (a *SCAFFOLD) Round(r int, selected []int) error {
	n := len(a.global)
	tr := a.Transport()
	survivors := survivingTrainable(a.env, selected)
	recvGlobal := tr.Broadcast(wireDst(tr, &a.recvGlobalBuf, n), survivors, a.global)
	recvC := tr.Broadcast(wireDst(tr, &a.recvCBuf, n), survivors, a.c)
	jobs := make([]fl.LocalJob, 0, len(survivors))
	for _, ci := range survivors {
		if a.ci[ci] == nil {
			a.ci[ci] = make(nn.ParamVector, n)
		}
		corr := recvC.Sub(a.ci[ci])
		jobs = append(jobs, fl.LocalJob{
			Client: ci,
			Spec: fl.LocalSpec{
				Init: recvGlobal, Epochs: a.cfg.LocalEpochs, BatchSize: a.cfg.BatchSize,
				LR: a.cfg.LR, Momentum: a.cfg.Momentum, GradCorrection: corr,
			},
			RNG: a.rng.Split(),
		})
	}
	results, err := fl.TrainAllFanout(a.env, jobs, a.cfg.Allowance(), a.cfg.BatchFanout)
	if err != nil {
		return fmt.Errorf("baselines: scaffold round %d: %w", r, err)
	}

	var modelDeltaSum, variateDeltaSum nn.ParamVector
	var models []nn.ParamVector // reducer path: the server-visible uploads
	// Variate refreshes are collected and applied only after the round
	// commits: a below-quorum (degraded) round must leave every cᵢ — not
	// just x and c — exactly as it found them. Clients are distinct
	// within a round, so deferring the map writes changes no arithmetic.
	pendingClients := make([]int, 0, len(results))
	pendingVariates := make([]nn.ParamVector, 0, len(results))
	participants := 0
	for j, res := range results {
		ci := jobs[j].Client
		if res.Steps == 0 {
			continue
		}
		// Option II variate refresh, computed client-side from the
		// wire-visible broadcasts: cᵢ⁺ = cᵢ − c + (x − yᵢ)/(steps·η).
		inv := 1.0 / (float64(res.Steps) * a.cfg.LR)
		ciNew := a.ci[ci].Sub(recvC)
		drift := recvGlobal.Sub(res.Params)
		ciNew.AXPY(inv, drift)

		model, ok := tr.Up(res.Params, ci, res.Params, recvGlobal)
		if !ok {
			continue // straggler: model upload missed the deadline
		}
		variate, ok := tr.Up(ciNew, ci, ciNew, a.ci[ci])
		if !ok {
			continue // straggler: variate upload missed the deadline
		}

		if modelDeltaSum == nil {
			modelDeltaSum = make(nn.ParamVector, n)
			variateDeltaSum = make(nn.ParamVector, n)
		}
		modelDeltaSum.AXPY(1, model.Sub(a.global))
		variateDeltaSum.AXPY(1, variate.Sub(a.ci[ci]))
		if a.cfg.Reducer != nil {
			models = append(models, model)
		}
		pendingClients = append(pendingClients, ci)
		// Clone: tr.Up may return a transport- or adversary-owned scratch
		// buffer that is only valid until the next BeginRound, but cᵢ
		// lives for the whole run. Retaining the alias would let a later
		// round's wire traffic rewrite stored variates in place.
		pendingVariates = append(pendingVariates, variate.Clone())
		participants++
	}
	if participants == 0 {
		return nil
	}
	if a.cfg.MinUploads > 0 && participants < a.cfg.MinUploads {
		return nil // degraded round: x, c and every cᵢ stay as they were
	}
	for i, ci := range pendingClients {
		a.ci[ci] = pendingVariates[i]
	}
	// Server updates: x ← x + (1/|S|)·Σ(yᵢ−x); c ← c + (|S|/N)·mean variate delta.
	// The x-update algebraically equals the plain mean of the uploaded
	// models, but the delta-sum form differs from it in final-ulp rounding
	// — so the reducer path (x ← Reduce(models)) engages only when a rule
	// is configured, and nil keeps histories bit-identical.
	if a.cfg.Reducer != nil {
		agg, err := fl.ReduceUploads(a.cfg.Reducer, models, nil)
		if err != nil && !errors.Is(err, fl.ErrNoFiniteUploads) {
			return fmt.Errorf("baselines: scaffold round %d: %w", r, err)
		}
		if err == nil {
			a.global = agg
		}
	} else {
		a.global.AXPY(1/float64(participants), modelDeltaSum)
	}
	a.c.AXPY(1/float64(a.env.NumClients()), variateDeltaSum)
	return nil
}

// Global implements fl.Algorithm.
func (a *SCAFFOLD) Global() nn.ParamVector { return a.global }

// RoundComm implements fl.Algorithm: model + variate in each direction.
func (a *SCAFFOLD) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k, VarsDown: k, VarsUp: k}
}
