package baselines

import (
	"fmt"
	"io"

	"fedcross/internal/nn"
)

// Round-granular checkpoint state for the five baselines, implementing
// fl.RoundCheckpointer. Each algorithm serializes exactly the state that
// survives across rounds — the global model, any per-client server
// memory, and the algorithm RNG's (seed, position) snapshot — so a
// resumed run replays the remaining rounds bit-identically. Per-round
// scratch (decode buffers, job lists, FedGen's client-side generator
// twin) is rebuilt from that state and deliberately absent.

// SaveState implements fl.RoundCheckpointer.
func (a *FedAvg) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, a.global); err != nil {
		return err
	}
	return nn.WriteRNG(w, a.rng)
}

// LoadState implements fl.RoundCheckpointer.
func (a *FedAvg) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: fedavg state: %w", err)
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("baselines: fedavg state: %w", err)
	}
	a.global, a.rng = global, rng
	return nil
}

// SaveState implements fl.RoundCheckpointer.
func (a *FedProx) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, a.global); err != nil {
		return err
	}
	return nn.WriteRNG(w, a.rng)
}

// LoadState implements fl.RoundCheckpointer.
func (a *FedProx) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: fedprox state: %w", err)
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("baselines: fedprox state: %w", err)
	}
	a.global, a.rng = global, rng
	return nil
}

// SaveState implements fl.RoundCheckpointer: the model, both control
// variates (server c and the per-client cᵢ map), and the RNG.
func (a *SCAFFOLD) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, a.global); err != nil {
		return err
	}
	if err := nn.WriteVector(w, a.c); err != nil {
		return err
	}
	if err := nn.WriteVectorMap(w, a.ci); err != nil {
		return err
	}
	return nn.WriteRNG(w, a.rng)
}

// LoadState implements fl.RoundCheckpointer.
func (a *SCAFFOLD) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: scaffold state: %w", err)
	}
	c, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: scaffold state: %w", err)
	}
	ci, err := nn.ReadVectorMap(r)
	if err != nil {
		return fmt.Errorf("baselines: scaffold state: %w", err)
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("baselines: scaffold state: %w", err)
	}
	a.global, a.c, a.ci, a.rng = global, c, ci, rng
	return nil
}

// SaveState implements fl.RoundCheckpointer: the model, the gradient
// memory driving cluster selection, and the RNG.
func (a *CluSamp) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, a.global); err != nil {
		return err
	}
	if err := nn.WriteVectorMap(w, a.updates); err != nil {
		return err
	}
	return nn.WriteRNG(w, a.rng)
}

// LoadState implements fl.RoundCheckpointer.
func (a *CluSamp) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: clusamp state: %w", err)
	}
	updates, err := nn.ReadVectorMap(r)
	if err != nil {
		return fmt.Errorf("baselines: clusamp state: %w", err)
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("baselines: clusamp state: %w", err)
	}
	a.global, a.updates, a.rng = global, updates, rng
	return nil
}

// SaveState implements fl.RoundCheckpointer: the model, the server-side
// generator's parameters, its optimizer momentum, and the RNG. The
// client-side twin is per-round scratch — the next round's broadcast
// overwrites it before any use.
func (a *FedGen) SaveState(w io.Writer) error {
	if err := nn.WriteVector(w, a.global); err != nil {
		return err
	}
	if err := nn.WriteVector(w, nn.FlattenParams(a.gen.Params())); err != nil {
		return err
	}
	if err := a.genOpt.SaveState(w); err != nil {
		return err
	}
	return nn.WriteRNG(w, a.rng)
}

// LoadState implements fl.RoundCheckpointer. Init has already built the
// generator networks with the correct architecture (it runs before any
// resume), so the saved parameters load into the existing layers.
func (a *FedGen) LoadState(r io.Reader) error {
	global, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: fedgen state: %w", err)
	}
	genVec, err := nn.ReadVector(r)
	if err != nil {
		return fmt.Errorf("baselines: fedgen state: %w", err)
	}
	if err := nn.LoadParams(a.gen.Params(), genVec); err != nil {
		return fmt.Errorf("baselines: fedgen state: generator params: %w", err)
	}
	if err := a.genOpt.LoadState(r); err != nil {
		return fmt.Errorf("baselines: fedgen state: optimizer: %w", err)
	}
	rng, err := nn.ReadRNG(r)
	if err != nil {
		return fmt.Errorf("baselines: fedgen state: %w", err)
	}
	a.global, a.rng = global, rng
	return nil
}
