package baselines

import (
	"fmt"

	"fedcross/internal/fl"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// FedProx extends FedAvg with a proximal term µ/2·‖w − w_global‖² in every
// client's loss, stabilising local training under heterogeneity (Li et
// al., MLSys 2020). The paper tunes µ per dataset from
// {0.001, 0.01, 0.1, 1.0}.
type FedProx struct {
	// Mu is the proximal coefficient.
	Mu float64

	fl.Wire
	env     *fl.Env
	cfg     fl.Config
	rng     *tensor.RNG
	global  nn.ParamVector
	recvBuf nn.ParamVector // recycled broadcast-decode destination
}

// NewFedProx returns a FedProx instance with proximal coefficient mu.
func NewFedProx(mu float64) (*FedProx, error) {
	if mu <= 0 {
		return nil, fmt.Errorf("baselines: fedprox mu %v must be positive", mu)
	}
	return &FedProx{Mu: mu}, nil
}

// Name implements fl.Algorithm.
func (a *FedProx) Name() string { return "fedprox" }

// Category implements fl.Algorithm.
func (a *FedProx) Category() string { return "Global Control Variable" }

// Init creates the initial global model.
func (a *FedProx) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	return nil
}

// Round trains with the proximal pull toward the dispatched global model
// (the wire-visible broadcast: trainSelected anchors the proximal term on
// what the clients actually received).
func (a *FedProx) Round(r int, selected []int) error {
	hooks := fl.LocalSpec{Prox: a.Mu}
	uploads, weights, _, _, err := trainSelected(a.env, a.cfg, a.rng, a.Transport(), &a.recvBuf, a.global, selected, hooks)
	if err != nil {
		return fmt.Errorf("baselines: fedprox round %d: %w", r, err)
	}
	if len(uploads) == 0 {
		return nil
	}
	a.global, err = reduce(a.cfg, a.global, uploads, weights)
	if err != nil {
		return fmt.Errorf("baselines: fedprox round %d: %w", r, err)
	}
	return nil
}

// Global implements fl.Algorithm.
func (a *FedProx) Global() nn.ParamVector { return a.global }

// RoundComm implements fl.Algorithm: identical to FedAvg (the proximal
// term needs no extra traffic).
func (a *FedProx) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k}
}
