package baselines

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/tensor"
)

// baselineFactories builds a fresh instance per call — kill/resume runs
// must never share algorithm state.
func baselineFactories(t *testing.T) map[string]func() fl.Algorithm {
	t.Helper()
	return map[string]func() fl.Algorithm{
		"fedavg": func() fl.Algorithm { return NewFedAvg() },
		"fedprox": func() fl.Algorithm {
			a, err := NewFedProx(0.01)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"scaffold": func() fl.Algorithm { return NewSCAFFOLD() },
		"fedgen": func() fl.Algorithm {
			a, err := NewFedGen(DefaultFedGenOptions())
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"clusamp": func() fl.Algorithm { return NewCluSamp() },
	}
}

// stateCfg runs the baselines under faults, a quorum and an adversary so
// the snapshot must carry every piece of live state across the kill.
func stateCfg(par int) fl.Config {
	cfg := testCfg(6)
	cfg.EvalEvery = 1
	cfg.Parallelism = par
	cfg.Faults = fl.FaultOptions{CrashRate: 0.2, DropRate: 0.2, StallRate: 0.2}
	cfg.MinUploads = 2
	cfg.Transport = fl.TransportOptions{Retries: 1, RetryBackoffSec: 0.1}
	cfg.Adversary = fl.AdversaryOptions{Attack: fl.AttackSignFlip, Frac: 0.25}
	return cfg
}

// TestBaselineKillResumeBitIdentity: every baseline killed at a round
// boundary and resumed from its snapshot reproduces the uninterrupted
// history byte-for-byte — control variates, gradient memory, generator
// and optimizer state included.
func TestBaselineKillResumeBitIdentity(t *testing.T) {
	dir := t.TempDir()
	for name, mk := range baselineFactories(t) {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/par%d", name, par), func(t *testing.T) {
				full, err := fl.Run(mk(), testEnv(1, 8, data.Heterogeneity{Beta: 0.5}), stateCfg(par))
				if err != nil {
					t.Fatal(err)
				}
				for _, stop := range []int{1, 3, 5} {
					path := filepath.Join(dir, fmt.Sprintf("%s-%d-%d.ckpt", name, par, stop))
					killed := stateCfg(par)
					killed.Checkpoint = fl.CheckpointOptions{Path: path, StopAfterRound: stop}
					if _, err := fl.Run(mk(), testEnv(1, 8, data.Heterogeneity{Beta: 0.5}), killed); !errors.Is(err, fl.ErrStopped) {
						t.Fatalf("stop %d: want ErrStopped, got %v", stop, err)
					}
					resumed := stateCfg(par)
					resumed.Checkpoint = fl.CheckpointOptions{Path: path, Resume: true}
					h, err := fl.Run(mk(), testEnv(1, 8, data.Heterogeneity{Beta: 0.5}), resumed)
					if err != nil {
						t.Fatalf("stop %d: %v", stop, err)
					}
					if !reflect.DeepEqual(full, h) {
						t.Fatalf("stop %d: resumed history diverged", stop)
					}
				}
			})
		}
	}
}

// TestBaselineStateRejectsHostileBytes: a truncated or corrupted state
// stream fails LoadState with an error — never a panic, never a silently
// half-loaded algorithm.
func TestBaselineStateRejectsHostileBytes(t *testing.T) {
	env := testEnv(2, 6, data.Heterogeneity{IID: true})
	cfg := testCfg(2)
	for name, mk := range baselineFactories(t) {
		t.Run(name, func(t *testing.T) {
			algo := mk()
			if err := algo.Init(env, cfg, tensor.NewRNG(7)); err != nil {
				t.Fatal(err)
			}
			ck, ok := algo.(fl.RoundCheckpointer)
			if !ok {
				t.Fatalf("%s must implement fl.RoundCheckpointer", name)
			}
			var buf bytes.Buffer
			if err := ck.SaveState(&buf); err != nil {
				t.Fatal(err)
			}

			fresh := mk()
			if err := fresh.Init(env, cfg, tensor.NewRNG(7)); err != nil {
				t.Fatal(err)
			}
			fck := fresh.(fl.RoundCheckpointer)
			if err := fck.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("round-trip of valid state failed: %v", err)
			}
			for _, hostile := range [][]byte{
				buf.Bytes()[:buf.Len()/2],
				buf.Bytes()[:1],
				nil,
				[]byte("garbage state bytes"),
			} {
				if err := fck.LoadState(bytes.NewReader(hostile)); err == nil {
					t.Fatal("hostile state bytes must fail to load")
				}
			}
		})
	}
}
