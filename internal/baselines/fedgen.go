package baselines

import (
	"fmt"
	"math"

	"fedcross/internal/data"
	"fedcross/internal/fl"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// FedGenOptions tunes the data-free knowledge-distillation baseline.
type FedGenOptions struct {
	// NoiseDim is the generator's latent width.
	NoiseDim int
	// Hidden is the generator's hidden width.
	Hidden int
	// GenSteps is the number of server-side generator updates per round.
	GenSteps int
	// GenBatch is the generator's training batch size.
	GenBatch int
	// GenLR is the generator optimizer's learning rate.
	GenLR float64
	// AugmentPerClient is how many generated samples are mixed into each
	// client's next local-training set.
	AugmentPerClient int
}

// DefaultFedGenOptions returns a CPU-scale configuration.
func DefaultFedGenOptions() FedGenOptions {
	return FedGenOptions{
		NoiseDim: 4, Hidden: 16, GenSteps: 10, GenBatch: 16,
		GenLR: 0.05, AugmentPerClient: 16,
	}
}

// FedGen is a simplified reproduction of data-free knowledge distillation
// for heterogeneous FL (Zhu et al., ICML 2021). The server trains a
// label-conditioned generator against the ensemble of uploaded client
// models: generated samples must be classified as their conditioning label
// by the ensemble. Clients receive the generator alongside the global
// model and mix generated pseudo-samples into local training, importing
// knowledge about other clients' label regions without sharing data.
//
// Substitution note (DESIGN.md §2): the original generates in a feature
// space shared with split models; we generate directly in input space so
// the whole pipeline stays architecture-agnostic. Both variants exercise
// the same mechanism — server-side ensemble distillation plus client-side
// augmentation — and the same Table-I "Medium" communication profile.
type FedGen struct {
	opts FedGenOptions

	fl.Wire
	env    *fl.Env
	cfg    fl.Config
	rng    *tensor.RNG
	global nn.ParamVector

	gen    *nn.Sequential
	genOpt *nn.SGD
	// clientGen is the client-side view of the generator: each round the
	// server's generator parameters cross the simulated wire and load into
	// this twin, and augmentation samples from it — so a lossy codec
	// degrades exactly what a real client would see. Its construction uses
	// a throwaway RNG (weights are overwritten every round), leaving the
	// algorithm's RNG streams untouched.
	clientGen *nn.Sequential
	genVec    nn.ParamVector // recycled flatten/decode buffer for the download
	recvBuf   nn.ParamVector // recycled model-broadcast decode destination
	classes   int
	feats     int
	// vocab is the token-id space of the federation's datasets (0 for
	// continuous features); generated samples must be discretised into it
	// before touching any Embedding layer.
	vocab int
}

// NewFedGen returns a FedGen instance.
func NewFedGen(opts FedGenOptions) (*FedGen, error) {
	switch {
	case opts.NoiseDim <= 0 || opts.Hidden <= 0:
		return nil, fmt.Errorf("baselines: fedgen generator dims %+v must be positive", opts)
	case opts.GenSteps < 0 || opts.GenBatch <= 0 || opts.GenLR <= 0:
		return nil, fmt.Errorf("baselines: fedgen training options %+v invalid", opts)
	case opts.AugmentPerClient < 0:
		return nil, fmt.Errorf("baselines: fedgen AugmentPerClient %d negative", opts.AugmentPerClient)
	}
	return &FedGen{opts: opts}, nil
}

// Name implements fl.Algorithm.
func (a *FedGen) Name() string { return "fedgen" }

// Category implements fl.Algorithm.
func (a *FedGen) Category() string { return "Knowledge Distillation" }

// Init creates the global model and the server-side generator.
func (a *FedGen) Init(env *fl.Env, cfg fl.Config, rng *tensor.RNG) error {
	a.env, a.cfg, a.rng = env, cfg, rng
	a.global = nn.FlattenParams(env.Model.New(rng.Split()).Params())
	a.classes = env.Fed.Classes
	a.feats = env.Fed.Test.Features()
	a.vocab = env.Fed.Test.TokenVocab
	a.gen = nn.NewSequential(
		nn.NewLinear(a.classes+a.opts.NoiseDim, a.opts.Hidden, rng.Split()),
		nn.NewReLU(),
		nn.NewLinear(a.opts.Hidden, a.feats, rng.Split()),
	)
	a.clientGen = nn.NewSequential(
		nn.NewLinear(a.classes+a.opts.NoiseDim, a.opts.Hidden, tensor.NewRNG(0)),
		nn.NewReLU(),
		nn.NewLinear(a.opts.Hidden, a.feats, tensor.NewRNG(0)),
	)
	a.genVec = nn.FlattenParams(a.gen.Params())
	a.genOpt = nn.NewSGD(a.opts.GenLR, 0.5)
	return nil
}

// Round trains clients on generator-augmented shards, aggregates, then
// refreshes the generator against the new upload ensemble. Shard
// augmentation draws from the algorithm RNG, so it stays in the serial
// job-preparation loop (in selection order, interleaved with the RNG
// splits exactly as the serial engine drew them); only the training
// itself fans out over the worker pool.
//
// Both payloads cross the simulated wire: the global model and the
// generator are broadcast through the codec (augmentation samples from
// the decoded generator twin), and each upload returns delta-encoded
// against the model broadcast. Stragglers are excluded from aggregation
// and distillation alike.
func (a *FedGen) Round(r int, selected []int) error {
	tr := a.Transport()
	survivors := survivingTrainable(a.env, selected)
	recvGlobal := tr.Broadcast(wireDst(tr, &a.recvBuf, len(a.global)), survivors, a.global)
	nn.FlattenParamsInto(a.genVec, a.gen.Params())
	recvGen := tr.Broadcast(a.genVec, survivors, a.genVec)
	if err := nn.LoadParams(a.clientGen.Params(), recvGen); err != nil {
		return fmt.Errorf("baselines: fedgen round %d: generator download: %w", r, err)
	}
	jobs := make([]fl.LocalJob, 0, len(survivors))
	for _, ci := range survivors {
		// Lease only while building the augmented copy; the copy owns its
		// storage (or IS the leased shard when augmentation is off, which
		// stays valid after release because shards are immutable).
		shard := a.env.Fed.LeaseShard(ci)
		aug := a.augmented(shard)
		a.env.Fed.ReleaseShard(ci)
		jobs = append(jobs, fl.LocalJob{
			Client: ci,
			Shard:  aug,
			Spec: fl.LocalSpec{
				Init: recvGlobal, Epochs: a.cfg.LocalEpochs, BatchSize: a.cfg.BatchSize,
				LR: a.cfg.LR, Momentum: a.cfg.Momentum,
			},
			RNG: a.rng.Split(),
		})
	}
	results, err := fl.TrainAllFanout(a.env, jobs, a.cfg.Allowance(), a.cfg.BatchFanout)
	if err != nil {
		return fmt.Errorf("baselines: fedgen round %d: %w", r, err)
	}
	uploads := make([]nn.ParamVector, 0, len(results))
	weights := make([]float64, 0, len(results))
	for j, res := range results {
		dec, ok := tr.Up(res.Params, jobs[j].Client, res.Params, recvGlobal)
		if !ok {
			continue // straggler
		}
		uploads = append(uploads, dec)
		weights = append(weights, float64(res.Samples))
	}
	if len(uploads) == 0 {
		return nil
	}
	if a.cfg.MinUploads > 0 && len(uploads) < a.cfg.MinUploads {
		return nil // degraded round: keep the global model and the generator
	}
	a.global, err = reduce(a.cfg, a.global, uploads, weights)
	if err != nil {
		return fmt.Errorf("baselines: fedgen round %d: %w", r, err)
	}
	a.trainGenerator(uploads)
	return nil
}

// augmented returns the client shard with generator pseudo-samples mixed
// in (no-op while the generator is untrained in round 0 — the samples are
// then just noise with correct labels, which slightly regularises). On
// token datasets the generator's continuous outputs are discretised to
// valid ids first — feeding them to an Embedding raw panics on the first
// negative or out-of-vocab value.
func (a *FedGen) augmented(shard *data.Dataset) *data.Dataset {
	n := a.opts.AugmentPerClient
	if n == 0 {
		return shard
	}
	xg, yg := a.generate(n)
	w := shard.Features()
	x := tensor.Zeros(shard.Len()+n, w)
	copy(x.Data, shard.X.Data)
	copy(x.Data[shard.Len()*w:], xg.Data)
	if shard.TokenVocab > 0 {
		quantizeTokens(x.Data[shard.Len()*w:], shard.TokenVocab)
	}
	y := make([]int, 0, shard.Len()+n)
	y = append(y, shard.Y...)
	y = append(y, yg...)
	return &data.Dataset{X: x, Y: y, Classes: shard.Classes, TokenVocab: shard.TokenVocab}
}

// quantizeTokens rounds generated features to the nearest token id and
// clamps them into [0, vocab) — the discrete sampler for the augmentation
// path. NaN (an untrained generator can emit anything) maps to id 0.
func quantizeTokens(vals []float64, vocab int) {
	max := float64(vocab - 1)
	for i, v := range vals {
		id := math.Round(v)
		if !(id >= 0) { // catches negatives and NaN
			id = 0
		} else if id > max {
			id = max
		}
		vals[i] = id
	}
}

// generate draws n conditioned samples from the client-side generator
// view (the wire-decoded twin loaded at the top of the round).
func (a *FedGen) generate(n int) (*tensor.Tensor, []int) {
	in := tensor.Zeros(n, a.classes+a.opts.NoiseDim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := a.rng.Intn(a.classes)
		labels[i] = y
		in.Data[i*(a.classes+a.opts.NoiseDim)+y] = 1
		for z := 0; z < a.opts.NoiseDim; z++ {
			in.Data[i*(a.classes+a.opts.NoiseDim)+a.classes+z] = a.rng.Normal(0, 1)
		}
	}
	return a.clientGen.Forward(in, false), labels
}

// trainGenerator performs GenSteps ensemble-distillation updates: the
// generated batch must be classified as its conditioning labels by every
// uploaded client model; the input-gradients of the ensemble loss flow
// back through the generator. On token datasets the pass is skipped
// outright: token ids are not differentiable (an Embedding's input
// gradient is identically zero), so distillation could never move the
// generator — text runs exercise the client-side augmentation only, with
// the generated features discretised by quantizeTokens.
func (a *FedGen) trainGenerator(uploads []nn.ParamVector) {
	if a.vocab > 0 {
		return
	}
	pool := models.Replicas(a.env.Model)
	rep := pool.Get()
	defer pool.Put(rep)
	teacher := rep.Net
	// The teacher's own gradients are never read here, but Backward
	// accumulates into them; clear them at lease time so the pooled
	// replica keeps the fresh-net invariant instead of growing garbage
	// across rounds.
	teacher.ZeroGrads()
	width := a.classes + a.opts.NoiseDim
	for step := 0; step < a.opts.GenSteps; step++ {
		in := tensor.Zeros(a.opts.GenBatch, width)
		labels := make([]int, a.opts.GenBatch)
		for i := range labels {
			y := a.rng.Intn(a.classes)
			labels[i] = y
			in.Data[i*width+y] = 1
			for z := 0; z < a.opts.NoiseDim; z++ {
				in.Data[i*width+a.classes+z] = a.rng.Normal(0, 1)
			}
		}
		out := a.gen.Forward(in, true)

		dx := tensor.Zeros(out.Shape...)
		for _, u := range uploads {
			if err := nn.LoadParams(teacher.Params(), u); err != nil {
				continue // architecture mismatch cannot happen in practice
			}
			logits := teacher.Forward(out, false)
			_, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
			tensor.AddInPlace(dx, teacher.Backward(dlogits))
		}
		tensor.ScaleInPlace(dx, 1/float64(len(uploads)))

		a.gen.ZeroGrads()
		a.gen.Backward(dx)
		a.genOpt.Step(a.gen.Params(), a.gen.Grads())
	}
}

// Global implements fl.Algorithm.
func (a *FedGen) Global() nn.ParamVector { return a.global }

// RoundComm implements fl.Algorithm: FedAvg traffic plus a generator
// download per client — the Table-I "Medium" row.
func (a *FedGen) RoundComm(k int) fl.CommProfile {
	return fl.CommProfile{ModelsDown: k, ModelsUp: k, GeneratorsDown: k}
}
