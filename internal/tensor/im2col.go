package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution over CHW images.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate reports an error if the geometry is degenerate.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims: %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel dims: %+v", g)
	case g.Stride <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride: %+v", g)
	case g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding: %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output: %+v", g)
	}
	return nil
}

// Im2Col lowers a single CHW image to a matrix of shape
// (InC*KH*KW) × (OutH*OutW), so convolution becomes one MatMul.
// img must have InC*InH*InW elements (any shape).
func Im2Col(img *Tensor, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	return Im2ColTo(Zeros(g.InC*g.KH*g.KW, oh*ow), img, g)
}

// Im2ColTo is Im2Col writing into a caller-owned workspace of shape
// (InC*KH*KW) × (OutH*OutW). dst must not alias img. Padding gaps are
// cleared, so a reused workspace needs no prior Zero.
func Im2ColTo(dst, img *Tensor, g ConvGeom) *Tensor {
	if img.Len() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input has %d elements, geometry wants %d", img.Len(), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := oh * ow
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColTo destination shape %v, want [%d %d]", dst.Shape, rows, cols))
	}
	out := dst
	if g.Pad > 0 {
		// Out-of-image taps are never written below; clear stale contents.
		out.Zero()
	}
	src := img.Data
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dst := out.Data[row*cols : (row+1)*cols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					rowOff := chanOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[oy*ow+ox] = src[rowOff+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a (InC*KH*KW)×(OutH*OutW)
// gradient matrix back into a CHW image gradient, summing overlaps.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	return Col2ImTo(Zeros(g.InC, g.InH, g.InW), cols, g)
}

// Col2ImTo is Col2Im scattering into a caller-owned image-gradient buffer
// with InC*InH*InW elements (any shape). The buffer is zeroed first, so it
// may hold stale contents. dst must not alias cols.
func Col2ImTo(dstT, cols *Tensor, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	if cols.Rank() != 2 || cols.Shape[0] != rows || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im input shape %v, want [%d %d]", cols.Shape, rows, oh*ow))
	}
	if dstT.Len() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2ImTo destination has %d elements, geometry wants %d", dstT.Len(), g.InC*g.InH*g.InW))
	}
	out := dstT
	out.Zero()
	dst := out.Data
	nc := oh * ow
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				src := cols.Data[row*nc : (row+1)*nc]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					rowOff := chanOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[rowOff+ix] += src[oy*ow+ox]
					}
				}
			}
		}
	}
	return out
}
