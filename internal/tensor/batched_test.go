package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// equalBits fails the test at the first element whose bit pattern
// differs — the batched/backends contract is exact, not approximate.
func equalBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestBatchMatMulMatchesLooped pins every BatchMatMul* form against a
// loop of the corresponding single-matmul kernel over per-group views —
// the per-group bit-identity contract the batched nn layers rely on.
func TestBatchMatMulMatchesLooped(t *testing.T) {
	rng := NewRNG(3)
	const G, m, k, n = 3, 4, 5, 6
	a := rng.Uniform(-1, 1, G, m, k)
	dstB := Zeros(G, m, n)
	dstL := Zeros(G, m, n)
	groupView := func(t3 *Tensor, g, r, c int) *Tensor {
		return New(t3.Data[g*r*c:(g+1)*r*c], r, c)
	}

	t.Run("NN", func(t *testing.T) {
		b := rng.Uniform(-1, 1, G, k, n)
		BatchMatMulTo(dstB, a, b)
		for g := 0; g < G; g++ {
			MatMulTo(groupView(dstL, g, m, n), groupView(a, g, m, k), groupView(b, g, k, n))
		}
		equalBits(t, "to", dstB.Data, dstL.Data)
		BatchMatMulAcc(dstB, a, b)
		for g := 0; g < G; g++ {
			MatMulAcc(groupView(dstL, g, m, n), groupView(a, g, m, k), groupView(b, g, k, n))
		}
		equalBits(t, "acc", dstB.Data, dstL.Data)
	})

	t.Run("TransA", func(t *testing.T) {
		// a slab (G×m×k) holds each group's logical k×m operand.
		b := rng.Uniform(-1, 1, G, m, n)
		dB := Zeros(G, k, n)
		dL := Zeros(G, k, n)
		BatchMatMulTransATo(dB, a, b)
		for g := 0; g < G; g++ {
			MatMulTransATo(groupView(dL, g, k, n), groupView(a, g, m, k), groupView(b, g, m, n))
		}
		equalBits(t, "to", dB.Data, dL.Data)
		BatchMatMulTransAAcc(dB, a, b)
		for g := 0; g < G; g++ {
			MatMulTransAAcc(groupView(dL, g, k, n), groupView(a, g, m, k), groupView(b, g, m, n))
		}
		equalBits(t, "acc", dB.Data, dL.Data)
	})

	t.Run("TransB", func(t *testing.T) {
		b := rng.Uniform(-1, 1, G, n, k)
		BatchMatMulTransBTo(dstB, a, b)
		for g := 0; g < G; g++ {
			MatMulTransBTo(groupView(dstL, g, m, n), groupView(a, g, m, k), groupView(b, g, n, k))
		}
		equalBits(t, "to", dstB.Data, dstL.Data)
		BatchMatMulTransBAcc(dstB, a, b)
		for g := 0; g < G; g++ {
			MatMulTransBAcc(groupView(dstL, g, m, n), groupView(a, g, m, k), groupView(b, g, n, k))
		}
		equalBits(t, "acc", dstB.Data, dstL.Data)
	})

	t.Run("BroadcastA", func(t *testing.T) {
		// Rank-2 a multiplies every group by the same matrix.
		a2 := rng.Uniform(-1, 1, m, k)
		b := rng.Uniform(-1, 1, G, k, n)
		BatchMatMulTo(dstB, a2, b)
		for g := 0; g < G; g++ {
			MatMulTo(groupView(dstL, g, m, n), a2, groupView(b, g, k, n))
		}
		equalBits(t, "to", dstB.Data, dstL.Data)
	})
}

// TestIm2ColBatchMatchesPerSample pins the fused whole-batch lowering
// (and its span-specialized fast paths) against per-sample Im2ColTo, and
// the batched scatter against per-sample Col2ImTo, across strides,
// paddings and kernel shapes.
func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	rng := NewRNG(9)
	geoms := []ConvGeom{
		{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}, // middle-tap fusion
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{InC: 3, InH: 5, InW: 7, KH: 2, KW: 2, Stride: 1, Pad: 1},
		{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 2, InH: 6, InW: 4, KH: 3, KW: 3, Stride: 3, Pad: 2},
	}
	const B = 3
	for gi, g := range geoms {
		inLen := g.InC * g.InH * g.InW
		rows := g.InC * g.KH * g.KW
		spatial := g.OutH() * g.OutW()
		imgs := rng.Uniform(-1, 1, B, inLen)
		fused := Zeros(rows, B*spatial)
		// Poison the workspace: the kernel promises gap clearing.
		for i := range fused.Data {
			fused.Data[i] = math.NaN()
		}
		Im2ColBatchTo(fused, imgs, g)
		for b := 0; b < B; b++ {
			solo := Im2ColTo(Zeros(rows, spatial), New(imgs.Data[b*inLen:(b+1)*inLen], g.InC, g.InH, g.InW), g)
			for r := 0; r < rows; r++ {
				for s := 0; s < spatial; s++ {
					got := fused.Data[r*B*spatial+b*spatial+s]
					want := solo.Data[r*spatial+s]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("geom %d sample %d row %d col %d: %v vs %v", gi, b, r, s, got, want)
					}
				}
			}
		}

		cols := rng.Uniform(-1, 1, rows, B*spatial)
		dx := Zeros(B, inLen)
		Col2ImBatchTo(dx, cols, g)
		for b := 0; b < B; b++ {
			soloCols := Zeros(rows, spatial)
			for r := 0; r < rows; r++ {
				copy(soloCols.Data[r*spatial:(r+1)*spatial], cols.Data[r*B*spatial+b*spatial:r*B*spatial+(b+1)*spatial])
			}
			solo := Col2ImTo(Zeros(g.InC, g.InH, g.InW), soloCols, g)
			equalBits(t, "col2im", dx.Data[b*inLen:(b+1)*inLen], solo.Data)
		}
	}
}

// TestBackendsBitIdentical runs the full matmul family under the
// platform-default backend and under the pure-Go backend on identical
// inputs and requires exact bitwise agreement — the accelerated
// backend's core contract. On platforms where the default IS GoBackend
// the test degenerates to a self-comparison and passes trivially.
func TestBackendsBitIdentical(t *testing.T) {
	platform := CurrentBackend()
	defer SetBackend(platform)
	rng := NewRNG(5)
	// Odd sizes exercise every vector tail.
	const m, k, n = 7, 13, 9
	a := rng.Uniform(-1, 1, m, k)
	b := rng.Uniform(-1, 1, k, n)
	bt := rng.Uniform(-1, 1, n, k)
	seed := rng.Uniform(-1, 1, m, n)

	type variant struct {
		name string
		run  func(dst *Tensor)
	}
	variants := []variant{
		{"MatMulTo", func(dst *Tensor) { MatMulTo(dst, a, b) }},
		{"MatMulAcc", func(dst *Tensor) { MatMulAcc(dst, a, b) }},
		{"MatMulTransBTo", func(dst *Tensor) { MatMulTransBTo(dst, a, bt) }},
		{"MatMulTransBAcc", func(dst *Tensor) { MatMulTransBAcc(dst, a, bt) }},
		{"MatMulTransBSegAcc", func(dst *Tensor) {
			// a (m×k) with k=13 has no small divisor other than 13 itself;
			// use the full reduction as one segment plus a finer split on
			// a compatible operand below.
			MatMulTransBSegAcc(dst, a, bt, k)
		}},
	}
	for _, v := range variants {
		d1 := Zeros(m, n)
		copy(d1.Data, seed.Data)
		v.run(d1)
		SetBackend(GoBackend{})
		d2 := Zeros(m, n)
		copy(d2.Data, seed.Data)
		v.run(d2)
		SetBackend(platform)
		equalBits(t, v.name, d1.Data, d2.Data)
	}

	// TransA writes a k×n destination: dst = aᵀ(k×m)·bm(m×n).
	bm := rng.Uniform(-1, 1, m, n)
	dA1 := Zeros(k, n)
	dA2 := Zeros(k, n)
	MatMulTransATo(dA1, a, bm)
	SetBackend(GoBackend{})
	MatMulTransATo(dA2, a, bm)
	SetBackend(platform)
	equalBits(t, "MatMulTransATo", dA1.Data, dA2.Data)
	MatMulTransAAcc(dA1, a, bm)
	SetBackend(GoBackend{})
	MatMulTransAAcc(dA2, a, bm)
	SetBackend(platform)
	equalBits(t, "MatMulTransAAcc", dA1.Data, dA2.Data)
}

// TestFloat16EncodeSliceMatchesScalar pins the unrolled fp16 encoder
// against per-element Float16Bits over randoms and every special class:
// zeros, subnormals, overflow, infinities, NaN, and exact halves.
func TestFloat16EncodeSliceMatchesScalar(t *testing.T) {
	rng := NewRNG(11)
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 65504, -65504, 65520, 70000,
		math.Inf(1), math.Inf(-1), math.NaN(),
		5.96046448e-08, 6.103515625e-05, 1e-300, -1e-300, 2.5e-8,
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, rng.Normal(0, 1))
		vals = append(vals, rng.Normal(0, 1e4))
	}
	// Cover every slice length mod 4 so the unrolled body and the tail
	// both run.
	for length := len(vals) - 4; length <= len(vals); length++ {
		src := vals[:length]
		got := make([]byte, 2*length)
		Float16EncodeSlice(got, src)
		for i, v := range src {
			want := Float16Bits(v)
			have := binary.LittleEndian.Uint16(got[2*i:])
			if have != want {
				t.Fatalf("len %d element %d (%v): slice %#04x scalar %#04x", length, i, v, have, want)
			}
		}
	}
}
