//go:build !amd64 || purego

package tensor

// Non-amd64 (or purego) builds run the portable scalar kernels; the
// process-wide backend stays GoBackend.

func reluForward(out, x []float64, mask []bool) { reluForwardGo(out, x, mask) }
func reluBackward(dx, g []float64, mask []bool) { reluBackwardGo(dx, g, mask) }

func maxPool2x2Plane(dst []float64, am []int, src []float64, w, oh, ow, base int) bool {
	return false
}
