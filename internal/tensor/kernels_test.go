package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// --- destination-passing kernels: correctness against the allocating forms ---

func TestToKernelsMatchAllocatingForms(t *testing.T) {
	rng := NewRNG(41)
	a := rng.Randn(1, 3, 4)
	b := rng.Randn(1, 3, 4)
	dst := Zeros(3, 4)

	check := func(name string, got, want *Tensor) {
		t.Helper()
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s mismatch at %d: %v vs %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}
	check("AddTo", AddTo(dst, a, b), Add(a, b))
	check("SubTo", SubTo(dst, a, b), Sub(a, b))
	check("MulTo", MulTo(dst, a, b), Mul(a, b))
	check("ScaleTo", ScaleTo(dst, a, 1.5), Scale(a, 1.5))
	check("LerpTo", LerpTo(dst, a, b, 0.99), Lerp(a, b, 0.99))
	check("ApplyTo", ApplyTo(dst, a, math.Abs), Apply(a, math.Abs))
}

func TestToKernelsAliasing(t *testing.T) {
	a := New([]float64{1, 2, 3}, 3)
	b := New([]float64{10, 20, 30}, 3)
	// dst aliasing an operand must behave like the out-of-place op.
	AddTo(a, a, b)
	if a.Data[0] != 11 || a.Data[2] != 33 {
		t.Fatalf("aliased AddTo = %v", a.Data)
	}
	LerpTo(b, b, b, 0.25)
	if b.Data[1] != 20 {
		t.Fatalf("aliased LerpTo = %v", b.Data)
	}
}

func TestMatMulToRejectsAliasedDst(t *testing.T) {
	a := Zeros(2, 2)
	b := Zeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulTo with dst == operand should panic")
		}
	}()
	MatMulTo(a, a, b)
}

// TestMatMulVariantsMatchReference pins the blocked/unrolled kernels (and
// their Acc forms) against a naive triple loop on random shapes large
// enough to cross block boundaries.
func TestMatMulVariantsMatchReference(t *testing.T) {
	naive := func(a, b *Tensor) *Tensor {
		m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
		out := Zeros(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += a.Data[i*k+p] * b.Data[p*n+j]
				}
				out.Data[i*n+j] = s
			}
		}
		return out
	}
	rng := NewRNG(7)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 4}, {7, 300, 9}, {5, 130, 270}, {2, 257, 513}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := rng.Randn(1, m, k)
		b := rng.Randn(1, k, n)
		want := naive(a, b)
		tol := 1e-9 * math.Sqrt(float64(k))

		got := MatMul(a, b)
		gotTA := MatMulTransA(Transpose(a), b)
		gotTB := MatMulTransB(a, Transpose(b))
		acc := Full(1, m, n)
		MatMulAcc(acc, a, b)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > tol {
				t.Fatalf("MatMul(%v) off at %d: %v vs %v", dims, i, got.Data[i], want.Data[i])
			}
			if math.Abs(gotTA.Data[i]-want.Data[i]) > tol {
				t.Fatalf("MatMulTransA(%v) off at %d", dims, i)
			}
			if math.Abs(gotTB.Data[i]-want.Data[i]) > tol {
				t.Fatalf("MatMulTransB(%v) off at %d", dims, i)
			}
			if math.Abs(acc.Data[i]-1-want.Data[i]) > tol {
				t.Fatalf("MatMulAcc(%v) off at %d", dims, i)
			}
		}
	}
}

// TestMatMulParallelBitIdentical forces the row-parallel path (normally
// reserved for large multiplies) and pins that every worker count
// produces bit-identical output — each output row's reduction runs
// entirely on one goroutine in a fixed order.
func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := NewRNG(13)
	m, k, n := 64, 192, 192 // m*k*n > minParallelWork
	if m*k*n < minParallelWork {
		t.Fatalf("test shape too small to trigger the parallel path")
	}
	a := rng.Randn(1, m, k)
	b := rng.Randn(1, k, n)
	bt := Transpose(b)

	prev := MatMulWorkers
	defer func() { MatMulWorkers = prev }()

	MatMulWorkers = 1
	serial := MatMul(a, b)
	serialTB := MatMulTransB(a, bt)
	for _, w := range []int{2, 3, 8} {
		MatMulWorkers = w
		par := MatMul(a, b)
		parTB := MatMulTransB(a, bt)
		for i := range serial.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: MatMul differs at %d", w, i)
			}
			if parTB.Data[i] != serialTB.Data[i] {
				t.Fatalf("workers=%d: MatMulTransB differs at %d", w, i)
			}
		}
	}
}

// TestMatMulPropagatesNaN is the regression test for the IEEE-unsound
// zero-skip fast path: a zero in A meeting a NaN (or Inf) in B must
// produce NaN in every affected output, not silently contribute 0.
func TestMatMulPropagatesNaN(t *testing.T) {
	a := New([]float64{0, 1, 0, 0}, 2, 2) // row 0 = (0,1), row 1 = (0,0)
	b := New([]float64{math.NaN(), 2, 3, 4}, 2, 2)
	c := MatMul(a, b)
	// out[0,0] = 0*NaN + 1*3 -> NaN under IEEE-754.
	if !math.IsNaN(c.At(0, 0)) {
		t.Fatalf("0*NaN must poison the sum, got %v", c.At(0, 0))
	}
	if !math.IsNaN(c.At(1, 0)) {
		t.Fatalf("all-zero row times NaN column must be NaN, got %v", c.At(1, 0))
	}
	// TransA consumes A transposed: same poison requirement.
	ta := MatMulTransA(a, b)
	if !math.IsNaN(ta.At(0, 0)) {
		t.Fatalf("MatMulTransA must propagate NaN, got %v", ta.At(0, 0))
	}
	// Inf behaves the same way: 0*Inf = NaN.
	b2 := New([]float64{math.Inf(1), 2, 3, 4}, 2, 2)
	if v := MatMul(a, b2).At(1, 0); !math.IsNaN(v) {
		t.Fatalf("0*Inf must yield NaN, got %v", v)
	}
}

// TestArgMaxNaNLoses is the regression test for the NaN-blind argmax: a
// NaN in position 0 used to win because `v > bestV` is false for NaN.
func TestArgMaxNaNLoses(t *testing.T) {
	if got := ArgMax(New([]float64{math.NaN(), 0.2, 0.9}, 3)); got != 2 {
		t.Fatalf("ArgMax with leading NaN = %d, want 2", got)
	}
	if got := ArgMax(New([]float64{0.5, math.NaN(), 0.1}, 3)); got != 0 {
		t.Fatalf("ArgMax with inner NaN = %d, want 0", got)
	}
	// Negative values still beat NaN.
	if got := ArgMax(New([]float64{math.NaN(), -3, -7}, 3)); got != 1 {
		t.Fatalf("ArgMax all-negative = %d, want 1", got)
	}
	// All-NaN has no valid prediction: -1, same as empty.
	if got := ArgMax(New([]float64{math.NaN(), math.NaN()}, 2)); got != -1 {
		t.Fatalf("ArgMax all-NaN = %d, want -1", got)
	}
}

// --- allocation contracts ---

func TestKernelsZeroAlloc(t *testing.T) {
	rng := NewRNG(9)
	a := rng.Randn(1, 16, 24)
	b := rng.Randn(1, 16, 24)
	bt := rng.Randn(1, 24, 16)
	dst := Zeros(16, 24)
	mm := Zeros(16, 16)
	cases := []struct {
		name string
		fn   func()
	}{
		{"AddTo", func() { AddTo(dst, a, b) }},
		{"SubTo", func() { SubTo(dst, a, b) }},
		{"MulTo", func() { MulTo(dst, a, b) }},
		{"ScaleTo", func() { ScaleTo(dst, a, 2) }},
		{"LerpTo", func() { LerpTo(dst, a, b, 0.99) }},
		{"MatMulTo", func() { MatMulTo(mm, a, bt) }},
		{"MatMulAcc", func() { MatMulAcc(mm, a, bt) }},
		{"MatMulTransBTo", func() { MatMulTransBTo(mm, a, b) }},
		{"MatMulTransBAcc", func() { MatMulTransBAcc(mm, a, b) }},
		{"AXPY", func() { AXPY(0.5, a, dst) }},
		{"Ensure", func() { dst = Ensure(dst, 16, 24) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(20, c.fn); allocs != 0 {
			t.Errorf("%s allocates %v objects/op, want 0", c.name, allocs)
		}
	}
	// TransA's destination differs in shape from dst above.
	ta := Zeros(24, 24)
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"MatMulTransATo", func() { MatMulTransATo(ta, a, b) }},
		{"MatMulTransAAcc", func() { MatMulTransAAcc(ta, a, b) }},
	} {
		if allocs := testing.AllocsPerRun(20, c.fn); allocs != 0 {
			t.Errorf("%s allocates %v objects/op, want 0", c.name, allocs)
		}
	}
}

func TestIm2ColToZeroAllocAndCorrect(t *testing.T) {
	rng := NewRNG(5)
	g := ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := rng.Randn(1, 2, 6, 6)
	want := Im2Col(img, g)
	ws := Zeros(want.Shape...)
	ws.Fill(123) // stale contents must not leak through padding gaps
	Im2ColTo(ws, img, g)
	for i := range want.Data {
		if ws.Data[i] != want.Data[i] {
			t.Fatalf("Im2ColTo mismatch at %d", i)
		}
	}
	grad := rng.Randn(1, want.Shape[0], want.Shape[1])
	wantIm := Col2Im(grad, g)
	dimg := Zeros(2, 6, 6)
	dimg.Fill(-9)
	Col2ImTo(dimg, grad, g)
	for i := range wantIm.Data {
		if dimg.Data[i] != wantIm.Data[i] {
			t.Fatalf("Col2ImTo mismatch at %d", i)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { Im2ColTo(ws, img, g) }); allocs != 0 {
		t.Errorf("Im2ColTo allocates %v objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { Col2ImTo(dimg, grad, g) }); allocs != 0 {
		t.Errorf("Col2ImTo allocates %v objects/op, want 0", allocs)
	}
}

// --- scratch arena ---

func TestScratchArenaRecycles(t *testing.T) {
	a := GetScratch(10, 10)
	if a.Len() != 100 {
		t.Fatalf("scratch len %d", a.Len())
	}
	backing := &a.Data[:cap(a.Data)][0]
	PutScratch(a)
	b := GetScratch(9, 9)
	if &b.Data[:cap(b.Data)][0] != backing {
		t.Skip("pool returned different storage (GC ran); nothing to assert")
	}
	if b.Len() != 81 {
		t.Fatalf("recycled scratch len %d", b.Len())
	}
	PutScratch(b)
}

func TestScratchArenaHugeRequestFallsBack(t *testing.T) {
	// Above the pooled range: plain allocation, and PutScratch must drop it
	// rather than pooling a giant buffer. Use a just-over-class size.
	tn := GetScratch((1 << maxScratchBits) / (1 << 10)) // pooled class
	PutScratch(tn)
	if got := scratchClass(1<<maxScratchBits + 1); got != -1 {
		t.Fatalf("oversize request got class %d, want -1", got)
	}
}

func TestEnsureReusesAndGrows(t *testing.T) {
	a := Zeros(4, 4)
	backing := &a.Data[0]
	b := Ensure(a, 2, 8)
	if &b.Data[0] != backing {
		t.Fatal("Ensure must reuse storage when capacity suffices")
	}
	if b.Shape[0] != 2 || b.Shape[1] != 8 {
		t.Fatalf("Ensure shape %v", b.Shape)
	}
	c := Ensure(b, 8, 8)
	if len(c.Data) != 64 {
		t.Fatalf("Ensure grow len %d", len(c.Data))
	}
	if d := Ensure(nil, 3); d.Len() != 3 || d.Data[0] != 0 {
		t.Fatal("Ensure(nil) must return a fresh zero tensor")
	}
}

// --- serialization hardening ---

// adversarialHeader builds a tensor header with the given rank and dims
// and no payload.
func adversarialHeader(rank uint32, dims ...uint32) []byte {
	buf := make([]byte, 4+4*len(dims))
	binary.LittleEndian.PutUint32(buf, rank)
	for i, d := range dims {
		binary.LittleEndian.PutUint32(buf[4+4*i:], d)
	}
	return buf
}

func TestReadFromRejectsHostileHeaders(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"huge-rank", adversarialHeader(1 << 20)},
		{"huge-dim", adversarialHeader(1, 1<<30)},
		{"overflow-product", adversarialHeader(4, 1<<28, 1<<28, 1<<28, 1<<28)},
		{"over-cap", adversarialHeader(2, 1<<14, 1<<14)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var tt Tensor
			if _, err := tt.ReadFrom(bytes.NewReader(c.raw)); err == nil {
				t.Fatalf("hostile header %q must be rejected", c.name)
			}
		})
	}
}

func TestReadFromTruncatedPayloadBoundedWork(t *testing.T) {
	// A header declaring the maximum plausible tensor followed by a short
	// payload must fail with ErrUnexpectedEOF after bounded reading.
	hdr := adversarialHeader(2, 1<<12, 1<<12) // exactly MaxDecodeElems
	payload := make([]byte, 1024)
	var tt Tensor
	_, err := tt.ReadFrom(bytes.NewReader(append(hdr, payload...)))
	if err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestReadFromRoundTripPropertyAfterHardening(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		shape := []int{1 + rng.Intn(4), 1 + rng.Intn(5), 1 + rng.Intn(6)}
		orig := rng.Randn(1, shape...)
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		var back Tensor
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		if !SameShape(orig, &back) {
			return false
		}
		for i := range orig.Data {
			if orig.Data[i] != back.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromZeroDimTensor(t *testing.T) {
	orig := Zeros(0, 5)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || back.Shape[1] != 5 {
		t.Fatalf("zero-dim round trip: shape %v len %d", back.Shape, back.Len())
	}
}
