package tensor

import "fmt"

// Batched matrix kernels: G independent multiplies striding over one
// contiguous (G × m × n) destination buffer, dispatched to the backend as
// a single GemmBatch call so an accelerated backend can fuse the group
// loop. Group g of the result is bit-identical to a standalone MatMul*
// call on group g's slabs — the contract the batched nn layers rely on to
// keep per-client training histories unchanged.
//
// Operands are rank-3 (G × rows × cols); an a operand passed rank-2 is
// broadcast across every group (the shared-weight form used when all
// groups multiply by the same matrix). dst must not alias either operand.

// BatchMatMulTo computes dst[g] = a[g]·b[g]: a (G×m×k) or broadcast
// (m×k), b (G×k×n), dst (G×m×n).
func BatchMatMulTo(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, false, false, false)
}

// BatchMatMulAcc computes dst[g] += a[g]·b[g].
func BatchMatMulAcc(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, false, false, true)
}

// BatchMatMulTransATo computes dst[g] = a[g]ᵀ·b[g]: a (G×m×k) holding
// each group's k×m logical operand (or broadcast m×k), b (G×m×n),
// dst (G×k×n).
func BatchMatMulTransATo(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, true, false, false)
}

// BatchMatMulTransAAcc computes dst[g] += a[g]ᵀ·b[g].
func BatchMatMulTransAAcc(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, true, false, true)
}

// BatchMatMulTransBTo computes dst[g] = a[g]·b[g]ᵀ: a (G×m×k) or
// broadcast (m×k), b (G×n×k), dst (G×m×n).
func BatchMatMulTransBTo(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, false, true, false)
}

// BatchMatMulTransBAcc computes dst[g] += a[g]·b[g]ᵀ.
func BatchMatMulTransBAcc(dst, a, b *Tensor) *Tensor {
	return batchMatMul(dst, a, b, false, true, true)
}

func batchMatMul(dst, a, b *Tensor, transA, transB, acc bool) *Tensor {
	if b.Rank() != 3 || dst.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul wants rank-3 b and dst, got b %v dst %v", b.Shape, dst.Shape))
	}
	groups := b.Shape[0]
	if dst.Shape[0] != groups {
		panic(fmt.Sprintf("tensor: BatchMatMul group mismatch dst %v vs b %v", dst.Shape, b.Shape))
	}
	var am, ak, strideA int
	switch a.Rank() {
	case 2:
		am, ak, strideA = a.Shape[0], a.Shape[1], 0 // broadcast across groups
	case 3:
		if a.Shape[0] != groups {
			panic(fmt.Sprintf("tensor: BatchMatMul group mismatch a %v vs b %v", a.Shape, b.Shape))
		}
		am, ak = a.Shape[1], a.Shape[2]
		strideA = am * ak
	default:
		panic(fmt.Sprintf("tensor: BatchMatMul wants rank-2 (broadcast) or rank-3 a, got %v", a.Shape))
	}
	// Map the per-group shapes onto the backend's (m, k, n) with dst m×n
	// and reduction k, mirroring matmulDims for the single-matmul forms.
	var m, k, n int
	switch {
	case transA && transB:
		panic("tensor: BatchMatMul transA && transB unsupported")
	case transA:
		// aᵀ·b: a slab is m×k holding the logical k×m operand; b is m×n.
		if am != b.Shape[1] {
			panic(fmt.Sprintf("tensor: BatchMatMulTransA outer dimension mismatch a %v x b %v", a.Shape, b.Shape))
		}
		m, k, n = ak, am, b.Shape[2]
	case transB:
		// a·bᵀ: b slab is n×k.
		if ak != b.Shape[2] {
			panic(fmt.Sprintf("tensor: BatchMatMulTransB inner dimension mismatch a %v x b %v", a.Shape, b.Shape))
		}
		m, k, n = am, ak, b.Shape[1]
	default:
		if ak != b.Shape[1] {
			panic(fmt.Sprintf("tensor: BatchMatMul inner dimension mismatch a %v x b %v", a.Shape, b.Shape))
		}
		m, k, n = am, ak, b.Shape[2]
	}
	if dst.Shape[1] != m || dst.Shape[2] != n {
		panic(fmt.Sprintf("tensor: BatchMatMul destination shape %v, want [%d %d %d]", dst.Shape, groups, m, n))
	}
	if len(dst.Data) > 0 {
		if len(a.Data) > 0 && &dst.Data[0] == &a.Data[0] {
			panic("tensor: BatchMatMul destination aliases operand a")
		}
		if len(b.Data) > 0 && &dst.Data[0] == &b.Data[0] {
			panic("tensor: BatchMatMul destination aliases operand b")
		}
	}
	strideB := b.Shape[1] * b.Shape[2]
	// (m, k) above already follow the backend convention — m is the dst
	// slab's row count even in the transA case.
	active.GemmBatch(dst.Data, a.Data, b.Data, groups, m, k, n, m*n, strideA, strideB, transA, transB, acc)
	return dst
}

// Im2ColBatchTo lowers a whole minibatch at once: imgs is (B × InC·InH·InW)
// row-major (one flattened CHW image per row) and dst is the fused
// workspace (InC·KH·KW) × (B·OutH·OutW), with sample b occupying the
// column block [b·spatial, (b+1)·spatial). Stacking samples horizontally
// keeps the contraction dimension shared, so one MatMulTo(W, dst)
// convolves the entire batch — and column block b is bit-identical to a
// per-sample Im2ColTo. Padding gaps are cleared, so a reused workspace
// needs no prior Zero. dst must not alias imgs.
func Im2ColBatchTo(dst, imgs *Tensor, g ConvGeom) *Tensor {
	feat := g.InC * g.InH * g.InW
	if imgs.Rank() != 2 || imgs.Shape[1] != feat {
		panic(fmt.Sprintf("tensor: Im2ColBatch input shape %v, want [B %d]", imgs.Shape, feat))
	}
	batch := imgs.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	spatial := oh * ow
	rows := g.InC * g.KH * g.KW
	cols := batch * spatial
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColBatchTo destination shape %v, want [%d %d]", dst.Shape, rows, cols))
	}
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			oyLo, oyHi := convSpan(oh, g.Stride, kh, g.Pad, g.InH)
			for kw := 0; kw < g.KW; kw++ {
				oxLo, oxHi := convSpan(ow, g.Stride, kw, g.Pad, g.InW)
				row := (c*g.KH+kh)*g.KW + kw
				drow := dst.Data[row*cols : (row+1)*cols]
				// The middle tap (kw == Pad with full-width output rows)
				// reads and writes runs that stay contiguous across oy, so
				// the whole [oyLo, oyHi) block is one copy.
				fused := g.Stride == 1 && oxLo == 0 && oxHi == ow && ow == g.InW
				for b := 0; b < batch; b++ {
					src := imgs.Data[b*feat : (b+1)*feat]
					dseg := drow[b*spatial : (b+1)*spatial]
					// Padding gaps are the complement of the valid spans:
					// whole rows outside [oyLo, oyHi) and, per valid row,
					// columns outside [oxLo, oxHi). With Pad == 0 every
					// span is full and these clears are empty.
					for i := range dseg[:oyLo*ow] {
						dseg[i] = 0
					}
					for i, e := oyHi*ow, len(dseg); i < e; i++ {
						dseg[i] = 0
					}
					if fused {
						start := chanOff + (oyLo+kh-g.Pad)*g.InW
						copy(dseg[oyLo*ow:oyHi*ow], src[start:start+(oyHi-oyLo)*ow])
						continue
					}
					for oy := oyLo; oy < oyHi; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						rowOff := chanOff + iy*g.InW
						dline := dseg[oy*ow : oy*ow+ow]
						for x := 0; x < oxLo; x++ {
							dline[x] = 0
						}
						for x := oxHi; x < ow; x++ {
							dline[x] = 0
						}
						if g.Stride == 1 {
							ix0 := rowOff + oxLo + kw - g.Pad
							sline := src[ix0 : ix0+(oxHi-oxLo)]
							if len(sline) < 16 {
								// Short spans: an inline loop beats the
								// memmove call overhead.
								for x, v := range sline {
									dline[oxLo+x] = v
								}
							} else {
								copy(dline[oxLo:oxHi], sline)
							}
						} else {
							ix := rowOff + oxLo*g.Stride + kw - g.Pad
							for ox := oxLo; ox < oxHi; ox++ {
								dline[ox] = src[ix]
								ix += g.Stride
							}
						}
					}
				}
			}
		}
	}
	return dst
}

// convSpan returns the half-open range [lo, hi) of output positions o in
// [0, on) whose input tap i = o*stride + koff - pad lands inside [0, lim).
// The taps of that range are exactly the in-image ones, so callers can run
// the span branch-free (and as one contiguous copy when stride == 1).
func convSpan(on, stride, koff, pad, lim int) (lo, hi int) {
	if t := pad - koff; t > 0 {
		lo = (t + stride - 1) / stride
	}
	u := lim + pad - koff
	if u <= 0 {
		return 0, 0
	}
	hi = (u-1)/stride + 1
	if hi > on {
		hi = on
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Col2ImBatchTo is the adjoint of Im2ColBatchTo: it scatters a fused
// (InC·KH·KW) × (B·OutH·OutW) gradient back into per-sample image
// gradients, summing overlapping taps. dst is (B × InC·InH·InW) and is
// zeroed first. Each sample's scatter visits taps in the same
// (c, kh, kw, oy, ox) order as the per-sample Col2ImTo, so row b of dst
// is bit-identical to the unfused path. dst must not alias cols.
func Col2ImBatchTo(dst, cols *Tensor, g ConvGeom) *Tensor {
	feat := g.InC * g.InH * g.InW
	if dst.Rank() != 2 || dst.Shape[1] != feat {
		panic(fmt.Sprintf("tensor: Col2ImBatch destination shape %v, want [B %d]", dst.Shape, feat))
	}
	batch := dst.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	spatial := oh * ow
	rows := g.InC * g.KH * g.KW
	if cols.Rank() != 2 || cols.Shape[0] != rows || cols.Shape[1] != batch*spatial {
		panic(fmt.Sprintf("tensor: Col2ImBatch input shape %v, want [%d %d]", cols.Shape, rows, batch*spatial))
	}
	dst.Zero()
	nc := batch * spatial
	for b := 0; b < batch; b++ {
		out := dst.Data[b*feat : (b+1)*feat]
		for c := 0; c < g.InC; c++ {
			chanOff := c * g.InH * g.InW
			for kh := 0; kh < g.KH; kh++ {
				oyLo, oyHi := convSpan(oh, g.Stride, kh, g.Pad, g.InH)
				for kw := 0; kw < g.KW; kw++ {
					oxLo, oxHi := convSpan(ow, g.Stride, kw, g.Pad, g.InW)
					row := (c*g.KH+kh)*g.KW + kw
					src := cols.Data[row*nc+b*spatial : row*nc+(b+1)*spatial]
					if g.Stride == 1 && oxLo == 0 && oxHi == ow && ow == g.InW && oyHi > oyLo {
						// Middle tap: source and destination runs stay
						// contiguous across oy — one fused accumulate.
						start := chanOff + (oyLo+kh-g.Pad)*g.InW
						orow := out[start : start+(oyHi-oyLo)*ow]
						for idx, v := range src[oyLo*ow : oyHi*ow] {
							orow[idx] += v
						}
						continue
					}
					for oy := oyLo; oy < oyHi; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						rowOff := chanOff + iy*g.InW
						if g.Stride == 1 {
							ix0 := rowOff + oxLo + kw - g.Pad
							orow := out[ix0 : ix0+(oxHi-oxLo)]
							for idx, v := range src[oy*ow+oxLo : oy*ow+oxHi] {
								orow[idx] += v
							}
						} else {
							ix := rowOff + oxLo*g.Stride + kw - g.Pad
							for ox := oxLo; ox < oxHi; ox++ {
								out[ix] += src[oy*ow+ox]
								ix += g.Stride
							}
						}
					}
				}
			}
		}
	}
	return dst
}
