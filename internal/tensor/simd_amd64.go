//go:build amd64 && !purego

package tensor

// AVX2 kernel primitives. Each assembly routine vectorizes across
// INDEPENDENT output elements (lanes) while keeping every element's own
// accumulation chain identical to the scalar kernels — VMULPD/VADDPD are
// one rounding per operation, exactly like Go's scalar * and + (no FMA
// contraction), so the avx2 backend is bit-identical to GoBackend. The
// dot kernel maps the scalar 4-way partial sums onto the four lanes of
// one ymm accumulator, tails fold into lane 0, and the collapse order is
// ((s0+s1)+s2)+s3 — the exact structure of the scalar dot4.

// hasAVX2 reports whether the CPU and OS support AVX2 ymm state.
func hasAVX2() bool

// axpyAVX computes dst[i] += a * x[i]. len(x) must be ≥ len(dst).
//
//go:noescape
func axpyAVX(dst, x []float64, a float64)

// axpy2AVX computes dst[i] += a0*x0[i] (then) += a1*x1[i], both adds per
// element in that order — one destination pass for two reduction steps.
// len(x0), len(x1) must be ≥ len(dst).
//
//go:noescape
func axpy2AVX(dst, x0, x1 []float64, a0, a1 float64)

// axpy4AVX computes dst[i] += a0*x0[i], then += a1*x1[i], += a2*x2[i],
// += a3*x3[i] — four reduction steps per destination pass, adds in
// ascending order per element. Lengths of x0..x3 must be ≥ len(dst).
//
//go:noescape
func axpy4AVX(dst, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64)

// dotAVX returns the 4-way partial-sum inner product of a and b (lengths
// equal): lane p%4 accumulates ascending p, tail into lane 0, collapse
// ((s0+s1)+s2)+s3 — bit-identical to the scalar dot4.
//
//go:noescape
func dotAVX(a, b []float64) float64

// dotRowsAVX computes dst[j] += dot4(aseg, b[j*stride:j*stride+len(aseg)])
// for every j — a whole destination row of accumulating dots per call,
// with the same partial-sum structure and collapse order as dotAVX.
//
//go:noescape
func dotRowsAVX(dst, aseg, b []float64, stride int)

// reluFwdAVX computes out[i] = x[i] if x[i] > 0 else 0, and mask[i] =
// x[i] > 0 (NaN → false/0, like the scalar comparison). Lengths equal.
//
//go:noescape
func reluFwdAVX(out, x []float64, mask []bool)

// reluBwdAVX computes dx[i] = g[i] if mask[i] else 0. Lengths equal.
//
//go:noescape
func reluBwdAVX(dx, g []float64, mask []bool)

// maxPool2AVX computes one channel plane of non-overlapping 2×2 stride-2
// max pooling with argmax. Each lane replays the scalar loop: best starts
// at -Inf, index at -1, candidates tested in (dy, dx) ascending order with
// strict > (GT_OQ) compare-and-blend. ow must be a positive multiple of 4.
//
//go:noescape
func maxPool2AVX(dst []float64, am []int, src []float64, w, oh, ow, base int)

// avx2Supported is probed once at init and gates backend selection.
var avx2Supported = hasAVX2()

// avx2Backend is the AVX2-accelerated kernel backend, bit-identical to
// GoBackend (see the lane argument above). Elementwise methods it does
// not override fall through to the embedded pure-Go implementations.
type avx2Backend struct{ GoBackend }

// Name implements Backend.
func (avx2Backend) Name() string { return "avx2" }

// Gemm implements Backend. The NN and TransA forms run as k-unrolled
// row-axpy passes — dst row resident while the reduction streams — and
// the TransB form as lane-parallel 4-partial dots; large multiplies fan
// out over dst row chunks exactly like GoBackend.
func (avx2Backend) Gemm(dst, a, b []float64, m, k, n int, transA, transB, acc bool) {
	switch {
	case transA && transB:
		panic("tensor: Gemm transA && transB unsupported")
	case transA:
		gemmTAAVX(dst, a, b, m, k, n, acc)
	case transB:
		if w := matmulWorkerCount(m, m*k*n); w > 1 {
			parallelRows(m, w, func(i0, i1 int) {
				gemmTBRowsAVX(dst, a, b, i0, i1, k, n, acc)
			})
		} else {
			gemmTBRowsAVX(dst, a, b, 0, m, k, n, acc)
		}
	default:
		if w := matmulWorkerCount(m, m*k*n); w > 1 {
			parallelRows(m, w, func(i0, i1 int) {
				gemmNNRowsAVX(dst, a, b, i0, i1, k, n, acc)
			})
		} else {
			gemmNNRowsAVX(dst, a, b, 0, m, k, n, acc)
		}
	}
}

// GemmBatch implements Backend by striding the group slabs through the
// AVX2 single-multiply kernel.
func (v avx2Backend) GemmBatch(dst, a, b []float64, groups, m, k, n, strideD, strideA, strideB int, transA, transB, acc bool) {
	for i := 0; i < groups; i++ {
		ai := a
		if strideA != 0 {
			ai = a[i*strideA:]
		}
		v.Gemm(dst[i*strideD:], ai, b[i*strideB:], m, k, n, transA, transB, acc)
	}
}

// GemmTransBSegAcc implements Backend with the lane-parallel dot kernel;
// segment structure (partials reset and folded per segment, ascending)
// matches GoBackend exactly.
func (avx2Backend) GemmTransBSegAcc(dst, a, b []float64, m, k, n, seg int) {
	if seg <= 0 || k%seg != 0 {
		panic("tensor: GemmTransBSegAcc segment must divide the reduction length")
	}
	for s0 := 0; s0 < k; s0 += seg {
		for i := 0; i < m; i++ {
			dotRowsAVX(dst[i*n:(i+1)*n], a[i*k+s0:i*k+s0+seg], b[s0:], k)
		}
	}
}

// Axpy implements Backend.
func (avx2Backend) Axpy(alpha float64, src, dst []float64) {
	axpyAVX(dst, src, alpha)
}

// gemmNNRowsAVX computes rows [i0,i1) of dst (=|+=) a·b as row-axpy
// passes: dst row i accumulates a[i][p]·b[p][:] for p ascending, two
// reduction steps per destination pass. Chain per element: ascending p,
// one add per term, from 0 (after the zero fill) or the prior value —
// identical to the scalar kernels.
func gemmNNRowsAVX(dd, ad, bd []float64, i0, i1, k, n int, acc bool) {
	for i := i0; i < i1; i++ {
		drow := dd[i*n : (i+1)*n]
		if !acc {
			for j := range drow {
				drow[j] = 0
			}
		}
		arow := ad[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			axpy4AVX(drow, bd[p*n:(p+1)*n], bd[(p+1)*n:(p+2)*n], bd[(p+2)*n:(p+3)*n], bd[(p+3)*n:(p+4)*n],
				arow[p], arow[p+1], arow[p+2], arow[p+3])
		}
		if p+2 <= k {
			axpy2AVX(drow, bd[p*n:(p+1)*n], bd[(p+1)*n:(p+2)*n], arow[p], arow[p+1])
			p += 2
		}
		if p < k {
			axpyAVX(drow, bd[p*n:(p+1)*n], arow[p])
		}
	}
}

// gemmTAAVX computes dst (=|+=) aᵀ·b (a stored k×m, dst m×n) as row-axpy
// passes with the reduction index r ascending per destination row.
func gemmTAAVX(dd, ad, bd []float64, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		drow := dd[i*n : (i+1)*n]
		if !acc {
			for j := range drow {
				drow[j] = 0
			}
		}
		r := 0
		for ; r+4 <= k; r += 4 {
			axpy4AVX(drow, bd[r*n:(r+1)*n], bd[(r+1)*n:(r+2)*n], bd[(r+2)*n:(r+3)*n], bd[(r+3)*n:(r+4)*n],
				ad[r*m+i], ad[(r+1)*m+i], ad[(r+2)*m+i], ad[(r+3)*m+i])
		}
		if r+2 <= k {
			axpy2AVX(drow, bd[r*n:(r+1)*n], bd[(r+1)*n:(r+2)*n], ad[r*m+i], ad[(r+1)*m+i])
			r += 2
		}
		if r < k {
			axpyAVX(drow, bd[r*n:(r+1)*n], ad[r*m+i])
		}
	}
}

// gemmTBRowsAVX computes rows [i0,i1) of dst (=|+=) a·bᵀ (b stored n×k)
// with the lane-parallel dot kernel.
func gemmTBRowsAVX(dd, ad, bd []float64, i0, i1, k, n int, acc bool) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := dd[i*n : (i+1)*n]
		if acc {
			dotRowsAVX(orow, arow, bd, k)
		} else {
			for j := 0; j < n; j++ {
				orow[j] = dotAVX(arow, bd[j*k:(j+1)*k])
			}
		}
	}
}

func init() {
	if avx2Supported {
		defaultBackend = avx2Backend{}
		active = defaultBackend
	}
}

// reluForward computes out/mask from x with the scalar semantics
// out[i] = x[i] if x[i] > 0 else 0; the AVX2 path replaces the
// data-dependent branch (a mispredict per random-signed element) with a
// compare mask.
func reluForward(out, x []float64, mask []bool) {
	if avx2Supported {
		reluFwdAVX(out, x, mask)
		return
	}
	reluForwardGo(out, x, mask)
}

// maxPool2x2Plane dispatches to the AVX2 maxpool kernel when the plane
// shape fits its vector width.
func maxPool2x2Plane(dst []float64, am []int, src []float64, w, oh, ow, base int) bool {
	if !avx2Supported || ow < 4 || ow%4 != 0 {
		return false
	}
	maxPool2AVX(dst, am, src, w, oh, ow, base)
	return true
}

// reluBackward computes dx[i] = g[i] if mask[i] else 0.
func reluBackward(dx, g []float64, mask []bool) {
	if avx2Supported {
		reluBwdAVX(dx, g, mask)
		return
	}
	reluBackwardGo(dx, g, mask)
}
