package tensor

import "math"

// IEEE-754 binary16 conversion kernels. The nn codec layer packs model
// payloads through these when the wire runs at half precision; they live
// here because they are pure numeric kernels with no model semantics.
//
// binary16 layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa
// bits. Largest finite value 65504; smallest positive subnormal 2⁻²⁴.

const (
	f16Infinity = 0x7c00
	f16QuietNaN = 0x7e00
)

// Float16Bits converts v to binary16 bits, rounding to nearest even
// directly from the float64 significand (no intermediate float32, so no
// double rounding). Values beyond the half range overflow to ±Inf;
// magnitudes below 2⁻¹⁴ become subnormal halves; NaN maps to a quiet NaN.
func Float16Bits(v float64) uint16 {
	b := math.Float64bits(v)
	sign := uint16(b >> 48 & 0x8000)
	rawExp := int(b >> 52 & 0x7ff)
	man := b & (1<<52 - 1)

	if rawExp == 0x7ff { // Inf or NaN
		if man != 0 {
			return sign | f16QuietNaN
		}
		return sign | f16Infinity
	}
	if rawExp == 0 {
		// float64 subnormal: magnitude < 2⁻¹⁰²², far below the smallest
		// half subnormal (2⁻²⁴); rounds to signed zero.
		return sign
	}
	exp := rawExp - 1023
	if exp > 15 { // ≥ 2¹⁶: beyond the largest finite half
		return sign | f16Infinity
	}
	if exp >= -14 { // normal half range [2⁻¹⁴, 2¹⁶)
		q := rneShift(man, 52-10)
		// Adding the rounded mantissa into the combined field lets a
		// mantissa overflow (q == 1<<10) carry into the exponent for free;
		// a carry out of exp==15 lands exactly on the Inf encoding.
		combined := uint32(exp+15)<<10 + uint32(q)
		if combined >= 31<<10 {
			return sign | f16Infinity
		}
		return sign | uint16(combined)
	}
	// Subnormal half: express 1.man × 2^exp in units of 2⁻²⁴. The 53-bit
	// significand sig represents sig × 2^(exp−52), so the unit count is
	// sig × 2^(exp−28) — a right shift of 28−exp ≥ 43 bits. A round-up to
	// q == 1<<10 is the smallest normal half, again encoded for free.
	sig := man | 1<<52
	shift := uint(28 - exp)
	if shift > 63 {
		return sign
	}
	return sign | uint16(rneShift(sig, shift))
}

// rneShift shifts man right by shift ∈ [1,63] bits, rounding to nearest
// with ties to even.
func rneShift(man uint64, shift uint) uint64 {
	q := man >> shift
	rem := man & (1<<shift - 1)
	half := uint64(1) << (shift - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return q
}

// Float16EncodeSlice packs src into dst as little-endian binary16, two
// bytes per value, bit-equivalent to calling Float16Bits per element. The
// hot path inlines the normal-half case — raw exponent in [0x3f1, 0x40e],
// i.e. half exponent in [−14, 15] — with the RNE constants hoisted out of
// the loop, and processes four values per iteration; zeros, subnormals,
// overflows, Inf and NaN fall back to Float16Bits. dst must have at least
// 2·len(src) bytes.
func Float16EncodeSlice(dst []byte, src []float64) {
	if len(src) == 0 {
		return
	}
	_ = dst[2*len(src)-1 : 2*len(src)] // one bounds check for the whole pass
	const (
		manMask  = uint64(1)<<52 - 1
		remMask  = uint64(1)<<42 - 1 // dropped mantissa bits (52-10)
		halfRem  = uint64(1) << 41
		expBias  = uint64(1023-15) << 52 // rebias exponent field in place
		infField = uint32(31) << 10
	)
	i := 0
	for ; i+4 <= len(src); i += 4 {
		v0, v1, v2, v3 := src[i], src[i+1], src[i+2], src[i+3]
		b0 := math.Float64bits(v0)
		b1 := math.Float64bits(v1)
		b2 := math.Float64bits(v2)
		b3 := math.Float64bits(v3)
		e0 := b0 >> 52 & 0x7ff
		e1 := b1 >> 52 & 0x7ff
		e2 := b2 >> 52 & 0x7ff
		e3 := b3 >> 52 & 0x7ff
		if e0-0x3f1 > 0x40e-0x3f1 || e1-0x3f1 > 0x40e-0x3f1 ||
			e2-0x3f1 > 0x40e-0x3f1 || e3-0x3f1 > 0x40e-0x3f1 {
			// At least one lane left the normal-half fast range.
			putF16(dst[2*i:], Float16Bits(v0))
			putF16(dst[2*i+2:], Float16Bits(v1))
			putF16(dst[2*i+4:], Float16Bits(v2))
			putF16(dst[2*i+6:], Float16Bits(v3))
			continue
		}
		putF16(dst[2*i:], f16Normal(b0, manMask, remMask, halfRem, expBias, infField))
		putF16(dst[2*i+2:], f16Normal(b1, manMask, remMask, halfRem, expBias, infField))
		putF16(dst[2*i+4:], f16Normal(b2, manMask, remMask, halfRem, expBias, infField))
		putF16(dst[2*i+6:], f16Normal(b3, manMask, remMask, halfRem, expBias, infField))
	}
	for ; i < len(src); i++ {
		putF16(dst[2*i:], Float16Bits(src[i]))
	}
}

// f16Normal encodes a float64 whose raw exponent is already known to be
// in the normal-half range, replicating the Float16Bits normal path: RNE
// on the 42 dropped mantissa bits, mantissa carry rippling into the
// exponent, and a carry past exp 15 landing on the Inf encoding.
func f16Normal(b, manMask, remMask, halfRem uint64, expBias uint64, infField uint32) uint16 {
	sign := uint16(b >> 48 & 0x8000)
	man := b & manMask
	q := man >> 42
	rem := man & remMask
	if rem > halfRem || (rem == halfRem && q&1 == 1) {
		q++
	}
	combined := uint32((b-expBias)>>52&0x7ff)<<10 + uint32(q)
	if combined >= infField {
		return sign | f16Infinity
	}
	return sign | uint16(combined)
}

func putF16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

// Float16From expands binary16 bits to float64 exactly (every half value
// is representable in float64).
func Float16From(bits uint16) float64 {
	sign := 1.0
	if bits&0x8000 != 0 {
		sign = -1
	}
	exp := int(bits >> 10 & 0x1f)
	man := int(bits & 0x3ff)
	switch exp {
	case 0: // zero or subnormal: man × 2⁻²⁴
		return sign * math.Ldexp(float64(man), -24)
	case 31: // Inf or NaN
		if man != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		return sign * math.Ldexp(float64(1<<10|man), exp-15-10)
	}
}
