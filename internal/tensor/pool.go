package tensor

// MaxPool2x2 runs non-overlapping 2×2 stride-2 max pooling with argmax
// recording over `planes` stacked channel planes (the CHW layout of one
// sample) when an accelerated kernel applies, returning false otherwise
// (the caller then falls back to its scalar loop). src holds planes of
// 2·oh rows × w columns back to back; dst and am receive planes·oh·ow
// outputs; am records the flat index of each winning tap into src.
// Semantics are the scalar argmax loop's exactly: candidates visited in
// (dy, dx) ascending order, strict > against a -Inf start, so ties keep
// the earliest tap, NaN never wins, and an all-NaN window records
// index -1.
func MaxPool2x2(dst []float64, am []int, src []float64, w, oh, ow, planes int) bool {
	n := planes * oh * ow
	if len(dst) < n || len(am) < n || len(src) < planes*2*oh*w {
		panic("tensor: MaxPool2x2 plane size mismatch")
	}
	// Plane p's rows, outputs, and indices all start exactly where plane
	// p-1's ended, so the kernel sweeps all planes as one run of
	// oh·planes row pairs.
	return maxPool2x2Plane(dst, am, src, w, oh*planes, ow, 0)
}
