package tensor

// The kernel backend seam. Every matrix-multiply and hot elementwise
// entry point in this package validates shapes and then dispatches to the
// process-wide Backend, so an accelerated implementation (SIMD, assembly,
// an offload library) can be slotted in with SetBackend without touching
// the nn layers that call the tensor API.
//
// Backend methods operate on raw row-major float64 slices plus explicit
// dimensions — deliberately free of the Tensor type — so an alternative
// backend can be written against a flat-buffer ABI. All shape validation
// happens in the package-level wrappers before dispatch; backend methods
// may assume the dimensions are consistent.
//
// Determinism contract: the reference GoBackend accumulates every output
// element's addends in a fixed order (ascending reduction index for the
// plain and transposed-A forms; fixed 4-way partial sums for the
// transposed-B form; segment-major partials for GemmTransBSegAcc), so
// results are bit-identical run to run and at every MatMulWorkers
// fan-out. Replacement backends that cannot honour the same accumulation
// order trade bit-stability for speed — the round engine's bit-identity
// tests pin the default backend only.

// Backend is the pluggable kernel implementation behind the tensor
// package's destination-passing entry points (MatMulTo and friends,
// BatchMatMulTo and friends, AddTo, ScaleTo, AXPY, AddRowTo, ColSumAcc).
type Backend interface {
	// Name identifies the backend in logs and reports.
	Name() string

	// Gemm computes dst = op(a)·op(b) (or dst += ... when acc) where dst
	// is m×n and the reduction length is k. Storage: a is m×k, or k×m
	// when transA; b is k×n, or n×k when transB. transA && transB is not
	// used by any caller and may panic.
	Gemm(dst, a, b []float64, m, k, n int, transA, transB, acc bool)

	// GemmBatch runs `groups` independent Gemms over group-strided slabs
	// of one contiguous buffer each: group g multiplies
	// a[g*strideA:]·b[g*strideB:] into dst[g*strideD:]. strideA == 0
	// broadcasts a single a operand across every group (the shared-weight
	// convolution form). Each group's result is bit-identical to a
	// standalone Gemm call on its slab.
	GemmBatch(dst, a, b []float64, groups, m, k, n, strideD, strideA, strideB int, transA, transB, acc bool)

	// GemmTransBSegAcc computes dst += a·bᵀ (dst m×n, a m×k stored
	// row-major, b n×k) with the reduction over k split into segments of
	// length seg: the 4-way partial sums used by the transposed-B kernel
	// are collapsed and folded into dst once per segment, in ascending
	// segment order. With seg == k it matches GemmTransB exactly; with
	// seg < k it reproduces, bit for bit, a sequence of k/seg separate
	// accumulate calls — the contract the fused conv backward relies on
	// to keep per-sample histories unchanged.
	GemmTransBSegAcc(dst, a, b []float64, m, k, n, seg int)

	// Add computes dst[i] = a[i] + b[i].
	Add(dst, a, b []float64)
	// Scale computes dst[i] = s * a[i].
	Scale(dst, a []float64, s float64)
	// Axpy computes dst[i] += alpha * src[i].
	Axpy(alpha float64, src, dst []float64)
	// AddRow computes dst[r][j] = x[r][j] + row[j] over a rows×cols
	// matrix — the broadcast bias add. dst may alias x.
	AddRow(dst, x, row []float64, rows, cols int)
	// ColSumAcc computes dst[j] += Σ_r x[r][j] over a rows×cols matrix,
	// accumulating rows in ascending order — the bias-gradient fold.
	ColSumAcc(dst, x []float64, rows, cols int)
}

// active is the process-wide backend. It is read on every kernel call and
// must only be swapped at startup or between training runs: SetBackend
// performs no synchronisation with in-flight kernels.
//
// defaultBackend is what SetBackend(nil) restores: GoBackend on most
// platforms, the bit-identical avx2 backend on amd64 CPUs with AVX2
// (selected in the simd_amd64 init).
var (
	defaultBackend Backend = GoBackend{}
	active         Backend = defaultBackend
)

// SetBackend installs b as the process-wide kernel backend (nil restores
// the platform default). Call it before any training starts; swapping
// mid-run races with in-flight kernels.
func SetBackend(b Backend) {
	if b == nil {
		b = defaultBackend
	}
	active = b
}

// CurrentBackend returns the installed kernel backend.
func CurrentBackend() Backend { return active }

// GoBackend is the default pure-Go backend: register-tiled, cache-aware
// matmul kernels with the fixed accumulation orders documented on
// Backend. It is stateless; the zero value is ready to use.
type GoBackend struct{}

// Name implements Backend.
func (GoBackend) Name() string { return "go" }

// Gemm implements Backend. Large multiplies fan out over row chunks of
// dst (see MatMulWorkers); row partitioning never changes any element's
// accumulation chain, so results are bit-identical at every worker count.
func (GoBackend) Gemm(dst, a, b []float64, m, k, n int, transA, transB, acc bool) {
	switch {
	case transA && transB:
		panic("tensor: Gemm transA && transB unsupported")
	case transA:
		gemmTA(dst, a, b, m, k, n, acc)
	case transB:
		if w := matmulWorkerCount(m, m*k*n); w > 1 {
			parallelRows(m, w, func(i0, i1 int) {
				gemmTBRows(dst, a, b, i0, i1, k, n, k, acc)
			})
		} else {
			gemmTBRows(dst, a, b, 0, m, k, n, k, acc)
		}
	default:
		if w := matmulWorkerCount(m, m*k*n); w > 1 {
			parallelRows(m, w, func(i0, i1 int) {
				gemmNNRows(dst, a, b, i0, i1, k, n, acc)
			})
		} else {
			gemmNNRows(dst, a, b, 0, m, k, n, acc)
		}
	}
}

// GemmBatch implements Backend by striding the group slabs through the
// single-multiply kernels. A future SIMD backend can fuse the group loop;
// the contract is only that each group matches a standalone Gemm.
func (g GoBackend) GemmBatch(dst, a, b []float64, groups, m, k, n, strideD, strideA, strideB int, transA, transB, acc bool) {
	for i := 0; i < groups; i++ {
		ai := a
		if strideA != 0 {
			ai = a[i*strideA:]
		}
		g.Gemm(dst[i*strideD:], ai, b[i*strideB:], m, k, n, transA, transB, acc)
	}
}

// GemmTransBSegAcc implements Backend.
func (GoBackend) GemmTransBSegAcc(dst, a, b []float64, m, k, n, seg int) {
	if seg <= 0 || k%seg != 0 {
		panic("tensor: GemmTransBSegAcc segment must divide the reduction length")
	}
	for s0 := 0; s0 < k; s0 += seg {
		for i := 0; i < m; i++ {
			arow := a[i*k+s0 : i*k+s0+seg]
			orow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k+s0 : j*k+s0+seg]
				orow[j] += dot4(arow, brow)
			}
		}
	}
}

// Add implements Backend.
func (GoBackend) Add(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Scale implements Backend.
func (GoBackend) Scale(dst, a []float64, s float64) {
	for i := range dst {
		dst[i] = a[i] * s
	}
}

// Axpy implements Backend.
func (GoBackend) Axpy(alpha float64, src, dst []float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// AddRow implements Backend.
func (GoBackend) AddRow(dst, x, row []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		d := dst[r*cols : (r+1)*cols]
		s := x[r*cols : (r+1)*cols]
		for j, v := range row {
			d[j] = s[j] + v
		}
	}
}

// ColSumAcc implements Backend. Rows fold in ascending order, one add per
// element per row — the same chain as the scalar per-row loops it
// replaces in the layer backward passes.
func (GoBackend) ColSumAcc(dst, x []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		s := x[r*cols : (r+1)*cols]
		for j, v := range s {
			dst[j] += v
		}
	}
}

// gemmNNRows computes rows [i0,i1) of dst (=|+=) a·b with 2×4 register
// tiles: each output element's addends fold into a register accumulator
// in ascending-p order — seeded with the element's prior value when acc —
// so the chain is identical to the classic one-add-per-p streaming loop
// (float64 addition chains depend only on operand order, and 0+t == t
// exactly), while dst is touched once per element instead of once per p.
func gemmNNRows(dd, ad, bd []float64, i0, i1, k, n int, acc bool) {
	i := i0
	for ; i+2 <= i1; i += 2 {
		a0 := ad[i*k : (i+1)*k]
		a1 := ad[(i+1)*k : (i+2)*k]
		d0 := dd[i*n : (i+1)*n]
		d1 := dd[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03, c10, c11, c12, c13 float64
			if acc {
				c00, c01, c02, c03 = d0[j], d0[j+1], d0[j+2], d0[j+3]
				c10, c11, c12, c13 = d1[j], d1[j+1], d1[j+2], d1[j+3]
			}
			for p := 0; p < k; p++ {
				av0, av1 := a0[p], a1[p]
				brow := bd[p*n+j : p*n+j+4 : p*n+j+4]
				b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
				c00 += av0 * b0
				c01 += av0 * b1
				c02 += av0 * b2
				c03 += av0 * b3
				c10 += av1 * b0
				c11 += av1 * b1
				c12 += av1 * b2
				c13 += av1 * b3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
		}
		for ; j < n; j++ {
			var c0, c1 float64
			if acc {
				c0, c1 = d0[j], d1[j]
			}
			for p := 0; p < k; p++ {
				bv := bd[p*n+j]
				c0 += a0[p] * bv
				c1 += a1[p] * bv
			}
			d0[j], d1[j] = c0, c1
		}
	}
	for ; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float64
			if acc {
				c0, c1, c2, c3 = drow[j], drow[j+1], drow[j+2], drow[j+3]
			}
			for p := 0; p < k; p++ {
				av := arow[p]
				brow := bd[p*n+j : p*n+j+4 : p*n+j+4]
				c0 += av * brow[0]
				c1 += av * brow[1]
				c2 += av * brow[2]
				c3 += av * brow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			var c float64
			if acc {
				c = drow[j]
			}
			for p := 0; p < k; p++ {
				c += arow[p] * bd[p*n+j]
			}
			drow[j] = c
		}
	}
}

// gemmTA computes dst (=|+=) aᵀ·b where a is stored k×m (the reduction
// runs over a's rows) and dst is m×n. Same 2×4 register tiling and
// ascending-reduction chain as gemmNNRows: element (i,j) folds
// a[r*m+i]·b[r*n+j] for r = 0..k-1 in order, seeded from dst when acc —
// bit-identical to the classic rank-1-update sequence.
func gemmTA(dd, ad, bd []float64, m, k, n int, acc bool) {
	i := 0
	for ; i+2 <= m; i += 2 {
		d0 := dd[i*n : (i+1)*n]
		d1 := dd[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03, c10, c11, c12, c13 float64
			if acc {
				c00, c01, c02, c03 = d0[j], d0[j+1], d0[j+2], d0[j+3]
				c10, c11, c12, c13 = d1[j], d1[j+1], d1[j+2], d1[j+3]
			}
			for r := 0; r < k; r++ {
				av0, av1 := ad[r*m+i], ad[r*m+i+1]
				brow := bd[r*n+j : r*n+j+4 : r*n+j+4]
				b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
				c00 += av0 * b0
				c01 += av0 * b1
				c02 += av0 * b2
				c03 += av0 * b3
				c10 += av1 * b0
				c11 += av1 * b1
				c12 += av1 * b2
				c13 += av1 * b3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
		}
		for ; j < n; j++ {
			var c0, c1 float64
			if acc {
				c0, c1 = d0[j], d1[j]
			}
			for r := 0; r < k; r++ {
				bv := bd[r*n+j]
				c0 += ad[r*m+i] * bv
				c1 += ad[r*m+i+1] * bv
			}
			d0[j], d1[j] = c0, c1
		}
	}
	for ; i < m; i++ {
		drow := dd[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float64
			if acc {
				c0, c1, c2, c3 = drow[j], drow[j+1], drow[j+2], drow[j+3]
			}
			for r := 0; r < k; r++ {
				av := ad[r*m+i]
				brow := bd[r*n+j : r*n+j+4 : r*n+j+4]
				c0 += av * brow[0]
				c1 += av * brow[1]
				c2 += av * brow[2]
				c3 += av * brow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			var c float64
			if acc {
				c = drow[j]
			}
			for r := 0; r < k; r++ {
				c += ad[r*m+i] * bd[r*n+j]
			}
			drow[j] = c
		}
	}
}

// gemmTBRows computes rows [i0,i1) of dst (=|+=) a·bᵀ with b stored n×k.
// Each element is a k-length dot folded as four fixed-stride partial sums
// (dot4) — the same partial structure the pre-backend kernel used, so
// bits are unchanged. rowK is b's storage row stride (== k for the plain
// call; GemmTransBSegAcc reuses dot4 with segment views instead).
func gemmTBRows(dd, ad, bd []float64, i0, i1, k, n, rowK int, acc bool) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s := dot4(arow, bd[j*rowK:j*rowK+k])
			if acc {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// dot4 computes the inner product of equal-length slices with four
// fixed-stride partial sums — the deterministic dot kernel shared by the
// transposed-B multiplies. The partials change rounding versus a serial
// sum but are themselves a fixed order, preserving run-to-run
// determinism (and matching the pre-backend kernel exactly).
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * b[p]
		s1 += a[p+1] * b[p+1]
		s2 += a[p+2] * b[p+2]
		s3 += a[p+3] * b[p+3]
	}
	for ; p < len(a); p++ {
		s0 += a[p] * b[p]
	}
	return s0 + s1 + s2 + s3
}
