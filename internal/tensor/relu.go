package tensor

// Rectifier kernels shared by the nn activation layers. They live here,
// next to the other numeric kernels, so the amd64 build can swap in the
// branch-free AVX2 implementations: a random-signed activation stream
// mispredicts the scalar `v > 0` branch about half the time, which makes
// the elementwise pass cost ~20 cycles per element — more than the
// compare itself.

// ReluForward computes out[i] = x[i] if x[i] > 0 else 0 and records
// mask[i] = x[i] > 0 (NaN compares false, so NaN inputs gate to 0 like
// the scalar comparison). All three slices must have equal length.
func ReluForward(out, x []float64, mask []bool) {
	if len(out) != len(x) || len(mask) != len(x) {
		panic("tensor: ReluForward length mismatch")
	}
	reluForward(out, x, mask)
}

// ReluBackward computes dx[i] = g[i] if mask[i] else 0. All three slices
// must have equal length.
func ReluBackward(dx, g []float64, mask []bool) {
	if len(dx) != len(g) || len(mask) != len(g) {
		panic("tensor: ReluBackward length mismatch")
	}
	reluBackward(dx, g, mask)
}

func reluForwardGo(out, x []float64, mask []bool) {
	for i, v := range x {
		if v > 0 {
			out[i] = v
			mask[i] = true
		} else {
			out[i] = 0
			mask[i] = false
		}
	}
}

func reluBackwardGo(dx, g []float64, mask []bool) {
	for i, v := range g {
		if mask[i] {
			dx[i] = v
		} else {
			dx[i] = 0
		}
	}
}
