package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewAndShape(t *testing.T) {
	tt := New([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if tt.Rank() != 2 || tt.Dim(0) != 2 || tt.Dim(1) != 3 {
		t.Fatalf("unexpected shape %v", tt.Shape)
	}
	if tt.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tt.Len())
	}
	if tt.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	tt.Set(42, 0, 1)
	if tt.At(0, 1) != 42 {
		t.Fatalf("Set/At roundtrip failed")
	}
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with wrong data length should panic")
		}
	}()
	New([]float64{1, 2, 3}, 2, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := Zeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := New([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New([]float64{1, 2, 3, 4}, 4)
	b := a.Reshape(2, 2)
	b.Data[3] = 9
	if a.Data[3] != 9 {
		t.Fatal("Reshape should share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape changing numel should panic")
		}
	}()
	a.Reshape(3)
}

func TestElementwiseOps(t *testing.T) {
	a := New([]float64{1, 2, 3}, 3)
	b := New([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Sum(a); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := Mean(a); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestAXPYAndInPlace(t *testing.T) {
	a := New([]float64{1, 2}, 2)
	b := New([]float64{10, 20}, 2)
	AXPY(0.5, b, a)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AXPY = %v", a.Data)
	}
	AddInPlace(a, b)
	if a.Data[0] != 16 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	ScaleInPlace(a, 0)
	if a.Data[0] != 0 || a.Data[1] != 0 {
		t.Fatalf("ScaleInPlace = %v", a.Data)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := New([]float64{1, 1}, 2)
	b := New([]float64{3, 3}, 2)
	if got := Lerp(a, b, 1).Data[0]; got != 1 {
		t.Fatalf("Lerp alpha=1 = %v, want a", got)
	}
	if got := Lerp(a, b, 0).Data[0]; got != 3 {
		t.Fatalf("Lerp alpha=0 = %v, want b", got)
	}
	if got := Lerp(a, b, 0.5).Data[0]; got != 2 {
		t.Fatalf("Lerp alpha=0.5 = %v, want midpoint", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(New([]float64{0.1, 0.9, 0.3}, 3)); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax(Zeros(0)); got != -1 {
		t.Fatalf("ArgMax(empty) = %d, want -1", got)
	}
	// Ties resolve to the first maximal index.
	if got := ArgMax(New([]float64{5, 5, 1}, 3)); got != 0 {
		t.Fatalf("ArgMax tie = %d, want 0", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := New([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := New([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := rng.Randn(1, 4, 4)
	id := Zeros(4, 4)
	for i := 0; i < 4; i++ {
		id.Data[i*4+i] = 1
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEqual(c.Data[i], a.Data[i], 1e-12) {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := NewRNG(2)
	a := rng.Randn(1, 3, 5)
	b := rng.Randn(1, 4, 5) // b is 4x5; a * bT is 3x4
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulTransB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	c := rng.Randn(1, 3, 6) // aT * c : (5x3)x(3x6) = 5x6
	got2 := MatMulTransA(a, c)
	want2 := MatMul(Transpose(a), c)
	for i := range want2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i], 1e-12) {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := rng.Randn(1, m, n)
		b := Transpose(Transpose(a))
		if !SameShape(a, b) {
			return false
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	// (A+B)C == AC + BC exactly up to float tolerance.
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := rng.Randn(1, m, k)
		b := rng.Randn(1, m, k)
		c := rng.Randn(1, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColKnown(t *testing.T) {
	// 1 channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 patches.
	img := New([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cols := Im2Col(img, g)
	if cols.Shape[0] != 4 || cols.Shape[1] != 4 {
		t.Fatalf("Im2Col shape %v", cols.Shape)
	}
	// First row = top-left value of each patch: 1,2,4,5.
	want := []float64{1, 2, 4, 5}
	for i, w := range want {
		if cols.Data[i] != w {
			t.Fatalf("Im2Col row0[%d] = %v, want %v", i, cols.Data[i], w)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	img := New([]float64{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(img, g)
	// Output is 2x2; center kernel tap (kh=1,kw=1) row must reproduce image.
	row := 1*3 + 1
	for i := 0; i < 4; i++ {
		if cols.Data[row*4+i] != img.Data[i] {
			t.Fatalf("center tap mismatch at %d", i)
		}
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint identity,
	// which is exactly what correct conv backprop requires.
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 3 + rng.Intn(4), InW: 3 + rng.Intn(4),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3), Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate geometry
		}
		x := rng.Randn(1, g.InC, g.InH, g.InW)
		y := rng.Randn(1, g.InC*g.KH*g.KW, g.OutH()*g.OutW())
		lhs := Dot(Im2Col(x, g), y)
		rhs := Dot(x, Col2Im(y, g))
		return almostEqual(lhs, rhs, 1e-8*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 2, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 0},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, g)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split()
	c2 := g.Split()
	same := true
	for i := 0; i < 16; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("split children should differ")
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	g := NewRNG(3)
	for _, alpha := range []float64{0.05, 0.1, 0.5, 1, 10} {
		p := g.Dirichlet(alpha, 10)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("alpha=%v: negative mass %v", alpha, v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("alpha=%v: sum = %v", alpha, sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should concentrate mass; large alpha should spread it.
	g := NewRNG(11)
	maxOf := func(alpha float64) float64 {
		tot := 0.0
		for trial := 0; trial < 50; trial++ {
			p := g.Dirichlet(alpha, 10)
			m := 0.0
			for _, v := range p {
				if v > m {
					m = v
				}
			}
			tot += m
		}
		return tot / 50
	}
	small, large := maxOf(0.1), maxOf(100)
	if small <= large {
		t.Fatalf("expected concentration: max(alpha=0.1)=%v should exceed max(alpha=100)=%v", small, large)
	}
	if large > 0.25 {
		t.Fatalf("alpha=100 should be near uniform, got max share %v", large)
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(5)
	const n = 20000
	for _, shape := range []float64{0.3, 1, 4} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += g.Gamma(shape)
		}
		mean := sum / n
		if !almostEqual(mean, shape, 0.12*math.Max(shape, 1)) {
			t.Fatalf("Gamma(%v) sample mean %v too far from %v", shape, mean, shape)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := NewRNG(9)
	orig := rng.Randn(2, 3, 4, 5)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != orig.EncodedSize() {
		t.Fatalf("WriteTo wrote %d bytes, EncodedSize says %d", n, orig.EncodedSize())
	}
	var back Tensor
	m, err := back.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d, want %d", m, n)
	}
	if !SameShape(orig, &back) {
		t.Fatalf("shape %v != %v", back.Shape, orig.Shape)
	}
	for i := range orig.Data {
		if orig.Data[i] != back.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestSerializeTruncated(t *testing.T) {
	rng := NewRNG(9)
	orig := rng.Randn(1, 4, 4)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	var back Tensor
	if _, err := back.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestHasNaN(t *testing.T) {
	a := New([]float64{1, 2}, 2)
	if a.HasNaN() {
		t.Fatal("no NaN expected")
	}
	a.Data[1] = math.NaN()
	if !a.HasNaN() {
		t.Fatal("NaN should be detected")
	}
	a.Data[1] = math.Inf(1)
	if !a.HasNaN() {
		t.Fatal("Inf should be detected")
	}
}

func TestFullFillZero(t *testing.T) {
	a := Full(3, 2, 2)
	if Sum(a) != 12 {
		t.Fatalf("Full sum = %v", Sum(a))
	}
	a.Fill(1)
	if Sum(a) != 4 {
		t.Fatalf("Fill sum = %v", Sum(a))
	}
	a.Zero()
	if Sum(a) != 0 {
		t.Fatalf("Zero sum = %v", Sum(a))
	}
	if a.MaxAbs() != 0 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestApply(t *testing.T) {
	a := New([]float64{-1, 2}, 2)
	b := Apply(a, math.Abs)
	if b.Data[0] != 1 || b.Data[1] != 2 {
		t.Fatalf("Apply = %v", b.Data)
	}
	if a.Data[0] != -1 {
		t.Fatal("Apply must not mutate input")
	}
}

func TestNormProperty(t *testing.T) {
	// Triangle inequality: ||a+b|| <= ||a|| + ||b||.
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(20)
		a := rng.Randn(1, n)
		b := rng.Randn(1, n)
		return Norm(Add(a, b)) <= Norm(a)+Norm(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitNMatchesConsecutiveSplits(t *testing.T) {
	// SplitN(n) must consume exactly the draws of n Split calls and seed
	// identical children — algorithms rely on this when they batch their
	// per-client pre-dispatch splits.
	a, b := NewRNG(7), NewRNG(7)
	children := a.SplitN(5)
	for i := 0; i < 5; i++ {
		want := b.Split()
		for d := 0; d < 3; d++ {
			if got, w := children[i].Int63(), want.Int63(); got != w {
				t.Fatalf("child %d draw %d: SplitN stream %d != Split stream %d", i, d, got, w)
			}
		}
	}
	if a.Int63() != b.Int63() {
		t.Fatal("SplitN consumed a different number of parent draws than n Splits")
	}
}
