package tensor

import (
	"fmt"
	"math"
)

// Destination-passing convention: every *To kernel writes its result into
// a caller-supplied dst tensor whose shape must already match, and returns
// dst. The allocating forms (Add, MatMul, ...) are thin wrappers that
// allocate a fresh dst. Elementwise kernels (AddTo, SubTo, MulTo, ScaleTo,
// LerpTo, ApplyTo) tolerate dst aliasing any input; the matrix kernels
// (MatMulTo and friends) require dst to be disjoint from both operands —
// see docs/ARCHITECTURE.md "Buffer ownership" for the full rules.

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	return AddTo(Zeros(a.Shape...), a, b)
}

// AddTo computes dst = a + b elementwise. dst may alias a or b.
func AddTo(dst, a, b *Tensor) *Tensor {
	checkSame("AddTo", a, b)
	checkSame("AddTo(dst)", dst, a)
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] + bd[i]
	}
	return dst
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return SubTo(Zeros(a.Shape...), a, b)
}

// SubTo computes dst = a - b elementwise. dst may alias a or b.
func SubTo(dst, a, b *Tensor) *Tensor {
	checkSame("SubTo", a, b)
	checkSame("SubTo(dst)", dst, a)
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] - bd[i]
	}
	return dst
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	return MulTo(Zeros(a.Shape...), a, b)
}

// MulTo computes dst = a * b elementwise. dst may alias a or b.
func MulTo(dst, a, b *Tensor) *Tensor {
	checkSame("MulTo", a, b)
	checkSame("MulTo(dst)", dst, a)
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] * bd[i]
	}
	return dst
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	return ScaleTo(Zeros(a.Shape...), a, s)
}

// ScaleTo computes dst = s * a elementwise. dst may alias a.
func ScaleTo(dst, a *Tensor, s float64) *Tensor {
	checkSame("ScaleTo(dst)", dst, a)
	ad, dd := a.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] * s
	}
	return dst
}

// AddInPlace accumulates src into dst: dst += src.
func AddInPlace(dst, src *Tensor) {
	checkSame("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AXPY computes dst += alpha * src, the BLAS-style accumulate used by SGD.
func AXPY(alpha float64, src, dst *Tensor) {
	checkSame("AXPY", dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Lerp returns alpha*a + (1-alpha)*b, the convex combination used by
// cross-aggregation.
func Lerp(a, b *Tensor, alpha float64) *Tensor {
	return LerpTo(Zeros(a.Shape...), a, b, alpha)
}

// LerpTo computes dst = alpha*a + (1-alpha)*b. dst may alias a or b.
func LerpTo(dst, a, b *Tensor, alpha float64) *Tensor {
	checkSame("LerpTo", a, b)
	checkSame("LerpTo(dst)", dst, a)
	beta := 1 - alpha
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = alpha*ad[i] + beta*bd[i]
	}
	return dst
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm returns the L2 norm of t viewed as a flat vector.
func Norm(t *Tensor) float64 {
	return math.Sqrt(Dot(t, t))
}

// Sum returns the sum of all elements.
func Sum(t *Tensor) float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return Sum(t) / float64(len(t.Data))
}

// ArgMax returns the index of the first maximal element of a flat tensor,
// ignoring NaN entries: a NaN can never win, so corrupted logits count as
// a wrong prediction rather than silently as class 0. It returns -1 for an
// empty tensor or when every element is NaN.
func ArgMax(t *Tensor) int {
	best := -1
	bestV := 0.0
	for i, v := range t.Data {
		if math.IsNaN(v) {
			continue
		}
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	return ApplyTo(Zeros(t.Shape...), t, f)
}

// ApplyTo computes dst[i] = f(a[i]). dst may alias a.
func ApplyTo(dst, a *Tensor, f func(float64) float64) *Tensor {
	checkSame("ApplyTo(dst)", dst, a)
	ad, dd := a.Data, dst.Data
	for i := range dd {
		dd[i] = f(ad[i])
	}
	return dst
}

// Cache-blocking parameters for the matmul kernels. A (blockK × blockN)
// panel of the B operand is 256 KiB — sized to stay resident in L2 while a
// full sweep of output rows streams past it.
const (
	blockK = 128
	blockN = 256
)

// MatMul multiplies a (m×k) by b (k×n) producing an m×n tensor. Both
// inputs must be rank-2.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matmulDims("MatMul", a, b, false, false)
	return matmulTo(Zeros(m, n), a, b, false)
}

// MatMulTo computes dst = a·b where a is m×k and b is k×n. dst must be
// m×n and must not alias either operand.
func MatMulTo(dst, a, b *Tensor) *Tensor {
	return matmulTo(dst, a, b, false)
}

// MatMulAcc computes dst += a·b. dst must be m×n and must not alias
// either operand.
func MatMulAcc(dst, a, b *Tensor) *Tensor {
	return matmulTo(dst, a, b, true)
}

func matmulTo(dst, a, b *Tensor, acc bool) *Tensor {
	m, k, n := matmulDims("MatMul", a, b, false, false)
	checkDst("MatMul", dst, a, b, m, n)
	if !acc {
		dst.Zero()
	}
	if w := matmulWorkerCount(m, m*k*n); w > 1 {
		parallelRows(m, w, func(i0, i1 int) {
			matmulRows(dst.Data, a.Data, b.Data, i0, i1, k, n)
		})
	} else {
		matmulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
	}
	return dst
}

// matmulRows accumulates rows [i0,i1) of dst += a·b with k/n blocking.
// Every output element accumulates its k addends in ascending-p order, so
// the result is bit-identical for any block size. There is deliberately no
// zero-skip on a's elements: 0·NaN and 0·Inf must produce NaN, not 0
// (IEEE-754), so corrupted operands propagate instead of being masked.
func matmulRows(dd, ad, bd []float64, i0, i1, k, n int) {
	for jb := 0; jb < n; jb += blockN {
		jend := jb + blockN
		if jend > n {
			jend = n
		}
		for pb := 0; pb < k; pb += blockK {
			pend := pb + blockK
			if pend > k {
				pend = k
			}
			// Two output rows per sweep so each B panel load feeds two
			// accumulate streams. The unroll keeps one add per output
			// element per p, so accumulation order (and rounding) is
			// identical to the plain loop.
			i := i0
			for ; i+2 <= i1; i += 2 {
				arow0 := ad[i*k : (i+1)*k]
				arow1 := ad[(i+1)*k : (i+2)*k]
				orow0 := dd[i*n+jb : i*n+jend]
				orow1 := dd[(i+1)*n+jb : (i+1)*n+jend]
				for p := pb; p < pend; p++ {
					av0, av1 := arow0[p], arow1[p]
					brow := bd[p*n+jb : p*n+jend]
					o0 := orow0[:len(brow)]
					o1 := orow1[:len(brow)]
					for j, bv := range brow {
						o0[j] += av0 * bv
						o1[j] += av1 * bv
					}
				}
			}
			for ; i < i1; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := dd[i*n+jb : i*n+jend]
				for p := pb; p < pend; p++ {
					av := arow[p]
					brow := bd[p*n+jb : p*n+jend]
					o := orow[:len(brow)]
					for j, bv := range brow {
						o[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransB multiplies a (m×k) by bᵀ where b is (n×k), producing m×n.
// This avoids materialising the transpose in backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := matmulDims("MatMulTransB", a, b, false, true)
	return matmulTransBTo(Zeros(m, n), a, b, false)
}

// MatMulTransBTo computes dst = a·bᵀ with a m×k and b n×k. dst must be
// m×n and must not alias either operand.
func MatMulTransBTo(dst, a, b *Tensor) *Tensor {
	return matmulTransBTo(dst, a, b, false)
}

// MatMulTransBAcc computes dst += a·bᵀ. dst must be m×n and must not
// alias either operand.
func MatMulTransBAcc(dst, a, b *Tensor) *Tensor {
	return matmulTransBTo(dst, a, b, true)
}

func matmulTransBTo(dst, a, b *Tensor, acc bool) *Tensor {
	m, k, n := matmulDims("MatMulTransB", a, b, false, true)
	checkDst("MatMulTransB", dst, a, b, m, n)
	ad, bd, dd := a.Data, b.Data, dst.Data
	if w := matmulWorkerCount(m, m*k*n); w > 1 {
		parallelRows(m, w, func(i0, i1 int) {
			matmulTransBRows(dd, ad, bd, i0, i1, k, n, acc)
		})
	} else {
		matmulTransBRows(dd, ad, bd, 0, m, k, n, acc)
	}
	return dst
}

func matmulTransBRows(dd, ad, bd []float64, i0, i1, k, n int, acc bool) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			// Four-way unrolled dot product: the partial sums change the
			// rounding order versus a serial sum but are themselves a fixed
			// order, preserving run-to-run determinism.
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= k; p += 4 {
				s0 += arow[p] * brow[p]
				s1 += arow[p+1] * brow[p+1]
				s2 += arow[p+2] * brow[p+2]
				s3 += arow[p+3] * brow[p+3]
			}
			for ; p < k; p++ {
				s0 += arow[p] * brow[p]
			}
			s := s0 + s1 + s2 + s3
			if acc {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// MatMulTransA multiplies aᵀ (k×m, stored as m×k) by b (m×n), producing k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, _, n := matmulDims("MatMulTransA", a, b, true, false)
	return matmulTransATo(Zeros(k, n), a, b, false)
}

// MatMulTransATo computes dst = aᵀ·b with a m×k and b m×n. dst must be
// k×n and must not alias either operand.
func MatMulTransATo(dst, a, b *Tensor) *Tensor {
	return matmulTransATo(dst, a, b, false)
}

// MatMulTransAAcc computes dst += aᵀ·b. dst must be k×n and must not
// alias either operand.
func MatMulTransAAcc(dst, a, b *Tensor) *Tensor {
	return matmulTransATo(dst, a, b, true)
}

func matmulTransATo(dst, a, b *Tensor, acc bool) *Tensor {
	k, m, n := matmulDims("MatMulTransA", a, b, true, false)
	checkDst("MatMulTransA", dst, a, b, k, n)
	if !acc {
		dst.Zero()
	}
	ad, bd, dd := a.Data, b.Data, dst.Data
	// Sequence of rank-1 updates dst += a[i]ᵀ·b[i], blocked over the output
	// rows so a (blockK × n) panel of dst stays cached across the i sweep.
	// Per-element accumulation order is ascending i, independent of blocks
	// and of the two-rows-per-sweep unroll (one add per element per i).
	for pb := 0; pb < k; pb += blockK {
		pend := pb + blockK
		if pend > k {
			pend = k
		}
		for i := 0; i < m; i++ {
			arow := ad[i*k : (i+1)*k]
			brow := bd[i*n : (i+1)*n]
			p := pb
			for ; p+2 <= pend; p += 2 {
				av0, av1 := arow[p], arow[p+1]
				orow0 := dd[p*n : (p+1)*n]
				orow1 := dd[(p+1)*n : (p+2)*n]
				o0 := orow0[:len(brow)]
				o1 := orow1[:len(brow)]
				for j, bv := range brow {
					o0[j] += av0 * bv
					o1[j] += av1 * bv
				}
			}
			for ; p < pend; p++ {
				av := arow[p]
				orow := dd[p*n : (p+1)*n]
				o := orow[:len(brow)]
				for j, bv := range brow {
					o[j] += av * bv
				}
			}
		}
	}
	return dst
}

// matmulDims validates ranks and inner dimensions and returns the output
// rows, the reduction length, and the output columns. transA/transB state
// which operand is consumed transposed.
func matmulDims(op string, a, b *Tensor, transA, transB bool) (rows, red, cols int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 operands, got %v x %v", op, a.Shape, b.Shape))
	}
	switch {
	case transA:
		// aᵀ·b: a is m×k holding the k×m logical operand.
		if a.Shape[0] != b.Shape[0] {
			panic(fmt.Sprintf("tensor: %s outer dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[1], a.Shape[0], b.Shape[1]
	case transB:
		// a·bᵀ: b is n×k.
		if a.Shape[1] != b.Shape[1] {
			panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[0], a.Shape[1], b.Shape[0]
	default:
		if a.Shape[1] != b.Shape[0] {
			panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[0], a.Shape[1], b.Shape[1]
	}
}

// checkDst validates the destination's shape and rejects the common
// aliasing mistake of passing an operand as dst. (Partial overlaps via
// sub-slicing are the caller's responsibility — see the ownership rules.)
func checkDst(op string, dst, a, b *Tensor, rows, cols int) {
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, rows, cols))
	}
	if len(dst.Data) > 0 {
		if len(a.Data) > 0 && &dst.Data[0] == &a.Data[0] {
			panic(fmt.Sprintf("tensor: %s destination aliases operand a", op))
		}
		if len(b.Data) > 0 && &dst.Data[0] == &b.Data[0] {
			panic(fmt.Sprintf("tensor: %s destination aliases operand b", op))
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := Zeros(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func checkSame(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
