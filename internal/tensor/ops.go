package tensor

import (
	"fmt"
	"math"
)

// Destination-passing convention: every *To kernel writes its result into
// a caller-supplied dst tensor whose shape must already match, and returns
// dst. The allocating forms (Add, MatMul, ...) are thin wrappers that
// allocate a fresh dst. Elementwise kernels (AddTo, SubTo, MulTo, ScaleTo,
// LerpTo, ApplyTo) tolerate dst aliasing any input; the matrix kernels
// (MatMulTo and friends) require dst to be disjoint from both operands —
// see docs/ARCHITECTURE.md "Buffer ownership" for the full rules.

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	return AddTo(Zeros(a.Shape...), a, b)
}

// AddTo computes dst = a + b elementwise. dst may alias a or b.
func AddTo(dst, a, b *Tensor) *Tensor {
	checkSame("AddTo", a, b)
	checkSame("AddTo(dst)", dst, a)
	active.Add(dst.Data, a.Data, b.Data)
	return dst
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return SubTo(Zeros(a.Shape...), a, b)
}

// SubTo computes dst = a - b elementwise. dst may alias a or b.
func SubTo(dst, a, b *Tensor) *Tensor {
	checkSame("SubTo", a, b)
	checkSame("SubTo(dst)", dst, a)
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] - bd[i]
	}
	return dst
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	return MulTo(Zeros(a.Shape...), a, b)
}

// MulTo computes dst = a * b elementwise. dst may alias a or b.
func MulTo(dst, a, b *Tensor) *Tensor {
	checkSame("MulTo", a, b)
	checkSame("MulTo(dst)", dst, a)
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = ad[i] * bd[i]
	}
	return dst
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	return ScaleTo(Zeros(a.Shape...), a, s)
}

// ScaleTo computes dst = s * a elementwise. dst may alias a.
func ScaleTo(dst, a *Tensor, s float64) *Tensor {
	checkSame("ScaleTo(dst)", dst, a)
	active.Scale(dst.Data, a.Data, s)
	return dst
}

// AddInPlace accumulates src into dst: dst += src.
func AddInPlace(dst, src *Tensor) {
	checkSame("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AXPY computes dst += alpha * src, the BLAS-style accumulate used by SGD.
func AXPY(alpha float64, src, dst *Tensor) {
	checkSame("AXPY", dst, src)
	active.Axpy(alpha, src.Data, dst.Data)
}

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Lerp returns alpha*a + (1-alpha)*b, the convex combination used by
// cross-aggregation.
func Lerp(a, b *Tensor, alpha float64) *Tensor {
	return LerpTo(Zeros(a.Shape...), a, b, alpha)
}

// LerpTo computes dst = alpha*a + (1-alpha)*b. dst may alias a or b.
func LerpTo(dst, a, b *Tensor, alpha float64) *Tensor {
	checkSame("LerpTo", a, b)
	checkSame("LerpTo(dst)", dst, a)
	beta := 1 - alpha
	ad, bd, dd := a.Data, b.Data, dst.Data
	for i := range dd {
		dd[i] = alpha*ad[i] + beta*bd[i]
	}
	return dst
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm returns the L2 norm of t viewed as a flat vector.
func Norm(t *Tensor) float64 {
	return math.Sqrt(Dot(t, t))
}

// Sum returns the sum of all elements.
func Sum(t *Tensor) float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return Sum(t) / float64(len(t.Data))
}

// ArgMax returns the index of the first maximal element of a flat tensor,
// ignoring NaN entries: a NaN can never win, so corrupted logits count as
// a wrong prediction rather than silently as class 0. It returns -1 for an
// empty tensor or when every element is NaN.
func ArgMax(t *Tensor) int {
	best := -1
	bestV := 0.0
	for i, v := range t.Data {
		if math.IsNaN(v) {
			continue
		}
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	return ApplyTo(Zeros(t.Shape...), t, f)
}

// ApplyTo computes dst[i] = f(a[i]). dst may alias a.
func ApplyTo(dst, a *Tensor, f func(float64) float64) *Tensor {
	checkSame("ApplyTo(dst)", dst, a)
	ad, dd := a.Data, dst.Data
	for i := range dd {
		dd[i] = f(ad[i])
	}
	return dst
}

// The matrix kernels validate shapes here and dispatch to the process-wide
// Backend (see backend.go). Every output element's addends fold in a fixed
// order under the default GoBackend — ascending reduction index for the
// plain and transposed-A forms, fixed 4-way partials for the transposed-B
// form — so results are bit-identical run to run and at any worker count.
// There is deliberately no zero-skip on operand elements: 0·NaN and 0·Inf
// must produce NaN, not 0 (IEEE-754), so corrupted operands propagate
// instead of being masked.

// MatMul multiplies a (m×k) by b (k×n) producing an m×n tensor. Both
// inputs must be rank-2.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matmulDims("MatMul", a, b, false, false)
	return matmulTo(Zeros(m, n), a, b, false)
}

// MatMulTo computes dst = a·b where a is m×k and b is k×n. dst must be
// m×n and must not alias either operand.
func MatMulTo(dst, a, b *Tensor) *Tensor {
	return matmulTo(dst, a, b, false)
}

// MatMulAcc computes dst += a·b. dst must be m×n and must not alias
// either operand.
func MatMulAcc(dst, a, b *Tensor) *Tensor {
	return matmulTo(dst, a, b, true)
}

func matmulTo(dst, a, b *Tensor, acc bool) *Tensor {
	m, k, n := matmulDims("MatMul", a, b, false, false)
	checkDst("MatMul", dst, a, b, m, n)
	active.Gemm(dst.Data, a.Data, b.Data, m, k, n, false, false, acc)
	return dst
}

// MatMulTransB multiplies a (m×k) by bᵀ where b is (n×k), producing m×n.
// This avoids materialising the transpose in backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := matmulDims("MatMulTransB", a, b, false, true)
	return matmulTransBTo(Zeros(m, n), a, b, false)
}

// MatMulTransBTo computes dst = a·bᵀ with a m×k and b n×k. dst must be
// m×n and must not alias either operand.
func MatMulTransBTo(dst, a, b *Tensor) *Tensor {
	return matmulTransBTo(dst, a, b, false)
}

// MatMulTransBAcc computes dst += a·bᵀ. dst must be m×n and must not
// alias either operand.
func MatMulTransBAcc(dst, a, b *Tensor) *Tensor {
	return matmulTransBTo(dst, a, b, true)
}

func matmulTransBTo(dst, a, b *Tensor, acc bool) *Tensor {
	m, k, n := matmulDims("MatMulTransB", a, b, false, true)
	checkDst("MatMulTransB", dst, a, b, m, n)
	active.Gemm(dst.Data, a.Data, b.Data, m, k, n, false, true, acc)
	return dst
}

// MatMulTransBSegAcc computes dst += a·bᵀ (a m×k, b n×k, dst m×n) with
// the reduction split into segments of length seg, folding each segment's
// 4-way partial dot into dst separately in ascending-segment order. With
// k == B·seg this reproduces, bit for bit, B successive MatMulTransBAcc
// calls over the per-segment column blocks — the kernel behind the fused
// conv weight gradient, where segments are the per-sample spatial blocks.
func MatMulTransBSegAcc(dst, a, b *Tensor, seg int) *Tensor {
	m, k, n := matmulDims("MatMulTransBSegAcc", a, b, false, true)
	checkDst("MatMulTransBSegAcc", dst, a, b, m, n)
	active.GemmTransBSegAcc(dst.Data, a.Data, b.Data, m, k, n, seg)
	return dst
}

// MatMulTransA multiplies aᵀ (k×m, stored as m×k) by b (m×n), producing k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, _, n := matmulDims("MatMulTransA", a, b, true, false)
	return matmulTransATo(Zeros(k, n), a, b, false)
}

// MatMulTransATo computes dst = aᵀ·b with a m×k and b m×n. dst must be
// k×n and must not alias either operand.
func MatMulTransATo(dst, a, b *Tensor) *Tensor {
	return matmulTransATo(dst, a, b, false)
}

// MatMulTransAAcc computes dst += aᵀ·b. dst must be k×n and must not
// alias either operand.
func MatMulTransAAcc(dst, a, b *Tensor) *Tensor {
	return matmulTransATo(dst, a, b, true)
}

func matmulTransATo(dst, a, b *Tensor, acc bool) *Tensor {
	k, m, n := matmulDims("MatMulTransA", a, b, true, false)
	checkDst("MatMulTransA", dst, a, b, k, n)
	// Backend convention: dst is m×n with reduction k, a stored k×m. Here
	// the tensor-level names have a m×k storing the logical k×m operand, so
	// the backend's (m, k) are this wrapper's (k, m).
	active.Gemm(dst.Data, a.Data, b.Data, k, m, n, true, false, acc)
	return dst
}

// AddRowTo computes dst[r][j] = x[r][j] + row[j] — the broadcast bias add
// over a rank-2 batch. dst may alias x; row must have x's column count.
func AddRowTo(dst, x, row *Tensor) *Tensor {
	checkSame("AddRowTo(dst)", dst, x)
	if x.Rank() != 2 || row.Len() != x.Shape[1] {
		panic(fmt.Sprintf("tensor: AddRowTo wants rank-2 x with %d-element row, got %v row %v", x.Shape[1], x.Shape, row.Shape))
	}
	active.AddRow(dst.Data, x.Data, row.Data, x.Shape[0], x.Shape[1])
	return dst
}

// ColSumAcc computes dst[j] += Σ_r x[r][j] over a rank-2 x, folding rows
// in ascending order — the bias-gradient accumulate.
func ColSumAcc(dst, x *Tensor) *Tensor {
	if x.Rank() != 2 || dst.Len() != x.Shape[1] {
		panic(fmt.Sprintf("tensor: ColSumAcc wants rank-2 x with %d-element dst, got %v dst %v", x.Shape[1], x.Shape, dst.Shape))
	}
	active.ColSumAcc(dst.Data, x.Data, x.Shape[0], x.Shape[1])
	return dst
}

// matmulDims validates ranks and inner dimensions and returns the output
// rows, the reduction length, and the output columns. transA/transB state
// which operand is consumed transposed.
func matmulDims(op string, a, b *Tensor, transA, transB bool) (rows, red, cols int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 operands, got %v x %v", op, a.Shape, b.Shape))
	}
	switch {
	case transA:
		// aᵀ·b: a is m×k holding the k×m logical operand.
		if a.Shape[0] != b.Shape[0] {
			panic(fmt.Sprintf("tensor: %s outer dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[1], a.Shape[0], b.Shape[1]
	case transB:
		// a·bᵀ: b is n×k.
		if a.Shape[1] != b.Shape[1] {
			panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[0], a.Shape[1], b.Shape[0]
	default:
		if a.Shape[1] != b.Shape[0] {
			panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", op, a.Shape, b.Shape))
		}
		return a.Shape[0], a.Shape[1], b.Shape[1]
	}
}

// checkDst validates the destination's shape and rejects the common
// aliasing mistake of passing an operand as dst. (Partial overlaps via
// sub-slicing are the caller's responsibility — see the ownership rules.)
func checkDst(op string, dst, a, b *Tensor, rows, cols int) {
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, rows, cols))
	}
	if len(dst.Data) > 0 {
		if len(a.Data) > 0 && &dst.Data[0] == &a.Data[0] {
			panic(fmt.Sprintf("tensor: %s destination aliases operand a", op))
		}
		if len(b.Data) > 0 && &dst.Data[0] == &b.Data[0] {
			panic(fmt.Sprintf("tensor: %s destination aliases operand b", op))
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := Zeros(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func checkSame(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
