package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := Zeros(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := Zeros(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := Zeros(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := Zeros(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace accumulates src into dst: dst += src.
func AddInPlace(dst, src *Tensor) {
	checkSame("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AXPY computes dst += alpha * src, the BLAS-style accumulate used by SGD.
func AXPY(alpha float64, src, dst *Tensor) {
	checkSame("AXPY", dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Lerp returns alpha*a + (1-alpha)*b, the convex combination used by
// cross-aggregation.
func Lerp(a, b *Tensor, alpha float64) *Tensor {
	checkSame("Lerp", a, b)
	out := Zeros(a.Shape...)
	beta := 1 - alpha
	for i := range a.Data {
		out.Data[i] = alpha*a.Data[i] + beta*b.Data[i]
	}
	return out
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm returns the L2 norm of t viewed as a flat vector.
func Norm(t *Tensor) float64 {
	return math.Sqrt(Dot(t, t))
}

// Sum returns the sum of all elements.
func Sum(t *Tensor) float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return Sum(t) / float64(len(t.Data))
}

// ArgMax returns the index of the first maximal element of a flat tensor.
func ArgMax(t *Tensor) int {
	if len(t.Data) == 0 {
		return -1
	}
	best, bestV := 0, t.Data[0]
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	out := Zeros(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// MatMul multiplies a (m×k) by b (k×n) producing an m×n tensor. Both inputs
// must be rank-2. The kernel is a cache-friendly ikj loop over the flat
// backing slices.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	out := Zeros(m, n)
	ad, bd, od := a.Data, b.Data, out.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB multiplies a (m×k) by bᵀ where b is (n×k), producing m×n.
// This avoids materialising the transpose in backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	out := Zeros(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA multiplies aᵀ (k×m, stored as m×k) by b (m×n), producing k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	m2, n := b.Shape[0], b.Shape[1]
	if m != m2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	out := Zeros(k, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		brow := b.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			orow := out.Data[p*n : (p+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := Zeros(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func checkSame(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
