//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels. Bit-identity contract: only VMULPD/VADDPD (one rounding
// per operation, no FMA) on independent lanes, accumulator always the
// first source of each add — the same operation sequence per element as
// the scalar Go kernels. See simd_amd64.go for the lane argument.

// boolTab maps a 4-bit VMOVMSKPD result to 4 packed bool bytes
// (byte i = bit i), so the ReLU mask store is one 32-bit move.
DATA boolTab<>+0x00(SB)/4, $0x00000000
DATA boolTab<>+0x04(SB)/4, $0x00000001
DATA boolTab<>+0x08(SB)/4, $0x00000100
DATA boolTab<>+0x0c(SB)/4, $0x00000101
DATA boolTab<>+0x10(SB)/4, $0x00010000
DATA boolTab<>+0x14(SB)/4, $0x00010001
DATA boolTab<>+0x18(SB)/4, $0x00010100
DATA boolTab<>+0x1c(SB)/4, $0x00010101
DATA boolTab<>+0x20(SB)/4, $0x01000000
DATA boolTab<>+0x24(SB)/4, $0x01000001
DATA boolTab<>+0x28(SB)/4, $0x01000100
DATA boolTab<>+0x2c(SB)/4, $0x01000101
DATA boolTab<>+0x30(SB)/4, $0x01010000
DATA boolTab<>+0x34(SB)/4, $0x01010001
DATA boolTab<>+0x38(SB)/4, $0x01010100
DATA boolTab<>+0x3c(SB)/4, $0x01010101
GLOBL boolTab<>(SB), RODATA|NOPTR, $64

// func hasAVX2() bool
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	SHRL $27, R8
	ANDL $1, R8 // OSXSAVE
	TESTL R8, R8
	JZ   no
	MOVL CX, R8
	SHRL $28, R8
	ANDL $1, R8 // AVX
	TESTL R8, R8
	JZ   no
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	SHRL $5, BX
	ANDL $1, BX // AVX2
	MOVB BX, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func axpyAVX(dst, x []float64, a float64)
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	VBROADCASTSD a+48(FP), Y0
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX

loop8:
	CMPQ AX, BX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD 32(DI)(AX*8), Y3
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y4, Y4
	VMULPD  Y0, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD Y2, (DI)(AX*8)
	VMOVUPD Y3, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  loop8

tail4:
	MOVQ CX, BX
	ANDQ $-4, BX

tail4loop:
	CMPQ AX, BX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y4
	VMULPD  Y0, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  tail4loop

tail1:
	CMPQ AX, CX
	JGE  done
	VMOVSD (DI)(AX*8), X2
	VMOVSD (SI)(AX*8), X4
	VMULSD X0, X4, X4
	VADDSD X4, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ AX
	JMP  tail1

done:
	VZEROUPPER
	RET

// func axpy2AVX(dst, x0, x1 []float64, a0, a1 float64)
TEXT ·axpy2AVX(SB), NOSPLIT, $0-88
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x0_base+24(FP), SI
	MOVQ x1_base+48(FP), DX
	VBROADCASTSD a0+72(FP), Y0
	VBROADCASTSD a1+80(FP), Y1
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX

loop8:
	CMPQ AX, BX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD 32(DI)(AX*8), Y3
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y4, Y4
	VMULPD  Y0, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD (DX)(AX*8), Y4
	VMOVUPD 32(DX)(AX*8), Y5
	VMULPD  Y1, Y4, Y4
	VMULPD  Y1, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD Y2, (DI)(AX*8)
	VMOVUPD Y3, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  loop8

tail4:
	MOVQ CX, BX
	ANDQ $-4, BX

tail4loop:
	CMPQ AX, BX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y4
	VMULPD  Y0, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD (DX)(AX*8), Y4
	VMULPD  Y1, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  tail4loop

tail1:
	CMPQ AX, CX
	JGE  done
	VMOVSD (DI)(AX*8), X2
	VMOVSD (SI)(AX*8), X4
	VMULSD X0, X4, X4
	VADDSD X4, X2, X2
	VMOVSD (DX)(AX*8), X4
	VMULSD X1, X4, X4
	VADDSD X4, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ AX
	JMP  tail1

done:
	VZEROUPPER
	RET

// func dotAVX(a, b []float64) float64
TEXT ·dotAVX(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DX
	VXORPD Y0, Y0, Y0 // lanes = partial sums s0..s3
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX

loop4:
	CMPQ AX, BX
	JGE  lanes
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y2, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ $4, AX
	JMP  loop4

lanes:
	// X0 = {s0, s1}, X1 = {s2, s3}; scalar tail folds into s0 (lane 0).
	VEXTRACTF128 $1, Y0, X1

tail:
	CMPQ AX, CX
	JGE  collapse
	VMOVSD (SI)(AX*8), X2
	VMOVSD (DX)(AX*8), X3
	VMULSD X3, X2, X2
	VADDSD X2, X0, X0
	INCQ AX
	JMP  tail

collapse:
	// ((s0+s1)+s2)+s3, the scalar dot4 collapse order.
	VUNPCKHPD X0, X0, X2 // X2 low = s1
	VADDSD    X2, X0, X0
	VUNPCKHPD X1, X1, X3 // X3 low = s3
	VADDSD    X1, X0, X0 // += s2
	VADDSD    X3, X0, X0 // += s3
	VZEROUPPER
	VMOVSD X0, ret+48(FP)
	RET

// func reluFwdAVX(out, x []float64, mask []bool)
TEXT ·reluFwdAVX(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ out_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVQ mask_base+48(FP), R8
	MOVQ $boolTab<>(SB), R11
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX

loop4:
	CMPQ AX, BX
	JGE  tail
	VMOVUPD (SI)(AX*8), Y1
	VCMPPD  $0x1e, Y0, Y1, Y2 // GT_OQ: x > 0, NaN -> false
	VANDPD  Y1, Y2, Y3
	VMOVUPD Y3, (DI)(AX*8)
	VMOVMSKPD Y2, R9
	MOVL    (R11)(R9*4), R10
	MOVL    R10, (R8)(AX*1)
	ADDQ $4, AX
	JMP  loop4

tail:
	CMPQ AX, CX
	JGE  done
	VMOVSD   (SI)(AX*8), X1
	VUCOMISD X0, X1
	JA   pos
	MOVQ $0, (DI)(AX*8)
	MOVB $0, (R8)(AX*1)
	INCQ AX
	JMP  tail

pos:
	VMOVSD X1, (DI)(AX*8)
	MOVB   $1, (R8)(AX*1)
	INCQ AX
	JMP  tail

done:
	VZEROUPPER
	RET

// func reluBwdAVX(dx, g []float64, mask []bool)
TEXT ·reluBwdAVX(SB), NOSPLIT, $0-72
	MOVQ dx_base+0(FP), DI
	MOVQ dx_len+8(FP), CX
	MOVQ g_base+24(FP), SI
	MOVQ mask_base+48(FP), R8
	VPXOR Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX

loop4:
	CMPQ AX, BX
	JGE  tail
	VPMOVZXBQ (R8)(AX*1), Y2
	VPCMPEQQ  Y0, Y2, Y2      // lanes where mask == 0
	VMOVUPD   (SI)(AX*8), Y1
	VANDNPD   Y1, Y2, Y3      // g where mask != 0, else 0
	VMOVUPD   Y3, (DI)(AX*8)
	ADDQ $4, AX
	JMP  loop4

tail:
	CMPQ AX, CX
	JGE  done
	MOVBLZX (R8)(AX*1), R9
	TESTL   R9, R9
	JZ   zero
	MOVQ (SI)(AX*8), R10
	MOVQ R10, (DI)(AX*8)
	INCQ AX
	JMP  tail

zero:
	MOVQ $0, (DI)(AX*8)
	INCQ AX
	JMP  tail

done:
	VZEROUPPER
	RET

// func dotRowsAVX(dst, aseg, b []float64, stride int)
// For each j: dst[j] += dot4(aseg, b[j*stride : j*stride+len(aseg)]) —
// one call per destination row instead of one per dot, with the same
// 4-lane partial structure and collapse order as dotAVX. Rows are
// processed in independent pairs (two accumulator chains hide the
// VADDPD latency and share each aseg load); each j's own chain is
// unchanged.
TEXT ·dotRowsAVX(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX   // n
	MOVQ aseg_base+24(FP), SI
	MOVQ aseg_len+32(FP), R9 // seg
	MOVQ b_base+48(FP), DX
	MOVQ stride+72(FP), R10
	SHLQ $3, R10             // stride in bytes
	MOVQ R9, R12
	ANDQ $-4, R12
	XORQ R13, R13            // j

pairloop:
	LEAQ 1(R13), AX
	CMPQ AX, CX
	JGE  single              // fewer than two rows left
	MOVQ DX, BX
	LEAQ (DX)(R10*1), R14
	VXORPD Y0, Y0, Y0
	VXORPD Y5, Y5, Y5
	XORQ AX, AX

pdot:
	CMPQ AX, R12
	JGE  ptail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (BX)(AX*8), Y2
	VMOVUPD (R14)(AX*8), Y3
	VMULPD  Y2, Y1, Y2
	VADDPD  Y2, Y0, Y0
	VMULPD  Y3, Y1, Y3
	VADDPD  Y3, Y5, Y5
	ADDQ $4, AX
	JMP  pdot

ptail:
	VEXTRACTF128 $1, Y0, X1
	VEXTRACTF128 $1, Y5, X6

ptail1:
	CMPQ AX, R9
	JGE  pcollapse
	VMOVSD (SI)(AX*8), X2
	VMOVSD (BX)(AX*8), X3
	VMULSD X3, X2, X3
	VADDSD X3, X0, X0
	VMOVSD (R14)(AX*8), X4
	VMULSD X4, X2, X4
	VADDSD X4, X5, X5
	INCQ AX
	JMP  ptail1

pcollapse:
	VUNPCKHPD X0, X0, X2
	VADDSD    X2, X0, X0
	VUNPCKHPD X1, X1, X3
	VADDSD    X1, X0, X0
	VADDSD    X3, X0, X0
	VMOVSD (DI)(R13*8), X4
	VADDSD X0, X4, X4
	VMOVSD X4, (DI)(R13*8)
	VUNPCKHPD X5, X5, X2
	VADDSD    X2, X5, X5
	VUNPCKHPD X6, X6, X3
	VADDSD    X6, X5, X5
	VADDSD    X3, X5, X5
	VMOVSD 8(DI)(R13*8), X4
	VADDSD X5, X4, X4
	VMOVSD X4, 8(DI)(R13*8)
	LEAQ (DX)(R10*2), DX
	ADDQ $2, R13
	JMP  pairloop

single:
	CMPQ R13, CX
	JGE  done
	MOVQ DX, BX
	VXORPD Y0, Y0, Y0
	XORQ AX, AX

dotloop:
	CMPQ AX, R12
	JGE  dtail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (BX)(AX*8), Y2
	VMULPD  Y2, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ $4, AX
	JMP  dotloop

dtail:
	VEXTRACTF128 $1, Y0, X1

dtail1:
	CMPQ AX, R9
	JGE  collapse
	VMOVSD (SI)(AX*8), X2
	VMOVSD (BX)(AX*8), X3
	VMULSD X3, X2, X2
	VADDSD X2, X0, X0
	INCQ AX
	JMP  dtail1

collapse:
	VUNPCKHPD X0, X0, X2
	VADDSD    X2, X0, X0
	VUNPCKHPD X1, X1, X3
	VADDSD    X1, X0, X0
	VADDSD    X3, X0, X0
	VMOVSD (DI)(R13*8), X4
	VADDSD X0, X4, X4
	VMOVSD X4, (DI)(R13*8)
	ADDQ R10, DX
	INCQ R13
	JMP  single

done:
	VZEROUPPER
	RET

// poolLaneIdx seeds the 2x2 maxpool index vector: the input column index
// of each lane's first candidate, relative to the row-pair start.
DATA poolLaneIdx<>+0x00(SB)/8, $0
DATA poolLaneIdx<>+0x08(SB)/8, $2
DATA poolLaneIdx<>+0x10(SB)/8, $4
DATA poolLaneIdx<>+0x18(SB)/8, $6
GLOBL poolLaneIdx<>(SB), RODATA|NOPTR, $32

// func maxPool2AVX(dst []float64, am []int, src []float64, w, oh, ow, base int)
// Non-overlapping 2x2 stride-2 max pooling with argmax over one channel
// plane, 4 output elements per iteration. Each lane replays the scalar
// loop exactly: best starts at -Inf, index at -1, and the four window
// candidates are tested in (dy, dx) ascending order with a strict >
// compare (GT_OQ, so NaN never wins) and mask blends. ow must be a
// positive multiple of 4.
TEXT ·maxPool2AVX(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ am_base+24(FP), R8
	MOVQ src_base+48(FP), SI
	MOVQ w+72(FP), R10
	MOVQ oh+80(FP), R9
	MOVQ ow+88(FP), CX
	SHRQ $2, CX              // vector iterations per output row
	MOVQ base+96(FP), R12

	MOVQ $0xFFF0000000000000, AX
	VMOVQ AX, X15
	VPBROADCASTQ X15, Y15    // -Inf
	VMOVUPD poolLaneIdx<>+0(SB), Y14
	MOVQ $8, AX
	VMOVQ AX, X13
	VPBROADCASTQ X13, Y13    // per-iteration index advance
	VMOVQ R10, X12
	VPBROADCASTQ X12, Y12    // W
	MOVQ $1, AX
	VMOVQ AX, X11
	VPBROADCASTQ X11, Y11    // 1
	VPCMPEQQ Y10, Y10, Y10   // -1
	SHLQ $3, R10             // W in bytes
	MOVQ SI, BX              // row0

rowloop:
	TESTQ R9, R9
	JZ   done
	LEAQ (BX)(R10*1), R11    // row1
	VMOVQ R12, X4
	VPBROADCASTQ X4, Y4
	VPADDQ Y14, Y4, Y4       // lane candidate-(0,0) indices
	XORQ DX, DX              // byte offset into the row pair
	MOVQ CX, R13

iter:
	TESTQ R13, R13
	JZ   nextrow
	// Deinterleave 8 consecutive row elements into even/odd columns.
	VMOVUPD (BX)(DX*1), Y0
	VMOVUPD 32(BX)(DX*1), Y1
	VSHUFPD $0x0, Y1, Y0, Y2
	VPERMPD $0xd8, Y2, Y2    // candidates (0,0)
	VSHUFPD $0xf, Y1, Y0, Y3
	VPERMPD $0xd8, Y3, Y3    // candidates (0,1)
	VMOVUPD (R11)(DX*1), Y0
	VMOVUPD 32(R11)(DX*1), Y1
	VSHUFPD $0x0, Y1, Y0, Y6
	VPERMPD $0xd8, Y6, Y6    // candidates (1,0)
	VSHUFPD $0xf, Y1, Y0, Y7
	VPERMPD $0xd8, Y7, Y7    // candidates (1,1)

	VMOVUPD Y15, Y8          // best = -Inf
	VMOVUPD Y10, Y9          // bestIdx = -1

	VCMPPD $0x1e, Y8, Y2, Y0
	VBLENDVPD Y0, Y2, Y8, Y8
	VBLENDVPD Y0, Y4, Y9, Y9

	VPADDQ Y11, Y4, Y1
	VCMPPD $0x1e, Y8, Y3, Y0
	VBLENDVPD Y0, Y3, Y8, Y8
	VBLENDVPD Y0, Y1, Y9, Y9

	VPADDQ Y12, Y4, Y1
	VCMPPD $0x1e, Y8, Y6, Y0
	VBLENDVPD Y0, Y6, Y8, Y8
	VBLENDVPD Y0, Y1, Y9, Y9

	VPADDQ Y12, Y4, Y1
	VPADDQ Y11, Y1, Y1
	VCMPPD $0x1e, Y8, Y7, Y0
	VBLENDVPD Y0, Y7, Y8, Y8
	VBLENDVPD Y0, Y1, Y9, Y9

	VMOVUPD Y8, (DI)
	VMOVUPD Y9, (R8)
	VPADDQ Y13, Y4, Y4
	ADDQ $64, DX
	ADDQ $32, DI
	ADDQ $32, R8
	DECQ R13
	JMP  iter

nextrow:
	LEAQ (BX)(R10*2), BX
	MOVQ w+72(FP), AX
	LEAQ (R12)(AX*2), R12
	DECQ R9
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func axpy4AVX(dst, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64)
// dst[i] += a0*x0[i], then += a1*x1[i], += a2*x2[i], += a3*x3[i] — four
// reduction steps per destination pass, adds in ascending order per
// element exactly like four successive scalar axpy rows.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x0_base+24(FP), SI
	MOVQ x1_base+48(FP), DX
	MOVQ x2_base+72(FP), R11
	MOVQ x3_base+96(FP), R14
	VBROADCASTSD a0+120(FP), Y0
	VBROADCASTSD a1+128(FP), Y1
	VBROADCASTSD a2+136(FP), Y6
	VBROADCASTSD a3+144(FP), Y7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX

loop8:
	CMPQ AX, BX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD 32(DI)(AX*8), Y3
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y4, Y4
	VMULPD  Y0, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD (DX)(AX*8), Y4
	VMOVUPD 32(DX)(AX*8), Y5
	VMULPD  Y1, Y4, Y4
	VMULPD  Y1, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD (R11)(AX*8), Y4
	VMOVUPD 32(R11)(AX*8), Y5
	VMULPD  Y6, Y4, Y4
	VMULPD  Y6, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD (R14)(AX*8), Y4
	VMOVUPD 32(R14)(AX*8), Y5
	VMULPD  Y7, Y4, Y4
	VMULPD  Y7, Y5, Y5
	VADDPD  Y4, Y2, Y2
	VADDPD  Y5, Y3, Y3
	VMOVUPD Y2, (DI)(AX*8)
	VMOVUPD Y3, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  loop8

tail4:
	MOVQ CX, BX
	ANDQ $-4, BX

tail4loop:
	CMPQ AX, BX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y4
	VMULPD  Y0, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD (DX)(AX*8), Y4
	VMULPD  Y1, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD (R11)(AX*8), Y4
	VMULPD  Y6, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD (R14)(AX*8), Y4
	VMULPD  Y7, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  tail4loop

tail1:
	CMPQ AX, CX
	JGE  done
	VMOVSD (DI)(AX*8), X2
	VMOVSD (SI)(AX*8), X4
	VMULSD X0, X4, X4
	VADDSD X4, X2, X2
	VMOVSD (DX)(AX*8), X4
	VMULSD X1, X4, X4
	VADDSD X4, X2, X2
	VMOVSD (R11)(AX*8), X4
	VMULSD X6, X4, X4
	VADDSD X4, X2, X2
	VMOVSD (R14)(AX*8), X4
	VMULSD X7, X4, X4
	VADDSD X4, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ AX
	JMP  tail1

done:
	VZEROUPPER
	RET
