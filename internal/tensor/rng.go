package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the library needs. Every
// stochastic component takes an explicit *RNG so experiments are exactly
// reproducible from a single seed.
//
// Concurrency contract: an RNG is NOT safe for concurrent use. The
// supported pattern for parallel work is to Split (or SplitN) children
// from a single goroutine *before* dispatch and hand each worker exclusive
// ownership of its child. Because a child's seed is fixed at split time,
// the streams the workers consume are independent of scheduling, which is
// what makes parallel runs bit-identical to serial ones.
type RNG struct {
	r    *rand.Rand
	seed int64
	src  *countingSource
}

// countingSource wraps the stdlib source and counts every Int63 draw. It
// deliberately implements only rand.Source (NOT Source64): every rand.Rand
// method this library uses — Float64, Intn, Int63, NormFloat64, Perm,
// Shuffle — bottoms out in Source.Int63, so the wrapped stream is
// bit-identical to the unwrapped one while the counter gives an exact
// stream position. (seed, position) is therefore a complete, restorable
// snapshot of a generator — the fact the round-checkpoint machinery is
// built on.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed)}
	return &RNG{r: rand.New(src), seed: seed, src: src}
}

// RNGState is a serializable snapshot of a generator: its construction
// seed plus how many base draws it has consumed. RestoreRNG(State())
// yields a generator whose future draws are bit-identical to the
// original's.
type RNGState struct {
	Seed int64
	Pos  uint64
}

// State snapshots the generator's position.
func (g *RNG) State() RNGState { return RNGState{Seed: g.seed, Pos: g.src.n} }

// RestoreRNG rebuilds a generator at a snapshotted position by replaying
// (and discarding) the consumed prefix of its stream. Replay costs one
// Int63 per consumed draw — cheap even for selection streams that Perm
// over large populations every round.
func RestoreRNG(st RNGState) *RNG {
	g := NewRNG(st.Seed)
	for g.src.n < st.Pos {
		g.src.Int63()
	}
	return g
}

// Split derives an independent child generator; use it to give each client
// or worker its own stream without coupling their draw order.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// SplitN derives n independent children in one call, in order. It is the
// pre-dispatch half of the concurrency contract above: call it serially,
// then move each child to its worker. SplitN(n) consumes exactly n draws
// from g, the same as n consecutive Split calls.
func (g *RNG) SplitN(n int) []*RNG {
	children := make([]*RNG, n)
	for i := range children {
		children[i] = g.Split()
	}
	return children
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mean, std²).
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes xs uniformly at random in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Gamma samples from Gamma(shape, 1) using the Marsaglia–Tsang method.
// It is the building block for Dirichlet sampling.
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("tensor: Gamma requires shape > 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from Dir(alpha, ..., alpha) of
// dimension k. Smaller alpha yields more concentrated (heterogeneous)
// vectors; this is the Dir(β) prior used for non-IID client partitions.
func (g *RNG) Dirichlet(alpha float64, k int) []float64 {
	p := make([]float64, k)
	sum := 0.0
	for i := range p {
		p[i] = g.Gamma(alpha)
		sum += p[i]
	}
	if sum == 0 {
		// Degenerate draw (possible for very small alpha): fall back to a
		// one-hot vector at a uniform index.
		p[g.Intn(k)] = 1
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Randn fills a fresh tensor of the given shape with N(0, std²) samples.
func (g *RNG) Randn(std float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = g.Normal(0, std)
	}
	return t
}

// Uniform fills a fresh tensor with samples from U[lo, hi).
func (g *RNG) Uniform(lo, hi float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*g.Float64()
	}
	return t
}
