package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format for a tensor:
//
//	uint32 rank
//	rank × uint32 dims
//	numel × float64 (little endian IEEE-754 bits)
//
// The format exists so the FL communication accountant can measure real
// payload sizes and so middleware models can be checkpointed.

// Decode hardening limits. The header is untrusted input: without these
// caps a 20-byte stream could declare a shape whose Numel demands a
// multi-GiB allocation (or overflows int entirely) before a single payload
// byte is read.
const (
	// MaxDecodeRank is the largest rank ReadFrom accepts.
	MaxDecodeRank = 16
	// MaxDecodeDim is the largest single dimension ReadFrom accepts.
	MaxDecodeDim = 1 << 28
	// MaxDecodeElems caps the total element count of a decoded tensor
	// (128 MiB of float64 payload).
	MaxDecodeElems = 1 << 24
	// decodeChunkBytes bounds the read/decode granularity, so allocation
	// and work grow with bytes actually present on the stream, not with
	// what the header promises.
	decodeChunkBytes = 1 << 20
)

// WriteTo serialises t to w and returns the number of bytes written. It
// enforces the same shape limits as ReadFrom, so anything WriteTo emits
// is guaranteed to round-trip — oversized tensors fail at save time, not
// at restore time.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	if len(t.Shape) > MaxDecodeRank {
		return 0, fmt.Errorf("tensor: rank %d exceeds encodable maximum %d", len(t.Shape), MaxDecodeRank)
	}
	if _, err := checkedNumel(t.Shape); err != nil {
		return 0, fmt.Errorf("tensor: shape not encodable: %w", err)
	}
	var n int64
	hdr := make([]byte, 4*(1+len(t.Shape)))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.Shape)))
	for i, d := range t.Shape {
		binary.LittleEndian.PutUint32(hdr[4*(i+1):], uint32(d))
	}
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	k, err = w.Write(buf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write payload: %w", err)
	}
	return n, nil
}

// checkedNumel validates every dimension against MaxDecodeDim and returns
// the element count, guarding the running product against overflow and the
// MaxDecodeElems cap.
func checkedNumel(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d < 0 || d > MaxDecodeDim {
			return 0, fmt.Errorf("tensor: implausible dimension %d in shape %v", d, shape)
		}
		if d != 0 && n > MaxDecodeElems/d {
			return 0, fmt.Errorf("tensor: shape %v exceeds decode cap of %d elements", shape, MaxDecodeElems)
		}
		n *= d
	}
	return n, nil
}

// ReadFrom deserialises a tensor written by WriteTo, replacing t's shape
// and data, and returns the number of bytes consumed. The header is
// validated (rank, per-dimension and total-size caps, overflow) before any
// payload-sized allocation, and the payload is decoded in bounded chunks,
// so a hostile or corrupt header cannot trigger a huge allocation.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var rankBuf [4]byte
	k, err := io.ReadFull(r, rankBuf[:])
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(rankBuf[:]))
	if rank > MaxDecodeRank {
		return n, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	dims := make([]byte, 4*rank)
	k, err = io.ReadFull(r, dims)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read dims: %w", err)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
	}
	numel, err := checkedNumel(shape)
	if err != nil {
		return n, err
	}
	data := make([]float64, 0, min(numel, decodeChunkBytes/8))
	buf := make([]byte, min(8*numel, decodeChunkBytes))
	for len(data) < numel {
		want := 8 * (numel - len(data))
		if want > len(buf) {
			want = len(buf)
		}
		k, err = io.ReadFull(r, buf[:want])
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("tensor: read payload: %w", err)
		}
		for off := 0; off < want; off += 8 {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		}
	}
	t.Shape = shape
	t.Data = data
	return n, nil
}

// EncodedSize returns the number of bytes WriteTo would emit for t.
func (t *Tensor) EncodedSize() int64 {
	return int64(4*(1+len(t.Shape)) + 8*len(t.Data))
}
