package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format for a tensor:
//
//	uint32 rank
//	rank × uint32 dims
//	numel × float64 (little endian IEEE-754 bits)
//
// The format exists so the FL communication accountant can measure real
// payload sizes and so middleware models can be checkpointed.

// WriteTo serialises t to w and returns the number of bytes written.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 4*(1+len(t.Shape)))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.Shape)))
	for i, d := range t.Shape {
		binary.LittleEndian.PutUint32(hdr[4*(i+1):], uint32(d))
	}
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	k, err = w.Write(buf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write payload: %w", err)
	}
	return n, nil
}

// ReadFrom deserialises a tensor written by WriteTo, replacing t's shape
// and data, and returns the number of bytes consumed.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var rankBuf [4]byte
	k, err := io.ReadFull(r, rankBuf[:])
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(rankBuf[:]))
	if rank > 16 {
		return n, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	dims := make([]byte, 4*rank)
	k, err = io.ReadFull(r, dims)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read dims: %w", err)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
	}
	numel := Numel(shape)
	payload := make([]byte, 8*numel)
	k, err = io.ReadFull(r, payload)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read payload: %w", err)
	}
	data := make([]float64, numel)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	t.Shape = shape
	t.Data = data
	return n, nil
}

// EncodedSize returns the number of bytes WriteTo would emit for t.
func (t *Tensor) EncodedSize() int64 {
	return int64(4*(1+len(t.Shape)) + 8*len(t.Data))
}
