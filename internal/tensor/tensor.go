// Package tensor implements dense multi-dimensional float64 arrays and the
// linear-algebra kernels needed by the nn package: elementwise arithmetic,
// matrix multiplication, im2col/col2im for convolutions, reductions, and a
// deterministic random source for reproducible experiments.
//
// Tensors use a flat row-major backing slice. Every hot-path kernel has a
// destination-passing form (AddTo, LerpTo, MatMulTo, MatMulAcc, ...) that
// writes into a caller-owned buffer, and the package provides two
// recycling facilities — Ensure for long-lived per-layer buffers and the
// GetScratch/PutScratch arena for call-scoped temporaries — so
// steady-state training allocates nothing per batch. Matrix multiplies
// are cache-blocked; small multiplies run serially (jobs are parallelised
// one level up by the fl worker pool), while large standalone multiplies
// fan out over row chunks (see MatMulWorkers) with bit-identical results
// at every worker count. Kernels perform no value-dependent shortcuts:
// 0·NaN and 0·Inf propagate per IEEE-754 instead of being masked.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major array of float64 values.
//
// The zero value is an empty scalar-less tensor; use New, Zeros or one of
// the random constructors to obtain a usable tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New constructs a tensor with the given shape backed by data. The length
// of data must equal the product of the shape dimensions.
func New(data []float64, shape ...int) *Tensor {
	n := Numel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: New: data length %d does not match shape %v (numel %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Zeros returns a zero-filled tensor with the given shape.
func Zeros(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, Numel(shape))}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Copy before formatting: referencing shape itself in the panic
			// would make every caller's variadic shape slice escape to the
			// heap, defeating the zero-allocation hot path.
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements in t.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return New(d, t.Shape...)
}

// Reshape returns a view of t with a new shape sharing the same backing
// data. The element count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Numel(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// String renders a compact description: shape plus up to eight leading
// elements, which is enough for debugging without flooding logs.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if len(t.Data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
