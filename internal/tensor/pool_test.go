package tensor

import (
	"math"
	"testing"
)

// scalarPool2x2 is the reference 2×2/2 max pool with argmax — the exact
// loop nn.MaxPool2D runs when the accelerated kernel declines.
func scalarPool2x2(dst []float64, am []int, src []float64, w, oh, ow, planes int) {
	h := 2 * oh
	for c := 0; c < planes; c++ {
		obase := c * oh * ow
		ibase := c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := ibase + (oy*2+dy)*w + (ox*2 + dx)
						if src[idx] > best {
							best = src[idx]
							bestIdx = idx
						}
					}
				}
				o := obase + oy*ow + ox
				dst[o] = best
				am[o] = bestIdx
			}
		}
	}
}

// TestMaxPool2x2MatchesScalar pins the accelerated pool kernel against
// the scalar reference bit for bit — values and argmax indices — across
// random shapes with NaN injection and forced ties, the cases where a
// compare-and-blend kernel could legally diverge from the scalar
// first-strictly-greater semantics.
func TestMaxPool2x2MatchesScalar(t *testing.T) {
	rng := NewRNG(7)
	ran := false
	for trial := 0; trial < 50; trial++ {
		w := 4 * (1 + rng.Intn(3))
		oh := 1 + rng.Intn(5)
		ow := w / 2
		planes := 1 + rng.Intn(6)
		src := make([]float64, planes*2*oh*w)
		for i := range src {
			src[i] = rng.Normal(0, 1)
			if rng.Intn(10) == 0 {
				src[i] = math.NaN()
			}
			if rng.Intn(10) == 0 {
				src[i] = src[(i+7)%len(src)] // force ties
			}
		}
		d1 := make([]float64, planes*oh*ow)
		a1 := make([]int, planes*oh*ow)
		d2 := make([]float64, planes*oh*ow)
		a2 := make([]int, planes*oh*ow)
		if !MaxPool2x2(d1, a1, src, w, oh, ow, planes) {
			continue // no accelerated kernel on this platform/shape
		}
		ran = true
		scalarPool2x2(d2, a2, src, w, oh, ow, planes)
		for i := range d1 {
			if math.Float64bits(d1[i]) != math.Float64bits(d2[i]) || a1[i] != a2[i] {
				t.Fatalf("trial %d idx %d: accelerated (%v,%d) scalar (%v,%d)", trial, i, d1[i], a1[i], d2[i], a2[i])
			}
		}
	}
	if !ran {
		t.Skip("no accelerated maxpool kernel on this platform")
	}
}

func BenchmarkMaxPool2x2(b *testing.B) {
	const w, oh, ow, planes = 8, 4, 4, 8
	rng := NewRNG(1)
	src := make([]float64, planes*2*oh*w)
	for i := range src {
		src[i] = rng.Normal(0, 1)
	}
	dst := make([]float64, planes*oh*ow)
	am := make([]int, planes*oh*ow)
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !MaxPool2x2(dst, am, src, w, oh, ow, planes) {
				b.Skip("no accelerated kernel")
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scalarPool2x2(dst, am, src, w, oh, ow, planes)
		}
	})
}
