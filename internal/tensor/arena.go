package tensor

import (
	"math/bits"
	"runtime"
	"sync"
)

// This file implements the two allocation-avoidance facilities the hot
// path is built on:
//
//   - Ensure, which recycles a tensor a caller already owns (layers keep
//     their activation/gradient buffers across batches this way), and
//   - the scratch arena, a set of size-classed sync.Pools for tensors
//     whose lifetime is a single call frame (Get at the top, Put on every
//     exit path).
//
// Ownership rules (also in docs/ARCHITECTURE.md):
//
//  1. A scratch tensor is exclusively owned between GetScratch and
//     PutScratch. Never Put a tensor that has been returned to a caller,
//     stored in a struct that outlives the call, or aliased by a live
//     view — Put transfers ownership back to the arena immediately.
//  2. Contents are unspecified after GetScratch and after Ensure reuses a
//     buffer. Call Zero (or overwrite fully) before accumulating.
//  3. Tensors handed to PutScratch must come from GetScratch; foreign
//     tensors are accepted only if their capacity is an exact size class
//     (others are dropped on the floor, which is safe but wasteful).

// scratch size classes: powers of two from 1<<minScratchBits to
// 1<<maxScratchBits elements. Larger requests fall back to the allocator.
const (
	minScratchBits = 6  // 64 elements, 512 B
	maxScratchBits = 24 // 16.7M elements, 128 MiB
)

var scratchPools [maxScratchBits - minScratchBits + 1]sync.Pool

// scratchClass returns the pool index whose capacity is the smallest size
// class holding n elements, or -1 when n is out of the pooled range.
func scratchClass(n int) int {
	if n > 1<<maxScratchBits {
		return -1
	}
	if n <= 1<<minScratchBits {
		return 0
	}
	return bits.Len(uint(n-1)) - minScratchBits
}

// GetScratch returns a tensor of the given shape backed by pooled storage.
// Contents are unspecified; call Zero before accumulating into it. The
// caller owns the tensor until PutScratch.
func GetScratch(shape ...int) *Tensor {
	n := Numel(shape)
	cls := scratchClass(n)
	if cls < 0 {
		return Zeros(shape...)
	}
	if v := scratchPools[cls].Get(); v != nil {
		t := v.(*Tensor)
		t.Data = t.Data[:n]
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	return &Tensor{
		Shape: append([]int(nil), shape...),
		Data:  make([]float64, n, 1<<(cls+minScratchBits)),
	}
}

// GetScratchZeroed is GetScratch with the contents cleared.
func GetScratchZeroed(shape ...int) *Tensor {
	t := GetScratch(shape...)
	t.Zero()
	return t
}

// PutScratch returns t to the arena. t must not be used (through any
// alias) after the call. Tensors whose capacity is not an exact size
// class — including any request larger than the pooled range — are
// silently discarded to the garbage collector.
func PutScratch(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.Data)
	if c < 1<<minScratchBits || c > 1<<maxScratchBits || c&(c-1) != 0 {
		return
	}
	t.Data = t.Data[:c]
	scratchPools[scratchClass(c)].Put(t)
}

// Ensure returns a tensor of the given shape, reusing t's backing storage
// when it is large enough. Contents are unspecified on reuse and zero on
// a fresh allocation. The usual pattern is a struct field refreshed at the
// top of a hot call:
//
//	l.out = tensor.Ensure(l.out, batch, l.Out)
//
// Ensure never shrinks capacity, so steady-state calls with stable shapes
// allocate nothing.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := Numel(shape)
	if t == nil || cap(t.Data) < n {
		return Zeros(shape...)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// MatMulWorkers is the number of goroutines a single large matrix multiply
// may fan out over (0 or 1 disables parallelism). Small multiplies always
// run serially, so per-client training jobs — already parallelised one
// level up by the fl worker pool — are unaffected; the parallel path
// exists for big standalone multiplies (landscape scans, analysis).
// Row-partitioning keeps every output element's reduction order fixed, so
// results are bit-identical at every worker count.
var MatMulWorkers = runtime.GOMAXPROCS(0)

// minParallelWork is the m*k*n product below which a multiply is not worth
// fanning out.
const minParallelWork = 1 << 21

// matmulWorkerCount decides the fan-out for a multiply over m output rows
// with the given m·k·n work estimate. Callers must take the serial path
// themselves when it returns 1, so the small-matrix hot path never even
// constructs a dispatch closure (which would heap-allocate per call).
func matmulWorkerCount(m, work int) int {
	workers := MatMulWorkers
	if workers > m {
		workers = m
	}
	if work < minParallelWork || workers < 1 {
		return 1
	}
	return workers
}

// ParallelChunks runs fn over [0,n) split into contiguous chunks across
// at most workers goroutines (values below 2, or n < 2, run inline). It
// is the element-wise fan-out behind the chunk-parallel codec kernels:
// chunk boundaries depend only on (n, workers), and fn(c, i0, i1) must
// write only state owned by elements [i0, i1) or by the chunk ordinal c
// (a dense index in [0, chunk count) — callers reducing per-chunk
// partials key their scratch by c rather than re-deriving the split), so
// results are bit-identical at every worker count — the same contract as
// the matmul row fan-out above. At most `workers` chunks are produced,
// but possibly fewer.
func ParallelChunks(n, workers int, fn func(c, i0, i1 int)) {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for c, i0 := 0, 0; i0 < n; c, i0 = c+1, i0+chunk {
		i1 := i0 + chunk
		if i1 > n {
			i1 = n
		}
		wg.Add(1)
		go func(c, a, b int) {
			defer wg.Done()
			fn(c, a, b)
		}(c, i0, i1)
	}
	wg.Wait()
}

// parallelRows runs fn over [0,m) split into contiguous row chunks across
// the given number of goroutines. fn(i0, i1) must touch only rows [i0,i1)
// of the output.
func parallelRows(m, workers int, fn func(i0, i1 int)) {
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(i0, i1)
	}
	wg.Wait()
}
